// Command experiments regenerates every figure of the paper's
// evaluation and the ablation studies, rendering each as an ASCII
// table (and optionally CSV files).
//
// Usage:
//
//	experiments                  # quick budgets, all figures to stdout
//	experiments -full            # EXPERIMENTS.md budgets
//	experiments -only fig9       # one experiment
//	experiments -csv out/        # also write CSV per figure
//	experiments -cpuprofile p.pb # profile the figure runs (go tool pprof)
//	experiments -sweep           # seed × SLA tier × traffic grid, JSONL
//	experiments -sweep -sweep-out sweep.jsonl -sweep-parallel
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"

	"greennfv/internal/experiments"
	"greennfv/internal/sweep"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// run carries the whole figure sweep so the profile defers fire on
// every exit path (log.Fatal in main would skip them).
func run() error {
	full := flag.Bool("full", false, "use the Full() budgets recorded in EXPERIMENTS.md")
	only := flag.String("only", "", "run a single experiment: fig1..fig4, fig6..fig11, figcluster, ablations")
	csvDir := flag.String("csv", "", "also write CSV files into this directory")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the figure runs to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile (after GC) to this file on exit")
	runSweep := flag.Bool("sweep", false, "run the seed × SLA tier × traffic-mix grid instead of the figures, one JSON row per cell")
	sweepOut := flag.String("sweep-out", "", "sweep JSONL output file (default stdout)")
	sweepParallel := flag.Bool("sweep-parallel", false, "train sweep cells with the concurrent Ape-X pipeline (fast, non-deterministic)")
	sweepWorkers := flag.Int("sweep-workers", 0, "concurrently running sweep cells (0 = GOMAXPROCS)")
	sweepCluster := flag.Bool("sweep-cluster", false, "add the topology x placement axes to the sweep grid (single node plus heterogeneous 4- and 8-node clusters)")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				log.Printf("memprofile: %v", err)
				return
			}
			defer f.Close()
			runtime.GC() // report live heap, not transient garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Printf("memprofile: %v", err)
			}
		}()
	}

	o := experiments.Quick()
	if *full {
		o = experiments.Full()
	}

	if *runSweep {
		cfg, err := sweep.DefaultConfig(o.TrainSteps, o.Actors, o.ControlSteps)
		if err != nil {
			return err
		}
		cfg.ParallelTrain = *sweepParallel
		cfg.Workers = *sweepWorkers
		if *sweepCluster {
			cfg.Topos = sweep.DefaultTopos()
			cfg.Placements = sweep.DefaultPlacements()
		}
		results, runErr := sweep.Run(cfg)
		out := os.Stdout
		if *sweepOut != "" {
			f, err := os.Create(*sweepOut)
			if err != nil {
				return err
			}
			defer f.Close()
			out = f
		}
		if err := sweep.WriteJSONL(out, results); err != nil {
			return err
		}
		if runErr != nil {
			return runErr
		}
		axes := ""
		if len(cfg.Topos) > 0 {
			axes = fmt.Sprintf(" x %d topologies", len(cfg.Topos))
		}
		fmt.Fprintf(os.Stderr, "swept %d cells (%d seeds x %d SLA tiers x %d traffic mixes%s)\n",
			cfg.Cells(), len(cfg.Seeds), len(cfg.Tiers), len(cfg.Mixes), axes)
		return nil
	}

	type job struct {
		id  string
		run func() (*experiments.Table, error)
	}
	jobs := []job{
		{"fig1", func() (*experiments.Table, error) { return experiments.Fig1() }},
		{"fig2", func() (*experiments.Table, error) { return experiments.Fig2() }},
		{"fig3", func() (*experiments.Table, error) { return experiments.Fig3() }},
		{"fig4", func() (*experiments.Table, error) { return experiments.Fig4() }},
		{"fig6", func() (*experiments.Table, error) { t, _, err := experiments.Fig6(o); return t, err }},
		{"fig7", func() (*experiments.Table, error) { t, _, err := experiments.Fig7(o); return t, err }},
		{"fig8", func() (*experiments.Table, error) { t, _, err := experiments.Fig8(o); return t, err }},
		{"fig9", func() (*experiments.Table, error) { t, _, err := experiments.Fig9(o); return t, err }},
		{"fig10", func() (*experiments.Table, error) { return experiments.Fig10(o) }},
		{"fig11", func() (*experiments.Table, error) { return experiments.Fig11(o) }},
		{"validation-des", func() (*experiments.Table, error) { return experiments.ValidationDES() }},
		{"consolidation", func() (*experiments.Table, error) { return experiments.ExpConsolidation() }},
		{"ablation-per", func() (*experiments.Table, error) { return experiments.AblationPER(o) }},
		{"ablation-actors", func() (*experiments.Table, error) { return experiments.AblationActors(o) }},
		{"ablation-knobs", func() (*experiments.Table, error) { return experiments.AblationKnobs(o) }},
		{"ablation-reward", func() (*experiments.Table, error) { return experiments.AblationReward(o) }},
		{"figcluster", func() (*experiments.Table, error) { t, _, err := experiments.FigCluster(o); return t, err }},
	}

	ran := 0
	for _, j := range jobs {
		if *only != "" && j.id != *only && !(*only == "ablations" && len(j.id) > 3 && j.id[:3] == "abl") {
			continue
		}
		t, err := j.run()
		if err != nil {
			return fmt.Errorf("%s: %w", j.id, err)
		}
		if err := t.Render(os.Stdout); err != nil {
			return err
		}
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				return err
			}
			f, err := os.Create(filepath.Join(*csvDir, t.ID+".csv"))
			if err != nil {
				return err
			}
			if err := t.WriteCSV(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("no experiment matches -only %q", *only)
	}
	fmt.Printf("ran %d experiments\n", ran)
	return nil
}
