// Command apexactor is one Ape-X actor process of the multi-process training
// mode: it rebuilds the training environment and a local policy-network
// copy from a JSON ActorSpec, connects to the central learner over
// net/rpc, and runs the act/push/pull loop until its step budget is
// spent or the learner drains the round.
//
// It is normally spawned by the trainer (apex.TrainerConfig with
// RemoteActors and SpawnRemote set), which writes the spec to stdin:
//
//	apexactor -learner 127.0.0.1:43017 -rank 1 -steps 2000 -spec -
//
// For genuinely separate machines, point -learner at the trainer's
// ListenAddr and -spec at a spec file; -steps 0 runs until the learner
// signals drain:
//
//	apexactor -learner learner-host:7400 -rank 3 -steps 0 -spec actor.json
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"greennfv/internal/rl/apex"
)

func main() {
	learnerAddr := flag.String("learner", "", "learner RPC address (host:port, required)")
	specPath := flag.String("spec", "-", "actor spec JSON file (\"-\" = stdin)")
	rank := flag.Int("rank", 0, "actor rank: exploration-ladder position and learner-side ID")
	steps := flag.Int("steps", 0, "environment-step budget (0 = spec's, or run until drained)")
	quiet := flag.Bool("q", false, "suppress progress logging")
	verifyPrio := flag.Bool("verifyprio", false,
		"cross-check batched TD-error priorities against the scalar path (bit-for-bit); fail on any difference")
	crashAt := flag.Int("crashat", 0,
		"fault injection: exit with an error after this many steps (0 = never)")
	crashRank := flag.Int("crashrank", -1,
		"fault injection: apply -crashat only to this rank (-1 = any rank)")
	crashMark := flag.String("crashmark", "",
		"fault injection: marker file that disarms -crashat once it exists (created when the crash fires, so a respawn runs clean)")
	flag.Parse()

	log.SetFlags(0)
	log.SetPrefix(fmt.Sprintf("apexactor[%d]: ", *rank))
	if *learnerAddr == "" {
		log.Fatal("-learner is required")
	}

	in := os.Stdin
	if *specPath != "-" {
		f, err := os.Open(*specPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		in = f
	}
	spec, err := apex.DecodeActorSpec(in)
	if err != nil {
		log.Fatal(err)
	}

	logf := log.Printf
	if *quiet {
		logf = func(string, ...any) {}
	}
	opt := apex.RemoteActorOptions{
		Addr: *learnerAddr, Rank: *rank, Steps: *steps, Logf: logf,
		VerifyPriorities: *verifyPrio,
	}
	if *crashAt > 0 && (*crashRank < 0 || *crashRank == *rank) {
		opt.CrashAfter = *crashAt
		opt.CrashOnceMarker = *crashMark
	}
	if err := apex.RunRemoteActor(spec, opt); err != nil {
		log.Fatal(err)
	}
}
