// Command greennfvd is the GreenNFV serving-plane controller daemon:
// it loads a trained policy checkpoint, leases a fleet of
// cmd/greennfv-agent node agents over net/rpc, and continuously turns
// their observations into SLA-guardrailed, rate-limited knob configs.
//
// The node spec file (greennfv -write-spec, or System.WriteNodeSpec)
// pins the environment contract — chain, workload, SLA — that the
// policy was trained for; controller and agents must load the same
// spec. SIGHUP hot-reloads the -policy checkpoint (a corrupt or
// mismatched file is rejected loudly and the old policy keeps
// serving); SIGINT/SIGTERM shuts down gracefully, persisting state to
// -state so a restarted daemon resumes with its fleet re-registering
// transparently.
//
// Usage:
//
//	greennfv -sla efficiency -steps 4000 -save-policy policy.ckpt
//	greennfv -write-spec node.json
//	greennfvd -spec node.json -policy policy.ckpt -state /var/lib/greennfvd.state
package main

import (
	"encoding/json"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"greennfv/internal/rl/apex"
	"greennfv/internal/serve"
	"greennfv/internal/stats"
)

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("greennfvd: ")

	specPath := flag.String("spec", "", "node spec JSON file (required; see greennfv -write-spec)")
	policyPath := flag.String("policy", "", "policy checkpoint to serve (greennfv -save-policy format)")
	statePath := flag.String("state", "", "crash-safe controller state file (optional)")
	listen := flag.String("listen", "127.0.0.1:7070", "RPC listen address")
	metricsAddr := flag.String("metrics", "127.0.0.1:9464", "Prometheus /metrics listen address (empty disables)")
	lease := flag.Duration("lease", 10*time.Second, "node lease window; silent nodes re-register")
	flag.Parse()

	if *specPath == "" {
		log.Fatal("-spec is required")
	}
	spec, err := readSpec(*specPath)
	if err != nil {
		log.Fatal(err)
	}
	ctrl, err := serve.NewController(serve.Config{
		Spec:        spec,
		PolicyPath:  *policyPath,
		StatePath:   *statePath,
		LeaseWindow: *lease,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := ctrl.Start(*listen); err != nil {
		log.Fatal(err)
	}
	log.Printf("serving policy v%d on %s (lease window %v)", ctrl.PolicyVersion(), ctrl.Addr(), *lease)

	if *metricsAddr != "" {
		reg := stats.NewRegistry()
		ctrl.RegisterMetrics(reg)
		if err := serveMetrics(*metricsAddr, reg); err != nil {
			log.Fatalf("metrics listener: %v", err)
		}
	}

	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	sweep := time.NewTicker(*lease / 2)
	defer sweep.Stop()

	for {
		select {
		case <-hup:
			if *policyPath == "" {
				log.Print("reload requested but no -policy path configured")
				continue
			}
			if err := ctrl.ReloadPolicy(*policyPath); err != nil {
				log.Printf("reload rejected, still serving v%d: %v", ctrl.PolicyVersion(), err)
				continue
			}
			log.Printf("policy reloaded: now serving v%d", ctrl.PolicyVersion())
		case now := <-sweep.C:
			if n := ctrl.ExpireLeases(now); n > 0 {
				log.Printf("expired %d stale node leases", n)
			}
		case sig := <-stop:
			log.Printf("%v: shutting down", sig)
			if err := ctrl.Close(); err != nil {
				log.Printf("shutdown: %v", err)
			}
			for _, name := range ctrl.Counters().Names() {
				log.Printf("counter %s = %d", name, ctrl.Counters().Get(name))
			}
			return
		}
	}
}

// serveMetrics exposes reg at /metrics on addr in the background.
func serveMetrics(addr string, reg *stats.Registry) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg)
	go http.Serve(ln, mux)
	log.Printf("metrics on http://%s/metrics", ln.Addr())
	return nil
}

// readSpec loads the node spec. Only the environment half matters for
// serving, so it decodes directly (BuildEnv validates) instead of
// requiring the training-cadence fields DecodeActorSpec insists on.
func readSpec(path string) (apex.ActorSpec, error) {
	f, err := os.Open(path)
	if err != nil {
		return apex.ActorSpec{}, err
	}
	defer f.Close()
	var spec apex.ActorSpec
	if err := json.NewDecoder(f).Decode(&spec); err != nil {
		return apex.ActorSpec{}, err
	}
	return spec, nil
}
