// Command trafficgen is the MoonGen-equivalent workload tool: it
// reports line-rate framing math for a link, previews arrival
// processes, and can emit an inter-arrival trace for replay.
//
// Usage:
//
//	trafficgen -frame 64                    # line-rate math
//	trafficgen -process mmpp -pps 1e6 -n 20 # preview inter-arrivals
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"greennfv/internal/stats"
	"greennfv/internal/traffic"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("trafficgen: ")

	frame := flag.Int("frame", 64, "frame size in bytes")
	link := flag.Float64("link", 10e9, "link speed in bits/second")
	process := flag.String("process", "", "preview arrivals: cbr | poisson | mmpp | onoff")
	pps := flag.Float64("pps", 1e6, "mean packet rate for the preview")
	n := flag.Int("n", 10, "preview length")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	lr := traffic.LineRatePPS(*link, *frame)
	fmt.Printf("link %.1f Gb/s, frame %d B:\n", *link/1e9, *frame)
	fmt.Printf("  line rate: %.3f Mpps (%.3f Gbps goodput)\n",
		lr/1e6, traffic.ThroughputBps(lr, *frame)/1e9)

	if *process == "" {
		return
	}
	var arr traffic.Arrival
	var err error
	switch *process {
	case "cbr":
		arr, err = traffic.NewCBR(*pps)
	case "poisson":
		arr, err = traffic.NewPoisson(*pps)
	case "mmpp":
		arr, err = traffic.NewMMPP(*pps*4, *pps/4, 0.1, 0.3)
	case "onoff":
		arr, err = traffic.NewOnOff(*pps*2, 0.5, 0.5)
	default:
		log.Fatalf("unknown process %q", *process)
	}
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(*seed))
	fmt.Printf("\n%s process, mean %.0f pps — first %d inter-arrival gaps (us):\n",
		*process, arr.MeanPPS(), *n)
	counts := make([]float64, 0, 64)
	window := 0.0
	inWindow := 0.0
	for i := 0; i < *n; i++ {
		gap := arr.Next(rng)
		fmt.Printf("  %.3f", gap*1e6)
		window += gap
		inWindow++
		if window >= 0.001 {
			counts = append(counts, inWindow)
			window, inWindow = 0, 0
		}
	}
	fmt.Println()
	// Extended run for burstiness.
	for i := 0; i < 100000; i++ {
		gap := arr.Next(rng)
		window += gap
		inWindow++
		if window >= 0.001 {
			counts = append(counts, inWindow)
			window, inWindow = 0, 0
		}
	}
	fmt.Printf("index of dispersion over 1ms windows: %.2f (CBR~0, Poisson~1, bursty>1)\n",
		stats.IndexOfDispersion(counts))
}
