package main

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"
)

// TestParseStripsGOMAXPROCSSuffix: parallel benchmarks print as
// BenchmarkName-N with N = GOMAXPROCS, which varies by machine. The
// parser must fold them onto the suffix-free key so
// BenchmarkFig06TrainParallel aggregates stably across machines —
// while names whose legitimate tail looks dash-numeric keep
// everything but the final GOMAXPROCS suffix.
func TestParseStripsGOMAXPROCSSuffix(t *testing.T) {
	input := strings.Join([]string{
		"goos: linux",
		"goarch: amd64",
		"cpu: Intel(R) Xeon(R) Processor @ 2.10GHz",
		"BenchmarkFig06TrainParallel-8   \t       3\t 338264784 ns/op",
		"BenchmarkFig06TrainMaxThroughput \t       1\t 365775750 ns/op\t         0.7394 Gbps\t      1226 J",
		"BenchmarkAgentLearn-16 \t    7154\t    300315 ns/op\t       0 B/op\t       0 allocs/op",
		"BenchmarkDot4-2x-8 \t     100\t      1234 ns/op",
		"PASS",
	}, "\n")
	sum, err := parse(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"BenchmarkFig06TrainParallel":      true,
		"BenchmarkFig06TrainMaxThroughput": true,
		"BenchmarkAgentLearn":              true,
		"BenchmarkDot4-2x":                 true,
	}
	if len(sum.Benchmarks) != len(want) {
		t.Fatalf("parsed %d benchmarks, want %d", len(sum.Benchmarks), len(want))
	}
	for _, b := range sum.Benchmarks {
		if !want[b.Name] {
			t.Errorf("unexpected benchmark name %q (suffix not stripped?)", b.Name)
		}
		delete(want, b.Name)
	}
	for name := range want {
		t.Errorf("missing benchmark %q", name)
	}

	// Metrics survive alongside the stripped name.
	for _, b := range sum.Benchmarks {
		if b.Name == "BenchmarkAgentLearn" {
			if b.Metrics["allocs/op"] != 0 || b.Metrics["B/op"] != 0 {
				t.Errorf("AgentLearn metrics = %v", b.Metrics)
			}
		}
		if b.Name == "BenchmarkFig06TrainMaxThroughput" {
			if b.Metrics["Gbps"] != 0.7394 {
				t.Errorf("Gbps metric = %v", b.Metrics["Gbps"])
			}
		}
	}
	if sum.CPU == "" || sum.GoOS != "linux" {
		t.Errorf("header not parsed: %+v", sum)
	}
}

// TestCompareGate: the regression gate flags only matched benchmarks
// that slowed beyond the threshold.
func TestCompareGate(t *testing.T) {
	dir := t.TempDir()
	baseline := dir + "/base.json"
	base := &Summary{Benchmarks: []Benchmark{
		{Name: "BenchmarkFig06TrainParallel", NsPerOp: 100e6},
		{Name: "BenchmarkFig07TrainMinEnergy", NsPerOp: 200e6},
		{Name: "BenchmarkAgentLearn", NsPerOp: 300e3},
	}}
	data, err := json.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(baseline, data, 0o644); err != nil {
		t.Fatal(err)
	}

	cur := &Summary{Benchmarks: []Benchmark{
		{Name: "BenchmarkFig06TrainParallel", NsPerOp: 60e6},   // improved
		{Name: "BenchmarkFig07TrainMinEnergy", NsPerOp: 240e6}, // +20%: regressed
		{Name: "BenchmarkAgentLearn", NsPerOp: 900e3},          // filtered out by -match Fig
		{Name: "BenchmarkFigNew", NsPerOp: 1},                  // no baseline: skipped
	}}
	var buf bytes.Buffer
	n, err := compare(&buf, baseline, cur, "Fig", 0.15, 1)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("regressions = %d, want 1\n%s", n, buf.String())
	}
	if !strings.Contains(buf.String(), "REGRESSED") {
		t.Errorf("report missing REGRESSED marker:\n%s", buf.String())
	}

	n, err = compare(&buf, baseline, cur, "Fig", 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("regressions at 50%% threshold = %d, want 0", n)
	}
}
