// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON summary, so CI can track the per-figure
// wall-clock trajectory across PRs (BENCH_PR2.json and successors)
// without parsing benchmark text in shell.
//
// It also carries the CI regression gates: -compare diffs the parsed
// results against a previous summary and fails the run when any
// matched benchmark slowed down beyond the threshold, and
// -assert-faster fails it when a relative ordering between two
// benchmarks of the same run does not hold (e.g. the parallel trainer
// must beat the round-robin one on a multi-core runner).
//
// Usage:
//
//	go test -run '^$' -bench . -benchtime=1x . | go run ./cmd/benchjson -o BENCH_PR3.json
//	go run ./cmd/benchjson -o BENCH_PR3.json bench.txt
//	go run ./cmd/benchjson -o BENCH_PR3.json -compare BENCH_PR2.json -max-regress 0.15 -match Fig bench.txt
//	go run ./cmd/benchjson -assert-faster 'BenchmarkFig06TrainParallel<BenchmarkFig06TrainMaxThroughput' bench.txt
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	MsPerOp    float64 `json:"ms_per_op"`
	// Metrics holds b.ReportMetric custom units (e.g. "Gbps",
	// "MaxT-speedup") and, with -benchmem, B/op and allocs/op.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Summary is the emitted document.
type Summary struct {
	GoOS       string      `json:"goos,omitempty"`
	GoArch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// benchLine matches "BenchmarkName-8   12   3456 ns/op   <metrics...>";
// the -N GOMAXPROCS suffix is stripped from the name.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([0-9.]+) ns/op(.*)$`)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	out := flag.String("o", "", "output file (default stdout)")
	baseline := flag.String("compare", "", "baseline JSON summary to diff against; regressions beyond -max-regress fail the run")
	maxRegress := flag.Float64("max-regress", 0.15, "allowed fractional ns/op slowdown per benchmark before -compare fails")
	match := flag.String("match", "", "substring filter selecting which benchmarks the -compare gate applies to (empty = all)")
	minMs := flag.Float64("min-ms", 0, "ignore baseline benchmarks faster than this many ms in -compare (single-iteration runs of µs-scale benchmarks are pure noise)")
	assertFaster := flag.String("assert-faster", "", "'A<B' pair of benchmark names from this run: fail unless A's ns/op is lower than B's")
	flag.Parse()

	in := io.Reader(os.Stdin)
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		in = f
	}
	sum, err := parse(in)
	if err != nil {
		log.Fatal(err)
	}
	data, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
	} else {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %d benchmarks to %s\n", len(sum.Benchmarks), *out)
	}
	if *assertFaster != "" {
		if err := checkFaster(os.Stderr, sum, *assertFaster); err != nil {
			log.Fatal(err)
		}
	}
	if *baseline != "" {
		// The report goes to stderr so the JSON summary on stdout
		// (when -o is unset) stays machine-parseable.
		regressions, err := compare(os.Stderr, *baseline, sum, *match, *maxRegress, *minMs)
		if err != nil {
			log.Fatal(err)
		}
		if regressions > 0 {
			log.Fatalf("%d benchmark(s) regressed more than %.0f%% vs %s",
				regressions, *maxRegress*100, *baseline)
		}
	}
}

// checkFaster enforces an "A<B" ordering between two benchmarks of
// the current run: A's ns/op must be strictly lower than B's. Both
// names must be present — a missing benchmark is a failure, not a
// skip, so a renamed benchmark cannot silently disable the gate.
func checkFaster(w io.Writer, sum *Summary, spec string) error {
	names := strings.SplitN(spec, "<", 2)
	if len(names) != 2 || names[0] == "" || names[1] == "" {
		return fmt.Errorf("-assert-faster %q: want the form 'A<B'", spec)
	}
	ns := make(map[string]float64, 2)
	for _, b := range sum.Benchmarks {
		if b.Name == names[0] || b.Name == names[1] {
			ns[b.Name] = b.NsPerOp
		}
	}
	for _, name := range names {
		if _, ok := ns[name]; !ok {
			return fmt.Errorf("-assert-faster: benchmark %s not found in this run", name)
		}
	}
	a, b := ns[names[0]], ns[names[1]]
	fmt.Fprintf(w, "%-40s %12.2fms  vs  %s %12.2fms  (%.2fx)\n",
		names[0], a/1e6, names[1], b/1e6, b/a)
	if a >= b {
		return fmt.Errorf("-assert-faster: %s (%.2fms) is not faster than %s (%.2fms)",
			names[0], a/1e6, names[1], b/1e6)
	}
	return nil
}

// compare diffs the current summary against a baseline JSON file and
// reports the per-benchmark ns/op delta for every benchmark present
// in both, matching the filter and at least minMs in the baseline.
// It returns how many exceeded the allowed slowdown.
func compare(w io.Writer, baselinePath string, cur *Summary, match string, maxRegress, minMs float64) (int, error) {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return 0, err
	}
	var base Summary
	if err := json.Unmarshal(data, &base); err != nil {
		return 0, fmt.Errorf("%s: %w", baselinePath, err)
	}
	old := make(map[string]float64, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		old[b.Name] = b.NsPerOp
	}
	regressions := 0
	for _, b := range cur.Benchmarks {
		if match != "" && !strings.Contains(b.Name, match) {
			continue
		}
		prev, ok := old[b.Name]
		if !ok || prev <= 0 || prev < minMs*1e6 {
			continue
		}
		delta := (b.NsPerOp - prev) / prev
		status := "ok"
		if delta > maxRegress {
			status = "REGRESSED"
			regressions++
		}
		fmt.Fprintf(w, "%-40s %12.2fms -> %12.2fms  %+6.1f%%  %s\n",
			b.Name, prev/1e6, b.NsPerOp/1e6, delta*100, status)
	}
	return regressions, nil
}

func parse(r io.Reader) (*Summary, error) {
	sum := &Summary{Benchmarks: []Benchmark{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			sum.GoOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			sum.GoArch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			sum.CPU = strings.TrimPrefix(line, "cpu: ")
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("line %q: %w", line, err)
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("line %q: %w", line, err)
		}
		b := Benchmark{Name: m[1], Iterations: iters, NsPerOp: ns, MsPerOp: ns / 1e6}
		// Trailing "<value> <unit>" pairs: custom metrics and -benchmem.
		fields := strings.Fields(m[4])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[fields[i+1]] = v
		}
		sum.Benchmarks = append(sum.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return sum, nil
}
