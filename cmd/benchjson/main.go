// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON summary, so CI can track the per-figure
// wall-clock trajectory across PRs (BENCH_PR2.json and successors)
// without parsing benchmark text in shell.
//
// Usage:
//
//	go test -run '^$' -bench . -benchtime=1x . | go run ./cmd/benchjson -o BENCH_PR2.json
//	go run ./cmd/benchjson -o BENCH_PR2.json bench.txt
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	MsPerOp    float64 `json:"ms_per_op"`
	// Metrics holds b.ReportMetric custom units (e.g. "Gbps",
	// "MaxT-speedup") and, with -benchmem, B/op and allocs/op.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Summary is the emitted document.
type Summary struct {
	GoOS       string      `json:"goos,omitempty"`
	GoArch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// benchLine matches "BenchmarkName-8   12   3456 ns/op   <metrics...>";
// the -N GOMAXPROCS suffix is stripped from the name.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([0-9.]+) ns/op(.*)$`)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	in := io.Reader(os.Stdin)
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		in = f
	}
	sum, err := parse(in)
	if err != nil {
		log.Fatal(err)
	}
	data, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d benchmarks to %s\n", len(sum.Benchmarks), *out)
}

func parse(r io.Reader) (*Summary, error) {
	sum := &Summary{Benchmarks: []Benchmark{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			sum.GoOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			sum.GoArch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			sum.CPU = strings.TrimPrefix(line, "cpu: ")
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("line %q: %w", line, err)
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("line %q: %w", line, err)
		}
		b := Benchmark{Name: m[1], Iterations: iters, NsPerOp: ns, MsPerOp: ns / 1e6}
		// Trailing "<value> <unit>" pairs: custom metrics and -benchmem.
		fields := strings.Fields(m[4])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[fields[i+1]] = v
		}
		sum.Benchmarks = append(sum.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return sum, nil
}
