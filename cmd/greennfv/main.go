// Command greennfv trains and evaluates GreenNFV SLA policies from
// the command line.
//
// Usage:
//
//	greennfv -sla efficiency -steps 4000 -actors 4
//	greennfv -sla maxthroughput -budget 2000 -steps 4000
//	greennfv -sla minenergy -floor 7.5 -steps 4000
//
// Training can persist the policy for the serving plane, and a saved
// checkpoint is evaluated directly without retraining (serve-only
// mode):
//
//	greennfv -sla efficiency -steps 4000 -save-policy policy.ckpt
//	greennfv -sla efficiency -policy policy.ckpt -compare
//	greennfv -sla efficiency -write-spec node.json   # node spec for greennfvd/greennfv-agent
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"greennfv"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("greennfv: ")

	slaName := flag.String("sla", "efficiency", "SLA: efficiency | maxthroughput | minenergy")
	budget := flag.Float64("budget", 2000, "energy budget in joules (maxthroughput SLA)")
	floor := flag.Float64("floor", 7.5, "throughput floor in Gbps (minenergy SLA)")
	steps := flag.Int("steps", 4000, "training episodes")
	actors := flag.Int("actors", 4, "Ape-X actor count")
	chain := flag.String("chain", "standard", "chain preset: standard | heavy | light")
	seed := flag.Int64("seed", 17, "random seed")
	compare := flag.Bool("compare", false, "also run the non-learning baselines")
	policyPath := flag.String("policy", "", "serve-only mode: evaluate this policy checkpoint, skip training")
	savePolicy := flag.String("save-policy", "", "write the trained policy checkpoint here (greennfvd format)")
	writeSpec := flag.String("write-spec", "", "write the node spec JSON here for the serving plane, then exit")
	flag.Parse()

	cfg := greennfv.DefaultConfig()
	cfg.Seed = *seed
	switch *chain {
	case "standard":
		cfg.Chain = greennfv.StandardChain
	case "heavy":
		cfg.Chain = greennfv.HeavyChain
	case "light":
		cfg.Chain = greennfv.LightChain
	default:
		log.Fatalf("unknown chain %q", *chain)
	}
	sys, err := greennfv.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}

	var agreement greennfv.SLA
	switch *slaName {
	case "efficiency":
		agreement = greennfv.EfficiencySLA()
	case "maxthroughput":
		agreement, err = greennfv.MaxThroughputSLA(*budget)
	case "minenergy":
		agreement, err = greennfv.MinEnergySLA(*floor)
	default:
		log.Fatalf("unknown SLA %q", *slaName)
	}
	if err != nil {
		log.Fatal(err)
	}

	if *writeSpec != "" {
		f, err := os.Create(*writeSpec)
		if err != nil {
			log.Fatal(err)
		}
		if err := sys.WriteNodeSpec(agreement, f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("node spec for %s written to %s\n", agreement.Describe(), *writeSpec)
		os.Exit(0)
	}

	var policy *greennfv.Policy
	if *policyPath != "" {
		f, err := os.Open(*policyPath)
		if err != nil {
			log.Fatal(err)
		}
		policy, err = sys.LoadPolicyCheckpoint(agreement, f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("serving %s from checkpoint %s (no training)\n", agreement.Describe(), *policyPath)
	} else {
		fmt.Printf("training %s for %d episodes with %d actors...\n",
			agreement.Describe(), *steps, *actors)
		policy, err = sys.Train(agreement, greennfv.TrainOptions{Steps: *steps, Actors: *actors})
		if err != nil {
			log.Fatal(err)
		}
		episodes, tput, energy, eff := policy.TrainingCurve()
		fmt.Println("\ntraining progress (sampled):")
		fmt.Printf("%-10s %-8s %-10s %-8s\n", "episode", "Gbps", "energy J", "Gbps/kJ")
		for i := range episodes {
			fmt.Printf("%-10d %-8.2f %-10.0f %-8.2f\n", episodes[i], tput[i], energy[i], eff[i])
		}
		if *savePolicy != "" {
			f, err := os.Create(*savePolicy)
			if err != nil {
				log.Fatal(err)
			}
			if err := policy.SaveCheckpoint(f); err != nil {
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("policy checkpoint written to %s\n", *savePolicy)
		}
	}

	m, err := sys.Measure(policy)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndeployed policy: %.2f Gbps, %.0f J/window (%.0f W), lambda=%.2f Gbps/kJ, SLA satisfied: %v\n",
		m.ThroughputGbps, m.EnergyJ, m.PowerWatts, m.EfficiencyGbpsPerKJ, m.SLASatisfied)

	if *compare {
		fmt.Println("\nbaselines:")
		for _, name := range []greennfv.BaselineName{greennfv.Baseline, greennfv.Heuristic, greennfv.EEPstate} {
			b, err := sys.MeasureBaseline(name)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-10s %.2f Gbps, %.0f J, lambda=%.2f\n",
				name, b.ThroughputGbps, b.EnergyJ, b.EfficiencyGbpsPerKJ)
		}
	}
	os.Exit(0)
}
