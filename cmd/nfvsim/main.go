// Command nfvsim runs the packet-level OpenNetVM-style pipeline: a
// traffic generator feeding a real service chain of NF
// implementations (lock-free rings, bounded mempool, poll/callback
// workers), reporting functional counters and pipeline behaviour.
//
// Usage:
//
//	nfvsim -packets 100000 -chain firewall,nat,ids -pps 1e6 -frame 256
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"greennfv/internal/onvm"
	"greennfv/internal/traffic"
)

func buildHandler(name string) (onvm.Handler, error) {
	switch name {
	case "firewall":
		return onvm.NewFirewall([]onvm.FirewallRule{
			{DstPortLo: 22, DstPortHi: 22, Action: onvm.FirewallDeny},
		}, true), nil
	case "nat":
		return onvm.NewNAT([4]byte{203, 0, 113, 1}), nil
	case "router":
		return onvm.NewRouter([]onvm.Route{
			{Prefix: [4]byte{10, 0, 0, 0}, Bits: 8, Port: 1},
		}, 0)
	case "ids":
		return onvm.NewIDS([][]byte{[]byte("EVIL"), []byte("exploit")}, false)
	case "crypto":
		return onvm.NewCryptoNF(bytes.Repeat([]byte{0x5a}, 16))
	case "monitor":
		return onvm.NewMonitor(), nil
	case "dpi":
		return onvm.NewDPI(), nil
	case "loadbalancer":
		return onvm.NewLoadBalancer(4)
	case "ratelimiter":
		return onvm.NewRateLimiter(2e6, 1024)
	case "vxlan":
		return onvm.NewVXLANTunnel(42, false)
	default:
		return nil, fmt.Errorf("unknown NF %q (have firewall,nat,router,ids,crypto,monitor,dpi,loadbalancer,ratelimiter,vxlan)", name)
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("nfvsim: ")

	packets := flag.Int("packets", 100000, "packets to inject")
	chainSpec := flag.String("chain", "firewall,nat,monitor", "comma-separated NF list")
	pps := flag.Float64("pps", 1e6, "offered packet rate")
	frame := flag.Int("frame", 256, "frame size in bytes")
	batch := flag.Int("batch", 32, "NF dequeue burst size")
	ringCap := flag.Int("ring", 4096, "per-NF ring capacity (power of two)")
	pool := flag.Int("pool", 8192, "mempool size in mbufs")
	seed := flag.Int64("seed", 1, "traffic seed")
	flag.Parse()

	var handlers []onvm.Handler
	for _, name := range strings.Split(*chainSpec, ",") {
		h, err := buildHandler(strings.TrimSpace(name))
		if err != nil {
			log.Fatal(err)
		}
		handlers = append(handlers, h)
	}
	chain, err := onvm.NewChain("sim", onvm.ChainConfig{RingCap: *ringCap, Batch: *batch}, handlers...)
	if err != nil {
		log.Fatal(err)
	}
	mgr, err := onvm.NewManager(onvm.ManagerConfig{
		PoolSize: *pool, PollSpins: 64, DrainTimeout: 30 * time.Second,
	}, chain)
	if err != nil {
		log.Fatal(err)
	}

	flow, err := traffic.SimpleFlow(1, *pps, *frame)
	if err != nil {
		log.Fatal(err)
	}
	gen, err := traffic.NewGenerator(*seed, flow)
	if err != nil {
		log.Fatal(err)
	}
	sent := 0
	src := &onvm.GeneratorSource{Next: func() ([]byte, float64, bool) {
		if sent >= *packets {
			return nil, 0, false
		}
		sent++
		ev := gen.Next()
		return ev.Frame, ev.Time, true
	}}

	fmt.Printf("chain: %v\n", chain)
	res, err := mgr.Run([]onvm.Source{src}, *packets)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\ninjected:   %d packets (%.2f Mpps offered over %.3fs virtual)\n",
		res.Injected, *pps/1e6, res.VirtualSpan)
	fmt.Printf("completed:  %d packets in %v wall (%.2f Mpps pipeline rate)\n",
		res.Completed, res.Duration.Round(time.Millisecond),
		float64(res.Completed)/res.Duration.Seconds()/1e6)
	fmt.Printf("drained:    %v\n", res.Drained)
	st := mgr.Stats()
	fmt.Printf("rx drops:   %d no-mbuf, %d ring-full, %d oversized\n",
		st.RxDropsNoMbuf.Load(), st.RxDropsRing.Load(), st.RxDropsTooLong.Load())
	fmt.Println("\nper-NF counters:")
	for _, nf := range chain.NFs() {
		s := nf.Stats().Snapshot()
		fmt.Printf("  %-12s rx=%-8d tx=%-8d drop=%-6d ringdrop=%-6d wakeups=%-6d batches=%d\n",
			nf.Name(), s.RxPackets, s.TxPackets, s.Dropped, s.RingDrops, s.Wakeups, s.BatchesSeen)
	}
}
