// Command greennfv-agent is the GreenNFV serving-plane node agent: it
// runs on (or simulates) one chain-hosting node, reports observations
// to the greennfvd controller each control interval, and applies the
// vetted knob configs it gets back — re-checked against the local SLA
// guardrail before touching anything.
//
// The agent degrades gracefully rather than failing: when the
// controller is unreachable or holds, it walks the local ladder
// (last-known-good config while fresh, then the heuristic fallback
// controller, then holding the current config) and re-registers
// transparently once the controller returns. It exits only on SIGINT/
// SIGTERM — or when the controller fences it because a replacement
// agent registered for the same node ID.
//
// Usage:
//
//	greennfv-agent -spec node.json -controller 127.0.0.1:7070 -node node-a
package main

import (
	"encoding/json"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"greennfv/internal/rl/apex"
	"greennfv/internal/serve"
	"greennfv/internal/stats"
)

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("greennfv-agent: ")

	specPath := flag.String("spec", "", "node spec JSON file (required; same file greennfvd loads)")
	controller := flag.String("controller", "127.0.0.1:7070", "controller RPC address")
	hostname, _ := os.Hostname()
	nodeID := flag.String("node", hostname, "node identity for lease registration")
	rank := flag.Int("rank", 0, "node rank (seeds this node's traffic process)")
	interval := flag.Duration("interval", time.Second, "control interval")
	stale := flag.Duration("stale", 30*time.Second, "distrust last-known-good configs older than this")
	metricsAddr := flag.String("metrics", "127.0.0.1:9465", "Prometheus /metrics listen address (empty disables)")
	flag.Parse()

	if *specPath == "" {
		log.Fatal("-spec is required")
	}
	spec, err := readSpec(*specPath)
	if err != nil {
		log.Fatal(err)
	}
	agent, err := serve.NewNodeAgent(serve.NodeConfig{
		NodeID:         *nodeID,
		ControllerAddr: *controller,
		Spec:           spec,
		Rank:           *rank,
		StaleAfter:     *stale,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer agent.Close()
	log.Printf("node %q reporting to %s every %v", *nodeID, *controller, *interval)

	if *metricsAddr != "" {
		reg := stats.NewRegistry()
		agent.RegisterMetrics(reg)
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			log.Fatalf("metrics listener: %v", err)
		}
		mux := http.NewServeMux()
		mux.Handle("/metrics", reg)
		go http.Serve(ln, mux)
		log.Printf("metrics on http://%s/metrics", ln.Addr())
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	ticker := time.NewTicker(*interval)
	defer ticker.Stop()

	mode := ""
	for {
		select {
		case <-stop:
			log.Print("shutting down")
			for _, name := range agent.Counters().Names() {
				log.Printf("counter %s = %d", name, agent.Counters().Get(name))
			}
			return
		case now := <-ticker.C:
			err := agent.Step(now)
			if serve.IsStaleNodeEpoch(err) {
				// A replacement agent owns this node; fighting it would
				// flap the hardware.
				log.Fatalf("fenced by controller (superseded lease): %v", err)
			}
			if agent.Mode() != mode {
				mode = agent.Mode()
				res := agent.LastResult()
				log.Printf("config source now %q (%.2f Gbps, %.0f J)", mode, res.ThroughputGbps, res.EnergyJoules)
			}
			if err != nil {
				log.Printf("degraded interval (%s): %v", agent.Mode(), err)
			}
		}
	}
}

// readSpec loads the node spec (environment half only; BuildEnv
// validates it).
func readSpec(path string) (apex.ActorSpec, error) {
	f, err := os.Open(path)
	if err != nil {
		return apex.ActorSpec{}, err
	}
	defer f.Close()
	var spec apex.ActorSpec
	if err := json.NewDecoder(f).Decode(&spec); err != nil {
		return apex.ActorSpec{}, err
	}
	return spec, nil
}
