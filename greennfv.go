// Package greennfv is the public API of the GreenNFV reproduction:
// energy-efficient NFV resource scheduling under SLA constraints
// (Nine, Kosar, Bulut, Hwang — SC 2023).
//
// The library models an NFV node (OpenNetVM-style service chains on a
// dual-socket Xeon with DVFS, Intel CAT cache partitioning, DDIO and
// DMA buffers), offers three SLA families (maximum throughput under
// an energy budget, minimum energy under a throughput floor, and
// unconstrained energy efficiency), and trains a DDPG policy with
// the Ape-X distributed prioritized-replay architecture to drive the
// five per-NF resource knobs: CPU share, core frequency, LLC
// allocation, DMA buffer size and packet batch size.
//
// Quickstart:
//
//	sys, _ := greennfv.NewSystem(greennfv.DefaultConfig())
//	policy, _ := sys.Train(greennfv.EfficiencySLA(), greennfv.TrainOptions{Steps: 4000})
//	m, _ := sys.Measure(policy)
//	fmt.Printf("%.1f Gbps at %.0f J\n", m.ThroughputGbps, m.EnergyJ)
package greennfv

import (
	"errors"
	"fmt"
	"io"

	"greennfv/internal/control"
	"greennfv/internal/env"
	"greennfv/internal/perfmodel"
	"greennfv/internal/rl/apex"
	"greennfv/internal/rl/ddpg"
	"greennfv/internal/sla"
)

// Flow describes one offered traffic stream.
type Flow struct {
	// PPS is the mean packet rate.
	PPS float64
	// FrameBytes is the Ethernet frame size (64–1518).
	FrameBytes int
	// Burstiness is the index of dispersion (1 = Poisson).
	Burstiness float64
}

// ChainPreset selects one of the calibrated service chains.
type ChainPreset int

// Available chain presets.
const (
	// StandardChain is the paper's 3-NF evaluation chain
	// (firewall → NAT → monitor class).
	StandardChain ChainPreset = iota
	// HeavyChain is cache- and payload-hungry (IDS → crypto →
	// router class).
	HeavyChain
	// LightChain is a 2-NF header-only chain.
	LightChain
)

// SLA is an opaque service-level agreement.
type SLA struct{ spec sla.SLA }

// MaxThroughputSLA maximizes throughput subject to an energy budget
// in joules per 10-second measurement window (paper eq. 1).
func MaxThroughputSLA(energyBudgetJ float64) (SLA, error) {
	s, err := sla.NewMaxThroughput(energyBudgetJ)
	return SLA{spec: s}, err
}

// MinEnergySLA minimizes energy subject to a throughput floor in
// Gbps (paper eq. 2).
func MinEnergySLA(minGbps float64) (SLA, error) {
	s, err := sla.NewMinEnergy(minGbps)
	return SLA{spec: s}, err
}

// EfficiencySLA maximizes throughput per unit energy (paper eq. 3).
func EfficiencySLA() SLA { return SLA{spec: sla.NewEnergyEfficiency()} }

// Describe renders the SLA.
func (s SLA) Describe() string { return s.spec.Describe() }

// Config assembles a system.
type Config struct {
	// Chain selects the service chain preset.
	Chain ChainPreset
	// Flows is the offered workload; nil selects the paper's
	// five-flow evaluation mix.
	Flows []Flow
	// LoadJitter is per-interval relative load noise.
	LoadJitter float64
	// Seed fixes randomness.
	Seed int64
}

// DefaultConfig returns the paper's evaluation setup.
func DefaultConfig() Config {
	return Config{Chain: StandardChain, LoadJitter: 0.03, Seed: 17}
}

// Measurement is one control-interval outcome.
type Measurement struct {
	ThroughputGbps float64
	EnergyJ        float64
	// EfficiencyGbpsPerKJ is the paper's λ.
	EfficiencyGbpsPerKJ float64
	CPUPercent          float64
	PowerWatts          float64
	MissRate            float64
	SLASatisfied        bool
}

// System is a configured NFV node simulation.
type System struct {
	cfg   Config
	chain perfmodel.ChainSpec
	flows []env.FlowLoad
}

// NewSystem validates the configuration and builds a system.
func NewSystem(cfg Config) (*System, error) {
	var chain perfmodel.ChainSpec
	switch cfg.Chain {
	case StandardChain:
		chain = perfmodel.StandardChain()
	case HeavyChain:
		chain = perfmodel.HeavyChain()
	case LightChain:
		chain = perfmodel.LightChain()
	default:
		return nil, fmt.Errorf("greennfv: unknown chain preset %d", cfg.Chain)
	}
	flows := make([]env.FlowLoad, 0, len(cfg.Flows))
	for _, f := range cfg.Flows {
		flows = append(flows, env.FlowLoad{PPS: f.PPS, FrameBytes: f.FrameBytes, Burstiness: f.Burstiness})
	}
	if len(flows) == 0 {
		flows = env.StandardWorkload()
	}
	if _, err := env.Aggregate(flows); err != nil {
		return nil, err
	}
	return &System{cfg: cfg, chain: chain, flows: flows}, nil
}

// factory builds environments for controllers.
func (s *System) factory(slaSpec sla.SLA) control.EnvFactory {
	return func(seed int64, opts perfmodel.EvalOptions) (*env.Env, error) {
		return env.New(env.Config{
			Model:      perfmodel.Default(),
			Chain:      s.chain,
			Bounds:     perfmodel.DefaultBounds(),
			SLA:        slaSpec,
			Flows:      s.flows,
			LoadJitter: s.cfg.LoadJitter,
			Options:    opts,
			Seed:       seed,
		})
	}
}

// TrainOptions sizes a training run.
type TrainOptions struct {
	// Steps is the total training episodes (paper-scale runs use
	// tens of thousands; 4000 reproduces the shapes).
	Steps int
	// Actors is the Ape-X worker count (default 4).
	Actors int
	// Parallel trains with the concurrent Ape-X pipeline — one
	// batched-acting driver over all actor environments, sharded
	// replay, prefetched minibatches — (fast, non-deterministic)
	// instead of the reproducible round-robin interleaving.
	Parallel bool
	// ReplayShards overrides the parallel replay's lock-stripe count
	// (0 = auto).
	ReplayShards int
	// Float32 runs the learner's updates through the single-precision
	// NN fast path (8-lane AVX2 kernels, ~1.3x the update rate) when
	// combined with Parallel or RemoteActors. The deployed policy is
	// converted back to float64 when training ends; deviation from the
	// f64 update is bounded by the ddpg parity test (max |ΔQ| well
	// under 1e-3). Ignored by the default deterministic mode, which
	// stays byte-reproducible.
	Float32 bool
	// SamplesPerInsert, when positive, paces the learner against the
	// actors in the asynchronous modes (Parallel, RemoteActors): at
	// most SamplesPerInsert replay samples are consumed per inserted
	// transition, so a learner that outruns experience generation
	// blocks for fresh data instead of replaying a stale buffer. Zero
	// disables pacing; the deterministic mode ignores it.
	SamplesPerInsert float64
	// RemoteActors > 0 trains with actor OS processes connected to
	// the learner over net/rpc — the paper's six-node topology. The
	// processes run ActorCommand (default: an "apexactor" binary
	// found on PATH; build it with `go build ./cmd/apexactor`).
	RemoteActors int
	// ActorCommand is the argv prefix that launches one actor
	// process; the system appends the learner address, rank, step
	// budget and spec arguments.
	ActorCommand []string
	// Checkpoint, when set, makes training write its full state (the
	// networks, optimizer moments, noise/RNG stream and progress
	// counters) to this path atomically: on an update interval in the
	// RemoteActors mode, and when training completes in every mode. A
	// killed training run can then continue via Resume instead of
	// starting over.
	Checkpoint string
	// CheckpointEvery is the learner-update interval between
	// checkpoints in the RemoteActors mode (<= 0: completion only).
	CheckpointEvery int
	// CheckpointReplay additionally snapshots the replay buffer, making
	// resumed updates bit-exact at the cost of much larger files.
	CheckpointReplay bool
	// Resume restores training state from a checkpoint file written by
	// an identically-configured earlier run before stepping.
	Resume string
}

// Policy is a trained GreenNFV controller bound to its SLA.
type Policy struct {
	slaSpec sla.SLA
	ctl     *control.GreenNFV
}

// Train runs Ape-X DDPG training for the SLA and returns the policy.
func (s *System) Train(agreement SLA, opts TrainOptions) (*Policy, error) {
	if opts.Steps <= 0 {
		return nil, errors.New("greennfv: TrainOptions.Steps must be positive")
	}
	actors := opts.Actors
	if actors <= 0 {
		actors = 4
	}
	g := control.NewGreenNFV(agreement.spec, opts.Steps, actors, s.cfg.Seed)
	g.Parallel = opts.Parallel
	g.ReplayShards = opts.ReplayShards
	g.Float32 = opts.Float32
	g.SamplesPerInsert = opts.SamplesPerInsert
	g.CheckpointPath = opts.Checkpoint
	g.CheckpointEvery = opts.CheckpointEvery
	g.CheckpointReplay = opts.CheckpointReplay
	g.ResumePath = opts.Resume
	if opts.RemoteActors > 0 {
		g.RemoteActors = opts.RemoteActors
		g.SpawnRemote = opts.ActorCommand
		if len(g.SpawnRemote) == 0 {
			g.SpawnRemote = []string{"apexactor"}
		}
		g.RemoteSpec = s.actorSpec(agreement.spec)
	}
	if err := g.Prepare(s.factory(agreement.spec)); err != nil {
		return nil, err
	}
	return &Policy{slaSpec: agreement.spec, ctl: g}, nil
}

// actorSpec serializes the system's environment setup for remote
// actor processes (which cannot share the in-process EnvFactory
// closure). Seeding matches the in-process factory: actor rank r gets
// environment seed Seed+131r.
func (s *System) actorSpec(slaSpec sla.SLA) *apex.ActorSpec {
	chain := "standard"
	switch s.cfg.Chain {
	case HeavyChain:
		chain = "heavy"
	case LightChain:
		chain = "light"
	}
	flows := make([]apex.FlowSpec, 0, len(s.flows))
	for _, f := range s.flows {
		flows = append(flows, apex.FlowSpec{PPS: f.PPS, FrameBytes: f.FrameBytes, Burstiness: f.Burstiness})
	}
	return &apex.ActorSpec{
		Chain:      chain,
		Flows:      flows,
		LoadJitter: s.cfg.LoadJitter,
		SLA:        slaSpec,
		EnvSeed:    s.cfg.Seed,
	}
}

// TrainingCurve reports the recorded training-progress points
// (episode, throughput Gbps, energy J, efficiency). A loaded policy
// has no curve.
func (p *Policy) TrainingCurve() (episodes []int, tput, energy, efficiency []float64) {
	if p.ctl.Trainer() == nil {
		return
	}
	for _, s := range p.ctl.Trainer().Snapshots {
		episodes = append(episodes, s.Episode)
		tput = append(tput, s.ThroughputGbps)
		energy = append(energy, s.EnergyJ)
		efficiency = append(efficiency, s.Efficiency)
	}
	return
}

// Save writes the trained policy network to w. A saved policy can be
// reloaded with System.LoadPolicy — the train-once / deploy-many
// workflow whose energy amortization Figure 11 quantifies.
func (p *Policy) Save(w io.Writer) error {
	if p == nil || p.ctl == nil {
		return errors.New("greennfv: nil policy")
	}
	return p.ctl.SaveActor(w)
}

// SaveCheckpoint writes the policy's full agent state to w — the
// serving-plane checkpoint format that cmd/greennfvd serves and
// System.LoadPolicyCheckpoint reloads. Unlike Save (actor network
// only), the checkpoint embeds the agent configuration, so loaders
// validate dimensions instead of assuming them.
func (p *Policy) SaveCheckpoint(w io.Writer) error {
	if p == nil || p.ctl == nil {
		return errors.New("greennfv: nil policy")
	}
	return p.ctl.SavePolicyState(w)
}

// LoadPolicyCheckpoint reads a full policy checkpoint written by
// Policy.SaveCheckpoint, validates its dimensions against the
// system's chain, and binds it to the SLA — the serve-only path:
// train once, deploy the checkpoint many times without the training
// driver.
func (s *System) LoadPolicyCheckpoint(agreement SLA, r io.Reader) (*Policy, error) {
	probe, err := s.factory(agreement.spec)(s.cfg.Seed, perfmodel.EvalOptions{})
	if err != nil {
		return nil, err
	}
	agent, err := ddpg.LoadAgent(r)
	if err != nil {
		return nil, err
	}
	if cfg := agent.Config(); cfg.StateDim != probe.StateDim() || cfg.ActionDim != probe.ActionDim() {
		return nil, fmt.Errorf("greennfv: checkpoint dims %dx%d do not match chain %dx%d",
			cfg.StateDim, cfg.ActionDim, probe.StateDim(), probe.ActionDim())
	}
	ctl := control.NewGreenNFVFromAgent(agreement.spec, agent)
	ctl.Seed = s.cfg.Seed
	return &Policy{slaSpec: agreement.spec, ctl: ctl}, nil
}

// WriteNodeSpec serializes the node environment contract (chain,
// workload, SLA, seed) as one line of JSON — the spec file
// cmd/greennfvd and cmd/greennfv-agent share so controller and fleet
// agree on the environment a policy was trained for.
func (s *System) WriteNodeSpec(agreement SLA, w io.Writer) error {
	return s.actorSpec(agreement.spec).Encode(w)
}

// LoadPolicy reads a policy checkpoint saved by Policy.Save, binding
// it to the given SLA for constraint reporting.
func (s *System) LoadPolicy(agreement SLA, r io.Reader) (*Policy, error) {
	// State and action dimensions follow from the chain length.
	probe, err := s.factory(agreement.spec)(s.cfg.Seed, perfmodel.EvalOptions{})
	if err != nil {
		return nil, err
	}
	ctl, err := control.NewGreenNFVFromActor(agreement.spec, probe.StateDim(), probe.ActionDim(), r)
	if err != nil {
		return nil, err
	}
	ctl.Seed = s.cfg.Seed
	return &Policy{slaSpec: agreement.spec, ctl: ctl}, nil
}

// Measure deploys the policy for several control intervals and
// returns the settled measurement.
func (s *System) Measure(p *Policy) (Measurement, error) {
	if p == nil || p.ctl == nil {
		return Measurement{}, errors.New("greennfv: nil policy")
	}
	tput, energy, last, err := control.Run(p.ctl, s.factory(p.slaSpec), s.cfg.Seed+1000, 20, 10)
	if err != nil {
		return Measurement{}, err
	}
	return Measurement{
		ThroughputGbps:      tput,
		EnergyJ:             energy,
		EfficiencyGbpsPerKJ: tput / (energy / 1000),
		CPUPercent:          last.CPUPercent,
		PowerWatts:          last.PowerWatts,
		MissRate:            last.MissRate,
		SLASatisfied:        p.slaSpec.Satisfied(tput, energy),
	}, nil
}

// BaselineName selects one of the comparison controllers.
type BaselineName string

// Comparison controllers from the paper's evaluation.
const (
	// Baseline is the untuned busy-poll platform.
	Baseline BaselineName = "baseline"
	// Heuristic is Algorithm 1 of the paper.
	Heuristic BaselineName = "heuristic"
	// EEPstate is the Iqbal & John P/C-state scheme.
	EEPstate BaselineName = "ee-pstate"
)

// MeasureBaseline runs one of the non-learning comparison controllers
// and returns its settled measurement.
func (s *System) MeasureBaseline(name BaselineName) (Measurement, error) {
	var c control.Controller
	steps, settle := 12, 6
	switch name {
	case Baseline:
		c = control.NewBaseline()
	case Heuristic:
		c = control.NewHeuristic()
		steps, settle = 400, 50
	case EEPstate:
		c = control.NewEEPstate()
		steps, settle = 50, 10
	default:
		return Measurement{}, fmt.Errorf("greennfv: unknown baseline %q", name)
	}
	if err := c.Prepare(s.factory(sla.NewEnergyEfficiency())); err != nil {
		return Measurement{}, err
	}
	tput, energy, last, err := control.Run(c, s.factory(sla.NewEnergyEfficiency()), s.cfg.Seed+1000, steps, settle)
	if err != nil {
		return Measurement{}, err
	}
	return Measurement{
		ThroughputGbps:      tput,
		EnergyJ:             energy,
		EfficiencyGbpsPerKJ: tput / (energy / 1000),
		CPUPercent:          last.CPUPercent,
		PowerWatts:          last.PowerWatts,
		MissRate:            last.MissRate,
		SLASatisfied:        true,
	}, nil
}
