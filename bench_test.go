package greennfv

// The benchmark harness regenerates every figure of the paper's
// evaluation (the paper has no numbered tables). Each benchmark runs
// the corresponding experiment driver, prints the same rows/series
// the paper plots (once, on the first iteration) and reports the
// headline numbers as custom metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the full evaluation. Budgets here are the bench-scale
// ones; cmd/experiments runs the Full() budgets and records the
// outcome in EXPERIMENTS.md.

import (
	"fmt"
	"os"
	"sync"
	"testing"

	"greennfv/internal/cluster"
	"greennfv/internal/experiments"
	"greennfv/internal/perfmodel"
)

// benchOptions returns the training budgets used by the benchmark
// harness: large enough for the paper's shapes, small enough that the
// whole suite completes in minutes.
func benchOptions() experiments.Options {
	o := experiments.Quick()
	o.TrainSteps = 1000
	o.QTrainSteps = 6000
	o.ControlSteps = 20
	return o
}

var benchPrintOnce sync.Map

func printTableOnce(b *testing.B, t *experiments.Table) {
	b.Helper()
	if _, loaded := benchPrintOnce.LoadOrStore(t.ID, true); !loaded {
		if err := t.Render(os.Stdout); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig01LLCAllocation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Fig1()
		if err != nil {
			b.Fatal(err)
		}
		printTableOnce(b, t)
	}
}

func BenchmarkFig02CPUFrequency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Fig2()
		if err != nil {
			b.Fatal(err)
		}
		printTableOnce(b, t)
	}
}

func BenchmarkFig03BatchSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Fig3()
		if err != nil {
			b.Fatal(err)
		}
		printTableOnce(b, t)
	}
}

func BenchmarkFig04DMABuffer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Fig4()
		if err != nil {
			b.Fatal(err)
		}
		printTableOnce(b, t)
	}
}

func BenchmarkFig06TrainMaxThroughput(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		t, g, err := experiments.Fig6(o)
		if err != nil {
			b.Fatal(err)
		}
		printTableOnce(b, t)
		if snap, ok := experiments.FinalSnapshot(g); ok {
			b.ReportMetric(snap.ThroughputGbps, "Gbps")
			b.ReportMetric(snap.EnergyJ, "J")
		}
	}
}

// BenchmarkFig06TrainParallel is the same training run with the
// concurrent Ape-X mode (actor goroutines + batched learner) instead
// of the deterministic round-robin interleaving; on multi-core
// machines actor time overlaps learner time.
func BenchmarkFig06TrainParallel(b *testing.B) {
	o := benchOptions()
	o.ParallelTrain = true
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Fig6(o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig07TrainMinEnergy(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		t, g, err := experiments.Fig7(o)
		if err != nil {
			b.Fatal(err)
		}
		printTableOnce(b, t)
		if snap, ok := experiments.FinalSnapshot(g); ok {
			b.ReportMetric(snap.ThroughputGbps, "Gbps")
			b.ReportMetric(snap.EnergyJ, "J")
		}
	}
}

func BenchmarkFig08TrainEfficiency(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		t, g, err := experiments.Fig8(o)
		if err != nil {
			b.Fatal(err)
		}
		printTableOnce(b, t)
		if snap, ok := experiments.FinalSnapshot(g); ok {
			b.ReportMetric(snap.Efficiency, "Gbps/kJ")
		}
	}
}

func BenchmarkFig09ModelComparison(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		t, rows, err := experiments.Fig9(o)
		if err != nil {
			b.Fatal(err)
		}
		printTableOnce(b, t)
		for _, r := range rows {
			switch r.Name {
			case "GreenNFV(MaxT)":
				b.ReportMetric(r.SpeedupVsBase, "MaxT-speedup")
			case "GreenNFV(MinE)":
				b.ReportMetric(r.EnergyVsBase*100, "MinE-energy%")
			}
		}
	}
}

func BenchmarkFig10FixedSLA(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		t, err := experiments.Fig10(o)
		if err != nil {
			b.Fatal(err)
		}
		printTableOnce(b, t)
	}
}

func BenchmarkFig11AmortizedSaving(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		t, err := experiments.Fig11(o)
		if err != nil {
			b.Fatal(err)
		}
		printTableOnce(b, t)
	}
}

func BenchmarkValidationDES(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.ValidationDES()
		if err != nil {
			b.Fatal(err)
		}
		printTableOnce(b, t)
	}
}

func BenchmarkConsolidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.ExpConsolidation()
		if err != nil {
			b.Fatal(err)
		}
		printTableOnce(b, t)
	}
}

func BenchmarkAblationPER(b *testing.B) {
	o := benchOptions()
	o.TrainSteps = 600
	for i := 0; i < b.N; i++ {
		t, err := experiments.AblationPER(o)
		if err != nil {
			b.Fatal(err)
		}
		printTableOnce(b, t)
	}
}

func BenchmarkAblationActors(b *testing.B) {
	o := benchOptions()
	o.TrainSteps = 400
	for i := 0; i < b.N; i++ {
		t, err := experiments.AblationActors(o)
		if err != nil {
			b.Fatal(err)
		}
		printTableOnce(b, t)
	}
}

func BenchmarkAblationKnobs(b *testing.B) {
	o := benchOptions()
	o.TrainSteps = 400
	for i := 0; i < b.N; i++ {
		t, err := experiments.AblationKnobs(o)
		if err != nil {
			b.Fatal(err)
		}
		printTableOnce(b, t)
	}
}

func BenchmarkAblationReward(b *testing.B) {
	o := benchOptions()
	o.TrainSteps = 400
	for i := 0; i < b.N; i++ {
		t, err := experiments.AblationReward(o)
		if err != nil {
			b.Fatal(err)
		}
		printTableOnce(b, t)
	}
}

// Substrate micro-benchmarks: the performance-critical primitives.

// benchClusterWorkload builds the six-chain service-function path the
// cluster figure evaluates: presets cycling standard/heavy/light, a
// linear hop chain, and the FigCluster latency budget.
func benchClusterWorkload() cluster.Workload {
	w := cluster.Workload{LatencyBudgetNs: 150e3}
	for i := 0; i < 6; i++ {
		var spec perfmodel.ChainSpec
		switch i % 3 {
		case 0:
			spec = perfmodel.StandardChain()
		case 1:
			spec = perfmodel.HeavyChain()
		default:
			spec = perfmodel.LightChain()
		}
		spec.Name = fmt.Sprintf("%s-%d", spec.Name, i)
		w.Chains = append(w.Chains, cluster.ChainLoad{
			Chain:   spec,
			Traffic: perfmodel.Traffic{OfferedPPS: 1.5e6, FrameBytes: 512, Burstiness: 1},
		})
		if i > 0 {
			w.Hops = append(w.Hops, cluster.Hop{From: i - 1, To: i, PPS: 600e3, FrameBytes: 512})
		}
	}
	return w
}

// BenchmarkClusterEvaluate measures the zero-alloc cluster evaluation
// at 1, 4, and 8 heterogeneous nodes — the inner loop of ClusterEnv
// stepping. Outside the Fig regression gate (it is a substrate
// micro-benchmark, not a figure), but recorded in BENCH.json like the
// rest of the root suite.
func BenchmarkClusterEvaluate(b *testing.B) {
	w := benchClusterWorkload()
	knobs := make([][]perfmodel.NFKnobs, len(w.Chains))
	for i := range w.Chains {
		knobs[i] = perfmodel.DefaultKnobs(len(w.Chains[i].Chain.NFs))
	}
	for _, n := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("nodes=%d", n), func(b *testing.B) {
			topo := cluster.Heterogeneous(n)
			assign := make([]int, len(w.Chains))
			for i := range assign {
				assign[i] = i % n
			}
			var res cluster.Result
			// Warm the caller-owned scratch so the numbers show the
			// steady state, not the first-call growth.
			if err := topo.EvaluateClusterInto(&res, &w, knobs, assign, perfmodel.EvalOptions{}); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := topo.EvaluateClusterInto(&res, &w, knobs, assign, perfmodel.EvalOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkModelEvaluate(b *testing.B) {
	sys, err := NewSystem(DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	_ = sys
	o := benchOptions()
	_ = o
	// One full analytic evaluation per iteration via the baseline
	// controller path.
	m, err := sys.MeasureBaseline(Baseline)
	if err != nil {
		b.Fatal(err)
	}
	_ = m
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.MeasureBaseline(Baseline); err != nil {
			b.Fatal(err)
		}
	}
}

func ExampleNewSystem() {
	sys, err := NewSystem(DefaultConfig())
	if err != nil {
		panic(err)
	}
	m, err := sys.MeasureBaseline(Baseline)
	if err != nil {
		panic(err)
	}
	fmt.Printf("baseline runs at about 2 Gbps: %v\n", m.ThroughputGbps > 1 && m.ThroughputGbps < 3.5)
	// Output: baseline runs at about 2 Gbps: true
}
