package greennfv

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSLAConstructors(t *testing.T) {
	if _, err := MaxThroughputSLA(0); err == nil {
		t.Error("zero budget accepted")
	}
	if _, err := MinEnergySLA(-1); err == nil {
		t.Error("negative floor accepted")
	}
	s, err := MaxThroughputSLA(2000)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s.Describe(), "2000") {
		t.Errorf("describe = %q", s.Describe())
	}
	if EfficiencySLA().Describe() == "" {
		t.Error("empty EE description")
	}
}

func TestNewSystemValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Chain = ChainPreset(99)
	if _, err := NewSystem(cfg); err == nil {
		t.Error("bad preset accepted")
	}
	cfg = DefaultConfig()
	cfg.Flows = []Flow{{PPS: -1, FrameBytes: 64}}
	if _, err := NewSystem(cfg); err == nil {
		t.Error("bad flow accepted")
	}
	for _, preset := range []ChainPreset{StandardChain, HeavyChain, LightChain} {
		cfg = DefaultConfig()
		cfg.Chain = preset
		if _, err := NewSystem(cfg); err != nil {
			t.Errorf("preset %d: %v", preset, err)
		}
	}
}

func TestTrainMeasureRoundTrip(t *testing.T) {
	sys, err := NewSystem(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Train(EfficiencySLA(), TrainOptions{}); err == nil {
		t.Error("zero steps accepted")
	}
	policy, err := sys.Train(EfficiencySLA(), TrainOptions{Steps: 300, Actors: 2})
	if err != nil {
		t.Fatal(err)
	}
	eps, tput, energy, eff := policy.TrainingCurve()
	if len(eps) == 0 || len(tput) != len(eps) || len(energy) != len(eps) || len(eff) != len(eps) {
		t.Fatalf("curve lengths %d/%d/%d/%d", len(eps), len(tput), len(energy), len(eff))
	}
	m, err := sys.Measure(policy)
	if err != nil {
		t.Fatal(err)
	}
	if m.ThroughputGbps <= 0 || m.EnergyJ <= 0 || m.EfficiencyGbpsPerKJ <= 0 {
		t.Errorf("measurement %+v", m)
	}
	if _, err := sys.Measure(nil); err == nil {
		t.Error("nil policy accepted")
	}
}

func TestMeasureBaselines(t *testing.T) {
	sys, err := NewSystem(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	base, err := sys.MeasureBaseline(Baseline)
	if err != nil {
		t.Fatal(err)
	}
	heur, err := sys.MeasureBaseline(Heuristic)
	if err != nil {
		t.Fatal(err)
	}
	eep, err := sys.MeasureBaseline(EEPstate)
	if err != nil {
		t.Fatal(err)
	}
	if heur.ThroughputGbps <= base.ThroughputGbps {
		t.Errorf("heuristic %.2f not above baseline %.2f", heur.ThroughputGbps, base.ThroughputGbps)
	}
	if eep.EnergyJ >= base.EnergyJ {
		t.Errorf("EE-Pstate energy %.0f not below baseline %.0f", eep.EnergyJ, base.EnergyJ)
	}
	if _, err := sys.MeasureBaseline("nope"); err == nil {
		t.Error("unknown baseline accepted")
	}
}

func TestCustomWorkload(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Flows = []Flow{
		{PPS: 1e6, FrameBytes: 256, Burstiness: 2},
		{PPS: 500e3, FrameBytes: 1024, Burstiness: 1},
	}
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sys.MeasureBaseline(Baseline)
	if err != nil {
		t.Fatal(err)
	}
	if m.ThroughputGbps <= 0 {
		t.Error("custom workload produced no throughput")
	}
}

func TestPolicySaveLoadRoundTrip(t *testing.T) {
	sys, err := NewSystem(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	policy, err := sys.Train(EfficiencySLA(), TrainOptions{Steps: 250, Actors: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := policy.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty checkpoint")
	}
	loaded, err := sys.LoadPolicy(EfficiencySLA(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	m1, err := sys.Measure(policy)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := sys.Measure(loaded)
	if err != nil {
		t.Fatal(err)
	}
	if m1.ThroughputGbps != m2.ThroughputGbps || m1.EnergyJ != m2.EnergyJ {
		t.Errorf("loaded policy differs: %+v vs %+v", m1, m2)
	}
	// A loaded policy has no training curve.
	eps, _, _, _ := loaded.TrainingCurve()
	if len(eps) != 0 {
		t.Error("loaded policy reports a training curve")
	}
	// Corrupt checkpoints are rejected.
	if _, err := sys.LoadPolicy(EfficiencySLA(), strings.NewReader("garbage")); err == nil {
		t.Error("garbage checkpoint accepted")
	}
	// Saving a nil policy errors.
	var nilPolicy *Policy
	if err := nilPolicy.Save(&buf); err == nil {
		t.Error("nil policy save accepted")
	}
}

func TestTrainCheckpointResume(t *testing.T) {
	sys, err := NewSystem(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "train.ckpt")
	opts := TrainOptions{Steps: 200, Actors: 2, Checkpoint: path, CheckpointReplay: true}
	if _, err := sys.Train(EfficiencySLA(), opts); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("training wrote no checkpoint: %v", err)
	}
	// An identically configured run resumes from the completed
	// checkpoint (and, being already at budget, finishes immediately
	// with a usable policy).
	opts.Resume = path
	policy, err := sys.Train(EfficiencySLA(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Measure(policy); err != nil {
		t.Fatal(err)
	}
	// A bogus resume path must fail loudly, not train from scratch.
	opts.Resume = filepath.Join(t.TempDir(), "missing.ckpt")
	if _, err := sys.Train(EfficiencySLA(), opts); err == nil {
		t.Error("missing resume checkpoint accepted")
	}
}

func TestPolicyCheckpointServeOnly(t *testing.T) {
	sys, err := NewSystem(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	policy, err := sys.Train(EfficiencySLA(), TrainOptions{Steps: 250, Actors: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := policy.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	blob := buf.Bytes()

	// Serve-only reload reproduces the trained policy's measurement.
	loaded, err := sys.LoadPolicyCheckpoint(EfficiencySLA(), bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	m1, err := sys.Measure(policy)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := sys.Measure(loaded)
	if err != nil {
		t.Fatal(err)
	}
	if m1.ThroughputGbps != m2.ThroughputGbps || m1.EnergyJ != m2.EnergyJ {
		t.Errorf("checkpoint-loaded policy differs: %+v vs %+v", m1, m2)
	}

	// Corrupt checkpoints are rejected.
	if _, err := sys.LoadPolicyCheckpoint(EfficiencySLA(), strings.NewReader("garbage")); err == nil {
		t.Error("garbage checkpoint accepted")
	}
	// A checkpoint trained for another chain (different dimensions) is
	// rejected instead of mis-deployed.
	lightCfg := DefaultConfig()
	lightCfg.Chain = LightChain
	lightSys, err := NewSystem(lightCfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lightSys.LoadPolicyCheckpoint(EfficiencySLA(), bytes.NewReader(blob)); err == nil {
		t.Error("dimension-mismatched checkpoint accepted")
	}

	// The node spec round-trips and rebuilds a matching environment.
	var spec bytes.Buffer
	if err := sys.WriteNodeSpec(EfficiencySLA(), &spec); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(spec.String(), "\"env_seed\"") {
		t.Errorf("node spec JSON missing fields: %s", spec.String())
	}
}
