module greennfv

go 1.24
