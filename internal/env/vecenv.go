package env

import (
	"errors"
	"fmt"
	"runtime"

	"greennfv/internal/perfmodel"
	"greennfv/internal/pool"
)

// VecEnv steps N independent environments as one batched call over
// the shared bounded worker pool, so drivers that would otherwise
// serialize on single-env evaluation spend wall-clock proportional to
// the slowest environment, not the sum. Step takes a row-major action
// matrix (the shape batch policy rollouts produce); Do runs one
// arbitrary closure per environment and is what the heterogeneous
// figure drivers use (Fig 10 binds one controller per environment).
// Every environment is stepped with its own RNG, knobs and scratch,
// so the results are bit-identical to stepping the environments one
// by one — the worker count is purely a throughput knob.
//
// A VecEnv owns its observation/reward/result buffers and reuses
// them across calls: Step performs no allocations in steady state.
// The VecEnv itself is not goroutine-safe; one caller drives it.
type VecEnv struct {
	envs    []*Env
	workers int

	obs     []float64 // N × StateDim, row-major
	rewards []float64
	infos   []perfmodel.Result

	// StepBatch double-buffers observations (prev holds the states the
	// actions were computed from) and owns the action matrix it hands
	// the policy, so a fused act→step cycle allocates nothing after the
	// first call.
	prev    []float64
	actions []float64
}

// NewVecEnv wraps the given environments, which must share state and
// action dimensionality. workers <= 0 selects GOMAXPROCS.
func NewVecEnv(envs []*Env, workers int) (*VecEnv, error) {
	if len(envs) == 0 {
		return nil, errors.New("env: VecEnv needs at least one environment")
	}
	sd, ad := envs[0].StateDim(), envs[0].ActionDim()
	for i, e := range envs {
		if e == nil {
			return nil, fmt.Errorf("env: VecEnv environment %d is nil", i)
		}
		if e.StateDim() != sd || e.ActionDim() != ad {
			return nil, fmt.Errorf("env: VecEnv environment %d has dims (%d,%d), want (%d,%d)",
				i, e.StateDim(), e.ActionDim(), sd, ad)
		}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &VecEnv{
		envs:    envs,
		workers: workers,
		obs:     make([]float64, len(envs)*sd),
		rewards: make([]float64, len(envs)),
		infos:   make([]perfmodel.Result, len(envs)),
	}, nil
}

// Len reports the number of wrapped environments.
func (v *VecEnv) Len() int { return len(v.envs) }

// StateDim reports the per-environment observation length.
func (v *VecEnv) StateDim() int { return v.envs[0].StateDim() }

// ActionDim reports the per-environment action length.
func (v *VecEnv) ActionDim() int { return v.envs[0].ActionDim() }

// Env exposes environment i (for reading knobs or measurements).
func (v *VecEnv) Env(i int) *Env { return v.envs[i] }

// Reset reseeds every environment with seedBase + 131·i (the per-actor
// seed spacing used throughout the repo) and returns the batched
// initial observation ([N × StateDim], owned by the VecEnv).
func (v *VecEnv) Reset(seedBase int64) []float64 {
	sd := v.StateDim()
	_ = v.Do(func(i int, e *Env) error {
		e.ResetInto(seedBase+int64(i)*131, v.obs[i*sd:(i+1)*sd])
		return nil
	})
	return v.obs
}

// Step applies the row-major action matrix ([N × ActionDim]) and steps
// every environment. The returned observation matrix ([N × StateDim]),
// rewards and results are owned by the VecEnv and valid until the
// next call; each Result's PerNF aliases its environment's scratch.
// On failure the lowest-indexed environment's error is returned.
func (v *VecEnv) Step(actions []float64) (obs []float64, rewards []float64, infos []perfmodel.Result, err error) {
	sd, ad := v.StateDim(), v.ActionDim()
	if len(actions) != len(v.envs)*ad {
		return nil, nil, nil, fmt.Errorf("env: VecEnv action matrix len %d, want %d", len(actions), len(v.envs)*ad)
	}
	n := len(v.envs)
	if v.workers <= 1 || n == 1 {
		// Inline loop rather than Do: no closure capture, so the
		// single-worker batch step allocates nothing. Stops at the
		// first failure, as with Do.
		for i, e := range v.envs {
			if err := v.stepOne(i, e, actions, sd, ad); err != nil {
				return nil, nil, nil, fmt.Errorf("env: VecEnv environment %d: %w", i, err)
			}
		}
		return v.obs, v.rewards, v.infos, nil
	}
	err = v.Do(func(i int, e *Env) error {
		return v.stepOne(i, e, actions, sd, ad)
	})
	if err != nil {
		return nil, nil, nil, err
	}
	return v.obs, v.rewards, v.infos, nil
}

// Obs returns the current observation matrix ([N × StateDim], owned
// by the VecEnv): the rows written by the last Reset/Step/StepBatch.
func (v *VecEnv) Obs() []float64 { return v.obs }

// StepBatch runs one fused act→step cycle: act is called with the
// current observation matrix ([n × StateDim]) and must fill the
// VecEnv-owned action matrix ([n × ActionDim]); every environment is
// then stepped. It returns the states the actions were computed from
// (prev), the actions, and the usual Step outputs. All returned
// slices are owned by the VecEnv: prev and actions stay valid until
// the next StepBatch, obs/rewards/infos until the next Step or
// StepBatch. No allocations after the first call.
func (v *VecEnv) StepBatch(act func(states []float64, n int, actions []float64) error) (prev, actions, obs, rewards []float64, infos []perfmodel.Result, err error) {
	n := len(v.envs)
	if v.prev == nil {
		v.prev = make([]float64, len(v.obs))
	}
	if v.actions == nil {
		v.actions = make([]float64, n*v.ActionDim())
	}
	// The current observations become the acting states; Step then
	// writes the successor observations into the other buffer.
	v.obs, v.prev = v.prev, v.obs
	if err := act(v.prev, n, v.actions); err != nil {
		v.obs, v.prev = v.prev, v.obs // keep Obs pointing at valid rows
		return nil, nil, nil, nil, nil, err
	}
	if _, _, _, err := v.Step(v.actions); err != nil {
		v.obs, v.prev = v.prev, v.obs
		return nil, nil, nil, nil, nil, err
	}
	return v.prev, v.actions, v.obs, v.rewards, v.infos, nil
}

// stepOne steps environment i into the VecEnv's row-i buffers.
func (v *VecEnv) stepOne(i int, e *Env, actions []float64, sd, ad int) error {
	r, info, err := e.StepInto(actions[i*ad:(i+1)*ad], v.obs[i*sd:(i+1)*sd])
	if err != nil {
		return err
	}
	v.rewards[i] = r
	v.infos[i] = info
	return nil
}

// Do applies f to every (index, environment) pair across the shared
// worker pool; f(i, ·) may touch only index-i state, which makes the
// batch race-free and its outcome identical to a serial loop. Drivers
// use this to run heterogeneous controllers — each bound to its own
// environment — through one bounded-parallel call. A failure stops
// the batch (no new indices start once one has failed) and the
// lowest-indexed error is returned deterministically.
func (v *VecEnv) Do(f func(i int, e *Env) error) error {
	i, err := pool.ForEach(len(v.envs), v.workers, func(i int) error {
		return f(i, v.envs[i])
	})
	if err != nil {
		return fmt.Errorf("env: VecEnv environment %d: %w", i, err)
	}
	return nil
}
