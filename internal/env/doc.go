// Package env is the reinforcement-learning environment GreenNFV
// trains in: it wraps the performance model (the simulated testbed)
// behind the paper's state space (equation 8: per-NF throughput,
// energy, CPU utilization, packet arrival rate) and action space
// (equation 7: per-NF CPU share, frequency, LLC allocation, DMA
// buffer size, batch size), and pays rewards through the configured
// SLA.
//
// # Paper mapping
//
//   - StatePerNF/KnobsPerNF: equations 8 and 7.
//   - Reward: delegated to internal/sla (§4.3.1, equations 1–3).
//   - StandardWorkload: the five-flow evaluation mix; LoadJitter is
//     the per-interval load noise that defeats static heuristics.
//   - FrozenKnobs: the knob-contribution ablation.
//
// # Concurrency and determinism
//
// An Env is deterministic given its Seed: the load process draws
// from a private RNG whose source is reused across Resets, so a
// seeded episode replays exactly — the property the round-robin
// Ape-X mode and the recorded training figures rely on. An Env is
// NOT goroutine-safe; each Ape-X actor owns one instance. VecEnv
// steps a set of instances as a batch over the shared bounded pool
// (internal/pool) and keeps per-instance determinism at any worker
// count. StepInto/ObserveInto are the zero-alloc stepping path
// (caller-owned observation buffer, pre-clamped default knobs);
// Step/Observe are allocating wrappers.
//
// # Stepper and ClusterEnv
//
// The Stepper interface is the stepping surface the RL stack trains
// against (internal/rl/apex takes Steppers, not concrete Envs). Env
// and ClusterEnv both satisfy it. ClusterEnv scales the environment
// to a multi-node cluster (internal/cluster): per-chain knob blocks
// in chain-major order and, when ClusterConfig.Placement is nil on a
// multi-node topology, a trailing C×N placement-logit block the
// agent decodes by per-chain argmax (the DRL placement head). With a
// non-nil Placement policy the assignment is solved once at
// construction and pinned; the action space is knobs only. A 1-node
// ClusterEnv is bit-for-bit the single-node Env — same observations,
// rewards, and knob decode (shared decodeKnobAction) — the parity
// the figure suite pins. ClusterEnv keeps Env's determinism and
// zero-alloc StepInto contracts.
package env
