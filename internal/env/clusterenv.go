package env

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"greennfv/internal/cluster"
	"greennfv/internal/perfmodel"
	"greennfv/internal/placement"
	"greennfv/internal/sla"
)

// ClusterChain is one service chain of a cluster workload: a spec
// plus its own offered flow set.
type ClusterChain struct {
	Chain perfmodel.ChainSpec
	Flows []FlowLoad
}

// ClusterConfig assembles a multi-node environment.
type ClusterConfig struct {
	Topology cluster.Topology
	Chains   []ClusterChain
	// Hops is the inter-chain traffic graph (cluster.Workload.Hops).
	Hops []cluster.Hop
	// LatencyBudgetNs gates SLA-credited throughput (0 disables).
	LatencyBudgetNs float64
	Bounds          perfmodel.KnobBounds
	SLA             sla.SLA
	LoadJitter      float64
	FrozenKnobs     [KnobsPerNF]bool
	Options         perfmodel.EvalOptions
	Seed            int64
	// Placement pins the assignment: the policy solves the derived
	// placement instance once at construction and every episode runs
	// under that assignment. nil on a multi-node topology enables the
	// DRL placement head — the action vector grows a per-chain
	// placement logit block and the agent places chains itself.
	Placement placement.Policy
}

// ClusterEnv is the multi-node counterpart of Env: one environment
// stepping a whole cluster.Workload through cluster evaluation. Its
// observation vector is the concatenation of every chain's per-NF
// block (same normalization as Env) followed, on multi-node
// topologies, by per-node {utilization, power} pairs and the current
// assignment one-hot — and its action vector is every chain's knob
// block followed by the placement logit block when the DRL head is
// active. On a 1-node topology both vectors collapse to Env's layout
// and the episode trace is bit-identical to Env (the single-node
// parity contract, pinned by TestClusterEnvSingleNodeParity).
//
// Not goroutine-safe; each Ape-X actor owns one instance.
type ClusterEnv struct {
	cfg  ClusterConfig
	w    cluster.Workload
	base []perfmodel.Traffic
	src  rand.Source
	rng  *rand.Rand
	// defFlat/knobFlat back the per-chain knob views so neither Reset
	// nor Step allocates.
	defFlat  []perfmodel.NFKnobs
	knobFlat []perfmodel.NFKnobs
	defKnobs [][]perfmodel.NFKnobs
	knobs    [][]perfmodel.NFKnobs
	defKnob  perfmodel.NFKnobs
	assign   []int
	pinned   []int // non-nil when placement is policy-pinned
	last     cluster.Result
	summary  perfmodel.Result
	stepNum  int
	nfTotal  int
}

// NewCluster validates the configuration and builds the environment.
func NewCluster(cfg ClusterConfig) (*ClusterEnv, error) {
	if err := cfg.Topology.Validate(); err != nil {
		return nil, err
	}
	if len(cfg.Chains) == 0 {
		return nil, errors.New("env: cluster needs at least one chain")
	}
	if cfg.LoadJitter < 0 || cfg.LoadJitter >= 1 {
		return nil, errors.New("env: LoadJitter must be in [0,1)")
	}
	e := &ClusterEnv{cfg: cfg}
	e.w = cluster.Workload{
		Chains:          make([]cluster.ChainLoad, len(cfg.Chains)),
		Hops:            cfg.Hops,
		LatencyBudgetNs: cfg.LatencyBudgetNs,
	}
	e.base = make([]perfmodel.Traffic, len(cfg.Chains))
	for i := range cfg.Chains {
		tr, err := Aggregate(cfg.Chains[i].Flows)
		if err != nil {
			return nil, fmt.Errorf("env: chain %d: %w", i, err)
		}
		e.base[i] = tr
		e.w.Chains[i] = cluster.ChainLoad{Chain: cfg.Chains[i].Chain, Traffic: tr}
		e.nfTotal += len(cfg.Chains[i].Chain.NFs)
	}
	if err := e.w.Validate(); err != nil {
		return nil, err
	}

	// Pre-clamped default knobs, chain-major in one backing array.
	e.defFlat = make([]perfmodel.NFKnobs, 0, e.nfTotal)
	e.knobFlat = make([]perfmodel.NFKnobs, e.nfTotal)
	e.defKnobs = make([][]perfmodel.NFKnobs, len(cfg.Chains))
	e.knobs = make([][]perfmodel.NFKnobs, len(cfg.Chains))
	off := 0
	for i := range cfg.Chains {
		n := len(cfg.Chains[i].Chain.NFs)
		def := perfmodel.DefaultKnobs(n)
		for j := range def {
			def[j] = cfg.Bounds.Clamp(def[j])
		}
		e.defFlat = append(e.defFlat, def...)
		e.defKnobs[i] = e.defFlat[off : off+n : off+n]
		e.knobs[i] = e.knobFlat[off : off+n : off+n]
		off += n
	}
	e.defKnob = perfmodel.DefaultKnobs(1)[0]

	e.assign = make([]int, len(cfg.Chains))
	if cfg.Placement != nil && e.NumNodes() > 1 {
		sol, err := cfg.Placement.Solve(e.w.PlacementProblem(&e.cfg.Topology))
		if err != nil {
			return nil, fmt.Errorf("env: placement (%s): %w", cfg.Placement.Name(), err)
		}
		e.pinned = make([]int, len(cfg.Chains))
		for i := range cfg.Chains {
			e.pinned[i] = sol.Assignment[cfg.Chains[i].Chain.Name]
		}
	}
	e.Reset(cfg.Seed)
	return e, nil
}

// NumChains reports the chain count, NumNodes the host count, and
// NumNFs the total NF count across all chains.
func (e *ClusterEnv) NumChains() int { return len(e.cfg.Chains) }

// NumNodes reports the host count.
func (e *ClusterEnv) NumNodes() int { return len(e.cfg.Topology.Nodes) }

// NumNFs reports the total NF count across all chains.
func (e *ClusterEnv) NumNFs() int { return e.nfTotal }

// PlacementHead reports whether the agent's action vector carries the
// per-chain placement logit block (multi-node topology, no pinned
// policy).
func (e *ClusterEnv) PlacementHead() bool {
	return e.cfg.Placement == nil && e.NumNodes() > 1
}

// StateDim reports the observation length: StatePerNF per NF, plus —
// on multi-node topologies — 2 per node (utilization, power) and the
// chains×nodes assignment one-hot.
func (e *ClusterEnv) StateDim() int {
	d := StatePerNF * e.nfTotal
	if e.NumNodes() > 1 {
		d += 2*e.NumNodes() + e.NumChains()*e.NumNodes()
	}
	return d
}

// ActionDim reports the action length: KnobsPerNF per NF, plus the
// chains×nodes placement logit block when the DRL head is active.
func (e *ClusterEnv) ActionDim() int {
	d := KnobsPerNF * e.nfTotal
	if e.PlacementHead() {
		d += e.NumChains() * e.NumNodes()
	}
	return d
}

// SLA returns the environment's agreement.
func (e *ClusterEnv) SLA() sla.SLA { return e.cfg.SLA }

// Bounds returns the knob bounds.
func (e *ClusterEnv) Bounds() perfmodel.KnobBounds { return e.cfg.Bounds }

// Assignment returns a copy of the current chain→node assignment.
func (e *ClusterEnv) Assignment() []int {
	out := make([]int, len(e.assign))
	copy(out, e.assign)
	return out
}

// LastCluster returns the most recent cluster measurement. Its
// slices alias environment scratch, valid until the next step.
func (e *ClusterEnv) LastCluster() *cluster.Result { return &e.last }

// Knobs returns a copy of the current knobs, chain-major.
func (e *ClusterEnv) Knobs() []perfmodel.NFKnobs {
	out := make([]perfmodel.NFKnobs, len(e.knobFlat))
	copy(out, e.knobFlat)
	return out
}

// Reset reseeds the load process, restores default knobs and the
// initial assignment, evaluates once, and returns the initial
// observation.
func (e *ClusterEnv) Reset(seed int64) []float64 {
	return e.ResetInto(seed, make([]float64, e.StateDim()))
}

// ResetInto is Reset with a caller-owned observation buffer.
func (e *ClusterEnv) ResetInto(seed int64, obs []float64) []float64 {
	if e.src == nil {
		e.src = rand.NewSource(seed)
		e.rng = rand.New(e.src)
	} else {
		e.src.Seed(seed)
	}
	copy(e.knobFlat, e.defFlat)
	e.stepNum = 0
	for c := range e.w.Chains {
		e.w.Chains[c].Traffic = e.base[c]
	}
	e.resetAssignment()
	e.evaluate()
	return e.ObserveInto(obs)
}

// resetAssignment restores the episode-start placement: the pinned
// policy solution when one is configured, node 0 on a single node,
// round-robin otherwise (the DRL head's starting point before its
// first action).
func (e *ClusterEnv) resetAssignment() {
	switch {
	case e.pinned != nil:
		copy(e.assign, e.pinned)
	case e.NumNodes() == 1:
		for c := range e.assign {
			e.assign[c] = 0
		}
	default:
		for c := range e.assign {
			e.assign[c] = c % e.NumNodes()
		}
	}
}

// Step applies an action vector in [-1,1]^ActionDim, advances the
// load process, evaluates the cluster, and returns (observation,
// reward, info). The info Result is the cluster roll-up (Summary).
func (e *ClusterEnv) Step(action []float64) ([]float64, float64, perfmodel.Result, error) {
	obs := make([]float64, e.StateDim())
	r, info, err := e.StepInto(action, obs)
	if err != nil {
		return nil, 0, perfmodel.Result{}, err
	}
	return obs, r, info, nil
}

// StepInto is Step with a caller-owned observation buffer: the
// zero-alloc path the Ape-X actors drive.
func (e *ClusterEnv) StepInto(action, obs []float64) (float64, perfmodel.Result, error) {
	if len(action) != e.ActionDim() {
		return 0, perfmodel.Result{}, fmt.Errorf("env: action dim %d, want %d", len(action), e.ActionDim())
	}
	if len(obs) != e.StateDim() {
		return 0, perfmodel.Result{}, fmt.Errorf("env: obs dim %d, want %d", len(obs), e.StateDim())
	}
	// Knob block: identical decode to Env, chain-major.
	j := 0
	for c := range e.knobs {
		n := len(e.knobs[c])
		for i := 0; i < n; i++ {
			e.knobs[c][i] = decodeKnobAction(action[j:j+KnobsPerNF], e.cfg.Bounds, e.cfg.FrozenKnobs, e.defKnob, n)
			j += KnobsPerNF
		}
	}
	// Placement logit block: argmax per chain, ties to the lowest
	// node index so the decode is deterministic.
	if e.PlacementHead() {
		nNodes := e.NumNodes()
		for c := range e.assign {
			best, bestV := 0, action[j]
			for n := 1; n < nNodes; n++ {
				if v := action[j+n]; v > bestV {
					best, bestV = n, v
				}
			}
			e.assign[c] = best
			j += nNodes
		}
	}
	e.advanceLoad()
	e.evaluate()
	e.stepNum++
	r := e.cfg.SLA.Reward(e.last.SLAGbps, e.last.EnergyJ)
	e.ObserveInto(obs)
	return r, e.summary, nil
}

// advanceLoad jitters each chain's offered traffic around its base,
// consuming the shared RNG in chain order — one chain on one node
// reproduces Env's stream exactly.
func (e *ClusterEnv) advanceLoad() {
	for c := range e.w.Chains {
		e.w.Chains[c].Traffic = e.base[c]
		if e.cfg.LoadJitter > 0 {
			f := 1 + e.cfg.LoadJitter*(2*e.rng.Float64()-1)
			e.w.Chains[c].Traffic.OfferedPPS *= f
		}
	}
}

// evaluate runs the cluster model at the current knobs, load, and
// assignment, reusing e.last's scratch, then refreshes the roll-up.
func (e *ClusterEnv) evaluate() {
	if err := e.cfg.Topology.EvaluateClusterInto(&e.last, &e.w, e.knobs, e.assign, e.cfg.Options); err != nil {
		// Inputs are clamped and validated at construction; a model
		// error here is a programming bug.
		panic(fmt.Sprintf("env: cluster evaluate: %v", err))
	}
	// Roll the cluster result into the Stepper's single-Result view.
	var busy, power, util float64
	for n := range e.last.PerNode {
		power += e.last.PerNode[n].PowerWatts
		busy += e.last.PerNode[n].BusyCores
		util += e.last.PerNode[n].Utilization
	}
	e.summary = perfmodel.Result{
		ThroughputGbps: e.last.ThroughputGbps,
		EnergyJoules:   e.last.EnergyJ,
		PowerWatts:     power,
		CPUPercent:     busy * 100,
		Utilization:    util / float64(e.NumNodes()),
		Efficiency:     e.last.Efficiency,
	}
}

// Summary returns the cluster roll-up StepInto reports as its info
// Result.
func (e *ClusterEnv) Summary() perfmodel.Result { return e.summary }

// ObserveInto writes the observation vector into dst (length
// StateDim; a buffer of the wrong size panics) and returns dst. The
// per-NF block reuses Env's normalization per chain; node utilization
// is already in [0,1] and node power normalizes against a 400 W
// envelope.
func (e *ClusterEnv) ObserveInto(dst []float64) []float64 {
	if len(dst) != e.StateDim() {
		panic(fmt.Sprintf("env: ObserveInto buffer len %d, want %d", len(dst), e.StateDim()))
	}
	j := 0
	for c := range e.w.Chains {
		r := &e.last.PerChain[c]
		n := float64(len(e.w.Chains[c].Chain.NFs))
		for i := 0; i < len(e.w.Chains[c].Chain.NFs); i++ {
			busy := 0.0
			if i < len(r.PerNF) {
				busy = r.PerNF[i].BusyCores
			}
			dst[j] = r.ThroughputGbps / 10
			dst[j+1] = r.EnergyJoules / (3300 * n)
			dst[j+2] = busy / 4
			dst[j+3] = e.w.Chains[c].Traffic.OfferedPPS / 15e6
			j += StatePerNF
		}
	}
	if e.NumNodes() > 1 {
		for n := range e.last.PerNode {
			dst[j] = e.last.PerNode[n].Utilization
			dst[j+1] = e.last.PerNode[n].PowerWatts / 400
			j += 2
		}
		for c := range e.assign {
			for n := 0; n < e.NumNodes(); n++ {
				if e.assign[c] == n {
					dst[j] = 1
				} else {
					dst[j] = 0
				}
				j++
			}
		}
	}
	return dst
}

// StandardClusterChains builds n chains cycling the standard, heavy,
// and light presets, each carrying the standard five-flow workload
// scaled to half rate (so several chains can consolidate onto one
// host), plus a hop chain linking consecutive chains — the
// service-function path whose splits the placement pays for. Chain
// names are made unique per index so the derived placement instance
// validates.
func StandardClusterChains(n int) ([]ClusterChain, []cluster.Hop) {
	chains := make([]ClusterChain, n)
	for i := 0; i < n; i++ {
		var spec perfmodel.ChainSpec
		switch i % 3 {
		case 0:
			spec = perfmodel.StandardChain()
		case 1:
			spec = perfmodel.HeavyChain()
		default:
			spec = perfmodel.LightChain()
		}
		spec.Name = fmt.Sprintf("%s-%d", spec.Name, i)
		flows := StandardWorkload()
		for f := range flows {
			flows[f].PPS *= 0.5
		}
		chains[i] = ClusterChain{Chain: spec, Flows: flows}
	}
	hops := make([]cluster.Hop, 0, n-1)
	for i := 1; i < n; i++ {
		hops = append(hops, cluster.Hop{From: i - 1, To: i, PPS: 600e3, FrameBytes: 512})
	}
	return chains, hops
}

// DescribeAssignment renders an assignment as "chain→node" pairs in
// chain-name order, for deterministic table cells.
func (e *ClusterEnv) DescribeAssignment() string {
	type pair struct {
		name string
		node int
	}
	pairs := make([]pair, len(e.assign))
	for c := range e.assign {
		pairs[c] = pair{e.cfg.Chains[c].Chain.Name, e.assign[c]}
	}
	sort.Slice(pairs, func(a, b int) bool { return pairs[a].name < pairs[b].name })
	s := ""
	for i, p := range pairs {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%s:%d", p.name, p.node)
	}
	return s
}
