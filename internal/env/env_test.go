package env

import (
	"math"
	"testing"
	"testing/quick"

	"greennfv/internal/perfmodel"
	"greennfv/internal/sla"
)

func testEnv(t *testing.T, s sla.SLA, busyPoll bool) *Env {
	t.Helper()
	e, err := New(Config{
		Model:      perfmodel.Default(),
		Chain:      perfmodel.StandardChain(),
		Bounds:     perfmodel.DefaultBounds(),
		SLA:        s,
		Flows:      StandardWorkload(),
		LoadJitter: 0.05,
		Options:    perfmodel.EvalOptions{BusyPoll: busyPoll, NoSleep: busyPoll},
		Seed:       42,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestAggregate(t *testing.T) {
	tr, err := Aggregate(StandardWorkload())
	if err != nil {
		t.Fatal(err)
	}
	if tr.OfferedPPS != 2.2e6 {
		t.Errorf("offered = %v, want 2.2M", tr.OfferedPPS)
	}
	if tr.FrameBytes < 500 || tr.FrameBytes > 800 {
		t.Errorf("mean frame = %d, want ~630", tr.FrameBytes)
	}
	if tr.Burstiness <= 1 {
		t.Errorf("burstiness = %v, want > 1 (mixed loads)", tr.Burstiness)
	}
	if _, err := Aggregate(nil); err == nil {
		t.Error("empty flows accepted")
	}
	if _, err := Aggregate([]FlowLoad{{PPS: -1, FrameBytes: 64}}); err == nil {
		t.Error("negative flow accepted")
	}
}

func TestEnvDimensions(t *testing.T) {
	e := testEnv(t, sla.NewEnergyEfficiency(), false)
	if e.NumNFs() != 3 || e.StateDim() != 12 || e.ActionDim() != 15 {
		t.Errorf("dims = %d NFs, %d state, %d action", e.NumNFs(), e.StateDim(), e.ActionDim())
	}
}

func TestEnvValidation(t *testing.T) {
	base := Config{
		Model:  perfmodel.Default(),
		Chain:  perfmodel.StandardChain(),
		Bounds: perfmodel.DefaultBounds(),
		SLA:    sla.NewEnergyEfficiency(),
		Flows:  StandardWorkload(),
	}
	bad := base
	bad.Chain = perfmodel.ChainSpec{}
	if _, err := New(bad); err == nil {
		t.Error("empty chain accepted")
	}
	bad = base
	bad.Flows = nil
	if _, err := New(bad); err == nil {
		t.Error("no flows accepted")
	}
	bad = base
	bad.LoadJitter = 1.5
	if _, err := New(bad); err == nil {
		t.Error("jitter >= 1 accepted")
	}
	bad = base
	bad.Model.NumCores = 0
	if _, err := New(bad); err == nil {
		t.Error("bad model accepted")
	}
}

func TestResetDeterminism(t *testing.T) {
	e := testEnv(t, sla.NewEnergyEfficiency(), false)
	s1 := e.Reset(7)
	a := make([]float64, e.ActionDim()) // midpoint action
	n1, r1, _, err := e.Step(a)
	if err != nil {
		t.Fatal(err)
	}
	s2 := e.Reset(7)
	n2, r2, _, err := e.Step(a)
	if err != nil {
		t.Fatal(err)
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("reset state differs at %d", i)
		}
	}
	for i := range n1 {
		if n1[i] != n2[i] {
			t.Fatalf("step state differs at %d", i)
		}
	}
	if r1 != r2 {
		t.Fatalf("rewards differ: %v vs %v", r1, r2)
	}
}

func TestStepValidatesActionDim(t *testing.T) {
	e := testEnv(t, sla.NewEnergyEfficiency(), false)
	if _, _, _, err := e.Step(make([]float64, 3)); err == nil {
		t.Error("wrong action dim accepted")
	}
}

func TestActionEncodeDecodeRoundTrip(t *testing.T) {
	e := testEnv(t, sla.NewEnergyEfficiency(), false)
	f := func(raw [5]float64) bool {
		a := make([]float64, 5)
		for i, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				x = 0
			}
			a[i] = math.Mod(x, 1)
		}
		k := e.DecodeAction(a)
		b := e.Bounds()
		if k.CPUShare < b.ShareMin-1e-9 || k.CPUShare > b.ShareMax+1e-9 {
			return false
		}
		if k.FreqGHz < b.FreqMin-1e-9 || k.FreqGHz > b.FreqMax+1e-9 {
			return false
		}
		if k.LLCFraction < b.LLCMin-1e-9 || k.LLCFraction > b.LLCMax+1e-9 {
			return false
		}
		if k.DMABytes < b.DMAMin || k.DMABytes > b.DMAMax {
			return false
		}
		if k.Batch < b.BatchMin || k.Batch > b.BatchMax {
			return false
		}
		// Re-encode then decode reproduces the same knobs (within
		// rounding of the integer knobs).
		enc := e.EncodeKnobs(k)
		k2 := e.DecodeAction(enc)
		return math.Abs(k2.CPUShare-k.CPUShare) < 1e-6 &&
			math.Abs(k2.FreqGHz-k.FreqGHz) < 1e-6 &&
			math.Abs(k2.LLCFraction-k.LLCFraction) < 1e-6 &&
			math.Abs(float64(k2.Batch-k.Batch)) <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestExtremeActionsMapToBounds(t *testing.T) {
	e := testEnv(t, sla.NewEnergyEfficiency(), false)
	b := e.Bounds()
	lo := e.DecodeAction([]float64{-1, -1, -1, -1, -1})
	hi := e.DecodeAction([]float64{1, 1, 1, 1, 1})
	if lo.CPUShare != b.ShareMin || lo.Batch != b.BatchMin || lo.DMABytes != b.DMAMin {
		t.Errorf("lo = %+v", lo)
	}
	if hi.CPUShare != b.ShareMax || hi.Batch != b.BatchMax || math.Abs(float64(hi.DMABytes-b.DMAMax)) > 1024 {
		t.Errorf("hi = %+v", hi)
	}
}

func TestRewardMatchesSLA(t *testing.T) {
	s, _ := sla.NewMaxThroughput(2000)
	e := testEnv(t, s, false)
	a := make([]float64, e.ActionDim())
	_, r, info, err := e.Step(a)
	if err != nil {
		t.Fatal(err)
	}
	want := s.Reward(info.ThroughputGbps, info.EnergyJoules)
	if r != want {
		t.Errorf("reward = %v, want %v", r, want)
	}
}

func TestObservationNormalized(t *testing.T) {
	e := testEnv(t, sla.NewEnergyEfficiency(), false)
	obs := e.Reset(3)
	if len(obs) != e.StateDim() {
		t.Fatalf("obs len = %d", len(obs))
	}
	for i, v := range obs {
		if math.IsNaN(v) || v < 0 || v > 3 {
			t.Errorf("obs[%d] = %v outside sane range", i, v)
		}
	}
}

func TestSetKnobsDrivesEnvironment(t *testing.T) {
	e := testEnv(t, sla.NewEnergyEfficiency(), false)
	ks := perfmodel.DefaultKnobs(3)
	for i := range ks {
		ks[i].Batch = 128
		ks[i].DMABytes = 2 << 20
		ks[i].CPUShare = 2
	}
	res, err := e.SetKnobs(ks)
	if err != nil {
		t.Fatal(err)
	}
	if res.ThroughputGbps <= 0 {
		t.Error("zero throughput from tuned knobs")
	}
	if len(e.Knobs()) != 3 || e.Knobs()[0].Batch != 128 {
		t.Error("knobs not installed")
	}
	if _, err := e.SetKnobs(ks[:1]); err == nil {
		t.Error("knob count mismatch accepted")
	}
}

// The environment's default (baseline knobs, busy-poll) must sit in
// the paper's baseline operating region, and a tuned configuration
// must clear 4x its throughput — this is the precondition for every
// training figure.
func TestEnvHeadroomMatchesPaper(t *testing.T) {
	e := testEnv(t, sla.NewEnergyEfficiency(), true)
	base := e.Last()
	if base.ThroughputGbps < 1.2 || base.ThroughputGbps > 3.2 {
		t.Errorf("baseline throughput = %v, want ~2", base.ThroughputGbps)
	}
	tuned := testEnv(t, sla.NewEnergyEfficiency(), false)
	ks := perfmodel.DefaultKnobs(3)
	for i := range ks {
		ks[i].CPUShare = 2
		ks[i].Batch = 128
		ks[i].DMABytes = 2 << 20
	}
	res, err := tuned.SetKnobs(ks)
	if err != nil {
		t.Fatal(err)
	}
	ratio := res.ThroughputGbps / base.ThroughputGbps
	if ratio < 3.5 || ratio > 6.5 {
		t.Errorf("tuned/baseline = %.2f, want ~4.4", ratio)
	}
	if res.EnergyJoules >= base.EnergyJoules {
		t.Error("tuned config not saving energy")
	}
}

func TestLoadJitterVariesTraffic(t *testing.T) {
	e := testEnv(t, sla.NewEnergyEfficiency(), false)
	a := make([]float64, e.ActionDim())
	seen := map[float64]bool{}
	for i := 0; i < 10; i++ {
		_, _, _, err := e.Step(a)
		if err != nil {
			t.Fatal(err)
		}
		seen[e.LastTraffic().OfferedPPS] = true
	}
	if len(seen) < 5 {
		t.Errorf("load jitter produced only %d distinct loads", len(seen))
	}
}
