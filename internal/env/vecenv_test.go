package env

import (
	"math"
	"sync/atomic"
	"testing"

	"greennfv/internal/perfmodel"
	"greennfv/internal/sla"
)

// randomActions fills a deterministic pseudo-random action matrix in
// [-1,1] without pulling in math/rand (keeps the streams obvious).
func randomActions(n, dim int, phase float64) []float64 {
	a := make([]float64, n*dim)
	for i := range a {
		a[i] = math.Sin(phase + float64(i)*0.731)
	}
	return a
}

// StepInto must be bit-identical to Step — it IS the scalar step,
// with the observation allocation moved to the caller.
func TestStepIntoMatchesStep(t *testing.T) {
	e1 := testEnv(t, sla.NewEnergyEfficiency(), false)
	e2 := testEnv(t, sla.NewEnergyEfficiency(), false)
	e1.Reset(11)
	e2.Reset(11)
	obs := make([]float64, e2.StateDim())
	for step := 0; step < 25; step++ {
		a := randomActions(1, e1.ActionDim(), float64(step))
		wantObs, wantR, wantInfo, err := e1.Step(a)
		if err != nil {
			t.Fatal(err)
		}
		gotR, gotInfo, err := e2.StepInto(a, obs)
		if err != nil {
			t.Fatal(err)
		}
		if gotR != wantR {
			t.Fatalf("step %d: reward %v vs %v", step, gotR, wantR)
		}
		if gotInfo.ThroughputGbps != wantInfo.ThroughputGbps ||
			gotInfo.EnergyJoules != wantInfo.EnergyJoules ||
			gotInfo.PowerWatts != wantInfo.PowerWatts {
			t.Fatalf("step %d: results diverge", step)
		}
		for i := range obs {
			if obs[i] != wantObs[i] {
				t.Fatalf("step %d: obs[%d] = %v vs %v", step, i, obs[i], wantObs[i])
			}
		}
	}
}

func TestStepIntoValidatesDims(t *testing.T) {
	e := testEnv(t, sla.NewEnergyEfficiency(), false)
	if _, _, err := e.StepInto(make([]float64, e.ActionDim()), make([]float64, 3)); err == nil {
		t.Error("short obs buffer accepted")
	}
	if _, _, err := e.StepInto(make([]float64, 3), make([]float64, e.StateDim())); err == nil {
		t.Error("short action accepted")
	}
}

func vecOf(t *testing.T, n, workers int) (*VecEnv, []*Env) {
	t.Helper()
	envs := make([]*Env, n)
	for i := range envs {
		envs[i] = testEnv(t, sla.NewEnergyEfficiency(), false)
	}
	v, err := NewVecEnv(envs, workers)
	if err != nil {
		t.Fatal(err)
	}
	return v, envs
}

// VecEnv must be bit-identical to stepping each environment serially,
// at every worker count; CI's -race run doubles as the pool's race
// check.
func TestVecEnvMatchesSerial(t *testing.T) {
	const n, steps = 5, 10
	// Reference: serial envs stepped one by one.
	refs := make([]*Env, n)
	for i := range refs {
		refs[i] = testEnv(t, sla.NewEnergyEfficiency(), false)
		refs[i].Reset(900 + int64(i)*131)
	}
	for _, workers := range []int{1, 2, 8} {
		vec, _ := vecOf(t, n, workers)
		vec.Reset(900)
		sd, ad := vec.StateDim(), vec.ActionDim()
		// Fresh serial reference streams per worker count.
		for i := range refs {
			refs[i].Reset(900 + int64(i)*131)
		}
		for step := 0; step < steps; step++ {
			actions := randomActions(n, ad, float64(step))
			obs, rewards, infos, err := vec.Step(actions)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < n; i++ {
				wantObs, wantR, wantInfo, err := refs[i].Step(actions[i*ad : (i+1)*ad])
				if err != nil {
					t.Fatal(err)
				}
				if rewards[i] != wantR {
					t.Fatalf("workers=%d step %d env %d: reward %v vs %v", workers, step, i, rewards[i], wantR)
				}
				if infos[i].EnergyJoules != wantInfo.EnergyJoules {
					t.Fatalf("workers=%d step %d env %d: energy diverges", workers, step, i)
				}
				for j := 0; j < sd; j++ {
					if obs[i*sd+j] != wantObs[j] {
						t.Fatalf("workers=%d step %d env %d: obs[%d] diverges", workers, step, i, j)
					}
				}
			}
		}
	}
}

func TestVecEnvValidation(t *testing.T) {
	if _, err := NewVecEnv(nil, 0); err == nil {
		t.Error("empty VecEnv accepted")
	}
	vec, _ := vecOf(t, 2, 2)
	if _, _, _, err := vec.Step(make([]float64, 3)); err == nil {
		t.Error("short action matrix accepted")
	}
}

// A Do failure must report the lowest failing index regardless of
// scheduling. Indices below it always run (they are claimed first);
// indices above it may be skipped once the failure stops the batch.
func TestVecEnvDoDeterministicError(t *testing.T) {
	vec, _ := vecOf(t, 4, 4)
	var ran [4]atomic.Bool
	err := vec.Do(func(i int, e *Env) error {
		ran[i].Store(true)
		if i == 1 || i == 3 {
			return errTest
		}
		return nil
	})
	if err == nil {
		t.Fatal("error swallowed")
	}
	const want = "env: VecEnv environment 1: "
	if got := err.Error(); len(got) < len(want) || got[:len(want)] != want {
		t.Errorf("error %q does not report lowest failing index", got)
	}
	for i := 0; i <= 1; i++ {
		if !ran[i].Load() {
			t.Errorf("closure %d (at or below the failing index) skipped", i)
		}
	}
}

var errTest = errTestType{}

type errTestType struct{}

func (errTestType) Error() string { return "boom" }

// The zero-alloc contract of the environment step path: StepInto with
// a caller buffer allocates nothing in steady state.
func TestEnvStepZeroAlloc(t *testing.T) {
	e := testEnv(t, sla.NewEnergyEfficiency(), false)
	a := randomActions(1, e.ActionDim(), 1)
	obs := make([]float64, e.StateDim())
	if _, _, err := e.StepInto(a, obs); err != nil { // warm scratch
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, _, err := e.StepInto(a, obs); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("StepInto allocates %.1f objects per call, want 0", allocs)
	}
}

func BenchmarkEnvStep(b *testing.B) {
	e, err := New(Config{
		Model:      perfmodel.Default(),
		Chain:      perfmodel.StandardChain(),
		Bounds:     perfmodel.DefaultBounds(),
		SLA:        sla.NewEnergyEfficiency(),
		Flows:      StandardWorkload(),
		LoadJitter: 0.05,
		Seed:       42,
	})
	if err != nil {
		b.Fatal(err)
	}
	a := randomActions(1, e.ActionDim(), 1)
	obs := make([]float64, e.StateDim())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := e.StepInto(a, obs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVecEnvStep8(b *testing.B) {
	envs := make([]*Env, 8)
	for i := range envs {
		e, err := New(Config{
			Model:      perfmodel.Default(),
			Chain:      perfmodel.StandardChain(),
			Bounds:     perfmodel.DefaultBounds(),
			SLA:        sla.NewEnergyEfficiency(),
			Flows:      StandardWorkload(),
			LoadJitter: 0.05,
			Seed:       42 + int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		envs[i] = e
	}
	vec, err := NewVecEnv(envs, 0)
	if err != nil {
		b.Fatal(err)
	}
	actions := randomActions(8, vec.ActionDim(), 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := vec.Step(actions); err != nil {
			b.Fatal(err)
		}
	}
}
