package env

import (
	"math"
	"math/rand"
	"testing"

	"greennfv/internal/cluster"
	"greennfv/internal/perfmodel"
	"greennfv/internal/placement"
	"greennfv/internal/sla"
)

func testSLA() sla.SLA {
	return sla.SLA{Kind: sla.MaxThroughput, EnergyBudgetJ: 3300,
		RefThroughputGbps: 7.5, RefEnergyJ: 3300, PenaltyWeight: 2}
}

func clusterCfg(nodes, chains int, pol placement.Policy) ClusterConfig {
	cs, hops := StandardClusterChains(chains)
	return ClusterConfig{
		Topology:        cluster.Homogeneous(nodes),
		Chains:          cs,
		Hops:            hops,
		LatencyBudgetNs: 1e6,
		Bounds:          perfmodel.DefaultBounds(),
		SLA:             testSLA(),
		LoadJitter:      0.1,
		Seed:            17,
		Placement:       pol,
	}
}

// TestClusterEnvSingleNodeParity pins the tentpole invariant: a
// 1-node homogeneous ClusterEnv with one chain must produce a
// bit-identical episode trace (observations, rewards, knobs) to the
// existing single-node Env under the same seed and actions.
func TestClusterEnvSingleNodeParity(t *testing.T) {
	single, err := New(Config{
		Model:      perfmodel.Default(),
		Chain:      perfmodel.StandardChain(),
		Bounds:     perfmodel.DefaultBounds(),
		SLA:        testSLA(),
		Flows:      StandardWorkload(),
		LoadJitter: 0.1,
		Seed:       17,
	})
	if err != nil {
		t.Fatal(err)
	}
	cc := ClusterConfig{
		Topology:   cluster.Homogeneous(1),
		Chains:     []ClusterChain{{Chain: perfmodel.StandardChain(), Flows: StandardWorkload()}},
		Bounds:     perfmodel.DefaultBounds(),
		SLA:        testSLA(),
		LoadJitter: 0.1,
		Seed:       17,
	}
	clus, err := NewCluster(cc)
	if err != nil {
		t.Fatal(err)
	}
	if clus.StateDim() != single.StateDim() || clus.ActionDim() != single.ActionDim() {
		t.Fatalf("dims: cluster (%d,%d) vs env (%d,%d)",
			clus.StateDim(), clus.ActionDim(), single.StateDim(), single.ActionDim())
	}

	obsS := single.Reset(17)
	obsC := clus.Reset(17)
	for i := range obsS {
		if obsS[i] != obsC[i] {
			t.Fatalf("reset obs[%d]: env %v != cluster %v", i, obsS[i], obsC[i])
		}
	}
	rng := rand.New(rand.NewSource(5))
	action := make([]float64, single.ActionDim())
	for step := 0; step < 50; step++ {
		for i := range action {
			action[i] = 2*rng.Float64() - 1
		}
		rS, infoS, err := single.StepInto(action, obsS)
		if err != nil {
			t.Fatal(err)
		}
		rC, infoC, err := clus.StepInto(action, obsC)
		if err != nil {
			t.Fatal(err)
		}
		if rS != rC {
			t.Fatalf("step %d: reward env %v != cluster %v", step, rS, rC)
		}
		if infoS.ThroughputGbps != infoC.ThroughputGbps || infoS.EnergyJoules != infoC.EnergyJoules {
			t.Fatalf("step %d: info env (%v Gbps, %v J) != cluster (%v Gbps, %v J)",
				step, infoS.ThroughputGbps, infoS.EnergyJoules, infoC.ThroughputGbps, infoC.EnergyJoules)
		}
		for i := range obsS {
			if obsS[i] != obsC[i] {
				t.Fatalf("step %d: obs[%d] env %v != cluster %v", step, i, obsS[i], obsC[i])
			}
		}
		ksS, ksC := single.Knobs(), clus.Knobs()
		for i := range ksS {
			if ksS[i] != ksC[i] {
				t.Fatalf("step %d: knobs[%d] env %+v != cluster %+v", step, i, ksS[i], ksC[i])
			}
		}
	}
}

// TestClusterEnvDeterminism is the satellite gate: same seed + same
// placement policy ⇒ bit-identical episode traces at 1, 2, and 8
// nodes (run under -race in the cluster CI lane).
func TestClusterEnvDeterminism(t *testing.T) {
	for _, nodes := range []int{1, 2, 8} {
		for _, pol := range []placement.Policy{nil, placement.FFDSwap{}, placement.Relaxation{}} {
			name := "drl-head"
			if pol != nil {
				name = pol.Name()
			}
			a, err := NewCluster(clusterCfg(nodes, 4, pol))
			if err != nil {
				t.Fatalf("nodes=%d %s: %v", nodes, name, err)
			}
			b, err := NewCluster(clusterCfg(nodes, 4, pol))
			if err != nil {
				t.Fatalf("nodes=%d %s: %v", nodes, name, err)
			}
			obsA := a.Reset(42)
			obsB := b.Reset(42)
			rng := rand.New(rand.NewSource(7))
			action := make([]float64, a.ActionDim())
			for step := 0; step < 30; step++ {
				for i := range action {
					action[i] = 2*rng.Float64() - 1
				}
				rA, _, err := a.StepInto(action, obsA)
				if err != nil {
					t.Fatal(err)
				}
				rB, _, err := b.StepInto(action, obsB)
				if err != nil {
					t.Fatal(err)
				}
				if rA != rB {
					t.Fatalf("nodes=%d %s step %d: rewards differ (%v vs %v)", nodes, name, step, rA, rB)
				}
				for i := range obsA {
					if obsA[i] != obsB[i] {
						t.Fatalf("nodes=%d %s step %d: obs[%d] differs", nodes, name, step, i)
					}
				}
				for i, an := range a.Assignment() {
					if an != b.Assignment()[i] {
						t.Fatalf("nodes=%d %s step %d: assignment[%d] differs", nodes, name, step, i)
					}
				}
			}
		}
	}
}

// TestClusterEnvPlacementHead checks the DRL head's decode: dims grow
// by the logit block, argmax moves chains, and ties break low.
func TestClusterEnvPlacementHead(t *testing.T) {
	e, err := NewCluster(clusterCfg(4, 3, nil))
	if err != nil {
		t.Fatal(err)
	}
	if !e.PlacementHead() {
		t.Fatal("placement head inactive")
	}
	knobDims := KnobsPerNF * e.NumNFs()
	if got, want := e.ActionDim(), knobDims+3*4; got != want {
		t.Fatalf("ActionDim = %d, want %d", got, want)
	}
	if got, want := e.StateDim(), StatePerNF*e.NumNFs()+2*4+3*4; got != want {
		t.Fatalf("StateDim = %d, want %d", got, want)
	}
	action := make([]float64, e.ActionDim())
	// Chain 0 → node 2, chain 1 → node 0 (tie across all logits),
	// chain 2 → node 3.
	for i := knobDims; i < len(action); i++ {
		action[i] = -1
	}
	action[knobDims+2] = 0.5
	action[knobDims+4+0] = -1 // all equal: lowest index wins
	action[knobDims+8+3] = 0.9
	obs := make([]float64, e.StateDim())
	if _, _, err := e.StepInto(action, obs); err != nil {
		t.Fatal(err)
	}
	want := []int{2, 0, 3}
	for c, n := range e.Assignment() {
		if n != want[c] {
			t.Errorf("chain %d on node %d, want %d", c, n, want[c])
		}
	}
}

// TestClusterEnvPinnedPolicy: a pinned policy must fix the assignment
// for the whole episode regardless of actions, and the action vector
// must carry no logit block.
func TestClusterEnvPinnedPolicy(t *testing.T) {
	e, err := NewCluster(clusterCfg(2, 4, placement.FFDSwap{}))
	if err != nil {
		t.Fatal(err)
	}
	if e.PlacementHead() {
		t.Fatal("placement head active despite pinned policy")
	}
	if got, want := e.ActionDim(), KnobsPerNF*e.NumNFs(); got != want {
		t.Fatalf("ActionDim = %d, want %d", got, want)
	}
	before := e.Assignment()
	rng := rand.New(rand.NewSource(3))
	action := make([]float64, e.ActionDim())
	obs := make([]float64, e.StateDim())
	for step := 0; step < 10; step++ {
		for i := range action {
			action[i] = 2*rng.Float64() - 1
		}
		if _, _, err := e.StepInto(action, obs); err != nil {
			t.Fatal(err)
		}
	}
	for c, n := range e.Assignment() {
		if n != before[c] {
			t.Errorf("pinned assignment drifted: chain %d %d→%d", c, before[c], n)
		}
	}
}

// TestClusterEnvStepAllocs: the actor-facing StepInto path must not
// allocate in steady state.
func TestClusterEnvStepAllocs(t *testing.T) {
	e, err := NewCluster(clusterCfg(4, 4, nil))
	if err != nil {
		t.Fatal(err)
	}
	action := make([]float64, e.ActionDim())
	obs := make([]float64, e.StateDim())
	for i := range action {
		action[i] = 0.2
	}
	if _, _, err := e.StepInto(action, obs); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, _, err := e.StepInto(action, obs); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("StepInto allocs/run = %v, want 0", allocs)
	}
}

// TestClusterEnvObservationSane: finite values, one-hot block sums to
// chain count.
func TestClusterEnvObservationSane(t *testing.T) {
	e, err := NewCluster(clusterCfg(4, 6, placement.Relaxation{}))
	if err != nil {
		t.Fatal(err)
	}
	obs := e.Reset(99)
	var oneHot float64
	base := StatePerNF*e.NumNFs() + 2*e.NumNodes()
	for i, v := range obs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("obs[%d] = %v", i, v)
		}
		if i >= base {
			oneHot += v
		}
	}
	if oneHot != float64(e.NumChains()) {
		t.Errorf("one-hot block sums to %v, want %d", oneHot, e.NumChains())
	}
}
