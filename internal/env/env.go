package env

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"greennfv/internal/perfmodel"
	"greennfv/internal/sla"
)

// KnobsPerNF is the action dimensionality per network function
// (equation 7 of the paper).
const KnobsPerNF = 5

// StatePerNF is the observation dimensionality per network function
// (equation 8 of the paper).
const StatePerNF = 4

// FlowLoad is one offered flow.
type FlowLoad struct {
	PPS        float64
	FrameBytes int
	Burstiness float64
}

// StandardWorkload returns the paper's evaluation load: five flows of
// mixed frame sizes, slightly oversubscribing the 10 GbE link.
func StandardWorkload() []FlowLoad {
	return []FlowLoad{
		{PPS: 300e3, FrameBytes: 1518, Burstiness: 1},
		{PPS: 400e3, FrameBytes: 1024, Burstiness: 1},
		{PPS: 800e3, FrameBytes: 512, Burstiness: 2},
		{PPS: 400e3, FrameBytes: 256, Burstiness: 2},
		{PPS: 300e3, FrameBytes: 64, Burstiness: 4},
	}
}

// Aggregate folds a flow set into the model's traffic descriptor:
// total packet rate, packet-weighted mean frame size, and weighted
// burstiness.
func Aggregate(flows []FlowLoad) (perfmodel.Traffic, error) {
	if len(flows) == 0 {
		return perfmodel.Traffic{}, errors.New("env: need at least one flow")
	}
	var pps, fsum, bsum float64
	for i, f := range flows {
		if f.PPS <= 0 || f.FrameBytes <= 0 {
			return perfmodel.Traffic{}, fmt.Errorf("env: flow %d invalid (%+v)", i, f)
		}
		pps += f.PPS
		fsum += f.PPS * float64(f.FrameBytes)
		b := f.Burstiness
		if b <= 0 {
			b = 1
		}
		bsum += f.PPS * b
	}
	return perfmodel.Traffic{
		OfferedPPS: pps,
		FrameBytes: int(fsum / pps),
		Burstiness: bsum / pps,
	}, nil
}

// Config assembles an environment.
type Config struct {
	Model  perfmodel.Config
	Chain  perfmodel.ChainSpec
	Bounds perfmodel.KnobBounds
	SLA    sla.SLA
	Flows  []FlowLoad
	// LoadJitter is the per-step relative noise on offered load
	// (traffic is never perfectly stationary; this is what defeats
	// static heuristics).
	LoadJitter float64
	// FrozenKnobs pins individual knobs at their platform defaults
	// regardless of actions, in the per-NF order {CPUShare, FreqGHz,
	// LLCFraction, DMABytes, Batch}. Used by the knob-contribution
	// ablation.
	FrozenKnobs [KnobsPerNF]bool
	// Options selects the platform variant (poll mode, C-state
	// policy, LLC contention). The zero value is the GreenNFV
	// platform.
	Options perfmodel.EvalOptions
	// Seed makes the load process deterministic.
	Seed int64
}

// Env is a single-node, single-chain environment instance. It is not
// goroutine-safe; Ape-X actors each own one instance (use VecEnv to
// step a set of instances as a batch).
type Env struct {
	cfg  Config
	base perfmodel.Traffic
	src  rand.Source
	rng  *rand.Rand
	// defKnobs are the platform defaults pre-clamped to the bounds;
	// defKnob is the single-NF default DecodeAction freezes against.
	// Both are computed once at construction so neither Reset nor the
	// action decode allocates.
	defKnobs []perfmodel.NFKnobs
	defKnob  perfmodel.NFKnobs
	knobs    []perfmodel.NFKnobs
	last     perfmodel.Result
	lastTr   perfmodel.Traffic
	stepNum  int
}

// New validates the configuration and builds an environment.
func New(cfg Config) (*Env, error) {
	if err := cfg.Model.Validate(); err != nil {
		return nil, err
	}
	if len(cfg.Chain.NFs) == 0 {
		return nil, errors.New("env: empty chain")
	}
	base, err := Aggregate(cfg.Flows)
	if err != nil {
		return nil, err
	}
	if cfg.LoadJitter < 0 || cfg.LoadJitter >= 1 {
		return nil, errors.New("env: LoadJitter must be in [0,1)")
	}
	e := &Env{cfg: cfg, base: base}
	e.defKnobs = perfmodel.DefaultKnobs(len(cfg.Chain.NFs))
	for i := range e.defKnobs {
		e.defKnobs[i] = cfg.Bounds.Clamp(e.defKnobs[i])
	}
	e.defKnob = perfmodel.DefaultKnobs(1)[0]
	e.knobs = make([]perfmodel.NFKnobs, len(cfg.Chain.NFs))
	e.Reset(cfg.Seed)
	return e, nil
}

// NumNFs reports the chain length.
func (e *Env) NumNFs() int { return len(e.cfg.Chain.NFs) }

// StateDim reports the observation vector length (4 per NF).
func (e *Env) StateDim() int { return StatePerNF * e.NumNFs() }

// ActionDim reports the action vector length (5 per NF).
func (e *Env) ActionDim() int { return KnobsPerNF * e.NumNFs() }

// SLA returns the environment's agreement.
func (e *Env) SLA() sla.SLA { return e.cfg.SLA }

// Bounds returns the knob bounds.
func (e *Env) Bounds() perfmodel.KnobBounds { return e.cfg.Bounds }

// Chain returns the chain spec.
func (e *Env) Chain() perfmodel.ChainSpec { return e.cfg.Chain }

// Reset reseeds the load process, restores default knobs, evaluates
// once and returns the initial observation (a fresh slice owned by
// the caller).
func (e *Env) Reset(seed int64) []float64 {
	return e.ResetInto(seed, make([]float64, e.StateDim()))
}

// ResetInto is Reset with a caller-owned observation buffer (length
// StateDim): the zero-alloc counterpart, as StepInto is to Step.
func (e *Env) ResetInto(seed int64, obs []float64) []float64 {
	if e.src == nil {
		e.src = rand.NewSource(seed)
		e.rng = rand.New(e.src)
	} else {
		// Reseeding in place reproduces rand.NewSource(seed)'s stream
		// without re-allocating the source's ~5 KB state table.
		e.src.Seed(seed)
	}
	copy(e.knobs, e.defKnobs)
	e.stepNum = 0
	e.lastTr = e.base
	e.evaluate()
	return e.ObserveInto(obs)
}

// Knobs returns a copy of the current knob settings.
func (e *Env) Knobs() []perfmodel.NFKnobs {
	out := make([]perfmodel.NFKnobs, len(e.knobs))
	copy(out, e.knobs)
	return out
}

// SetKnobs installs explicit knob settings (clamped to bounds) and
// re-evaluates, returning the measurement. Controllers that bypass
// the action encoding (heuristics, EE-Pstate) drive the environment
// through this. The returned Result's PerNF aliases environment
// scratch and is only valid until the next step.
func (e *Env) SetKnobs(ks []perfmodel.NFKnobs) (perfmodel.Result, error) {
	if len(ks) != e.NumNFs() {
		return perfmodel.Result{}, fmt.Errorf("env: %d knob sets for %d NFs", len(ks), e.NumNFs())
	}
	for i := range ks {
		e.knobs[i] = e.cfg.Bounds.Clamp(ks[i])
	}
	e.advanceLoad()
	e.evaluate()
	return e.last, nil
}

// Step applies an action vector in [-1,1]^ActionDim, advances the
// load process, evaluates, and returns (observation, reward, info).
// The observation is a fresh slice owned by the caller; the returned
// Result's PerNF field aliases environment scratch and is only valid
// until the next step.
func (e *Env) Step(action []float64) ([]float64, float64, perfmodel.Result, error) {
	obs := make([]float64, e.StateDim())
	r, info, err := e.StepInto(action, obs)
	if err != nil {
		return nil, 0, perfmodel.Result{}, err
	}
	return obs, r, info, nil
}

// StepInto is Step with a caller-owned observation buffer (length
// StateDim): it allocates nothing in steady state, which is what the
// Ape-X actors and VecEnv step through. The returned Result's PerNF
// aliases environment scratch, valid until the next step.
func (e *Env) StepInto(action, obs []float64) (float64, perfmodel.Result, error) {
	if len(action) != e.ActionDim() {
		return 0, perfmodel.Result{}, fmt.Errorf("env: action dim %d, want %d", len(action), e.ActionDim())
	}
	if len(obs) != e.StateDim() {
		return 0, perfmodel.Result{}, fmt.Errorf("env: obs dim %d, want %d", len(obs), e.StateDim())
	}
	for i := 0; i < e.NumNFs(); i++ {
		e.knobs[i] = e.DecodeAction(action[i*KnobsPerNF : (i+1)*KnobsPerNF])
	}
	e.advanceLoad()
	e.evaluate()
	e.stepNum++
	r := e.cfg.SLA.Reward(e.last.ThroughputGbps, e.last.EnergyJoules)
	e.ObserveInto(obs)
	return r, e.last, nil
}

// Last returns the most recent measurement.
func (e *Env) Last() perfmodel.Result { return e.last }

// LastTraffic returns the most recent offered traffic.
func (e *Env) LastTraffic() perfmodel.Traffic { return e.lastTr }

// DecodeAction maps one NF's action slice ([-1,1]^5) onto knobs.
// Share and frequency scale linearly; DMA and batch scale
// logarithmically (their useful ranges span orders of magnitude).
func (e *Env) DecodeAction(a []float64) perfmodel.NFKnobs {
	return decodeKnobAction(a, e.cfg.Bounds, e.cfg.FrozenKnobs, e.defKnob, e.NumNFs())
}

// decodeKnobAction is the shared single- and cluster-env action
// decode. Env and ClusterEnv must map identical action slices to
// bit-identical knobs (the single-node parity contract), so the
// arithmetic lives here once; do not reorder the operations.
func decodeKnobAction(a []float64, b perfmodel.KnobBounds, frozen [KnobsPerNF]bool, def perfmodel.NFKnobs, numNFs int) perfmodel.NFKnobs {
	u := func(x float64) float64 { // [-1,1] -> [0,1]
		if math.IsNaN(x) {
			x = 0
		}
		x = (x + 1) / 2
		if x < 0 {
			x = 0
		}
		if x > 1 {
			x = 1
		}
		return x
	}
	logScale := func(x, lo, hi float64) float64 {
		return math.Exp(math.Log(lo) + x*(math.Log(hi)-math.Log(lo)))
	}
	k := perfmodel.NFKnobs{
		CPUShare:    b.ShareMin + u(a[0])*(b.ShareMax-b.ShareMin),
		FreqGHz:     b.FreqMin + u(a[1])*(b.FreqMax-b.FreqMin),
		LLCFraction: b.LLCMin + u(a[2])*(b.LLCMax-b.LLCMin),
		DMABytes:    int64(logScale(u(a[3]), float64(b.DMAMin), float64(b.DMAMax))),
		Batch:       int(math.Round(logScale(u(a[4]), float64(b.BatchMin), float64(b.BatchMax)))),
	}
	if frozen[0] {
		k.CPUShare = def.CPUShare
	}
	if frozen[1] {
		k.FreqGHz = def.FreqGHz
	}
	if frozen[2] {
		k.LLCFraction = 1 / float64(numNFs)
	}
	if frozen[3] {
		k.DMABytes = def.DMABytes
	}
	if frozen[4] {
		k.Batch = def.Batch
	}
	return b.Clamp(k)
}

// EncodeKnobs inverts DecodeAction for warm-starting policies.
func (e *Env) EncodeKnobs(k perfmodel.NFKnobs) []float64 {
	b := e.cfg.Bounds
	k = b.Clamp(k)
	lin := func(v, lo, hi float64) float64 { return 2*(v-lo)/(hi-lo) - 1 }
	logv := func(v, lo, hi float64) float64 {
		return 2*(math.Log(v)-math.Log(lo))/(math.Log(hi)-math.Log(lo)) - 1
	}
	return []float64{
		lin(k.CPUShare, b.ShareMin, b.ShareMax),
		lin(k.FreqGHz, b.FreqMin, b.FreqMax),
		lin(k.LLCFraction, b.LLCMin, b.LLCMax),
		logv(float64(k.DMABytes), float64(b.DMAMin), float64(b.DMAMax)),
		logv(float64(k.Batch), float64(b.BatchMin), float64(b.BatchMax)),
	}
}

// advanceLoad jitters the offered traffic around the configured base.
func (e *Env) advanceLoad() {
	e.lastTr = e.base
	if e.cfg.LoadJitter > 0 {
		f := 1 + e.cfg.LoadJitter*(2*e.rng.Float64()-1)
		e.lastTr.OfferedPPS *= f
	}
}

// evaluate runs the model at the current knobs and load, reusing
// e.last's PerNF scratch so the steady-state step performs no
// allocations.
func (e *Env) evaluate() {
	if e.lastTr.OfferedPPS == 0 {
		e.lastTr = e.base
	}
	if err := e.cfg.Model.EvaluateInto(&e.last, e.cfg.Chain, e.knobs, e.lastTr, e.cfg.Options); err != nil {
		// Inputs are clamped and validated at construction; a model
		// error here is a programming bug.
		panic(fmt.Sprintf("env: evaluate: %v", err))
	}
}

// ObserveInto writes the paper's state vector — per NF, normalized
// {throughput, energy, CPU utilization, arrival rate} — into dst,
// which must have length StateDim (a buffer of the wrong size is a
// programming error and panics), and returns dst.
func (e *Env) ObserveInto(dst []float64) []float64 {
	if len(dst) != e.StateDim() {
		panic(fmt.Sprintf("env: ObserveInto buffer len %d, want %d", len(dst), e.StateDim()))
	}
	n := float64(e.NumNFs())
	j := 0
	for i := 0; i < e.NumNFs(); i++ {
		busy := 0.0
		if i < len(e.last.PerNF) {
			busy = e.last.PerNF[i].BusyCores
		}
		dst[j] = e.last.ThroughputGbps / 10
		dst[j+1] = e.last.EnergyJoules / (3300 * n) // per-NF energy share
		dst[j+2] = busy / 4
		dst[j+3] = e.lastTr.OfferedPPS / 15e6
		j += StatePerNF
	}
	return dst
}
