package env

import (
	"greennfv/internal/perfmodel"
	"greennfv/internal/sla"
)

// Stepper is the environment surface the Ape-X actors and the greedy
// evaluation loop step through: the single-node Env and the
// multi-node ClusterEnv both satisfy it, so the training stack is
// topology-agnostic. The perfmodel.Result returned by Step/StepInto
// is the single-node measurement for Env and a cluster roll-up for
// ClusterEnv (see ClusterEnv.Summary); either way its PerNF/scratch
// aliases environment state and is only valid until the next step.
type Stepper interface {
	// StateDim and ActionDim report the observation and action vector
	// lengths; ddpg checkpoints stay self-describing because the
	// trainer probes these at construction.
	StateDim() int
	ActionDim() int
	// NumNFs is the total network-function count across all chains.
	NumNFs() int
	// Reset reseeds the load process and returns the initial
	// observation; ResetInto is its zero-alloc counterpart.
	Reset(seed int64) []float64
	ResetInto(seed int64, obs []float64) []float64
	// Step applies an action in [-1,1]^ActionDim; StepInto is the
	// zero-alloc counterpart the actors drive.
	Step(action []float64) ([]float64, float64, perfmodel.Result, error)
	StepInto(action, obs []float64) (float64, perfmodel.Result, error)
	// Knobs returns a copy of the current knob settings, flattened
	// chain-major for multi-chain environments.
	Knobs() []perfmodel.NFKnobs
	// SLA returns the agreement rewards are computed against.
	SLA() sla.SLA
}

var (
	_ Stepper = (*Env)(nil)
	_ Stepper = (*ClusterEnv)(nil)
)
