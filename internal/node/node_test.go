package node

import (
	"testing"

	"greennfv/internal/hw/cpu"
	"greennfv/internal/onvm"
	"greennfv/internal/perfmodel"
)

func testChain(t *testing.T, name string) *onvm.Chain {
	t.Helper()
	c, err := onvm.NewChain(name, onvm.DefaultChainConfig(),
		onvm.NewFirewall(nil, true), onvm.NewNAT([4]byte{1, 2, 3, 4}), onvm.NewMonitor())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func testNode(t *testing.T) *Node {
	t.Helper()
	n, err := New(Default())
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestDeployAndApply(t *testing.T) {
	n := testNode(t)
	chain := testChain(t, "c1")
	if err := n.Deploy(chain); err != nil {
		t.Fatal(err)
	}
	if err := n.Deploy(chain); err == nil {
		t.Error("double deploy accepted")
	}
	if err := n.Deploy(nil); err == nil {
		t.Error("nil chain accepted")
	}

	knobs := []perfmodel.NFKnobs{
		{CPUShare: 2, FreqGHz: 1.7, LLCFraction: 0.4, DMABytes: 4 << 20, Batch: 64},
		{CPUShare: 1, FreqGHz: 1.5, LLCFraction: 0.3, DMABytes: 2 << 20, Batch: 32},
		{CPUShare: 0.5, FreqGHz: 1.3, LLCFraction: 0.2, DMABytes: 2 << 20, Batch: 16},
	}
	if err := n.Apply("c1", knobs); err != nil {
		t.Fatal(err)
	}

	// DVFS landed on the ladder.
	f0, _ := n.Processor().Freq(0)
	f1, _ := n.Processor().Freq(1)
	if f0 != 1.7 || f1 != 1.5 {
		t.Errorf("core freqs %v/%v, want 1.7/1.5", f0, f1)
	}
	// Batches landed on the NFs.
	for i, want := range []int{64, 32, 16} {
		if got := chain.NFs()[i].Batch(); got != want {
			t.Errorf("NF %d batch = %d, want %d", i, got, want)
		}
	}
	// DMA buffer resized.
	buf, err := n.DMABuffer("c1")
	if err != nil || buf.Bytes != 4<<20 {
		t.Errorf("dma = %d (%v), want 4MiB", buf.Bytes, err)
	}
	// CAT granted real capacity.
	for i := range knobs {
		got, err := n.EffectiveLLCBytes("c1", i)
		if err != nil {
			t.Fatal(err)
		}
		if got <= 0 {
			t.Errorf("NF %d effective LLC = %d", i, got)
		}
	}
	// Knobs are queryable.
	back, err := n.Knobs("c1")
	if err != nil || len(back) != 3 || back[0].Batch != 64 {
		t.Errorf("knobs round trip: %v (%v)", back, err)
	}
	// CPU allocation grants within capacity.
	grants := n.AllocateCPU()
	var total float64
	for _, g := range grants {
		total += g
	}
	if total > float64(n.Processor().NumCores())+1e-9 {
		t.Errorf("grants %v exceed cores", total)
	}
}

func TestApplyValidation(t *testing.T) {
	n := testNode(t)
	chain := testChain(t, "c1")
	if err := n.Deploy(chain); err != nil {
		t.Fatal(err)
	}
	if err := n.Apply("ghost", perfmodel.DefaultKnobs(3)); err == nil {
		t.Error("unknown chain accepted")
	}
	if err := n.Apply("c1", perfmodel.DefaultKnobs(1)); err == nil {
		t.Error("knob count mismatch accepted")
	}
	// DVFS control requires the userspace governor.
	n.Processor().SetGovernor(cpu.GovernorPerformance)
	if err := n.Apply("c1", perfmodel.DefaultKnobs(3)); err == nil {
		t.Error("apply allowed under performance governor")
	}
}

func TestLLCOversubscriptionRescales(t *testing.T) {
	n := testNode(t)
	chain := testChain(t, "c1")
	if err := n.Deploy(chain); err != nil {
		t.Fatal(err)
	}
	over := []perfmodel.NFKnobs{
		{CPUShare: 1, FreqGHz: 2.1, LLCFraction: 0.9, DMABytes: 2 << 20, Batch: 32},
		{CPUShare: 1, FreqGHz: 2.1, LLCFraction: 0.9, DMABytes: 2 << 20, Batch: 32},
		{CPUShare: 1, FreqGHz: 2.1, LLCFraction: 0.9, DMABytes: 2 << 20, Batch: 32},
	}
	if err := n.Apply("c1", over); err != nil {
		t.Fatal(err)
	}
	// Each NF should hold about a third of the 18 non-DDIO MiB.
	for i := 0; i < 3; i++ {
		got, err := n.EffectiveLLCBytes("c1", i)
		if err != nil {
			t.Fatal(err)
		}
		if got < 4<<20 || got > 8<<20 {
			t.Errorf("NF %d effective LLC = %d MiB, want ~6", i, got>>20)
		}
	}
}

func TestSamplePowerIntegrates(t *testing.T) {
	n := testNode(t)
	for i := 0; i < 8; i++ {
		_ = n.Processor().ReportUtilization(i, 0.5)
	}
	p0 := n.SamplePower(0)
	p1 := n.SamplePower(10)
	if p0 <= 0 || p1 <= 0 {
		t.Fatalf("powers %v/%v", p0, p1)
	}
	if n.Meter().Joules() <= 0 {
		t.Error("meter did not integrate")
	}
}

func TestUndeploy(t *testing.T) {
	n := testNode(t)
	chain := testChain(t, "c1")
	if err := n.Deploy(chain); err != nil {
		t.Fatal(err)
	}
	if len(n.Chains()) != 1 {
		t.Fatal("chain not listed")
	}
	if err := n.Undeploy("c1"); err != nil {
		t.Fatal(err)
	}
	if len(n.Chains()) != 0 {
		t.Error("chain still listed")
	}
	if err := n.Undeploy("c1"); err == nil {
		t.Error("double undeploy accepted")
	}
	// Redeploy works after undeploy.
	if err := n.Deploy(testChain(t, "c1")); err != nil {
		t.Errorf("redeploy failed: %v", err)
	}
}

func TestMultipleChains(t *testing.T) {
	n := testNode(t)
	if err := n.Deploy(testChain(t, "a")); err != nil {
		t.Fatal(err)
	}
	if err := n.Deploy(testChain(t, "b")); err != nil {
		t.Fatal(err)
	}
	ka := perfmodel.DefaultKnobs(3)
	for i := range ka {
		ka[i].LLCFraction = 0.15
	}
	if err := n.Apply("a", ka); err != nil {
		t.Fatal(err)
	}
	if err := n.Apply("b", ka); err != nil {
		t.Fatal(err)
	}
	// Both chains hold LLC capacity simultaneously.
	ea, _ := n.EffectiveLLCBytes("a", 0)
	eb, _ := n.EffectiveLLCBytes("b", 0)
	if ea <= 0 || eb <= 0 {
		t.Errorf("effective LLC a=%d b=%d", ea, eb)
	}
}
