// Package node integrates the hardware substrates into one
// controllable NFV host — the paper's extended ONVM controller
// (§4.4): "We added functionalities in the ONVM controller that allow
// us to control the CPU share, DVFS (CPU frequency) control, LLC
// allocation, DMA Buffer size, and packet batch size."
//
// A Node owns a Processor (DVFS, C-states, governors), a CAT
// controller (CLOS + capacity bitmasks), a cgroup-style share
// scheduler, per-chain DMA buffers and a power meter, plus the ONVM
// chains themselves. Apply maps a perfmodel.NFKnobs vector onto all
// of them atomically, which is exactly what the GreenNFV actor does
// when the policy emits an action.
//
// # Concurrency and determinism
//
// A Node is NOT goroutine-safe: it is the single point of
// serialization for its hardware substrates, and callers (the nfvsim
// harness, tests) drive it from one goroutine. Apply is
// deterministic — same knob vector, same resulting configuration —
// and validates the whole vector before touching anything, so a
// rejected action leaves the node unchanged.
package node
