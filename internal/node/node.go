package node

import (
	"errors"
	"fmt"
	"sync"

	"greennfv/internal/hw/cache"
	"greennfv/internal/hw/cpu"
	"greennfv/internal/hw/dma"
	"greennfv/internal/hw/power"
	"greennfv/internal/onvm"
	"greennfv/internal/perfmodel"
)

// Config assembles a node.
type Config struct {
	// Topology is the CPU layout (defaults to the testbed Xeon).
	Topology cpu.Topology
	// Cache is the LLC layout (defaults to the testbed part).
	Cache cache.Config
	// Power is the energy model (defaults to the calibrated model).
	Power power.Model
}

// Default returns the paper-testbed node.
func Default() Config {
	return Config{
		Topology: cpu.XeonE5v4(),
		Cache:    cache.XeonE5v4(),
		Power:    power.Default(),
	}
}

// Node is one controllable NFV host.
type Node struct {
	mu sync.Mutex

	proc   *cpu.Processor
	cat    *cache.CAT
	shares *cpu.ShareScheduler
	meter  *power.Meter
	model  power.Model
	cache  cache.Config

	chains map[string]*chainState
	// nextCLOS allocates CLOS ids; CLOS 0 stays the firmware default.
	nextCLOS int
}

type chainState struct {
	chain *onvm.Chain
	knobs []perfmodel.NFKnobs
	dma   dma.Buffer
	clos  []int // one CLOS per NF
}

// New builds a node.
func New(cfg Config) (*Node, error) {
	proc, err := cpu.New(cfg.Topology)
	if err != nil {
		return nil, err
	}
	cat, err := cache.NewCAT(cfg.Cache)
	if err != nil {
		return nil, err
	}
	if err := cfg.Power.Validate(); err != nil {
		return nil, err
	}
	return &Node{
		proc:     proc,
		cat:      cat,
		shares:   cpu.NewShareScheduler(),
		meter:    power.NewMeter(),
		model:    cfg.Power,
		cache:    cfg.Cache,
		chains:   make(map[string]*chainState),
		nextCLOS: 1,
	}, nil
}

// Processor exposes the CPU complex.
func (n *Node) Processor() *cpu.Processor { return n.proc }

// CAT exposes the cache controller.
func (n *Node) CAT() *cache.CAT { return n.cat }

// Meter exposes the energy meter.
func (n *Node) Meter() *power.Meter { return n.meter }

// Deploy registers a service chain on the node with platform-default
// knobs, creating one cgroup share group and one CLOS per NF.
func (n *Node) Deploy(chain *onvm.Chain) error {
	if chain == nil {
		return errors.New("node: nil chain")
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.chains[chain.Name()]; ok {
		return fmt.Errorf("node: chain %q already deployed", chain.Name())
	}
	st := &chainState{
		chain: chain,
		knobs: perfmodel.DefaultKnobs(chain.Len()),
		dma:   dma.Default(),
	}
	for i, nf := range chain.NFs() {
		group := groupName(chain.Name(), nf.Name(), i)
		if err := n.shares.SetGroup(group, 1024, 0); err != nil {
			return err
		}
		closID := n.nextCLOS
		n.nextCLOS++
		if _, err := n.cat.DefineCLOSFraction(closID, st.knobs[i].LLCFraction, 0); err != nil {
			return err
		}
		if err := n.cat.Assign(group, closID); err != nil {
			return err
		}
		st.clos = append(st.clos, closID)
	}
	n.chains[chain.Name()] = st
	return nil
}

func groupName(chain, nf string, idx int) string {
	return fmt.Sprintf("%s/%d-%s", chain, idx, nf)
}

// Apply maps one knob vector (one entry per NF) onto the hardware:
// cgroup share weights and quotas, userspace-governor DVFS, CAT CLOS
// masks, DMA buffer sizing and chain batch sizes.
func (n *Node) Apply(chainName string, knobs []perfmodel.NFKnobs) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	st, ok := n.chains[chainName]
	if !ok {
		return fmt.Errorf("node: unknown chain %q", chainName)
	}
	if len(knobs) != st.chain.Len() {
		return fmt.Errorf("node: %d knob sets for %d NFs", len(knobs), st.chain.Len())
	}
	if n.proc.Governor() != cpu.GovernorUserspace {
		return fmt.Errorf("node: DVFS control needs the userspace governor, have %v", n.proc.Governor())
	}
	// LLC fractions share one cache: rescale oversubscription the
	// same way the performance model does.
	var llcSum float64
	for i := range knobs {
		llcSum += knobs[i].LLCFraction
	}
	scale := 1.0
	if llcSum > 1 {
		scale = 1 / llcSum
	}
	startWay := 0
	maxWays := n.cache.Ways - n.cache.DDIOWays
	for i, nf := range st.chain.NFs() {
		k := knobs[i]
		group := groupName(chainName, nf.Name(), i)
		// cgroups: weight proportional to requested share, quota at
		// the share itself.
		if err := n.shares.SetGroup(group, 1024*k.CPUShare, k.CPUShare); err != nil {
			return err
		}
		if err := n.shares.SetDemand(group, k.CPUShare); err != nil {
			return err
		}
		// DVFS: pin the NF's nominal core to the requested step.
		core := i % n.proc.NumCores()
		if err := n.proc.SetFreq(core, k.FreqGHz); err != nil {
			return err
		}
		// CAT: contiguous masks packed side by side.
		frac := k.LLCFraction * scale
		granted, err := n.cat.DefineCLOSFraction(st.clos[i], frac, startWay)
		if err != nil {
			return err
		}
		startWay += int(granted / n.cache.WayBytes)
		if startWay >= maxWays {
			startWay = 0
		}
		// Batch: straight onto the NF.
		if err := st.chain.NFs()[i].SetBatch(k.Batch); err != nil {
			return err
		}
	}
	// DMA: the head NF's buffer drives the NIC ring.
	st.dma = st.dma.WithBytes(knobs[0].DMABytes)
	st.knobs = append(st.knobs[:0], knobs...)
	return nil
}

// Knobs reports the last-applied knob vector for a chain.
func (n *Node) Knobs(chainName string) ([]perfmodel.NFKnobs, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	st, ok := n.chains[chainName]
	if !ok {
		return nil, fmt.Errorf("node: unknown chain %q", chainName)
	}
	out := make([]perfmodel.NFKnobs, len(st.knobs))
	copy(out, st.knobs)
	return out, nil
}

// DMABuffer reports a chain's current DMA buffer.
func (n *Node) DMABuffer(chainName string) (dma.Buffer, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	st, ok := n.chains[chainName]
	if !ok {
		return dma.Buffer{}, fmt.Errorf("node: unknown chain %q", chainName)
	}
	return st.dma, nil
}

// EffectiveLLCBytes reports the CAT-granted cache capacity of one NF.
func (n *Node) EffectiveLLCBytes(chainName string, nfIndex int) (int64, error) {
	n.mu.Lock()
	st, ok := n.chains[chainName]
	if !ok {
		n.mu.Unlock()
		return 0, fmt.Errorf("node: unknown chain %q", chainName)
	}
	if nfIndex < 0 || nfIndex >= st.chain.Len() {
		n.mu.Unlock()
		return 0, fmt.Errorf("node: NF index %d out of range", nfIndex)
	}
	group := groupName(chainName, st.chain.NFs()[nfIndex].Name(), nfIndex)
	n.mu.Unlock()
	return n.cat.EffectiveBytes(group), nil
}

// AllocateCPU runs the share scheduler over the node's cores and
// returns per-group core grants (observability for the controller).
func (n *Node) AllocateCPU() map[string]float64 {
	return n.shares.Allocate(float64(n.proc.NumCores()))
}

// SamplePower estimates instantaneous node power from reported core
// utilizations and the mean active frequency, and integrates it into
// the meter at simulation time t.
func (n *Node) SamplePower(t float64) float64 {
	u := n.proc.Utilization()
	f := n.proc.MeanFreq()
	p := n.model.Power(u, f)
	n.meter.Sample(t, p)
	return p
}

// Undeploy removes a chain, its share groups and CLOS entries.
func (n *Node) Undeploy(chainName string) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	st, ok := n.chains[chainName]
	if !ok {
		return fmt.Errorf("node: unknown chain %q", chainName)
	}
	for i, nf := range st.chain.NFs() {
		n.shares.RemoveGroup(groupName(chainName, nf.Name(), i))
		// Ignore CLOS-removal errors for CLOS 0 fallbacks.
		_ = n.cat.RemoveCLOS(st.clos[i])
	}
	delete(n.chains, chainName)
	return nil
}

// Chains reports deployed chain names.
func (n *Node) Chains() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, 0, len(n.chains))
	for name := range n.chains {
		out = append(out, name)
	}
	return out
}
