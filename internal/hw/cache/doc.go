// Package cache models the shared last-level cache (LLC) and Intel
// Cache Allocation Technology (CAT) controls GreenNFV uses to
// partition it between NF service chains.
//
// The model follows the paper's testbed part (Xeon E5-2620 v4: 20 MB
// LLC organized as 20 ways of 1 MB) and Intel's CAT semantics:
// software defines Classes of Service (CLOS), each with a capacity
// bitmask (CBM) selecting which ways the class may fill. CBMs must be
// contiguous runs of set bits (an Intel hardware requirement), ways
// may be shared between classes (shared ways are contended), and by
// convention the top 10% of the LLC is reserved for Data Direct I/O
// (DDIO), the region NIC DMA writes land in.
//
// # Paper mapping
//
// The LLC-allocation knob of equation 7 and the miss-rate behaviour
// behind paper Figure 1 (throughput/energy vs LLC share); DDIO
// interaction feeds the Figure 4 DMA-buffer curve via internal/hw/dma.
//
// # Concurrency and determinism
//
// Pure state machines with no RNG and no goroutine-safety: a CAT
// controller belongs to one node.Node, and all queries are
// deterministic functions of the configured bitmasks.
package cache
