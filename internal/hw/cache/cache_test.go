package cache

import (
	"math"
	"testing"
	"testing/quick"
)

func TestXeonE5v4Config(t *testing.T) {
	cfg := XeonE5v4()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("testbed config invalid: %v", err)
	}
	if cfg.TotalBytes() != 20<<20 {
		t.Errorf("total = %d, want 20 MiB", cfg.TotalBytes())
	}
	if cfg.DDIOBytes() != 2<<20 {
		t.Errorf("DDIO = %d, want 2 MiB (10%%)", cfg.DDIOBytes())
	}
	if cfg.SharedBytes() != 18<<20 {
		t.Errorf("shared = %d, want 18 MiB", cfg.SharedBytes())
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Ways: 0, WayBytes: 1, DDIOWays: 0},
		{Ways: 4, WayBytes: 0, DDIOWays: 0},
		{Ways: 4, WayBytes: 1, DDIOWays: 4},
		{Ways: 4, WayBytes: 1, DDIOWays: -1},
		{Ways: 4, WayBytes: 1, DDIOWays: 0, ColdMissRate: 1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestContiguityEnforced(t *testing.T) {
	c := MustNewCAT(XeonE5v4())
	if err := c.DefineCLOS(1, 0b1011); err != ErrNonContiguous {
		t.Errorf("gap mask accepted: %v", err)
	}
	if err := c.DefineCLOS(1, 0); err != ErrEmptyMask {
		t.Errorf("empty mask: %v", err)
	}
	if err := c.DefineCLOS(1, 0b1111); err != nil {
		t.Errorf("valid mask rejected: %v", err)
	}
	// 18 non-DDIO ways: mask needing way 18 must fail.
	if err := c.DefineCLOS(2, 1<<18); err == nil {
		t.Error("mask beyond non-DDIO ways accepted")
	}
	// Mask of exactly 18 ways is the maximum.
	if err := c.DefineCLOS(2, (1<<18)-1); err != nil {
		t.Errorf("full-width mask rejected: %v", err)
	}
}

func TestAssignAndCLOSOf(t *testing.T) {
	c := MustNewCAT(XeonE5v4())
	_ = c.DefineCLOS(3, 0b111)
	if err := c.Assign("chain1", 3); err != nil {
		t.Fatal(err)
	}
	if got := c.CLOSOf("chain1"); got != 3 {
		t.Errorf("CLOSOf = %d, want 3", got)
	}
	if got := c.CLOSOf("unknown"); got != 0 {
		t.Errorf("unassigned group CLOS = %d, want 0", got)
	}
	if err := c.Assign("x", 99); err != ErrUnknownCLOS {
		t.Errorf("assign to unknown CLOS: %v", err)
	}
}

func TestRemoveCLOSFallsBack(t *testing.T) {
	c := MustNewCAT(XeonE5v4())
	_ = c.DefineCLOS(5, 0b11)
	_ = c.Assign("nf", 5)
	if err := c.RemoveCLOS(5); err != nil {
		t.Fatal(err)
	}
	if got := c.CLOSOf("nf"); got != 0 {
		t.Errorf("group did not fall back to CLOS 0, got %d", got)
	}
	if err := c.RemoveCLOS(0); err == nil {
		t.Error("CLOS 0 removal accepted")
	}
	if err := c.RemoveCLOS(42); err != ErrUnknownCLOS {
		t.Errorf("removing unknown CLOS: %v", err)
	}
}

func TestEffectiveBytesExclusive(t *testing.T) {
	c := MustNewCAT(XeonE5v4())
	wb := c.Config().WayBytes
	_ = c.DefineCLOS(1, 0b1111)     // ways 0-3
	_ = c.DefineCLOS(2, 0b11110000) // ways 4-7, disjoint
	_ = c.Assign("a", 1)
	_ = c.Assign("b", 2)
	if got := c.EffectiveBytes("a"); got != 4*wb {
		t.Errorf("exclusive a = %d, want %d", got, 4*wb)
	}
	if got := c.EffectiveBytes("b"); got != 4*wb {
		t.Errorf("exclusive b = %d, want %d", got, 4*wb)
	}
}

func TestEffectiveBytesSharedWaysSplit(t *testing.T) {
	c := MustNewCAT(XeonE5v4())
	wb := c.Config().WayBytes
	_ = c.DefineCLOS(1, 0b0111) // ways 0-2
	_ = c.DefineCLOS(2, 0b0110) // ways 1-2 shared with CLOS 1
	_ = c.Assign("a", 1)
	_ = c.Assign("b", 2)
	// a: way0 exclusive + ways1,2 halved = 1 + 1 = 2 ways.
	if got := c.EffectiveBytes("a"); got != 2*wb {
		t.Errorf("shared a = %d, want %d", got, 2*wb)
	}
	// b: ways1,2 halved = 1 way.
	if got := c.EffectiveBytes("b"); got != 1*wb {
		t.Errorf("shared b = %d, want %d", got, 1*wb)
	}
}

func TestEffectiveBytesUnknownGroupUsesCLOS0(t *testing.T) {
	c := MustNewCAT(XeonE5v4())
	// Unassigned group maps to CLOS 0 = all 18 non-DDIO ways.
	want := c.Config().SharedBytes()
	if got := c.EffectiveBytes("ghost"); got != want {
		t.Errorf("CLOS-0 effective = %d, want %d", got, want)
	}
}

func TestDefineCLOSFraction(t *testing.T) {
	c := MustNewCAT(XeonE5v4())
	wb := c.Config().WayBytes
	got, err := c.DefineCLOSFraction(1, 0.5, 0) // 9 of 18 ways
	if err != nil {
		t.Fatal(err)
	}
	if got != 9*wb {
		t.Errorf("0.5 fraction = %d bytes, want %d", got, 9*wb)
	}
	// Tiny fraction still grants one way.
	got, err = c.DefineCLOSFraction(2, 0.001, 0)
	if err != nil || got != wb {
		t.Errorf("min fraction = %d (%v), want one way", got, err)
	}
	// Fraction over 1 clamps to everything.
	got, err = c.DefineCLOSFraction(3, 7, 0)
	if err != nil || got != 18*wb {
		t.Errorf("clamped fraction = %d (%v), want %d", got, err, 18*wb)
	}
	// Start way beyond range slides back.
	got, err = c.DefineCLOSFraction(4, 0.5, 15)
	if err != nil || got != 9*wb {
		t.Errorf("sliding start = %d (%v), want %d", got, err, 9*wb)
	}
}

func TestMissRateShape(t *testing.T) {
	const meg = int64(1 << 20)
	// Fits: only cold misses.
	if m := MissRate(2*meg, 4*meg, 0.02); m != 0.02 {
		t.Errorf("fitting working set miss = %v, want 0.02", m)
	}
	// Double the cache: half the data uncached.
	m := MissRate(8*meg, 4*meg, 0.0)
	if math.Abs(m-0.5) > 1e-9 {
		t.Errorf("half-cached miss = %v, want 0.5", m)
	}
	// Zero allocation: everything misses beyond cold floor.
	if m := MissRate(meg, 0, 0.02); math.Abs(m-1.0) > 1e-9 {
		t.Errorf("no-cache miss = %v, want 1", m)
	}
	// Degenerate working set.
	if m := MissRate(0, meg, 0.02); m != 0.02 {
		t.Errorf("empty working set = %v, want cold", m)
	}
}

// Property: miss rate is within [cold, 1], monotone non-increasing in
// allocation and non-decreasing in working set.
func TestMissRateMonotone(t *testing.T) {
	f := func(wsRaw, allocRaw uint32, coldRaw float64) bool {
		ws := int64(wsRaw)
		alloc := int64(allocRaw)
		cold := math.Abs(math.Mod(coldRaw, 1))
		if math.IsNaN(cold) {
			cold = 0
		}
		m := MissRate(ws, alloc, cold)
		if m < cold-1e-12 || m > 1+1e-12 {
			return false
		}
		mMoreCache := MissRate(ws, alloc+1<<16, cold)
		mMoreWork := MissRate(ws+1<<16, alloc, cold)
		return mMoreCache <= m+1e-12 && mMoreWork >= m-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestDDIOOverflow(t *testing.T) {
	const meg = int64(1 << 20)
	if e := DDIOOverflowEvictions(meg, 2*meg, 0.3); e != 0 {
		t.Errorf("fitting DMA buffer evictions = %v, want 0", e)
	}
	// 4 MiB buffer on 2 MiB DDIO: half spills.
	e := DDIOOverflowEvictions(4*meg, 2*meg, 0.3)
	if math.Abs(e-0.15) > 1e-9 {
		t.Errorf("spill evictions = %v, want 0.15", e)
	}
	// Saturation: huge buffer approaches maxTerm.
	e = DDIOOverflowEvictions(1000*meg, 2*meg, 0.3)
	if e <= 0.29 || e > 0.3 {
		t.Errorf("saturated evictions = %v, want ≈0.3", e)
	}
}

func TestMaskLookups(t *testing.T) {
	c := MustNewCAT(XeonE5v4())
	m, err := c.Mask(0)
	if err != nil {
		t.Fatal(err)
	}
	if m != (1<<18)-1 {
		t.Errorf("CLOS 0 mask = %b, want 18 ways", m)
	}
	if _, err := c.Mask(7); err != ErrUnknownCLOS {
		t.Errorf("unknown CLOS mask: %v", err)
	}
	_ = c.Assign("g1", 0)
	_ = c.Assign("g2", 0)
	groups := c.Groups()
	if len(groups) != 2 || groups[0] != "g1" || groups[1] != "g2" {
		t.Errorf("groups = %v", groups)
	}
}
