package cache

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
	"sort"
	"sync"
)

// Errors returned by CAT operations.
var (
	ErrNonContiguous = errors.New("cache: CBM must be a contiguous run of set bits")
	ErrEmptyMask     = errors.New("cache: CBM must have at least one way")
	ErrMaskRange     = errors.New("cache: CBM exceeds the number of ways")
	ErrUnknownCLOS   = errors.New("cache: unknown CLOS")
)

// Config sizes the cache model.
type Config struct {
	// Ways is the number of LLC ways (20 on the testbed part).
	Ways int
	// WayBytes is the capacity of one way (1 MiB on the testbed part).
	WayBytes int64
	// DDIOWays is how many of the top ways DDIO claims (Intel defaults
	// to 10% of the LLC: 2 ways here).
	DDIOWays int
	// ColdMissRate is the floor miss rate even when the working set
	// fits: compulsory misses on first-touch packet data.
	ColdMissRate float64
}

// XeonE5v4 returns the testbed LLC: 20 × 1 MiB ways, 2 DDIO ways,
// 2% compulsory misses.
func XeonE5v4() Config {
	return Config{Ways: 20, WayBytes: 1 << 20, DDIOWays: 2, ColdMissRate: 0.02}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.Ways <= 0:
		return errors.New("cache: need at least one way")
	case c.WayBytes <= 0:
		return errors.New("cache: way size must be positive")
	case c.DDIOWays < 0 || c.DDIOWays >= c.Ways:
		return errors.New("cache: DDIO ways must be in [0, ways)")
	case c.ColdMissRate < 0 || c.ColdMissRate >= 1:
		return errors.New("cache: cold miss rate must be in [0, 1)")
	}
	return nil
}

// TotalBytes reports the full LLC capacity.
func (c Config) TotalBytes() int64 { return int64(c.Ways) * c.WayBytes }

// DDIOBytes reports the capacity of the DDIO partition.
func (c Config) DDIOBytes() int64 { return int64(c.DDIOWays) * c.WayBytes }

// SharedBytes reports LLC capacity available to CLOS masks (total
// minus the DDIO reservation).
func (c Config) SharedBytes() int64 { return c.TotalBytes() - c.DDIOBytes() }

// CAT is the Cache Allocation Technology control plane: CLOS
// definitions plus group-to-CLOS assignment. Safe for concurrent use.
type CAT struct {
	mu     sync.RWMutex
	cfg    Config
	clos   map[int]uint64 // CLOS id -> CBM
	groups map[string]int // group (NF/chain) -> CLOS id
}

// NewCAT builds a CAT controller over the given cache configuration.
// CLOS 0 is predefined as "all non-DDIO ways" (the firmware default).
func NewCAT(cfg Config) (*CAT, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	defaultMask := contiguousMask(cfg.Ways-cfg.DDIOWays, 0)
	return &CAT{
		cfg:    cfg,
		clos:   map[int]uint64{0: defaultMask},
		groups: make(map[string]int),
	}, nil
}

// MustNewCAT is NewCAT that panics on error.
func MustNewCAT(cfg Config) *CAT {
	c, err := NewCAT(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the cache configuration.
func (c *CAT) Config() Config { return c.cfg }

// contiguousMask builds a mask of `width` set bits starting at `shift`.
func contiguousMask(width, shift int) uint64 {
	if width <= 0 {
		return 0
	}
	if width >= 64 {
		return ^uint64(0) << shift
	}
	return ((uint64(1) << width) - 1) << shift
}

// isContiguous reports whether the set bits of m form one run.
func isContiguous(m uint64) bool {
	if m == 0 {
		return false
	}
	shifted := m >> bits.TrailingZeros64(m)
	return shifted&(shifted+1) == 0
}

// DefineCLOS installs (or replaces) a CLOS with the given capacity
// bitmask over the non-DDIO ways. Bit i selects way i. Masks must be
// contiguous (hardware requirement) and within range.
func (c *CAT) DefineCLOS(id int, cbm uint64) error {
	if cbm == 0 {
		return ErrEmptyMask
	}
	if !isContiguous(cbm) {
		return ErrNonContiguous
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	maxWays := c.cfg.Ways - c.cfg.DDIOWays
	if bits.Len64(cbm) > maxWays {
		return fmt.Errorf("%w: mask needs way %d of %d non-DDIO ways",
			ErrMaskRange, bits.Len64(cbm)-1, maxWays)
	}
	c.clos[id] = cbm
	return nil
}

// DefineCLOSFraction is a convenience that installs a CLOS covering
// approximately `fraction` of the non-DDIO LLC, as a contiguous mask
// starting at `startWay`. At least one way is always allocated.
// It returns the actual byte capacity granted.
func (c *CAT) DefineCLOSFraction(id int, fraction float64, startWay int) (int64, error) {
	if fraction < 0 {
		fraction = 0
	}
	if fraction > 1 {
		fraction = 1
	}
	maxWays := c.cfg.Ways - c.cfg.DDIOWays
	ways := int(math.Round(fraction * float64(maxWays)))
	if ways < 1 {
		ways = 1
	}
	if startWay < 0 {
		startWay = 0
	}
	if startWay+ways > maxWays {
		startWay = maxWays - ways
		if startWay < 0 {
			startWay, ways = 0, maxWays
		}
	}
	if err := c.DefineCLOS(id, contiguousMask(ways, startWay)); err != nil {
		return 0, err
	}
	return int64(ways) * c.cfg.WayBytes, nil
}

// RemoveCLOS deletes a CLOS definition. CLOS 0 cannot be removed;
// groups assigned to the removed CLOS fall back to CLOS 0.
func (c *CAT) RemoveCLOS(id int) error {
	if id == 0 {
		return errors.New("cache: CLOS 0 is the firmware default and cannot be removed")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.clos[id]; !ok {
		return ErrUnknownCLOS
	}
	delete(c.clos, id)
	for g, cid := range c.groups {
		if cid == id {
			c.groups[g] = 0
		}
	}
	return nil
}

// Assign binds a group (an NF or a chain) to a CLOS.
func (c *CAT) Assign(group string, closID int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.clos[closID]; !ok {
		return ErrUnknownCLOS
	}
	c.groups[group] = closID
	return nil
}

// CLOSOf reports the CLOS a group is assigned to (default 0).
func (c *CAT) CLOSOf(group string) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.groups[group]
}

// Mask reports the CBM of a CLOS.
func (c *CAT) Mask(closID int) (uint64, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	m, ok := c.clos[closID]
	if !ok {
		return 0, ErrUnknownCLOS
	}
	return m, nil
}

// EffectiveBytes reports the cache capacity a group can rely on:
// exclusively-held ways count in full; ways shared with other
// *assigned* classes are split evenly among the sharers, which is how
// contended LLC ways behave on average under LRU.
func (c *CAT) EffectiveBytes(group string) int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	myMask, ok := c.clos[c.groups[group]]
	if !ok {
		return 0
	}
	// Count, per way of mine, how many assigned groups share it.
	// Multiple groups mapped onto one CLOS contend within it too, so
	// each assigned group counts separately.
	maxWays := c.cfg.Ways - c.cfg.DDIOWays
	counts := make([]int, maxWays)
	for _, cid := range c.groups {
		m := c.clos[cid]
		for w := 0; w < maxWays; w++ {
			if m&(1<<uint(w)) != 0 {
				counts[w]++
			}
		}
	}
	var capacity float64
	for w := 0; w < maxWays; w++ {
		if myMask&(1<<uint(w)) == 0 {
			continue
		}
		sharers := counts[w]
		if sharers < 1 {
			sharers = 1
		}
		capacity += float64(c.cfg.WayBytes) / float64(sharers)
	}
	return int64(capacity)
}

// Groups reports assigned group names in sorted order.
func (c *CAT) Groups() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.groups))
	for g := range c.groups {
		out = append(out, g)
	}
	sort.Strings(out)
	return out
}

// MissRate estimates the LLC miss rate for a working set of
// `workingSet` bytes given `allocated` bytes of effective cache, with
// compulsory floor `cold`. When the working set fits, only cold
// misses remain; beyond that the uncached fraction misses:
//
//	m = cold + (1 − cold) · max(0, 1 − allocated/workingSet)
//
// This is the standard fully-associative LRU hit-ratio bound and
// reproduces the knee-then-degrade shape of paper Figure 1.
func MissRate(workingSet, allocated int64, cold float64) float64 {
	if cold < 0 {
		cold = 0
	}
	if cold > 1 {
		cold = 1
	}
	if workingSet <= 0 {
		return cold
	}
	if allocated >= workingSet {
		return cold
	}
	if allocated < 0 {
		allocated = 0
	}
	uncached := 1 - float64(allocated)/float64(workingSet)
	return cold + (1-cold)*uncached
}

// DDIOOverflowEvictions estimates the extra eviction pressure (as an
// additive miss-rate term) caused by a DMA buffer footprint that
// exceeds the DDIO partition: the spill writes allocate into the
// shared ways and evict NF state. The term saturates at `maxTerm`.
func DDIOOverflowEvictions(dmaBytes, ddioBytes int64, maxTerm float64) float64 {
	if dmaBytes <= ddioBytes || ddioBytes < 0 {
		return 0
	}
	spill := float64(dmaBytes-ddioBytes) / float64(dmaBytes)
	return maxTerm * spill
}
