// Package cpu models the processor-side control surface GreenNFV
// tunes: per-core DVFS (the cpufrequtils userspace governor of the
// paper), power governors, C-state sleeping for idle NFs, and
// cgroup-style CPU shares.
//
// The model mirrors the paper's testbed: dual-socket Intel Xeon
// E5-2620 v4 with 8 cores per socket (16 total) and a DVFS ladder
// from 1.2 GHz to 2.1 GHz in 100 MHz steps.
//
// # Paper mapping
//
// The CPU-share and core-frequency knobs of equation 7, the
// frequency sweep of paper Figure 2, and the C-state policy axis of
// the Figure 9 platform variants (busy-poll disables sleeping).
//
// # Concurrency and determinism
//
// Deterministic, RNG-free state machines; NOT goroutine-safe. A
// Processor and its share scheduler belong to one node.Node, which
// serializes access.
package cpu
