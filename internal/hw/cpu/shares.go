package cpu

import (
	"fmt"
	"sort"
	"sync"
)

// ShareScheduler models cgroup CPU shares ("cpu.shares"): each group
// (one per NF) declares a weight, and contended CPU time divides
// proportionally to weight, capped by each group's quota. This is the
// mechanism the paper borrows from NFVNice for CPU scheduling of NFs.
type ShareScheduler struct {
	mu     sync.RWMutex
	groups map[string]*shareGroup
}

type shareGroup struct {
	weight float64 // relative share weight (cpu.shares)
	quota  float64 // cap in cores (cpu.cfs_quota/period); 0 = unlimited
	demand float64 // requested cores this interval
}

// NewShareScheduler returns an empty scheduler.
func NewShareScheduler() *ShareScheduler {
	return &ShareScheduler{groups: make(map[string]*shareGroup)}
}

// SetGroup creates or updates a group's weight and quota. Weight must
// be positive; quota <= 0 means uncapped.
func (s *ShareScheduler) SetGroup(name string, weight, quotaCores float64) error {
	if weight <= 0 {
		return fmt.Errorf("cpu: group %q weight must be positive", name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	g, ok := s.groups[name]
	if !ok {
		g = &shareGroup{}
		s.groups[name] = g
	}
	g.weight = weight
	g.quota = quotaCores
	return nil
}

// RemoveGroup deletes a group; unknown names are ignored.
func (s *ShareScheduler) RemoveGroup(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.groups, name)
}

// SetDemand records how many cores a group wants this interval.
func (s *ShareScheduler) SetDemand(name string, cores float64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	g, ok := s.groups[name]
	if !ok {
		return fmt.Errorf("cpu: unknown group %q", name)
	}
	if cores < 0 {
		cores = 0
	}
	g.demand = cores
	return nil
}

// Allocate divides `capacity` cores among the groups proportionally
// to weight, honoring quotas and never granting more than demand.
// Surplus from satisfied groups redistributes to the still-hungry
// ones (water-filling), exactly like CFS group scheduling behaves
// under contention. The returned map grants cores per group.
func (s *ShareScheduler) Allocate(capacity float64) map[string]float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	grant := make(map[string]float64, len(s.groups))
	if capacity <= 0 || len(s.groups) == 0 {
		for name := range s.groups {
			grant[name] = 0
		}
		return grant
	}

	// Water-filling over the unsatisfied set. Iterate names in sorted
	// order for determinism.
	type entry struct {
		name   string
		g      *shareGroup
		limit  float64 // min(demand, quota)
		given  float64
		active bool
	}
	entries := make([]entry, 0, len(s.groups))
	names := make([]string, 0, len(s.groups))
	for name := range s.groups {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		g := s.groups[name]
		limit := g.demand
		if g.quota > 0 && g.quota < limit {
			limit = g.quota
		}
		entries = append(entries, entry{name: name, g: g, limit: limit, active: limit > 0})
	}

	remaining := capacity
	for iter := 0; iter < len(entries)+1; iter++ {
		var weightSum float64
		for i := range entries {
			if entries[i].active {
				weightSum += entries[i].g.weight
			}
		}
		if weightSum == 0 || remaining <= 1e-12 {
			break
		}
		allSatisfied := true
		consumed := 0.0
		for i := range entries {
			e := &entries[i]
			if !e.active {
				continue
			}
			fair := remaining * e.g.weight / weightSum
			room := e.limit - e.given
			if fair >= room {
				e.given = e.limit
				e.active = false
				consumed += room
				allSatisfied = false
			} else {
				e.given += fair
				consumed += fair
			}
		}
		remaining -= consumed
		if allSatisfied {
			break
		}
	}
	for i := range entries {
		grant[entries[i].name] = entries[i].given
	}
	return grant
}

// Groups reports the group names in sorted order.
func (s *ShareScheduler) Groups() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.groups))
	for name := range s.groups {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
