package cpu

import (
	"math"
	"math/rand"
	"testing"
)

func TestSharesProportionalSplit(t *testing.T) {
	s := NewShareScheduler()
	_ = s.SetGroup("a", 2, 0)
	_ = s.SetGroup("b", 1, 0)
	_ = s.SetDemand("a", 10)
	_ = s.SetDemand("b", 10)
	grant := s.Allocate(3)
	if math.Abs(grant["a"]-2) > 1e-9 || math.Abs(grant["b"]-1) > 1e-9 {
		t.Errorf("grant = %v, want a=2 b=1", grant)
	}
}

func TestSharesSurplusRedistributes(t *testing.T) {
	s := NewShareScheduler()
	_ = s.SetGroup("small", 1, 0)
	_ = s.SetGroup("big", 1, 0)
	_ = s.SetDemand("small", 0.5) // satisfied early
	_ = s.SetDemand("big", 10)
	grant := s.Allocate(4)
	if math.Abs(grant["small"]-0.5) > 1e-9 {
		t.Errorf("small = %v, want 0.5", grant["small"])
	}
	if math.Abs(grant["big"]-3.5) > 1e-9 {
		t.Errorf("big = %v, want 3.5 (surplus redistributed)", grant["big"])
	}
}

func TestSharesQuotaCaps(t *testing.T) {
	s := NewShareScheduler()
	_ = s.SetGroup("capped", 10, 1) // huge weight, 1-core quota
	_ = s.SetGroup("other", 1, 0)
	_ = s.SetDemand("capped", 8)
	_ = s.SetDemand("other", 8)
	grant := s.Allocate(4)
	if grant["capped"] > 1+1e-9 {
		t.Errorf("capped = %v, quota violated", grant["capped"])
	}
	if math.Abs(grant["other"]-3) > 1e-9 {
		t.Errorf("other = %v, want 3", grant["other"])
	}
}

func TestSharesZeroDemand(t *testing.T) {
	s := NewShareScheduler()
	_ = s.SetGroup("idle", 1, 0)
	_ = s.SetGroup("busy", 1, 0)
	_ = s.SetDemand("busy", 2)
	grant := s.Allocate(4)
	if grant["idle"] != 0 {
		t.Errorf("idle granted %v, want 0", grant["idle"])
	}
	if math.Abs(grant["busy"]-2) > 1e-9 {
		t.Errorf("busy = %v, want 2 (capped by demand)", grant["busy"])
	}
}

func TestSharesErrors(t *testing.T) {
	s := NewShareScheduler()
	if err := s.SetGroup("x", 0, 0); err == nil {
		t.Error("zero weight accepted")
	}
	if err := s.SetDemand("nope", 1); err == nil {
		t.Error("unknown group accepted")
	}
	_ = s.SetGroup("x", 1, 0)
	if err := s.SetDemand("x", -5); err != nil {
		t.Errorf("negative demand should clamp, got error %v", err)
	}
	grant := s.Allocate(1)
	if grant["x"] != 0 {
		t.Errorf("clamped demand granted %v, want 0", grant["x"])
	}
	s.RemoveGroup("x")
	s.RemoveGroup("x") // idempotent
	if len(s.Groups()) != 0 {
		t.Error("group not removed")
	}
}

func TestSharesEmptyAndZeroCapacity(t *testing.T) {
	s := NewShareScheduler()
	if grant := s.Allocate(4); len(grant) != 0 {
		t.Errorf("empty scheduler granted %v", grant)
	}
	_ = s.SetGroup("a", 1, 0)
	_ = s.SetDemand("a", 1)
	grant := s.Allocate(0)
	if grant["a"] != 0 {
		t.Errorf("zero capacity granted %v", grant["a"])
	}
}

// Property: total grant never exceeds capacity, no group exceeds its
// demand or quota, and grants are non-negative.
func TestSharesInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 200; trial++ {
		s := NewShareScheduler()
		n := 1 + rng.Intn(6)
		demands := make(map[string]float64, n)
		quotas := make(map[string]float64, n)
		for i := 0; i < n; i++ {
			name := string(rune('a' + i))
			w := rng.Float64()*9 + 0.1
			q := 0.0
			if rng.Intn(2) == 0 {
				q = rng.Float64() * 4
			}
			_ = s.SetGroup(name, w, q)
			d := rng.Float64() * 6
			_ = s.SetDemand(name, d)
			demands[name], quotas[name] = d, q
		}
		capacity := rng.Float64() * 16
		grant := s.Allocate(capacity)
		var total float64
		for name, g := range grant {
			if g < -1e-9 {
				t.Fatalf("trial %d: negative grant %v", trial, g)
			}
			if g > demands[name]+1e-9 {
				t.Fatalf("trial %d: grant %v exceeds demand %v", trial, g, demands[name])
			}
			if q := quotas[name]; q > 0 && g > q+1e-9 {
				t.Fatalf("trial %d: grant %v exceeds quota %v", trial, g, q)
			}
			total += g
		}
		if total > capacity+1e-6 {
			t.Fatalf("trial %d: total grant %v exceeds capacity %v", trial, total, capacity)
		}
	}
}

// Property: if total demand fits within capacity and quotas, everyone
// gets exactly their demand (work conservation).
func TestSharesWorkConserving(t *testing.T) {
	s := NewShareScheduler()
	_ = s.SetGroup("a", 5, 0)
	_ = s.SetGroup("b", 1, 0)
	_ = s.SetGroup("c", 2, 0)
	_ = s.SetDemand("a", 1)
	_ = s.SetDemand("b", 1.5)
	_ = s.SetDemand("c", 0.25)
	grant := s.Allocate(16)
	for name, want := range map[string]float64{"a": 1, "b": 1.5, "c": 0.25} {
		if math.Abs(grant[name]-want) > 1e-9 {
			t.Errorf("%s = %v, want %v", name, grant[name], want)
		}
	}
}
