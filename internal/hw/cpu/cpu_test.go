package cpu

import (
	"math"
	"testing"
	"testing/quick"
)

func TestXeonE5v4Topology(t *testing.T) {
	topo := XeonE5v4()
	if err := topo.Validate(); err != nil {
		t.Fatalf("testbed topology invalid: %v", err)
	}
	if topo.Sockets != 2 || topo.CoresPerSocket != 8 {
		t.Errorf("topology = %d sockets x %d cores, want 2x8", topo.Sockets, topo.CoresPerSocket)
	}
	if topo.Freqs[0] != 1.2 || topo.Freqs[len(topo.Freqs)-1] != 2.1 {
		t.Errorf("ladder = [%v..%v], want [1.2..2.1]", topo.Freqs[0], topo.Freqs[len(topo.Freqs)-1])
	}
	if len(topo.Freqs) != 10 {
		t.Errorf("ladder has %d steps, want 10", len(topo.Freqs))
	}
}

func TestTopologyValidation(t *testing.T) {
	bad := []Topology{
		{Sockets: 0, CoresPerSocket: 8, Freqs: []float64{1}},
		{Sockets: 1, CoresPerSocket: 0, Freqs: []float64{1}},
		{Sockets: 1, CoresPerSocket: 1, Freqs: nil},
		{Sockets: 1, CoresPerSocket: 1, Freqs: []float64{2, 1}},
		{Sockets: 1, CoresPerSocket: 1, Freqs: []float64{0}},
	}
	for i, topo := range bad {
		if err := topo.Validate(); err == nil {
			t.Errorf("case %d: invalid topology accepted", i)
		}
	}
}

func TestProcessorDefaults(t *testing.T) {
	p := MustNew(XeonE5v4())
	if p.NumCores() != 16 {
		t.Fatalf("cores = %d, want 16", p.NumCores())
	}
	if p.Governor() != GovernorUserspace {
		t.Errorf("governor = %v, want userspace", p.Governor())
	}
	f, err := p.Freq(0)
	if err != nil || f != 1.2 {
		t.Errorf("initial freq = %v (%v), want 1.2", f, err)
	}
	if p.FMin() != 1.2 || p.FMax() != 2.1 {
		t.Errorf("FMin/FMax = %v/%v", p.FMin(), p.FMax())
	}
}

func TestSetFreqSnapsToLadder(t *testing.T) {
	p := MustNew(XeonE5v4())
	if err := p.SetFreq(3, 1.74); err != nil {
		t.Fatal(err)
	}
	f, _ := p.Freq(3)
	if f != 1.7 {
		t.Errorf("freq = %v, want snap to 1.7", f)
	}
	if err := p.SetFreq(3, 99); err != nil {
		t.Fatal(err)
	}
	f, _ = p.Freq(3)
	if f != 2.1 {
		t.Errorf("freq = %v, want clamp to 2.1", f)
	}
	if err := p.SetFreq(99, 1.5); err == nil {
		t.Error("out-of-range core accepted")
	}
}

func TestSetFreqRequiresUserspace(t *testing.T) {
	p := MustNew(XeonE5v4())
	p.SetGovernor(GovernorPerformance)
	if err := p.SetFreq(0, 1.5); err == nil {
		t.Error("SetFreq allowed under performance governor")
	}
	if err := p.SetAllFreqs(1.5); err == nil {
		t.Error("SetAllFreqs allowed under performance governor")
	}
	// Performance governor pins to max.
	f, _ := p.Freq(0)
	if f != 2.1 {
		t.Errorf("performance governor freq = %v, want 2.1", f)
	}
	p.SetGovernor(GovernorPowersave)
	f, _ = p.Freq(0)
	if f != 1.2 {
		t.Errorf("powersave governor freq = %v, want 1.2", f)
	}
}

func TestStepFreq(t *testing.T) {
	p := MustNew(XeonE5v4())
	_ = p.SetAllFreqs(1.5)
	got, err := p.StepFreq(0, +1)
	if err != nil || math.Abs(got-1.6) > 1e-9 {
		t.Errorf("step up = %v (%v), want 1.6", got, err)
	}
	got, _ = p.StepFreq(0, -1)
	if math.Abs(got-1.5) > 1e-9 {
		t.Errorf("step down = %v, want 1.5", got)
	}
	// Clamp at the bottom.
	_ = p.SetAllFreqs(1.2)
	got, _ = p.StepFreq(0, -1)
	if got != 1.2 {
		t.Errorf("step below min = %v, want 1.2", got)
	}
	// Clamp at the top.
	_ = p.SetAllFreqs(2.1)
	got, _ = p.StepFreq(0, +1)
	if got != 2.1 {
		t.Errorf("step above max = %v, want 2.1", got)
	}
	if _, err := p.StepFreq(-1, +1); err == nil {
		t.Error("negative core accepted")
	}
}

func TestCStates(t *testing.T) {
	p := MustNew(XeonE5v4())
	if err := p.SetCState(5, C6); err != nil {
		t.Fatal(err)
	}
	s, err := p.CStateOf(5)
	if err != nil || s != C6 {
		t.Errorf("cstate = %v (%v), want C6", s, err)
	}
	if C6.WakeLatency() <= C1.WakeLatency() {
		t.Error("deeper C-state should have larger wake latency")
	}
	if C6.IdlePowerFraction() >= C1.IdlePowerFraction() {
		t.Error("deeper C-state should save more power")
	}
	if _, err := p.CStateOf(100); err == nil {
		t.Error("out-of-range core accepted")
	}
}

func TestUtilizationAccounting(t *testing.T) {
	p := MustNew(XeonE5v4())
	for i := 0; i < 8; i++ {
		if err := p.ReportUtilization(i, 1.0); err != nil {
			t.Fatal(err)
		}
	}
	// 8 of 16 cores fully busy → 50%.
	if u := p.Utilization(); math.Abs(u-0.5) > 1e-9 {
		t.Errorf("utilization = %v, want 0.5", u)
	}
	// Sleeping cores do not count.
	_ = p.SetCState(0, C6)
	if u := p.Utilization(); math.Abs(u-7.0/16) > 1e-9 {
		t.Errorf("utilization = %v, want %v", u, 7.0/16)
	}
	// Clamping.
	_ = p.ReportUtilization(1, 3.0)
	snap := p.Snapshot()
	if snap[1].Utilization() != 1 {
		t.Errorf("utilization clamped = %v, want 1", snap[1].Utilization())
	}
	if err := p.ReportUtilization(-3, 0.5); err == nil {
		t.Error("negative core accepted")
	}
}

func TestOndemandGovernorTick(t *testing.T) {
	p := MustNew(XeonE5v4())
	_ = p.SetAllFreqs(1.5)
	p.SetGovernor(GovernorOndemand)
	_ = p.ReportUtilization(0, 0.95) // hot core jumps to max
	_ = p.ReportUtilization(1, 0.1)  // cold core steps down
	p.ApplyGovernorTick()
	f0, _ := p.Freq(0)
	f1, _ := p.Freq(1)
	if f0 != 2.1 {
		t.Errorf("ondemand hot core = %v, want 2.1", f0)
	}
	if math.Abs(f1-1.4) > 1e-9 {
		t.Errorf("ondemand cold core = %v, want 1.4", f1)
	}
}

func TestConservativeGovernorTick(t *testing.T) {
	p := MustNew(XeonE5v4())
	_ = p.SetAllFreqs(1.5)
	p.SetGovernor(GovernorConservative)
	_ = p.ReportUtilization(0, 0.95)
	p.ApplyGovernorTick()
	f0, _ := p.Freq(0)
	if math.Abs(f0-1.6) > 1e-9 {
		t.Errorf("conservative hot core = %v, want one step to 1.6", f0)
	}
}

func TestMeanFreqSkipsSleepers(t *testing.T) {
	p := MustNew(XeonE5v4())
	_ = p.SetAllFreqs(2.1)
	_ = p.SetFreq(0, 1.2)
	_ = p.SetCState(0, C6) // excluded
	if mf := p.MeanFreq(); math.Abs(mf-2.1) > 1e-9 {
		t.Errorf("mean freq = %v, want 2.1", mf)
	}
}

func TestGovernorString(t *testing.T) {
	names := map[Governor]string{
		GovernorPerformance:  "performance",
		GovernorPowersave:    "powersave",
		GovernorUserspace:    "userspace",
		GovernorOndemand:     "ondemand",
		GovernorConservative: "conservative",
	}
	for g, want := range names {
		if g.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(g), g.String(), want)
		}
	}
	if C3.String() != "C3" {
		t.Errorf("C3.String() = %q", C3.String())
	}
}

// Property: SetFreq always lands exactly on a ladder entry.
func TestSetFreqAlwaysOnLadder(t *testing.T) {
	p := MustNew(XeonE5v4())
	ladder := p.Topology().Freqs
	onLadder := func(f float64) bool {
		for _, lf := range ladder {
			if math.Abs(lf-f) < 1e-9 {
				return true
			}
		}
		return false
	}
	check := func(raw float64) bool {
		if math.IsNaN(raw) || math.IsInf(raw, 0) {
			return true
		}
		if err := p.SetFreq(2, raw); err != nil {
			return false
		}
		f, _ := p.Freq(2)
		return onLadder(f)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
