package cpu

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Governor selects a frequency-management policy, matching the Linux
// cpufreq governors the paper enumerates.
type Governor int

const (
	// GovernorPerformance pins every core at the maximum frequency
	// (the paper's Baseline configuration).
	GovernorPerformance Governor = iota
	// GovernorPowersave pins every core at the minimum frequency.
	GovernorPowersave
	// GovernorUserspace lets software set frequencies explicitly;
	// GreenNFV uses this governor for its DVFS actions.
	GovernorUserspace
	// GovernorOndemand raises frequency with utilization aggressively.
	GovernorOndemand
	// GovernorConservative raises frequency with utilization gradually.
	GovernorConservative
)

// String implements fmt.Stringer.
func (g Governor) String() string {
	switch g {
	case GovernorPerformance:
		return "performance"
	case GovernorPowersave:
		return "powersave"
	case GovernorUserspace:
		return "userspace"
	case GovernorOndemand:
		return "ondemand"
	case GovernorConservative:
		return "conservative"
	default:
		return fmt.Sprintf("governor(%d)", int(g))
	}
}

// CState is a processor idle state. Deeper states save more power but
// cost more wakeup latency; the NF manager puts sleeping NF cores in
// C3/C6 when their queues drain (paper §4.4: "when there is no packet
// to process, we put NF to sleep until a new packet arrives").
type CState int

const (
	// C0 is the active state.
	C0 CState = iota
	// C1 is a light halt: negligible wake latency, modest savings.
	C1
	// C3 is a deeper sleep with flushed core caches.
	C3
	// C6 is power gating: best savings, largest wake latency.
	C6
)

// String implements fmt.Stringer.
func (c CState) String() string {
	switch c {
	case C0:
		return "C0"
	case C1:
		return "C1"
	case C3:
		return "C3"
	case C6:
		return "C6"
	default:
		return fmt.Sprintf("C?(%d)", int(c))
	}
}

// WakeLatency reports the wakeup latency in microseconds for a
// C-state, after Intel's documented E5 v4 exit latencies.
func (c CState) WakeLatency() float64 {
	switch c {
	case C0:
		return 0
	case C1:
		return 2
	case C3:
		return 40
	case C6:
		return 130
	default:
		return 0
	}
}

// IdlePowerFraction reports residual core power in a C-state as a
// fraction of active idle (C0 busy-poll baseline).
func (c CState) IdlePowerFraction() float64 {
	switch c {
	case C0:
		return 1.0
	case C1:
		return 0.55
	case C3:
		return 0.25
	case C6:
		return 0.05
	default:
		return 1.0
	}
}

// Core is one logical core's state.
type Core struct {
	ID       int
	Socket   int
	FreqGHz  float64
	State    CState
	busyFrac float64 // most recent utilization report, [0,1]
}

// Utilization reports the core's last recorded busy fraction.
func (c *Core) Utilization() float64 { return c.busyFrac }

// Topology describes a processor package layout.
type Topology struct {
	Sockets        int
	CoresPerSocket int
	// Freqs is the ascending DVFS ladder in GHz.
	Freqs []float64
}

// XeonE5v4 returns the paper testbed's topology: dual-socket
// E5-2620 v4, 8 cores each, 1.2–2.1 GHz in 100 MHz steps.
func XeonE5v4() Topology {
	freqs := make([]float64, 0, 10)
	for f := 1.2; f <= 2.1+1e-9; f += 0.1 {
		freqs = append(freqs, roundGHz(f))
	}
	return Topology{Sockets: 2, CoresPerSocket: 8, Freqs: freqs}
}

func roundGHz(f float64) float64 {
	return float64(int(f*10+0.5)) / 10
}

// Validate reports whether the topology is usable.
func (t Topology) Validate() error {
	if t.Sockets <= 0 || t.CoresPerSocket <= 0 {
		return errors.New("cpu: topology needs at least one core")
	}
	if len(t.Freqs) == 0 {
		return errors.New("cpu: topology needs a DVFS ladder")
	}
	if !sort.Float64sAreSorted(t.Freqs) {
		return errors.New("cpu: DVFS ladder must be ascending")
	}
	if t.Freqs[0] <= 0 {
		return errors.New("cpu: frequencies must be positive")
	}
	return nil
}

// Processor is the controllable CPU complex. It is safe for
// concurrent use: the NF manager adjusts knobs from the controller
// goroutine while worker goroutines query state.
type Processor struct {
	mu       sync.RWMutex
	topo     Topology
	cores    []Core
	governor Governor
}

// New builds a Processor from a topology, with every core online at
// the minimum frequency under the userspace governor.
func New(topo Topology) (*Processor, error) {
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	n := topo.Sockets * topo.CoresPerSocket
	cores := make([]Core, n)
	for i := range cores {
		cores[i] = Core{
			ID:      i,
			Socket:  i / topo.CoresPerSocket,
			FreqGHz: topo.Freqs[0],
			State:   C0,
		}
	}
	return &Processor{topo: topo, cores: cores, governor: GovernorUserspace}, nil
}

// MustNew is New that panics on error, for construction from known-
// good topologies.
func MustNew(topo Topology) *Processor {
	p, err := New(topo)
	if err != nil {
		panic(err)
	}
	return p
}

// NumCores reports the total logical core count.
func (p *Processor) NumCores() int {
	return p.topo.Sockets * p.topo.CoresPerSocket
}

// Topology returns a copy of the processor topology.
func (p *Processor) Topology() Topology {
	freqs := make([]float64, len(p.topo.Freqs))
	copy(freqs, p.topo.Freqs)
	t := p.topo
	t.Freqs = freqs
	return t
}

// FMin and FMax report the DVFS ladder bounds.
func (p *Processor) FMin() float64 { return p.topo.Freqs[0] }

// FMax reports the top of the DVFS ladder.
func (p *Processor) FMax() float64 { return p.topo.Freqs[len(p.topo.Freqs)-1] }

// SetGovernor switches the frequency policy. Performance and
// powersave immediately repin all cores.
func (p *Processor) SetGovernor(g Governor) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.governor = g
	switch g {
	case GovernorPerformance:
		for i := range p.cores {
			p.cores[i].FreqGHz = p.topo.Freqs[len(p.topo.Freqs)-1]
		}
	case GovernorPowersave:
		for i := range p.cores {
			p.cores[i].FreqGHz = p.topo.Freqs[0]
		}
	}
}

// Governor reports the active policy.
func (p *Processor) Governor() Governor {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.governor
}

// SetFreq sets a core's frequency, snapping to the nearest ladder
// step. It fails unless the userspace governor is active (matching
// cpufrequtils semantics) or the core ID is out of range.
func (p *Processor) SetFreq(core int, ghz float64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.governor != GovernorUserspace {
		return fmt.Errorf("cpu: SetFreq requires userspace governor, have %v", p.governor)
	}
	if core < 0 || core >= len(p.cores) {
		return fmt.Errorf("cpu: core %d out of range [0,%d)", core, len(p.cores))
	}
	p.cores[core].FreqGHz = p.nearestFreq(ghz)
	return nil
}

// SetAllFreqs sets every core to the nearest ladder step of ghz.
func (p *Processor) SetAllFreqs(ghz float64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.governor != GovernorUserspace {
		return fmt.Errorf("cpu: SetAllFreqs requires userspace governor, have %v", p.governor)
	}
	f := p.nearestFreq(ghz)
	for i := range p.cores {
		p.cores[i].FreqGHz = f
	}
	return nil
}

// nearestFreq snaps to the closest ladder entry. Caller holds mu.
func (p *Processor) nearestFreq(ghz float64) float64 {
	best := p.topo.Freqs[0]
	bestD := diff(ghz, best)
	for _, f := range p.topo.Freqs[1:] {
		if d := diff(ghz, f); d < bestD {
			best, bestD = f, d
		}
	}
	return best
}

func diff(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}

// StepFreq moves a core up (+1) or down (-1) one ladder step,
// returning the new frequency. Paper Algorithm 1 uses exactly this
// "nearest smaller/larger available frequency" operation.
func (p *Processor) StepFreq(core int, direction int) (float64, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if core < 0 || core >= len(p.cores) {
		return 0, fmt.Errorf("cpu: core %d out of range", core)
	}
	cur := p.cores[core].FreqGHz
	idx := 0
	for i, f := range p.topo.Freqs {
		if diff(f, cur) < 1e-9 {
			idx = i
			break
		}
	}
	switch {
	case direction > 0 && idx < len(p.topo.Freqs)-1:
		idx++
	case direction < 0 && idx > 0:
		idx--
	}
	p.cores[core].FreqGHz = p.topo.Freqs[idx]
	return p.topo.Freqs[idx], nil
}

// Freq reports a core's current frequency.
func (p *Processor) Freq(core int) (float64, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if core < 0 || core >= len(p.cores) {
		return 0, fmt.Errorf("cpu: core %d out of range", core)
	}
	return p.cores[core].FreqGHz, nil
}

// MeanFreq reports the average frequency across cores in C0/C1.
func (p *Processor) MeanFreq() float64 {
	p.mu.RLock()
	defer p.mu.RUnlock()
	var sum float64
	var n int
	for i := range p.cores {
		if p.cores[i].State <= C1 {
			sum += p.cores[i].FreqGHz
			n++
		}
	}
	if n == 0 {
		return p.topo.Freqs[0]
	}
	return sum / float64(n)
}

// SetCState moves a core into an idle state (or back to C0).
func (p *Processor) SetCState(core int, s CState) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if core < 0 || core >= len(p.cores) {
		return fmt.Errorf("cpu: core %d out of range", core)
	}
	p.cores[core].State = s
	return nil
}

// CStateOf reports a core's idle state.
func (p *Processor) CStateOf(core int) (CState, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if core < 0 || core >= len(p.cores) {
		return C0, fmt.Errorf("cpu: core %d out of range", core)
	}
	return p.cores[core].State, nil
}

// ReportUtilization records a core's busy fraction for the current
// accounting interval (values clamp to [0,1]).
func (p *Processor) ReportUtilization(core int, busy float64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if core < 0 || core >= len(p.cores) {
		return fmt.Errorf("cpu: core %d out of range", core)
	}
	if busy < 0 {
		busy = 0
	}
	if busy > 1 {
		busy = 1
	}
	p.cores[core].busyFrac = busy
	return nil
}

// Utilization reports the mean busy fraction across all cores, with
// sleeping cores contributing their residual fraction scaled by the
// C-state (a core in C6 is effectively 0).
func (p *Processor) Utilization() float64 {
	p.mu.RLock()
	defer p.mu.RUnlock()
	var sum float64
	for i := range p.cores {
		if p.cores[i].State == C0 {
			sum += p.cores[i].busyFrac
		}
	}
	return sum / float64(len(p.cores))
}

// ApplyGovernorTick runs one interval of the dynamic governors
// (ondemand/conservative), adjusting each core's frequency from its
// reported utilization. Userspace/performance/powersave are no-ops.
func (p *Processor) ApplyGovernorTick() {
	p.mu.Lock()
	defer p.mu.Unlock()
	switch p.governor {
	case GovernorOndemand:
		for i := range p.cores {
			if p.cores[i].busyFrac > 0.8 {
				p.cores[i].FreqGHz = p.topo.Freqs[len(p.topo.Freqs)-1]
			} else if p.cores[i].busyFrac < 0.3 {
				p.cores[i].FreqGHz = p.stepOf(p.cores[i].FreqGHz, -1)
			}
		}
	case GovernorConservative:
		for i := range p.cores {
			if p.cores[i].busyFrac > 0.8 {
				p.cores[i].FreqGHz = p.stepOf(p.cores[i].FreqGHz, +1)
			} else if p.cores[i].busyFrac < 0.3 {
				p.cores[i].FreqGHz = p.stepOf(p.cores[i].FreqGHz, -1)
			}
		}
	}
}

// stepOf returns the ladder entry one step from f. Caller holds mu.
func (p *Processor) stepOf(f float64, dir int) float64 {
	idx := 0
	for i, lf := range p.topo.Freqs {
		if diff(lf, f) < 1e-9 {
			idx = i
			break
		}
	}
	idx += dir
	if idx < 0 {
		idx = 0
	}
	if idx >= len(p.topo.Freqs) {
		idx = len(p.topo.Freqs) - 1
	}
	return p.topo.Freqs[idx]
}

// Snapshot returns a copy of all core states for observability.
func (p *Processor) Snapshot() []Core {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make([]Core, len(p.cores))
	copy(out, p.cores)
	return out
}
