package dma

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultValidates(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("default buffer invalid: %v", err)
	}
}

func TestValidation(t *testing.T) {
	bad := []Buffer{
		{Bytes: 0, FrameBytes: 2048},
		{Bytes: 1 << 20, DescriptorBytes: -1, FrameBytes: 2048},
		{Bytes: 1 << 20, FrameBytes: 0},
	}
	for i, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("case %d: invalid buffer accepted", i)
		}
	}
}

func TestSlots(t *testing.T) {
	b := Buffer{Bytes: 2 << 20, DescriptorBytes: 16, FrameBytes: 2048}
	want := int64(2<<20) / 2064
	if got := b.Slots(); got != want {
		t.Errorf("slots = %d, want %d", got, want)
	}
}

func TestWithBytesFloor(t *testing.T) {
	b := Default().WithBytes(1) // below one slot
	if b.Slots() < 1 {
		t.Errorf("resized buffer has %d slots, want >= 1", b.Slots())
	}
	b = Default().WithBytes(40 << 20)
	if b.Bytes != 40<<20 {
		t.Errorf("bytes = %d, want 40 MiB", b.Bytes)
	}
}

func TestAbsorbableBurst(t *testing.T) {
	b := Default()
	if got := b.AbsorbableBurst(1e6, 2e6); !math.IsInf(got, 1) {
		t.Errorf("underloaded burst = %v, want +Inf", got)
	}
	// Arrival at 2 Mpps, drain at 1 Mpps: queue grows at half the
	// arrival, so burst = 2×slots.
	got := b.AbsorbableBurst(2e6, 1e6)
	want := 2 * float64(b.Slots())
	if math.Abs(got-want) > 1e-6 {
		t.Errorf("burst = %v, want %v", got, want)
	}
}

func TestDropProbabilityRegimes(t *testing.T) {
	b := Default()
	// Deeply underloaded: essentially no drops.
	if p := b.DropProbability(1e5, 1e6); p > 1e-9 {
		t.Errorf("underloaded drop = %v, want ~0", p)
	}
	// Critically loaded: 1/(k+1).
	k := float64(b.Slots())
	if p := b.DropProbability(1e6, 1e6); math.Abs(p-1/(k+1)) > 1e-9 {
		t.Errorf("critical drop = %v, want %v", p, 1/(k+1))
	}
	// Overloaded 2×: half the packets must drop.
	if p := b.DropProbability(2e6, 1e6); math.Abs(p-0.5) > 0.01 {
		t.Errorf("2x overload drop = %v, want ~0.5", p)
	}
	// Degenerate cases.
	if p := b.DropProbability(1e6, 0); p != 1 {
		t.Errorf("zero drain drop = %v, want 1", p)
	}
	tiny := Buffer{Bytes: 1, DescriptorBytes: 16, FrameBytes: 2048}
	if p := tiny.DropProbability(1, 10); p != 1 {
		t.Errorf("zero-slot drop = %v, want 1", p)
	}
}

// Property: drop probability is in [0,1] and non-decreasing in load.
func TestDropProbabilityMonotone(t *testing.T) {
	b := Default().WithBytes(64 << 10) // small buffer so drops are visible
	f := func(a1, a2 float64) bool {
		x := math.Abs(math.Mod(a1, 3e6))
		y := math.Abs(math.Mod(a2, 3e6))
		if math.IsNaN(x) || math.IsNaN(y) {
			return true
		}
		if x > y {
			x, y = y, x
		}
		pLow := b.DropProbability(x, 1e6)
		pHigh := b.DropProbability(y, 1e6)
		inRange := pLow >= 0 && pLow <= 1 && pHigh >= 0 && pHigh <= 1
		return inRange && pHigh >= pLow-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: a bigger buffer never drops more under identical load.
func TestBiggerBufferNeverWorse(t *testing.T) {
	f := func(sizeRaw uint32, loadRaw float64) bool {
		size := int64(sizeRaw%(8<<20)) + 4096
		load := math.Abs(math.Mod(loadRaw, 3e6))
		if math.IsNaN(load) {
			return true
		}
		small := Default().WithBytes(size)
		big := Default().WithBytes(size * 2)
		return big.DropProbability(load, 1e6) <= small.DropProbability(load, 1e6)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
