// Package dma models the NIC DMA buffer (descriptor rings plus packet
// buffer pool) whose size is one of GreenNFV's five control knobs.
//
// The buffer interacts with the cache hierarchy through Intel Data
// Direct I/O (DDIO): the NIC DMAs packets straight into the DDIO
// partition of the LLC, so a buffer that fits inside that partition
// gives the NF chain warm packets, while an oversized buffer spills
// writes into the shared ways and evicts NF working state (the
// rise-then-fall of paper Figure 4). An undersized buffer, on the
// other hand, cannot absorb arrival bursts and drops packets at the
// NIC.
//
// # Paper mapping
//
// The DMA-buffer-size knob of equation 7 and paper Figure 4
// (throughput/energy vs DMA buffer size).
//
// # Concurrency and determinism
//
// Pure functions and plain value types: deterministic, RNG-free,
// safe to share read-only; mutation is owned by one node.Node.
package dma
