package dma

import (
	"errors"
	"math"
)

// Buffer describes a DMA buffer configuration.
type Buffer struct {
	// Bytes is the total buffer capacity.
	Bytes int64
	// DescriptorBytes is the per-packet descriptor overhead
	// (16 B on the X540; descriptors live in the buffer too).
	DescriptorBytes int64
	// FrameBytes is the MTU-sized slot reserved per packet
	// (2 KiB mbuf slots in DPDK for 1518 B frames).
	FrameBytes int64
}

// Default returns a buffer sized like the paper's default
// configuration (2 MB, DPDK 2 KiB mbufs, 16 B descriptors).
func Default() Buffer {
	return Buffer{Bytes: 2 << 20, DescriptorBytes: 16, FrameBytes: 2048}
}

// Validate reports whether the buffer shape is usable.
func (b Buffer) Validate() error {
	switch {
	case b.Bytes <= 0:
		return errors.New("dma: buffer must have positive capacity")
	case b.DescriptorBytes < 0:
		return errors.New("dma: descriptor size cannot be negative")
	case b.FrameBytes <= 0:
		return errors.New("dma: frame slot must be positive")
	}
	return nil
}

// Slots reports how many packet slots the buffer holds.
func (b Buffer) Slots() int64 {
	per := b.FrameBytes + b.DescriptorBytes
	if per <= 0 {
		return 0
	}
	return b.Bytes / per
}

// WithBytes returns a copy resized to n bytes (minimum one slot).
func (b Buffer) WithBytes(n int64) Buffer {
	min := b.FrameBytes + b.DescriptorBytes
	if n < min {
		n = min
	}
	b.Bytes = n
	return b
}

// AbsorbableBurst reports the largest packet burst (in packets) the
// buffer can absorb without drops while the chain drains at
// `drainPps` and the burst arrives at `arrivalPps`. For arrival
// slower than drain the burst is unbounded and +Inf is returned.
func (b Buffer) AbsorbableBurst(arrivalPps, drainPps float64) float64 {
	if arrivalPps <= drainPps {
		return math.Inf(1)
	}
	// Queue grows at (arrival − drain); slots / growth-per-packet.
	slots := float64(b.Slots())
	growthFrac := (arrivalPps - drainPps) / arrivalPps
	if growthFrac <= 0 {
		return math.Inf(1)
	}
	return slots / growthFrac
}

// DropProbability estimates the steady-state packet drop probability
// for a finite buffer of k slots under an M/M/1/k approximation with
// offered load rho = arrival/drain. This captures the paper's
// observation that tiny DMA buffers throttle throughput.
func (b Buffer) DropProbability(arrivalPps, drainPps float64) float64 {
	k := float64(b.Slots())
	if k <= 0 {
		return 1
	}
	if drainPps <= 0 {
		return 1
	}
	rho := arrivalPps / drainPps
	if rho < 0 {
		return 0
	}
	if math.Abs(rho-1) < 1e-9 {
		return 1 / (k + 1)
	}
	// P_drop = (1-rho) rho^k / (1 - rho^(k+1)), stable in log space
	// for large k. rho^(k+1) reuses the rho^k exponentiation — k runs
	// into the thousands for real buffers, and this sits on the
	// analytic model's per-evaluation hot path.
	if rho < 1 {
		pk := math.Exp(k * math.Log(rho)) // rho^k; rho in (0,1) so Log is safe
		num := (1 - rho) * pk
		den := 1 - pk*rho
		if den == 0 {
			return 0
		}
		return num / den
	}
	// rho > 1: (rho-1)rho^k/(rho^(k+1)-1) = (1-1/rho)/(1-(1/rho)^{k+1}),
	// approaching 1 − 1/rho for large k.
	inv := 1 / rho
	num := 1 - inv
	den := 1 - math.Exp(k*math.Log(inv))*inv
	if den == 0 {
		return 1
	}
	return num / den
}
