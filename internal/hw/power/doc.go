// Package power implements the server power and energy model GreenNFV
// uses in place of the Yokogawa WT210 power meter of the paper's
// testbed.
//
// The paper estimates CPU power with the non-linear model of Fan,
// Weber & Barroso ("Power Provisioning for a Warehouse-Sized
// Computer", ISCA'07), equation 4 of the GreenNFV paper:
//
//	P(u) = (Pmax − Pidle)·(2u − u^h) + Pidle
//
// where u is CPU utilization in [0,1] and h is a calibration
// parameter (the paper fits h against the physical meter; we expose it
// as a model constant). On top of that, Pmax itself depends on the
// DVFS operating point: dynamic power scales roughly with f·V² and,
// since voltage scales near-linearly with frequency on the Xeon E5 v4
// ladder, we model Pmax(f) = Pidle + (Pmax(fmax) − Pidle)·(f/fmax)^γ
// with γ ≈ 2.4 — enough curvature to reproduce the non-linear
// energy growth of paper Figure 2 without overshooting it.
//
// # Paper mapping
//
// Equation 4 and the energy halves of Figures 1–4; every EnergyJ the
// repo reports flows through this model.
//
// # Concurrency and determinism
//
// Pure math: deterministic, RNG-free, allocation-free, and safe for
// concurrent use (no mutable state). The Exp/Log strength reduction
// that replaced the hot math.Pow calls left every recorded figure
// output byte-identical (verified by diff when it landed), so the
// package sits on the byte-stable figure path.
package power
