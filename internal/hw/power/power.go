package power

import (
	"errors"
	"fmt"
	"math"
)

// Model is the calibrated server power model. All power values are
// watts; frequencies are GHz.
type Model struct {
	// PIdle is the whole-server idle power draw (paper testbed:
	// dual-socket Xeon E5-2620 v4 server, ~100 W at the wall).
	PIdle float64
	// PMax is the whole-server draw at 100% utilization at FMax.
	PMax float64
	// H is the Fan et al. calibration parameter (paper fits it with
	// the WT210 meter; 1.4 reproduces their curve family).
	H float64
	// FMin and FMax bound the DVFS ladder (1.2 and 2.1 GHz on the
	// paper's Xeon E5-2620 v4).
	FMin, FMax float64
	// FreqExp is γ in Pmax(f) scaling.
	FreqExp float64
}

// Default returns the model calibrated to the paper's testbed class
// (dual-socket Xeon E5-2620 v4, 16 cores, 64 GB).
func Default() Model {
	return Model{
		PIdle:   100,
		PMax:    330,
		H:       1.4,
		FMin:    1.2,
		FMax:    2.1,
		FreqExp: 2.4,
	}
}

// Validate reports whether the model constants are self-consistent.
func (m Model) Validate() error {
	switch {
	case m.PIdle <= 0:
		return errors.New("power: PIdle must be positive")
	case m.PMax <= m.PIdle:
		return errors.New("power: PMax must exceed PIdle")
	case m.H <= 0:
		return errors.New("power: H must be positive")
	case m.FMin <= 0 || m.FMax <= m.FMin:
		return errors.New("power: need 0 < FMin < FMax")
	case m.FreqExp <= 0:
		return errors.New("power: FreqExp must be positive")
	}
	return nil
}

// PMaxAt reports the fully-utilized server power at frequency f,
// clamping f into [FMin, FMax].
func (m Model) PMaxAt(f float64) float64 {
	f = m.ClampFreq(f)
	ratio := f / m.FMax
	return m.PIdle + (m.PMax-m.PIdle)*powUnit(ratio, m.FreqExp)
}

// Power reports instantaneous server power at utilization u (clamped
// to [0,1]) and frequency f, per equation 4 of the paper with the
// frequency-dependent Pmax.
func (m Model) Power(u, f float64) float64 {
	if u < 0 {
		u = 0
	}
	if u > 1 {
		u = 1
	}
	pmax := m.PMaxAt(f)
	return (pmax-m.PIdle)*(2*u-powUnit(u, m.H)) + m.PIdle
}

// powUnit computes x**y for x in [0,1] and y > 0 as Exp(y·Log(x)),
// roughly half the cost of math.Pow, which must also handle negative
// bases, integer exponents and subnormal corner cases. Power and
// PMaxAt sit on the per-evaluation hot path of the analytic model, so
// both of their exponentiations go through here.
func powUnit(x, y float64) float64 {
	if x == 0 || x == 1 {
		return x
	}
	return math.Exp(y * math.Log(x))
}

// ClampFreq clamps f into the DVFS range.
func (m Model) ClampFreq(f float64) float64 {
	if f < m.FMin {
		return m.FMin
	}
	if f > m.FMax {
		return m.FMax
	}
	return f
}

// CalibrateH fits the calibration parameter h so the model matches a
// measured (u, watts) observation at frequency f, reproducing the
// paper's procedure of fitting h against the WT210 meter. It searches
// h in [0.1, 4] by bisection on the monotone residual and returns an
// error if the observation is outside the representable range.
func (m Model) CalibrateH(u, f, watts float64) (float64, error) {
	if u <= 0 || u > 1 {
		return 0, fmt.Errorf("power: calibration utilization %v outside (0,1]", u)
	}
	pmax := m.PMaxAt(f)
	// P(h) = (pmax-pidle)(2u - u^h) + pidle is increasing in h for
	// u in (0,1): u^h shrinks as h grows.
	pAt := func(h float64) float64 {
		return (pmax-m.PIdle)*(2*u-math.Pow(u, h)) + m.PIdle
	}
	lo, hi := 0.1, 4.0
	if watts < pAt(lo) || watts > pAt(hi) {
		return 0, fmt.Errorf("power: observation %v W not representable (range %.1f–%.1f W)",
			watts, pAt(lo), pAt(hi))
	}
	for i := 0; i < 80; i++ {
		mid := (lo + hi) / 2
		if pAt(mid) < watts {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}

// Meter integrates power samples into energy, standing in for the
// Yokogawa WT210's accumulation mode. It is driven with explicit
// timestamps so it works identically in simulated and wall-clock time.
type Meter struct {
	joules   float64
	lastT    float64
	lastP    float64
	started  bool
	samples  int64
	peakW    float64
	sumWatts float64
}

// NewMeter returns a meter with no accumulated energy.
func NewMeter() *Meter { return &Meter{} }

// Sample records instantaneous power p (watts) at time t (seconds).
// Energy accumulates by trapezoidal integration between consecutive
// samples; out-of-order samples are ignored.
func (mt *Meter) Sample(t, p float64) {
	if p < 0 {
		p = 0
	}
	if !mt.started {
		mt.started = true
		mt.lastT, mt.lastP = t, p
		mt.samples = 1
		mt.peakW = p
		mt.sumWatts = p
		return
	}
	if t <= mt.lastT {
		return
	}
	mt.joules += (t - mt.lastT) * (p + mt.lastP) / 2
	mt.lastT, mt.lastP = t, p
	mt.samples++
	mt.sumWatts += p
	if p > mt.peakW {
		mt.peakW = p
	}
}

// Joules reports total accumulated energy.
func (mt *Meter) Joules() float64 { return mt.joules }

// MeanWatts reports the mean of the sampled powers.
func (mt *Meter) MeanWatts() float64 {
	if mt.samples == 0 {
		return 0
	}
	return mt.sumWatts / float64(mt.samples)
}

// PeakWatts reports the largest sampled power.
func (mt *Meter) PeakWatts() float64 { return mt.peakW }

// Samples reports how many samples the meter has integrated.
func (mt *Meter) Samples() int64 { return mt.samples }

// Reset clears accumulated energy and sample history.
func (mt *Meter) Reset() { *mt = Meter{} }
