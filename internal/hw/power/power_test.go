package power

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultValidates(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("default model invalid: %v", err)
	}
}

func TestValidateCatchesBadModels(t *testing.T) {
	cases := []func(*Model){
		func(m *Model) { m.PIdle = 0 },
		func(m *Model) { m.PMax = m.PIdle },
		func(m *Model) { m.H = 0 },
		func(m *Model) { m.FMin = 0 },
		func(m *Model) { m.FMax = m.FMin },
		func(m *Model) { m.FreqExp = -1 },
	}
	for i, mutate := range cases {
		m := Default()
		mutate(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: invalid model passed validation", i)
		}
	}
}

func TestPowerEndpoints(t *testing.T) {
	m := Default()
	// At u=0 power is idle regardless of frequency.
	if got := m.Power(0, m.FMax); !almostEqual(got, m.PIdle, 1e-9) {
		t.Errorf("P(0) = %v, want %v", got, m.PIdle)
	}
	// At u=1, f=fmax: 2·1 − 1^h = 1, so power is PMax.
	if got := m.Power(1, m.FMax); !almostEqual(got, m.PMax, 1e-9) {
		t.Errorf("P(1,fmax) = %v, want %v", got, m.PMax)
	}
	// Utilization clamps.
	if got := m.Power(1.7, m.FMax); !almostEqual(got, m.PMax, 1e-9) {
		t.Errorf("P(1.7) = %v, want clamp to %v", got, m.PMax)
	}
	if got := m.Power(-0.3, m.FMax); !almostEqual(got, m.PIdle, 1e-9) {
		t.Errorf("P(-0.3) = %v, want clamp to %v", got, m.PIdle)
	}
}

// Property: power is monotone non-decreasing in utilization and in
// frequency, and always within [PIdle, PMax].
func TestPowerMonotoneAndBounded(t *testing.T) {
	m := Default()
	f := func(rawU1, rawU2, rawF1, rawF2 float64) bool {
		u1 := math.Abs(math.Mod(rawU1, 1))
		u2 := math.Abs(math.Mod(rawU2, 1))
		f1 := m.FMin + math.Abs(math.Mod(rawF1, m.FMax-m.FMin))
		f2 := m.FMin + math.Abs(math.Mod(rawF2, m.FMax-m.FMin))
		if u1 > u2 {
			u1, u2 = u2, u1
		}
		if f1 > f2 {
			f1, f2 = f2, f1
		}
		pLow := m.Power(u1, f1)
		pHighU := m.Power(u2, f1)
		pHighF := m.Power(u1, f2)
		inRange := pLow >= m.PIdle-1e-9 && pLow <= m.PMax+1e-9
		return inRange && pHighU >= pLow-1e-9 && pHighF >= pLow-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPMaxAtScalesWithFrequency(t *testing.T) {
	m := Default()
	low := m.PMaxAt(m.FMin)
	high := m.PMaxAt(m.FMax)
	if low >= high {
		t.Errorf("PMaxAt not increasing: %v >= %v", low, high)
	}
	if !almostEqual(high, m.PMax, 1e-9) {
		t.Errorf("PMaxAt(fmax) = %v, want %v", high, m.PMax)
	}
	// Clamping outside the ladder.
	if m.PMaxAt(0.5) != low || m.PMaxAt(9) != high {
		t.Error("PMaxAt does not clamp to the DVFS range")
	}
}

// The Fan model is concave-above-linear: P(u) should exceed the linear
// interpolation between idle and max for interior u (that's the whole
// point of the 2u − u^h shape with h > 1).
func TestPowerNonLinearShape(t *testing.T) {
	m := Default()
	for _, u := range []float64{0.2, 0.4, 0.6, 0.8} {
		linear := m.PIdle + (m.PMax-m.PIdle)*u
		if got := m.Power(u, m.FMax); got <= linear {
			t.Errorf("P(%v) = %v not above linear %v", u, got, linear)
		}
	}
}

func TestCalibrateHRoundTrip(t *testing.T) {
	m := Default()
	trueH := 1.7
	m.H = trueH
	watts := m.Power(0.6, 1.8)
	m.H = 1.0 // forget it
	got, err := m.CalibrateH(0.6, 1.8, watts)
	if err != nil {
		t.Fatalf("CalibrateH: %v", err)
	}
	if !almostEqual(got, trueH, 1e-6) {
		t.Errorf("recovered h = %v, want %v", got, trueH)
	}
}

func TestCalibrateHRejectsImpossible(t *testing.T) {
	m := Default()
	if _, err := m.CalibrateH(0.5, 1.8, 5000); err == nil {
		t.Error("impossible observation accepted")
	}
	if _, err := m.CalibrateH(0, 1.8, 150); err == nil {
		t.Error("zero utilization accepted")
	}
}

func TestMeterConstantPower(t *testing.T) {
	mt := NewMeter()
	for i := 0; i <= 100; i++ {
		mt.Sample(float64(i)*0.1, 200) // 200 W for 10 s
	}
	if !almostEqual(mt.Joules(), 2000, 1e-9) {
		t.Errorf("energy = %v J, want 2000", mt.Joules())
	}
	if !almostEqual(mt.MeanWatts(), 200, 1e-9) {
		t.Errorf("mean = %v W, want 200", mt.MeanWatts())
	}
	if mt.PeakWatts() != 200 {
		t.Errorf("peak = %v W, want 200", mt.PeakWatts())
	}
}

func TestMeterTrapezoid(t *testing.T) {
	mt := NewMeter()
	mt.Sample(0, 100)
	mt.Sample(2, 300) // trapezoid: 2s * (100+300)/2 = 400 J
	if !almostEqual(mt.Joules(), 400, 1e-9) {
		t.Errorf("energy = %v J, want 400", mt.Joules())
	}
}

func TestMeterIgnoresOutOfOrder(t *testing.T) {
	mt := NewMeter()
	mt.Sample(1, 100)
	mt.Sample(0.5, 999) // ignored
	mt.Sample(2, 100)
	if !almostEqual(mt.Joules(), 100, 1e-9) {
		t.Errorf("energy = %v J, want 100", mt.Joules())
	}
	if mt.Samples() != 2 {
		t.Errorf("samples = %d, want 2", mt.Samples())
	}
}

func TestMeterNegativePowerClamped(t *testing.T) {
	mt := NewMeter()
	mt.Sample(0, -50)
	mt.Sample(1, -50)
	if mt.Joules() != 0 {
		t.Errorf("energy = %v, want 0 for clamped negative power", mt.Joules())
	}
}

func TestMeterReset(t *testing.T) {
	mt := NewMeter()
	mt.Sample(0, 10)
	mt.Sample(1, 10)
	mt.Reset()
	if mt.Joules() != 0 || mt.Samples() != 0 {
		t.Error("reset did not clear meter")
	}
}

func almostEqual(a, b, eps float64) bool {
	diff := math.Abs(a - b)
	if diff <= eps {
		return true
	}
	return diff <= eps*math.Max(math.Abs(a), math.Abs(b))
}
