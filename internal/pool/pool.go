package pool

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ForEach runs f(0), …, f(n-1) across a bounded worker pool of the
// given size; workers <= 0 means GOMAXPROCS, workers > n is clamped
// to n, and a single worker degenerates to an inline serial loop that
// performs no allocations. Once any index fails, no NEW indices are
// claimed (in-flight calls complete), and the reported failure is the
// one with the lowest index regardless of scheduling — the lowest
// failing index is always claimed before any failure that could stop
// the pool, so error behavior is deterministic under concurrency.
// Returns (-1, nil) on success, else the lowest failing index and its
// error. Callers communicate results positionally — worker i writes
// only slot i — which keeps outcomes identical to the serial loop at
// any worker count.
func ForEach(n, workers int, f func(i int) error) (int, error) {
	if n <= 0 {
		return -1, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := f(i); err != nil {
				return i, err
			}
		}
		return -1, nil
	}

	var (
		next     atomic.Int64
		failed   atomic.Bool
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstIdx = n
		firstErr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !failed.Load() {
				i := int(next.Add(1) - 1)
				if i >= n {
					return
				}
				if err := f(i); err != nil {
					mu.Lock()
					if i < firstIdx {
						firstIdx, firstErr = i, err
					}
					mu.Unlock()
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstIdx, firstErr
	}
	return -1, nil
}
