package pool

import (
	"sync"
	"sync/atomic"
)

// ForEach runs f(0), …, f(n-1) across a bounded worker pool of the
// given size; workers <= 1 (or n == 1) degenerates to an inline
// serial loop that performs no allocations. Every index runs even if
// another fails, and the reported failure is the one with the lowest
// index regardless of scheduling, so error behavior is deterministic
// under concurrency. Returns (-1, nil) on success, else the lowest
// failing index and its error. Callers communicate results
// positionally — worker i writes only slot i — which keeps outcomes
// identical to the serial loop at any worker count.
func ForEach(n, workers int, f func(i int) error) (int, error) {
	if n <= 0 {
		return -1, nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		firstIdx, firstErr := -1, error(nil)
		for i := 0; i < n; i++ {
			if err := f(i); err != nil && firstErr == nil {
				firstIdx, firstErr = i, err
			}
		}
		return firstIdx, firstErr
	}

	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstIdx = n
		firstErr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= n {
					return
				}
				if err := f(i); err != nil {
					mu.Lock()
					if i < firstIdx {
						firstIdx, firstErr = i, err
					}
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstIdx, firstErr
	}
	return -1, nil
}
