package pool

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

// TestForEachCoversAllIndices: every index runs exactly once, at any
// worker count including the GOMAXPROCS default and workers > n
// (meaningful under -race: the hit counters are the shared state).
func TestForEachCoversAllIndices(t *testing.T) {
	const n = 1000
	for _, workers := range []int{0, 1, 2, 8, n + 50} {
		hits := make([]atomic.Int32, n)
		idx, err := ForEach(n, workers, func(i int) error {
			hits[i].Add(1)
			return nil
		})
		if idx != -1 || err != nil {
			t.Fatalf("workers=%d: ForEach = (%d, %v), want (-1, nil)", workers, idx, err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times, want 1", workers, i, got)
			}
		}
	}
}

// TestForEachFirstErrorWins: with failures at several indices, the
// lowest failing index and its error are reported regardless of the
// worker count or scheduling.
func TestForEachFirstErrorWins(t *testing.T) {
	const n = 200
	fail := map[int]bool{37: true, 73: true, 150: true}
	for _, workers := range []int{0, 1, 4, 16} {
		idx, err := ForEach(n, workers, func(i int) error {
			if fail[i] {
				return fmt.Errorf("boom at %d", i)
			}
			return nil
		})
		if idx != 37 {
			t.Errorf("workers=%d: failing index %d, want 37", workers, idx)
		}
		if err == nil || err.Error() != "boom at 37" {
			t.Errorf("workers=%d: err %v, want boom at 37", workers, err)
		}
	}
}

// TestForEachStopsAfterError: once an index fails, no new indices are
// claimed. Serial mode stops immediately after the failure; the
// concurrent pool can overrun only by work already in flight
// (bounded by the worker count).
func TestForEachStopsAfterError(t *testing.T) {
	const n = 10000
	var calls atomic.Int32
	idx, err := ForEach(n, 1, func(i int) error {
		calls.Add(1)
		if i == 5 {
			return errors.New("stop")
		}
		return nil
	})
	if idx != 5 || err == nil {
		t.Fatalf("serial: ForEach = (%d, %v)", idx, err)
	}
	if got := calls.Load(); got != 6 {
		t.Errorf("serial: %d calls after failure at index 5, want 6", got)
	}

	const workers = 4
	calls.Store(0)
	if idx, err = ForEach(n, workers, func(i int) error {
		calls.Add(1)
		if i == 5 {
			return errors.New("stop")
		}
		return nil
	}); idx != 5 || err == nil {
		t.Fatalf("concurrent: ForEach = (%d, %v)", idx, err)
	}
	// The claim counter can run ahead of the failure by the in-flight
	// work of the other workers, but nowhere near the full range.
	if got := calls.Load(); got == int32(n) {
		t.Errorf("concurrent: all %d indices ran despite an early failure", n)
	}
}

// TestForEachClamps pins the worker normalization: zero and negative
// counts mean GOMAXPROCS, n == 0 is a successful no-op, and a single
// index runs inline.
func TestForEachClamps(t *testing.T) {
	if idx, err := ForEach(0, 8, func(int) error { return errors.New("never") }); idx != -1 || err != nil {
		t.Errorf("n=0: (%d, %v), want (-1, nil)", idx, err)
	}
	for _, workers := range []int{0, -3} {
		var ran atomic.Int32
		if _, err := ForEach(2*runtime.GOMAXPROCS(0)+4, workers, func(int) error {
			ran.Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if got, want := ran.Load(), int32(2*runtime.GOMAXPROCS(0)+4); got != want {
			t.Errorf("workers=%d: ran %d, want %d", workers, got, want)
		}
	}
}

// TestForEachSerialNoAlloc: the degenerate single-worker path must
// not allocate (it sits under zero-alloc batch surfaces).
func TestForEachSerialNoAlloc(t *testing.T) {
	f := func(int) error { return nil }
	allocs := testing.AllocsPerRun(20, func() {
		ForEach(64, 1, f)
	})
	if allocs != 0 {
		t.Errorf("serial ForEach allocates %v/op, want 0", allocs)
	}
}
