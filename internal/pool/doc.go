// Package pool is the one bounded worker pool the batch surfaces
// share: perfmodel.BatchEvaluate, env.VecEnv, the experiments figure
// drivers and the internal/sweep grid all fan independent
// index-addressed work through ForEach instead of growing private
// copies of the same scheduling and error-selection logic.
//
// # Concurrency and determinism
//
// ForEach runs fn(i) for every index across at most `workers`
// goroutines (workers <= 0 selects GOMAXPROCS, workers > n clamps to
// n) and returns the lowest failing index's error. Once a failure is
// observed no new indices are claimed — every caller treats any
// error as fatal for the whole batch, so finishing the remainder
// would be wasted work — but the selection stays deterministic:
// indices are claimed in order, so the lowest failing index is always
// claimed (and its in-flight call completed) before any failure can
// stop the pool. Index-slot output (callers write results[i]) keeps
// result order independent of worker count; that is the property the
// bit-identical batch guarantees upstream are built on. fn must be
// safe to call concurrently for distinct indices.
package pool
