// Package pool is the one bounded worker pool the batch surfaces
// share: perfmodel.BatchEvaluate, env.VecEnv, the experiments figure
// drivers and the internal/sweep grid all fan independent
// index-addressed work through ForEach instead of growing private
// copies of the same scheduling and error-selection logic.
//
// # Concurrency and determinism
//
// ForEach runs fn(i) for every index across at most `workers`
// goroutines and returns the lowest failing index's error — a
// deterministic selection regardless of scheduling, so error
// reporting does not flap between runs. Index-slot output (callers
// write results[i]) keeps result order independent of worker count;
// that is the property the bit-identical batch guarantees upstream
// are built on. fn must be safe to call concurrently for distinct
// indices.
package pool
