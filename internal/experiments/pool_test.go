package experiments

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"sync/atomic"
	"testing"
	"testing/quick"
)

// forEach must visit every index exactly once at any worker count and
// report the lowest-indexed error deterministically.
func TestForEach(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		var visits [37]atomic.Int64
		err := forEach(len(visits), workers, func(i int) error {
			visits[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range visits {
			if visits[i].Load() != 1 {
				t.Errorf("workers=%d: index %d visited %d times", workers, i, visits[i].Load())
			}
		}
		err = forEach(len(visits), workers, func(i int) error {
			if i == 5 || i == 30 {
				return errors.New("boom")
			}
			return nil
		})
		if err == nil || !strings.HasPrefix(err.Error(), "task 5: ") {
			t.Errorf("workers=%d: error %v does not report lowest failing task", workers, err)
		}
	}
	if err := forEach(0, 4, func(int) error { return errors.New("never") }); err != nil {
		t.Errorf("empty forEach errored: %v", err)
	}
}

// The strconv-based cell formatters must render byte-identically to
// the fmt verbs they replaced, or figure output would silently drift.
func TestCellFormattersMatchFmt(t *testing.T) {
	check := func(raw float64) bool {
		v := raw
		if math.IsNaN(v) {
			v = 0
		}
		return f0(v) == fmt.Sprintf("%.0f", v) &&
			f1(v) == fmt.Sprintf("%.1f", v) &&
			f2(v) == fmt.Sprintf("%.2f", v)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
	for _, v := range []float64{0, -0.0, 0.005, 1094.4999, 9.695, math.Inf(1), math.NaN()} {
		if f2(v) != fmt.Sprintf("%.2f", v) {
			t.Errorf("f2(%v) = %q, fmt gives %q", v, f2(v), fmt.Sprintf("%.2f", v))
		}
	}
	if itoa(42) != "42" || itoa(-7) != "-7" {
		t.Error("itoa broken")
	}
}
