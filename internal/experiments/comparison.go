package experiments

import (
	"fmt"

	"greennfv/internal/control"
	"greennfv/internal/sla"
)

// ComparisonRow is one bar of paper Figure 9.
type ComparisonRow struct {
	Name           string
	ThroughputGbps float64
	EnergyJ        float64
	Efficiency     float64 // Gbps per kJ
	SpeedupVsBase  float64
	EnergyVsBase   float64
}

// Fig9 reproduces the model comparison (paper Figure 9): achieved
// throughput and energy consumption for the Baseline, Heuristics,
// EE-Pstate, Q-Learning and the three GreenNFV SLA models, all under
// the same five-flow workload. It returns both the table and the raw
// rows for assertions.
func Fig9(o Options) (*Table, []ComparisonRow, error) {
	if err := o.Validate(); err != nil {
		return nil, nil, err
	}
	maxT, err := sla.NewMaxThroughput(2000)
	if err != nil {
		return nil, nil, err
	}
	minE, err := sla.NewMinEnergy(7.5)
	if err != nil {
		return nil, nil, err
	}
	ee := sla.NewEnergyEfficiency()

	controllers := []struct {
		c     control.Controller
		s     sla.SLA
		steps int
	}{
		{control.NewBaseline(), ee, 12},
		{control.NewHeuristic(), ee, 400},
		{control.NewEEPstate(), ee, 50},
		{control.NewQLearning(ee, o.QTrainSteps), ee, o.ControlSteps},
		{control.NewGreenNFV(minE, o.TrainSteps, o.Actors, o.Seed), minE, o.ControlSteps},
		{control.NewGreenNFV(maxT, o.TrainSteps, o.Actors, o.Seed), maxT, o.ControlSteps},
		{control.NewGreenNFV(ee, o.TrainSteps, o.Actors, o.Seed), ee, o.ControlSteps},
	}

	// The controller pipelines share nothing mutable — each Prepare
	// trains against its own environments and seeds — so they run
	// concurrently over the bounded pool; rows[i] keeps the bar order
	// of the serial loop and the numbers are identical to it.
	rows := make([]ComparisonRow, len(controllers))
	err = forEach(len(controllers), batchWorkers(), func(i int) error {
		entry := controllers[i]
		factory := Factory(entry.s)
		if err := entry.c.Prepare(factory); err != nil {
			return fmt.Errorf("prepare %s: %w", entry.c.Name(), err)
		}
		settle := entry.steps / 4
		if settle < 1 {
			settle = 1
		}
		tput, energy, _, err := control.Run(entry.c, factory, o.Seed+1000, entry.steps, settle)
		if err != nil {
			return fmt.Errorf("run %s: %w", entry.c.Name(), err)
		}
		rows[i] = ComparisonRow{
			Name:           entry.c.Name(),
			ThroughputGbps: tput,
			EnergyJ:        energy,
			Efficiency:     tput / (energy / 1000),
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	base := rows[0]
	t := &Table{
		ID:    "fig9",
		Title: "Model comparison: throughput and energy (paper Figure 9)",
		Columns: []string{"model", "Gbps", "Energy J", "Gbps/kJ",
			"speedup", "energy vs base"},
	}
	for i := range rows {
		rows[i].SpeedupVsBase = rows[i].ThroughputGbps / base.ThroughputGbps
		rows[i].EnergyVsBase = rows[i].EnergyJ / base.EnergyJ
		t.AddRow(rows[i].Name, f2(rows[i].ThroughputGbps), f0(rows[i].EnergyJ),
			f2(rows[i].Efficiency),
			fmt.Sprintf("%.2fx", rows[i].SpeedupVsBase),
			fmt.Sprintf("%.0f%%", rows[i].EnergyVsBase*100))
	}
	return t, rows, nil
}
