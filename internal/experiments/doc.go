// Package experiments reproduces every figure of the paper's
// evaluation (there are no numbered tables): the §3 micro-benchmarks
// (Figures 1–4), the SLA training curves (Figures 6–8), the
// controller comparison (Figure 9), the fixed-SLA time series
// (Figure 10) and the amortized energy-saving curve (Figure 11),
// plus ablation studies beyond the paper. Each driver returns the
// rows/series the paper plots; renderers emit aligned ASCII tables
// and CSV.
//
// # Concurrency and determinism
//
// The whole suite is byte-diffable: every driver is deterministic
// given its seeds, map-ordered outputs are sorted before rendering,
// and the cell formatter's integer fast path is byte-identical to
// the fmt %.Nf it replaced. Parallelism never changes bytes — the
// Figure 1–4 grids run through perfmodel.BatchEvaluate and the
// Figure 9/10/11 controller pipelines through env.VecEnv.Do/forEach
// bounded pools, both order-preserving and bit-identical at any
// worker count. Training-curve figures (6–8) use the deterministic
// round-robin Ape-X mode, never the parallel or remote modes. The
// figure-output byte-diff against the previous PR is the
// regression gate every perf change must pass.
package experiments
