package experiments

import (
	"strings"
	"testing"
)

// tinyOptions keeps cluster training short enough for unit tests.
func tinyOptions() Options {
	return Options{TrainSteps: 60, QTrainSteps: 100, Actors: 2, ControlSteps: 8, Seed: 17}
}

// TestFigClusterDeterministic pins the acceptance criterion: the
// rendered table must be byte-identical across runs.
func TestFigClusterDeterministic(t *testing.T) {
	t1, rows1, err := FigCluster(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	t2, _, err := FigCluster(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	var b1, b2 strings.Builder
	if err := t1.Render(&b1); err != nil {
		t.Fatal(err)
	}
	if err := t2.Render(&b2); err != nil {
		t.Fatal(err)
	}
	a, b := b1.String(), b2.String()
	if a != b {
		t.Fatalf("FigCluster not byte-identical across runs:\n%s\n---\n%s", a, b)
	}
	if len(rows1) != 9 {
		t.Fatalf("rows = %d, want 9 (3 sizes × 3 policies)", len(rows1))
	}
	for _, r := range rows1 {
		if r.ThroughputGbps <= 0 || r.EnergyJ <= 0 {
			t.Errorf("%d-node %s: non-positive cell %+v", r.Nodes, r.Policy, r)
		}
		if r.NodesUsed < 1 || r.NodesUsed > r.Nodes {
			t.Errorf("%d-node %s: nodes used %d out of range", r.Nodes, r.Policy, r.NodesUsed)
		}
	}
	for _, col := range []string{"nodes", "placement", "Gbps", "Energy J"} {
		if !strings.Contains(a, col) {
			t.Errorf("rendered table missing column %q", col)
		}
	}
}

// TestClusterAnalyticBaselinesConsolidate: with more nodes than the
// workload needs, the analytic policies must not scatter chains onto
// every host (idle-power discipline), and the relaxation must respect
// its own bound.
func TestClusterAnalyticBaselinesConsolidate(t *testing.T) {
	for _, pol := range clusterPolicies()[1:] {
		factory := clusterFactory(8, pol.pol)
		e, err := factory(17)
		if err != nil {
			t.Fatalf("%s: %v", pol.name, err)
		}
		used := map[int]bool{}
		for _, n := range e.Assignment() {
			used[n] = true
		}
		if len(used) >= 8 {
			t.Errorf("%s scattered 6 chains across all 8 nodes", pol.name)
		}
	}
}
