package experiments

import (
	"fmt"
	"sort"

	"greennfv/internal/perfmodel"
	"greennfv/internal/placement"
	"greennfv/internal/sim"
	"greennfv/internal/traffic"
)

// ValidationDES cross-validates the analytic performance model
// against the independent discrete-event simulator across a load
// sweep: both consume the same per-NF service times, but the DES
// computes throughput from explicit tandem-queue dynamics. Agreement
// on achieved throughput (and the DES's latency percentiles, which
// the analytic model cannot produce) supports the substitution of
// the paper's physical testbed by the model.
func ValidationDES() (*Table, error) {
	model := perfmodel.Default()
	chain := perfmodel.StandardChain()
	knobs := perfmodel.DefaultKnobs(3)
	for i := range knobs {
		knobs[i].Batch = 64
		knobs[i].DMABytes = 2 << 20
	}
	t := &Table{
		ID:      "validation-des",
		Title:   "Analytic model vs discrete-event simulation (same service times)",
		Columns: []string{"offered Mpps", "analytic Gbps", "DES Gbps", "delta %", "DES p50 us", "DES p99 us"},
	}
	for _, offered := range []float64{0.3e6, 0.8e6, 1.4e6, 2.2e6, 3.0e6} {
		tr := perfmodel.Traffic{OfferedPPS: offered, FrameBytes: 512, Burstiness: 1}
		analytic, err := model.Evaluate(chain, knobs, tr, perfmodel.EvalOptions{})
		if err != nil {
			return nil, err
		}
		cfg, err := sim.FromModel(analytic, knobs, 4096, 0.05, 11)
		if err != nil {
			return nil, err
		}
		cfg.LatencyCapNs = 1e7
		arr, err := traffic.NewCBR(offered)
		if err != nil {
			return nil, err
		}
		des, err := sim.Run(cfg, arr)
		if err != nil {
			return nil, err
		}
		desGbps := traffic.ThroughputBps(des.ThroughputPPS, tr.FrameBytes) / 1e9
		delta := 0.0
		if analytic.ThroughputGbps > 0 {
			delta = (desGbps - analytic.ThroughputGbps) / analytic.ThroughputGbps * 100
		}
		t.AddRow(
			fmt.Sprintf("%.1f", offered/1e6),
			f2(analytic.ThroughputGbps), f2(desGbps),
			fmt.Sprintf("%+.1f", delta),
			f1(des.Latency.Quantile(0.5)/1000),
			f1(des.Latency.Quantile(0.99)/1000),
		)
	}
	return t, nil
}

// ExpConsolidation quantifies the §2 consolidation claim: packing
// chains onto fewer nodes (respecting CPU and LLC capacity, honoring
// flow-path affinity) saves the idle power of the freed nodes and
// keeps shared-flow packets on one LLC.
func ExpConsolidation() (*Table, error) {
	prob := placement.Problem{
		Node:     placement.NodeCapacity{Cores: 16, LLCBytes: 18 << 20},
		MaxNodes: 6,
		Chains: []placement.ChainDemand{
			{Name: "edge-fw", Cores: 4, LLCBytes: 3 << 20, FlowPPS: 1.5e6},
			{Name: "edge-nat", Cores: 3, LLCBytes: 2 << 20, FlowPPS: 1.5e6},
			{Name: "core-ids", Cores: 6, LLCBytes: 8 << 20, FlowPPS: 0.8e6},
			{Name: "core-dpi", Cores: 5, LLCBytes: 6 << 20, FlowPPS: 0.8e6},
			{Name: "cdn-cache", Cores: 4, LLCBytes: 4 << 20, FlowPPS: 1.1e6},
			{Name: "cdn-tls", Cores: 4, LLCBytes: 3 << 20, FlowPPS: 1.1e6},
		},
		Affinities: []placement.Affinity{
			{A: "edge-fw", B: "edge-nat", PPS: 1.5e6},
			{A: "core-ids", B: "core-dpi", PPS: 0.8e6},
			{A: "cdn-cache", B: "cdn-tls", PPS: 1.1e6},
		},
	}
	sol, err := placement.Solve(prob)
	if err != nil {
		return nil, err
	}
	model := perfmodel.Default()
	idleW := model.Power.PIdle
	naive := len(prob.Chains) // one chain per node, the unconsolidated layout
	savedW := float64(naive-sol.NodesUsed) * idleW

	t := &Table{
		ID:      "consolidation",
		Title:   "Chain consolidation: nodes, cross-node traffic, idle-power saving",
		Columns: []string{"layout", "nodes", "cross-node pps", "idle W saved"},
	}
	t.AddRow("one chain per node", fmt.Sprintf("%d", naive), "0", "0")
	t.AddRow("consolidated",
		fmt.Sprintf("%d", sol.NodesUsed),
		f0(sol.CrossPPS),
		f0(savedW))
	// Assignment is a map; sorted emission keeps the whole experiment
	// suite byte-diffable run to run.
	names := make([]string, 0, len(sol.Assignment))
	for name := range sol.Assignment {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		t.AddRow("  "+name, fmt.Sprintf("node %d", sol.Assignment[name]), "", "")
	}
	return t, nil
}
