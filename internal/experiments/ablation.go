package experiments

import (
	"greennfv/internal/env"
	"greennfv/internal/perfmodel"
	"greennfv/internal/rl/apex"
	"greennfv/internal/rl/ddpg"
	"greennfv/internal/rl/replay"
	"greennfv/internal/sla"
)

// The ablations quantify the design choices DESIGN.md calls out,
// beyond the paper's own evaluation: prioritized vs uniform replay,
// Ape-X actor-count scaling, per-knob contribution, and the paper's
// hard-constraint reward vs penalty shaping.

// trainEE runs one Ape-X training with the given overrides and
// returns the mean efficiency of the last quarter of snapshots.
func trainEE(o Options, actors int, prioritized bool, frozen [env.KnobsPerNF]bool, s sla.SLA) (float64, *apex.Trainer, error) {
	cfg := apex.DefaultTrainerConfig(o.TrainSteps)
	cfg.Actors = actors
	cfg.EnvFactory = func(actorID int) (*env.Env, error) {
		return env.New(env.Config{
			Model:       perfmodel.Default(),
			Chain:       perfmodel.StandardChain(),
			Bounds:      perfmodel.DefaultBounds(),
			SLA:         s,
			Flows:       env.StandardWorkload(),
			LoadJitter:  0.03,
			FrozenKnobs: frozen,
			Seed:        o.Seed + int64(actorID)*131,
		})
	}
	cfg.AgentConfig = ddpg.DefaultConfig(0, 0)
	cfg.AgentConfig.Seed = o.Seed
	cfg.AgentConfig.Prioritized = prioritized
	trainer, err := apex.NewTrainer(cfg)
	if err != nil {
		return 0, nil, err
	}
	if err := trainer.Run(); err != nil {
		return 0, nil, err
	}
	snaps := trainer.Snapshots
	if len(snaps) == 0 {
		return 0, trainer, nil
	}
	start := len(snaps) * 3 / 4
	var sum float64
	for _, sn := range snaps[start:] {
		sum += sn.Efficiency
	}
	return sum / float64(len(snaps)-start), trainer, nil
}

// AblationPER compares prioritized vs uniform replay at equal budget
// (the Ape-X design claim), holding everything else fixed: both arms
// train one DDPG agent through the identical single-actor loop.
func AblationPER(o Options) (*Table, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	// The two arms are independent trainings; run them concurrently.
	var per, uni float64
	err := forEach(2, batchWorkers(), func(i int) error {
		var err error
		if i == 0 {
			per, err = trainEESingle(o, true)
		} else {
			uni, err = trainEESingle(o, false)
		}
		return err
	})
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "ablation-per",
		Title:   "Prioritized vs uniform replay (final-quarter mean efficiency, Gbps/kJ)",
		Columns: []string{"replay", "efficiency"},
	}
	t.AddRow("prioritized", f2(per))
	t.AddRow("uniform", f2(uni))
	return t, nil
}

// trainEESingle is one single-agent DDPG training arm with the
// replay variant selected by prioritized.
func trainEESingle(o Options, prioritized bool) (float64, error) {
	e, err := env.New(env.Config{
		Model:      perfmodel.Default(),
		Chain:      perfmodel.StandardChain(),
		Bounds:     perfmodel.DefaultBounds(),
		SLA:        sla.NewEnergyEfficiency(),
		Flows:      env.StandardWorkload(),
		LoadJitter: 0.03,
		Seed:       o.Seed,
	})
	if err != nil {
		return 0, err
	}
	cfg := ddpg.DefaultConfig(e.StateDim(), e.ActionDim())
	cfg.Prioritized = prioritized
	cfg.Seed = o.Seed
	agent, err := ddpg.New(cfg)
	if err != nil {
		return 0, err
	}
	state := e.Reset(o.Seed)
	var lastEffs []float64
	for i := 0; i < o.TrainSteps; i++ {
		action, err := agent.Act(state, true)
		if err != nil {
			return 0, err
		}
		next, reward, info, err := e.Step(action)
		if err != nil {
			return 0, err
		}
		agent.Observe(replay.Transition{
			State:     append([]float64(nil), state...),
			Action:    action,
			Reward:    reward,
			NextState: append([]float64(nil), next...),
		})
		agent.Learn()
		state = next
		if i >= o.TrainSteps*3/4 {
			lastEffs = append(lastEffs, info.Efficiency)
		}
	}
	var sum float64
	for _, v := range lastEffs {
		sum += v
	}
	if len(lastEffs) == 0 {
		return 0, nil
	}
	return sum / float64(len(lastEffs)), nil
}

// AblationActors sweeps the Ape-X actor count at a fixed total step
// budget.
func AblationActors(o Options) (*Table, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "ablation-actors",
		Title:   "Ape-X actor-count scaling (fixed total steps)",
		Columns: []string{"actors", "efficiency"},
	}
	counts := []int{1, 2, 4, 8}
	effs := make([]float64, len(counts))
	err := forEach(len(counts), batchWorkers(), func(i int) error {
		eff, _, err := trainEE(o, counts[i], true, [env.KnobsPerNF]bool{}, sla.NewEnergyEfficiency())
		effs[i] = eff
		return err
	})
	if err != nil {
		return nil, err
	}
	for i, actors := range counts {
		t.AddRow(itoa(actors), f2(effs[i]))
	}
	return t, nil
}

// AblationKnobs freezes one knob at a time at platform defaults and
// retrains, quantifying each knob's contribution.
func AblationKnobs(o Options) (*Table, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	names := []string{"CPU share", "frequency", "LLC", "DMA", "batch"}
	t := &Table{
		ID:      "ablation-knobs",
		Title:   "Knob contribution: efficiency with each knob frozen at defaults",
		Columns: []string{"frozen knob", "efficiency", "vs all-tunable"},
	}
	// Arm 0 is the all-tunable reference; arms 1..5 freeze one knob
	// each. All six trainings are independent, so they share the pool.
	effs := make([]float64, env.KnobsPerNF+1)
	err := forEach(len(effs), batchWorkers(), func(i int) error {
		var frozen [env.KnobsPerNF]bool
		if i > 0 {
			frozen[i-1] = true
		}
		eff, _, err := trainEE(o, o.Actors, true, frozen, sla.NewEnergyEfficiency())
		effs[i] = eff
		return err
	})
	if err != nil {
		return nil, err
	}
	full := effs[0]
	t.AddRow("(none)", f2(full), "100%")
	for i := 0; i < env.KnobsPerNF; i++ {
		t.AddRow(names[i], f2(effs[i+1]), f0(effs[i+1]/full*100)+"%")
	}
	return t, nil
}

// AblationReward compares the paper's hard-constraint reward (zero
// outside the constraint) against penalty shaping for the
// MaxThroughput SLA, reporting throughput and violation rate.
func AblationReward(o Options) (*Table, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	hard, err := sla.NewMaxThroughput(2000)
	if err != nil {
		return nil, err
	}
	shaped := hard
	shaped.PenaltyWeight = 2.0

	t := &Table{
		ID:      "ablation-reward",
		Title:   "Hard-constraint (paper) vs penalty-shaped reward, MaxT SLA E<=2000J",
		Columns: []string{"reward", "Gbps", "Energy J", "violation rate"},
	}
	entries := []struct {
		name string
		s    sla.SLA
	}{{"hard (paper)", hard}, {"penalty-shaped", shaped}}
	type armOut struct {
		tput, energy, violation float64
	}
	outs := make([]armOut, len(entries))
	err = forEach(len(entries), batchWorkers(), func(i int) error {
		_, trainer, err := trainEE(o, o.Actors, true, [env.KnobsPerNF]bool{}, entries[i].s)
		if err != nil {
			return err
		}
		snaps := trainer.Snapshots
		tracker := sla.NewTracker(entries[i].s)
		var tput, energy float64
		n := 0
		for _, sn := range snaps[len(snaps)*3/4:] {
			tracker.Observe(sn.ThroughputGbps, sn.EnergyJ)
			tput += sn.ThroughputGbps
			energy += sn.EnergyJ
			n++
		}
		if n == 0 {
			n = 1
		}
		outs[i] = armOut{tput / float64(n), energy / float64(n), tracker.ViolationRate()}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, entry := range entries {
		t.AddRow(entry.name, f2(outs[i].tput), f0(outs[i].energy), f2(outs[i].violation))
	}
	return t, nil
}
