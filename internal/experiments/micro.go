package experiments

import (
	"fmt"

	"greennfv/internal/perfmodel"
)

// Fig1 reproduces the LLC-allocation micro-benchmark (paper Figure
// 1): two co-located chains — C1 cache-hungry at 13 Mpps, C2 light at
// 1 Mpps — under four LLC splits, reporting miss rate, achieved
// throughput and energy per mega-packet for each.
func Fig1() (*Table, error) {
	cfg := perfmodel.Default()
	heavy := perfmodel.HeavyChain()
	light := perfmodel.LightChain()
	t := &Table{
		ID:    "fig1",
		Title: "LLC allocation micro-benchmark (C1=13Mpps heavy, C2=1Mpps light)",
		Columns: []string{"split", "C1 miss/s", "C2 miss/s", "C1 Gbps", "C2 Gbps",
			"C1 J/MP", "C2 J/MP"},
	}
	for _, split := range []float64{0.9, 0.7, 0.4, 0.2} {
		kH := perfmodel.NFKnobs{CPUShare: 4, FreqGHz: 2.1, LLCFraction: split / 3,
			DMABytes: 2 << 20, Batch: 64}
		rH, err := cfg.EvaluateUniform(heavy, kH,
			perfmodel.Traffic{OfferedPPS: 13e6, FrameBytes: 64, Burstiness: 1},
			perfmodel.EvalOptions{BusyPoll: true, NoSleep: true})
		if err != nil {
			return nil, err
		}
		kL := perfmodel.NFKnobs{CPUShare: 1, FreqGHz: 2.1, LLCFraction: (1 - split) / 2,
			DMABytes: 2 << 20, Batch: 64}
		rL, err := cfg.EvaluateUniform(light, kL,
			perfmodel.Traffic{OfferedPPS: 1e6, FrameBytes: 64, Burstiness: 1},
			perfmodel.EvalOptions{BusyPoll: true, NoSleep: true})
		if err != nil {
			return nil, err
		}
		t.AddRow(
			fmt.Sprintf("%.0f%%+%.0f%%", split*100, (1-split)*100),
			f0(rH.MissesPerSecond/1e3), f0(rL.MissesPerSecond/1e3),
			f2(rH.ThroughputGbps), f2(rL.ThroughputGbps),
			f0(rH.EnergyPerMPkt), f0(rL.EnergyPerMPkt),
		)
	}
	return t, nil
}

// Fig2 reproduces the CPU-frequency micro-benchmark (paper Figure 2):
// a 3-NF chain fed 1518 B line-rate traffic swept across the DVFS
// ladder.
func Fig2() (*Table, error) {
	cfg := perfmodel.Default()
	chain := perfmodel.HeavyChain()
	t := &Table{
		ID:      "fig2",
		Title:   "CPU frequency micro-benchmark (3-NF chain, 1518B line rate)",
		Columns: []string{"GHz", "Gbps", "Energy J"},
	}
	tr := perfmodel.Traffic{OfferedPPS: 812743, FrameBytes: 1518, Burstiness: 1}
	for f := 1.2; f <= 2.1+1e-9; f += 0.1 {
		k := perfmodel.NFKnobs{CPUShare: 2, FreqGHz: f, LLCFraction: 0.15,
			DMABytes: 2 << 20, Batch: 32}
		r, err := cfg.EvaluateUniform(chain, k, tr,
			perfmodel.EvalOptions{BusyPoll: true, NoSleep: true})
		if err != nil {
			return nil, err
		}
		t.AddRow(f1(f), f2(r.ThroughputGbps), f0(r.EnergyJoules))
	}
	return t, nil
}

// Fig3 reproduces the batch-size micro-benchmark (paper Figure 3):
// throughput, energy and LLC misses across burst sizes.
func Fig3() (*Table, error) {
	cfg := perfmodel.Default()
	chain := perfmodel.StandardChain()
	t := &Table{
		ID:      "fig3",
		Title:   "Batch size micro-benchmark (256B, 3 Mpps offered)",
		Columns: []string{"batch", "Gbps", "Energy kJ", "Misses x1e4/s"},
	}
	tr := perfmodel.Traffic{OfferedPPS: 3e6, FrameBytes: 256, Burstiness: 1}
	for _, b := range []int{1, 25, 50, 100, 150, 200, 250, 256} {
		k := perfmodel.NFKnobs{CPUShare: 1, FreqGHz: 2.1, LLCFraction: 0.06,
			DMABytes: 2 << 20, Batch: b}
		r, err := cfg.EvaluateUniform(chain, k, tr,
			perfmodel.EvalOptions{BusyPoll: true, NoSleep: true})
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", b), f2(r.ThroughputGbps),
			f2(r.EnergyJoules/1000), f0(r.MissesPerSecond/1e4))
	}
	return t, nil
}

// Fig4 reproduces the DMA-buffer micro-benchmark (paper Figure 4):
// throughput and energy per mega-packet across buffer sizes for 64 B
// and 1518 B frames under bursty line-rate load.
func Fig4() (*Table, error) {
	cfg := perfmodel.Default()
	chain := perfmodel.LightChain()
	t := &Table{
		ID:      "fig4",
		Title:   "DMA buffer micro-benchmark (bursty line-rate load)",
		Columns: []string{"MB", "Gbps 64B", "Gbps 1518B", "J/MP 64B", "J/MP 1518B"},
	}
	run := func(frame int, offered float64, dma int64) (perfmodel.Result, error) {
		k := perfmodel.NFKnobs{CPUShare: 1, FreqGHz: 2.1, LLCFraction: 0.25,
			DMABytes: dma, Batch: 64}
		return cfg.EvaluateUniform(chain, k,
			perfmodel.Traffic{OfferedPPS: offered, FrameBytes: frame, Burstiness: 128},
			perfmodel.EvalOptions{BusyPoll: true, NoSleep: true})
	}
	for _, mb := range []int64{1, 2, 4, 8, 12, 16, 24, 32, 40} {
		r64, err := run(64, 3.0e6, mb<<20)
		if err != nil {
			return nil, err
		}
		r1518, err := run(1518, 700e3, mb<<20)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", mb),
			f2(r64.ThroughputGbps), f2(r1518.ThroughputGbps),
			f0(r64.EnergyPerMPkt), f0(r1518.EnergyPerMPkt))
	}
	return t, nil
}
