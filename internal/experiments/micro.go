package experiments

import (
	"runtime"

	"greennfv/internal/perfmodel"
)

// The §3 micro-benchmarks are pure knob-grid sweeps over the analytic
// model, so all four figures build their grid as a flat job list and
// fan it through perfmodel.BatchEvaluate: results land at the same
// index as their job, which keeps row order — and therefore the
// rendered figure — identical to the serial loops these replaced,
// while the sweep itself parallelizes across cores.

// batchWorkers is the bounded parallelism of the figure sweeps.
func batchWorkers() int { return runtime.GOMAXPROCS(0) }

// uniformJob builds one grid point applying knob set k to every NF of
// the chain, appending the per-NF copies to *flat (the shared backing
// array for the whole grid) and returning the job.
func uniformJob(chain perfmodel.ChainSpec, k perfmodel.NFKnobs, tr perfmodel.Traffic,
	opt perfmodel.EvalOptions, flat *[]perfmodel.NFKnobs) perfmodel.BatchJob {
	base := len(*flat)
	for range chain.NFs {
		*flat = append(*flat, k)
	}
	return perfmodel.BatchJob{Chain: chain, Knobs: (*flat)[base:len(*flat):len(*flat)],
		Traffic: tr, Options: opt}
}

// Fig1 reproduces the LLC-allocation micro-benchmark (paper Figure
// 1): two co-located chains — C1 cache-hungry at 13 Mpps, C2 light at
// 1 Mpps — under four LLC splits, reporting miss rate, achieved
// throughput and energy per mega-packet for each.
func Fig1() (*Table, error) {
	cfg := perfmodel.Default()
	heavy := perfmodel.HeavyChain()
	light := perfmodel.LightChain()
	t := &Table{
		ID:    "fig1",
		Title: "LLC allocation micro-benchmark (C1=13Mpps heavy, C2=1Mpps light)",
		Columns: []string{"split", "C1 miss/s", "C2 miss/s", "C1 Gbps", "C2 Gbps",
			"C1 J/MP", "C2 J/MP"},
	}
	splits := []float64{0.9, 0.7, 0.4, 0.2}
	opt := perfmodel.EvalOptions{BusyPoll: true, NoSleep: true}
	flat := make([]perfmodel.NFKnobs, 0, len(splits)*(len(heavy.NFs)+len(light.NFs)))
	jobs := make([]perfmodel.BatchJob, 0, 2*len(splits))
	for _, split := range splits {
		kH := perfmodel.NFKnobs{CPUShare: 4, FreqGHz: 2.1, LLCFraction: split / 3,
			DMABytes: 2 << 20, Batch: 64}
		jobs = append(jobs, uniformJob(heavy, kH,
			perfmodel.Traffic{OfferedPPS: 13e6, FrameBytes: 64, Burstiness: 1}, opt, &flat))
		kL := perfmodel.NFKnobs{CPUShare: 1, FreqGHz: 2.1, LLCFraction: (1 - split) / 2,
			DMABytes: 2 << 20, Batch: 64}
		jobs = append(jobs, uniformJob(light, kL,
			perfmodel.Traffic{OfferedPPS: 1e6, FrameBytes: 64, Burstiness: 1}, opt, &flat))
	}
	results := perfmodel.PreallocResults(jobs)
	if err := cfg.BatchEvaluate(jobs, results, batchWorkers()); err != nil {
		return nil, err
	}
	for i, split := range splits {
		rH, rL := &results[2*i], &results[2*i+1]
		t.AddRow(
			f0(split*100)+"%+"+f0((1-split)*100)+"%",
			f0(rH.MissesPerSecond/1e3), f0(rL.MissesPerSecond/1e3),
			f2(rH.ThroughputGbps), f2(rL.ThroughputGbps),
			f0(rH.EnergyPerMPkt), f0(rL.EnergyPerMPkt),
		)
	}
	return t, nil
}

// Fig2 reproduces the CPU-frequency micro-benchmark (paper Figure 2):
// a 3-NF chain fed 1518 B line-rate traffic swept across the DVFS
// ladder.
func Fig2() (*Table, error) {
	cfg := perfmodel.Default()
	chain := perfmodel.HeavyChain()
	t := &Table{
		ID:      "fig2",
		Title:   "CPU frequency micro-benchmark (3-NF chain, 1518B line rate)",
		Columns: []string{"GHz", "Gbps", "Energy J"},
	}
	tr := perfmodel.Traffic{OfferedPPS: 812743, FrameBytes: 1518, Burstiness: 1}
	opt := perfmodel.EvalOptions{BusyPoll: true, NoSleep: true}
	var freqs []float64
	for f := 1.2; f <= 2.1+1e-9; f += 0.1 {
		freqs = append(freqs, f)
	}
	flat := make([]perfmodel.NFKnobs, 0, len(freqs)*len(chain.NFs))
	jobs := make([]perfmodel.BatchJob, 0, len(freqs))
	for _, f := range freqs {
		k := perfmodel.NFKnobs{CPUShare: 2, FreqGHz: f, LLCFraction: 0.15,
			DMABytes: 2 << 20, Batch: 32}
		jobs = append(jobs, uniformJob(chain, k, tr, opt, &flat))
	}
	results := perfmodel.PreallocResults(jobs)
	if err := cfg.BatchEvaluate(jobs, results, batchWorkers()); err != nil {
		return nil, err
	}
	for i, f := range freqs {
		t.AddRow(f1(f), f2(results[i].ThroughputGbps), f0(results[i].EnergyJoules))
	}
	return t, nil
}

// Fig3 reproduces the batch-size micro-benchmark (paper Figure 3):
// throughput, energy and LLC misses across burst sizes.
func Fig3() (*Table, error) {
	cfg := perfmodel.Default()
	chain := perfmodel.StandardChain()
	t := &Table{
		ID:      "fig3",
		Title:   "Batch size micro-benchmark (256B, 3 Mpps offered)",
		Columns: []string{"batch", "Gbps", "Energy kJ", "Misses x1e4/s"},
	}
	tr := perfmodel.Traffic{OfferedPPS: 3e6, FrameBytes: 256, Burstiness: 1}
	opt := perfmodel.EvalOptions{BusyPoll: true, NoSleep: true}
	batches := []int{1, 25, 50, 100, 150, 200, 250, 256}
	flat := make([]perfmodel.NFKnobs, 0, len(batches)*len(chain.NFs))
	jobs := make([]perfmodel.BatchJob, 0, len(batches))
	for _, b := range batches {
		k := perfmodel.NFKnobs{CPUShare: 1, FreqGHz: 2.1, LLCFraction: 0.06,
			DMABytes: 2 << 20, Batch: b}
		jobs = append(jobs, uniformJob(chain, k, tr, opt, &flat))
	}
	results := perfmodel.PreallocResults(jobs)
	if err := cfg.BatchEvaluate(jobs, results, batchWorkers()); err != nil {
		return nil, err
	}
	for i, b := range batches {
		t.AddRow(itoa(b), f2(results[i].ThroughputGbps),
			f2(results[i].EnergyJoules/1000), f0(results[i].MissesPerSecond/1e4))
	}
	return t, nil
}

// Fig4 reproduces the DMA-buffer micro-benchmark (paper Figure 4):
// throughput and energy per mega-packet across buffer sizes for 64 B
// and 1518 B frames under bursty line-rate load.
func Fig4() (*Table, error) {
	cfg := perfmodel.Default()
	chain := perfmodel.LightChain()
	t := &Table{
		ID:      "fig4",
		Title:   "DMA buffer micro-benchmark (bursty line-rate load)",
		Columns: []string{"MB", "Gbps 64B", "Gbps 1518B", "J/MP 64B", "J/MP 1518B"},
	}
	opt := perfmodel.EvalOptions{BusyPoll: true, NoSleep: true}
	mbs := []int64{1, 2, 4, 8, 12, 16, 24, 32, 40}
	flat := make([]perfmodel.NFKnobs, 0, 2*len(mbs)*len(chain.NFs))
	jobs := make([]perfmodel.BatchJob, 0, 2*len(mbs))
	for _, mb := range mbs {
		for _, fr := range []struct {
			frame   int
			offered float64
		}{{64, 3.0e6}, {1518, 700e3}} {
			k := perfmodel.NFKnobs{CPUShare: 1, FreqGHz: 2.1, LLCFraction: 0.25,
				DMABytes: mb << 20, Batch: 64}
			jobs = append(jobs, uniformJob(chain, k,
				perfmodel.Traffic{OfferedPPS: fr.offered, FrameBytes: fr.frame, Burstiness: 128},
				opt, &flat))
		}
	}
	results := perfmodel.PreallocResults(jobs)
	if err := cfg.BatchEvaluate(jobs, results, batchWorkers()); err != nil {
		return nil, err
	}
	for i, mb := range mbs {
		r64, r1518 := &results[2*i], &results[2*i+1]
		t.AddRow(itoa(int(mb)),
			f2(r64.ThroughputGbps), f2(r1518.ThroughputGbps),
			f0(r64.EnergyPerMPkt), f0(r1518.EnergyPerMPkt))
	}
	return t, nil
}
