package experiments

import (
	"fmt"

	"greennfv/internal/control"
	"greennfv/internal/rl/apex"
	"greennfv/internal/sla"
)

// trainCurve trains one GreenNFV SLA model and tabulates its training
// progress — the series the paper plots in Figures 6–8: throughput,
// energy, efficiency, and the trajectory of every control knob.
func trainCurve(id, title string, s sla.SLA, o Options) (*Table, *control.GreenNFV, error) {
	if err := o.Validate(); err != nil {
		return nil, nil, err
	}
	g := control.NewGreenNFV(s, o.TrainSteps, o.Actors, o.Seed)
	g.Parallel = o.ParallelTrain
	if err := g.Prepare(Factory(s)); err != nil {
		return nil, nil, err
	}
	t := &Table{
		ID:    id,
		Title: title,
		Columns: []string{"episode", "Gbps", "Energy kJ", "lambda", "CPU %",
			"GHz", "LLC %", "DMA MB", "batch", "reward"},
	}
	for _, snap := range g.Trainer().Snapshots {
		t.AddRow(
			fmt.Sprintf("%d", snap.Episode),
			f2(snap.ThroughputGbps),
			f2(snap.EnergyJ/1000),
			f2(snap.Efficiency),
			f0(snap.CPUPercent),
			f2(snap.FreqGHz),
			f0(snap.LLCPercent),
			f1(snap.DMAMB),
			f0(snap.Batch),
			f2(snap.Reward),
		)
	}
	return t, g, nil
}

// Fig6 reproduces the Maximum Throughput SLA training progress
// (paper Figure 6: E_SLA = 2000 J, five flows).
func Fig6(o Options) (*Table, *control.GreenNFV, error) {
	s, err := sla.NewMaxThroughput(2000)
	if err != nil {
		return nil, nil, err
	}
	return trainCurve("fig6", "Training progress, Maximum Throughput SLA (E<=2000J)", s, o)
}

// Fig7 reproduces the Minimum Energy SLA training progress
// (paper Figure 7: T_SLA = 7.5 Gbps).
func Fig7(o Options) (*Table, *control.GreenNFV, error) {
	s, err := sla.NewMinEnergy(7.5)
	if err != nil {
		return nil, nil, err
	}
	return trainCurve("fig7", "Training progress, Minimum Energy SLA (T>=7.5Gbps)", s, o)
}

// Fig8 reproduces the Energy-Efficiency SLA training progress
// (paper Figure 8: unconstrained λ = T/E).
func Fig8(o Options) (*Table, *control.GreenNFV, error) {
	return trainCurve("fig8", "Training progress, Energy-Efficiency SLA (max T/E)",
		sla.NewEnergyEfficiency(), o)
}

// FinalSnapshot returns the last training snapshot of a trained
// model, or false when no snapshots were recorded.
func FinalSnapshot(g *control.GreenNFV) (apex.Snapshot, bool) {
	snaps := g.Trainer().Snapshots
	if len(snaps) == 0 {
		return apex.Snapshot{}, false
	}
	return snaps[len(snaps)-1], true
}
