package experiments

import (
	"greennfv/internal/control"
	"greennfv/internal/sla"
)

// Fig11 reproduces the amortized energy-saving curve (paper Figure
// 11, equation 9): the saving of the trained Minimum-Energy model
// over the baseline as a function of operating hours, charging the
// RL training energy against the model. The paper reports 23% at one
// hour growing toward 62% as training amortizes.
func Fig11(o Options) (*Table, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	minE, err := sla.NewMinEnergy(7.5)
	if err != nil {
		return nil, err
	}
	g := control.NewGreenNFV(minE, o.TrainSteps, o.Actors, o.Seed)
	factory := Factory(minE)
	// Steady-state energies of the trained model and the baseline
	// under the same workload. The two pipelines are independent
	// (separate controllers, environments and seeds), so they run
	// concurrently; the numbers are identical to the serial order.
	var gEnergy, bEnergy float64
	err = forEach(2, batchWorkers(), func(i int) error {
		var err error
		switch i {
		case 0:
			if err = g.Prepare(factory); err != nil {
				return err
			}
			_, gEnergy, _, err = control.Run(g, factory, o.Seed+9, o.ControlSteps, o.ControlSteps/2+1)
		case 1:
			_, bEnergy, _, err = control.Run(control.NewBaseline(), factory, o.Seed+9, 8, 4)
		}
		return err
	})
	if err != nil {
		return nil, err
	}
	window := 10.0 // seconds per measurement interval
	pGreen := gEnergy / window
	pBase := bEnergy / window

	// Training energy: mean power observed across the recorded
	// training snapshots, over a nominal half-hour training session
	// (the paper trains once before deployment).
	var pTrain float64
	snaps := g.Trainer().Snapshots
	for _, s := range snaps {
		pTrain += s.EnergyJ / window
	}
	if len(snaps) > 0 {
		pTrain /= float64(len(snaps))
	} else {
		pTrain = pBase
	}
	// The paper trains once before deployment; a quarter hour of
	// wall-clock training on one node matches our measured training
	// runs and is charged in full against the model (eq. 9).
	const trainingHours = 0.25

	t := &Table{
		ID:      "fig11",
		Title:   "Amortized energy saving of MinE vs baseline, training energy included (eq. 9)",
		Columns: []string{"hours", "E_base kJ", "E_nf+train kJ", "saving %"},
	}
	eTrain := pTrain * trainingHours * 3600
	for h := 1; h <= 6; h++ {
		eBase := pBase * float64(h) * 3600
		eNF := pGreen*float64(h)*3600 + eTrain
		saving := (1 - eNF/eBase) * 100
		t.AddRow(itoa(h), f0(eBase/1000), f0(eNF/1000), f1(saving))
	}
	return t, nil
}
