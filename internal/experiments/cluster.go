package experiments

import (
	"fmt"

	"greennfv/internal/cluster"
	"greennfv/internal/control"
	"greennfv/internal/env"
	"greennfv/internal/perfmodel"
	"greennfv/internal/placement"
	"greennfv/internal/sla"
)

// ClusterRow is one cell of the cluster scale-out figure.
type ClusterRow struct {
	Nodes          int
	Policy         string
	ThroughputGbps float64
	EnergyJ        float64
	LinkJ          float64
	NodesUsed      int
	Efficiency     float64 // Gbps per kJ
}

// clusterPolicies enumerates the placement strategies FigCluster
// compares: the DRL placement head (nil policy — the agent's action
// vector carries per-chain placement logits) against the two analytic
// baselines.
func clusterPolicies() []struct {
	name string
	pol  placement.Policy
} {
	return []struct {
		name string
		pol  placement.Policy
	}{
		{"drl-head", nil},
		{placement.FFDSwap{}.Name(), placement.FFDSwap{}},
		{placement.Relaxation{}.Name(), placement.Relaxation{}},
	}
}

// clusterFactory builds the FigCluster environment family: a
// heterogeneous topology of n nodes hosting six preset chains in one
// service-function path, with a 150 µs end-to-end latency budget (a
// fully split path pays 5 × 50 µs and busts it — the SLA pressure
// that makes placement matter).
func clusterFactory(nodes int, pol placement.Policy) control.ClusterFactory {
	return func(seed int64) (*env.ClusterEnv, error) {
		chains, hops := env.StandardClusterChains(6)
		return env.NewCluster(env.ClusterConfig{
			Topology:        cluster.Heterogeneous(nodes),
			Chains:          chains,
			Hops:            hops,
			LatencyBudgetNs: 150e3,
			Bounds:          perfmodel.DefaultBounds(),
			SLA:             sla.NewEnergyEfficiency(),
			LoadJitter:      0.05,
			Seed:            seed,
			Placement:       pol,
		})
	}
}

// FigCluster is the cluster scale-out study the paper never had:
// energy versus cluster size at 2, 4, and 8 heterogeneous nodes,
// comparing the DRL placement head against the FFD+swap and
// relaxation-and-rounding analytic baselines, all three training the
// same DDPG knob policy. Deterministic (round-robin training, fixed
// seeds): the table byte-diffs across runs.
func FigCluster(o Options) (*Table, []ClusterRow, error) {
	if err := o.Validate(); err != nil {
		return nil, nil, err
	}
	sizes := []int{2, 4, 8}
	pols := clusterPolicies()
	rows := make([]ClusterRow, len(sizes)*len(pols))
	err := forEach(len(rows), batchWorkers(), func(i int) error {
		nodes := sizes[i/len(pols)]
		entry := pols[i%len(pols)]
		factory := clusterFactory(nodes, entry.pol)
		ctl := control.NewClusterGreenNFV(sla.NewEnergyEfficiency(), o.TrainSteps, o.Actors, o.Seed)
		if err := ctl.Prepare(factory); err != nil {
			return fmt.Errorf("prepare %d-node %s: %w", nodes, entry.name, err)
		}
		meas, err := factory(o.Seed + 1000)
		if err != nil {
			return err
		}
		settle := o.ControlSteps / 4
		if settle < 1 {
			settle = 1
		}
		var tput, energy, link float64
		var used, counted int
		for step := 0; step < o.ControlSteps; step++ {
			info, err := ctl.Step(meas)
			if err != nil {
				return fmt.Errorf("run %d-node %s: %w", nodes, entry.name, err)
			}
			if step >= o.ControlSteps-settle {
				tput += info.ThroughputGbps
				energy += info.EnergyJoules
				link += meas.LastCluster().LinkEnergyJ
				used = meas.LastCluster().NodesUsed
				counted++
			}
		}
		n := float64(counted)
		rows[i] = ClusterRow{
			Nodes:          nodes,
			Policy:         entry.name,
			ThroughputGbps: tput / n,
			EnergyJ:        energy / n,
			LinkJ:          link / n,
			NodesUsed:      used,
			Efficiency:     (tput / n) / (energy / n / 1000),
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	t := &Table{
		ID:    "figcluster",
		Title: "Cluster scale-out: energy vs cluster size, DRL vs analytic placement",
		Columns: []string{"nodes", "placement", "Gbps", "Energy J", "Link J",
			"nodes used", "Gbps/kJ"},
	}
	for _, r := range rows {
		t.AddRow(itoa(r.Nodes), r.Policy, f2(r.ThroughputGbps), f0(r.EnergyJ),
			f1(r.LinkJ), itoa(r.NodesUsed), f2(r.Efficiency))
	}
	return t, rows, nil
}
