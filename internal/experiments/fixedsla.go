package experiments

import (
	"greennfv/internal/control"
	"greennfv/internal/env"
	"greennfv/internal/sla"
)

// Fig10 reproduces the fixed-SLA time series (paper Figure 10):
// (a) Maximum Throughput SLA with a 3.3 kJ energy budget and (b)
// Minimum Energy SLA with a 7 Gbps floor, each deployed for 120
// seconds of control (12 ten-second intervals) after training,
// showing the settle-in behaviour.
func Fig10(o Options) (*Table, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	maxT, err := sla.NewMaxThroughput(3300)
	if err != nil {
		return nil, err
	}
	minE, err := sla.NewMinEnergy(7.0)
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:    "fig10",
		Title: "Fixed-SLA deployment over time (paper Figure 10)",
		Columns: []string{"t (s)", "MaxTh Gbps", "MaxTh kJ", "MaxTh ok",
			"MinE Gbps", "MinE kJ", "MinE ok"},
	}

	type run struct {
		s       sla.SLA
		c       *control.GreenNFV
		tputs   []float64
		energys []float64
		oks     []bool
	}
	runs := []*run{
		{s: maxT, c: control.NewGreenNFV(maxT, o.TrainSteps, o.Actors, o.Seed)},
		{s: minE, c: control.NewGreenNFV(minE, o.TrainSteps, o.Actors, o.Seed+5)},
	}
	const intervals = 12 // 120 s at the 10 s window
	// Both deployments — training included — are independent, so each
	// runs against its own environment through one VecEnv batch. Each
	// closure touches only index-i state, and the per-run seeds are
	// unchanged, so the time series match the serial loop exactly.
	envs := make([]*env.Env, len(runs))
	for i, r := range runs {
		e, err := Factory(r.s)(o.Seed+42, r.c.Options())
		if err != nil {
			return nil, err
		}
		envs[i] = e
	}
	vec, err := env.NewVecEnv(envs, batchWorkers())
	if err != nil {
		return nil, err
	}
	err = vec.Do(func(i int, e *env.Env) error {
		r := runs[i]
		if err := r.c.Prepare(Factory(r.s)); err != nil {
			return err
		}
		tracker := sla.NewTracker(r.s)
		for j := 0; j < intervals; j++ {
			res, err := r.c.Step(e)
			if err != nil {
				return err
			}
			tracker.Observe(res.ThroughputGbps, res.EnergyJoules)
			r.tputs = append(r.tputs, res.ThroughputGbps)
			r.energys = append(r.energys, res.EnergyJoules)
			r.oks = append(r.oks, r.s.Satisfied(res.ThroughputGbps, res.EnergyJoules))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i := 0; i < intervals; i++ {
		t.AddRow(
			itoa((i+1)*10),
			f2(runs[0].tputs[i]), f2(runs[0].energys[i]/1000), okMark(runs[0].oks[i]),
			f2(runs[1].tputs[i]), f2(runs[1].energys[i]/1000), okMark(runs[1].oks[i]),
		)
	}
	return t, nil
}

func okMark(ok bool) string {
	if ok {
		return "yes"
	}
	return "VIOLATION"
}
