package experiments

import (
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"greennfv/internal/control"
	"greennfv/internal/env"
	"greennfv/internal/perfmodel"
	"greennfv/internal/sla"
)

// Table is one experiment's tabular output.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes an aligned ASCII table.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if _, err := fmt.Fprintf(w, "%s — %s\n", t.ID, t.Title); err != nil {
		return err
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		return strings.Join(parts, "  ")
	}
	if _, err := fmt.Fprintln(w, line(t.Columns)); err != nil {
		return err
	}
	total := len(widths) - 1
	for _, wd := range widths {
		total += wd + 1
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteCSV emits the table as CSV.
func (t *Table) WriteCSV(w io.Writer) error {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	cols := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		cols[i] = esc(c)
	}
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		cells := make([]string, len(row))
		for i, c := range row {
			cells[i] = esc(c)
		}
		if _, err := fmt.Fprintln(w, strings.Join(cells, ",")); err != nil {
			return err
		}
	}
	return nil
}

// Options scales the experiment suite: Quick shrinks the RL training
// budgets so the full suite runs in seconds (unit tests, smoke runs);
// Full uses the bench-scale budgets.
type Options struct {
	// TrainSteps is the RL training budget per SLA model.
	TrainSteps int
	// QTrainSteps is the tabular Q-learning budget.
	QTrainSteps int
	// Actors is the Ape-X worker count.
	Actors int
	// ControlSteps is the measurement horizon for trained policies.
	ControlSteps int
	// Seed fixes all randomness.
	Seed int64
	// ParallelTrain runs Ape-X training with concurrent actor
	// goroutines (fast, non-deterministic) instead of the default
	// reproducible round-robin interleaving. Recorded EXPERIMENTS.md
	// results use the deterministic mode.
	ParallelTrain bool
}

// Quick returns budgets for fast smoke runs.
func Quick() Options {
	return Options{TrainSteps: 400, QTrainSteps: 1500, Actors: 2, ControlSteps: 12, Seed: 17}
}

// Full returns the budgets used for the recorded results in
// EXPERIMENTS.md.
func Full() Options {
	return Options{TrainSteps: 4000, QTrainSteps: 12000, Actors: 4, ControlSteps: 40, Seed: 17}
}

// Validate reports whether the options are usable.
func (o Options) Validate() error {
	if o.TrainSteps <= 0 || o.QTrainSteps <= 0 || o.Actors <= 0 || o.ControlSteps <= 0 {
		return errors.New("experiments: all budgets must be positive")
	}
	return nil
}

// Factory returns the standard single-node environment factory used
// by the SLA experiments: standard chain, five-flow workload, mild
// load jitter.
func Factory(s sla.SLA) control.EnvFactory {
	return func(seed int64, opts perfmodel.EvalOptions) (*env.Env, error) {
		return env.New(env.Config{
			Model:      perfmodel.Default(),
			Chain:      perfmodel.StandardChain(),
			Bounds:     perfmodel.DefaultBounds(),
			SLA:        s,
			Flows:      env.StandardWorkload(),
			LoadJitter: 0.03,
			Options:    opts,
			Seed:       seed,
		})
	}
}

// Cell formatters, byte-identical to the fmt.Sprintf("%.Nf") calls
// they replaced but ~10× cheaper: Go's strconv takes the big-decimal
// slow path for the 'f' verb, and profiling showed float formatting
// was over half of the Fig 1–4 micro-benchmark wall-clock.
func f1(v float64) string { return fixed(v, 1) }
func f2(v float64) string { return fixed(v, 2) }
func f0(v float64) string { return fixed(v, 0) }
func itoa(v int) string   { return strconv.Itoa(v) }

var (
	pow10f = [3]float64{1, 10, 100}
	pow10i = [3]int64{1, 10, 100}
)

// fixed formats v with prec (0–2) decimal digits exactly as
// strconv.FormatFloat(v, 'f', prec, 64) would. The fast path scales
// into an int64 and rounds half away from zero; that matches
// strconv's exact-decimal rounding whenever the scaled value is
// farther from a halfway point than the scaling error (< 4 ulps), so
// anything inside a conservative guard band — along with ties (which
// strconv rounds to even), NaN, ±Inf and huge magnitudes — falls back
// to strconv. TestCellFormattersMatchFmt enforces the equivalence.
func fixed(v float64, prec int) string {
	abs := math.Abs(v)
	if !(abs < 1e15) { // NaN, Inf, or beyond the int64 fast path
		return strconv.FormatFloat(v, 'f', prec, 64)
	}
	s := abs * pow10f[prec]
	fl := math.Floor(s)
	d := s - fl
	if math.Abs(d-0.5) <= 1e-9+s*1e-12 {
		return strconv.FormatFloat(v, 'f', prec, 64)
	}
	n := int64(fl)
	if d > 0.5 {
		n++
	}
	var buf [24]byte
	b := buf[:0]
	if math.Signbit(v) {
		b = append(b, '-')
	}
	b = strconv.AppendInt(b, n/pow10i[prec], 10)
	if prec > 0 {
		frac := n % pow10i[prec]
		b = append(b, '.')
		if prec == 2 {
			b = append(b, byte('0'+frac/10))
		}
		b = append(b, byte('0'+frac%10))
	}
	return string(b)
}
