package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func cellFloat(t *testing.T, tab *Table, row, col int) float64 {
	t.Helper()
	s := strings.TrimSuffix(strings.TrimSuffix(tab.Rows[row][col], "%"), "x")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q: %v", row, col, tab.Rows[row][col], err)
	}
	return v
}

func TestTableRenderAndCSV(t *testing.T) {
	tab := &Table{ID: "x", Title: "demo", Columns: []string{"a", "b"}}
	tab.AddRow("1", "hello, world")
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "demo") || !strings.Contains(buf.String(), "hello") {
		t.Errorf("render output: %q", buf.String())
	}
	buf.Reset()
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"hello, world"`) {
		t.Errorf("csv escaping: %q", buf.String())
	}
}

func TestOptionsValidate(t *testing.T) {
	if err := (Options{}).Validate(); err == nil {
		t.Error("zero options accepted")
	}
	if err := Quick().Validate(); err != nil {
		t.Errorf("quick options invalid: %v", err)
	}
	if err := Full().Validate(); err != nil {
		t.Errorf("full options invalid: %v", err)
	}
}

func TestFig1Shape(t *testing.T) {
	tab, err := Fig1()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// C1 throughput (col 3) degrades monotonically; C1 energy/MP
	// (col 5) rises; C2 throughput (col 4) holds.
	for i := 1; i < 4; i++ {
		if cellFloat(t, tab, i, 3) >= cellFloat(t, tab, i-1, 3) {
			t.Errorf("C1 throughput not degrading at row %d", i)
		}
	}
	if cellFloat(t, tab, 3, 5) <= cellFloat(t, tab, 0, 5) {
		t.Error("C1 energy/MP not rising")
	}
	if cellFloat(t, tab, 3, 4) < 0.9*cellFloat(t, tab, 0, 4) {
		t.Error("C2 throughput collapsed")
	}
}

func TestFig2Shape(t *testing.T) {
	tab, err := Fig2()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 10 {
		t.Fatalf("rows = %d, want 10 ladder steps", len(tab.Rows))
	}
	last := len(tab.Rows) - 1
	if cellFloat(t, tab, last, 1) <= cellFloat(t, tab, 0, 1) {
		t.Error("throughput not rising with frequency")
	}
	if cellFloat(t, tab, last, 2) <= cellFloat(t, tab, 0, 2) {
		t.Error("energy not rising with frequency")
	}
	// Sub-linear growth.
	tputRatio := cellFloat(t, tab, last, 1) / cellFloat(t, tab, 0, 1)
	if tputRatio >= 2.1/1.2 {
		t.Errorf("throughput gain %.2f not sub-linear", tputRatio)
	}
}

func TestFig3Shape(t *testing.T) {
	tab, err := Fig3()
	if err != nil {
		t.Fatal(err)
	}
	peak, peakV := 0, 0.0
	for i := range tab.Rows {
		if v := cellFloat(t, tab, i, 1); v > peakV {
			peak, peakV = i, v
		}
	}
	if peak == 0 || peak == len(tab.Rows)-1 {
		t.Errorf("batch throughput peak at edge: row %d", peak)
	}
}

func TestFig4Shape(t *testing.T) {
	tab, err := Fig4()
	if err != nil {
		t.Fatal(err)
	}
	for _, col := range []int{1, 2} { // 64B and 1518B throughput
		peak, peakV := 0, 0.0
		for i := range tab.Rows {
			if v := cellFloat(t, tab, i, col); v > peakV {
				peak, peakV = i, v
			}
		}
		if peak == 0 || peak == len(tab.Rows)-1 {
			t.Errorf("col %d: DMA throughput peak at edge (row %d)", col, peak)
		}
	}
	// 1518B always carries more Gbps than 64B at matched buffer.
	mid := len(tab.Rows) / 2
	if cellFloat(t, tab, mid, 2) <= cellFloat(t, tab, mid, 1) {
		t.Error("1518B not above 64B")
	}
}

func TestFig6TrainingRespectsEnergyBudget(t *testing.T) {
	tab, g, err := Fig6(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("no training rows")
	}
	// Late training should sit inside the 2 kJ budget most of the
	// time (col 2 is kJ).
	late := tab.Rows[len(tab.Rows)*3/4:]
	inside := 0
	for i := range late {
		if cellFloat(t, tab, len(tab.Rows)*3/4+i, 2) <= 2.05 {
			inside++
		}
	}
	if inside*2 < len(late) {
		t.Errorf("only %d/%d late snapshots inside the energy budget", inside, len(late))
	}
	if _, ok := FinalSnapshot(g); !ok {
		t.Error("no final snapshot")
	}
}

func TestFig7TrainingHoldsThroughputFloor(t *testing.T) {
	tab, _, err := Fig7(Quick())
	if err != nil {
		t.Fatal(err)
	}
	late := tab.Rows[len(tab.Rows)*3/4:]
	holding := 0
	for i := range late {
		if cellFloat(t, tab, len(tab.Rows)*3/4+i, 1) >= 7.0 {
			holding++
		}
	}
	if holding*2 < len(late) {
		t.Errorf("only %d/%d late snapshots hold the 7.5Gbps floor", holding, len(late))
	}
}

func TestFig8EfficiencyImproves(t *testing.T) {
	tab, _, err := Fig8(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Mean efficiency of the last quarter beats the first quarter.
	quarter := len(tab.Rows) / 4
	var early, lateSum float64
	for i := 0; i < quarter; i++ {
		early += cellFloat(t, tab, i, 3)
	}
	for i := len(tab.Rows) - quarter; i < len(tab.Rows); i++ {
		lateSum += cellFloat(t, tab, i, 3)
	}
	if lateSum <= early {
		t.Errorf("efficiency did not improve: early %.2f late %.2f", early, lateSum)
	}
}

// The headline comparison: relative ordering of Figure 9 must hold.
func TestFig9Ordering(t *testing.T) {
	_, rows, err := Fig9(Quick())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]ComparisonRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	base := byName["Baseline"]
	heur := byName["Heuristics"]
	maxT := byName["GreenNFV(MaxT)"]
	minE := byName["GreenNFV(MinE)"]
	ee := byName["GreenNFV(EE)"]

	if heur.ThroughputGbps < 1.4*base.ThroughputGbps {
		t.Errorf("heuristics %.2f not well above baseline %.2f", heur.ThroughputGbps, base.ThroughputGbps)
	}
	if maxT.ThroughputGbps < 3.0*base.ThroughputGbps {
		t.Errorf("MaxT %.2f not ~4x baseline %.2f", maxT.ThroughputGbps, base.ThroughputGbps)
	}
	if maxT.EnergyJ > 0.8*base.EnergyJ {
		t.Errorf("MaxT energy %.0f not well below baseline %.0f", maxT.EnergyJ, base.EnergyJ)
	}
	if minE.ThroughputGbps < 2.0*base.ThroughputGbps {
		t.Errorf("MinE %.2f not ~3x baseline %.2f", minE.ThroughputGbps, base.ThroughputGbps)
	}
	// The paper reports ~50%; the quick training budget lands close
	// to that and the Full() budget (EXPERIMENTS.md) tightens it.
	if minE.EnergyJ > 0.66*base.EnergyJ {
		t.Errorf("MinE energy %.0f not well below baseline %.0f", minE.EnergyJ, base.EnergyJ)
	}
	if ee.Efficiency <= base.Efficiency {
		t.Errorf("EE efficiency %.2f not above baseline %.2f", ee.Efficiency, base.Efficiency)
	}
}

func TestFig10SettlesInsideConstraints(t *testing.T) {
	tab, err := Fig10(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 12 {
		t.Fatalf("rows = %d, want 12 intervals", len(tab.Rows))
	}
	// The last third must satisfy both SLAs.
	for i := 8; i < 12; i++ {
		if tab.Rows[i][3] != "yes" {
			t.Errorf("MaxTh violating at t=%s", tab.Rows[i][0])
		}
		if tab.Rows[i][6] != "yes" {
			t.Errorf("MinE violating at t=%s", tab.Rows[i][0])
		}
	}
}

func TestFig11SavingGrowsWithHours(t *testing.T) {
	tab, err := Fig11(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	first := cellFloat(t, tab, 0, 3)
	lastV := cellFloat(t, tab, 5, 3)
	if lastV <= first {
		t.Errorf("saving not growing: %v -> %v", first, lastV)
	}
	if lastV < 20 {
		t.Errorf("6-hour saving %.1f%% too low", lastV)
	}
}

func TestAblationPER(t *testing.T) {
	o := Quick()
	tab, err := AblationPER(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for i := range tab.Rows {
		if cellFloat(t, tab, i, 1) <= 0 {
			t.Errorf("row %d efficiency not positive", i)
		}
	}
}

func TestAblationKnobs(t *testing.T) {
	o := Quick()
	o.TrainSteps = 250
	tab, err := AblationKnobs(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 { // none + 5 knobs
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestAblationReward(t *testing.T) {
	o := Quick()
	o.TrainSteps = 250
	tab, err := AblationReward(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestAblationActors(t *testing.T) {
	o := Quick()
	o.TrainSteps = 200
	tab, err := AblationActors(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestValidationDESAgreement(t *testing.T) {
	tab, err := ValidationDES()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Every load point agrees within 10%.
	for i := range tab.Rows {
		delta := cellFloat(t, tab, i, 3)
		if delta > 10 || delta < -10 {
			t.Errorf("row %d: DES vs analytic delta %.1f%%", i, delta)
		}
	}
	// p99 latency is at least p50 (sanity of the histogram).
	for i := range tab.Rows {
		if cellFloat(t, tab, i, 5) < cellFloat(t, tab, i, 4) {
			t.Errorf("row %d: p99 < p50", i)
		}
	}
}

func TestExpConsolidation(t *testing.T) {
	tab, err := ExpConsolidation()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 2 {
		t.Fatal("missing rows")
	}
	naive := cellFloat(t, tab, 0, 1)
	packed := cellFloat(t, tab, 1, 1)
	if packed >= naive {
		t.Errorf("consolidation did not reduce nodes: %v -> %v", naive, packed)
	}
	if cellFloat(t, tab, 1, 2) != 0 {
		t.Errorf("affinity pairs split: cross pps %v", tab.Rows[1][2])
	}
	if cellFloat(t, tab, 1, 3) <= 0 {
		t.Error("no idle power saved")
	}
}
