package experiments

import (
	"fmt"

	"greennfv/internal/pool"
)

// forEach runs f(0), …, f(n-1) across the shared bounded worker pool
// (workers <= 0 selects GOMAXPROCS). The figure drivers use it to run
// independent controller pipelines — each with its own environments,
// seeds and RNG streams — concurrently: because the pipelines share
// nothing mutable, the produced rows are identical to the serial loop
// and only wall-clock changes. Callers communicate results
// positionally (worker i writes slot i), which preserves row order by
// construction. A failure stops the batch (no new indices start once
// one has failed); the error of the lowest failing index is returned.
func forEach(n, workers int, f func(i int) error) error {
	// workers <= 0 selects GOMAXPROCS inside pool.ForEach.
	if i, err := pool.ForEach(n, workers, f); err != nil {
		return fmt.Errorf("task %d: %w", i, err)
	}
	return nil
}
