// Package sim is a discrete-event simulator of an NF service chain:
// a tandem of FIFO servers with finite queues, driven by any arrival
// process from internal/traffic. It provides an independent check on
// the analytic performance model — the two share per-NF service
// times but nothing else, so agreement on throughput and saturation
// behaviour validates the capacity math — and it produces the
// latency distributions the analytic model cannot (the paper's
// related work cares about delay-sensitive chains).
package sim

import (
	"container/heap"
	"errors"
	"math/rand"

	"greennfv/internal/perfmodel"
	"greennfv/internal/stats"
	"greennfv/internal/traffic"
)

// Config shapes a simulation.
type Config struct {
	// ServiceNs is the deterministic per-packet service time of each
	// NF stage in nanoseconds (typically perfmodel Result.PerNF
	// ServiceTimeNs). Servers run one packet at a time per unit of
	// CPU share.
	ServiceNs []float64
	// Servers is the parallel-server count per stage (the CPU share
	// granted to the NF, floored at 1).
	Servers []int
	// QueueCap is each stage's queue capacity in packets (the RX
	// ring); arrivals to a full queue drop.
	QueueCap int
	// Horizon is the simulated duration in seconds.
	Horizon float64
	// Seed drives the arrival process.
	Seed int64
	// LatencyCapNs bounds the latency histogram range.
	LatencyCapNs float64
}

// FromModel derives a Config from an analytic evaluation: service
// times and parallel servers from the per-NF results and knobs.
func FromModel(res perfmodel.Result, knobs []perfmodel.NFKnobs, queueCap int, horizon float64, seed int64) (Config, error) {
	if len(res.PerNF) == 0 || len(knobs) != len(res.PerNF) {
		return Config{}, errors.New("sim: result and knobs must cover the same NFs")
	}
	cfg := Config{QueueCap: queueCap, Horizon: horizon, Seed: seed, LatencyCapNs: 5e6}
	for i, nf := range res.PerNF {
		servers := int(knobs[i].CPUShare)
		if servers < 1 {
			servers = 1
		}
		// Service time per server: the analytic model treats share as
		// fluid capacity, so a share of s means each of ceil(s)
		// servers runs at s/ceil(s) speed.
		speed := knobs[i].CPUShare / float64(servers)
		if speed <= 0 {
			speed = 1
		}
		cfg.ServiceNs = append(cfg.ServiceNs, nf.ServiceTimeNs/speed)
		cfg.Servers = append(cfg.Servers, servers)
	}
	return cfg, nil
}

// Validate reports whether the configuration can run.
func (c Config) Validate() error {
	switch {
	case len(c.ServiceNs) == 0:
		return errors.New("sim: need at least one stage")
	case len(c.Servers) != len(c.ServiceNs):
		return errors.New("sim: Servers must match ServiceNs")
	case c.QueueCap <= 0:
		return errors.New("sim: QueueCap must be positive")
	case c.Horizon <= 0:
		return errors.New("sim: Horizon must be positive")
	}
	for i, s := range c.ServiceNs {
		if s <= 0 {
			return errors.New("sim: service times must be positive")
		}
		if c.Servers[i] <= 0 {
			return errors.New("sim: server counts must be positive")
		}
	}
	return nil
}

// Result summarizes a run.
type Result struct {
	// Offered is the number of packets the arrival process produced.
	Offered int64
	// Delivered is the number that traversed the whole chain.
	Delivered int64
	// Dropped counts queue-full losses per stage (index 0 is the
	// ingress/DMA queue).
	Dropped []int64
	// ThroughputPPS is Delivered / Horizon.
	ThroughputPPS float64
	// Latency is the end-to-end latency distribution (ns).
	Latency *stats.Histogram
	// BusyFrac is each stage's mean server utilization.
	BusyFrac []float64
}

// event is a pending simulation event.
type event struct {
	at   float64 // seconds
	kind int     // 0 = arrival into stage, 1 = service completion
	pkt  *packet
	nf   int
}

type packet struct {
	arrived float64
}

type eventHeap []event

func (h eventHeap) Len() int            { return len(h) }
func (h eventHeap) Less(i, j int) bool  { return h[i].at < h[j].at }
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// stage is one NF server group with its queue.
type stage struct {
	serviceS float64 // seconds per packet per server
	servers  int
	busy     int
	queue    []*packet
	queueCap int
	busyTime float64
	lastT    float64
}

// Run simulates the chain under the arrival process and reports the
// outcome.
func Run(cfg Config, arr traffic.Arrival) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if arr == nil {
		return Result{}, errors.New("sim: nil arrival process")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	stages := make([]*stage, len(cfg.ServiceNs))
	for i := range stages {
		stages[i] = &stage{
			serviceS: cfg.ServiceNs[i] * 1e-9,
			servers:  cfg.Servers[i],
			queueCap: cfg.QueueCap,
		}
	}
	latCap := cfg.LatencyCapNs
	if latCap <= 0 {
		latCap = 5e6
	}
	res := Result{
		Dropped: make([]int64, len(stages)),
		Latency: stats.NewHistogram(0, latCap, 512),
	}

	var h eventHeap
	heap.Init(&h)
	first := arr.Next(rng)
	if first <= cfg.Horizon {
		heap.Push(&h, event{at: first, kind: 0, nf: 0, pkt: &packet{arrived: first}})
		res.Offered++
	}

	accountBusy := func(st *stage, now float64) {
		st.busyTime += float64(st.busy) * (now - st.lastT)
		st.lastT = now
	}

	startService := func(now float64, nfIdx int, p *packet) {
		st := stages[nfIdx]
		st.busy++
		heap.Push(&h, event{at: now + st.serviceS, kind: 1, nf: nfIdx, pkt: p})
	}

	for h.Len() > 0 {
		ev := heap.Pop(&h).(event)
		now := ev.at
		if now > cfg.Horizon {
			break
		}
		st := stages[ev.nf]
		accountBusy(st, now)
		switch ev.kind {
		case 0: // arrival at stage ev.nf
			if ev.nf == 0 {
				// Schedule the next exogenous arrival.
				next := now + arr.Next(rng)
				if next <= cfg.Horizon {
					heap.Push(&h, event{at: next, kind: 0, nf: 0, pkt: &packet{arrived: next}})
					res.Offered++
				}
			}
			if st.busy < st.servers {
				startService(now, ev.nf, ev.pkt)
			} else if len(st.queue) < st.queueCap {
				st.queue = append(st.queue, ev.pkt)
			} else {
				res.Dropped[ev.nf]++
			}
		case 1: // service completion at stage ev.nf
			st.busy--
			if len(st.queue) > 0 {
				next := st.queue[0]
				st.queue = st.queue[1:]
				startService(now, ev.nf, next)
			}
			if ev.nf+1 < len(stages) {
				heap.Push(&h, event{at: now, kind: 0, nf: ev.nf + 1, pkt: ev.pkt})
			} else {
				res.Delivered++
				res.Latency.Add((now - ev.pkt.arrived) * 1e9)
			}
		}
	}

	res.ThroughputPPS = float64(res.Delivered) / cfg.Horizon
	for _, st := range stages {
		accountBusy(st, cfg.Horizon)
		res.BusyFrac = append(res.BusyFrac, st.busyTime/(cfg.Horizon*float64(st.servers)))
	}
	return res, nil
}
