package sim

import (
	"errors"
	"math/rand"

	"greennfv/internal/perfmodel"
	"greennfv/internal/stats"
	"greennfv/internal/traffic"
)

// Config shapes a simulation.
type Config struct {
	// ServiceNs is the deterministic per-packet service time of each
	// NF stage in nanoseconds (typically perfmodel Result.PerNF
	// ServiceTimeNs). Servers run one packet at a time per unit of
	// CPU share.
	ServiceNs []float64
	// Servers is the parallel-server count per stage (the CPU share
	// granted to the NF, floored at 1).
	Servers []int
	// QueueCap is each stage's queue capacity in packets (the RX
	// ring); arrivals to a full queue drop.
	QueueCap int
	// Horizon is the simulated duration in seconds.
	Horizon float64
	// Seed drives the arrival process.
	Seed int64
	// LatencyCapNs bounds the latency histogram range.
	LatencyCapNs float64
}

// FromModel derives a Config from an analytic evaluation: service
// times and parallel servers from the per-NF results and knobs.
func FromModel(res perfmodel.Result, knobs []perfmodel.NFKnobs, queueCap int, horizon float64, seed int64) (Config, error) {
	if len(res.PerNF) == 0 || len(knobs) != len(res.PerNF) {
		return Config{}, errors.New("sim: result and knobs must cover the same NFs")
	}
	cfg := Config{QueueCap: queueCap, Horizon: horizon, Seed: seed, LatencyCapNs: 5e6}
	for i, nf := range res.PerNF {
		servers := int(knobs[i].CPUShare)
		if servers < 1 {
			servers = 1
		}
		// Service time per server: the analytic model treats share as
		// fluid capacity, so a share of s means each of ceil(s)
		// servers runs at s/ceil(s) speed.
		speed := knobs[i].CPUShare / float64(servers)
		if speed <= 0 {
			speed = 1
		}
		cfg.ServiceNs = append(cfg.ServiceNs, nf.ServiceTimeNs/speed)
		cfg.Servers = append(cfg.Servers, servers)
	}
	return cfg, nil
}

// Validate reports whether the configuration can run.
func (c Config) Validate() error {
	switch {
	case len(c.ServiceNs) == 0:
		return errors.New("sim: need at least one stage")
	case len(c.Servers) != len(c.ServiceNs):
		return errors.New("sim: Servers must match ServiceNs")
	case c.QueueCap <= 0:
		return errors.New("sim: QueueCap must be positive")
	case c.Horizon <= 0:
		return errors.New("sim: Horizon must be positive")
	}
	for i, s := range c.ServiceNs {
		if s <= 0 {
			return errors.New("sim: service times must be positive")
		}
		if c.Servers[i] <= 0 {
			return errors.New("sim: server counts must be positive")
		}
	}
	return nil
}

// Result summarizes a run.
type Result struct {
	// Offered is the number of packets the arrival process produced.
	Offered int64
	// Delivered is the number that traversed the whole chain.
	Delivered int64
	// Dropped counts queue-full losses per stage (index 0 is the
	// ingress/DMA queue).
	Dropped []int64
	// ThroughputPPS is Delivered / Horizon.
	ThroughputPPS float64
	// Latency is the end-to-end latency distribution (ns).
	Latency *stats.Histogram
	// BusyFrac is each stage's mean server utilization.
	BusyFrac []float64
}

// event is a pending simulation event. A packet is fully described by
// its chain-entry timestamp (the latency origin), so the event carries
// it by value — no per-packet heap object exists.
type event struct {
	at      float64 // seconds
	arrived float64 // chain-entry time of the packet this event moves
	nf      int32
	kind    int32 // 0 = arrival into stage, 1 = service completion
}

// eventHeap is a typed 4-ary min-heap ordered by event time. Relative
// to container/heap it removes the interface{} boxing (one allocation
// per Push) and the Less/Swap indirect calls; the 4-ary layout halves
// the tree depth, trading cheap in-node comparisons for fewer
// cache-missing levels. Ties on time pop in unspecified order, as
// with any binary heap.
type eventHeap struct{ ev []event }

func (h *eventHeap) push(e event) {
	h.ev = append(h.ev, e)
	i := len(h.ev) - 1
	for i > 0 {
		p := (i - 1) / 4
		if h.ev[p].at <= h.ev[i].at {
			break
		}
		h.ev[p], h.ev[i] = h.ev[i], h.ev[p]
		i = p
	}
}

func (h *eventHeap) pop() event {
	top := h.ev[0]
	n := len(h.ev) - 1
	h.ev[0] = h.ev[n]
	h.ev = h.ev[:n]
	i := 0
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		end := c + 4
		if end > n {
			end = n
		}
		m := c
		for j := c + 1; j < end; j++ {
			if h.ev[j].at < h.ev[m].at {
				m = j
			}
		}
		if h.ev[i].at <= h.ev[m].at {
			break
		}
		h.ev[i], h.ev[m] = h.ev[m], h.ev[i]
		i = m
	}
	return top
}

// stage is one NF server group with its queue: a fixed-capacity ring
// of chain-entry timestamps, so queueing a packet writes one float64
// instead of appending a pointer.
type stage struct {
	serviceS float64 // seconds per packet per server
	servers  int
	busy     int
	q        []float64 // ring buffer, len == queue capacity
	qHead    int
	qLen     int
	busyTime float64
	lastT    float64
}

func (st *stage) enqueue(arrived float64) bool {
	if st.qLen == len(st.q) {
		return false
	}
	i := st.qHead + st.qLen
	if i >= len(st.q) {
		i -= len(st.q)
	}
	st.q[i] = arrived
	st.qLen++
	return true
}

func (st *stage) dequeue() float64 {
	v := st.q[st.qHead]
	st.qHead++
	if st.qHead == len(st.q) {
		st.qHead = 0
	}
	st.qLen--
	return v
}

// Run simulates the chain under the arrival process and reports the
// outcome. The event loop allocates nothing per event: events are
// plain values in a typed heap, packets are timestamps in fixed ring
// buffers, and the arrival RNG is a single-word SplitMix64 source.
func Run(cfg Config, arr traffic.Arrival) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if arr == nil {
		return Result{}, errors.New("sim: nil arrival process")
	}
	rng := rand.New(newSplitMix(cfg.Seed))
	stages := make([]stage, len(cfg.ServiceNs))
	for i := range stages {
		stages[i] = stage{
			serviceS: cfg.ServiceNs[i] * 1e-9,
			servers:  cfg.Servers[i],
			q:        make([]float64, cfg.QueueCap),
		}
	}
	latCap := cfg.LatencyCapNs
	if latCap <= 0 {
		latCap = 5e6
	}
	res := Result{
		Dropped:  make([]int64, len(stages)),
		Latency:  stats.NewHistogram(0, latCap, 512),
		BusyFrac: make([]float64, 0, len(stages)),
	}

	h := eventHeap{ev: make([]event, 0, 64)}
	first := arr.Next(rng)
	if first <= cfg.Horizon {
		h.push(event{at: first, kind: 0, nf: 0, arrived: first})
		res.Offered++
	}

	for len(h.ev) > 0 {
		ev := h.pop()
		now := ev.at
		if now > cfg.Horizon {
			break
		}
		st := &stages[ev.nf]
		st.busyTime += float64(st.busy) * (now - st.lastT)
		st.lastT = now
		switch ev.kind {
		case 0: // arrival at stage ev.nf
			if ev.nf == 0 {
				// Schedule the next exogenous arrival.
				next := now + arr.Next(rng)
				if next <= cfg.Horizon {
					h.push(event{at: next, kind: 0, nf: 0, arrived: next})
					res.Offered++
				}
			}
			if st.busy < st.servers {
				st.busy++
				h.push(event{at: now + st.serviceS, kind: 1, nf: ev.nf, arrived: ev.arrived})
			} else if !st.enqueue(ev.arrived) {
				res.Dropped[ev.nf]++
			}
		case 1: // service completion at stage ev.nf
			st.busy--
			if st.qLen > 0 {
				next := st.dequeue()
				st.busy++
				h.push(event{at: now + st.serviceS, kind: 1, nf: ev.nf, arrived: next})
			}
			if int(ev.nf)+1 < len(stages) {
				h.push(event{at: now, kind: 0, nf: ev.nf + 1, arrived: ev.arrived})
			} else {
				res.Delivered++
				res.Latency.Add((now - ev.arrived) * 1e9)
			}
		}
	}

	res.ThroughputPPS = float64(res.Delivered) / cfg.Horizon
	for i := range stages {
		st := &stages[i]
		st.busyTime += float64(st.busy) * (cfg.Horizon - st.lastT)
		st.lastT = cfg.Horizon
		res.BusyFrac = append(res.BusyFrac, st.busyTime/(cfg.Horizon*float64(st.servers)))
	}
	return res, nil
}
