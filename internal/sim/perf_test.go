package sim

import (
	"math/rand"
	"sort"
	"testing"

	"greennfv/internal/traffic"
)

// The 4-ary heap must pop events in non-decreasing time order for any
// push/pop interleaving.
func TestEventHeapOrders(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var h eventHeap
	var want []float64
	for round := 0; round < 50; round++ {
		pushes := rng.Intn(40)
		for i := 0; i < pushes; i++ {
			at := rng.Float64()
			h.push(event{at: at, nf: int32(i), kind: int32(i % 2)})
			want = append(want, at)
		}
		pops := rng.Intn(len(h.ev) + 1)
		sort.Float64s(want)
		last := -1.0
		for i := 0; i < pops; i++ {
			ev := h.pop()
			if ev.at < last {
				t.Fatalf("round %d: popped %v after %v", round, ev.at, last)
			}
			if ev.at != want[i] {
				t.Fatalf("round %d: popped %v, want %v", round, ev.at, want[i])
			}
			last = ev.at
		}
		want = want[pops:]
	}
}

// The event loop must allocate a fixed amount per Run regardless of
// how many events it processes: quadrupling the horizon (≈4× the
// events) must not raise the allocation count beyond heap-array
// growth noise.
func TestRunAllocsIndependentOfEvents(t *testing.T) {
	mk := func(horizon float64) func() {
		cfg := Config{
			ServiceNs: []float64{500, 700, 400},
			Servers:   []int{1, 1, 1},
			QueueCap:  256,
			Horizon:   horizon,
			Seed:      3,
		}
		arr, err := traffic.NewPoisson(400e3)
		if err != nil {
			t.Fatal(err)
		}
		return func() {
			if _, err := Run(cfg, arr); err != nil {
				t.Fatal(err)
			}
		}
	}
	short := testing.AllocsPerRun(5, mk(0.01))
	long := testing.AllocsPerRun(5, mk(0.04))
	// Identical fixed setup cost (stages, rings, histogram, RNG); the
	// only growth permitted is the amortized heap-array doubling.
	if long > short+3 {
		t.Errorf("allocations grow with event count: %.0f at 0.01s vs %.0f at 0.04s", short, long)
	}
}

func BenchmarkSimRun(b *testing.B) {
	cfg := Config{
		ServiceNs: []float64{500, 700, 400},
		Servers:   []int{1, 1, 1},
		QueueCap:  1024,
		Horizon:   0.02,
		Seed:      7,
	}
	arr, err := traffic.NewPoisson(1e6)
	if err != nil {
		b.Fatal(err)
	}
	var events int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Run(cfg, arr)
		if err != nil {
			b.Fatal(err)
		}
		// ~4 events per delivered packet (3 stage arrivals + exits).
		events += res.Delivered * 4
	}
	b.StopTimer()
	if b.N > 0 && events > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(events), "ns/event")
	}
}
