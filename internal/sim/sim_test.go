package sim

import (
	"math"
	"testing"

	"greennfv/internal/env"
	"greennfv/internal/perfmodel"
	"greennfv/internal/traffic"
)

func cbr(t *testing.T, pps float64) traffic.Arrival {
	t.Helper()
	a, err := traffic.NewCBR(pps)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{},
		{ServiceNs: []float64{100}, Servers: []int{1, 2}, QueueCap: 8, Horizon: 1},
		{ServiceNs: []float64{100}, Servers: []int{1}, QueueCap: 0, Horizon: 1},
		{ServiceNs: []float64{100}, Servers: []int{1}, QueueCap: 8, Horizon: 0},
		{ServiceNs: []float64{0}, Servers: []int{1}, QueueCap: 8, Horizon: 1},
		{ServiceNs: []float64{100}, Servers: []int{0}, QueueCap: 8, Horizon: 1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if _, err := Run(Config{}, nil); err == nil {
		t.Error("invalid run accepted")
	}
	good := Config{ServiceNs: []float64{100}, Servers: []int{1}, QueueCap: 8, Horizon: 0.01}
	if _, err := Run(good, nil); err == nil {
		t.Error("nil arrival accepted")
	}
}

// Underloaded chain: virtually everything is delivered and latency
// approximates the sum of service times.
func TestUnderloadedDeliversAll(t *testing.T) {
	cfg := Config{
		ServiceNs:    []float64{500, 700, 400},
		Servers:      []int{1, 1, 1},
		QueueCap:     1024,
		Horizon:      0.2,
		Seed:         1,
		LatencyCapNs: 2e4, // 39 ns buckets: resolve the ~1.6 us latencies
	}
	// Offered 200 kpps against a 1.43 Mpps bottleneck.
	res, err := Run(cfg, cbr(t, 200e3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Offered == 0 {
		t.Fatal("no packets offered")
	}
	lossRate := 1 - float64(res.Delivered)/float64(res.Offered)
	if lossRate > 0.001 {
		t.Errorf("underloaded loss rate %v", lossRate)
	}
	wantLat := 500.0 + 700 + 400
	p50 := res.Latency.Quantile(0.5)
	if math.Abs(p50-wantLat) > wantLat*0.1 {
		t.Errorf("median latency %v ns, want ~%v", p50, wantLat)
	}
}

// Overloaded chain: throughput saturates at the bottleneck capacity
// and the bottleneck stage runs ~100% busy.
func TestOverloadedSaturatesAtBottleneck(t *testing.T) {
	cfg := Config{
		ServiceNs: []float64{300, 1000, 300}, // bottleneck: 1 Mpps
		Servers:   []int{1, 1, 1},
		QueueCap:  256,
		Horizon:   0.2,
		Seed:      2,
	}
	res, err := Run(cfg, cbr(t, 3e6))
	if err != nil {
		t.Fatal(err)
	}
	capacity := 1e9 / 1000.0
	if math.Abs(res.ThroughputPPS-capacity)/capacity > 0.05 {
		t.Errorf("saturated throughput %v, want ~%v", res.ThroughputPPS, capacity)
	}
	if res.BusyFrac[1] < 0.95 {
		t.Errorf("bottleneck busy %v, want ~1", res.BusyFrac[1])
	}
	// Drops occur at or before the bottleneck, never after it.
	if res.Dropped[2] != 0 {
		t.Errorf("post-bottleneck drops: %v", res.Dropped)
	}
	if res.Dropped[0]+res.Dropped[1] == 0 {
		t.Error("overload produced no drops")
	}
}

// Parallel servers multiply stage capacity.
func TestParallelServersScaleCapacity(t *testing.T) {
	base := Config{
		ServiceNs: []float64{1000},
		Servers:   []int{1},
		QueueCap:  128,
		Horizon:   0.1,
		Seed:      3,
	}
	one, err := Run(base, cbr(t, 4e6))
	if err != nil {
		t.Fatal(err)
	}
	base.Servers = []int{4}
	four, err := Run(base, cbr(t, 4e6))
	if err != nil {
		t.Fatal(err)
	}
	ratio := four.ThroughputPPS / one.ThroughputPPS
	if ratio < 3.6 || ratio > 4.4 {
		t.Errorf("4-server speedup = %v, want ~4", ratio)
	}
}

// Conservation: offered = delivered + dropped (+ a bounded number of
// packets still in flight at the horizon).
func TestConservation(t *testing.T) {
	cfg := Config{
		ServiceNs: []float64{800, 900},
		Servers:   []int{1, 1},
		QueueCap:  64,
		Horizon:   0.05,
		Seed:      4,
	}
	res, err := Run(cfg, cbr(t, 2e6))
	if err != nil {
		t.Fatal(err)
	}
	var dropped int64
	for _, d := range res.Dropped {
		dropped += d
	}
	inFlightMax := int64(2 * (64 + 1)) // queues + servers
	diff := res.Offered - res.Delivered - dropped
	if diff < 0 || diff > inFlightMax {
		t.Errorf("conservation: offered %d delivered %d dropped %d (in flight %d)",
			res.Offered, res.Delivered, dropped, diff)
	}
}

// Cross-validation: the DES and the analytic model must agree on
// achieved throughput within 10% in both the offered-bound and the
// capacity-bound regime. The two share per-NF service times but
// nothing else.
func TestAgreesWithAnalyticModel(t *testing.T) {
	model := perfmodel.Default()
	chain := perfmodel.StandardChain()
	knobs := perfmodel.DefaultKnobs(3)
	for i := range knobs {
		knobs[i].Batch = 64
		knobs[i].DMABytes = 2 << 20
	}
	for _, offered := range []float64{300e3, 2.2e6} {
		tr := perfmodel.Traffic{OfferedPPS: offered, FrameBytes: 512, Burstiness: 1}
		analytic, err := model.Evaluate(chain, knobs, tr, perfmodel.EvalOptions{})
		if err != nil {
			t.Fatal(err)
		}
		cfg, err := FromModel(analytic, knobs, 4096, 0.1, 5)
		if err != nil {
			t.Fatal(err)
		}
		des, err := Run(cfg, cbr(t, offered))
		if err != nil {
			t.Fatal(err)
		}
		rel := math.Abs(des.ThroughputPPS-analytic.ThroughputPPS) / analytic.ThroughputPPS
		if rel > 0.10 {
			t.Errorf("offered %.0f: DES %.0f pps vs analytic %.0f pps (%.1f%% apart)",
				offered, des.ThroughputPPS, analytic.ThroughputPPS, rel*100)
		}
	}
}

func TestFromModelValidation(t *testing.T) {
	if _, err := FromModel(perfmodel.Result{}, nil, 16, 1, 1); err == nil {
		t.Error("empty result accepted")
	}
}

// Latency rises sharply as load approaches capacity — basic queueing
// behaviour the analytic model abstracts away.
func TestLatencyGrowsNearSaturation(t *testing.T) {
	cfg := Config{
		ServiceNs:    []float64{900},
		Servers:      []int{1},
		QueueCap:     2048,
		Horizon:      0.1,
		LatencyCapNs: 2e5, // 390 ns buckets: resolve queueing delays
	}
	poisson := func(pps float64) traffic.Arrival {
		a, err := traffic.NewPoisson(pps)
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	cfg.Seed = 6
	light, err := Run(cfg, poisson(0.3e6)) // 27% load
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 6
	heavy, err := Run(cfg, poisson(1.05e6)) // ~95% load
	if err != nil {
		t.Fatal(err)
	}
	if heavy.Latency.Quantile(0.95) < 3*light.Latency.Quantile(0.95) {
		t.Errorf("p95 latency light %.0f ns vs heavy %.0f ns: no queueing growth",
			light.Latency.Quantile(0.95), heavy.Latency.Quantile(0.95))
	}
	_ = env.StandardWorkload // keep the env import meaningful
}
