package sim

// splitMix is SplitMix64 (Steele, Lea & Flood, "Fast Splittable
// Pseudorandom Number Generators", OOPSLA'14): one 64-bit state word
// advanced by a Weyl constant and finalized with two multiply-xorshift
// rounds per draw. It implements math/rand.Source64, replacing the
// default lagged-Fibonacci source whose 607-word table makes seeding
// alone cost tens of microseconds — longer than an entire short-
// horizon simulation — and whose allocation dominated Run's setup.
// Statistical quality comfortably exceeds what a packet arrival
// process needs (it passes BigCrush as the seeding function of
// xoshiro-family generators).
type splitMix struct{ state uint64 }

// newSplitMix returns a source seeded for the given simulation seed.
func newSplitMix(seed int64) *splitMix { return &splitMix{state: uint64(seed)} }

// Seed implements rand.Source.
func (s *splitMix) Seed(seed int64) { s.state = uint64(seed) }

// Uint64 implements rand.Source64.
func (s *splitMix) Uint64() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Int63 implements rand.Source.
func (s *splitMix) Int63() int64 { return int64(s.Uint64() >> 1) }
