// Package sim is a discrete-event simulator of an NF service chain:
// a tandem of FIFO servers with finite queues, driven by any arrival
// process from internal/traffic. It provides an independent check on
// the analytic performance model — the two share per-NF service
// times but nothing else, so agreement on throughput and saturation
// behaviour validates the capacity math — and it produces the
// latency distributions the analytic model cannot (the paper's
// related work cares about delay-sensitive chains).
//
// # Paper mapping
//
// The DES cross-validates perfmodel (the experiment suite's
// "ValidationDES" study); it is not itself a figure driver.
//
// # Concurrency and determinism
//
// A Sim is single-threaded and NOT goroutine-safe; run independent
// replications in separate instances. Runs are deterministic given
// the seed: arrivals draw from a SplitMix64 stream and the event
// queue is a typed 4-ary min-heap with a stable (time, sequence)
// order, so equal-time events pop in insertion order. The event loop
// is zero-alloc in steady state (ring-buffered queue stages, no
// interface{} boxing in the heap) — about 11 allocations per
// 20ms-horizon run, pinned by a perf test.
package sim
