package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMLPConstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := MustMLP([]int{4, 8, 2}, ReLU, Tanh, rng)
	if n.InputDim() != 4 || n.OutputDim() != 2 {
		t.Errorf("dims %d/%d", n.InputDim(), n.OutputDim())
	}
	if n.NumParams() != 4*8+8+8*2+2 {
		t.Errorf("params = %d", n.NumParams())
	}
	if _, err := NewMLP([]int{4}, ReLU, Linear, rng); err == nil {
		t.Error("single-layer spec accepted")
	}
	if _, err := NewMLP([]int{4, 0, 2}, ReLU, Linear, rng); err == nil {
		t.Error("zero-size layer accepted")
	}
	if _, err := NewMLP([]int{4, 2}, ReLU, Linear, nil); err == nil {
		t.Error("nil rng accepted")
	}
}

func TestActivations(t *testing.T) {
	cases := []struct {
		act  Activation
		x    float64
		want float64
	}{
		{Linear, -3, -3},
		{ReLU, -3, 0},
		{ReLU, 2, 2},
		{Tanh, 0, 0},
		{Sigmoid, 0, 0.5},
	}
	for _, c := range cases {
		if got := c.act.apply(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%v(%v) = %v, want %v", c.act, c.x, got, c.want)
		}
	}
	if Tanh.String() != "tanh" || ReLU.String() != "relu" {
		t.Error("activation names")
	}
}

// Gradient check: backprop gradients match central finite differences
// on a random network — the canonical correctness test for any
// hand-written autodiff.
func TestGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	net := MustMLP([]int{3, 5, 4, 2}, Tanh, Linear, rng)
	x := []float64{0.3, -0.8, 0.5}
	target := []float64{0.2, -0.4}

	loss := func() float64 {
		out := net.Forward(x)
		l := 0.0
		for i := range out {
			d := out[i] - target[i]
			l += 0.5 * d * d
		}
		return l
	}

	// Analytic gradients.
	net.ZeroGrad()
	out := net.Forward(x)
	dOut := make([]float64, len(out))
	for i := range out {
		dOut[i] = out[i] - target[i]
	}
	net.Backward(dOut)

	params := net.ParamSlices()
	grads := net.GradSlices()
	const eps = 1e-6
	checked := 0
	for li := range params {
		for j := range params[li] {
			orig := params[li][j]
			params[li][j] = orig + eps
			lPlus := loss()
			params[li][j] = orig - eps
			lMinus := loss()
			params[li][j] = orig
			numeric := (lPlus - lMinus) / (2 * eps)
			analytic := grads[li][j]
			diff := math.Abs(numeric - analytic)
			scale := math.Max(1e-6, math.Abs(numeric)+math.Abs(analytic))
			if diff/scale > 1e-4 {
				t.Fatalf("grad mismatch layer %d idx %d: analytic %v numeric %v", li, j, analytic, numeric)
			}
			checked++
		}
	}
	if checked != net.NumParams() {
		t.Errorf("checked %d of %d params", checked, net.NumParams())
	}
}

// Gradient check with ReLU and sigmoid paths too (different
// derivative branches).
func TestGradientCheckReLUSigmoid(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	net := MustMLP([]int{4, 6, 3}, ReLU, Sigmoid, rng)
	x := []float64{0.5, -0.2, 0.9, -0.7}
	net.ZeroGrad()
	out := net.Forward(x)
	dOut := make([]float64, len(out))
	for i := range out {
		dOut[i] = 1.0 // L = sum(out)
	}
	net.Backward(dOut)
	params := net.ParamSlices()
	grads := net.GradSlices()
	const eps = 1e-6
	loss := func() float64 {
		o := net.Forward(x)
		s := 0.0
		for _, v := range o {
			s += v
		}
		return s
	}
	for li := range params {
		for j := 0; j < len(params[li]); j += 3 { // sample every third param
			orig := params[li][j]
			params[li][j] = orig + eps
			lp := loss()
			params[li][j] = orig - eps
			lm := loss()
			params[li][j] = orig
			numeric := (lp - lm) / (2 * eps)
			if math.Abs(numeric-grads[li][j]) > 1e-4*(1+math.Abs(numeric)) {
				t.Fatalf("grad mismatch layer %d idx %d: %v vs %v", li, j, grads[li][j], numeric)
			}
		}
	}
}

func TestBackwardInputGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net := MustMLP([]int{2, 4, 1}, Tanh, Linear, rng)
	x := []float64{0.4, -0.6}
	net.ZeroGrad()
	net.Forward(x)
	dX := net.Backward([]float64{1})
	// Finite difference on the input.
	const eps = 1e-6
	for i := range x {
		xp := append([]float64(nil), x...)
		xp[i] += eps
		lp := net.Forward(xp)[0]
		xm := append([]float64(nil), x...)
		xm[i] -= eps
		lm := net.Forward(xm)[0]
		numeric := (lp - lm) / (2 * eps)
		if math.Abs(numeric-dX[i]) > 1e-5 {
			t.Errorf("dX[%d] = %v, numeric %v", i, dX[i], numeric)
		}
	}
}

func TestAdamReducesLoss(t *testing.T) {
	// Fit y = sin(x) on a few points; loss must fall by 10x.
	rng := rand.New(rand.NewSource(5))
	net := MustMLP([]int{1, 16, 16, 1}, Tanh, Linear, rng)
	opt := MustAdam(0.01)
	xs := make([][]float64, 32)
	ys := make([]float64, 32)
	for i := range xs {
		x := -2 + 4*float64(i)/31
		xs[i] = []float64{x}
		ys[i] = math.Sin(x)
	}
	lossAt := func() float64 {
		total := 0.0
		for i := range xs {
			d := net.Forward(xs[i])[0] - ys[i]
			total += d * d
		}
		return total / float64(len(xs))
	}
	initial := lossAt()
	for epoch := 0; epoch < 400; epoch++ {
		net.ZeroGrad()
		for i := range xs {
			out := net.Forward(xs[i])
			net.Backward([]float64{out[0] - ys[i]})
		}
		net.ScaleGrad(1 / float64(len(xs)))
		opt.Step(net)
	}
	final := lossAt()
	if final > initial/10 {
		t.Errorf("loss %v -> %v: did not converge", initial, final)
	}
}

func TestAdamValidation(t *testing.T) {
	if _, err := NewAdam(0); err == nil {
		t.Error("zero LR accepted")
	}
}

func TestAdamClipNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	net := MustMLP([]int{2, 2}, Linear, Linear, rng)
	opt := MustAdam(0.1)
	opt.ClipNorm = 0.001
	before := append([]float64(nil), net.ParamSlices()[0]...)
	net.ZeroGrad()
	net.Forward([]float64{100, 100})
	net.Backward([]float64{1000, 1000}) // huge gradients
	opt.Step(net)
	after := net.ParamSlices()[0]
	for i := range before {
		if math.Abs(after[i]-before[i]) > 0.2 {
			t.Errorf("clipped update moved param %d by %v", i, after[i]-before[i])
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := MustMLP([]int{2, 3, 1}, ReLU, Linear, rng)
	b := a.Clone()
	outA := a.Forward([]float64{1, 2})[0]
	outB := b.Forward([]float64{1, 2})[0]
	if outA != outB {
		t.Fatalf("clone differs: %v vs %v", outA, outB)
	}
	// Mutate the clone; the original must not move.
	b.ParamSlices()[0][0] += 1
	outA2 := a.Forward([]float64{1, 2})[0]
	if outA2 != outA {
		t.Error("mutating clone changed original")
	}
}

func TestSoftUpdate(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	target := MustMLP([]int{2, 2}, Linear, Linear, rng)
	src := target.Clone()
	src.ParamSlices()[0][0] = 10
	target.ParamSlices()[0][0] = 0
	if err := target.SoftUpdate(src, 0.1); err != nil {
		t.Fatal(err)
	}
	got := target.ParamSlices()[0][0]
	if math.Abs(got-1.0) > 1e-12 {
		t.Errorf("soft update = %v, want 1.0", got)
	}
	// tau=1 copies exactly.
	if err := target.SoftUpdate(src, 1); err != nil {
		t.Fatal(err)
	}
	if target.ParamSlices()[0][0] != 10 {
		t.Error("tau=1 did not copy")
	}
	if err := target.SoftUpdate(src, 2); err == nil {
		t.Error("tau > 1 accepted")
	}
	other := MustMLP([]int{3, 2}, Linear, Linear, rng)
	if err := target.SoftUpdate(other, 0.5); err == nil {
		t.Error("topology mismatch accepted")
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	a := MustMLP([]int{3, 7, 2}, ReLU, Tanh, rng)
	data, err := a.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var b Network
	if err := b.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	x := []float64{0.1, -0.5, 0.9}
	outA := append([]float64(nil), a.Forward(x)...)
	outB := b.Forward(x)
	for i := range outA {
		if outA[i] != outB[i] {
			t.Fatalf("restored network differs at %d: %v vs %v", i, outA[i], outB[i])
		}
	}
	if err := b.UnmarshalBinary([]byte("junk")); err == nil {
		t.Error("junk deserialized")
	}
}

func TestCopyParamsFrom(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	a := MustMLP([]int{2, 3, 1}, ReLU, Linear, rng)
	b := MustMLP([]int{2, 3, 1}, ReLU, Linear, rng)
	if err := b.CopyParamsFrom(a); err != nil {
		t.Fatal(err)
	}
	x := []float64{0.5, 0.5}
	if a.Forward(x)[0] != b.Forward(x)[0] {
		t.Error("copy did not synchronize outputs")
	}
	c := MustMLP([]int{3, 1}, ReLU, Linear, rng)
	if err := c.CopyParamsFrom(a); err == nil {
		t.Error("mismatched copy accepted")
	}
}

// Property: tanh-output networks always emit values in [-1, 1] — the
// DDPG actor relies on this to produce valid actions.
func TestTanhOutputBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	net := MustMLP([]int{4, 16, 3}, ReLU, Tanh, rng)
	f := func(a, b, c, d float64) bool {
		in := []float64{sanitize(a), sanitize(b), sanitize(c), sanitize(d)}
		out := net.Forward(in)
		for _, v := range out {
			if math.IsNaN(v) || v < -1 || v > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func sanitize(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return math.Mod(x, 100)
}
