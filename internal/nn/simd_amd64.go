//go:build amd64

package nn

// Assembly kernel declarations (simd_amd64.s).

//go:noescape
func dot4asm(w, x0, x1, x2, x3 *float64, n int) (s0, s1, s2, s3 float64)

//go:noescape
func axpyasm(alpha float64, x, y *float64, n int)

//go:noescape
func adamasm(p, grad, m, v *float64, n int, beta1, beta2, lr, eps, b1c, b2c float64)

//go:noescape
func axpbyasm(tau float64, x, y *float64, n int)

//go:noescape
func scaleasm(f float64, x *float64, n int)

// float32 kernels (8 lanes per YMM instead of 4).

//go:noescape
func dot4asmf32(w, x0, x1, x2, x3 *float32, n int) (s0, s1, s2, s3 float32)

//go:noescape
func axpyasmf32(alpha float32, x, y *float32, n int)

//go:noescape
func adamasmf32(p, grad, m, v *float32, n int, beta1, beta2, lr, eps, b1c, b2c float32)

//go:noescape
func axpbyasmf32(tau float32, x, y *float32, n int)

//go:noescape
func scaleasmf32(f float32, x *float32, n int)

func cpuidx(leaf, sub uint32) (a, b, c, d uint32)

func xgetbv0() (eax, edx uint32)

// useSIMD gates the AVX2+FMA kernels. It requires CPU support for
// AVX2 and FMA plus OS support for saving YMM state (OSXSAVE/XGETBV).
var useSIMD = detectAVX2FMA()

func detectAVX2FMA() bool {
	maxID, _, _, _ := cpuidx(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, c1, _ := cpuidx(1, 0)
	const (
		fmaBit     = 1 << 12
		osxsaveBit = 1 << 27
		avxBit     = 1 << 28
	)
	if c1&fmaBit == 0 || c1&osxsaveBit == 0 || c1&avxBit == 0 {
		return false
	}
	xcr0, _ := xgetbv0()
	if xcr0&0x6 != 0x6 { // XMM and YMM state enabled by the OS
		return false
	}
	_, b7, _, _ := cpuidx(7, 0)
	const avx2Bit = 1 << 5
	return b7&avx2Bit != 0
}
