// AVX2+FMA kernels for the batched minibatch path. Selected at init
// by detectAVX2FMA (simd_amd64.go); the pure-Go kernels in batch.go
// are the fallback and the reference implementation.

#include "textflag.h"

// func cpuidx(leaf, sub uint32) (a, b, c, d uint32)
TEXT ·cpuidx(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, a+8(FP)
	MOVL BX, b+12(FP)
	MOVL CX, c+16(FP)
	MOVL DX, d+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func dot4asm(w, x0, x1, x2, x3 *float64, n int) (s0, s1, s2, s3 float64)
//
// Four simultaneous dot products of one weight row against four input
// rows: the weight vector is loaded once per 4 elements and feeds four
// independent FMA accumulator chains.
TEXT ·dot4asm(SB), NOSPLIT, $0-80
	MOVQ w+0(FP), SI
	MOVQ x0+8(FP), R8
	MOVQ x1+16(FP), R9
	MOVQ x2+24(FP), R10
	MOVQ x3+32(FP), R11
	MOVQ n+40(FP), CX
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	MOVQ CX, DX
	SHRQ $2, DX
	JZ   reduce

vloop:
	VMOVUPD (SI), Y4
	VFMADD231PD (R8), Y4, Y0
	VFMADD231PD (R9), Y4, Y1
	VFMADD231PD (R10), Y4, Y2
	VFMADD231PD (R11), Y4, Y3
	ADDQ $32, SI
	ADDQ $32, R8
	ADDQ $32, R9
	ADDQ $32, R10
	ADDQ $32, R11
	DECQ DX
	JNZ  vloop

reduce:
	VEXTRACTF128 $1, Y0, X5
	VADDPD  X5, X0, X0
	VHADDPD X0, X0, X0
	VEXTRACTF128 $1, Y1, X5
	VADDPD  X5, X1, X1
	VHADDPD X1, X1, X1
	VEXTRACTF128 $1, Y2, X5
	VADDPD  X5, X2, X2
	VHADDPD X2, X2, X2
	VEXTRACTF128 $1, Y3, X5
	VADDPD  X5, X3, X3
	VHADDPD X3, X3, X3
	ANDQ $3, CX
	JZ   done

stail:
	VMOVSD (SI), X4
	VMOVSD (R8), X5
	VFMADD231SD X5, X4, X0
	VMOVSD (R9), X5
	VFMADD231SD X5, X4, X1
	VMOVSD (R10), X5
	VFMADD231SD X5, X4, X2
	VMOVSD (R11), X5
	VFMADD231SD X5, X4, X3
	ADDQ $8, SI
	ADDQ $8, R8
	ADDQ $8, R9
	ADDQ $8, R10
	ADDQ $8, R11
	DECQ CX
	JNZ  stail

done:
	VMOVSD X0, s0+48(FP)
	VMOVSD X1, s1+56(FP)
	VMOVSD X2, s2+64(FP)
	VMOVSD X3, s3+72(FP)
	VZEROUPPER
	RET

// func axpyasm(alpha float64, x, y *float64, n int)
//
// y[0:n] += alpha * x[0:n].
TEXT ·axpyasm(SB), NOSPLIT, $0-32
	VBROADCASTSD alpha+0(FP), Y0
	MOVQ x+8(FP), SI
	MOVQ y+16(FP), DI
	MOVQ n+24(FP), CX
	MOVQ CX, DX
	SHRQ $3, DX
	JZ   ax4

ax8loop:
	VMOVUPD (DI), Y1
	VMOVUPD 32(DI), Y2
	VFMADD231PD (SI), Y0, Y1
	VFMADD231PD 32(SI), Y0, Y2
	VMOVUPD Y1, (DI)
	VMOVUPD Y2, 32(DI)
	ADDQ $64, SI
	ADDQ $64, DI
	DECQ DX
	JNZ  ax8loop

ax4:
	TESTQ $4, CX
	JZ axtail
	VMOVUPD (DI), Y1
	VFMADD231PD (SI), Y0, Y1
	VMOVUPD Y1, (DI)
	ADDQ $32, SI
	ADDQ $32, DI

axtail:
	ANDQ $3, CX
	JZ   axdone

axstail:
	VMOVSD (DI), X1
	VMOVSD (SI), X2
	VFMADD231SD X2, X0, X1
	VMOVSD X1, (DI)
	ADDQ $8, SI
	ADDQ $8, DI
	DECQ CX
	JNZ  axstail

axdone:
	VZEROUPPER
	RET

// func adamasm(p, grad, m, v *float64, n int, beta1, beta2, lr, eps, b1c, b2c float64)
//
// One Adam update over a parameter slice, 4 doubles per iteration.
// The arithmetic (two moment EMAs, bias-corrected divides, sqrt)
// matches the scalar Go loop operation for operation.
TEXT ·adamasm(SB), NOSPLIT, $0-88
	MOVQ p+0(FP), DI
	MOVQ grad+8(FP), SI
	MOVQ m+16(FP), R8
	MOVQ v+24(FP), R9
	MOVQ n+32(FP), CX
	VBROADCASTSD beta1+40(FP), Y8
	VBROADCASTSD beta2+48(FP), Y9
	VBROADCASTSD lr+56(FP), Y10
	VBROADCASTSD eps+64(FP), Y11
	VBROADCASTSD b1c+72(FP), Y12
	VBROADCASTSD b2c+80(FP), Y13
	// Y14 = 1-beta1, Y15 = 1-beta2
	MOVQ $0x3FF0000000000000, AX // 1.0
	MOVQ AX, X0
	VBROADCASTSD X0, Y0
	VSUBPD Y8, Y0, Y14
	VSUBPD Y9, Y0, Y15
	MOVQ CX, DX
	SHRQ $2, DX
	JZ   adamtail

adamloop:
	// Mirrors the scalar Go loop operation for operation (no FMA
	// contraction) so results are bit-identical.
	VMOVUPD (SI), Y1            // g
	VMOVUPD (R8), Y2            // m
	VMOVUPD (R9), Y3            // v
	VMULPD Y8, Y2, Y2           // beta1*m
	VMULPD Y14, Y1, Y4          // (1-beta1)*g
	VADDPD Y4, Y2, Y2           // m'
	VMULPD Y15, Y1, Y4          // (1-beta2)*g
	VMULPD Y1, Y4, Y4           // (1-beta2)*g*g
	VMULPD Y9, Y3, Y3           // beta2*v
	VADDPD Y4, Y3, Y3           // v'
	VMOVUPD Y2, (R8)
	VMOVUPD Y3, (R9)
	VDIVPD Y12, Y2, Y5          // mHat = m'/b1c
	VDIVPD Y13, Y3, Y6          // vHat = v'/b2c
	VSQRTPD Y6, Y6
	VADDPD Y11, Y6, Y6          // sqrt(vHat)+eps
	VMULPD Y10, Y5, Y5          // lr*mHat
	VDIVPD Y6, Y5, Y5           // step
	VMOVUPD (DI), Y7
	VSUBPD Y5, Y7, Y7
	VMOVUPD Y7, (DI)
	ADDQ $32, DI
	ADDQ $32, SI
	ADDQ $32, R8
	ADDQ $32, R9
	DECQ DX
	JNZ  adamloop

adamtail:
	ANDQ $3, CX
	JZ   adamdone

adamstail:
	VMOVSD (SI), X1
	VMOVSD (R8), X2
	VMOVSD (R9), X3
	VMULSD X8, X2, X2
	VMULSD X14, X1, X4
	VADDSD X4, X2, X2
	VMULSD X15, X1, X4
	VMULSD X1, X4, X4
	VMULSD X9, X3, X3
	VADDSD X4, X3, X3
	VMOVSD X2, (R8)
	VMOVSD X3, (R9)
	VDIVSD X12, X2, X5
	VDIVSD X13, X3, X6
	VSQRTSD X6, X6, X6
	VADDSD X11, X6, X6
	VMULSD X10, X5, X5
	VDIVSD X6, X5, X5
	VMOVSD (DI), X7
	VSUBSD X5, X7, X7
	VMOVSD X7, (DI)
	ADDQ $8, DI
	ADDQ $8, SI
	ADDQ $8, R8
	ADDQ $8, R9
	DECQ CX
	JNZ  adamstail

adamdone:
	VZEROUPPER
	RET

// func axpbyasm(tau float64, x, y *float64, n int)
//
// y = tau*x + (1-tau)*y, with mul/mul/add kept separate so the result
// is bit-identical to the scalar SoftUpdate loop.
TEXT ·axpbyasm(SB), NOSPLIT, $0-32
	VBROADCASTSD tau+0(FP), Y0
	MOVQ x+8(FP), SI
	MOVQ y+16(FP), DI
	MOVQ n+24(FP), CX
	// Y8 = 1-tau
	MOVQ $0x3FF0000000000000, AX
	MOVQ AX, X1
	VBROADCASTSD X1, Y1
	VSUBPD Y0, Y1, Y8
	MOVQ CX, DX
	SHRQ $2, DX
	JZ   axpbytail

axpbyloop:
	VMULPD (SI), Y0, Y2         // tau*x
	VMULPD (DI), Y8, Y3         // (1-tau)*y
	VADDPD Y3, Y2, Y2
	VMOVUPD Y2, (DI)
	ADDQ $32, SI
	ADDQ $32, DI
	DECQ DX
	JNZ  axpbyloop

axpbytail:
	ANDQ $3, CX
	JZ   axpbydone

axpbystail:
	VMOVSD (SI), X2
	VMULSD X0, X2, X2
	VMOVSD (DI), X3
	VMULSD X8, X3, X3
	VADDSD X3, X2, X2
	VMOVSD X2, (DI)
	ADDQ $8, SI
	ADDQ $8, DI
	DECQ CX
	JNZ  axpbystail

axpbydone:
	VZEROUPPER
	RET

// func scaleasm(f float64, x *float64, n int)
//
// x *= f.
TEXT ·scaleasm(SB), NOSPLIT, $0-24
	VBROADCASTSD f+0(FP), Y0
	MOVQ x+8(FP), DI
	MOVQ n+16(FP), CX
	MOVQ CX, DX
	SHRQ $2, DX
	JZ   scaletail

scaleloop:
	VMULPD (DI), Y0, Y1
	VMOVUPD Y1, (DI)
	ADDQ $32, DI
	DECQ DX
	JNZ  scaleloop

scaletail:
	ANDQ $3, CX
	JZ   scaledone

scalestail:
	VMOVSD (DI), X1
	VMULSD X0, X1, X1
	VMOVSD X1, (DI)
	ADDQ $8, DI
	DECQ CX
	JNZ  scalestail

scaledone:
	VZEROUPPER
	RET

// ---- float32 kernels: same structure as the float64 kernels above,
// with 8 lanes per YMM register instead of 4 and PS/SS arithmetic.
// The f32 path has no bit-parity contract with the pure-Go fallbacks
// (FMA contraction and reassociated sums round differently); the
// reference implementations live in batch32.go.

// func dot4asmf32(w, x0, x1, x2, x3 *float32, n int) (s0, s1, s2, s3 float32)
//
// Four simultaneous f32 dot products of one weight row against four
// input rows, 8 elements per iteration.
TEXT ·dot4asmf32(SB), NOSPLIT, $0-64
	MOVQ w+0(FP), SI
	MOVQ x0+8(FP), R8
	MOVQ x1+16(FP), R9
	MOVQ x2+24(FP), R10
	MOVQ x3+32(FP), R11
	MOVQ n+40(FP), CX
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	MOVQ CX, DX
	SHRQ $3, DX
	JZ   f32reduce

f32vloop:
	VMOVUPS (SI), Y4
	VFMADD231PS (R8), Y4, Y0
	VFMADD231PS (R9), Y4, Y1
	VFMADD231PS (R10), Y4, Y2
	VFMADD231PS (R11), Y4, Y3
	ADDQ $32, SI
	ADDQ $32, R8
	ADDQ $32, R9
	ADDQ $32, R10
	ADDQ $32, R11
	DECQ DX
	JNZ  f32vloop

f32reduce:
	VEXTRACTF128 $1, Y0, X5
	VADDPS  X5, X0, X0
	VHADDPS X0, X0, X0
	VHADDPS X0, X0, X0
	VEXTRACTF128 $1, Y1, X5
	VADDPS  X5, X1, X1
	VHADDPS X1, X1, X1
	VHADDPS X1, X1, X1
	VEXTRACTF128 $1, Y2, X5
	VADDPS  X5, X2, X2
	VHADDPS X2, X2, X2
	VHADDPS X2, X2, X2
	VEXTRACTF128 $1, Y3, X5
	VADDPS  X5, X3, X3
	VHADDPS X3, X3, X3
	VHADDPS X3, X3, X3
	ANDQ $7, CX
	JZ   f32done

f32stail:
	VMOVSS (SI), X4
	VMOVSS (R8), X5
	VFMADD231SS X5, X4, X0
	VMOVSS (R9), X5
	VFMADD231SS X5, X4, X1
	VMOVSS (R10), X5
	VFMADD231SS X5, X4, X2
	VMOVSS (R11), X5
	VFMADD231SS X5, X4, X3
	ADDQ $4, SI
	ADDQ $4, R8
	ADDQ $4, R9
	ADDQ $4, R10
	ADDQ $4, R11
	DECQ CX
	JNZ  f32stail

f32done:
	VMOVSS X0, s0+48(FP)
	VMOVSS X1, s1+52(FP)
	VMOVSS X2, s2+56(FP)
	VMOVSS X3, s3+60(FP)
	VZEROUPPER
	RET

// func axpyasmf32(alpha float32, x, y *float32, n int)
//
// y[0:n] += alpha * x[0:n], 16 floats per main-loop iteration.
TEXT ·axpyasmf32(SB), NOSPLIT, $0-32
	VBROADCASTSS alpha+0(FP), Y0
	MOVQ x+8(FP), SI
	MOVQ y+16(FP), DI
	MOVQ n+24(FP), CX
	MOVQ CX, DX
	SHRQ $4, DX
	JZ   f32ax8

f32ax16loop:
	VMOVUPS (DI), Y1
	VMOVUPS 32(DI), Y2
	VFMADD231PS (SI), Y0, Y1
	VFMADD231PS 32(SI), Y0, Y2
	VMOVUPS Y1, (DI)
	VMOVUPS Y2, 32(DI)
	ADDQ $64, SI
	ADDQ $64, DI
	DECQ DX
	JNZ  f32ax16loop

f32ax8:
	TESTQ $8, CX
	JZ f32axtail
	VMOVUPS (DI), Y1
	VFMADD231PS (SI), Y0, Y1
	VMOVUPS Y1, (DI)
	ADDQ $32, SI
	ADDQ $32, DI

f32axtail:
	ANDQ $7, CX
	JZ   f32axdone

f32axstail:
	VMOVSS (DI), X1
	VMOVSS (SI), X2
	VFMADD231SS X2, X0, X1
	VMOVSS X1, (DI)
	ADDQ $4, SI
	ADDQ $4, DI
	DECQ CX
	JNZ  f32axstail

f32axdone:
	VZEROUPPER
	RET

// func adamasmf32(p, grad, m, v *float32, n int, beta1, beta2, lr, eps, b1c, b2c float32)
//
// One Adam update over a float32 parameter slice, 8 floats per
// iteration. Mirrors the StepF32 scalar loop (no FMA contraction in
// the EMA updates); VSQRTSS/VSQRTPS round once where the Go fallback
// rounds through float64, a ≤1-ulp difference the f32 contract
// allows.
TEXT ·adamasmf32(SB), NOSPLIT, $0-64
	MOVQ p+0(FP), DI
	MOVQ grad+8(FP), SI
	MOVQ m+16(FP), R8
	MOVQ v+24(FP), R9
	MOVQ n+32(FP), CX
	VBROADCASTSS beta1+40(FP), Y8
	VBROADCASTSS beta2+44(FP), Y9
	VBROADCASTSS lr+48(FP), Y10
	VBROADCASTSS eps+52(FP), Y11
	VBROADCASTSS b1c+56(FP), Y12
	VBROADCASTSS b2c+60(FP), Y13
	// Y14 = 1-beta1, Y15 = 1-beta2
	MOVL $0x3F800000, AX // 1.0f
	MOVL AX, X0
	VBROADCASTSS X0, Y0
	VSUBPS Y8, Y0, Y14
	VSUBPS Y9, Y0, Y15
	MOVQ CX, DX
	SHRQ $3, DX
	JZ   f32adamtail

f32adamloop:
	VMOVUPS (SI), Y1            // g
	VMOVUPS (R8), Y2            // m
	VMOVUPS (R9), Y3            // v
	VMULPS Y8, Y2, Y2           // beta1*m
	VMULPS Y14, Y1, Y4          // (1-beta1)*g
	VADDPS Y4, Y2, Y2           // m'
	VMULPS Y15, Y1, Y4          // (1-beta2)*g
	VMULPS Y1, Y4, Y4           // (1-beta2)*g*g
	VMULPS Y9, Y3, Y3           // beta2*v
	VADDPS Y4, Y3, Y3           // v'
	VMOVUPS Y2, (R8)
	VMOVUPS Y3, (R9)
	VDIVPS Y12, Y2, Y5          // mHat = m'/b1c
	VDIVPS Y13, Y3, Y6          // vHat = v'/b2c
	VSQRTPS Y6, Y6
	VADDPS Y11, Y6, Y6          // sqrt(vHat)+eps
	VMULPS Y10, Y5, Y5          // lr*mHat
	VDIVPS Y6, Y5, Y5           // step
	VMOVUPS (DI), Y7
	VSUBPS Y5, Y7, Y7
	VMOVUPS Y7, (DI)
	ADDQ $32, DI
	ADDQ $32, SI
	ADDQ $32, R8
	ADDQ $32, R9
	DECQ DX
	JNZ  f32adamloop

f32adamtail:
	ANDQ $7, CX
	JZ   f32adamdone

f32adamstail:
	VMOVSS (SI), X1
	VMOVSS (R8), X2
	VMOVSS (R9), X3
	VMULSS X8, X2, X2
	VMULSS X14, X1, X4
	VADDSS X4, X2, X2
	VMULSS X15, X1, X4
	VMULSS X1, X4, X4
	VMULSS X9, X3, X3
	VADDSS X4, X3, X3
	VMOVSS X2, (R8)
	VMOVSS X3, (R9)
	VDIVSS X12, X2, X5
	VDIVSS X13, X3, X6
	VSQRTSS X6, X6, X6
	VADDSS X11, X6, X6
	VMULSS X10, X5, X5
	VDIVSS X6, X5, X5
	VMOVSS (DI), X7
	VSUBSS X5, X7, X7
	VMOVSS X7, (DI)
	ADDQ $4, DI
	ADDQ $4, SI
	ADDQ $4, R8
	ADDQ $4, R9
	DECQ CX
	JNZ  f32adamstail

f32adamdone:
	VZEROUPPER
	RET

// func axpbyasmf32(tau float32, x, y *float32, n int)
//
// y = tau*x + (1-tau)*y — the f32 soft-update kernel.
TEXT ·axpbyasmf32(SB), NOSPLIT, $0-32
	VBROADCASTSS tau+0(FP), Y0
	MOVQ x+8(FP), SI
	MOVQ y+16(FP), DI
	MOVQ n+24(FP), CX
	// Y8 = 1-tau
	MOVL $0x3F800000, AX
	MOVL AX, X1
	VBROADCASTSS X1, Y1
	VSUBPS Y0, Y1, Y8
	MOVQ CX, DX
	SHRQ $3, DX
	JZ   f32axpbytail

f32axpbyloop:
	VMULPS (SI), Y0, Y2         // tau*x
	VMULPS (DI), Y8, Y3         // (1-tau)*y
	VADDPS Y3, Y2, Y2
	VMOVUPS Y2, (DI)
	ADDQ $32, SI
	ADDQ $32, DI
	DECQ DX
	JNZ  f32axpbyloop

f32axpbytail:
	ANDQ $7, CX
	JZ   f32axpbydone

f32axpbystail:
	VMOVSS (SI), X2
	VMULSS X0, X2, X2
	VMOVSS (DI), X3
	VMULSS X8, X3, X3
	VADDSS X3, X2, X2
	VMOVSS X2, (DI)
	ADDQ $4, SI
	ADDQ $4, DI
	DECQ CX
	JNZ  f32axpbystail

f32axpbydone:
	VZEROUPPER
	RET

// func scaleasmf32(f float32, x *float32, n int)
//
// x *= f.
TEXT ·scaleasmf32(SB), NOSPLIT, $0-24
	VBROADCASTSS f+0(FP), Y0
	MOVQ x+8(FP), DI
	MOVQ n+16(FP), CX
	MOVQ CX, DX
	SHRQ $3, DX
	JZ   f32scaletail

f32scaleloop:
	VMULPS (DI), Y0, Y1
	VMOVUPS Y1, (DI)
	ADDQ $32, DI
	DECQ DX
	JNZ  f32scaleloop

f32scaletail:
	ANDQ $7, CX
	JZ   f32scaledone

f32scalestail:
	VMOVSS (DI), X1
	VMULSS X0, X1, X1
	VMOVSS X1, (DI)
	ADDQ $4, DI
	DECQ CX
	JNZ  f32scalestail

f32scaledone:
	VZEROUPPER
	RET
