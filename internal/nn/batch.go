package nn

import "math"

// This file is the minibatch fast path: ForwardBatch/BackwardBatch
// process a whole row-major [rows × dim] matrix per call with
// preallocated, layer-owned scratch buffers (zero allocations once
// warm) and ILP-friendly unrolled inner kernels. The scalar
// Forward/Backward path is untouched so single-state inference and
// gob checkpoints behave exactly as before; the batched path is free
// to reassociate floating-point sums for speed.

// dot computes the inner product of a and b (len(b) >= len(a)) with
// four accumulators. The scalar loop `sum += a[i]*b[i]` serializes on
// the add's floating-point latency; four independent chains keep the
// FMA pipeline busy, which is where most of the minibatch speedup
// comes from.
func dot(a, b []float64) float64 {
	n := len(a)
	b = b[:n]
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= n; i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	for ; i < n; i++ {
		s0 += a[i] * b[i]
	}
	return (s0 + s1) + (s2 + s3)
}

// dot4 computes the inner products of w against four input rows at
// once: the weight row is loaded once per element, and the eight
// accumulator chains (two per row) saturate both the FP latency and
// throughput limits of a scalar core.
func dot4(w, x0, x1, x2, x3 []float64) (r0, r1, r2, r3 float64) {
	n := len(w)
	x0, x1, x2, x3 = x0[:n], x1[:n], x2[:n], x3[:n]
	var a0, a1, a2, a3, b0, b1, b2, b3 float64
	i := 0
	for ; i+2 <= n; i += 2 {
		w0, w1 := w[i], w[i+1]
		a0 += w0 * x0[i]
		b0 += w1 * x0[i+1]
		a1 += w0 * x1[i]
		b1 += w1 * x1[i+1]
		a2 += w0 * x2[i]
		b2 += w1 * x2[i+1]
		a3 += w0 * x3[i]
		b3 += w1 * x3[i+1]
	}
	if i < n {
		w0 := w[i]
		a0 += w0 * x0[i]
		a1 += w0 * x1[i]
		a2 += w0 * x2[i]
		a3 += w0 * x3[i]
	}
	return a0 + b0, a1 + b1, a2 + b2, a3 + b3
}

// axpy computes y += alpha*x. The iterations are independent, so the
// plain loop already pipelines well.
func axpy(alpha float64, x, y []float64) {
	y = y[:len(x)]
	for i, xv := range x {
		y[i] += alpha * xv
	}
}

// dot4rows dispatches the four-row dot product to the AVX2 kernel
// when available.
func dot4rows(w, x0, x1, x2, x3 []float64) (float64, float64, float64, float64) {
	if useSIMD {
		return dot4asm(&w[0], &x0[0], &x1[0], &x2[0], &x3[0], len(w))
	}
	return dot4(w, x0, x1, x2, x3)
}

// axpyFast dispatches y += alpha*x to the AVX2 kernel when available.
func axpyFast(alpha float64, x, y []float64) {
	if useSIMD {
		axpyasm(alpha, &x[0], &y[0], len(x))
		return
	}
	axpy(alpha, x, y)
}

// applyBatch evaluates the activation elementwise with the branch
// hoisted out of the loop.
func applyBatch(a Activation, z, y []float64) {
	y = y[:len(z)]
	switch a {
	case ReLU:
		// 0.5*(v+|v|) is exactly max(0, v) and branchless: ReLU
		// pre-activations are unpredictable, so a compare here costs
		// a mispredict every other element.
		for i, v := range z {
			y[i] = 0.5 * (v + math.Abs(v))
		}
	case Tanh:
		for i, v := range z {
			y[i] = math.Tanh(v)
		}
	case Sigmoid:
		for i, v := range z {
			y[i] = 1 / (1 + math.Exp(-v))
		}
	default:
		copy(y, z)
	}
}

// derivBatch computes dz = dY ⊙ act'(z, y) elementwise.
func derivBatch(a Activation, dY, z, y, dz []float64) {
	dz = dz[:len(dY)]
	switch a {
	case ReLU:
		// Branchless 1/0 step via Copysign. At exactly z == +0 this
		// passes the gradient where the scalar path drops it; the
		// subgradient at 0 is arbitrary and the case has measure zero.
		z = z[:len(dY)]
		for i, v := range z {
			dz[i] = dY[i] * (0.5 * (math.Copysign(1, v) + 1))
		}
	case Tanh:
		y = y[:len(dY)]
		for i, yv := range y {
			dz[i] = dY[i] * (1 - yv*yv)
		}
	case Sigmoid:
		y = y[:len(dY)]
		for i, yv := range y {
			dz[i] = dY[i] * yv * (1 - yv)
		}
	default:
		copy(dz, dY)
	}
}

// grow returns buf resized to n, reallocating only when capacity is
// insufficient — the steady state (fixed minibatch size) never
// allocates.
func grow(buf []float64, n int) []float64 {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]float64, n)
}

// ForwardBatch computes y_r = act(W x_r + b) for rows row-major
// inputs, caching activations for BackwardBatch. The returned slice
// ([rows × Out], owned by the layer) is valid until the next
// ForwardBatch call.
func (d *Dense) ForwardBatch(x []float64, rows int) []float64 {
	if len(x) < rows*d.In {
		panic("nn: ForwardBatch input shorter than rows*In")
	}
	d.bx = grow(d.bx, rows*d.In)
	d.bz = grow(d.bz, rows*d.Out)
	d.by = grow(d.by, rows*d.Out)
	copy(d.bx, x[:rows*d.In])
	r := 0
	for ; r+4 <= rows; r += 4 {
		x0 := d.bx[r*d.In : (r+1)*d.In]
		x1 := d.bx[(r+1)*d.In : (r+2)*d.In]
		x2 := d.bx[(r+2)*d.In : (r+3)*d.In]
		x3 := d.bx[(r+3)*d.In : (r+4)*d.In]
		for o := 0; o < d.Out; o++ {
			s0, s1, s2, s3 := dot4rows(d.W[o*d.In:(o+1)*d.In], x0, x1, x2, x3)
			b := d.B[o]
			d.bz[r*d.Out+o] = b + s0
			d.bz[(r+1)*d.Out+o] = b + s1
			d.bz[(r+2)*d.Out+o] = b + s2
			d.bz[(r+3)*d.Out+o] = b + s3
		}
	}
	for ; r < rows; r++ {
		xr := d.bx[r*d.In : (r+1)*d.In]
		zr := d.bz[r*d.Out : (r+1)*d.Out]
		for o := 0; o < d.Out; o++ {
			zr[o] = d.B[o] + dot(d.W[o*d.In:(o+1)*d.In], xr)
		}
	}
	applyBatch(d.Act, d.bz, d.by)
	return d.by
}

// BackwardBatch consumes dL/dY for the rows of the preceding
// ForwardBatch, accumulates dW/dB over the whole minibatch, and
// returns dL/dX ([rows × In], owned by the layer).
func (d *Dense) BackwardBatch(dY []float64, rows int) []float64 {
	return d.backwardBatch(dY, rows, true, rows)
}

// backwardBatch is the shared backward kernel: parameter gradients
// accumulate from the first gradRows rows only (0 = none, rows = the
// whole minibatch), dX is computed for every row when needDX. The
// split is what lets the fused DDPG learn step push a regression
// half-batch and an action-gradient half-batch through one pass.
func (d *Dense) backwardBatch(dY []float64, rows int, needDX bool, gradRows int) []float64 {
	if len(dY) < rows*d.Out {
		panic("nn: BackwardBatch gradient shorter than rows*Out")
	}
	if gradRows > rows {
		gradRows = rows
	}
	d.bdz = grow(d.bdz, rows*d.Out)
	derivBatch(d.Act, dY[:rows*d.Out], d.bz, d.by, d.bdz)
	for r := 0; r < gradRows; r++ {
		dzr := d.bdz[r*d.Out : (r+1)*d.Out]
		xr := d.bx[r*d.In : (r+1)*d.In]
		for o, dz := range dzr {
			if dz == 0 {
				continue // ReLU zeros are common; skip the row work
			}
			d.dB[o] += dz
			axpyFast(dz, xr, d.dW[o*d.In:(o+1)*d.In])
		}
	}
	if !needDX {
		return nil
	}
	// dX = dz × W, computed against a transposed weight copy so each
	// dX element is a contiguous dot product (dot4 ILP) instead of a
	// strided read-modify-write accumulation.
	d.wt = grow(d.wt, d.In*d.Out)
	for o := 0; o < d.Out; o++ {
		row := d.W[o*d.In : (o+1)*d.In]
		for i, w := range row {
			d.wt[i*d.Out+o] = w
		}
	}
	d.bdx = grow(d.bdx, rows*d.In)
	r := 0
	for ; r+4 <= rows; r += 4 {
		dz0 := d.bdz[r*d.Out : (r+1)*d.Out]
		dz1 := d.bdz[(r+1)*d.Out : (r+2)*d.Out]
		dz2 := d.bdz[(r+2)*d.Out : (r+3)*d.Out]
		dz3 := d.bdz[(r+3)*d.Out : (r+4)*d.Out]
		for i := 0; i < d.In; i++ {
			s0, s1, s2, s3 := dot4rows(d.wt[i*d.Out:(i+1)*d.Out], dz0, dz1, dz2, dz3)
			d.bdx[r*d.In+i] = s0
			d.bdx[(r+1)*d.In+i] = s1
			d.bdx[(r+2)*d.In+i] = s2
			d.bdx[(r+3)*d.In+i] = s3
		}
	}
	for ; r < rows; r++ {
		dzr := d.bdz[r*d.Out : (r+1)*d.Out]
		dxr := d.bdx[r*d.In : (r+1)*d.In]
		for i := 0; i < d.In; i++ {
			dxr[i] = dot(dzr, d.wt[i*d.Out:(i+1)*d.Out])
		}
	}
	return d.bdx
}

// ForwardBatch runs the network over rows row-major inputs
// ([rows × InputDim]), returning [rows × OutputDim]. The result is
// owned by the last layer and valid until its next forward call.
func (n *Network) ForwardBatch(x []float64, rows int) []float64 {
	out := x
	for _, l := range n.layers {
		out = l.ForwardBatch(out, rows)
	}
	return out
}

// BackwardBatch propagates dL/dOutput ([rows × OutputDim]) for the
// rows of the preceding ForwardBatch through the network, summing
// parameter gradients over the minibatch, and returns dL/dInput
// ([rows × InputDim]).
func (n *Network) BackwardBatch(dOut []float64, rows int) []float64 {
	return n.backwardBatch(dOut, rows, true, rows)
}

// BackwardBatchParams is BackwardBatch for callers that only need
// parameter gradients: the first layer's input gradient — pure
// overhead in a critic or actor regression step — is skipped.
func (n *Network) BackwardBatchParams(dOut []float64, rows int) {
	n.backwardBatch(dOut, rows, false, rows)
}

// BackwardBatchInput propagates input gradients WITHOUT accumulating
// any parameter gradients — the DDPG actor update pushes dQ/da back
// through the critic and then throws the critic's own gradients
// away, so not computing them saves half the pass.
func (n *Network) BackwardBatchInput(dOut []float64, rows int) []float64 {
	return n.backwardBatch(dOut, rows, true, 0)
}

// BackwardBatchSplit propagates dL/dOutput for ALL rows of the
// preceding ForwardBatch but accumulates parameter gradients from the
// FIRST gradRows rows only, returning dL/dInput for every row. It is
// the fused DDPG critic pass: rows [0, gradRows) carry the critic
// regression (their parameter gradients are kept, per-row identical
// to a separate BackwardBatchParams call), rows [gradRows, rows)
// carry dQ/da probes whose input gradients flow to the actor (per-row
// identical to a separate BackwardBatchInput call). One pass replaces
// two, transposing each weight matrix once instead of twice.
func (n *Network) BackwardBatchSplit(dOut []float64, rows, gradRows int) []float64 {
	return n.backwardBatch(dOut, rows, true, gradRows)
}

func (n *Network) backwardBatch(dOut []float64, rows int, needInputDX bool, gradRows int) []float64 {
	d := dOut
	for i := len(n.layers) - 1; i >= 0; i-- {
		needDX := i > 0 || needInputDX
		d = n.layers[i].backwardBatch(d, rows, needDX, gradRows)
	}
	return d
}
