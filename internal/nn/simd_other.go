//go:build !amd64

package nn

// Non-amd64 builds use the pure-Go kernels in batch.go. useSIMD is a
// var (always false here) so tests that toggle it compile everywhere.
var useSIMD = false

func dot4asm(w, x0, x1, x2, x3 *float64, n int) (s0, s1, s2, s3 float64) {
	panic("nn: SIMD kernel on non-amd64")
}

func axpyasm(alpha float64, x, y *float64, n int) {
	panic("nn: SIMD kernel on non-amd64")
}

func adamasm(p, grad, m, v *float64, n int, beta1, beta2, lr, eps, b1c, b2c float64) {
	panic("nn: SIMD kernel on non-amd64")
}

func axpbyasm(tau float64, x, y *float64, n int) {
	panic("nn: SIMD kernel on non-amd64")
}

func scaleasm(f float64, x *float64, n int) {
	panic("nn: SIMD kernel on non-amd64")
}

func dot4asmf32(w, x0, x1, x2, x3 *float32, n int) (s0, s1, s2, s3 float32) {
	panic("nn: SIMD kernel on non-amd64")
}

func axpyasmf32(alpha float32, x, y *float32, n int) {
	panic("nn: SIMD kernel on non-amd64")
}

func adamasmf32(p, grad, m, v *float32, n int, beta1, beta2, lr, eps, b1c, b2c float32) {
	panic("nn: SIMD kernel on non-amd64")
}

func axpbyasmf32(tau float32, x, y *float32, n int) {
	panic("nn: SIMD kernel on non-amd64")
}

func scaleasmf32(f float32, x *float32, n int) {
	panic("nn: SIMD kernel on non-amd64")
}
