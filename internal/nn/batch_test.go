package nn

import (
	"math"
	"math/rand"
	"testing"
)

// Batched forward must agree with the scalar path per row (the two
// paths differ only in floating-point summation order).
func TestForwardBatchMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	net := MustMLP([]int{7, 12, 9, 3}, ReLU, Tanh, rng)
	ref := net.Clone()
	const rows = 5
	x := make([]float64, rows*7)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	out := net.ForwardBatch(x, rows)
	if len(out) != rows*3 {
		t.Fatalf("batch output len %d, want %d", len(out), rows*3)
	}
	for r := 0; r < rows; r++ {
		want := ref.Forward(x[r*7 : (r+1)*7])
		got := out[r*3 : (r+1)*3]
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-12 {
				t.Errorf("row %d out[%d] = %v, scalar %v", r, i, got[i], want[i])
			}
		}
	}
}

// Batched backward must accumulate the same parameter gradients and
// input gradients as summing per-row scalar backward passes.
func TestBackwardBatchMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, acts := range []struct {
		hidden, out Activation
	}{
		{ReLU, Linear}, {Tanh, Tanh}, {Sigmoid, Sigmoid},
	} {
		net := MustMLP([]int{6, 10, 4}, acts.hidden, acts.out, rng)
		ref := net.Clone()
		const rows = 8
		x := make([]float64, rows*6)
		dOut := make([]float64, rows*4)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		for i := range dOut {
			dOut[i] = rng.NormFloat64()
		}

		net.ZeroGrad()
		net.ForwardBatch(x, rows)
		dXb := net.BackwardBatch(dOut, rows)

		ref.ZeroGrad()
		dXs := make([]float64, rows*6)
		for r := 0; r < rows; r++ {
			ref.Forward(x[r*6 : (r+1)*6])
			copy(dXs[r*6:(r+1)*6], ref.Backward(dOut[r*4:(r+1)*4]))
		}

		gb, gs := net.GradSlices(), ref.GradSlices()
		for li := range gb {
			for j := range gb[li] {
				if math.Abs(gb[li][j]-gs[li][j]) > 1e-9 {
					t.Fatalf("%v/%v grad slice %d idx %d: batch %v scalar %v",
						acts.hidden, acts.out, li, j, gb[li][j], gs[li][j])
				}
			}
		}
		for i := range dXb {
			if math.Abs(dXb[i]-dXs[i]) > 1e-9 {
				t.Fatalf("%v/%v dX[%d]: batch %v scalar %v",
					acts.hidden, acts.out, i, dXb[i], dXs[i])
			}
		}
	}
}

// The batch path must handle a shrinking then growing batch without
// reading stale cache rows.
func TestBatchSizeChanges(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	net := MustMLP([]int{3, 5, 2}, ReLU, Linear, rng)
	ref := net.Clone()
	for _, rows := range []int{4, 1, 6, 2} {
		x := make([]float64, rows*3)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		out := net.ForwardBatch(x, rows)
		for r := 0; r < rows; r++ {
			want := ref.Forward(x[r*3 : (r+1)*3])
			for i := range want {
				if math.Abs(out[r*2+i]-want[i]) > 1e-12 {
					t.Fatalf("rows=%d row %d differs", rows, r)
				}
			}
		}
	}
}

// Steady-state batched forward+backward must not allocate.
func TestBatchZeroAllocSteadyState(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	net := MustMLP([]int{27, 48, 48, 1}, ReLU, Linear, rng)
	const rows = 32
	x := make([]float64, rows*27)
	dOut := make([]float64, rows)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	for i := range dOut {
		dOut[i] = rng.NormFloat64()
	}
	// Warm the scratch buffers.
	net.ForwardBatch(x, rows)
	net.BackwardBatch(dOut, rows)
	allocs := testing.AllocsPerRun(20, func() {
		net.ForwardBatch(x, rows)
		net.BackwardBatch(dOut, rows)
	})
	if allocs != 0 {
		t.Errorf("steady-state batch pass allocates %v/op, want 0", allocs)
	}
}

// Scalar Backward no longer allocates its dX result.
func TestScalarBackwardZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	net := MustMLP([]int{8, 16, 4}, Tanh, Linear, rng)
	x := make([]float64, 8)
	dOut := make([]float64, 4)
	net.Forward(x)
	net.Backward(dOut)
	allocs := testing.AllocsPerRun(20, func() {
		net.Forward(x)
		net.Backward(dOut)
	})
	if allocs != 0 {
		t.Errorf("scalar forward+backward allocates %v/op, want 0", allocs)
	}
}

func TestDotKernel(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for n := 0; n <= 17; n++ {
		a := make([]float64, n)
		b := make([]float64, n)
		var want float64
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
			want += a[i] * b[i]
		}
		if got := dot(a, b); math.Abs(got-want) > 1e-9 {
			t.Errorf("dot len %d = %v, want %v", n, got, want)
		}
	}
}

// benchNet matches the GreenNFV critic shape (27 -> 48 -> 48 -> 1).
func benchNet(b *testing.B) (*Network, []float64, []float64, int) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	net := MustMLP([]int{27, 48, 48, 1}, ReLU, Linear, rng)
	const rows = 32
	x := make([]float64, rows*27)
	dOut := make([]float64, rows)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	for i := range dOut {
		dOut[i] = rng.NormFloat64()
	}
	return net, x, dOut, rows
}

func BenchmarkDenseForwardBatch(b *testing.B) {
	net, x, _, rows := benchNet(b)
	net.ForwardBatch(x, rows)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.ForwardBatch(x, rows)
	}
}

func BenchmarkDenseBackwardBatch(b *testing.B) {
	net, x, dOut, rows := benchNet(b)
	net.ForwardBatch(x, rows)
	net.BackwardBatch(dOut, rows)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.BackwardBatch(dOut, rows)
	}
}

// BenchmarkDenseForwardScalarLoop is the old per-sample path over the
// same 32-row minibatch, for comparison with BenchmarkDenseForwardBatch.
func BenchmarkDenseForwardScalarLoop(b *testing.B) {
	net, x, _, rows := benchNet(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for r := 0; r < rows; r++ {
			net.Forward(x[r*27 : (r+1)*27])
		}
	}
}

// The Adam, SoftUpdate and ScaleGrad SIMD kernels must be
// bit-identical to the pure-Go loops (they mirror them operation for
// operation). Only meaningful where the kernels are selected.
func TestOptimizerKernelsBitExact(t *testing.T) {
	if !useSIMD {
		t.Skip("SIMD kernels not selected on this CPU")
	}
	build := func() (*Network, *Adam) {
		rng := rand.New(rand.NewSource(71))
		net := MustMLP([]int{9, 31, 5}, ReLU, Tanh, rng) // odd sizes exercise tails
		opt := MustAdam(0.01)
		opt.ClipNorm = 0.5
		return net, opt
	}
	run := func(simd bool) ([][]float64, [][]float64) {
		defer func(v bool) { useSIMD = v }(useSIMD)
		useSIMD = simd
		net, opt := build()
		target := net.Clone()
		x := make([]float64, 9)
		dOut := make([]float64, 5)
		rng := rand.New(rand.NewSource(73))
		for step := 0; step < 25; step++ {
			for i := range x {
				x[i] = rng.NormFloat64()
			}
			for i := range dOut {
				dOut[i] = rng.NormFloat64()
			}
			net.ZeroGrad()
			net.Forward(x)
			net.Backward(dOut)
			net.ScaleGrad(0.125)
			opt.Step(net)
			if err := target.SoftUpdate(net, 0.01); err != nil {
				t.Fatal(err)
			}
		}
		return net.ParamSlices(), target.ParamSlices()
	}
	gotP, gotT := run(true)
	wantP, wantT := run(false)
	for i := range wantP {
		for j := range wantP[i] {
			if gotP[i][j] != wantP[i][j] {
				t.Fatalf("param slice %d idx %d: simd %v scalar %v", i, j, gotP[i][j], wantP[i][j])
			}
			if gotT[i][j] != wantT[i][j] {
				t.Fatalf("target slice %d idx %d: simd %v scalar %v", i, j, gotT[i][j], wantT[i][j])
			}
		}
	}
}
