package nn

import (
	"errors"
	"math"
)

// Adam is the Adam optimizer (Kingma & Ba) with optional gradient
// clipping, matching the optimizer the paper's TensorFlow learner
// uses for both DDPG networks.
type Adam struct {
	LR      float64
	Beta1   float64
	Beta2   float64
	Epsilon float64
	// ClipNorm caps the global gradient L2 norm when positive.
	ClipNorm float64

	t int
	m [][]float64
	v [][]float64

	// float32-path state (StepF32): separate step counter and moment
	// estimates, so one optimizer drives either the f64 or the f32
	// parameters of a network but never mixes moments across
	// precisions.
	t32 int
	m32 [][]float32
	v32 [][]float32
}

// NewAdam builds an optimizer with standard hyperparameters.
func NewAdam(lr float64) (*Adam, error) {
	if lr <= 0 {
		return nil, errors.New("nn: learning rate must be positive")
	}
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Epsilon: 1e-8}, nil
}

// MustAdam is NewAdam that panics on error.
func MustAdam(lr float64) *Adam {
	a, err := NewAdam(lr)
	if err != nil {
		panic(err)
	}
	return a
}

// Step applies one update to the network from its accumulated
// gradients. The caller is responsible for ZeroGrad afterwards.
func (a *Adam) Step(n *Network) {
	params := n.ParamSlices()
	grads := n.GradSlices()
	if a.m == nil {
		a.m = make([][]float64, len(params))
		a.v = make([][]float64, len(params))
		for i := range params {
			a.m[i] = make([]float64, len(params[i]))
			a.v[i] = make([]float64, len(params[i]))
		}
	}
	if a.ClipNorm > 0 {
		var norm float64
		for i := range grads {
			for _, g := range grads[i] {
				norm += g * g
			}
		}
		norm = math.Sqrt(norm)
		if norm > a.ClipNorm {
			scale := a.ClipNorm / norm
			for i := range grads {
				if useSIMD && len(grads[i]) > 0 {
					scaleasm(scale, &grads[i][0], len(grads[i]))
					continue
				}
				for j := range grads[i] {
					grads[i][j] *= scale
				}
			}
		}
	}
	a.t++
	b1c := 1 - math.Pow(a.Beta1, float64(a.t))
	b2c := 1 - math.Pow(a.Beta2, float64(a.t))
	for i := range params {
		p, g, m, v := params[i], grads[i], a.m[i], a.v[i]
		if useSIMD && len(p) > 0 {
			// Vectorized update, bit-identical to the loop below.
			adamasm(&p[0], &g[0], &m[0], &v[0], len(p),
				a.Beta1, a.Beta2, a.LR, a.Epsilon, b1c, b2c)
			continue
		}
		for j := range p {
			m[j] = a.Beta1*m[j] + (1-a.Beta1)*g[j]
			v[j] = a.Beta2*v[j] + (1-a.Beta2)*g[j]*g[j]
			mHat := m[j] / b1c
			vHat := v[j] / b2c
			p[j] -= a.LR * mHat / (math.Sqrt(vHat) + a.Epsilon)
		}
	}
}

// StepF32 applies one update to the network's float32 parameter
// mirrors from its accumulated float32 gradients — the f32 fast
// path's optimizer step. The network must have EnableF32 applied; the
// caller is responsible for ZeroGradF32 afterwards. Norm and bias
// corrections are computed in float64 (cheap, and the squared-norm
// accumulation would otherwise lose precision over thousands of
// gradient entries); the per-parameter update runs in float32.
func (a *Adam) StepF32(n *Network) {
	params := n.ParamSlicesF32()
	grads := n.GradSlicesF32()
	if a.m32 == nil {
		a.m32 = make([][]float32, len(params))
		a.v32 = make([][]float32, len(params))
		for i := range params {
			a.m32[i] = make([]float32, len(params[i]))
			a.v32[i] = make([]float32, len(params[i]))
		}
	}
	if a.ClipNorm > 0 {
		var norm float64
		for i := range grads {
			for _, g := range grads[i] {
				norm += float64(g) * float64(g)
			}
		}
		norm = math.Sqrt(norm)
		if norm > a.ClipNorm {
			scale := float32(a.ClipNorm / norm)
			for i := range grads {
				if useSIMD && len(grads[i]) > 0 {
					scaleasmf32(scale, &grads[i][0], len(grads[i]))
					continue
				}
				for j := range grads[i] {
					grads[i][j] *= scale
				}
			}
		}
	}
	a.t32++
	b1c := float32(1 - math.Pow(a.Beta1, float64(a.t32)))
	b2c := float32(1 - math.Pow(a.Beta2, float64(a.t32)))
	beta1, beta2 := float32(a.Beta1), float32(a.Beta2)
	lr, eps := float32(a.LR), float32(a.Epsilon)
	for i := range params {
		p, g, m, v := params[i], grads[i], a.m32[i], a.v32[i]
		if useSIMD && len(p) > 0 {
			adamasmf32(&p[0], &g[0], &m[0], &v[0], len(p),
				beta1, beta2, lr, eps, b1c, b2c)
			continue
		}
		for j := range p {
			m[j] = beta1*m[j] + (1-beta1)*g[j]
			v[j] = beta2*v[j] + (1-beta2)*g[j]*g[j]
			mHat := m[j] / b1c
			vHat := v[j] / b2c
			p[j] -= lr * mHat / (float32(math.Sqrt(float64(vHat))) + eps)
		}
	}
}

// Reset clears moment estimates (e.g. after loading a checkpoint).
func (a *Adam) Reset() {
	a.t = 0
	a.m, a.v = nil, nil
	a.t32 = 0
	a.m32, a.v32 = nil, nil
}

// AdamState is the serializable optimizer state: the step counters and
// first/second moment estimates of both precisions. Together with the
// network parameters it is everything a checkpoint needs to make the
// next optimizer step bit-identical to an uninterrupted run.
type AdamState struct {
	T    int
	M, V [][]float64
	// Float32-path moments (StepF32); empty when the f32 path never
	// ran.
	T32      int
	M32, V32 [][]float32
}

// State deep-copies the optimizer's moment estimates for
// checkpointing. A fresh optimizer returns a zero state.
func (a *Adam) State() AdamState {
	st := AdamState{T: a.t, T32: a.t32}
	for i := range a.m {
		st.M = append(st.M, append([]float64(nil), a.m[i]...))
		st.V = append(st.V, append([]float64(nil), a.v[i]...))
	}
	for i := range a.m32 {
		st.M32 = append(st.M32, append([]float32(nil), a.m32[i]...))
		st.V32 = append(st.V32, append([]float32(nil), a.v32[i]...))
	}
	return st
}

// SetState restores checkpointed moment estimates. n, when non-nil, is
// the network this optimizer will step: the moment shapes must match
// its parameter slices exactly (a zero state matches any network — it
// restores a fresh optimizer).
func (a *Adam) SetState(st AdamState, n *Network) error {
	if len(st.M) != len(st.V) || len(st.M32) != len(st.V32) {
		return errors.New("nn: adam state m/v length mismatch")
	}
	if n != nil && st.M != nil {
		params := n.ParamSlices()
		if len(st.M) != len(params) {
			return errors.New("nn: adam state does not match network topology")
		}
		for i := range params {
			if len(st.M[i]) != len(params[i]) || len(st.V[i]) != len(params[i]) {
				return errors.New("nn: adam state does not match network layer sizes")
			}
		}
	}
	a.t, a.t32 = st.T, st.T32
	a.m, a.v = nil, nil
	for i := range st.M {
		a.m = append(a.m, append([]float64(nil), st.M[i]...))
		a.v = append(a.v, append([]float64(nil), st.V[i]...))
	}
	a.m32, a.v32 = nil, nil
	for i := range st.M32 {
		a.m32 = append(a.m32, append([]float32(nil), st.M32[i]...))
		a.v32 = append(a.v32, append([]float32(nil), st.V32[i]...))
	}
	return nil
}
