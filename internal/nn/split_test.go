package nn

import (
	"math/rand"
	"testing"
)

// TestBackwardBatchSplitParity verifies the fused backward against
// the two passes it replaces, bit for bit: parameter gradients from
// the first half must equal a standalone BackwardBatchParams over
// that half, and input gradients of the second half must equal a
// standalone BackwardBatchInput over that half. Halves are multiples
// of four so every row lands in the same dot4 lane in both runs.
func TestBackwardBatchSplitParity(t *testing.T) {
	const half = 8
	const rows = 2 * half
	sizes := []int{7, 16, 16, 3}

	build := func() *Network {
		return MustMLP(sizes, ReLU, Linear, rand.New(rand.NewSource(42)))
	}
	rng := rand.New(rand.NewSource(9))
	x := make([]float64, rows*sizes[0])
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	dY := make([]float64, rows*sizes[len(sizes)-1])
	for i := range dY {
		dY[i] = rng.NormFloat64()
	}

	// Reference pass 1: parameter gradients from the first half.
	ref := build()
	ref.ForwardBatch(x[:half*sizes[0]], half)
	ref.ZeroGrad()
	ref.BackwardBatchParams(dY[:half*sizes[len(sizes)-1]], half)
	var refGrads [][]float64
	for _, g := range ref.GradSlices() {
		refGrads = append(refGrads, append([]float64(nil), g...))
	}

	// Reference pass 2: input gradients from the second half.
	ref2 := build()
	ref2.ForwardBatch(x[half*sizes[0]:], half)
	refDX := append([]float64(nil),
		ref2.BackwardBatchInput(dY[half*sizes[len(sizes)-1]:], half)...)

	// Fused pass over both halves at once.
	fused := build()
	fused.ForwardBatch(x, rows)
	fused.ZeroGrad()
	dX := fused.BackwardBatchSplit(dY, rows, half)

	for li, g := range fused.GradSlices() {
		for j := range g {
			if g[j] != refGrads[li][j] {
				t.Fatalf("grad slice %d[%d]: fused %v, reference %v", li, j, g[j], refGrads[li][j])
			}
		}
	}
	in := sizes[0]
	for i := 0; i < half*in; i++ {
		if dX[half*in+i] != refDX[i] {
			t.Fatalf("dX[%d]: fused %v, reference %v", i, dX[half*in+i], refDX[i])
		}
	}
}

// TestBackwardBatchSplitGradRowsClamp: gradRows beyond rows behaves
// like a full BackwardBatch.
func TestBackwardBatchSplitGradRowsClamp(t *testing.T) {
	sizes := []int{4, 8, 2}
	a := MustMLP(sizes, Tanh, Linear, rand.New(rand.NewSource(3)))
	b := MustMLP(sizes, Tanh, Linear, rand.New(rand.NewSource(3)))
	rng := rand.New(rand.NewSource(5))
	x := make([]float64, 4*4)
	dY := make([]float64, 4*2)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	for i := range dY {
		dY[i] = rng.NormFloat64()
	}
	a.ForwardBatch(x, 4)
	a.ZeroGrad()
	dxa := append([]float64(nil), a.BackwardBatch(dY, 4)...)
	b.ForwardBatch(x, 4)
	b.ZeroGrad()
	dxb := b.BackwardBatchSplit(dY, 4, 99)
	for i := range dxa {
		if dxa[i] != dxb[i] {
			t.Fatalf("dX[%d]: %v vs %v", i, dxa[i], dxb[i])
		}
	}
	ga, gb := a.GradSlices(), b.GradSlices()
	for li := range ga {
		for j := range ga[li] {
			if ga[li][j] != gb[li][j] {
				t.Fatalf("grad %d[%d]: %v vs %v", li, j, ga[li][j], gb[li][j])
			}
		}
	}
}
