package nn

import (
	"math/rand"
	"testing"
)

// ForwardRows exists for one reason: per-row BIT-identity with the
// scalar Forward (ForwardBatch only promises a tolerance — its fused
// kernels reassociate the sums). The deterministic figure path and the
// actors' bit-for-bit priority verification stand on this test.
func TestForwardRowsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	shapes := [][]int{
		{7, 12, 9, 3},
		{4, 16, 1},
		{10, 24, 24, 5},
	}
	acts := []struct{ hidden, out Activation }{
		{ReLU, Tanh}, {Tanh, Linear}, {Sigmoid, Sigmoid},
	}
	for si, sizes := range shapes {
		for ai, a := range acts {
			net := MustMLP(sizes, a.hidden, a.out, rng)
			ref := net.Clone()
			in, out := sizes[0], sizes[len(sizes)-1]
			// Varying row counts reuse (and regrow) the shared scratch.
			for _, rows := range []int{1, 3, 8, 2} {
				x := make([]float64, rows*in)
				for i := range x {
					x[i] = rng.NormFloat64() * 2
				}
				got := net.ForwardRows(x, rows)
				if len(got) != rows*out {
					t.Fatalf("shape %d act %d: output len %d, want %d", si, ai, len(got), rows*out)
				}
				for r := 0; r < rows; r++ {
					want := ref.Forward(x[r*in : (r+1)*in])
					for j := range want {
						if got[r*out+j] != want[j] {
							t.Errorf("shape %d act %d rows %d: row %d out[%d] = %v, scalar %v (not bit-identical)",
								si, ai, rows, r, j, got[r*out+j], want[j])
						}
					}
				}
			}
		}
	}
}

// ForwardRows shares the batch scratch with ForwardBatch; interleaving
// the two must not corrupt either result.
func TestForwardRowsInterleavedWithBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	net := MustMLP([]int{6, 14, 4}, ReLU, Tanh, rng)
	ref := net.Clone()
	const rows = 5
	x := make([]float64, rows*6)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	_ = net.ForwardBatch(x, rows)
	got := net.ForwardRows(x, rows)
	for r := 0; r < rows; r++ {
		want := ref.Forward(x[r*6 : (r+1)*6])
		for j := range want {
			if got[r*4+j] != want[j] {
				t.Errorf("after ForwardBatch: row %d out[%d] = %v, scalar %v", r, j, got[r*4+j], want[j])
			}
		}
	}
}

// Steady-state ForwardRows must not allocate (the acting hot path runs
// it every environment step).
func TestForwardRowsNoAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	net := MustMLP([]int{6, 14, 4}, ReLU, Tanh, rng)
	const rows = 4
	x := make([]float64, rows*6)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	net.ForwardRows(x, rows) // warm the scratch
	if avg := testing.AllocsPerRun(50, func() { net.ForwardRows(x, rows) }); avg != 0 {
		t.Errorf("ForwardRows allocates %.1f per call, want 0", avg)
	}
}
