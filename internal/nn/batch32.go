package nn

import (
	"errors"
	"math"
)

var (
	errF32Tau      = errors.New("nn: tau must be in [0,1]")
	errF32Topology = errors.New("nn: topology mismatch")
)

// This file is the float32 mirror of the minibatch fast path in
// batch.go: the same ForwardBatch/BackwardBatch structure over
// row-major matrices, computed in single precision. Halving the
// element size halves memory traffic and doubles the AVX2 vector
// width (8 lanes per YMM instead of 4), which is where the learn-step
// speedup comes from — the f64 path's profile is dominated by the dot
// kernels.
//
// The f32 path is an explicit opt-in: EnableF32 snapshots the f64
// parameters into f32 mirrors, the F32 passes and optimizer steps
// then treat the mirrors as the authoritative weights, and FlushF32
// writes them back to the f64 side for serialization and scalar
// inference. Nothing on the f64 path reads or writes the mirrors, so
// enabling f32 on one network cannot perturb the deterministic f64
// figure path of another. Like the f64 batch path, all scratch is
// layer-owned and lazily sized, so the steady state allocates
// nothing.

// dotF32 is the four-accumulator f32 inner product (see dot).
func dotF32(a, b []float32) float32 {
	n := len(a)
	b = b[:n]
	var s0, s1, s2, s3 float32
	i := 0
	for ; i+4 <= n; i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	for ; i < n; i++ {
		s0 += a[i] * b[i]
	}
	return (s0 + s1) + (s2 + s3)
}

// dot4F32 computes the inner products of w against four input rows at
// once (see dot4).
func dot4F32(w, x0, x1, x2, x3 []float32) (r0, r1, r2, r3 float32) {
	n := len(w)
	x0, x1, x2, x3 = x0[:n], x1[:n], x2[:n], x3[:n]
	var a0, a1, a2, a3, b0, b1, b2, b3 float32
	i := 0
	for ; i+2 <= n; i += 2 {
		w0, w1 := w[i], w[i+1]
		a0 += w0 * x0[i]
		b0 += w1 * x0[i+1]
		a1 += w0 * x1[i]
		b1 += w1 * x1[i+1]
		a2 += w0 * x2[i]
		b2 += w1 * x2[i+1]
		a3 += w0 * x3[i]
		b3 += w1 * x3[i+1]
	}
	if i < n {
		w0 := w[i]
		a0 += w0 * x0[i]
		a1 += w0 * x1[i]
		a2 += w0 * x2[i]
		a3 += w0 * x3[i]
	}
	return a0 + b0, a1 + b1, a2 + b2, a3 + b3
}

// axpyF32 computes y += alpha*x.
func axpyF32(alpha float32, x, y []float32) {
	y = y[:len(x)]
	for i, xv := range x {
		y[i] += alpha * xv
	}
}

// dot4rowsF32 dispatches the four-row f32 dot product to the AVX2
// kernel when available.
func dot4rowsF32(w, x0, x1, x2, x3 []float32) (float32, float32, float32, float32) {
	if useSIMD {
		return dot4asmf32(&w[0], &x0[0], &x1[0], &x2[0], &x3[0], len(w))
	}
	return dot4F32(w, x0, x1, x2, x3)
}

// axpyFastF32 dispatches y += alpha*x to the AVX2 kernel when
// available.
func axpyFastF32(alpha float32, x, y []float32) {
	if useSIMD {
		axpyasmf32(alpha, &x[0], &y[0], len(x))
		return
	}
	axpyF32(alpha, x, y)
}

// abs32 is branch-free |v| for float32.
func abs32(v float32) float32 {
	return math.Float32frombits(math.Float32bits(v) &^ (1 << 31))
}

// tanh32 is a single-precision tanh: the classic 13/6-degree rational
// approximation (numerator odd in x, denominator even), accurate to a
// few float32 ulps on the non-saturated range and clamped to ±1
// beyond it. The f64 path's math.Tanh was ~15% of the f32 learn-step
// profile; this costs one divide and a dozen FMAs.
func tanh32(x float32) float32 {
	const bound = 7.90531110763549805 // |tanh| rounds to 1 in float32 beyond this
	if x > bound {
		return 1
	}
	if x < -bound {
		return -1
	}
	const (
		a1  = 4.89352455891786e-03
		a3  = 6.37261928875436e-04
		a5  = 1.48572235717979e-05
		a7  = 5.12229709037114e-08
		a9  = -8.60467152213735e-11
		a11 = 2.00018790482477e-13
		a13 = -2.76076847742355e-16
		b0  = 4.89352518554385e-03
		b2  = 2.26843463243900e-03
		b4  = 1.18534705686654e-04
		b6  = 1.19825839466702e-06
	)
	x2 := x * x
	p := float32(a13)
	p = p*x2 + a11
	p = p*x2 + a9
	p = p*x2 + a7
	p = p*x2 + a5
	p = p*x2 + a3
	p = p*x2 + a1
	p *= x
	q := float32(b6)
	q = q*x2 + b4
	q = q*x2 + b2
	q = q*x2 + b0
	return p / q
}

// applyBatchF32 evaluates the activation elementwise. Tanh uses the
// rational tanh32; Sigmoid goes through the float64 math library
// (unused by the GreenNFV networks, so not worth a fast path).
// Exactness against the f64 activations is not part of the f32
// contract.
func applyBatchF32(a Activation, z, y []float32) {
	y = y[:len(z)]
	switch a {
	case ReLU:
		for i, v := range z {
			y[i] = 0.5 * (v + abs32(v))
		}
	case Tanh:
		for i, v := range z {
			y[i] = tanh32(v)
		}
	case Sigmoid:
		for i, v := range z {
			y[i] = float32(1 / (1 + math.Exp(-float64(v))))
		}
	default:
		copy(y, z)
	}
}

// derivBatchF32 computes dz = dY ⊙ act'(z, y) elementwise.
func derivBatchF32(a Activation, dY, z, y, dz []float32) {
	dz = dz[:len(dY)]
	switch a {
	case ReLU:
		// Branchless 1/0 step via the sign bit, mirroring the f64
		// path's Copysign trick (ReLU pre-activations mispredict).
		z = z[:len(dY)]
		for i, v := range z {
			sign := math.Float32frombits(0x3F800000 | math.Float32bits(v)&0x80000000)
			dz[i] = dY[i] * (0.5 * (sign + 1))
		}
	case Tanh:
		y = y[:len(dY)]
		for i, yv := range y {
			dz[i] = dY[i] * (1 - yv*yv)
		}
	case Sigmoid:
		y = y[:len(dY)]
		for i, yv := range y {
			dz[i] = dY[i] * yv * (1 - yv)
		}
	default:
		copy(dz, dY)
	}
}

// growF32 returns buf resized to n, reallocating only when capacity
// is insufficient.
func growF32(buf []float32, n int) []float32 {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]float32, n)
}

// EnableF32 allocates (once) and refreshes the float32 parameter
// mirrors from the f64 weights. Call it before the first F32 pass and
// after any f64-side parameter change (CopyParamsFrom, UnmarshalBinary)
// while the f32 path is in use.
func (n *Network) EnableF32() {
	for _, l := range n.layers {
		if l.w32 == nil {
			l.w32 = make([]float32, len(l.W))
			l.b32 = make([]float32, len(l.B))
			l.dW32 = make([]float32, len(l.dW))
			l.dB32 = make([]float32, len(l.dB))
		}
		for i, w := range l.W {
			l.w32[i] = float32(w)
		}
		for i, b := range l.B {
			l.b32[i] = float32(b)
		}
	}
}

// FlushF32 writes the float32 parameter mirrors back into the f64
// weights, making the f32 path's training visible to MarshalBinary
// and the scalar f64 Forward. No-op if EnableF32 was never called.
func (n *Network) FlushF32() {
	for _, l := range n.layers {
		if l.w32 == nil {
			continue
		}
		for i, w := range l.w32 {
			l.W[i] = float64(w)
		}
		for i, b := range l.b32 {
			l.B[i] = float64(b)
		}
	}
}

// Float32Enabled reports whether the f32 mirrors exist.
func (n *Network) Float32Enabled() bool {
	return len(n.layers) > 0 && n.layers[0].w32 != nil
}

// ForwardBatchF32 is the float32 ForwardBatch: y_r = act(W x_r + b)
// over the f32 parameter mirrors, caching activations for the F32
// backward passes. The returned slice ([rows × Out], owned by the
// layer) is valid until the next call. EnableF32 must have run.
func (d *Dense) ForwardBatchF32(x []float32, rows int) []float32 {
	if len(x) < rows*d.In {
		panic("nn: ForwardBatchF32 input shorter than rows*In")
	}
	d.bx32 = growF32(d.bx32, rows*d.In)
	d.bz32 = growF32(d.bz32, rows*d.Out)
	d.by32 = growF32(d.by32, rows*d.Out)
	copy(d.bx32, x[:rows*d.In])
	r := 0
	for ; r+4 <= rows; r += 4 {
		x0 := d.bx32[r*d.In : (r+1)*d.In]
		x1 := d.bx32[(r+1)*d.In : (r+2)*d.In]
		x2 := d.bx32[(r+2)*d.In : (r+3)*d.In]
		x3 := d.bx32[(r+3)*d.In : (r+4)*d.In]
		for o := 0; o < d.Out; o++ {
			s0, s1, s2, s3 := dot4rowsF32(d.w32[o*d.In:(o+1)*d.In], x0, x1, x2, x3)
			b := d.b32[o]
			d.bz32[r*d.Out+o] = b + s0
			d.bz32[(r+1)*d.Out+o] = b + s1
			d.bz32[(r+2)*d.Out+o] = b + s2
			d.bz32[(r+3)*d.Out+o] = b + s3
		}
	}
	for ; r < rows; r++ {
		xr := d.bx32[r*d.In : (r+1)*d.In]
		zr := d.bz32[r*d.Out : (r+1)*d.Out]
		for o := 0; o < d.Out; o++ {
			zr[o] = d.b32[o] + dotF32(d.w32[o*d.In:(o+1)*d.In], xr)
		}
	}
	applyBatchF32(d.Act, d.bz32, d.by32)
	return d.by32
}

// backwardBatchF32 is the float32 backwardBatch: parameter gradients
// accumulate (into dW32/dB32) from the first gradRows rows only, dX
// is computed for every row when needDX.
func (d *Dense) backwardBatchF32(dY []float32, rows int, needDX bool, gradRows int) []float32 {
	if len(dY) < rows*d.Out {
		panic("nn: BackwardBatchF32 gradient shorter than rows*Out")
	}
	if gradRows > rows {
		gradRows = rows
	}
	d.bdz32 = growF32(d.bdz32, rows*d.Out)
	derivBatchF32(d.Act, dY[:rows*d.Out], d.bz32, d.by32, d.bdz32)
	for r := 0; r < gradRows; r++ {
		dzr := d.bdz32[r*d.Out : (r+1)*d.Out]
		xr := d.bx32[r*d.In : (r+1)*d.In]
		for o, dz := range dzr {
			if dz == 0 {
				continue // ReLU zeros are common; skip the row work
			}
			d.dB32[o] += dz
			axpyFastF32(dz, xr, d.dW32[o*d.In:(o+1)*d.In])
		}
	}
	if !needDX {
		return nil
	}
	// dX = dz × W against a transposed weight copy, same as the f64
	// path: contiguous dot products instead of strided accumulation.
	d.wt32 = growF32(d.wt32, d.In*d.Out)
	for o := 0; o < d.Out; o++ {
		row := d.w32[o*d.In : (o+1)*d.In]
		for i, w := range row {
			d.wt32[i*d.Out+o] = w
		}
	}
	d.bdx32 = growF32(d.bdx32, rows*d.In)
	r := 0
	for ; r+4 <= rows; r += 4 {
		dz0 := d.bdz32[r*d.Out : (r+1)*d.Out]
		dz1 := d.bdz32[(r+1)*d.Out : (r+2)*d.Out]
		dz2 := d.bdz32[(r+2)*d.Out : (r+3)*d.Out]
		dz3 := d.bdz32[(r+3)*d.Out : (r+4)*d.Out]
		for i := 0; i < d.In; i++ {
			s0, s1, s2, s3 := dot4rowsF32(d.wt32[i*d.Out:(i+1)*d.Out], dz0, dz1, dz2, dz3)
			d.bdx32[r*d.In+i] = s0
			d.bdx32[(r+1)*d.In+i] = s1
			d.bdx32[(r+2)*d.In+i] = s2
			d.bdx32[(r+3)*d.In+i] = s3
		}
	}
	for ; r < rows; r++ {
		dzr := d.bdz32[r*d.Out : (r+1)*d.Out]
		dxr := d.bdx32[r*d.In : (r+1)*d.In]
		for i := 0; i < d.In; i++ {
			dxr[i] = dotF32(dzr, d.wt32[i*d.Out:(i+1)*d.Out])
		}
	}
	return d.bdx32
}

// ForwardBatchF32 runs the network's float32 path over rows row-major
// inputs ([rows × InputDim]), returning [rows × OutputDim] owned by
// the last layer.
func (n *Network) ForwardBatchF32(x []float32, rows int) []float32 {
	out := x
	for _, l := range n.layers {
		out = l.ForwardBatchF32(out, rows)
	}
	return out
}

// BackwardBatchF32 propagates dL/dOutput through the f32 path,
// summing parameter gradients over the minibatch, and returns
// dL/dInput.
func (n *Network) BackwardBatchF32(dOut []float32, rows int) []float32 {
	return n.backwardBatchF32(dOut, rows, true, rows)
}

// BackwardBatchParamsF32 is BackwardBatchF32 for callers that only
// need parameter gradients (the first layer's input gradient is
// skipped).
func (n *Network) BackwardBatchParamsF32(dOut []float32, rows int) {
	n.backwardBatchF32(dOut, rows, false, rows)
}

// BackwardBatchInputF32 propagates input gradients WITHOUT
// accumulating any parameter gradients (the DDPG dQ/da probe).
func (n *Network) BackwardBatchInputF32(dOut []float32, rows int) []float32 {
	return n.backwardBatchF32(dOut, rows, true, 0)
}

// BackwardBatchSplitF32 is the float32 BackwardBatchSplit: input
// gradients for every row, parameter gradients from the first
// gradRows rows only — the fused DDPG critic pass.
func (n *Network) BackwardBatchSplitF32(dOut []float32, rows, gradRows int) []float32 {
	return n.backwardBatchF32(dOut, rows, true, gradRows)
}

func (n *Network) backwardBatchF32(dOut []float32, rows int, needInputDX bool, gradRows int) []float32 {
	d := dOut
	for i := len(n.layers) - 1; i >= 0; i-- {
		needDX := i > 0 || needInputDX
		d = n.layers[i].backwardBatchF32(d, rows, needDX, gradRows)
	}
	return d
}

// ZeroGradF32 clears the accumulated float32 gradients.
func (n *Network) ZeroGradF32() {
	for _, l := range n.layers {
		for i := range l.dW32 {
			l.dW32[i] = 0
		}
		for i := range l.dB32 {
			l.dB32[i] = 0
		}
	}
}

// ScaleGradF32 multiplies all accumulated float32 gradients by f.
func (n *Network) ScaleGradF32(f float32) {
	for _, l := range n.layers {
		if useSIMD {
			scaleasmf32(f, &l.dW32[0], len(l.dW32))
			scaleasmf32(f, &l.dB32[0], len(l.dB32))
			continue
		}
		for i := range l.dW32 {
			l.dW32[i] *= f
		}
		for i := range l.dB32 {
			l.dB32[i] *= f
		}
	}
}

// ParamSlicesF32 exposes the float32 parameter mirrors (weights then
// biases, layer by layer). EnableF32 must have run.
func (n *Network) ParamSlicesF32() [][]float32 {
	if n.pSlices32 == nil {
		for _, l := range n.layers {
			n.pSlices32 = append(n.pSlices32, l.w32, l.b32)
		}
	}
	return n.pSlices32
}

// GradSlicesF32 exposes the float32 gradient buffers in ParamSlicesF32
// order.
func (n *Network) GradSlicesF32() [][]float32 {
	if n.gSlices32 == nil {
		for _, l := range n.layers {
			n.gSlices32 = append(n.gSlices32, l.dW32, l.dB32)
		}
	}
	return n.gSlices32
}

// SoftUpdateF32 moves this network's float32 parameters toward src's:
// θ ← τ·θ_src + (1−τ)·θ — the DDPG target update on the f32 path.
// Both networks must have EnableF32 applied.
func (n *Network) SoftUpdateF32(src *Network, tau float32) error {
	if tau < 0 || tau > 1 {
		return errF32Tau
	}
	dst := n.ParamSlicesF32()
	from := src.ParamSlicesF32()
	if len(dst) != len(from) {
		return errF32Topology
	}
	for i := range dst {
		if len(dst[i]) != len(from[i]) {
			return errF32Topology
		}
		if useSIMD && len(dst[i]) > 0 {
			axpbyasmf32(tau, &from[i][0], &dst[i][0], len(dst[i]))
			continue
		}
		for j := range dst[i] {
			dst[i][j] = tau*from[i][j] + (1-tau)*dst[i][j]
		}
	}
	return nil
}
