package nn

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Activation selects a layer non-linearity.
type Activation int

// Supported activations.
const (
	// Linear is the identity.
	Linear Activation = iota
	// ReLU is max(0, x).
	ReLU
	// Tanh squashes to (-1, 1) — the DDPG actor's output activation.
	Tanh
	// Sigmoid squashes to (0, 1).
	Sigmoid
)

// String implements fmt.Stringer.
func (a Activation) String() string {
	switch a {
	case Linear:
		return "linear"
	case ReLU:
		return "relu"
	case Tanh:
		return "tanh"
	case Sigmoid:
		return "sigmoid"
	default:
		return fmt.Sprintf("activation(%d)", int(a))
	}
}

func (a Activation) apply(x float64) float64 {
	switch a {
	case ReLU:
		if x < 0 {
			return 0
		}
		return x
	case Tanh:
		return math.Tanh(x)
	case Sigmoid:
		return 1 / (1 + math.Exp(-x))
	default:
		return x
	}
}

// derivative computes dAct/dz given the post-activation output y and
// pre-activation z.
func (a Activation) derivative(y, z float64) float64 {
	switch a {
	case ReLU:
		if z > 0 {
			return 1
		}
		return 0
	case Tanh:
		return 1 - y*y
	case Sigmoid:
		return y * (1 - y)
	default:
		return 1
	}
}

// Dense is one fully connected layer y = act(Wx + b).
type Dense struct {
	In, Out int
	Act     Activation
	// W is row-major Out x In; B has Out entries.
	W, B []float64
	// dW and dB accumulate gradients across Backward calls.
	dW, dB []float64
	// forward caches for backprop.
	x, z, y []float64
	// dx is the reusable scalar-Backward output buffer.
	dx []float64
	// batch-path caches and scratch (see batch.go), lazily sized to
	// the largest minibatch seen; wt is the transposed weight copy
	// the batched backward uses for input gradients.
	bx, bz, by, bdz, bdx, wt []float64
	// float32 fast-path state (batch32.go): w32/b32 mirror W/B while
	// the f32 path is active, dW32/dB32 accumulate f32 gradients, and
	// the remaining slices are the f32 batch caches and scratch.
	// Allocated by EnableF32; nil on the f64-only path.
	w32, b32, dW32, dB32                 []float32
	bx32, bz32, by32, bdz32, bdx32, wt32 []float32
}

// newDense builds a layer with Xavier/Glorot-uniform weights.
func newDense(in, out int, act Activation, rng *rand.Rand) *Dense {
	d := &Dense{
		In: in, Out: out, Act: act,
		W: make([]float64, in*out), B: make([]float64, out),
		dW: make([]float64, in*out), dB: make([]float64, out),
		x: make([]float64, in), z: make([]float64, out), y: make([]float64, out),
	}
	limit := math.Sqrt(6 / float64(in+out))
	for i := range d.W {
		d.W[i] = (2*rng.Float64() - 1) * limit
	}
	return d
}

// Forward computes the layer output, caching inputs for Backward.
func (d *Dense) Forward(x []float64) []float64 {
	copy(d.x, x)
	for o := 0; o < d.Out; o++ {
		sum := d.B[o]
		row := d.W[o*d.In : (o+1)*d.In]
		for i, xi := range x {
			sum += row[i] * xi
		}
		d.z[o] = sum
		d.y[o] = d.Act.apply(sum)
	}
	return d.y
}

// Backward consumes dL/dy, accumulates dW/dB, and returns dL/dx.
// The returned slice is owned by the layer and valid until its next
// Backward call.
func (d *Dense) Backward(dY []float64) []float64 {
	if d.dx == nil {
		d.dx = make([]float64, d.In)
	}
	dX := d.dx
	for i := range dX {
		dX[i] = 0
	}
	for o := 0; o < d.Out; o++ {
		dz := dY[o] * d.Act.derivative(d.y[o], d.z[o])
		d.dB[o] += dz
		row := d.W[o*d.In : (o+1)*d.In]
		dRow := d.dW[o*d.In : (o+1)*d.In]
		for i := 0; i < d.In; i++ {
			dRow[i] += dz * d.x[i]
			dX[i] += dz * row[i]
		}
	}
	return dX
}

// Network is a feed-forward stack of dense layers.
type Network struct {
	layers []*Dense
	// cached ParamSlices/GradSlices headers (the layer buffers they
	// point at never move), so optimizer steps don't allocate.
	pSlices, gSlices [][]float64
	// float32 mirrors of the two caches, populated by EnableF32.
	pSlices32, gSlices32 [][]float32
}

// NewMLP builds a multilayer perceptron with the given layer sizes
// (sizes[0] = input dim, sizes[len-1] = output dim), hidden
// activation for interior layers and outAct for the final layer.
func NewMLP(sizes []int, hidden, outAct Activation, rng *rand.Rand) (*Network, error) {
	if len(sizes) < 2 {
		return nil, errors.New("nn: MLP needs at least input and output sizes")
	}
	for i, s := range sizes {
		if s <= 0 {
			return nil, fmt.Errorf("nn: layer %d size %d invalid", i, s)
		}
	}
	if rng == nil {
		return nil, errors.New("nn: need a random source for initialization")
	}
	n := &Network{}
	for i := 0; i < len(sizes)-1; i++ {
		act := hidden
		if i == len(sizes)-2 {
			act = outAct
		}
		n.layers = append(n.layers, newDense(sizes[i], sizes[i+1], act, rng))
	}
	return n, nil
}

// MustMLP is NewMLP that panics on error.
func MustMLP(sizes []int, hidden, outAct Activation, rng *rand.Rand) *Network {
	n, err := NewMLP(sizes, hidden, outAct, rng)
	if err != nil {
		panic(err)
	}
	return n
}

// InputDim reports the expected input length.
func (n *Network) InputDim() int { return n.layers[0].In }

// OutputDim reports the output length.
func (n *Network) OutputDim() int { return n.layers[len(n.layers)-1].Out }

// Forward runs the network. The returned slice is owned by the last
// layer and valid until the next Forward; copy it to retain.
func (n *Network) Forward(x []float64) []float64 {
	out := x
	for _, l := range n.layers {
		out = l.Forward(out)
	}
	return out
}

// Backward propagates dL/dOutput through the network, accumulating
// parameter gradients, and returns dL/dInput.
func (n *Network) Backward(dOut []float64) []float64 {
	d := dOut
	for i := len(n.layers) - 1; i >= 0; i-- {
		d = n.layers[i].Backward(d)
	}
	return d
}

// ZeroGrad clears accumulated gradients.
func (n *Network) ZeroGrad() {
	for _, l := range n.layers {
		for i := range l.dW {
			l.dW[i] = 0
		}
		for i := range l.dB {
			l.dB[i] = 0
		}
	}
}

// ScaleGrad multiplies all accumulated gradients by f (used to
// average over a minibatch).
func (n *Network) ScaleGrad(f float64) {
	for _, l := range n.layers {
		if useSIMD {
			scaleasm(f, &l.dW[0], len(l.dW))
			scaleasm(f, &l.dB[0], len(l.dB))
			continue
		}
		for i := range l.dW {
			l.dW[i] *= f
		}
		for i := range l.dB {
			l.dB[i] *= f
		}
	}
}

// ParamSlices exposes the parameter buffers (weights then biases,
// layer by layer) for optimizers and synchronization.
func (n *Network) ParamSlices() [][]float64 {
	if n.pSlices == nil {
		for _, l := range n.layers {
			n.pSlices = append(n.pSlices, l.W, l.B)
		}
	}
	return n.pSlices
}

// GradSlices exposes gradient buffers in the same order as
// ParamSlices.
func (n *Network) GradSlices() [][]float64 {
	if n.gSlices == nil {
		for _, l := range n.layers {
			n.gSlices = append(n.gSlices, l.dW, l.dB)
		}
	}
	return n.gSlices
}

// NumParams reports the total parameter count.
func (n *Network) NumParams() int {
	total := 0
	for _, l := range n.layers {
		total += len(l.W) + len(l.B)
	}
	return total
}

// Clone deep-copies the network (fresh caches, same weights).
func (n *Network) Clone() *Network {
	c := &Network{}
	for _, l := range n.layers {
		nl := &Dense{
			In: l.In, Out: l.Out, Act: l.Act,
			W: append([]float64(nil), l.W...), B: append([]float64(nil), l.B...),
			dW: make([]float64, len(l.dW)), dB: make([]float64, len(l.dB)),
			x: make([]float64, l.In), z: make([]float64, l.Out), y: make([]float64, l.Out),
		}
		c.layers = append(c.layers, nl)
	}
	return c
}

// CopyParamsFrom overwrites this network's parameters with src's.
// The topologies must match.
func (n *Network) CopyParamsFrom(src *Network) error {
	dst := n.ParamSlices()
	from := src.ParamSlices()
	if len(dst) != len(from) {
		return errors.New("nn: topology mismatch")
	}
	for i := range dst {
		if len(dst[i]) != len(from[i]) {
			return errors.New("nn: layer size mismatch")
		}
		copy(dst[i], from[i])
	}
	return nil
}

// SoftUpdate moves this network's parameters toward src:
// θ ← τ·θ_src + (1−τ)·θ. This is the DDPG target-network update
// (Algorithm 2, lines 9–10).
func (n *Network) SoftUpdate(src *Network, tau float64) error {
	if tau < 0 || tau > 1 {
		return errors.New("nn: tau must be in [0,1]")
	}
	dst := n.ParamSlices()
	from := src.ParamSlices()
	if len(dst) != len(from) {
		return errors.New("nn: topology mismatch")
	}
	for i := range dst {
		if len(dst[i]) != len(from[i]) {
			return errors.New("nn: layer size mismatch")
		}
		if useSIMD && len(dst[i]) > 0 {
			// Vectorized, bit-identical to the loop below.
			axpbyasm(tau, &from[i][0], &dst[i][0], len(dst[i]))
			continue
		}
		for j := range dst[i] {
			dst[i][j] = tau*from[i][j] + (1-tau)*dst[i][j]
		}
	}
	return nil
}

// netState is the gob-serializable form.
type netState struct {
	Sizes []int
	Acts  []Activation
	W     [][]float64
	B     [][]float64
}

// MarshalBinary implements encoding.BinaryMarshaler for checkpoints
// and Ape-X parameter sync.
func (n *Network) MarshalBinary() ([]byte, error) {
	st := netState{}
	for i, l := range n.layers {
		if i == 0 {
			st.Sizes = append(st.Sizes, l.In)
		}
		st.Sizes = append(st.Sizes, l.Out)
		st.Acts = append(st.Acts, l.Act)
		st.W = append(st.W, l.W)
		st.B = append(st.B, l.B)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (n *Network) UnmarshalBinary(data []byte) error {
	var st netState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return err
	}
	if len(st.Sizes) < 2 || len(st.Acts) != len(st.Sizes)-1 {
		return errors.New("nn: corrupt network state")
	}
	n.layers = nil
	n.pSlices, n.gSlices = nil, nil
	n.pSlices32, n.gSlices32 = nil, nil
	for i := 0; i < len(st.Sizes)-1; i++ {
		in, out := st.Sizes[i], st.Sizes[i+1]
		if len(st.W[i]) != in*out || len(st.B[i]) != out {
			return errors.New("nn: corrupt layer state")
		}
		l := &Dense{
			In: in, Out: out, Act: st.Acts[i],
			W: append([]float64(nil), st.W[i]...), B: append([]float64(nil), st.B[i]...),
			dW: make([]float64, in*out), dB: make([]float64, out),
			x: make([]float64, in), z: make([]float64, out), y: make([]float64, out),
		}
		n.layers = append(n.layers, l)
	}
	return nil
}
