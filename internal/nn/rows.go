package nn

// This file is the row-batched *bit-exact* forward: ForwardRows
// evaluates many inputs in one call with layer-owned scratch (zero
// allocations once warm) while keeping the scalar Forward's sequential
// summation order per row. ForwardBatch (batch.go) is faster — its
// dot4/dot kernels reassociate sums and its numerics depend on a row's
// position in the batch — which is exactly what batched actors
// computing replay priorities cannot tolerate: the deterministic
// round-robin figures and the remote actors' bit-for-bit priority
// verification both require that batching over rows changes nothing.
// ForwardRows trades the ILP kernels for the weight-row cache reuse of
// the o-outer/r-inner loop nest, which is still markedly faster than
// calling Forward per state (one pass over W serves every row).

// ForwardRows computes y_r = act(W x_r + b) for rows row-major inputs.
// Each output row is bit-identical to Forward on that row's input: the
// inner product runs in the scalar sequential order and the activation
// is applied with the same elementwise functions. The returned slice
// ([rows × Out]) shares the layer's batch scratch with ForwardBatch
// and is valid until the next batched forward call.
func (d *Dense) ForwardRows(x []float64, rows int) []float64 {
	if len(x) < rows*d.In {
		panic("nn: ForwardRows input shorter than rows*In")
	}
	d.bx = grow(d.bx, rows*d.In)
	d.bz = grow(d.bz, rows*d.Out)
	d.by = grow(d.by, rows*d.Out)
	copy(d.bx, x[:rows*d.In])
	for o := 0; o < d.Out; o++ {
		row := d.W[o*d.In : (o+1)*d.In]
		b := d.B[o]
		for r := 0; r < rows; r++ {
			xr := d.bx[r*d.In : (r+1)*d.In]
			sum := b
			for i, xi := range xr {
				sum += row[i] * xi
			}
			d.bz[r*d.Out+o] = sum
		}
	}
	// applyBatch's elementwise kernels are bit-equal to Act.apply:
	// 0.5*(v+|v|) is exactly max(0, v), and Tanh/Sigmoid share the
	// same math calls.
	applyBatch(d.Act, d.bz, d.by)
	return d.by
}

// ForwardRows runs the network over rows row-major inputs
// ([rows × InputDim]), returning [rows × OutputDim] with every row
// bit-identical to a scalar Forward of that input. The result is owned
// by the last layer and valid until its next batched forward call.
func (n *Network) ForwardRows(x []float64, rows int) []float64 {
	out := x
	for _, l := range n.layers {
		out = l.ForwardRows(out, rows)
	}
	return out
}
