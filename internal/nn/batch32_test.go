package nn

import (
	"math"
	"math/rand"
	"testing"
)

// f32TestNet builds a small odd-sized MLP (tails exercised) with f32
// mirrors enabled, plus a row-major input batch in both precisions.
func f32TestNet(t testing.TB, rows int) (*Network, []float64, []float32) {
	t.Helper()
	rng := rand.New(rand.NewSource(91))
	net := MustMLP([]int{9, 31, 13, 5}, ReLU, Tanh, rng)
	net.EnableF32()
	x := make([]float64, rows*9)
	x32 := make([]float32, rows*9)
	for i := range x {
		x[i] = rng.NormFloat64()
		x32[i] = float32(x[i])
	}
	return net, x, x32
}

// relClose reports |a-b| <= tol * max(1, |a|, |b|).
func relClose(a, b, tol float64) bool {
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= tol*scale
}

// TestForwardBatchF32MatchesF64 bounds the single-precision forward
// pass against the f64 reference: a few-thousand-parameter MLP stays
// within ~1e-5 relative error per output.
func TestForwardBatchF32MatchesF64(t *testing.T) {
	for _, rows := range []int{1, 3, 4, 7, 32} {
		net, x, x32 := f32TestNet(t, rows)
		want := net.ForwardBatch(x, rows)
		got := net.ForwardBatchF32(x32, rows)
		if len(got) != len(want) {
			t.Fatalf("rows=%d: f32 output len %d, want %d", rows, len(got), len(want))
		}
		for i := range want {
			if !relClose(float64(got[i]), want[i], 1e-5) {
				t.Errorf("rows=%d out[%d]: f32 %v vs f64 %v", rows, i, got[i], want[i])
			}
		}
	}
}

// TestBackwardBatchF32MatchesF64 bounds the f32 parameter and input
// gradients against the f64 reference on the same minibatch.
func TestBackwardBatchF32MatchesF64(t *testing.T) {
	const rows = 6
	net, x, x32 := f32TestNet(t, rows)
	dOut := make([]float64, rows*5)
	dOut32 := make([]float32, rows*5)
	rng := rand.New(rand.NewSource(97))
	for i := range dOut {
		dOut[i] = rng.NormFloat64()
		dOut32[i] = float32(dOut[i])
	}

	net.ForwardBatch(x, rows)
	net.ZeroGrad()
	wantDX := net.BackwardBatch(dOut, rows)
	wantG := net.GradSlices()

	net.ForwardBatchF32(x32, rows)
	net.ZeroGradF32()
	gotDX := net.BackwardBatchSplitF32(dOut32, rows, rows)
	gotG := net.GradSlicesF32()

	for i := range wantDX {
		if !relClose(float64(gotDX[i]), wantDX[i], 1e-4) {
			t.Errorf("dX[%d]: f32 %v vs f64 %v", i, gotDX[i], wantDX[i])
		}
	}
	for i := range wantG {
		for j := range wantG[i] {
			if !relClose(float64(gotG[i][j]), wantG[i][j], 1e-4) {
				t.Errorf("grad slice %d idx %d: f32 %v vs f64 %v", i, j, gotG[i][j], wantG[i][j])
			}
		}
	}
}

// TestF32SplitMatchesSeparate pins the f32 fused-pass contract (the
// analogue of the f64 BackwardBatchSplit parity test): parameter
// gradients equal a params-only pass over the first gradRows rows,
// input gradients equal an input-only pass, bit for bit. Like the f64
// parity test, gradRows is a multiple of four so every row lands in
// the same dot4 lane in both runs.
func TestF32SplitMatchesSeparate(t *testing.T) {
	const rows, gradRows = 8, 4
	net, _, x32 := f32TestNet(t, rows)
	dOut32 := make([]float32, rows*5)
	rng := rand.New(rand.NewSource(101))
	for i := range dOut32 {
		dOut32[i] = float32(rng.NormFloat64())
	}

	// Split pass.
	net.ForwardBatchF32(x32, rows)
	net.ZeroGradF32()
	dx := append([]float32(nil), net.BackwardBatchSplitF32(dOut32, rows, gradRows)...)
	var grads [][]float32
	for _, g := range net.GradSlicesF32() {
		grads = append(grads, append([]float32(nil), g...))
	}

	// Separate params-only pass over the first gradRows rows.
	net.ForwardBatchF32(x32[:gradRows*9], gradRows)
	net.ZeroGradF32()
	net.BackwardBatchParamsF32(dOut32[:gradRows*5], gradRows)
	for i, g := range net.GradSlicesF32() {
		for j := range g {
			if g[j] != grads[i][j] {
				t.Fatalf("grad slice %d idx %d: split %v separate %v", i, j, grads[i][j], g[j])
			}
		}
	}

	// Separate input-only pass over all rows.
	net.ForwardBatchF32(x32, rows)
	net.ZeroGradF32()
	dx2 := net.BackwardBatchInputF32(dOut32, rows)
	for i := range dx2 {
		if dx[i] != dx2[i] {
			t.Fatalf("dX[%d]: split %v separate %v", i, dx[i], dx2[i])
		}
	}
	for _, g := range net.GradSlicesF32() {
		for j := range g {
			if g[j] != 0 {
				t.Fatal("input-only f32 pass accumulated parameter gradients")
			}
		}
	}
}

// TestF32KernelsMatchGo compares the AVX2 f32 kernels against the
// pure-Go fallbacks over one full train step (forward, backward,
// scale, Adam, soft-update). FMA contraction and the packed sqrt
// round differently, so the bound is a relative tolerance rather than
// bit equality.
func TestF32KernelsMatchGo(t *testing.T) {
	if !useSIMD {
		t.Skip("SIMD kernels not selected on this CPU")
	}
	run := func(simd bool) ([][]float32, [][]float32) {
		defer func(v bool) { useSIMD = v }(useSIMD)
		useSIMD = simd
		rng := rand.New(rand.NewSource(103))
		net := MustMLP([]int{9, 31, 5}, ReLU, Tanh, rng) // odd sizes exercise tails
		net.EnableF32()
		target := net.Clone()
		target.EnableF32()
		opt := MustAdam(0.01)
		opt.ClipNorm = 0.5
		x := make([]float32, 4*9)
		dOut := make([]float32, 4*5)
		drv := rand.New(rand.NewSource(107))
		for step := 0; step < 25; step++ {
			for i := range x {
				x[i] = float32(drv.NormFloat64())
			}
			for i := range dOut {
				dOut[i] = float32(drv.NormFloat64())
			}
			net.ZeroGradF32()
			net.ForwardBatchF32(x, 4)
			net.BackwardBatchF32(dOut, 4)
			net.ScaleGradF32(0.25)
			opt.StepF32(net)
			if err := target.SoftUpdateF32(net, 0.01); err != nil {
				t.Fatal(err)
			}
		}
		return net.ParamSlicesF32(), target.ParamSlicesF32()
	}
	gotP, gotT := run(true)
	wantP, wantT := run(false)
	for i := range wantP {
		for j := range wantP[i] {
			if !relClose(float64(gotP[i][j]), float64(wantP[i][j]), 1e-4) {
				t.Fatalf("param slice %d idx %d: simd %v scalar %v", i, j, gotP[i][j], wantP[i][j])
			}
			if !relClose(float64(gotT[i][j]), float64(wantT[i][j]), 1e-4) {
				t.Fatalf("target slice %d idx %d: simd %v scalar %v", i, j, gotT[i][j], wantT[i][j])
			}
		}
	}
}

// TestTanh32Accuracy bounds the rational float32 tanh against the
// float64 reference: a few ulps on the active range, exact saturation
// beyond it, odd symmetry at zero.
func TestTanh32Accuracy(t *testing.T) {
	var maxErr float64
	for x := -12.0; x <= 12.0; x += 1.0 / 512 {
		got := float64(tanh32(float32(x)))
		want := math.Tanh(x)
		if err := math.Abs(got - want); err > maxErr {
			maxErr = err
		}
	}
	if maxErr > 1e-6 {
		t.Errorf("tanh32 max abs error %v, want <= 1e-6", maxErr)
	}
	if tanh32(40) != 1 || tanh32(-40) != -1 {
		t.Error("tanh32 does not saturate to ±1")
	}
	if tanh32(0) != 0 {
		t.Errorf("tanh32(0) = %v", tanh32(0))
	}
}

// TestDotKernelF32 checks the pure-Go f32 dot kernels against a naive
// accumulation, including tail lengths.
func TestDotKernelF32(t *testing.T) {
	rng := rand.New(rand.NewSource(109))
	for n := 0; n <= 19; n++ {
		a := make([]float32, n)
		b := make([]float32, n)
		var want float64
		for i := range a {
			a[i] = float32(rng.NormFloat64())
			b[i] = float32(rng.NormFloat64())
			want += float64(a[i]) * float64(b[i])
		}
		if got := dotF32(a, b); !relClose(float64(got), want, 1e-5) {
			t.Errorf("dotF32 len %d = %v, want %v", n, got, want)
		}
		r0, _, _, _ := dot4F32(a, b, b, b, b)
		if !relClose(float64(r0), want, 1e-5) {
			t.Errorf("dot4F32 len %d = %v, want %v", n, r0, want)
		}
		if useSIMD && n > 0 {
			s0, s1, _, _ := dot4asmf32(&a[0], &b[0], &b[0], &b[0], &b[0], n)
			if !relClose(float64(s0), want, 1e-5) || s0 != s1 {
				t.Errorf("dot4asmf32 len %d = %v/%v, want %v", n, s0, s1, want)
			}
		}
	}
}

// TestEnableFlushF32RoundTrip: enabling snapshots the f64 weights,
// flushing writes the (possibly trained) mirrors back.
func TestEnableFlushF32RoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(113))
	net := MustMLP([]int{4, 8, 2}, ReLU, Linear, rng)
	if net.Float32Enabled() {
		t.Fatal("f32 mirrors exist before EnableF32")
	}
	before := append([]float64(nil), net.layers[0].W...)
	net.EnableF32()
	if !net.Float32Enabled() {
		t.Fatal("EnableF32 did not create mirrors")
	}
	net.FlushF32()
	for i, w := range net.layers[0].W {
		if w != float64(float32(before[i])) {
			t.Fatalf("flush after enable: W[%d] = %v, want f32 rounding of %v", i, w, before[i])
		}
	}
	// A trained mirror lands in the f64 weights on flush.
	net.layers[0].w32[0] = 42
	net.FlushF32()
	if net.layers[0].W[0] != 42 {
		t.Fatalf("flush ignored mirror update: W[0] = %v", net.layers[0].W[0])
	}
}

// TestF32ZeroAllocSteadyState: the f32 batch passes, optimizer step
// and soft-update must not allocate once warm.
func TestF32ZeroAllocSteadyState(t *testing.T) {
	rng := rand.New(rand.NewSource(127))
	net := MustMLP([]int{27, 48, 48, 1}, ReLU, Linear, rng)
	net.EnableF32()
	target := net.Clone()
	target.EnableF32()
	opt := MustAdam(1e-3)
	const rows = 32
	x := make([]float32, rows*27)
	dOut := make([]float32, rows)
	for i := range x {
		x[i] = float32(rng.NormFloat64())
	}
	for i := range dOut {
		dOut[i] = float32(rng.NormFloat64())
	}
	step := func() {
		net.ForwardBatchF32(x, rows)
		net.ZeroGradF32()
		net.BackwardBatchSplitF32(dOut, rows, rows/2)
		net.ScaleGradF32(1.0 / rows)
		opt.StepF32(net)
		if err := target.SoftUpdateF32(net, 0.01); err != nil {
			t.Fatal(err)
		}
	}
	step() // warm scratch, moments and slice caches
	if allocs := testing.AllocsPerRun(20, step); allocs != 0 {
		t.Errorf("steady-state f32 train step allocates %v/op, want 0", allocs)
	}
}

// BenchmarkDenseForwardBatchF32 is the f32 counterpart of
// BenchmarkDenseForwardBatch (same critic shape, same rows).
func BenchmarkDenseForwardBatchF32(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	net := MustMLP([]int{27, 48, 48, 1}, ReLU, Linear, rng)
	net.EnableF32()
	const rows = 32
	x := make([]float32, rows*27)
	for i := range x {
		x[i] = float32(rng.NormFloat64())
	}
	net.ForwardBatchF32(x, rows)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.ForwardBatchF32(x, rows)
	}
}

// BenchmarkDenseBackwardBatchF32 is the f32 counterpart of
// BenchmarkDenseBackwardBatch.
func BenchmarkDenseBackwardBatchF32(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	net := MustMLP([]int{27, 48, 48, 1}, ReLU, Linear, rng)
	net.EnableF32()
	const rows = 32
	x := make([]float32, rows*27)
	dOut := make([]float32, rows)
	for i := range x {
		x[i] = float32(rng.NormFloat64())
	}
	for i := range dOut {
		dOut[i] = float32(rng.NormFloat64())
	}
	net.ForwardBatchF32(x, rows)
	net.BackwardBatchF32(dOut, rows)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.BackwardBatchF32(dOut, rows)
	}
}
