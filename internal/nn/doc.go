// Package nn is a small, dependency-free neural-network library: the
// dense multilayer perceptrons, Adam optimizer and gob checkpointing
// that GreenNFV's DDPG actor and critic are built from. It replaces
// the paper's Python 3.6 + TensorFlow learner with a pure-Go
// implementation sized for the problem (networks of a few thousand
// parameters, trained on one machine).
//
// # Paper mapping
//
// The actor/critic MLPs of Algorithm 2 (§4.3.2); checkpointing
// (MarshalBinary) is the train-once/deploy-many artifact Figure 11
// amortizes.
//
// # Concurrency and determinism
//
// Networks are NOT goroutine-safe: forward caches activations for
// the following backward pass, and batch passes reuse layer-owned
// scratch. Give each concurrent user its own Clone. Initialization
// and training are deterministic given the seed on a fixed CPU
// feature set: the hot kernels (dot, axpy, Adam, soft-update) have
// AVX2+FMA assembly variants, CPUID-gated with a pure-Go fallback,
// and FMA contraction rounds differently than the scalar code — so
// results are reproducible on a given machine but may differ in the
// last bits across machines with different vector support. The
// batch passes (ForwardBatch/BackwardBatch and the BackwardBatchSplit
// variant) allocate nothing in steady state; scalar Backward is also
// allocation-free.
//
// # Float32 fast path
//
// The batch engine has a single-precision mirror (batch32.go): f32
// AVX2+FMA kernels with 8 lanes per register instead of 4, halving
// memory traffic on the dot-kernel-bound learn step. The path is an
// explicit opt-in with a snapshot/flush contract: EnableF32 copies
// the f64 weights into f32 mirrors, the *F32 passes, Adam.StepF32 and
// SoftUpdateF32 then treat the mirrors as the authoritative weights,
// and FlushF32 writes them back for serialization and scalar f64
// inference. Determinism: the f32 path is deterministic given the
// seed on a fixed CPU feature set (same caveat as f64), but it is NOT
// bit-comparable to the f64 path and makes no parity promise beyond
// the quantified bound in the ddpg package's f32-vs-f64 test; the
// activation functions may use faster float32 approximations
// (tanh32). Nothing on the f64 path reads the mirrors, so the
// deterministic f64 figure path is unaffected by f32 use elsewhere.
// The f32 batch passes, optimizer step and soft-update are zero-alloc
// in steady state, pinned by TestF32ZeroAllocSteadyState.
package nn
