// Package nn is a small, dependency-free neural-network library: the
// dense multilayer perceptrons, Adam optimizer and gob checkpointing
// that GreenNFV's DDPG actor and critic are built from. It replaces
// the paper's Python 3.6 + TensorFlow learner with a pure-Go
// implementation sized for the problem (networks of a few thousand
// parameters, trained on one machine).
//
// # Paper mapping
//
// The actor/critic MLPs of Algorithm 2 (§4.3.2); checkpointing
// (MarshalBinary) is the train-once/deploy-many artifact Figure 11
// amortizes.
//
// # Concurrency and determinism
//
// Networks are NOT goroutine-safe: forward caches activations for
// the following backward pass, and batch passes reuse layer-owned
// scratch. Give each concurrent user its own Clone. Initialization
// and training are deterministic given the seed on a fixed CPU
// feature set: the hot kernels (dot, axpy, Adam, soft-update) have
// AVX2+FMA assembly variants, CPUID-gated with a pure-Go fallback,
// and FMA contraction rounds differently than the scalar code — so
// results are reproducible on a given machine but may differ in the
// last bits across machines with different vector support. The
// batch passes (ForwardBatch/BackwardBatch and the BackwardBatchSplit
// variant) allocate nothing in steady state; scalar Backward is also
// allocation-free.
package nn
