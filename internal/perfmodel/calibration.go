package perfmodel

import (
	"greennfv/internal/hw/cache"
	"greennfv/internal/hw/power"
)

// Default returns the model calibrated to the paper's testbed class.
// The constants were fitted so the §3 micro-benchmarks reproduce in
// shape (see perfmodel tests and DESIGN.md §4 for the acceptance
// criteria):
//
//   - Figure 1: chain throughput degrades and energy/MP rises as its
//     LLC share shrinks below its working set.
//   - Figure 2: throughput and energy grow non-linearly with DVFS
//     frequency (the time-domain miss penalty causes the sub-linear
//     throughput gain).
//   - Figure 3: throughput rises then falls with batch size; misses
//     fall then rise.
//   - Figure 4: throughput rises then falls with DMA buffer size;
//     energy/MP is U-shaped.
func Default() Config {
	return Config{
		Power:                power.Default(),
		Cache:                cache.XeonE5v4(),
		LinkBps:              10e9,
		NumCores:             16,
		MgmtCores:            0.5, // shared RX + TX threads
		MissPenaltyNs:        85,
		CallOverheadCycles:   2600,
		MbufBytes:            2048,
		PollIdleFraction:     1.0,  // DPDK busy-poll burns everything
		PollMixFraction:      0.10, // hybrid poll+callback residual
		IdleResidualBusyPoll: 0.62, // C-states disabled: idle cores near C1
		IdleResidualSleep:    0.05, // GreenNFV parks idle cores in C6
		DDIOEvictMax:         0.85,
		WindowSeconds:        10,
		StaticCoreWatts:      6,
		InterNFRefetchLines:  0.5,
	}
}

// StandardChain returns the evaluation chain the paper deploys per
// node: three NFs in series. The mix (firewall → NAT → IDS-lite
// monitor profile) covers header-only and state-heavy behaviour.
func StandardChain() ChainSpec {
	return ChainSpec{
		Name: "standard3",
		NFs: []NFSpec{
			{Name: "firewall", CyclesPerPacket: 900, StateBytes: 64 << 10, StateLinesPerPacket: 3},
			{Name: "nat", CyclesPerPacket: 1100, StateBytes: 512 << 10, StateLinesPerPacket: 4},
			{Name: "monitor", CyclesPerPacket: 800, StateBytes: 2 << 20, StateLinesPerPacket: 5},
		},
	}
}

// HeavyChain returns a state- and payload-heavy chain (IDS + crypto)
// used for the LLC sensitivity experiments: its working set makes LLC
// allocation decisive, as in paper Figure 1's chain C1.
func HeavyChain() ChainSpec {
	return ChainSpec{
		Name: "heavy3",
		NFs: []NFSpec{
			{Name: "ids", CyclesPerPacket: 900, CyclesPerByte: 2.0, StateBytes: 6 << 20, StateLinesPerPacket: 16},
			{Name: "crypto", CyclesPerPacket: 700, CyclesPerByte: 1.5, StateBytes: 2 << 20, StateLinesPerPacket: 6},
			{Name: "router", CyclesPerPacket: 600, StateBytes: 4 << 20, StateLinesPerPacket: 10},
		},
	}
}

// LightChain returns a header-only chain (chain C2 of Figure 1).
func LightChain() ChainSpec {
	return ChainSpec{
		Name: "light2",
		NFs: []NFSpec{
			{Name: "firewall", CyclesPerPacket: 900, StateBytes: 64 << 10, StateLinesPerPacket: 3},
			{Name: "nat", CyclesPerPacket: 1100, StateBytes: 256 << 10, StateLinesPerPacket: 4},
		},
	}
}

// DefaultKnobs returns the platform defaults the Baseline runs with:
// performance governor (max frequency), one dedicated core per NF,
// unpartitioned LLC (modelled as an even share), the stock DPDK
// mempool of 8191 × 2 KiB mbufs (~16 MB — far past the 2 MB DDIO
// partition, a classic untuned-deployment pitfall), and unbatched
// per-packet processing.
func DefaultKnobs(numNFs int) []NFKnobs {
	ks := make([]NFKnobs, numNFs)
	for i := range ks {
		ks[i] = NFKnobs{
			CPUShare:    1.0,
			FreqGHz:     2.1,
			LLCFraction: 1.0 / float64(numNFs),
			DMABytes:    16 << 20,
			Batch:       1,
		}
	}
	return ks
}

// KnobBounds reports the tunable ranges used by every controller and
// the RL action scaling: [CPUShare, FreqGHz, LLCFraction, DMABytes,
// Batch].
type KnobBounds struct {
	ShareMin, ShareMax float64
	FreqMin, FreqMax   float64
	LLCMin, LLCMax     float64
	DMAMin, DMAMax     int64
	BatchMin, BatchMax int
}

// DefaultBounds matches the paper's evaluation ranges.
func DefaultBounds() KnobBounds {
	return KnobBounds{
		ShareMin: 0.1, ShareMax: 4.0,
		FreqMin: 1.2, FreqMax: 2.1,
		LLCMin: 0.02, LLCMax: 1.0,
		DMAMin: 1 << 20, DMAMax: 40 << 20,
		BatchMin: 1, BatchMax: 256,
	}
}

// Clamp forces a knob set inside the bounds.
func (b KnobBounds) Clamp(k NFKnobs) NFKnobs {
	k.CPUShare = clamp(k.CPUShare, b.ShareMin, b.ShareMax)
	k.FreqGHz = clamp(k.FreqGHz, b.FreqMin, b.FreqMax)
	k.LLCFraction = clamp(k.LLCFraction, b.LLCMin, b.LLCMax)
	if k.DMABytes < b.DMAMin {
		k.DMABytes = b.DMAMin
	}
	if k.DMABytes > b.DMAMax {
		k.DMABytes = b.DMAMax
	}
	if k.Batch < b.BatchMin {
		k.Batch = b.BatchMin
	}
	if k.Batch > b.BatchMax {
		k.Batch = b.BatchMax
	}
	return k
}
