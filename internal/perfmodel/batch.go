package perfmodel

import (
	"fmt"

	"greennfv/internal/pool"
)

// BatchJob is one evaluation point of a grid sweep: a chain, its
// per-NF knob settings, the offered traffic, and the platform
// variant. The figure drivers build one job per table cell and fan
// them through BatchEvaluate.
type BatchJob struct {
	Chain   ChainSpec
	Knobs   []NFKnobs
	Traffic Traffic
	Options EvalOptions
}

// PreallocResults returns a results slice for the given jobs with
// every result's PerNF scratch carved out of one contiguous backing
// array, so a whole grid sweep costs two allocations instead of one
// per job.
func PreallocResults(jobs []BatchJob) []Result {
	total := 0
	for i := range jobs {
		total += len(jobs[i].Knobs)
	}
	backing := make([]NFResult, total)
	results := make([]Result, len(jobs))
	off := 0
	for i := range jobs {
		n := len(jobs[i].Knobs)
		results[i].PerNF = backing[off : off : off+n]
		off += n
	}
	return results
}

// BatchEvaluate evaluates jobs[i] into results[i], fanning the jobs
// across the shared bounded worker pool. results must have the same
// length as jobs; each result's PerNF scratch is reused as in
// EvaluateInto, so a sweep that recycles its results slice costs one
// small closure allocation per call and nothing per job. workers <= 0
// selects GOMAXPROCS; with one worker (or one job) the loop runs
// inline with no goroutines. Job order is preserved by construction —
// results[i] always corresponds to jobs[i] — and the outcome is
// identical to evaluating serially, so callers may treat the worker
// count purely as a throughput knob.
//
// On failure the error of the lowest-indexed failing job is returned
// (deterministic under concurrency: lower-indexed jobs are always
// claimed first and run to completion), no new jobs are started once
// one has failed, and results above the failing index may be left
// untouched — on a non-nil error, treat the whole results slice as
// invalid.
func (c *Config) BatchEvaluate(jobs []BatchJob, results []Result, workers int) error {
	if len(results) != len(jobs) {
		return fmt.Errorf("perfmodel: %d results for %d jobs", len(results), len(jobs))
	}
	if len(jobs) == 0 {
		return nil
	}
	// workers <= 0 selects GOMAXPROCS inside pool.ForEach.
	_, err := pool.ForEach(len(jobs), workers, func(i int) error {
		j := &jobs[i]
		if err := c.EvaluateInto(&results[i], j.Chain, j.Knobs, j.Traffic, j.Options); err != nil {
			return fmt.Errorf("perfmodel: job %d: %w", i, err)
		}
		return nil
	})
	return err
}
