// Package perfmodel is the simulated testbed: an analytic performance
// and energy model that maps (resource knobs, traffic, chain
// composition) to (throughput, LLC misses, CPU utilization, power,
// energy). It substitutes for the paper's physical servers — the six
// Xeon E5-2620 v4 nodes with X540 NICs and a Yokogawa power meter —
// and is calibrated so the §3 micro-benchmarks (paper Figures 1–4)
// reproduce in shape.
//
// Both the fast RL environment (internal/env) and the experiment
// harness evaluate through this model, so the policies GreenNFV
// learns and the numbers the benchmarks report come from the same
// physics.
//
// # Paper mapping
//
//   - Evaluate/EvaluateInto: the end-to-end knobs→measurement map
//     behind every figure; calibration targets Figures 1–4.
//   - EvalOptions: the platform variants of the Figure 9 comparison
//     (busy-poll vs poll/callback mix, C-state policy, LLC
//     contention).
//   - ChainSpec presets (calibration.go): the paper's evaluation
//     chains.
//
// # Concurrency and determinism
//
// Evaluation is a pure function of its inputs: same knobs, traffic
// and options give bit-identical results, which is what keeps the
// recorded figure outputs byte-identical across PRs. EvaluateInto is
// the zero-alloc path — the caller owns the PerNF scratch and the
// steady state allocates nothing (Evaluate is a convenience wrapper
// that allocates fresh results). BatchEvaluate fans a knob grid over
// the shared bounded worker pool (internal/pool) and is
// order-preserving and bit-identical at any worker count, so the
// figure drivers can parallelize without perturbing recorded tables.
// Config and ChainSpec values are read-only after construction and
// safe to share between goroutines.
package perfmodel
