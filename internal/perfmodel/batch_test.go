package perfmodel

import (
	"math/rand"
	"testing"
)

// gridJobs builds a deterministic pseudo-random knob grid across the
// three calibrated chains, mixed traffic and platform variants — the
// shape the figure drivers sweep.
func gridJobs(n int) []BatchJob {
	rng := rand.New(rand.NewSource(42))
	chains := []ChainSpec{StandardChain(), HeavyChain(), LightChain()}
	b := DefaultBounds()
	jobs := make([]BatchJob, 0, n)
	for i := 0; i < n; i++ {
		chain := chains[i%len(chains)]
		knobs := make([]NFKnobs, len(chain.NFs))
		for j := range knobs {
			knobs[j] = NFKnobs{
				CPUShare:    b.ShareMin + rng.Float64()*(b.ShareMax-b.ShareMin),
				FreqGHz:     b.FreqMin + rng.Float64()*(b.FreqMax-b.FreqMin),
				LLCFraction: b.LLCMin + rng.Float64()*(b.LLCMax-b.LLCMin),
				DMABytes:    b.DMAMin + rng.Int63n(b.DMAMax-b.DMAMin),
				Batch:       b.BatchMin + rng.Intn(b.BatchMax-b.BatchMin),
			}
		}
		jobs = append(jobs, BatchJob{
			Chain: chain,
			Knobs: knobs,
			Traffic: Traffic{
				OfferedPPS: 1e5 + rng.Float64()*14e6,
				FrameBytes: 64 + rng.Intn(1455),
				Burstiness: rng.Float64() * 8,
			},
			Options: EvalOptions{
				BusyPoll:         i%2 == 0,
				NoSleep:          i%3 == 0,
				ContendingChains: i % 4,
			},
		})
	}
	return jobs
}

func resultsEqual(a, b Result) bool {
	if a.ThroughputPPS != b.ThroughputPPS || a.ThroughputGbps != b.ThroughputGbps ||
		a.DropProb != b.DropProb || a.MissRate != b.MissRate ||
		a.MissesPerSecond != b.MissesPerSecond || a.CPUPercent != b.CPUPercent ||
		a.Utilization != b.Utilization || a.PowerWatts != b.PowerWatts ||
		a.EnergyJoules != b.EnergyJoules || a.EnergyPerMPkt != b.EnergyPerMPkt ||
		a.Efficiency != b.Efficiency || len(a.PerNF) != len(b.PerNF) {
		return false
	}
	for i := range a.PerNF {
		if a.PerNF[i] != b.PerNF[i] {
			return false
		}
	}
	return true
}

// EvaluateInto must be bit-identical to Evaluate — it IS the scalar
// path, with the allocation moved to the caller.
func TestEvaluateIntoMatchesEvaluate(t *testing.T) {
	cfg := Default()
	var scratch Result
	for i, j := range gridJobs(64) {
		want, err := cfg.Evaluate(j.Chain, j.Knobs, j.Traffic, j.Options)
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		if err := cfg.EvaluateInto(&scratch, j.Chain, j.Knobs, j.Traffic, j.Options); err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		if !resultsEqual(want, scratch) {
			t.Fatalf("job %d: EvaluateInto diverges from Evaluate:\n%+v\nvs\n%+v", i, scratch, want)
		}
	}
}

// BatchEvaluate must produce bit-identical results at any worker
// count (the pool is a throughput knob, not a semantics knob). CI
// runs this under -race, which also exercises the pool for data
// races.
func TestBatchEvaluateMatchesSerial(t *testing.T) {
	cfg := Default()
	jobs := gridJobs(97) // odd count: uneven split across workers
	want := make([]Result, len(jobs))
	for i, j := range jobs {
		r, err := cfg.Evaluate(j.Chain, j.Knobs, j.Traffic, j.Options)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = r
	}
	for _, workers := range []int{1, 2, 4, 16} {
		got := make([]Result, len(jobs))
		if err := cfg.BatchEvaluate(jobs, got, workers); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range got {
			if !resultsEqual(want[i], got[i]) {
				t.Fatalf("workers=%d job %d: batch diverges from scalar", workers, i)
			}
		}
	}
}

// The reported error must be the lowest-indexed failure regardless of
// scheduling. Jobs below the failing index always evaluate (they are
// claimed first); later jobs may be skipped once the failure stops
// the batch.
func TestBatchEvaluateDeterministicError(t *testing.T) {
	cfg := Default()
	jobs := gridJobs(32)
	jobs[7].Knobs = nil  // knob/NF mismatch
	jobs[21].Knobs = nil // a later failure that must not win
	for _, workers := range []int{1, 4} {
		results := make([]Result, len(jobs))
		err := cfg.BatchEvaluate(jobs, results, workers)
		if err == nil {
			t.Fatalf("workers=%d: bad jobs accepted", workers)
		}
		want := "perfmodel: job 7: "
		if got := err.Error(); len(got) < len(want) || got[:len(want)] != want {
			t.Errorf("workers=%d: error %q does not report lowest failing job", workers, got)
		}
		if results[6].ThroughputPPS <= 0 {
			t.Errorf("workers=%d: job below the failing index skipped", workers)
		}
	}
	results := make([]Result, len(jobs))
	if err := cfg.BatchEvaluate(jobs, results[:3], 2); err == nil {
		t.Error("results length mismatch accepted")
	}
}

// The steady-state evaluation core must not allocate: this is the
// contract the RL environment's step path and the grid sweeps rely
// on.
func TestEvaluateIntoZeroAlloc(t *testing.T) {
	cfg := Default()
	chain := StandardChain()
	knobs := DefaultKnobs(len(chain.NFs))
	tr := Traffic{OfferedPPS: 2e6, FrameBytes: 512, Burstiness: 1}
	var res Result
	// Warm the PerNF scratch, then demand zero allocations.
	if err := cfg.EvaluateInto(&res, chain, knobs, tr, EvalOptions{}); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := cfg.EvaluateInto(&res, chain, knobs, tr, EvalOptions{}); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("EvaluateInto allocates %.1f objects per call, want 0", allocs)
	}
}

func BenchmarkEvaluateInto(b *testing.B) {
	cfg := Default()
	chain := StandardChain()
	knobs := DefaultKnobs(len(chain.NFs))
	tr := Traffic{OfferedPPS: 2e6, FrameBytes: 512, Burstiness: 1}
	var res Result
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cfg.EvaluateInto(&res, chain, knobs, tr, EvalOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvaluate(b *testing.B) {
	cfg := Default()
	chain := StandardChain()
	knobs := DefaultKnobs(len(chain.NFs))
	tr := Traffic{OfferedPPS: 2e6, FrameBytes: 512, Burstiness: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cfg.Evaluate(chain, knobs, tr, EvalOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBatchEvaluate64(b *testing.B) {
	cfg := Default()
	jobs := gridJobs(64)
	results := make([]Result, len(jobs))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cfg.BatchEvaluate(jobs, results, 0); err != nil {
			b.Fatal(err)
		}
	}
}
