package perfmodel

import (
	"math"
	"testing"

	"greennfv/internal/onvm"
)

func defaultTraffic() Traffic {
	return Traffic{OfferedPPS: 2.2e6, FrameBytes: 512, Burstiness: 1}
}

func TestDefaultConfigValidates(t *testing.T) {
	cfg := Default()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestValidateCatchesBadConfigs(t *testing.T) {
	mutations := []func(*Config){
		func(c *Config) { c.LinkBps = 0 },
		func(c *Config) { c.NumCores = 0 },
		func(c *Config) { c.MissPenaltyNs = 0 },
		func(c *Config) { c.CallOverheadCycles = -1 },
		func(c *Config) { c.WindowSeconds = 0 },
		func(c *Config) { c.PollIdleFraction = 2 },
		func(c *Config) { c.PollMixFraction = -0.5 },
	}
	for i, mut := range mutations {
		cfg := Default()
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestEvaluateInputValidation(t *testing.T) {
	cfg := Default()
	chain := StandardChain()
	if _, err := cfg.Evaluate(ChainSpec{}, nil, defaultTraffic(), EvalOptions{}); err == nil {
		t.Error("empty chain accepted")
	}
	if _, err := cfg.Evaluate(chain, make([]NFKnobs, 1), defaultTraffic(), EvalOptions{}); err == nil {
		t.Error("knob count mismatch accepted")
	}
	if _, err := cfg.EvaluateUniform(chain, DefaultKnobs(1)[0], Traffic{OfferedPPS: -1, FrameBytes: 64}, EvalOptions{}); err == nil {
		t.Error("negative load accepted")
	}
	if _, err := cfg.EvaluateUniform(chain, DefaultKnobs(1)[0], Traffic{OfferedPPS: 1, FrameBytes: 10}, EvalOptions{}); err == nil {
		t.Error("tiny frame accepted")
	}
}

// Baseline sanity: platform defaults under the standard workload land
// near the paper's baseline operating point (~2 Gbps, ~2.5-3 kJ).
func TestBaselineOperatingPoint(t *testing.T) {
	cfg := Default()
	res, err := cfg.Evaluate(StandardChain(), DefaultKnobs(3), defaultTraffic(), EvalOptions{BusyPoll: true, NoSleep: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.ThroughputGbps < 1.0 || res.ThroughputGbps > 3.5 {
		t.Errorf("baseline throughput = %.2f Gbps, want ~2", res.ThroughputGbps)
	}
	if res.EnergyJoules < 2200 || res.EnergyJoules > 3400 {
		t.Errorf("baseline energy = %.0f J, want ~2700", res.EnergyJoules)
	}
}

// Tuned headroom: the knob space must contain a configuration about
// 4x the baseline throughput at two-thirds of its energy — otherwise
// no controller can reproduce Figure 9.
func TestTunedHeadroom(t *testing.T) {
	cfg := Default()
	base, err := cfg.Evaluate(StandardChain(), DefaultKnobs(3), defaultTraffic(), EvalOptions{BusyPoll: true, NoSleep: true})
	if err != nil {
		t.Fatal(err)
	}
	tuned := NFKnobs{CPUShare: 2.0, FreqGHz: 2.1, LLCFraction: 0.33, DMABytes: 2 << 20, Batch: 128}
	best, err := cfg.EvaluateUniform(StandardChain(), tuned, defaultTraffic(), EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ratio := best.ThroughputGbps / base.ThroughputGbps
	if ratio < 3.5 {
		t.Errorf("tuned/baseline throughput = %.2fx, want >= 3.5x", ratio)
	}
	if best.EnergyJoules > 0.75*base.EnergyJoules {
		t.Errorf("tuned energy = %.0f J vs baseline %.0f J, want <= 75%%",
			best.EnergyJoules, base.EnergyJoules)
	}
}

// Figure 1 shape: a cache-hungry chain degrades (throughput down,
// energy/MP up, misses up) as its LLC share shrinks; a light chain
// with a small working set barely moves.
func TestFig1LLCShape(t *testing.T) {
	cfg := Default()
	heavy := HeavyChain()
	light := LightChain()
	splits := []float64{0.9, 0.7, 0.4, 0.2}
	var heavyTput, heavyEpm, heavyMiss, lightTput []float64
	for _, s := range splits {
		kH := NFKnobs{CPUShare: 4, FreqGHz: 2.1, LLCFraction: s / 3, DMABytes: 2 << 20, Batch: 64}
		rH, err := cfg.EvaluateUniform(heavy, kH, Traffic{OfferedPPS: 13e6, FrameBytes: 64, Burstiness: 1}, EvalOptions{})
		if err != nil {
			t.Fatal(err)
		}
		kL := NFKnobs{CPUShare: 1, FreqGHz: 2.1, LLCFraction: (1 - s) / 2, DMABytes: 2 << 20, Batch: 64}
		rL, err := cfg.EvaluateUniform(light, kL, Traffic{OfferedPPS: 1e6, FrameBytes: 64, Burstiness: 1}, EvalOptions{})
		if err != nil {
			t.Fatal(err)
		}
		heavyTput = append(heavyTput, rH.ThroughputGbps)
		heavyEpm = append(heavyEpm, rH.EnergyPerMPkt)
		heavyMiss = append(heavyMiss, rH.MissesPerSecond)
		lightTput = append(lightTput, rL.ThroughputGbps)
	}
	for i := 1; i < len(splits); i++ {
		if heavyTput[i] >= heavyTput[i-1] {
			t.Errorf("heavy throughput not degrading: %v", heavyTput)
			break
		}
	}
	if heavyTput[0] < 1.5*heavyTput[len(heavyTput)-1] {
		t.Errorf("heavy degradation too shallow: %v", heavyTput)
	}
	if heavyEpm[len(heavyEpm)-1] <= heavyEpm[0] {
		t.Errorf("heavy energy/MP not rising: %v", heavyEpm)
	}
	if heavyMiss[len(heavyMiss)-1] <= heavyMiss[0] {
		t.Errorf("heavy misses not rising: %v", heavyMiss)
	}
	// Light chain keeps >90% of its throughput: 1 Mpps always fits.
	for i := 1; i < len(lightTput); i++ {
		if lightTput[i] < 0.9*lightTput[0] {
			t.Errorf("light chain degraded: %v", lightTput)
			break
		}
	}
}

// Figure 2 shape: throughput and energy both increase with DVFS
// frequency; the throughput gain is sub-linear in f (time-domain miss
// stalls don't scale with frequency).
func TestFig2FrequencyShape(t *testing.T) {
	cfg := Default()
	chain := HeavyChain()
	tr := Traffic{OfferedPPS: 812743, FrameBytes: 1518, Burstiness: 1}
	var tput, energy []float64
	freqs := []float64{1.2, 1.4, 1.6, 1.8, 2.0, 2.1}
	for _, f := range freqs {
		k := NFKnobs{CPUShare: 2, FreqGHz: f, LLCFraction: 0.15, DMABytes: 2 << 20, Batch: 32}
		r, err := cfg.EvaluateUniform(chain, k, tr, EvalOptions{BusyPoll: true, NoSleep: true})
		if err != nil {
			t.Fatal(err)
		}
		tput = append(tput, r.ThroughputGbps)
		energy = append(energy, r.EnergyJoules)
	}
	for i := 1; i < len(freqs); i++ {
		if tput[i] <= tput[i-1] {
			t.Errorf("throughput not increasing with f: %v", tput)
			break
		}
		if energy[i] <= energy[i-1] {
			t.Errorf("energy not increasing with f: %v", energy)
			break
		}
	}
	// Sub-linear: speedup below the frequency ratio.
	fRatio := freqs[len(freqs)-1] / freqs[0]
	tRatio := tput[len(tput)-1] / tput[0]
	if tRatio >= fRatio {
		t.Errorf("throughput gain %.3f not sub-linear in f ratio %.3f", tRatio, fRatio)
	}
	if tRatio < 1.2 {
		t.Errorf("throughput gain %.3f too flat", tRatio)
	}
}

// Figure 3 shape: throughput rises then falls with batch size; the
// miss rate falls (call amortization dominates) then rises (batch
// working set overflows the LLC share).
func TestFig3BatchShape(t *testing.T) {
	cfg := Default()
	chain := StandardChain()
	tr := Traffic{OfferedPPS: 3e6, FrameBytes: 256, Burstiness: 1}
	batches := []int{1, 8, 32, 64, 128, 200, 256}
	var tput, missPS []float64
	for _, b := range batches {
		k := NFKnobs{CPUShare: 1, FreqGHz: 2.1, LLCFraction: 0.06, DMABytes: 2 << 20, Batch: b}
		r, err := cfg.EvaluateUniform(chain, k, tr, EvalOptions{BusyPoll: true, NoSleep: true})
		if err != nil {
			t.Fatal(err)
		}
		tput = append(tput, r.ThroughputGbps)
		missPS = append(missPS, r.MissesPerSecond)
	}
	// Peak must be interior.
	peak := 0
	for i, v := range tput {
		if v > tput[peak] {
			peak = i
		}
	}
	if peak == 0 || peak == len(tput)-1 {
		t.Errorf("throughput peak at edge (%d): %v", peak, tput)
	}
	if tput[peak] < 1.15*tput[0] {
		t.Errorf("batching gain too small: %v", tput)
	}
	if tput[peak] < 1.02*tput[len(tput)-1] {
		t.Errorf("over-batching penalty missing: %v", tput)
	}
	// Miss rate at max batch exceeds the minimum.
	minMiss := math.Inf(1)
	for _, m := range missPS {
		if m < minMiss {
			minMiss = m
		}
	}
	if missPS[len(missPS)-1] <= minMiss {
		t.Errorf("misses not rising at large batch: %v", missPS)
	}
}

// Figure 4 shape: throughput rises (burst absorption) then falls
// (DDIO overflow) with DMA buffer size; energy/MP is U-shaped; large
// frames carry more Gbps than small ones.
func TestFig4DMAShape(t *testing.T) {
	cfg := Default()
	chain := LightChain()
	sizes := []int64{1 << 20, 2 << 20, 4 << 20, 8 << 20, 16 << 20, 28 << 20, 40 << 20}
	run := func(frame int, offered float64) (tput, epm []float64) {
		for _, d := range sizes {
			k := NFKnobs{CPUShare: 1, FreqGHz: 2.1, LLCFraction: 0.25, DMABytes: d, Batch: 64}
			r, err := cfg.EvaluateUniform(chain, k, Traffic{OfferedPPS: offered, FrameBytes: frame, Burstiness: 128}, EvalOptions{BusyPoll: true, NoSleep: true})
			if err != nil {
				t.Fatal(err)
			}
			tput = append(tput, r.ThroughputGbps)
			epm = append(epm, r.EnergyPerMPkt)
		}
		return
	}
	small, smallE := run(64, 3.0e6)
	big, _ := run(1518, 700e3)

	checkRiseFall := func(name string, v []float64) {
		peak := 0
		for i, x := range v {
			if x > v[peak] {
				peak = i
			}
		}
		if peak == 0 || peak == len(v)-1 {
			t.Errorf("%s: peak at edge (%d): %v", name, peak, v)
			return
		}
		if v[peak] < 1.03*v[0] || v[peak] < 1.05*v[len(v)-1] {
			t.Errorf("%s: rise/fall too shallow: %v", name, v)
		}
	}
	checkRiseFall("64B", small)
	checkRiseFall("1518B", big)
	// Energy/MP: trough interior (mirror of throughput under
	// busy-poll power).
	trough := 0
	for i, x := range smallE {
		if x < smallE[trough] {
			trough = i
		}
	}
	if trough == 0 || trough == len(smallE)-1 {
		t.Errorf("energy/MP trough at edge: %v", smallE)
	}
	// Large frames out-carry small ones.
	if big[2] <= small[2] {
		t.Errorf("1518B (%v) not above 64B (%v)", big[2], small[2])
	}
}

// Power accounting: busy-poll must burn strictly more energy than the
// poll/callback mix at identical throughput, and more CPU share with
// sleeping enabled must cost little when idle.
func TestPollModeEnergyGap(t *testing.T) {
	cfg := Default()
	chain := StandardChain()
	k := NFKnobs{CPUShare: 2, FreqGHz: 2.1, LLCFraction: 0.3, DMABytes: 2 << 20, Batch: 64}
	busy, err := cfg.EvaluateUniform(chain, k, defaultTraffic(), EvalOptions{BusyPoll: true, NoSleep: true})
	if err != nil {
		t.Fatal(err)
	}
	mix, err := cfg.EvaluateUniform(chain, k, defaultTraffic(), EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(busy.ThroughputGbps-mix.ThroughputGbps) > 1e-9 {
		t.Errorf("poll mode changed throughput: %v vs %v", busy.ThroughputGbps, mix.ThroughputGbps)
	}
	if mix.EnergyJoules >= 0.8*busy.EnergyJoules {
		t.Errorf("mix energy %v not well below busy-poll %v", mix.EnergyJoules, busy.EnergyJoules)
	}
}

// Contention: an unpartitioned cache shared by several chains behaves
// like a smaller allocation.
func TestContentionReducesThroughput(t *testing.T) {
	cfg := Default()
	chain := HeavyChain()
	k := NFKnobs{CPUShare: 4, FreqGHz: 2.1, LLCFraction: 0.33, DMABytes: 2 << 20, Batch: 64}
	tr := Traffic{OfferedPPS: 13e6, FrameBytes: 64, Burstiness: 1}
	alone, err := cfg.EvaluateUniform(chain, k, tr, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	contended, err := cfg.EvaluateUniform(chain, k, tr, EvalOptions{ContendingChains: 3})
	if err != nil {
		t.Fatal(err)
	}
	if contended.ThroughputGbps >= alone.ThroughputGbps {
		t.Errorf("contention did not reduce throughput: %v vs %v",
			contended.ThroughputGbps, alone.ThroughputGbps)
	}
}

// LLC oversubscription rescales instead of exceeding the cache.
func TestLLCOversubscriptionRescaled(t *testing.T) {
	cfg := Default()
	chain := StandardChain()
	over := []NFKnobs{
		{CPUShare: 1, FreqGHz: 2.1, LLCFraction: 0.8, DMABytes: 2 << 20, Batch: 32},
		{CPUShare: 1, FreqGHz: 2.1, LLCFraction: 0.8, DMABytes: 2 << 20, Batch: 32},
		{CPUShare: 1, FreqGHz: 2.1, LLCFraction: 0.8, DMABytes: 2 << 20, Batch: 32},
	}
	exact := []NFKnobs{
		{CPUShare: 1, FreqGHz: 2.1, LLCFraction: 1.0 / 3, DMABytes: 2 << 20, Batch: 32},
		{CPUShare: 1, FreqGHz: 2.1, LLCFraction: 1.0 / 3, DMABytes: 2 << 20, Batch: 32},
		{CPUShare: 1, FreqGHz: 2.1, LLCFraction: 1.0 / 3, DMABytes: 2 << 20, Batch: 32},
	}
	a, err := cfg.Evaluate(chain, over, defaultTraffic(), EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := cfg.Evaluate(chain, exact, defaultTraffic(), EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.ThroughputGbps-b.ThroughputGbps) > 1e-9 {
		t.Errorf("oversubscribed %v != rescaled %v", a.ThroughputGbps, b.ThroughputGbps)
	}
}

func TestSpecFromHandler(t *testing.T) {
	fw := onvm.NewFirewall(nil, true)
	spec := SpecFromHandler(fw)
	if spec.Name != "firewall" || spec.CyclesPerPacket <= 0 || spec.StateLinesPerPacket < 2 {
		t.Errorf("spec = %+v", spec)
	}
	chain := ChainFromHandlers("c", fw, onvm.NewMonitor())
	if len(chain.NFs) != 2 || chain.TotalStateBytes() <= 0 {
		t.Errorf("chain = %+v", chain)
	}
}

func TestKnobBoundsClamp(t *testing.T) {
	b := DefaultBounds()
	wild := NFKnobs{CPUShare: 99, FreqGHz: 0.1, LLCFraction: -2, DMABytes: 1, Batch: 100000}
	k := b.Clamp(wild)
	if k.CPUShare != b.ShareMax || k.FreqGHz != b.FreqMin || k.LLCFraction != b.LLCMin ||
		k.DMABytes != b.DMAMin || k.Batch != b.BatchMax {
		t.Errorf("clamp = %+v", k)
	}
}

// Throughput is never negative, never exceeds offered load or line
// rate, and energy is always at least idle power x window.
func TestResultInvariants(t *testing.T) {
	cfg := Default()
	chain := StandardChain()
	for _, k := range []NFKnobs{
		{CPUShare: 0.1, FreqGHz: 1.2, LLCFraction: 0.02, DMABytes: 1 << 20, Batch: 1},
		{CPUShare: 4, FreqGHz: 2.1, LLCFraction: 1, DMABytes: 40 << 20, Batch: 256},
		{CPUShare: 1, FreqGHz: 1.7, LLCFraction: 0.5, DMABytes: 8 << 20, Batch: 64},
	} {
		for _, tr := range []Traffic{
			{OfferedPPS: 1e3, FrameBytes: 64, Burstiness: 1},
			{OfferedPPS: 20e6, FrameBytes: 64, Burstiness: 50},
			{OfferedPPS: 1e6, FrameBytes: 1518, Burstiness: 0},
		} {
			r, err := cfg.EvaluateUniform(chain, k, tr, EvalOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if r.ThroughputPPS < 0 || r.ThroughputPPS > tr.OfferedPPS+1e-9 {
				t.Errorf("throughput %v outside [0, offered %v]", r.ThroughputPPS, tr.OfferedPPS)
			}
			if r.EnergyJoules < cfg.Power.PIdle*cfg.WindowSeconds-1e-9 {
				t.Errorf("energy %v below idle floor", r.EnergyJoules)
			}
			if r.Utilization < 0 || r.Utilization > 1 {
				t.Errorf("utilization %v outside [0,1]", r.Utilization)
			}
			if r.DropProb < 0 || r.DropProb > 1 {
				t.Errorf("drop prob %v", r.DropProb)
			}
		}
	}
}
