package perfmodel

import (
	"errors"
	"fmt"
	"math"

	"greennfv/internal/hw/cache"
	"greennfv/internal/hw/dma"
	"greennfv/internal/hw/power"
	"greennfv/internal/onvm"
	"greennfv/internal/traffic"
)

// NFSpec is one network function's computational profile, normally
// derived from an onvm handler's CostModel.
type NFSpec struct {
	// Name labels the NF in reports.
	Name string
	// CyclesPerPacket is fixed per-packet work.
	CyclesPerPacket float64
	// CyclesPerByte is payload-touching work.
	CyclesPerByte float64
	// StateBytes is cache-resident state.
	StateBytes int64
	// StateLinesPerPacket is how many distinct state cache lines one
	// packet touches (table walks); misses on these stall the NF.
	StateLinesPerPacket float64
}

// SpecFromHandler derives an NFSpec from a live onvm handler.
func SpecFromHandler(h onvm.Handler) NFSpec {
	c := h.Cost()
	// Heavier state implies more lines touched per packet; clamp to
	// a small constant range so light NFs stay light.
	lines := 2 + math.Log2(1+float64(c.StateBytes)/4096)
	if lines > 10 {
		lines = 10
	}
	return NFSpec{
		Name:                h.Name(),
		CyclesPerPacket:     c.CyclesPerPacket,
		CyclesPerByte:       c.CyclesPerByte,
		StateBytes:          c.StateBytes,
		StateLinesPerPacket: lines,
	}
}

// ChainSpec is a service chain's profile.
type ChainSpec struct {
	Name string
	NFs  []NFSpec
}

// ChainFromHandlers builds a ChainSpec from onvm handlers.
func ChainFromHandlers(name string, hs ...onvm.Handler) ChainSpec {
	spec := ChainSpec{Name: name}
	for _, h := range hs {
		spec.NFs = append(spec.NFs, SpecFromHandler(h))
	}
	return spec
}

// TotalStateBytes sums the chain's NF state.
func (c *ChainSpec) TotalStateBytes() int64 {
	var sum int64
	for i := range c.NFs {
		sum += c.NFs[i].StateBytes
	}
	return sum
}

// NFKnobs is the paper's per-NF action vector (equation 7):
// CPU share c, CPU frequency cf, LLC allocation llc, DMA buffer b,
// batch size bs.
type NFKnobs struct {
	// CPUShare is the NF's core allocation in cores (0.05–4.0;
	// the paper plots it as 5%–400%).
	CPUShare float64
	// FreqGHz is the NF's core DVFS setting.
	FreqGHz float64
	// LLCFraction is the NF's share of the non-DDIO LLC, in [0,1].
	// Across a node the fractions of all NFs should sum to <= 1;
	// Evaluate proportionally rescales if they exceed it.
	LLCFraction float64
	// DMABytes is the NF's packet-buffer allocation. For the chain
	// head this is the NIC DMA ring (DDIO-sensitive); for interior
	// NFs it is their inter-NF ring footprint.
	DMABytes int64
	// Batch is the dequeue burst size.
	Batch int
}

// Traffic is the offered load for one chain.
type Traffic struct {
	// OfferedPPS is the aggregate packet arrival rate.
	OfferedPPS float64
	// FrameBytes is the (mean) frame size.
	FrameBytes int
	// Burstiness is the index of dispersion of arrivals
	// (1 = Poisson, 0 = CBR, >1 = bursty).
	Burstiness float64
}

// NFResult is the per-NF evaluation outcome.
type NFResult struct {
	ServiceTimeNs float64
	CapacityPPS   float64
	BusyCores     float64
	MissRate      float64
}

// Result is a chain evaluation outcome over one measurement window.
type Result struct {
	// ThroughputPPS and ThroughputGbps are achieved goodput.
	ThroughputPPS  float64
	ThroughputGbps float64
	// DropProb is the RX-drop probability at the chain head.
	DropProb float64
	// MissRate is the packet-weighted mean LLC miss rate.
	MissRate float64
	// MissesPerSecond is the absolute LLC miss rate.
	MissesPerSecond float64
	// CPUPercent is Σ busy cores × 100 (the paper's 0–400% axis).
	CPUPercent float64
	// Utilization is the whole-server busy fraction in [0,1].
	Utilization float64
	// PowerWatts is mean server power over the window.
	PowerWatts float64
	// EnergyJoules is PowerWatts × window.
	EnergyJoules float64
	// EnergyPerMPkt is joules per million processed packets.
	EnergyPerMPkt float64
	// Efficiency is the paper's λ = throughput/energy
	// (Gbps per kilojoule).
	Efficiency float64
	// PerNF holds per-NF detail.
	PerNF []NFResult
}

// Config is the calibrated testbed model.
type Config struct {
	Power power.Model
	Cache cache.Config
	// LinkBps is the NIC line rate (10 GbE).
	LinkBps float64
	// NumCores is the node's core count.
	NumCores int
	// MgmtCores is the constant RX/TX + manager overhead in cores.
	MgmtCores float64
	// MissPenaltyNs is the DRAM stall for one LLC miss. It is a time,
	// not cycles, so higher frequency does not shrink it — this is
	// what makes Figure 2's throughput gain sub-linear in f.
	MissPenaltyNs float64
	// CallOverheadCycles is the fixed per-burst cost one NF pays
	// (ring dequeue, function dispatch); amortized by the batch knob.
	CallOverheadCycles float64
	// MbufBytes is the buffer slot size for working-set accounting.
	MbufBytes int64
	// PollIdleFraction is the share of *idle* allocated CPU still
	// burned when busy-polling. 1.0 models DPDK poll mode (the
	// Baseline); GreenNFV's poll/callback mix uses PollMixFraction.
	PollIdleFraction float64
	// PollMixFraction is the residual idle burn under the paper's
	// hybrid poll+callback NF management.
	PollMixFraction float64
	// IdleResidualBusyPoll is the effective utilization of
	// *unallocated* cores under the Baseline's DPDK tuning, which
	// disables C-states and pins the performance governor: idle cores
	// never sleep deeper than C1.
	IdleResidualBusyPoll float64
	// IdleResidualSleep is the same residual when GreenNFV's NF
	// sleeping is active (idle cores park in C6).
	IdleResidualSleep float64
	// DDIOEvictMax caps the extra packet-miss term caused by DMA
	// buffers overflowing the DDIO partition.
	DDIOEvictMax float64
	// WindowSeconds is the measurement window for energy (10 s: the
	// paper's per-experiment energies are 1–4 kJ at 100–400 W).
	WindowSeconds float64
	// StaticCoreWatts is the frequency-independent power floor of an
	// *active* core (leakage, uncore share, L1/L2). Without it the
	// model admits a "many slow cores" free lunch — allocating every
	// core at minimum frequency — that real silicon does not offer;
	// with it the share/frequency trade-off has a genuine interior
	// optimum.
	StaticCoreWatts float64
	// InterNFRefetchLines is the fraction of a packet's cache lines a
	// downstream NF must re-touch.
	InterNFRefetchLines float64
}

// Validate reports whether the configuration is usable.
func (c *Config) Validate() error {
	if err := c.Power.Validate(); err != nil {
		return err
	}
	if err := c.Cache.Validate(); err != nil {
		return err
	}
	switch {
	case c.LinkBps <= 0:
		return errors.New("perfmodel: LinkBps must be positive")
	case c.NumCores <= 0:
		return errors.New("perfmodel: NumCores must be positive")
	case c.MissPenaltyNs <= 0:
		return errors.New("perfmodel: MissPenaltyNs must be positive")
	case c.CallOverheadCycles < 0:
		return errors.New("perfmodel: CallOverheadCycles cannot be negative")
	case c.WindowSeconds <= 0:
		return errors.New("perfmodel: WindowSeconds must be positive")
	case c.PollIdleFraction < 0 || c.PollIdleFraction > 1:
		return errors.New("perfmodel: PollIdleFraction must be in [0,1]")
	case c.PollMixFraction < 0 || c.PollMixFraction > 1:
		return errors.New("perfmodel: PollMixFraction must be in [0,1]")
	}
	return nil
}

// EvalOptions selects evaluation variants. The zero value is the
// GreenNFV platform: poll/callback mix and deep C-state sleeping.
type EvalOptions struct {
	// BusyPoll uses PollIdleFraction (DPDK poll mode) instead of the
	// GreenNFV poll/callback mix for allocated-but-idle CPU share.
	BusyPoll bool
	// NoSleep disables deep C-states on unallocated cores (the
	// Baseline's DPDK tuning); EE-Pstate busy-polls (BusyPoll true)
	// but manages C-states (NoSleep false).
	NoSleep bool
	// ContendingChains is how many co-located chains share the LLC
	// when CAT partitioning is NOT applied: the effective allocation
	// divides by this. 0 or 1 means the chain's LLCFraction holds.
	ContendingChains int
}

// Evaluate runs the analytic model for one chain under per-NF knobs.
// knobs must have one entry per NF in the chain.
func (c *Config) Evaluate(chain ChainSpec, knobs []NFKnobs, tr Traffic, opt EvalOptions) (Result, error) {
	var res Result
	if err := c.EvaluateInto(&res, chain, knobs, tr, opt); err != nil {
		return Result{}, err
	}
	return res, nil
}

// EvaluateInto is Evaluate with a caller-owned result: the PerNF
// scratch inside res is reused when its capacity suffices, so a
// caller that evaluates in a loop (the RL environment, grid sweeps)
// performs no allocations in steady state. On error res is left in an
// unspecified state. res must not be shared between goroutines that
// evaluate concurrently.
func (c *Config) EvaluateInto(res *Result, chain ChainSpec, knobs []NFKnobs, tr Traffic, opt EvalOptions) error {
	if len(chain.NFs) == 0 {
		return errors.New("perfmodel: empty chain")
	}
	if len(knobs) != len(chain.NFs) {
		return fmt.Errorf("perfmodel: %d knob sets for %d NFs", len(knobs), len(chain.NFs))
	}
	if tr.OfferedPPS < 0 || tr.FrameBytes < traffic.MinFrame {
		return fmt.Errorf("perfmodel: invalid traffic %+v", tr)
	}
	burst := tr.Burstiness
	if burst < 0 {
		burst = 0
	}

	sharedLLC := float64(c.Cache.SharedBytes())
	// Rescale LLC fractions that oversubscribe the cache.
	var llcSum float64
	for i := range knobs {
		f := clamp(knobs[i].LLCFraction, 0, 1)
		llcSum += f
	}
	llcScale := 1.0
	if llcSum > 1 {
		llcScale = 1 / llcSum
	}

	lines := float64((tr.FrameBytes + 63) / 64)
	ddioBytes := c.Cache.DDIOBytes()

	// Head-of-chain packet-data miss rate: cold floor plus DDIO
	// overflow when the NIC DMA buffer spills past the DDIO ways.
	headDMA := knobs[0].DMABytes
	packetMiss := c.Cache.ColdMissRate +
		cache.DDIOOverflowEvictions(headDMA, ddioBytes, c.DDIOEvictMax)
	if packetMiss > 1 {
		packetMiss = 1
	}

	perNF := growNF(res.PerNF, len(chain.NFs))
	var weightedMiss float64
	var chainLLCBytes float64
	for i := range chain.NFs {
		nf := &chain.NFs[i]
		k := &knobs[i]
		freq := c.Power.ClampFreq(k.FreqGHz)
		share := clamp(k.CPUShare, 0.01, float64(c.NumCores))
		batch := k.Batch
		if batch < 1 {
			batch = 1
		}

		alloc := clamp(k.LLCFraction, 0, 1) * llcScale * sharedLLC
		if opt.ContendingChains > 1 {
			alloc /= float64(opt.ContendingChains)
		}
		chainLLCBytes += alloc

		// Working set: NF state plus the in-flight batch buffers of
		// the whole pipeline (each stage holds a burst, and the same
		// packets must stay resident between stages to avoid
		// re-fetch) plus this NF's ring footprint.
		ws := float64(nf.StateBytes) +
			float64(batch)*float64(c.MbufBytes)*float64(len(chain.NFs))
		if i > 0 {
			ws += float64(k.DMABytes) / 4 // interior ring footprint, partially resident
		}
		stateMiss := cache.MissRate(int64(ws), int64(alloc), c.Cache.ColdMissRate)

		// Cycles: fixed + payload + per-burst dispatch amortized.
		cycles := nf.CyclesPerPacket + nf.CyclesPerByte*float64(tr.FrameBytes) +
			c.CallOverheadCycles/float64(batch)

		// Stalls: state-table misses for every NF; packet-line misses
		// for the head NF (DDIO path); partial packet re-fetch for
		// interior NFs when the chain's LLC share can't hold packets.
		stallNs := stateMiss * nf.StateLinesPerPacket * c.MissPenaltyNs
		if i == 0 {
			stallNs += packetMiss * lines * c.MissPenaltyNs
		} else {
			stallNs += stateMiss * c.InterNFRefetchLines * lines * c.MissPenaltyNs
		}

		t := cycles/freq + stallNs // ns per packet
		perNF[i] = NFResult{
			ServiceTimeNs: t,
			CapacityPPS:   share / (t * 1e-9),
			MissRate:      stateMiss,
		}
		weightedMiss += stateMiss
	}
	weightedMiss = (weightedMiss + packetMiss) / float64(len(chain.NFs)+1)

	// Chain capacity: the slowest stage bounds the pipeline.
	capacity := math.Inf(1)
	for i := range perNF {
		if perNF[i].CapacityPPS < capacity {
			capacity = perNF[i].CapacityPPS
		}
	}
	lineRate := traffic.LineRatePPS(c.LinkBps, tr.FrameBytes)
	offered := math.Min(tr.OfferedPPS, lineRate)

	// Head DMA buffer drops: M/M/1/k with burstiness-derated slots.
	buf := dma.Default().WithBytes(headDMA)
	slots := float64(buf.Slots())
	if burst > 1 {
		slots /= burst
	}
	derated := dma.Buffer{Bytes: int64(slots) * (buf.FrameBytes + buf.DescriptorBytes),
		DescriptorBytes: buf.DescriptorBytes, FrameBytes: buf.FrameBytes}
	dropProb := derated.DropProbability(offered, capacity)
	throughput := math.Min(offered*(1-dropProb), capacity)
	if throughput < 0 {
		throughput = 0
	}

	// Busy-core accounting: work time plus residual polling burn on
	// allocated-but-idle share, plus the C-state residual of
	// unallocated cores (the Baseline's DPDK tuning disables deep
	// C-states, so even unused cores draw near-C1 power).
	pollFrac := c.PollMixFraction
	if opt.BusyPoll {
		pollFrac = c.PollIdleFraction
	}
	idleResidual := c.IdleResidualSleep
	if opt.NoSleep {
		idleResidual = c.IdleResidualBusyPoll
	}
	var busySum, freqWeightedBusy float64
	for i := range perNF {
		share := clamp(knobs[i].CPUShare, 0.01, float64(c.NumCores))
		work := throughput * perNF[i].ServiceTimeNs * 1e-9 // cores busy with packets
		if work > share {
			work = share
		}
		busy := work + pollFrac*(share-work)
		perNF[i].BusyCores = busy
		busySum += busy
		freqWeightedBusy += busy * c.Power.ClampFreq(knobs[i].FreqGHz)
	}
	meanFreq := c.Power.FMin
	if busySum > 0 {
		meanFreq = freqWeightedBusy / busySum
	}

	active := busySum + c.MgmtCores
	if active > float64(c.NumCores) {
		active = float64(c.NumCores)
	}
	util := (active + idleResidual*(float64(c.NumCores)-active)) / float64(c.NumCores)
	if util > 1 {
		util = 1
	}
	pw := c.Power.Power(util, meanFreq) + c.StaticCoreWatts*active
	energy := pw * c.WindowSeconds

	gbps := traffic.ThroughputBps(throughput, tr.FrameBytes) / 1e9
	*res = Result{
		ThroughputPPS:   throughput,
		ThroughputGbps:  gbps,
		DropProb:        dropProb,
		MissRate:        weightedMiss,
		MissesPerSecond: throughput * weightedMiss * (lines + 4),
		CPUPercent:      busySum * 100,
		Utilization:     util,
		PowerWatts:      pw,
		EnergyJoules:    energy,
		Efficiency:      gbps / (energy / 1000),
		PerNF:           perNF,
	}
	if throughput > 0 {
		res.EnergyPerMPkt = energy / (throughput * c.WindowSeconds / 1e6)
	}
	return nil
}

// growNF returns buf resized to n, reallocating only when capacity is
// insufficient — steady-state EvaluateInto calls never allocate.
func growNF(buf []NFResult, n int) []NFResult {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]NFResult, n)
}

// EvaluateUniform applies one knob set to every NF of the chain, the
// common case for chain-granular control.
func (c *Config) EvaluateUniform(chain ChainSpec, k NFKnobs, tr Traffic, opt EvalOptions) (Result, error) {
	knobs := make([]NFKnobs, len(chain.NFs))
	for i := range knobs {
		knobs[i] = k
	}
	return c.Evaluate(chain, knobs, tr, opt)
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
