package stats

import "sync"

// Counters is a named-counter set for operational event counting —
// the serving control plane uses one per process for its health
// ledger (configs pushed, fallback activations, guardrail rejections,
// heartbeat misses). Unlike the measurement types in this package it
// IS goroutine-safe: RPC handlers, the serving loop and health
// monitors all bump it concurrently.
//
// Names are registered implicitly on first Add; Snapshot returns a
// deterministic (sorted-key) copy so tests and log lines are stable.
type Counters struct {
	mu sync.Mutex
	m  map[string]int64
	// keys caches the sorted name set; rebuilt only when a new name
	// appears, so Snapshot stays allocation-cheap at steady state.
	keys []string
}

// NewCounters returns an empty counter set.
func NewCounters() *Counters {
	return &Counters{m: make(map[string]int64)}
}

// Add bumps name by delta (which may be negative) and returns the new
// value.
func (c *Counters) Add(name string, delta int64) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.m[name]; !ok {
		c.keys = insertSorted(c.keys, name)
	}
	c.m[name] += delta
	return c.m[name]
}

// Inc bumps name by one and returns the new value.
func (c *Counters) Inc(name string) int64 { return c.Add(name, 1) }

// Get returns the current value of name (zero if never bumped).
func (c *Counters) Get(name string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m[name]
}

// Names returns the registered names in sorted order.
func (c *Counters) Names() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, len(c.keys))
	copy(out, c.keys)
	return out
}

// Snapshot returns a consistent copy of all counters. Iterating the
// map is non-deterministic; callers that need order pair it with
// Names.
func (c *Counters) Snapshot() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.m))
	for k, v := range c.m {
		out[k] = v
	}
	return out
}

// insertSorted inserts name into the sorted slice keys.
func insertSorted(keys []string, name string) []string {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if keys[mid] < name {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	keys = append(keys, "")
	copy(keys[lo+1:], keys[lo:])
	keys[lo] = name
	return keys
}
