package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEWMAFirstSampleDominates(t *testing.T) {
	e := NewEWMA(0.3)
	if e.Initialized() {
		t.Fatal("fresh EWMA reports initialized")
	}
	if got := e.Add(10); got != 10 {
		t.Errorf("first Add = %v, want 10", got)
	}
	if !e.Initialized() {
		t.Error("EWMA not initialized after first sample")
	}
}

func TestEWMAConvergesToConstant(t *testing.T) {
	e := NewEWMA(0.2)
	for i := 0; i < 200; i++ {
		e.Add(7.5)
	}
	if !almostEqual(e.Value(), 7.5, 1e-9) {
		t.Errorf("EWMA of constant = %v, want 7.5", e.Value())
	}
}

func TestEWMARecurrence(t *testing.T) {
	e := NewEWMA(0.25)
	e.Add(4)
	got := e.Add(8) // 0.25*8 + 0.75*4 = 5
	if !almostEqual(got, 5, 1e-12) {
		t.Errorf("EWMA = %v, want 5", got)
	}
}

func TestEWMAInvalidAlphaPanics(t *testing.T) {
	for _, a := range []float64{0, -0.1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewEWMA(%v) did not panic", a)
				}
			}()
			NewEWMA(a)
		}()
	}
}

// Property: EWMA output always lies within the range of inputs seen.
func TestEWMABounded(t *testing.T) {
	f := func(raw []float64) bool {
		e := NewEWMA(0.3)
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			e.Add(x)
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
		}
		if math.IsInf(lo, 1) {
			return true // no valid samples
		}
		v := e.Value()
		return v >= lo-1e-9 && v <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDESRejectsBadFactors(t *testing.T) {
	if _, err := NewDES(0, 0.5); err == nil {
		t.Error("alpha=0 accepted")
	}
	if _, err := NewDES(0.5, 1.2); err == nil {
		t.Error("beta=1.2 accepted")
	}
	if _, err := NewDES(0.5, 0.5); err != nil {
		t.Errorf("valid factors rejected: %v", err)
	}
}

func TestDESTracksLinearTrendExactly(t *testing.T) {
	// A pure linear series y = 3 + 2t should be forecast exactly once
	// the trend has locked in.
	d := MustDES(0.5, 0.5)
	for i := 0; i < 100; i++ {
		d.Observe(3 + 2*float64(i))
	}
	last := 3 + 2*99.0
	for h := 1; h <= 5; h++ {
		want := last + 2*float64(h)
		if !almostEqual(d.Forecast(h), want, 1e-6) {
			t.Errorf("Forecast(%d) = %v, want %v", h, d.Forecast(h), want)
		}
	}
	if !almostEqual(d.Trend(), 2, 1e-6) {
		t.Errorf("trend = %v, want 2", d.Trend())
	}
}

func TestDESConstantSeriesHasZeroTrend(t *testing.T) {
	d := MustDES(0.4, 0.3)
	for i := 0; i < 60; i++ {
		d.Observe(9)
	}
	if !almostEqual(d.Forecast(10), 9, 1e-9) {
		t.Errorf("Forecast = %v, want 9", d.Forecast(10))
	}
	if math.Abs(d.Trend()) > 1e-9 {
		t.Errorf("trend = %v, want ~0", d.Trend())
	}
}

func TestDESFewSamples(t *testing.T) {
	d := MustDES(0.5, 0.5)
	if d.Forecast(1) != 0 {
		t.Errorf("empty DES forecast = %v, want 0", d.Forecast(1))
	}
	d.Observe(5)
	if d.Forecast(3) != 5 {
		t.Errorf("single-sample forecast = %v, want 5", d.Forecast(3))
	}
	if d.N() != 1 {
		t.Errorf("N = %d, want 1", d.N())
	}
}

func TestDESReset(t *testing.T) {
	d := MustDES(0.5, 0.5)
	d.Observe(1)
	d.Observe(2)
	d.Reset()
	if d.N() != 0 || d.Level() != 0 || d.Trend() != 0 {
		t.Error("reset did not clear state")
	}
}
