package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestRateEstimatorSteadyRate(t *testing.T) {
	r := NewRateEstimator(10, 0.1)
	// 1000 events/s delivered in 10ms ticks of 10 events each.
	for i := 0; i < 500; i++ {
		r.Observe(float64(i)*0.01, 10)
	}
	got := r.Rate(5.0)
	if !almostEqual(got, 1000, 0.05) {
		t.Errorf("rate = %v, want ~1000", got)
	}
}

func TestRateEstimatorDecaysAfterSilence(t *testing.T) {
	r := NewRateEstimator(5, 0.2)
	for i := 0; i < 100; i++ {
		r.Observe(float64(i)*0.01, 20) // 2000/s for 1s
	}
	busy := r.Rate(1.0)
	idle := r.Rate(3.0) // 2s of silence flushes the 1s window
	if idle >= busy/10 {
		t.Errorf("rate did not decay: busy=%v idle=%v", busy, idle)
	}
}

func TestRateEstimatorIgnoresTimeRegression(t *testing.T) {
	r := NewRateEstimator(4, 0.25)
	r.Observe(1.0, 5)
	r.Observe(0.5, 5) // regression: treated as t=1.0
	if rate := r.Rate(1.0); rate <= 0 {
		t.Errorf("rate = %v, want > 0", rate)
	}
}

func TestRateEstimatorReset(t *testing.T) {
	r := NewRateEstimator(4, 0.25)
	r.Observe(0.1, 100)
	r.Reset()
	if rate := r.Rate(0); rate != 0 {
		t.Errorf("rate after reset = %v, want 0", rate)
	}
}

func TestRateEstimatorConstructorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewRateEstimator(0, 1) did not panic")
		}
	}()
	NewRateEstimator(0, 1)
}

func TestIndexOfDispersion(t *testing.T) {
	// CBR: identical counts, IoD = 0.
	cbr := []float64{10, 10, 10, 10, 10}
	if iod := IndexOfDispersion(cbr); iod != 0 {
		t.Errorf("CBR IoD = %v, want 0", iod)
	}
	// Poisson(λ=50): IoD ≈ 1.
	rng := rand.New(rand.NewSource(11))
	poisson := make([]float64, 5000)
	for i := range poisson {
		// Knuth's algorithm for small λ.
		l := math.Exp(-50)
		k, p := 0, 1.0
		for p > l {
			k++
			p *= rng.Float64()
		}
		poisson[i] = float64(k - 1)
	}
	if iod := IndexOfDispersion(poisson); iod < 0.8 || iod > 1.2 {
		t.Errorf("Poisson IoD = %v, want ~1", iod)
	}
	// Bursty: alternating silence and bursts, IoD >> 1.
	bursty := make([]float64, 100)
	for i := range bursty {
		if i%10 == 0 {
			bursty[i] = 500
		}
	}
	if iod := IndexOfDispersion(bursty); iod <= 10 {
		t.Errorf("bursty IoD = %v, want >> 1", iod)
	}
	if IndexOfDispersion(nil) != 0 {
		t.Error("empty IoD should be 0")
	}
}
