package stats

import (
	"fmt"
	"math"
	"sort"
)

// Histogram is a fixed-range linear-bucket histogram with overflow and
// underflow buckets. It answers approximate percentile queries in
// O(buckets) and is used for latency and batch-occupancy distributions
// in the packet simulator.
type Histogram struct {
	lo, hi   float64
	width    float64
	counts   []uint64
	under    uint64
	over     uint64
	total    uint64
	sum      float64
	observed Welford
}

// NewHistogram builds a histogram covering [lo, hi) with n equal
// buckets. It panics if n <= 0 or hi <= lo (construction constants).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 {
		panic("stats: histogram needs at least one bucket")
	}
	if hi <= lo {
		panic("stats: histogram range must be non-empty")
	}
	return &Histogram{
		lo:     lo,
		hi:     hi,
		width:  (hi - lo) / float64(n),
		counts: make([]uint64, n),
	}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.total++
	h.sum += x
	h.observed.Add(x)
	switch {
	case x < h.lo:
		h.under++
	case x >= h.hi:
		h.over++
	default:
		idx := int((x - h.lo) / h.width)
		if idx >= len(h.counts) { // guard fp edge at x == hi-epsilon
			idx = len(h.counts) - 1
		}
		h.counts[idx]++
	}
}

// Count reports the total number of observations, including the
// underflow and overflow buckets.
func (h *Histogram) Count() uint64 { return h.total }

// Mean reports the exact mean of all observations.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Stddev reports the exact sample standard deviation of observations.
func (h *Histogram) Stddev() float64 { return h.observed.Stddev() }

// Quantile reports an approximate q-quantile (q in [0,1]) by linear
// interpolation within the containing bucket. Underflow observations
// resolve to lo and overflow observations to hi.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(h.total)
	cum := float64(h.under)
	if target <= cum {
		return h.lo
	}
	for i, c := range h.counts {
		next := cum + float64(c)
		if target <= next && c > 0 {
			frac := (target - cum) / float64(c)
			return h.lo + (float64(i)+frac)*h.width
		}
		cum = next
	}
	return h.hi
}

// String renders a compact summary for logs.
func (h *Histogram) String() string {
	return fmt.Sprintf("hist{n=%d mean=%.4g p50=%.4g p99=%.4g}",
		h.total, h.Mean(), h.Quantile(0.5), h.Quantile(0.99))
}

// Reset clears all recorded observations.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.under, h.over, h.total, h.sum = 0, 0, 0, 0
	h.observed.Reset()
}

// Percentile computes the exact p-th percentile (p in [0,100]) of a
// sample slice using linear interpolation between closest ranks.
// The input is not modified.
func Percentile(sample []float64, p float64) float64 {
	if len(sample) == 0 {
		return math.NaN()
	}
	s := make([]float64, len(sample))
	copy(s, sample)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}
