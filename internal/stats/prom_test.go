package stats

import (
	"bytes"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// TestPromHistogramBuckets pins cumulative bucket semantics: le is
// inclusive, overflow lands in +Inf only, sum and count are exact.
func TestPromHistogramBuckets(t *testing.T) {
	h := NewPromHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 10, 50, 1000} {
		h.Observe(v)
	}
	if got := h.Count(); got != 6 {
		t.Fatalf("count = %d, want 6", got)
	}
	if got := h.Sum(); got != 1066.5 {
		t.Fatalf("sum = %g, want 1066.5", got)
	}
	var buf bytes.Buffer
	if err := writeHistogram(&buf, "lat", "help", h); err != nil {
		t.Fatal(err)
	}
	want := `# HELP lat help
# TYPE lat histogram
lat_bucket{le="1"} 2
lat_bucket{le="10"} 4
lat_bucket{le="100"} 5
lat_bucket{le="+Inf"} 6
lat_sum 1066.5
lat_count 6
`
	if buf.String() != want {
		t.Errorf("exposition:\n%s\nwant:\n%s", buf.String(), want)
	}
}

func TestPromHistogramPanics(t *testing.T) {
	for name, bounds := range map[string][]float64{
		"empty":    {},
		"unsorted": {10, 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s bounds did not panic", name)
				}
			}()
			NewPromHistogram(bounds)
		}()
	}
}

// TestRegistryExposition pins the full scrape: gauges, counter-set
// expansion with _total suffix, histograms, registration order, and
// that every line parses as valid exposition text.
func TestRegistryExposition(t *testing.T) {
	reg := NewRegistry()
	c := NewCounters()
	c.Add("configs_pushed", 7)
	c.Add("odd key!", 1) // sanitized to odd_key_
	reg.RegisterCounterSet("svc", "Service events.", c)
	reg.RegisterGauge("svc_nodes", "Registered nodes.", func() float64 { return 3 })
	h := NewPromHistogram([]float64{0.001, 0.1})
	h.Observe(0.05)
	reg.RegisterHistogram("svc_latency_seconds", "Latency.", h)

	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"svc_configs_pushed_total 7",
		"svc_odd_key__total 1",
		"# TYPE svc_nodes gauge",
		"svc_nodes 3",
		`svc_latency_seconds_bucket{le="0.001"} 0`,
		`svc_latency_seconds_bucket{le="+Inf"} 1`,
		"svc_latency_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q:\n%s", want, out)
		}
	}
	// Every non-comment line must be `name{labels}? value`.
	line := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{le="[^"]+"\})? -?[0-9].*$`)
	for _, l := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(l, "#") {
			continue
		}
		if !line.MatchString(l) {
			t.Errorf("invalid exposition line %q", l)
		}
	}
}

// TestRegistryHTTP pins the http.Handler integration and the v0.0.4
// content type.
func TestRegistryHTTP(t *testing.T) {
	reg := NewRegistry()
	reg.RegisterGauge("up", "1 while serving.", func() float64 { return 1 })
	srv := httptest.NewServer(reg)
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != PromContentType {
		t.Errorf("content type %q, want %q", ct, PromContentType)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "up 1") {
		t.Errorf("scrape body missing gauge:\n%s", buf.String())
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	reg := NewRegistry()
	reg.RegisterGauge("g", "x", func() float64 { return 0 })
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	reg.RegisterGauge("g", "x", func() float64 { return 0 })
}

// TestPromConcurrentScrape races observers, counter bumps and scrapes
// (the serving pattern: RPC handlers write, the metrics endpoint
// reads).
func TestPromConcurrentScrape(t *testing.T) {
	reg := NewRegistry()
	c := NewCounters()
	h := NewPromHistogram(DefLatencyBuckets)
	reg.RegisterCounterSet("svc", "events", c)
	reg.RegisterHistogram("svc_lat", "lat", h)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				c.Inc("events")
				h.Observe(float64(i) * 1e-4)
			}
		}(w)
	}
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				var buf bytes.Buffer
				if err := reg.WriteText(&buf); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != 800 {
		t.Errorf("histogram count %d, want 800", got)
	}
	if got := c.Get("events"); got != 800 {
		t.Errorf("counter %d, want 800", got)
	}
}

func TestSanitizeMetricName(t *testing.T) {
	for in, want := range map[string]string{
		"ok_name":   "ok_name",
		"has space": "has_space",
		"1leading":  "_1leading",
		"":          "_",
		"a:b":       "a:b",
	} {
		if got := SanitizeMetricName(in); got != want {
			t.Errorf("Sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}
