package stats

import "errors"

// EWMA is an exponentially weighted moving average with smoothing
// factor alpha in (0, 1]. Larger alpha weights recent samples more.
type EWMA struct {
	alpha float64
	value float64
	init  bool
}

// NewEWMA returns an EWMA with the given smoothing factor.
// It panics if alpha is outside (0, 1]; the factor is a programming
// constant, not runtime input.
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		panic("stats: EWMA alpha must be in (0, 1]")
	}
	return &EWMA{alpha: alpha}
}

// Add folds one observation in and returns the updated average.
func (e *EWMA) Add(x float64) float64 {
	if !e.init {
		e.value = x
		e.init = true
		return x
	}
	e.value = e.alpha*x + (1-e.alpha)*e.value
	return e.value
}

// Value reports the current average (0 before the first observation).
func (e *EWMA) Value() float64 { return e.value }

// Initialized reports whether at least one sample has been added.
func (e *EWMA) Initialized() bool { return e.init }

// Reset discards the average but keeps alpha.
func (e *EWMA) Reset() { e.value, e.init = 0, false }

// DES is a Double Exponential Smoothing (Holt linear trend) predictor.
//
// The EE-Pstate baseline from Iqbal & John ("Efficient Traffic Aware
// Power Management in Multicore Communications Processors") predicts
// the next-interval packet arrival rate with DES and thresholds the
// processor P-state on the prediction; GreenNFV compares against it,
// so the predictor is reproduced here exactly:
//
//	level_t = alpha*x_t + (1-alpha)*(level_{t-1} + trend_{t-1})
//	trend_t = beta*(level_t - level_{t-1}) + (1-beta)*trend_{t-1}
//	forecast(h) = level_t + h*trend_t
type DES struct {
	alpha, beta  float64
	level, trend float64
	n            int
}

// NewDES returns a DES predictor with the given level (alpha) and
// trend (beta) smoothing factors, both in (0, 1].
func NewDES(alpha, beta float64) (*DES, error) {
	if alpha <= 0 || alpha > 1 {
		return nil, errors.New("stats: DES alpha must be in (0, 1]")
	}
	if beta <= 0 || beta > 1 {
		return nil, errors.New("stats: DES beta must be in (0, 1]")
	}
	return &DES{alpha: alpha, beta: beta}, nil
}

// MustDES is NewDES that panics on invalid factors, for use with
// compile-time constants.
func MustDES(alpha, beta float64) *DES {
	d, err := NewDES(alpha, beta)
	if err != nil {
		panic(err)
	}
	return d
}

// Observe folds one observation into the smoother.
func (d *DES) Observe(x float64) {
	switch d.n {
	case 0:
		d.level = x
	case 1:
		d.trend = x - d.level
		d.level = d.alpha*x + (1-d.alpha)*(d.level+d.trend)
	default:
		prev := d.level
		d.level = d.alpha*x + (1-d.alpha)*(d.level+d.trend)
		d.trend = d.beta*(d.level-prev) + (1-d.beta)*d.trend
	}
	d.n++
}

// Forecast predicts the value h steps ahead. With fewer than two
// observations it returns the last level (no trend information yet).
func (d *DES) Forecast(h int) float64 {
	if d.n < 2 {
		return d.level
	}
	return d.level + float64(h)*d.trend
}

// Level reports the current smoothed level.
func (d *DES) Level() float64 { return d.level }

// Trend reports the current smoothed trend (slope per step).
func (d *DES) Trend() float64 { return d.trend }

// N reports the number of observations consumed.
func (d *DES) N() int { return d.n }

// Reset discards state but keeps the smoothing factors.
func (d *DES) Reset() { d.level, d.trend, d.n = 0, 0, 0 }
