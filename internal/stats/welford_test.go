package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	diff := math.Abs(a - b)
	if diff <= eps {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= eps*scale
}

func TestWelfordEmpty(t *testing.T) {
	var w Welford
	if w.N() != 0 || w.Mean() != 0 || w.Variance() != 0 || w.Stddev() != 0 {
		t.Fatalf("zero-value Welford should report zeros, got n=%d mean=%v var=%v", w.N(), w.Mean(), w.Variance())
	}
}

func TestWelfordSingle(t *testing.T) {
	var w Welford
	w.Add(42)
	if w.Mean() != 42 {
		t.Errorf("mean = %v, want 42", w.Mean())
	}
	if w.Variance() != 0 {
		t.Errorf("variance of single sample = %v, want 0", w.Variance())
	}
	if w.Min() != 42 || w.Max() != 42 {
		t.Errorf("min/max = %v/%v, want 42/42", w.Min(), w.Max())
	}
}

func TestWelfordKnownValues(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if !almostEqual(w.Mean(), 5, 1e-12) {
		t.Errorf("mean = %v, want 5", w.Mean())
	}
	if !almostEqual(w.PopVariance(), 4, 1e-12) {
		t.Errorf("population variance = %v, want 4", w.PopVariance())
	}
	if !almostEqual(w.Variance(), 32.0/7.0, 1e-12) {
		t.Errorf("sample variance = %v, want %v", w.Variance(), 32.0/7.0)
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Errorf("min/max = %v/%v, want 2/9", w.Min(), w.Max())
	}
}

// Property: Welford matches the two-pass textbook computation.
func TestWelfordMatchesTwoPass(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e6 {
				continue
			}
			xs = append(xs, x)
		}
		if len(xs) < 2 {
			return true
		}
		var w Welford
		sum := 0.0
		for _, x := range xs {
			w.Add(x)
			sum += x
		}
		mean := sum / float64(len(xs))
		var ss float64
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		wantVar := ss / float64(len(xs)-1)
		return almostEqual(w.Mean(), mean, 1e-9) && almostEqual(w.Variance(), wantVar, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: merging two accumulators equals accumulating the
// concatenation.
func TestWelfordMergeEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n1, n2 := rng.Intn(40), rng.Intn(40)
		var a, b, all Welford
		for i := 0; i < n1; i++ {
			x := rng.NormFloat64() * 10
			a.Add(x)
			all.Add(x)
		}
		for i := 0; i < n2; i++ {
			x := rng.NormFloat64()*3 + 5
			b.Add(x)
			all.Add(x)
		}
		a.Merge(b)
		if a.N() != all.N() {
			t.Fatalf("merged n = %d, want %d", a.N(), all.N())
		}
		if all.N() > 0 && !almostEqual(a.Mean(), all.Mean(), 1e-9) {
			t.Fatalf("merged mean = %v, want %v", a.Mean(), all.Mean())
		}
		if all.N() > 1 && !almostEqual(a.Variance(), all.Variance(), 1e-9) {
			t.Fatalf("merged variance = %v, want %v", a.Variance(), all.Variance())
		}
	}
}

func TestWelfordReset(t *testing.T) {
	var w Welford
	w.Add(1)
	w.Add(2)
	w.Reset()
	if w.N() != 0 || w.Mean() != 0 {
		t.Errorf("after reset n=%d mean=%v, want zeros", w.N(), w.Mean())
	}
}

func TestWelfordMergeIntoEmpty(t *testing.T) {
	var a, b Welford
	b.Add(3)
	b.Add(5)
	a.Merge(b)
	if a.N() != 2 || !almostEqual(a.Mean(), 4, 1e-12) {
		t.Errorf("merge into empty: n=%d mean=%v", a.N(), a.Mean())
	}
	var c Welford
	a.Merge(c) // merging an empty accumulator is a no-op
	if a.N() != 2 {
		t.Errorf("merge of empty changed n to %d", a.N())
	}
}
