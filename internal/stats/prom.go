package stats

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
)

// Prometheus text exposition (version 0.0.4), dependency-free: the
// serving daemons publish their operational ledgers at /metrics
// without pulling a client library into the build. Three metric
// shapes cover the control plane's needs — counter sets (every
// Counters key becomes its own `<prefix>_<key>_total` family), gauges
// (a float read at scrape time), and histograms (PromHistogram,
// cumulative `le` buckets + sum + count).
//
// A Registry is goroutine-safe: registration, scrapes and the metric
// sources they read may all run concurrently with the serving path.

// PromContentType is the Content-Type of the text exposition format.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// DefLatencyBuckets spans 50µs–2.5s, the useful range for report
// round-trip and decision latencies.
var DefLatencyBuckets = []float64{
	5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3,
	1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1, 2.5,
}

// PromHistogram is a goroutine-safe cumulative-bucket histogram in
// the Prometheus shape: fixed upper bounds chosen at construction, an
// implicit +Inf bucket, exact sum and count. Unlike Histogram (linear
// buckets, single-owner) it is built for concurrent Observe from RPC
// handlers.
type PromHistogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []uint64 // per-bucket; counts[len(bounds)] is +Inf overflow
	sum    float64
	n      uint64
}

// NewPromHistogram builds a histogram with the given ascending upper
// bounds (+Inf is implicit). It panics on unsorted or empty bounds —
// construction constants.
func NewPromHistogram(bounds []float64) *PromHistogram {
	if len(bounds) == 0 {
		panic("stats: PromHistogram needs at least one bound")
	}
	if !sort.Float64sAreSorted(bounds) {
		panic("stats: PromHistogram bounds must ascend")
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &PromHistogram{bounds: b, counts: make([]uint64, len(b)+1)}
}

// Observe records one observation.
func (h *PromHistogram) Observe(v float64) {
	idx := sort.SearchFloat64s(h.bounds, v) // first bound >= v (le is inclusive)
	h.mu.Lock()
	h.counts[idx]++
	h.sum += v
	h.n++
	h.mu.Unlock()
}

// Count reports the total number of observations.
func (h *PromHistogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// Sum reports the exact sum of observations.
func (h *PromHistogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// snapshot copies the histogram state for exposition.
func (h *PromHistogram) snapshot() (counts []uint64, sum float64, n uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	counts = make([]uint64, len(h.counts))
	copy(counts, h.counts)
	return counts, h.sum, h.n
}

// metricFamily is one registered exposition entry.
type metricFamily struct {
	name string // full metric name; for counter sets, the prefix
	help string
	// Exactly one of the sources is set.
	gauge func() float64
	hist  *PromHistogram
	set   *Counters
}

// Registry collects metric sources and writes them in Prometheus text
// exposition format. It implements http.Handler, so mounting
// `mux.Handle("/metrics", reg)` is the whole integration.
type Registry struct {
	mu       sync.Mutex
	families []metricFamily
	names    map[string]bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]bool)}
}

// register appends a family, panicking on duplicate names
// (registration is wiring code; a silent overwrite would hide a bug).
func (r *Registry) register(f metricFamily) {
	f.name = SanitizeMetricName(f.name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.names[f.name] {
		panic("stats: duplicate metric registration: " + f.name)
	}
	r.names[f.name] = true
	r.families = append(r.families, f)
}

// RegisterGauge registers a gauge whose value is read at scrape time.
func (r *Registry) RegisterGauge(name, help string, fn func() float64) {
	if fn == nil {
		panic("stats: nil gauge func")
	}
	r.register(metricFamily{name: name, help: help, gauge: fn})
}

// RegisterHistogram registers a PromHistogram under name.
func (r *Registry) RegisterHistogram(name, help string, h *PromHistogram) {
	if h == nil {
		panic("stats: nil histogram")
	}
	r.register(metricFamily{name: name, help: help, hist: h})
}

// RegisterCounterSet registers a Counters ledger: at scrape time each
// key k is exposed as its own counter family `<prefix>_<k>_total`.
// Keys that appear after registration (Counters registers names on
// first Add) show up on the next scrape.
func (r *Registry) RegisterCounterSet(prefix, help string, c *Counters) {
	if c == nil {
		panic("stats: nil counter set")
	}
	r.register(metricFamily{name: prefix, help: help, set: c})
}

// WriteText writes every registered family in registration order.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	fams := make([]metricFamily, len(r.families))
	copy(fams, r.families)
	r.mu.Unlock()
	for _, f := range fams {
		var err error
		switch {
		case f.gauge != nil:
			err = writeSimple(w, f.name, f.help, "gauge", formatFloat(f.gauge()))
		case f.hist != nil:
			err = writeHistogram(w, f.name, f.help, f.hist)
		case f.set != nil:
			err = writeCounterSet(w, f.name, f.help, f.set)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// ServeHTTP implements http.Handler, serving one scrape.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", PromContentType)
	r.WriteText(w)
}

func writeSimple(w io.Writer, name, help, typ, value string) error {
	_, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %s\n", name, help, name, typ, name, value)
	return err
}

func writeCounterSet(w io.Writer, prefix, help string, c *Counters) error {
	for _, key := range c.Names() {
		name := prefix + "_" + SanitizeMetricName(key) + "_total"
		if err := writeSimple(w, name, help+" ("+key+")", "counter",
			strconv.FormatInt(c.Get(key), 10)); err != nil {
			return err
		}
	}
	return nil
}

func writeHistogram(w io.Writer, name, help string, h *PromHistogram) error {
	counts, sum, n := h.snapshot()
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name); err != nil {
		return err
	}
	var cum uint64
	for i, bound := range h.bounds {
		cum += counts[i]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatFloat(bound), cum); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %s\n%s_count %d\n",
		name, n, name, formatFloat(sum), name, n)
	return err
}

// formatFloat renders a float in the exposition format's shortest
// round-trippable form.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// SanitizeMetricName maps a string onto the Prometheus metric-name
// alphabet [a-zA-Z0-9_:], replacing every other rune with '_' and
// prefixing names that would start with a digit.
func SanitizeMetricName(s string) string {
	if s == "" {
		return "_"
	}
	out := []byte(s)
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9': // valid except as the first rune
		default:
			out[i] = '_'
		}
	}
	if c := out[0]; c >= '0' && c <= '9' {
		return "_" + string(out)
	}
	return string(out)
}
