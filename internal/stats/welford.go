package stats

import "math"

// Welford accumulates mean and variance in a single pass using
// Welford's numerically stable online algorithm.
// The zero value is ready to use.
type Welford struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// N reports the number of observations seen.
func (w *Welford) N() int64 { return w.n }

// Mean reports the running mean, or 0 before any observation.
func (w *Welford) Mean() float64 { return w.mean }

// Min reports the smallest observation, or 0 before any observation.
func (w *Welford) Min() float64 { return w.min }

// Max reports the largest observation, or 0 before any observation.
func (w *Welford) Max() float64 { return w.max }

// Variance reports the unbiased sample variance (n-1 denominator).
// It returns 0 for fewer than two observations.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// PopVariance reports the population variance (n denominator).
func (w *Welford) PopVariance() float64 {
	if w.n < 1 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// Stddev reports the sample standard deviation.
func (w *Welford) Stddev() float64 { return math.Sqrt(w.Variance()) }

// Reset discards all state.
func (w *Welford) Reset() { *w = Welford{} }

// Merge folds another accumulator into w using the parallel-variance
// combination rule, leaving other untouched.
func (w *Welford) Merge(other Welford) {
	if other.n == 0 {
		return
	}
	if w.n == 0 {
		*w = other
		return
	}
	nA, nB := float64(w.n), float64(other.n)
	delta := other.mean - w.mean
	total := nA + nB
	w.mean += delta * nB / total
	w.m2 += other.m2 + delta*delta*nA*nB/total
	w.n += other.n
	if other.min < w.min {
		w.min = other.min
	}
	if other.max > w.max {
		w.max = other.max
	}
}
