// Package stats provides the small statistical toolkit GreenNFV uses to
// characterize network flows: online moments, exponential smoothing,
// the Double Exponential Smoothing predictor used by the EE-Pstate
// baseline, histograms with percentile queries, rate estimation and
// burstiness (index of dispersion) measurement.
//
// # Paper mapping
//
// The DES predictor is the traffic-forecasting half of the Iqbal &
// John EE-Pstate comparison controller (Figure 9); the burstiness
// estimator quantifies the index-of-dispersion axis of the traffic
// model.
//
// # Prometheus exposition
//
// Registry renders registered instruments in the Prometheus text
// exposition format (version 0.0.4) and serves them over HTTP: each
// Counters set expands to one `<prefix>_<name>_total` family, gauges
// read a float callback at scrape time, and PromHistogram emits
// cumulative `le` buckets plus `_sum`/`_count`. Metric names pass
// through SanitizeMetricName so ledger keys stay free-form. The
// writer is dependency-free by design — the scrape contract is pinned
// by golden-output tests, not by a client library.
//
// # Concurrency and determinism
//
// Everything here is allocation-free on the hot path, RNG-free and
// deterministic, and safe to embed by value. The measurement types
// are not goroutine-safe — each measurement loop owns its
// accumulators — with three exceptions built for the serving plane:
// Counters, PromHistogram and Registry are safe for concurrent use
// (scrapes race increments by design).
package stats
