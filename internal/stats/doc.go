// Package stats provides the small statistical toolkit GreenNFV uses to
// characterize network flows: online moments, exponential smoothing,
// the Double Exponential Smoothing predictor used by the EE-Pstate
// baseline, histograms with percentile queries, rate estimation and
// burstiness (index of dispersion) measurement.
//
// # Paper mapping
//
// The DES predictor is the traffic-forecasting half of the Iqbal &
// John EE-Pstate comparison controller (Figure 9); the burstiness
// estimator quantifies the index-of-dispersion axis of the traffic
// model.
//
// # Concurrency and determinism
//
// Everything here is allocation-free on the hot path, RNG-free and
// deterministic, and safe to embed by value; none of the types are
// goroutine-safe unless stated — each measurement loop owns its
// accumulators.
package stats
