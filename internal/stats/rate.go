package stats

// RateEstimator tracks an event rate (events per second) over a
// sliding window of fixed-width time slots. GreenNFV's NF controller
// uses it to estimate per-flow packet arrival rates Ω, which feed both
// the RL state vector and the polling-frequency decision.
type RateEstimator struct {
	slotSeconds float64
	slots       []float64
	head        int
	filled      int
	current     float64 // events accumulated in the open slot
	slotStart   float64 // timestamp at which the open slot began
	now         float64
}

// NewRateEstimator builds an estimator averaging over `slots` slots of
// `slotSeconds` each. It panics on non-positive arguments.
func NewRateEstimator(slots int, slotSeconds float64) *RateEstimator {
	if slots <= 0 || slotSeconds <= 0 {
		panic("stats: rate estimator needs positive slots and width")
	}
	return &RateEstimator{
		slotSeconds: slotSeconds,
		slots:       make([]float64, slots),
	}
}

// Observe records `count` events at absolute time t (seconds). Time
// must be monotonically non-decreasing across calls.
func (r *RateEstimator) Observe(t float64, count float64) {
	r.advance(t)
	r.current += count
}

// Rate reports the estimated events/second at time t, averaging the
// closed slots plus the partially open one.
func (r *RateEstimator) Rate(t float64) float64 {
	r.advance(t)
	total := r.current
	span := r.now - r.slotStart
	for i := 0; i < r.filled; i++ {
		total += r.slots[i]
	}
	span += float64(r.filled) * r.slotSeconds
	if span <= 0 {
		return 0
	}
	return total / span
}

// advance closes any slots that have fully elapsed by time t.
func (r *RateEstimator) advance(t float64) {
	if t < r.now {
		t = r.now // ignore time regressions rather than corrupting state
	}
	r.now = t
	for r.now-r.slotStart >= r.slotSeconds {
		// Close the open slot into the ring.
		r.slots[r.head] = r.current
		r.head = (r.head + 1) % len(r.slots)
		if r.filled < len(r.slots) {
			r.filled++
		}
		r.current = 0
		r.slotStart += r.slotSeconds
		// If t is far in the future, the intermediate slots are empty;
		// the loop naturally records zeros for them.
	}
}

// Reset clears all recorded events and rewinds the clock to zero.
func (r *RateEstimator) Reset() {
	for i := range r.slots {
		r.slots[i] = 0
	}
	r.head, r.filled = 0, 0
	r.current, r.slotStart, r.now = 0, 0, 0
}

// IndexOfDispersion measures burstiness of a series of per-interval
// event counts: variance/mean. A Poisson process has IoD ≈ 1; bursty
// (MMPP-like) traffic has IoD > 1; CBR traffic has IoD ≈ 0.
func IndexOfDispersion(counts []float64) float64 {
	var w Welford
	for _, c := range counts {
		w.Add(c)
	}
	m := w.Mean()
	if m == 0 {
		return 0
	}
	return w.PopVariance() / m
}
