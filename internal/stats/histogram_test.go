package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestHistogramBasic(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	if h.Count() != 10 {
		t.Fatalf("count = %d, want 10", h.Count())
	}
	if !almostEqual(h.Mean(), 5, 1e-12) {
		t.Errorf("mean = %v, want 5", h.Mean())
	}
	med := h.Quantile(0.5)
	if med < 4 || med > 6 {
		t.Errorf("median = %v, want ~5", med)
	}
}

func TestHistogramUnderOverflow(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	h.Add(-3)
	h.Add(15)
	h.Add(5)
	if h.Count() != 3 {
		t.Fatalf("count = %d, want 3", h.Count())
	}
	if q := h.Quantile(0); q != 0 {
		t.Errorf("q0 = %v, want 0 (underflow clamps to lo)", q)
	}
	if q := h.Quantile(1); q != 10 {
		t.Errorf("q1 = %v, want 10 (overflow clamps to hi)", q)
	}
}

func TestHistogramQuantileAgainstExact(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	h := NewHistogram(0, 100, 1000)
	var sample []float64
	for i := 0; i < 20000; i++ {
		x := rng.Float64() * 100
		h.Add(x)
		sample = append(sample, x)
	}
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		approx := h.Quantile(q)
		exact := Percentile(sample, q*100)
		if math.Abs(approx-exact) > 0.5 { // within a few bucket widths
			t.Errorf("q%.2f: approx %v vs exact %v", q, approx, exact)
		}
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	h.Add(0.5)
	h.Reset()
	if h.Count() != 0 || h.Mean() != 0 {
		t.Error("reset did not clear histogram")
	}
}

func TestHistogramEmptyQuantile(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	if h.Quantile(0.5) != 0 {
		t.Error("quantile of empty histogram should be 0")
	}
}

func TestHistogramConstructorPanics(t *testing.T) {
	for _, c := range []struct {
		lo, hi float64
		n      int
	}{
		{0, 1, 0}, {1, 1, 4}, {2, 1, 4},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%v,%v,%d) did not panic", c.lo, c.hi, c.n)
				}
			}()
			NewHistogram(c.lo, c.hi, c.n)
		}()
	}
}

func TestPercentileExact(t *testing.T) {
	s := []float64{3, 1, 2, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 5}, {50, 3}, {25, 2}, {75, 4}, {62.5, 3.5},
	}
	for _, c := range cases {
		if got := Percentile(s, c.p); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	// Input must not be mutated.
	if s[0] != 3 {
		t.Error("Percentile mutated its input")
	}
}

func TestPercentileEmpty(t *testing.T) {
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("percentile of empty sample should be NaN")
	}
}
