package stats

import (
	"reflect"
	"sync"
	"testing"
)

func TestCountersBasics(t *testing.T) {
	c := NewCounters()
	if got := c.Get("missing"); got != 0 {
		t.Errorf("Get of unregistered name = %d, want 0", got)
	}
	if got := c.Inc("b"); got != 1 {
		t.Errorf("first Inc = %d, want 1", got)
	}
	c.Add("a", 5)
	c.Add("c", -2)
	c.Inc("b")
	if got := c.Get("b"); got != 2 {
		t.Errorf("b = %d, want 2", got)
	}
	if got := c.Names(); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Errorf("Names = %v, want sorted [a b c]", got)
	}
	want := map[string]int64{"a": 5, "b": 2, "c": -2}
	if got := c.Snapshot(); !reflect.DeepEqual(got, want) {
		t.Errorf("Snapshot = %v, want %v", got, want)
	}
	// Snapshot is a copy, not a view.
	c.Snapshot()["a"] = 99
	if got := c.Get("a"); got != 5 {
		t.Errorf("snapshot mutation leaked: a = %d", got)
	}
}

func TestCountersConcurrent(t *testing.T) {
	c := NewCounters()
	const workers, bumps = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			names := []string{"pushed", "fallback", "rejected", "missed"}
			for i := 0; i < bumps; i++ {
				c.Inc(names[(w+i)%len(names)])
			}
		}(w)
	}
	wg.Wait()
	total := int64(0)
	for _, n := range c.Names() {
		total += c.Get(n)
	}
	if total != workers*bumps {
		t.Errorf("lost updates: total %d, want %d", total, workers*bumps)
	}
}
