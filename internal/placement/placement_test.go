package placement

import (
	"errors"
	"math/rand"
	"testing"
)

func node16() NodeCapacity {
	return NodeCapacity{Cores: 16, LLCBytes: 18 << 20}
}

func TestValidation(t *testing.T) {
	bad := []Problem{
		{Node: node16(), MaxNodes: 2},
		{Chains: []ChainDemand{{Name: "a", Cores: 1, LLCBytes: 1 << 20}}, MaxNodes: 1},
		{Chains: []ChainDemand{{Name: "a", Cores: 1, LLCBytes: 1 << 20}}, Node: node16(), MaxNodes: 0},
		{Chains: []ChainDemand{{Name: "", Cores: 1, LLCBytes: 1 << 20}}, Node: node16(), MaxNodes: 1},
		{Chains: []ChainDemand{
			{Name: "a", Cores: 1, LLCBytes: 1 << 20},
			{Name: "a", Cores: 1, LLCBytes: 1 << 20},
		}, Node: node16(), MaxNodes: 1},
		{Chains: []ChainDemand{{Name: "a", Cores: 20, LLCBytes: 1 << 20}}, Node: node16(), MaxNodes: 1},
		{Chains: []ChainDemand{{Name: "a", Cores: 1, LLCBytes: 1 << 20}},
			Node: node16(), MaxNodes: 1,
			Affinities: []Affinity{{A: "a", B: "ghost", PPS: 1}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestConsolidatesOntoFewestNodes(t *testing.T) {
	// Six 4-core chains fit on two 16-core nodes (LLC allows 6x3MB
	// per node).
	p := Problem{
		Node:     node16(),
		MaxNodes: 6,
	}
	for _, name := range []string{"a", "b", "c", "d", "e", "f"} {
		p.Chains = append(p.Chains, ChainDemand{Name: name, Cores: 4, LLCBytes: 3 << 20})
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.NodesUsed != 2 {
		t.Errorf("nodes used = %d, want 2 (consolidation)", sol.NodesUsed)
	}
	if lb := LowerBoundNodes(p); sol.NodesUsed < lb {
		t.Errorf("solution beats lower bound %d", lb)
	}
}

func TestRespectsCapacity(t *testing.T) {
	p := Problem{Node: node16(), MaxNodes: 3}
	// Each chain needs 10 cores: one per node.
	for _, name := range []string{"a", "b", "c"} {
		p.Chains = append(p.Chains, ChainDemand{Name: name, Cores: 10, LLCBytes: 2 << 20})
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.NodesUsed != 3 {
		t.Errorf("nodes used = %d, want 3", sol.NodesUsed)
	}
	// Infeasible: 4 such chains on 3 nodes.
	p.Chains = append(p.Chains, ChainDemand{Name: "d", Cores: 10, LLCBytes: 2 << 20})
	if _, err := Solve(p); err == nil {
		t.Error("infeasible instance solved")
	}
}

func TestAffinityPullsChainsTogether(t *testing.T) {
	// Four 6-core chains: pairs (a,b) and (c,d) exchange heavy
	// traffic. Two nodes hold two chains each; the affinity-aware
	// search must co-locate the pairs.
	p := Problem{
		Node:     node16(),
		MaxNodes: 2,
		Chains: []ChainDemand{
			{Name: "a", Cores: 6, LLCBytes: 4 << 20, FlowPPS: 1e6},
			{Name: "c", Cores: 6, LLCBytes: 4 << 20, FlowPPS: 1e6},
			{Name: "b", Cores: 6, LLCBytes: 4 << 20, FlowPPS: 1e6},
			{Name: "d", Cores: 6, LLCBytes: 4 << 20, FlowPPS: 1e6},
		},
		Affinities: []Affinity{
			{A: "a", B: "b", PPS: 5e6},
			{A: "c", B: "d", PPS: 5e6},
		},
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.CrossPPS != 0 {
		t.Errorf("cross traffic = %v, want 0 (pairs co-located): %v", sol.CrossPPS, sol.Assignment)
	}
	if sol.Assignment["a"] != sol.Assignment["b"] || sol.Assignment["c"] != sol.Assignment["d"] {
		t.Errorf("pairs split: %v", sol.Assignment)
	}
}

// Property: any feasible random instance solves with per-node sums
// within capacity and no chain unassigned.
func TestRandomInstancesFeasibleAndValid(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(10)
		p := Problem{Node: node16(), MaxNodes: n} // generous node count
		for i := 0; i < n; i++ {
			p.Chains = append(p.Chains, ChainDemand{
				Name:     string(rune('a' + i)),
				Cores:    0.5 + rng.Float64()*8,
				LLCBytes: int64(1+rng.Intn(9)) << 20,
				FlowPPS:  rng.Float64() * 1e6,
			})
		}
		for i := 0; i+1 < n; i += 2 {
			p.Affinities = append(p.Affinities, Affinity{
				A: p.Chains[i].Name, B: p.Chains[i+1].Name, PPS: rng.Float64() * 1e6,
			})
		}
		sol, err := Solve(p)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		cores := map[int]float64{}
		llc := map[int]int64{}
		for _, c := range p.Chains {
			nidx, ok := sol.Assignment[c.Name]
			if !ok {
				t.Fatalf("trial %d: chain %q unassigned", trial, c.Name)
			}
			cores[nidx] += c.Cores
			llc[nidx] += c.LLCBytes
		}
		for nidx, sum := range cores {
			if sum > p.Node.Cores+1e-9 {
				t.Fatalf("trial %d: node %d cores %v over capacity", trial, nidx, sum)
			}
			if llc[nidx] > p.Node.LLCBytes {
				t.Fatalf("trial %d: node %d LLC over capacity", trial, nidx)
			}
		}
		if sol.NodesUsed < LowerBoundNodes(p) {
			t.Fatalf("trial %d: nodes %d below lower bound", trial, sol.NodesUsed)
		}
	}
}

func TestLowerBound(t *testing.T) {
	p := Problem{Node: node16(), MaxNodes: 8}
	p.Chains = []ChainDemand{
		{Name: "a", Cores: 10, LLCBytes: 1 << 20},
		{Name: "b", Cores: 10, LLCBytes: 1 << 20},
		{Name: "c", Cores: 10, LLCBytes: 1 << 20},
	}
	if lb := LowerBoundNodes(p); lb != 2 {
		t.Errorf("core lower bound = %d, want 2", lb)
	}
	// LLC-driven bound.
	p.Chains = []ChainDemand{
		{Name: "a", Cores: 1, LLCBytes: 17 << 20},
		{Name: "b", Cores: 1, LLCBytes: 17 << 20},
	}
	if lb := LowerBoundNodes(p); lb != 2 {
		t.Errorf("LLC lower bound = %d, want 2", lb)
	}
}

// TestSolveTable is the Policy contract table: both policies must
// agree on the typed-infeasible, empty-affinity, and equal-demand
// tie-break behaviors.
func TestSolveTable(t *testing.T) {
	policies := []Policy{FFDSwap{}, Relaxation{}}
	cases := []struct {
		name       string
		p          Problem
		infeasible bool
		// want pins the deterministic assignment (nil to skip).
		want Assignment
	}{
		{
			name: "infeasible: chain exceeds every node",
			p: Problem{
				Chains: []ChainDemand{{Name: "huge", Cores: 20, LLCBytes: 1 << 20}},
				Nodes: []NodeCapacity{
					{Cores: 16, LLCBytes: 18 << 20},
					{Cores: 8, LLCBytes: 12 << 20},
				},
			},
			infeasible: true,
		},
		{
			name: "infeasible: aggregate demand exceeds cluster",
			p: Problem{
				Chains: []ChainDemand{
					{Name: "a", Cores: 10, LLCBytes: 1 << 20},
					{Name: "b", Cores: 10, LLCBytes: 1 << 20},
					{Name: "c", Cores: 10, LLCBytes: 1 << 20},
					{Name: "d", Cores: 10, LLCBytes: 1 << 20},
				},
				Node:     node16(),
				MaxNodes: 2,
			},
			infeasible: true,
		},
		{
			name: "empty affinity list still packs",
			p: Problem{
				Chains: []ChainDemand{
					{Name: "a", Cores: 8, LLCBytes: 4 << 20},
					{Name: "b", Cores: 8, LLCBytes: 4 << 20},
				},
				Node:     node16(),
				MaxNodes: 4,
			},
			want: Assignment{"a": 0, "b": 0},
		},
		{
			name: "equal demand ties break by input order",
			p: Problem{
				Chains: []ChainDemand{
					{Name: "x", Cores: 10, LLCBytes: 4 << 20},
					{Name: "y", Cores: 10, LLCBytes: 4 << 20},
					{Name: "z", Cores: 10, LLCBytes: 4 << 20},
				},
				Node:     node16(),
				MaxNodes: 4,
			},
			// Stable sort keeps input order; first-fit sends each
			// equal chain to the lowest node with room.
			want: Assignment{"x": 0, "y": 1, "z": 2},
		},
	}
	for _, pol := range policies {
		for _, tc := range cases {
			sol, err := pol.Solve(tc.p)
			if tc.infeasible {
				if !errors.Is(err, ErrInfeasible) {
					t.Errorf("%s/%s: err = %v, want ErrInfeasible", pol.Name(), tc.name, err)
				}
				continue
			}
			if err != nil {
				t.Errorf("%s/%s: unexpected error %v", pol.Name(), tc.name, err)
				continue
			}
			if tc.want == nil {
				continue
			}
			for name, n := range tc.want {
				if sol.Assignment[name] != n {
					t.Errorf("%s/%s: %s on node %d, want %d", pol.Name(), tc.name, name, sol.Assignment[name], n)
				}
			}
			if sol.CrossPPS != 0 {
				t.Errorf("%s/%s: CrossPPS = %v, want 0", pol.Name(), tc.name, sol.CrossPPS)
			}
		}
	}
}

// TestHeterogeneousNodes checks the Nodes form: a chain too big for
// the small node must land on the big one.
func TestHeterogeneousNodes(t *testing.T) {
	p := Problem{
		Chains: []ChainDemand{
			{Name: "big", Cores: 12, LLCBytes: 8 << 20},
			{Name: "small", Cores: 4, LLCBytes: 4 << 20},
		},
		Nodes: []NodeCapacity{
			{Cores: 8, LLCBytes: 12 << 20},
			{Cores: 16, LLCBytes: 18 << 20},
		},
	}
	for _, pol := range []Policy{FFDSwap{}, Relaxation{}} {
		sol, err := pol.Solve(p)
		if err != nil {
			t.Fatalf("%s: %v", pol.Name(), err)
		}
		if sol.Assignment["big"] != 1 {
			t.Errorf("%s: big chain on node %d, want 1", pol.Name(), sol.Assignment["big"])
		}
	}
}

// TestRelaxationMatchesLowerBound: on instances where rounding
// succeeds at the relaxation bound, the node count equals it.
func TestRelaxationMatchesLowerBound(t *testing.T) {
	p := Problem{
		Chains: []ChainDemand{
			{Name: "a", Cores: 10, LLCBytes: 4 << 20},
			{Name: "b", Cores: 6, LLCBytes: 4 << 20},
			{Name: "c", Cores: 10, LLCBytes: 4 << 20},
			{Name: "d", Cores: 6, LLCBytes: 4 << 20},
		},
		Node:     node16(),
		MaxNodes: 6,
	}
	sol, err := Relaxation{}.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if lb := LowerBoundNodes(p); sol.NodesUsed != lb {
		t.Errorf("relaxation used %d nodes, lower bound %d", sol.NodesUsed, lb)
	}
}
