// Package placement implements energy-aware service-chain placement,
// the consolidation step the paper describes in §2: "as service
// chains process the same packets, the placement can efficiently
// group these chains in the same core and processor to achieve higher
// performance and lower energy consumption", and GreenNFV
// "consolidates the VNFs based on the flow path and minimizes the
// cache eviction".
//
// The optimizer packs chains onto the fewest nodes that satisfy CPU
// and LLC capacity (fewer active nodes dominate the energy bill
// because of idle power), then reduces cross-node flow traffic with
// pairwise-swap local search — chains sharing a flow path prefer the
// same node so packets stay cache-resident.
//
// # Policies
//
// Placement algorithms are pluggable behind the Policy interface:
//
//   - FFDSwap — the original heuristic: first-fit-decreasing packing
//     plus pairwise move/swap local search on cross-node traffic.
//     Package-level Solve delegates here, so the historical entry
//     point is unchanged.
//   - Relaxation — the Sang-et-al.-style analytic baseline
//     (arXiv:1702.01154): fractional-relaxation node count, then one
//     deterministic rounding pass, no local search. The provably-
//     efficient comparator the DRL placement head is judged against.
//
// The DRL placement head is not a Policy: it lives in
// env.ClusterEnv's action decode (per-chain placement logits) and is
// trained end-to-end, while Policies are consulted once per episode
// reset.
//
// Instances describe nodes either homogeneously (Node × MaxNodes) or
// heterogeneously (Nodes, one capacity per host — the cluster
// topology's view). A chain that fits on no node, or an instance no
// policy can pack, reports an error wrapping the typed ErrInfeasible
// so callers can branch on errors.Is.
//
// # Concurrency and determinism
//
// Both policies are deterministic: stable tie-breaking, fixed visit
// order, no RNG. The consolidation study's table rows are sorted
// before rendering, keeping the experiment suite byte-diffable.
// Plain value types; not goroutine-safe, and no need to be.
package placement
