// Package placement implements energy-aware service-chain placement,
// the consolidation step the paper describes in §2: "as service
// chains process the same packets, the placement can efficiently
// group these chains in the same core and processor to achieve higher
// performance and lower energy consumption", and GreenNFV
// "consolidates the VNFs based on the flow path and minimizes the
// cache eviction".
//
// The optimizer packs chains onto the fewest nodes that satisfy CPU
// and LLC capacity (fewer active nodes dominate the energy bill
// because of idle power), then reduces cross-node flow traffic with
// pairwise-swap local search — chains sharing a flow path prefer the
// same node so packets stay cache-resident.
//
// # Concurrency and determinism
//
// The optimizer is deterministic: first-fit-decreasing packing with
// stable tie-breaking and a greedy swap search with a fixed visit
// order, no RNG. The consolidation study's table rows are sorted
// before rendering, keeping the experiment suite byte-diffable.
// Plain value types; not goroutine-safe, and no need to be.
package placement
