package placement

import (
	"errors"
	"fmt"
	"sort"
)

// ChainDemand is one service chain's resource footprint.
type ChainDemand struct {
	Name string
	// Cores is the CPU demand in cores.
	Cores float64
	// LLCBytes is the cache working set.
	LLCBytes int64
	// FlowPPS is the chain's offered packet rate.
	FlowPPS float64
}

// NodeCapacity bounds one host.
type NodeCapacity struct {
	Cores    float64
	LLCBytes int64
}

// Affinity is the packet rate two chains exchange (a flow path that
// traverses both): keeping them co-located keeps those packets in
// the shared LLC.
type Affinity struct {
	A, B string
	PPS  float64
}

// Problem is a placement instance.
type Problem struct {
	Chains     []ChainDemand
	Node       NodeCapacity
	MaxNodes   int
	Affinities []Affinity
}

// Validate reports whether the instance is well formed.
func (p *Problem) Validate() error {
	if len(p.Chains) == 0 {
		return errors.New("placement: no chains")
	}
	if p.Node.Cores <= 0 || p.Node.LLCBytes <= 0 {
		return errors.New("placement: node capacity must be positive")
	}
	if p.MaxNodes <= 0 {
		return errors.New("placement: need at least one node")
	}
	seen := map[string]bool{}
	for i, c := range p.Chains {
		if c.Name == "" {
			return fmt.Errorf("placement: chain %d unnamed", i)
		}
		if seen[c.Name] {
			return fmt.Errorf("placement: duplicate chain %q", c.Name)
		}
		seen[c.Name] = true
		if c.Cores <= 0 || c.Cores > p.Node.Cores {
			return fmt.Errorf("placement: chain %q needs %v cores (node has %v)", c.Name, c.Cores, p.Node.Cores)
		}
		if c.LLCBytes <= 0 || c.LLCBytes > p.Node.LLCBytes {
			return fmt.Errorf("placement: chain %q needs %d LLC bytes (node has %d)", c.Name, c.LLCBytes, p.Node.LLCBytes)
		}
	}
	for _, a := range p.Affinities {
		if !seen[a.A] || !seen[a.B] {
			return fmt.Errorf("placement: affinity references unknown chain (%q, %q)", a.A, a.B)
		}
		if a.PPS < 0 {
			return errors.New("placement: negative affinity")
		}
	}
	return nil
}

// Assignment maps chain name to node index.
type Assignment map[string]int

// Solution is a placement outcome.
type Solution struct {
	Assignment Assignment
	// NodesUsed is the number of distinct nodes hosting chains.
	NodesUsed int
	// CrossPPS is the affinity traffic that crosses node boundaries
	// (the cache-locality loss the consolidation minimizes).
	CrossPPS float64
}

// Solve packs the chains: First-Fit-Decreasing by core demand for the
// node count, then pairwise-move local search to reduce cross-node
// affinity traffic without increasing the node count.
func Solve(p Problem) (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	// FFD by cores (ties by LLC).
	order := make([]int, len(p.Chains))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ca, cb := p.Chains[order[a]], p.Chains[order[b]]
		if ca.Cores != cb.Cores {
			return ca.Cores > cb.Cores
		}
		return ca.LLCBytes > cb.LLCBytes
	})

	type nodeState struct {
		cores float64
		llc   int64
	}
	nodes := make([]nodeState, p.MaxNodes)
	assign := Assignment{}
	for _, idx := range order {
		c := p.Chains[idx]
		placed := false
		for n := 0; n < p.MaxNodes; n++ {
			if nodes[n].cores+c.Cores <= p.Node.Cores &&
				nodes[n].llc+c.LLCBytes <= p.Node.LLCBytes {
				nodes[n].cores += c.Cores
				nodes[n].llc += c.LLCBytes
				assign[c.Name] = n
				placed = true
				break
			}
		}
		if !placed {
			return Solution{}, fmt.Errorf("placement: chain %q does not fit on %d nodes", c.Name, p.MaxNodes)
		}
	}

	demand := map[string]ChainDemand{}
	for _, c := range p.Chains {
		demand[c.Name] = c
	}
	fits := func(name string, n int) bool {
		c := demand[name]
		return nodes[n].cores+c.Cores <= p.Node.Cores && nodes[n].llc+c.LLCBytes <= p.Node.LLCBytes
	}
	move := func(name string, from, to int) {
		c := demand[name]
		nodes[from].cores -= c.Cores
		nodes[from].llc -= c.LLCBytes
		nodes[to].cores += c.Cores
		nodes[to].llc += c.LLCBytes
		assign[name] = to
	}

	// Local search: repair split affinities by moving one endpoint
	// next to the other when capacity allows, or by swapping an
	// endpoint with a third chain when both nodes are full. Accept
	// only strict cross-traffic reductions, so the search terminates.
	improved := true
	for iter := 0; improved && iter < 4*len(p.Chains); iter++ {
		improved = false
		for _, a := range p.Affinities {
			na, nb := assign[a.A], assign[a.B]
			if na == nb || a.PPS == 0 {
				continue
			}
			before := crossPPS(p, assign)
			done := false
			// Single moves.
			for _, cand := range []struct {
				name     string
				from, to int
			}{{a.A, na, nb}, {a.B, nb, na}} {
				if !fits(cand.name, cand.to) {
					continue
				}
				move(cand.name, cand.from, cand.to)
				if after := crossPPS(p, assign); after < before {
					improved, done = true, true
					break
				}
				move(cand.name, cand.to, cand.from) // revert
			}
			if done {
				continue
			}
			// Swaps: exchange B with a third chain X on A's node.
			b := demand[a.B]
			for _, x := range p.Chains {
				if assign[x.Name] != na || x.Name == a.A {
					continue
				}
				// Feasibility after the exchange, checked
				// arithmetically before touching state.
				naCoresAfter := nodes[na].cores - x.Cores + b.Cores
				naLLCAfter := nodes[na].llc - x.LLCBytes + b.LLCBytes
				nbCoresAfter := nodes[nb].cores - b.Cores + x.Cores
				nbLLCAfter := nodes[nb].llc - b.LLCBytes + x.LLCBytes
				if naCoresAfter > p.Node.Cores || naLLCAfter > p.Node.LLCBytes ||
					nbCoresAfter > p.Node.Cores || nbLLCAfter > p.Node.LLCBytes {
					continue
				}
				move(x.Name, na, nb)
				move(a.B, nb, na)
				if after := crossPPS(p, assign); after < before {
					improved = true
					break
				}
				move(a.B, na, nb)
				move(x.Name, nb, na)
			}
		}
	}

	used := map[int]bool{}
	for _, n := range assign {
		used[n] = true
	}
	return Solution{
		Assignment: assign,
		NodesUsed:  len(used),
		CrossPPS:   crossPPS(p, assign),
	}, nil
}

// crossPPS totals affinity traffic whose endpoints sit on different
// nodes.
func crossPPS(p Problem, a Assignment) float64 {
	var sum float64
	for _, af := range p.Affinities {
		if a[af.A] != a[af.B] {
			sum += af.PPS
		}
	}
	return sum
}

// LowerBoundNodes reports a simple capacity lower bound on the node
// count (max of the core-sum and LLC-sum bounds).
func LowerBoundNodes(p Problem) int {
	var cores float64
	var llc int64
	for _, c := range p.Chains {
		cores += c.Cores
		llc += c.LLCBytes
	}
	byCores := int(ceilDiv(cores, p.Node.Cores))
	byLLC := int((llc + p.Node.LLCBytes - 1) / p.Node.LLCBytes)
	if byCores > byLLC {
		return byCores
	}
	return byLLC
}

func ceilDiv(a, b float64) float64 {
	n := a / b
	if n != float64(int(n)) {
		return float64(int(n) + 1)
	}
	return n
}
