package placement

import (
	"errors"
	"fmt"
	"sort"
)

// ErrInfeasible reports a placement instance that cannot be packed:
// some chain exceeds every node's capacity, or no node subset admits
// a feasible assignment. Callers test for it with errors.Is.
var ErrInfeasible = errors.New("placement: infeasible")

// ChainDemand is one service chain's resource footprint.
type ChainDemand struct {
	Name string
	// Cores is the CPU demand in cores.
	Cores float64
	// LLCBytes is the cache working set.
	LLCBytes int64
	// FlowPPS is the chain's offered packet rate.
	FlowPPS float64
}

// NodeCapacity bounds one host.
type NodeCapacity struct {
	Cores    float64
	LLCBytes int64
}

// Affinity is the packet rate two chains exchange (a flow path that
// traverses both): keeping them co-located keeps those packets in
// the shared LLC.
type Affinity struct {
	A, B string
	PPS  float64
}

// Problem is a placement instance. Two node descriptions are
// accepted: the homogeneous form (Node × MaxNodes, the original
// contract) and the heterogeneous form (Nodes, one capacity per
// host — the cluster topology's view). When Nodes is non-empty it is
// authoritative and Node/MaxNodes are ignored.
type Problem struct {
	Chains     []ChainDemand
	Node       NodeCapacity
	MaxNodes   int
	Nodes      []NodeCapacity
	Affinities []Affinity
}

// capacities resolves the per-node capacity list.
func (p *Problem) capacities() []NodeCapacity {
	if len(p.Nodes) > 0 {
		return p.Nodes
	}
	caps := make([]NodeCapacity, p.MaxNodes)
	for i := range caps {
		caps[i] = p.Node
	}
	return caps
}

// NumNodes reports how many hosts the instance offers.
func (p *Problem) NumNodes() int {
	if len(p.Nodes) > 0 {
		return len(p.Nodes)
	}
	return p.MaxNodes
}

// Validate reports whether the instance is well formed. A chain that
// exceeds every node's capacity makes the whole instance infeasible
// by construction; that case reports an error wrapping ErrInfeasible.
func (p *Problem) Validate() error {
	if len(p.Chains) == 0 {
		return errors.New("placement: no chains")
	}
	if len(p.Nodes) > 0 {
		for i, n := range p.Nodes {
			if n.Cores <= 0 || n.LLCBytes <= 0 {
				return fmt.Errorf("placement: node %d capacity must be positive", i)
			}
		}
	} else {
		if p.Node.Cores <= 0 || p.Node.LLCBytes <= 0 {
			return errors.New("placement: node capacity must be positive")
		}
		if p.MaxNodes <= 0 {
			return errors.New("placement: need at least one node")
		}
	}
	caps := p.capacities()
	seen := map[string]bool{}
	for i, c := range p.Chains {
		if c.Name == "" {
			return fmt.Errorf("placement: chain %d unnamed", i)
		}
		if seen[c.Name] {
			return fmt.Errorf("placement: duplicate chain %q", c.Name)
		}
		seen[c.Name] = true
		if c.Cores <= 0 || c.LLCBytes <= 0 {
			return fmt.Errorf("placement: chain %q demand must be positive", c.Name)
		}
		fits := false
		for _, n := range caps {
			if c.Cores <= n.Cores && c.LLCBytes <= n.LLCBytes {
				fits = true
				break
			}
		}
		if !fits {
			return fmt.Errorf("placement: chain %q needs %v cores / %d LLC bytes, exceeding every node's capacity: %w",
				c.Name, c.Cores, c.LLCBytes, ErrInfeasible)
		}
	}
	for _, a := range p.Affinities {
		if !seen[a.A] || !seen[a.B] {
			return fmt.Errorf("placement: affinity references unknown chain (%q, %q)", a.A, a.B)
		}
		if a.PPS < 0 {
			return errors.New("placement: negative affinity")
		}
	}
	return nil
}

// Assignment maps chain name to node index.
type Assignment map[string]int

// Solution is a placement outcome.
type Solution struct {
	Assignment Assignment
	// NodesUsed is the number of distinct nodes hosting chains.
	NodesUsed int
	// CrossPPS is the affinity traffic that crosses node boundaries
	// (the cache-locality loss the consolidation minimizes).
	CrossPPS float64
}

// Policy is a pluggable placement algorithm: the seam the cluster
// controllers select over (analytic baselines here; the DRL placement
// head lives in env.ClusterEnv's action decode and bypasses this
// interface entirely). Implementations must be deterministic — the
// figure drivers byte-diff their outputs across runs.
type Policy interface {
	// Name identifies the policy in reports and JSONL rows.
	Name() string
	// Solve computes an assignment for the instance. Infeasible
	// instances report an error wrapping ErrInfeasible.
	Solve(p Problem) (Solution, error)
}

// FFDSwap is the original consolidation heuristic: First-Fit-
// Decreasing packing by core demand, then pairwise-move/swap local
// search that reduces cross-node affinity traffic without increasing
// the node count.
type FFDSwap struct{}

// Name implements Policy.
func (FFDSwap) Name() string { return "ffd+swap" }

// Solve packs the chains: First-Fit-Decreasing by core demand for the
// node count, then pairwise-move local search to reduce cross-node
// affinity traffic without increasing the node count.
func Solve(p Problem) (Solution, error) { return FFDSwap{}.Solve(p) }

// Solve implements Policy.
func (FFDSwap) Solve(p Problem) (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	caps := p.capacities()
	// FFD by cores (ties by LLC).
	order := make([]int, len(p.Chains))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ca, cb := p.Chains[order[a]], p.Chains[order[b]]
		if ca.Cores != cb.Cores {
			return ca.Cores > cb.Cores
		}
		return ca.LLCBytes > cb.LLCBytes
	})

	type nodeState struct {
		cores float64
		llc   int64
	}
	nodes := make([]nodeState, len(caps))
	assign := Assignment{}
	for _, idx := range order {
		c := p.Chains[idx]
		placed := false
		for n := range caps {
			if nodes[n].cores+c.Cores <= caps[n].Cores &&
				nodes[n].llc+c.LLCBytes <= caps[n].LLCBytes {
				nodes[n].cores += c.Cores
				nodes[n].llc += c.LLCBytes
				assign[c.Name] = n
				placed = true
				break
			}
		}
		if !placed {
			return Solution{}, fmt.Errorf("placement: chain %q does not fit on %d nodes: %w",
				c.Name, len(caps), ErrInfeasible)
		}
	}

	demand := map[string]ChainDemand{}
	for _, c := range p.Chains {
		demand[c.Name] = c
	}
	fits := func(name string, n int) bool {
		c := demand[name]
		return nodes[n].cores+c.Cores <= caps[n].Cores && nodes[n].llc+c.LLCBytes <= caps[n].LLCBytes
	}
	move := func(name string, from, to int) {
		c := demand[name]
		nodes[from].cores -= c.Cores
		nodes[from].llc -= c.LLCBytes
		nodes[to].cores += c.Cores
		nodes[to].llc += c.LLCBytes
		assign[name] = to
	}

	// Local search: repair split affinities by moving one endpoint
	// next to the other when capacity allows, or by swapping an
	// endpoint with a third chain when both nodes are full. Accept
	// only strict cross-traffic reductions, so the search terminates.
	improved := true
	for iter := 0; improved && iter < 4*len(p.Chains); iter++ {
		improved = false
		for _, a := range p.Affinities {
			na, nb := assign[a.A], assign[a.B]
			if na == nb || a.PPS == 0 {
				continue
			}
			before := crossPPS(p, assign)
			done := false
			// Single moves.
			for _, cand := range []struct {
				name     string
				from, to int
			}{{a.A, na, nb}, {a.B, nb, na}} {
				if !fits(cand.name, cand.to) {
					continue
				}
				move(cand.name, cand.from, cand.to)
				if after := crossPPS(p, assign); after < before {
					improved, done = true, true
					break
				}
				move(cand.name, cand.to, cand.from) // revert
			}
			if done {
				continue
			}
			// Swaps: exchange B with a third chain X on A's node.
			b := demand[a.B]
			for _, x := range p.Chains {
				if assign[x.Name] != na || x.Name == a.A {
					continue
				}
				// Feasibility after the exchange, checked
				// arithmetically before touching state.
				naCoresAfter := nodes[na].cores - x.Cores + b.Cores
				naLLCAfter := nodes[na].llc - x.LLCBytes + b.LLCBytes
				nbCoresAfter := nodes[nb].cores - b.Cores + x.Cores
				nbLLCAfter := nodes[nb].llc - b.LLCBytes + x.LLCBytes
				if naCoresAfter > caps[na].Cores || naLLCAfter > caps[na].LLCBytes ||
					nbCoresAfter > caps[nb].Cores || nbLLCAfter > caps[nb].LLCBytes {
					continue
				}
				move(x.Name, na, nb)
				move(a.B, nb, na)
				if after := crossPPS(p, assign); after < before {
					improved = true
					break
				}
				move(a.B, na, nb)
				move(x.Name, nb, na)
			}
		}
	}

	used := map[int]bool{}
	for _, n := range assign {
		used[n] = true
	}
	return Solution{
		Assignment: assign,
		NodesUsed:  len(used),
		CrossPPS:   crossPPS(p, assign),
	}, nil
}

// Relaxation is the Sang-et-al.-style analytic baseline
// (arXiv:1702.01154): relax the packing integrality, take the
// fractional optimum's node count (the capacity lower bound over the
// largest-capacity node prefix), then round chains onto that prefix
// largest-fractional-demand first — each chain goes to the feasible
// open node with the strongest affinity pull, ties broken best-fit
// (least residual core slack) then lowest index. If rounding fails,
// the prefix grows by one node and rounding restarts, so the gap to
// the relaxation bound is exactly the number of retries. One pass, no
// local search: this is the provably-efficient comparator the DRL
// head must beat, not another heuristic tower.
type Relaxation struct{}

// Name implements Policy.
func (Relaxation) Name() string { return "relax+round" }

// Solve implements Policy.
func (Relaxation) Solve(p Problem) (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	caps := p.capacities()

	// Open nodes largest-capacity first: the fractional relaxation
	// fills big bins first, and its node count is the smallest prefix
	// covering both resource sums.
	nodeOrder := make([]int, len(caps))
	for i := range nodeOrder {
		nodeOrder[i] = i
	}
	sort.SliceStable(nodeOrder, func(a, b int) bool {
		ca, cb := caps[nodeOrder[a]], caps[nodeOrder[b]]
		if ca.Cores != cb.Cores {
			return ca.Cores > cb.Cores
		}
		return ca.LLCBytes > cb.LLCBytes
	})
	var totCores float64
	var totLLC int64
	for _, c := range p.Chains {
		totCores += c.Cores
		totLLC += c.LLCBytes
	}
	lb := 1
	var sumCores float64
	var sumLLC int64
	for k, idx := range nodeOrder {
		sumCores += caps[idx].Cores
		sumLLC += caps[idx].LLCBytes
		if sumCores >= totCores && sumLLC >= totLLC {
			lb = k + 1
			break
		}
		lb = k + 2 // prefix k+1 does not cover the demand
	}
	if lb > len(caps) {
		return Solution{}, fmt.Errorf("placement: relaxation bound %d exceeds %d nodes: %w",
			lb, len(caps), ErrInfeasible)
	}

	// Round chains largest fractional demand first (demand relative
	// to the biggest node: the variable closest to 1 in the relaxed
	// solution rounds first).
	ref := caps[nodeOrder[0]]
	chainOrder := make([]int, len(p.Chains))
	for i := range chainOrder {
		chainOrder[i] = i
	}
	frac := func(c ChainDemand) float64 {
		f := c.Cores / ref.Cores
		if l := float64(c.LLCBytes) / float64(ref.LLCBytes); l > f {
			f = l
		}
		return f
	}
	sort.SliceStable(chainOrder, func(a, b int) bool {
		fa, fb := frac(p.Chains[chainOrder[a]]), frac(p.Chains[chainOrder[b]])
		if fa != fb {
			return fa > fb
		}
		return p.Chains[chainOrder[a]].LLCBytes > p.Chains[chainOrder[b]].LLCBytes
	})

	for m := lb; m <= len(caps); m++ {
		open := nodeOrder[:m]
		if assign, ok := roundOnto(p, caps, open, chainOrder); ok {
			used := map[int]bool{}
			for _, n := range assign {
				used[n] = true
			}
			return Solution{
				Assignment: assign,
				NodesUsed:  len(used),
				CrossPPS:   crossPPS(p, assign),
			}, nil
		}
	}
	return Solution{}, fmt.Errorf("placement: rounding failed on all %d nodes: %w", len(caps), ErrInfeasible)
}

// roundOnto performs one rounding pass over the open node prefix.
func roundOnto(p Problem, caps []NodeCapacity, open []int, chainOrder []int) (Assignment, bool) {
	resCores := make(map[int]float64, len(open))
	resLLC := make(map[int]int64, len(open))
	for _, n := range open {
		resCores[n] = caps[n].Cores
		resLLC[n] = caps[n].LLCBytes
	}
	assign := Assignment{}
	for _, ci := range chainOrder {
		c := p.Chains[ci]
		best, bestPull, bestSlack := -1, -1.0, 0.0
		for _, n := range open {
			if c.Cores > resCores[n] || c.LLCBytes > resLLC[n] {
				continue
			}
			// Affinity pull: traffic to chains already rounded onto n.
			pull := 0.0
			for _, a := range p.Affinities {
				other := ""
				switch c.Name {
				case a.A:
					other = a.B
				case a.B:
					other = a.A
				default:
					continue
				}
				if on, ok := assign[other]; ok && on == n {
					pull += a.PPS
				}
			}
			slack := resCores[n] - c.Cores
			if best < 0 || pull > bestPull || (pull == bestPull && slack < bestSlack) {
				best, bestPull, bestSlack = n, pull, slack
			}
		}
		if best < 0 {
			return nil, false
		}
		resCores[best] -= c.Cores
		resLLC[best] -= c.LLCBytes
		assign[c.Name] = best
	}
	return assign, true
}

// crossPPS totals affinity traffic whose endpoints sit on different
// nodes.
func crossPPS(p Problem, a Assignment) float64 {
	var sum float64
	for _, af := range p.Affinities {
		if a[af.A] != a[af.B] {
			sum += af.PPS
		}
	}
	return sum
}

// LowerBoundNodes reports a simple capacity lower bound on the node
// count: for homogeneous instances the max of the core-sum and
// LLC-sum bounds; for heterogeneous ones the smallest
// largest-capacity-first prefix covering both resource sums.
func LowerBoundNodes(p Problem) int {
	var cores float64
	var llc int64
	for _, c := range p.Chains {
		cores += c.Cores
		llc += c.LLCBytes
	}
	if len(p.Nodes) == 0 {
		byCores := int(ceilDiv(cores, p.Node.Cores))
		byLLC := int((llc + p.Node.LLCBytes - 1) / p.Node.LLCBytes)
		if byCores > byLLC {
			return byCores
		}
		return byLLC
	}
	byCores := prefixBound(len(p.Nodes), func(i int) float64 { return p.Nodes[i].Cores }, cores)
	byLLC := prefixBound(len(p.Nodes), func(i int) float64 { return float64(p.Nodes[i].LLCBytes) }, float64(llc))
	if byCores > byLLC {
		return byCores
	}
	return byLLC
}

// prefixBound is the smallest count of largest-first capacities whose
// sum covers the demand (n+1 when even all of them do not).
func prefixBound(n int, capAt func(i int) float64, demand float64) int {
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = capAt(i)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(vals)))
	sum := 0.0
	for i, v := range vals {
		sum += v
		if sum >= demand {
			return i + 1
		}
	}
	return n + 1
}

func ceilDiv(a, b float64) float64 {
	n := a / b
	if n != float64(int(n)) {
		return float64(int(n) + 1)
	}
	return n
}
