// Package rpcutil is the hardened net/rpc plumbing shared by the
// training plane (internal/rl/apex) and the serving control plane
// (internal/serve): a connection-tracking TCP server whose Close
// actually terminates in-flight handlers, a client connection with a
// per-call deadline, and error matching that survives net/rpc's
// flattening of server-side errors into strings.
//
// # Server lifecycle
//
// An rpc.ServeConn handler blocks reading the next request until its
// *client* hangs up, so a naive server's Close would wait on peers
// that never disconnect. Serve tracks every accepted connection;
// Close closes them all, then the listener, then waits for handlers
// to drain. Safe to call concurrently and more than once.
//
// # Call deadlines
//
// net/rpc cannot abandon a single in-flight call, so a Conn whose
// call exceeds its Timeout tears down the whole connection (failing
// every call pending on it) and returns a retryable *DeadlineError.
// Callers that want to keep going redial.
//
// # Error matching
//
// net/rpc delivers a server-side error to remote callers as an
// rpc.ServerError holding only the message string. Matches compares
// by errors.Is in-process and by message prefix across the wire —
// which is why sentinel error strings passed to it must stay stable.
package rpcutil
