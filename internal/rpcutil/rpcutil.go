package rpcutil

import (
	"errors"
	"fmt"
	"net"
	"net/rpc"
	"strings"
	"sync"
	"time"
)

// Matches reports whether err is target, either directly (in-process)
// or as the rpc.ServerError net/rpc delivers to remote callers
// (matched by message prefix).
func Matches(err, target error) bool {
	if errors.Is(err, target) {
		return true
	}
	var se rpc.ServerError
	if errors.As(err, &se) {
		return strings.HasPrefix(string(se), target.Error())
	}
	return false
}

// DeadlineError is the retryable failure of an RPC call that exceeded
// its deadline; the underlying connection has been torn down.
type DeadlineError struct {
	Method  string
	Timeout time.Duration
}

// Error implements error.
func (e *DeadlineError) Error() string {
	return fmt.Sprintf("rpc: %s exceeded %v deadline", e.Method, e.Timeout)
}

// Server hosts one RPC receiver over TCP. It tracks its open
// connections so Close can tear them down instead of waiting for
// every client to hang up.
type Server struct {
	listener net.Listener
	wg       sync.WaitGroup
	mu       sync.Mutex
	conns    map[net.Conn]struct{}
	closed   bool
}

// Serve registers rcvr's methods under name and starts serving on
// addr (e.g. "127.0.0.1:0" for an ephemeral port). It returns once
// listening; connections are served in the background until Close.
func Serve(name string, rcvr any, addr string) (*Server, error) {
	srv := rpc.NewServer()
	if err := srv.RegisterName(name, rcvr); err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{listener: ln, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			s.mu.Lock()
			if s.closed {
				s.mu.Unlock()
				conn.Close()
				return
			}
			s.conns[conn] = struct{}{}
			s.mu.Unlock()
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				srv.ServeConn(conn)
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
			}()
		}
	}()
	return s, nil
}

// Addr reports the listening address.
func (s *Server) Addr() string { return s.listener.Addr().String() }

// ConnCount reports the number of currently open client connections.
// Safe to call concurrently with serving; metrics endpoints poll it
// as a gauge.
func (s *Server) ConnCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.conns)
}

// Close stops accepting connections, disconnects the remaining
// clients, and waits for in-flight handlers.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	err := s.listener.Close()
	s.wg.Wait()
	return err
}

// Conn is a single TCP connection to a Server; once the connection
// drops its calls fail permanently and the caller must redial.
type Conn struct {
	rc   *rpc.Client
	conn net.Conn
	// Timeout bounds each RPC round-trip; on expiry the call fails
	// with a *DeadlineError and the connection is torn down (net/rpc
	// cannot abandon a single in-flight call). Zero disables the
	// deadline. Set before issuing calls.
	Timeout time.Duration
}

// Dial connects to a Server with the given per-call deadline.
func Dial(addr string, timeout time.Duration) (*Conn, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("rpc: dial %s: %w", addr, err)
	}
	return &Conn{rc: rpc.NewClient(conn), conn: conn, Timeout: timeout}, nil
}

// Call invokes one RPC with the per-call deadline. A timed-out call
// closes the connection — tearing down every call pending on it — and
// returns a retryable *DeadlineError.
func (c *Conn) Call(method string, args, reply any) error {
	if c.Timeout <= 0 {
		return c.rc.Call(method, args, reply)
	}
	call := c.rc.Go(method, args, reply, make(chan *rpc.Call, 1))
	timer := time.NewTimer(c.Timeout)
	defer timer.Stop()
	select {
	case <-call.Done:
		return call.Error
	case <-timer.C:
		c.conn.Close()
		<-call.Done // client errors out all pending calls on teardown
		return &DeadlineError{Method: method, Timeout: c.Timeout}
	}
}

// Close releases the connection.
func (c *Conn) Close() error { return c.rc.Close() }
