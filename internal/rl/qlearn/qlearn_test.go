package qlearn

import (
	"testing"

	"greennfv/internal/perfmodel"
)

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Levels = 1 },
		func(c *Config) { c.ThroughputBins = 0 },
		func(c *Config) { c.MaxEnergyJ = 0 },
		func(c *Config) { c.Alpha = 0 },
		func(c *Config) { c.Gamma = 1.1 },
		func(c *Config) { c.Epsilon = 2 },
	}
	for i, mut := range bad {
		cfg := DefaultConfig()
		mut(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestActionSpaceSize(t *testing.T) {
	a, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.NumActions() != 243 { // 3^5
		t.Errorf("actions = %d, want 243", a.NumActions())
	}
	if a.NumStates() != 64 {
		t.Errorf("states = %d, want 64", a.NumStates())
	}
}

func TestStateIndexBinning(t *testing.T) {
	a, _ := New(DefaultConfig())
	if got := a.StateIndex(0, 0); got != 0 {
		t.Errorf("origin bin = %d", got)
	}
	if got := a.StateIndex(99, 99999); got != 63 {
		t.Errorf("saturated bin = %d, want 63", got)
	}
	if got := a.StateIndex(-5, -5); got != 0 {
		t.Errorf("negative bin = %d", got)
	}
	// Distinct measurements land in distinct bins.
	if a.StateIndex(1, 100) == a.StateIndex(9, 3000) {
		t.Error("far-apart measurements share a bin")
	}
}

func TestKnobsDecodeAllValid(t *testing.T) {
	a, _ := New(DefaultConfig())
	b := perfmodel.DefaultBounds()
	seen := map[perfmodel.NFKnobs]bool{}
	for act := 0; act < a.NumActions(); act++ {
		k, err := a.Knobs(act)
		if err != nil {
			t.Fatalf("action %d: %v", act, err)
		}
		if k.CPUShare < b.ShareMin || k.CPUShare > b.ShareMax {
			t.Fatalf("action %d: share %v", act, k.CPUShare)
		}
		if k.Batch < b.BatchMin || k.Batch > b.BatchMax {
			t.Fatalf("action %d: batch %v", act, k.Batch)
		}
		if k.DMABytes < b.DMAMin || k.DMABytes > b.DMAMax {
			t.Fatalf("action %d: dma %v", act, k.DMABytes)
		}
		seen[k] = true
	}
	if len(seen) != a.NumActions() {
		t.Errorf("only %d distinct knob sets from %d actions", len(seen), a.NumActions())
	}
	if _, err := a.Knobs(-1); err == nil {
		t.Error("negative action accepted")
	}
	if _, err := a.Knobs(243); err == nil {
		t.Error("overflow action accepted")
	}
}

func TestEpsilonDecay(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EpsilonDecay = 0.5
	cfg.EpsilonMin = 0.1
	a, _ := New(cfg)
	for i := 0; i < 10; i++ {
		if err := a.Update(0, 0, 1, 0); err != nil {
			t.Fatal(err)
		}
	}
	if a.Epsilon() != 0.1 {
		t.Errorf("epsilon = %v, want floor 0.1", a.Epsilon())
	}
}

func TestUpdateRangeChecks(t *testing.T) {
	a, _ := New(DefaultConfig())
	if err := a.Update(-1, 0, 0, 0); err == nil {
		t.Error("bad state accepted")
	}
	if err := a.Update(0, 9999, 0, 0); err == nil {
		t.Error("bad action accepted")
	}
}

// The learner must solve a tiny deterministic MDP: action 7 always
// pays 1 from any state, everything else pays 0.
func TestLearnsBestAction(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ThroughputBins, cfg.EnergyBins = 2, 1 // 2 states so 243 actions get sampled
	cfg.Epsilon = 1.0
	cfg.EpsilonDecay = 0.9995
	cfg.EpsilonMin = 0.05
	cfg.Gamma = 0
	a, _ := New(cfg)
	const lucky = 7
	for step := 0; step < 30000; step++ {
		s := step % a.NumStates()
		act := a.Act(s)
		r := 0.0
		if act == lucky {
			r = 1
		}
		if err := a.Update(s, act, r, (s+1)%a.NumStates()); err != nil {
			t.Fatal(err)
		}
	}
	for s := 0; s < a.NumStates(); s++ {
		if got := a.Greedy(s); got != lucky {
			t.Fatalf("state %d greedy = %d, want %d (q=%v)", s, got, lucky, a.QValue(s, got))
		}
	}
}
