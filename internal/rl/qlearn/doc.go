// Package qlearn implements the paper's tabular Q-learning baseline
// (Watkins & Dayan): state and action spaces are discretized — the
// paper's §4.3 explains why this scales poorly (k levels over 5 knobs
// gives O(k^5) actions) and why fine-tuning in real time is hard for
// it, which is exactly the behaviour the comparison in Figure 9
// demonstrates. The implementation applies one uniform knob set
// across the chain (per-NF tables would be k^(5n)).
//
// # Concurrency and determinism
//
// A Learner is NOT goroutine-safe and is deterministic given its
// seed: ε-greedy exploration draws from a private RNG, so the
// Figure 9 comparison rows replay exactly.
package qlearn
