package qlearn

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"greennfv/internal/perfmodel"
)

// Config shapes the tabular learner.
type Config struct {
	// Levels is the discretization count per knob (the paper uses a
	// coarse grid; 3 levels gives 3^5 = 243 joint actions).
	Levels int
	// ThroughputBins and EnergyBins discretize the state.
	ThroughputBins, EnergyBins int
	// MaxThroughputGbps and MaxEnergyJ bound the state bins.
	MaxThroughputGbps, MaxEnergyJ float64
	// Alpha is the learning rate, Gamma the discount.
	Alpha, Gamma float64
	// Epsilon is the initial exploration rate, decayed by
	// EpsilonDecay each step down to EpsilonMin.
	Epsilon, EpsilonDecay, EpsilonMin float64
	// Bounds are the knob ranges the grid spans.
	Bounds perfmodel.KnobBounds
	// Seed fixes exploration randomness.
	Seed int64
}

// DefaultConfig returns the baseline configuration used in the
// comparison experiments.
func DefaultConfig() Config {
	return Config{
		Levels:         3,
		ThroughputBins: 8, EnergyBins: 8,
		MaxThroughputGbps: 10, MaxEnergyJ: 3500,
		Alpha: 0.2, Gamma: 0.9,
		Epsilon: 1.0, EpsilonDecay: 0.999, EpsilonMin: 0.05,
		Bounds: perfmodel.DefaultBounds(),
		Seed:   1,
	}
}

// Validate reports whether the configuration is trainable.
func (c Config) Validate() error {
	switch {
	case c.Levels < 2:
		return errors.New("qlearn: need at least 2 levels per knob")
	case c.ThroughputBins < 1 || c.EnergyBins < 1:
		return errors.New("qlearn: need at least one state bin per axis")
	case c.MaxThroughputGbps <= 0 || c.MaxEnergyJ <= 0:
		return errors.New("qlearn: state bounds must be positive")
	case c.Alpha <= 0 || c.Alpha > 1:
		return errors.New("qlearn: alpha must be in (0,1]")
	case c.Gamma < 0 || c.Gamma > 1:
		return errors.New("qlearn: gamma must be in [0,1]")
	case c.Epsilon < 0 || c.Epsilon > 1:
		return errors.New("qlearn: epsilon must be in [0,1]")
	}
	return nil
}

// numKnobs is the per-NF action arity (equation 7).
const numKnobs = 5

// Agent is the tabular learner.
type Agent struct {
	cfg     Config
	rng     *rand.Rand
	q       [][]float64 // [state][action]
	actions int
	eps     float64
	// precomputed knob grids.
	shareGrid, freqGrid, llcGrid []float64
	dmaGrid                      []int64
	batchGrid                    []int
}

// New builds an agent with a zero-initialized Q table.
func New(cfg Config) (*Agent, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	actions := 1
	for i := 0; i < numKnobs; i++ {
		actions *= cfg.Levels
	}
	states := cfg.ThroughputBins * cfg.EnergyBins
	a := &Agent{
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		q:       make([][]float64, states),
		actions: actions,
		eps:     cfg.Epsilon,
	}
	for i := range a.q {
		a.q[i] = make([]float64, actions)
	}
	b := cfg.Bounds
	lin := func(lo, hi float64) []float64 {
		g := make([]float64, cfg.Levels)
		for i := range g {
			g[i] = lo + (hi-lo)*float64(i)/float64(cfg.Levels-1)
		}
		return g
	}
	logGrid := func(lo, hi float64) []float64 {
		g := make([]float64, cfg.Levels)
		for i := range g {
			g[i] = math.Exp(math.Log(lo) + (math.Log(hi)-math.Log(lo))*float64(i)/float64(cfg.Levels-1))
		}
		return g
	}
	a.shareGrid = lin(b.ShareMin, b.ShareMax)
	a.freqGrid = lin(b.FreqMin, b.FreqMax)
	a.llcGrid = lin(b.LLCMin, b.LLCMax)
	for _, v := range logGrid(float64(b.DMAMin), float64(b.DMAMax)) {
		a.dmaGrid = append(a.dmaGrid, int64(v))
	}
	for _, v := range logGrid(float64(b.BatchMin), float64(b.BatchMax)) {
		a.batchGrid = append(a.batchGrid, int(math.Round(v)))
	}
	return a, nil
}

// NumActions reports the joint discrete action count (Levels^5).
func (a *Agent) NumActions() int { return a.actions }

// NumStates reports the discrete state count.
func (a *Agent) NumStates() int { return len(a.q) }

// StateIndex discretizes a (throughput, energy) measurement.
func (a *Agent) StateIndex(tputGbps, energyJ float64) int {
	tb := binOf(tputGbps, a.cfg.MaxThroughputGbps, a.cfg.ThroughputBins)
	eb := binOf(energyJ, a.cfg.MaxEnergyJ, a.cfg.EnergyBins)
	return tb*a.cfg.EnergyBins + eb
}

func binOf(v, max float64, bins int) int {
	if v < 0 {
		v = 0
	}
	if v >= max {
		return bins - 1
	}
	return int(v / max * float64(bins))
}

// Knobs decodes a joint action index into a knob set.
func (a *Agent) Knobs(action int) (perfmodel.NFKnobs, error) {
	if action < 0 || action >= a.actions {
		return perfmodel.NFKnobs{}, fmt.Errorf("qlearn: action %d out of %d", action, a.actions)
	}
	L := a.cfg.Levels
	digits := make([]int, numKnobs)
	for i := 0; i < numKnobs; i++ {
		digits[i] = action % L
		action /= L
	}
	return perfmodel.NFKnobs{
		CPUShare:    a.shareGrid[digits[0]],
		FreqGHz:     a.freqGrid[digits[1]],
		LLCFraction: a.llcGrid[digits[2]],
		DMABytes:    a.dmaGrid[digits[3]],
		Batch:       a.batchGrid[digits[4]],
	}, nil
}

// Act selects an action epsilon-greedily for a state index.
func (a *Agent) Act(state int) int {
	if a.rng.Float64() < a.eps {
		return a.rng.Intn(a.actions)
	}
	return a.bestAction(state)
}

// bestAction is argmax over Q[state] with random tie-breaking biased
// to the first maximum (deterministic given table state).
func (a *Agent) bestAction(state int) int {
	row := a.q[state]
	best := 0
	for i := 1; i < len(row); i++ {
		if row[i] > row[best] {
			best = i
		}
	}
	return best
}

// Greedy returns the exploit action for a state.
func (a *Agent) Greedy(state int) int { return a.bestAction(state) }

// Update applies the Q-learning rule for (s, a, r, s') and decays
// epsilon.
func (a *Agent) Update(state, action int, reward float64, nextState int) error {
	if state < 0 || state >= len(a.q) || nextState < 0 || nextState >= len(a.q) {
		return fmt.Errorf("qlearn: state out of range")
	}
	if action < 0 || action >= a.actions {
		return fmt.Errorf("qlearn: action out of range")
	}
	maxNext := a.q[nextState][a.bestAction(nextState)]
	td := reward + a.cfg.Gamma*maxNext - a.q[state][action]
	a.q[state][action] += a.cfg.Alpha * td
	a.eps = math.Max(a.cfg.EpsilonMin, a.eps*a.cfg.EpsilonDecay)
	return nil
}

// Epsilon reports the current exploration rate.
func (a *Agent) Epsilon() float64 { return a.eps }

// QValue reports one table entry (for tests and debugging).
func (a *Agent) QValue(state, action int) float64 { return a.q[state][action] }
