package replay

import (
	"errors"
	"math"
	"math/rand"
	"sync"
)

// Transition is one (state, action, reward, next state) experience
// tuple, the sample unit of Algorithm 2.
type Transition struct {
	State     []float64
	Action    []float64
	Reward    float64
	NextState []float64
	Done      bool
}

// Uniform is a fixed-capacity ring buffer with uniform sampling.
// It is goroutine-safe.
type Uniform struct {
	mu    sync.Mutex
	buf   []Transition
	next  int
	count int
}

// NewUniform builds a buffer holding up to capacity transitions.
func NewUniform(capacity int) (*Uniform, error) {
	if capacity <= 0 {
		return nil, errors.New("replay: capacity must be positive")
	}
	return &Uniform{buf: make([]Transition, capacity)}, nil
}

// Add stores a transition, evicting the oldest when full.
func (u *Uniform) Add(t Transition) {
	u.mu.Lock()
	u.buf[u.next] = t
	u.next = (u.next + 1) % len(u.buf)
	if u.count < len(u.buf) {
		u.count++
	}
	u.mu.Unlock()
}

// Len reports the number of stored transitions.
func (u *Uniform) Len() int {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.count
}

// Sample draws n transitions uniformly with replacement. It returns
// fewer than n only when the buffer is empty.
func (u *Uniform) Sample(rng *rand.Rand, n int) []Transition {
	if n <= 0 {
		return nil
	}
	return u.SampleInto(rng, n, make([]Transition, 0, n))
}

// SampleInto is Sample without per-call allocation: samples are
// appended to dst (truncated to length zero first), which should
// have capacity n to stay allocation-free.
func (u *Uniform) SampleInto(rng *rand.Rand, n int, dst []Transition) []Transition {
	u.mu.Lock()
	defer u.mu.Unlock()
	if u.count == 0 || n <= 0 {
		return nil
	}
	dst = dst[:0]
	for i := 0; i < n; i++ {
		dst = append(dst, u.buf[rng.Intn(u.count)])
	}
	return dst
}

// sumTree is a complete binary tree whose leaves hold priorities and
// whose internal nodes hold subtree sums, supporting O(log n)
// prefix-sum search.
type sumTree struct {
	cap  int
	tree []float64 // 1-indexed; leaves at [cap, 2cap)
}

func newSumTree(capacity int) *sumTree {
	return &sumTree{cap: capacity, tree: make([]float64, 2*capacity)}
}

func (s *sumTree) set(idx int, p float64) {
	i := idx + s.cap
	s.tree[i] = p
	for i >>= 1; i >= 1; i >>= 1 {
		s.tree[i] = s.tree[2*i] + s.tree[2*i+1]
	}
}

func (s *sumTree) get(idx int) float64 { return s.tree[idx+s.cap] }

func (s *sumTree) total() float64 { return s.tree[1] }

// find locates the leaf containing prefix sum v.
func (s *sumTree) find(v float64) int {
	i := 1
	for i < s.cap {
		left := s.tree[2*i]
		if v < left {
			i = 2 * i
		} else {
			v -= left
			i = 2*i + 1
		}
	}
	return i - s.cap
}

// Prioritized is the proportional prioritized replay buffer:
// transitions are sampled with probability p_i^α / Σp^α and weighted
// by importance-sampling corrections (β annealed toward 1).
// It is goroutine-safe: Ape-X actors Add concurrently with the
// learner's Sample/UpdatePriorities.
type Prioritized struct {
	mu       sync.Mutex
	tree     *sumTree
	data     []Transition
	next     int
	count    int
	alpha    float64
	beta     float64
	betaInc  float64
	eps      float64
	maxPrior float64
}

// NewPrioritized builds a buffer with the standard hyperparameters
// (α controls how strongly priorities skew sampling, β the initial
// importance-sampling correction annealed by betaInc per sample
// call).
func NewPrioritized(capacity int, alpha, beta, betaInc float64) (*Prioritized, error) {
	if capacity <= 0 {
		return nil, errors.New("replay: capacity must be positive")
	}
	if alpha < 0 || beta < 0 || beta > 1 {
		return nil, errors.New("replay: need alpha >= 0 and beta in [0,1]")
	}
	// Round capacity up to a power of two for the tree.
	capPow := 1
	for capPow < capacity {
		capPow *= 2
	}
	return &Prioritized{
		tree:     newSumTree(capPow),
		data:     make([]Transition, capacity),
		alpha:    alpha,
		beta:     beta,
		betaInc:  betaInc,
		eps:      1e-4,
		maxPrior: 1,
	}, nil
}

// Len reports the number of stored transitions.
func (p *Prioritized) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.count
}

// Add stores a transition at maximal priority so every experience is
// replayed at least once (the standard PER bootstrap).
func (p *Prioritized) Add(t Transition) {
	p.mu.Lock()
	p.addLocked(t, p.maxPrior)
	p.mu.Unlock()
}

// AddWithPriority stores a transition with an explicit priority —
// Ape-X actors compute initial priorities locally from their own TD
// estimates so fresh experience competes immediately.
func (p *Prioritized) AddWithPriority(t Transition, priority float64) {
	p.mu.Lock()
	p.addLocked(t, priority)
	p.mu.Unlock()
}

// addLocked stores a transition. Caller holds mu.
func (p *Prioritized) addLocked(t Transition, priority float64) {
	if priority <= 0 || math.IsNaN(priority) {
		priority = p.eps
	}
	if priority > p.maxPrior {
		p.maxPrior = priority
	}
	p.data[p.next] = t
	p.tree.set(p.next, math.Pow(priority+p.eps, p.alpha))
	p.next = (p.next + 1) % len(p.data)
	if p.count < len(p.data) {
		p.count++
	}
}

// AddBatch stores a chunk of transitions under one lock acquire —
// the flush path for per-actor staging buffers, which otherwise pay a
// mutex round-trip per transition. priorities may be nil (every
// transition gets the current maximal priority) or shorter than ts
// (the tail gets maximal priority). The insertion sequence is
// identical to calling AddWithPriority element by element.
func (p *Prioritized) AddBatch(ts []Transition, priorities []float64) {
	p.mu.Lock()
	for i := range ts {
		prio := p.maxPrior
		if i < len(priorities) {
			prio = priorities[i]
		}
		p.addLocked(ts[i], prio)
	}
	p.mu.Unlock()
}

// Sample draws n transitions by priority. It returns the samples,
// their buffer indices (for UpdatePriorities) and their normalized
// importance-sampling weights. Fewer than n are returned only when
// the buffer is empty.
func (p *Prioritized) Sample(rng *rand.Rand, n int) ([]Transition, []int, []float64) {
	if n <= 0 {
		return nil, nil, nil
	}
	return p.SampleInto(rng, n,
		make([]Transition, 0, n), make([]int, 0, n), make([]float64, 0, n))
}

// SampleInto is Sample without per-call allocation: results are
// appended to the provided slices (truncated to length zero first),
// which should have capacity n to stay allocation-free. The learner's
// batched update path reuses one set of buffers across its whole run.
func (p *Prioritized) SampleInto(rng *rand.Rand, n int, samples []Transition, indices []int, weights []float64) ([]Transition, []int, []float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.count == 0 || n <= 0 {
		return nil, nil, nil
	}
	total := p.tree.total()
	if total <= 0 {
		return nil, nil, nil
	}
	samples, indices, weights = samples[:0], indices[:0], weights[:0]
	segment := total / float64(n)
	maxW := 0.0
	for i := 0; i < n; i++ {
		v := (float64(i) + rng.Float64()) * segment
		if v >= total {
			v = total * (1 - 1e-12)
		}
		idx := p.tree.find(v)
		if idx >= p.count { // unfilled leaf (power-of-two padding)
			idx = p.count - 1
		}
		prob := p.tree.get(idx) / total
		if prob <= 0 {
			prob = 1e-12
		}
		w := math.Pow(float64(p.count)*prob, -p.beta)
		samples = append(samples, p.data[idx])
		indices = append(indices, idx)
		weights = append(weights, w)
		if w > maxW {
			maxW = w
		}
	}
	if maxW > 0 {
		for i := range weights {
			weights[i] /= maxW
		}
	}
	p.beta = math.Min(1, p.beta+p.betaInc)
	return samples, indices, weights
}

// UpdatePriorities reassigns priorities (|TD error|) after a learning
// step.
func (p *Prioritized) UpdatePriorities(indices []int, tdErrs []float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i, idx := range indices {
		if idx < 0 || idx >= len(p.data) || i >= len(tdErrs) {
			continue
		}
		prio := math.Abs(tdErrs[i])
		if math.IsNaN(prio) {
			prio = p.eps
		}
		if prio > p.maxPrior {
			p.maxPrior = prio
		}
		p.tree.set(idx, math.Pow(prio+p.eps, p.alpha))
	}
}

// UpdatePrioritiesBatch is UpdatePriorities under its existing single
// lock, named for the batched write-back surface the sharded buffer
// introduces so both buffers satisfy one interface.
func (p *Prioritized) UpdatePrioritiesBatch(indices []int, tdErrs []float64) {
	p.UpdatePriorities(indices, tdErrs)
}

// Beta reports the current importance-sampling exponent.
func (p *Prioritized) Beta() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.beta
}
