package replay

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func tr(r float64) Transition {
	return Transition{State: []float64{r}, Action: []float64{0}, Reward: r, NextState: []float64{r + 1}}
}

func TestUniformBasics(t *testing.T) {
	u, err := NewUniform(4)
	if err != nil {
		t.Fatal(err)
	}
	if u.Len() != 0 {
		t.Error("fresh buffer non-empty")
	}
	rng := rand.New(rand.NewSource(1))
	if got := u.Sample(rng, 3); got != nil {
		t.Error("sample from empty buffer")
	}
	for i := 0; i < 6; i++ { // overfill: oldest evicted
		u.Add(tr(float64(i)))
	}
	if u.Len() != 4 {
		t.Errorf("len = %d, want 4", u.Len())
	}
	s := u.Sample(rng, 100)
	if len(s) != 100 {
		t.Fatalf("sample = %d", len(s))
	}
	for _, x := range s {
		if x.Reward < 2 || x.Reward > 5 {
			t.Fatalf("evicted transition sampled: %v", x.Reward)
		}
	}
	if _, err := NewUniform(0); err == nil {
		t.Error("zero capacity accepted")
	}
}

func TestSumTreePrefixSearch(t *testing.T) {
	s := newSumTree(4)
	s.set(0, 1)
	s.set(1, 2)
	s.set(2, 3)
	s.set(3, 4)
	if s.total() != 10 {
		t.Fatalf("total = %v", s.total())
	}
	cases := []struct {
		v    float64
		want int
	}{
		{0, 0}, {0.99, 0}, {1, 1}, {2.99, 1}, {3, 2}, {5.99, 2}, {6, 3}, {9.99, 3},
	}
	for _, c := range cases {
		if got := s.find(c.v); got != c.want {
			t.Errorf("find(%v) = %d, want %d", c.v, got, c.want)
		}
	}
	// Updating a leaf refreshes sums.
	s.set(0, 5)
	if s.total() != 14 {
		t.Errorf("total after update = %v", s.total())
	}
}

// Property: sum tree total always equals the sum of leaf priorities.
func TestSumTreeInvariant(t *testing.T) {
	f := func(ops []uint8) bool {
		s := newSumTree(8)
		model := make([]float64, 8)
		for i, op := range ops {
			idx := int(op % 8)
			p := float64(op%13) + 0.5
			s.set(idx, p)
			model[idx] = p
			_ = i
			var want float64
			for _, v := range model {
				want += v
			}
			if math.Abs(s.total()-want) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPrioritizedValidation(t *testing.T) {
	if _, err := NewPrioritized(0, 0.6, 0.4, 1e-4); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := NewPrioritized(8, -1, 0.4, 0); err == nil {
		t.Error("negative alpha accepted")
	}
	if _, err := NewPrioritized(8, 0.6, 1.5, 0); err == nil {
		t.Error("beta > 1 accepted")
	}
}

func TestPrioritizedSamplingSkew(t *testing.T) {
	p, err := NewPrioritized(64, 1.0, 0.4, 0)
	if err != nil {
		t.Fatal(err)
	}
	// One high-priority transition among many low-priority ones.
	for i := 0; i < 63; i++ {
		p.AddWithPriority(tr(0), 0.01)
	}
	p.AddWithPriority(tr(99), 10)
	rng := rand.New(rand.NewSource(5))
	hits := 0
	const draws = 2000
	samples, _, _ := p.Sample(rng, draws)
	for _, s := range samples {
		if s.Reward == 99 {
			hits++
		}
	}
	frac := float64(hits) / draws
	// Priority share = 10 / (10 + 63*0.01) ≈ 0.94.
	if frac < 0.7 {
		t.Errorf("high-priority sampled %.2f of draws, want >> uniform 1/64", frac)
	}
}

func TestPrioritizedImportanceWeights(t *testing.T) {
	p, _ := NewPrioritized(16, 1.0, 0.5, 0)
	for i := 0; i < 8; i++ {
		p.AddWithPriority(tr(float64(i)), float64(i+1))
	}
	rng := rand.New(rand.NewSource(9))
	samples, indices, weights := p.Sample(rng, 32)
	if len(samples) != 32 || len(indices) != 32 || len(weights) != 32 {
		t.Fatalf("sample sizes %d/%d/%d", len(samples), len(indices), len(weights))
	}
	maxW := 0.0
	for _, w := range weights {
		if w <= 0 || w > 1+1e-9 {
			t.Fatalf("IS weight %v outside (0,1]", w)
		}
		if w > maxW {
			maxW = w
		}
	}
	if math.Abs(maxW-1) > 1e-9 {
		t.Errorf("max weight = %v, want normalized to 1", maxW)
	}
}

func TestPrioritizedUpdateChangesSampling(t *testing.T) {
	p, _ := NewPrioritized(8, 1.0, 0.4, 0)
	for i := 0; i < 8; i++ {
		p.AddWithPriority(tr(float64(i)), 1)
	}
	// Crush all priorities except index 3.
	indices := []int{0, 1, 2, 3, 4, 5, 6, 7}
	tds := []float64{0, 0, 0, 50, 0, 0, 0, 0}
	p.UpdatePriorities(indices, tds)
	rng := rand.New(rand.NewSource(11))
	samples, _, _ := p.Sample(rng, 500)
	hits := 0
	for _, s := range samples {
		if s.Reward == 3 {
			hits++
		}
	}
	if float64(hits)/500 < 0.9 {
		t.Errorf("updated priority sampled only %d/500", hits)
	}
	// Out-of-range updates are ignored, not panics.
	p.UpdatePriorities([]int{-1, 999}, []float64{1, 1})
}

func TestPrioritizedBetaAnneals(t *testing.T) {
	p, _ := NewPrioritized(8, 0.6, 0.4, 0.1)
	p.Add(tr(1))
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 7; i++ {
		p.Sample(rng, 4)
	}
	if math.Abs(p.Beta()-1.0) > 1e-9 {
		t.Errorf("beta = %v, want annealed to 1", p.Beta())
	}
}

func TestPrioritizedEviction(t *testing.T) {
	p, _ := NewPrioritized(4, 0.6, 0.4, 0)
	for i := 0; i < 10; i++ {
		p.Add(tr(float64(i)))
	}
	if p.Len() != 4 {
		t.Errorf("len = %d, want 4", p.Len())
	}
	rng := rand.New(rand.NewSource(17))
	samples, _, _ := p.Sample(rng, 50)
	for _, s := range samples {
		if s.Reward < 6 {
			t.Fatalf("evicted transition sampled: %v", s.Reward)
		}
	}
}

func TestPrioritizedBadPriorities(t *testing.T) {
	p, _ := NewPrioritized(4, 0.6, 0.4, 0)
	p.AddWithPriority(tr(1), math.NaN())
	p.AddWithPriority(tr(2), -5)
	p.AddWithPriority(tr(3), 0)
	rng := rand.New(rand.NewSource(19))
	samples, _, weights := p.Sample(rng, 10)
	if len(samples) != 10 {
		t.Fatalf("sampling failed with sanitized priorities")
	}
	for _, w := range weights {
		if math.IsNaN(w) {
			t.Fatal("NaN importance weight")
		}
	}
}

func TestPrioritizedEmptySample(t *testing.T) {
	p, _ := NewPrioritized(4, 0.6, 0.4, 0)
	rng := rand.New(rand.NewSource(23))
	if s, _, _ := p.Sample(rng, 5); s != nil {
		t.Error("sample from empty buffer")
	}
}

// TestPrioritizedConcurrent hammers the buffer from concurrent
// producers (Add/AddWithPriority) and a consumer running
// Sample/UpdatePriorities — the Ape-X access pattern. It exists to
// run under -race; correctness checks are minimal.
func TestPrioritizedConcurrent(t *testing.T) {
	p, err := NewPrioritized(1024, 0.6, 0.4, 1e-5)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 500; i++ {
				tr := Transition{State: []float64{rng.Float64()}, Action: []float64{1}, Reward: rng.NormFloat64()}
				if i%2 == 0 {
					p.Add(tr)
				} else {
					p.AddWithPriority(tr, rng.Float64()*3)
				}
			}
		}(int64(w + 1))
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(99))
		samples := make([]Transition, 0, 16)
		indices := make([]int, 0, 16)
		weights := make([]float64, 0, 16)
		for i := 0; i < 400; i++ {
			s, idx, w := p.SampleInto(rng, 16, samples, indices, weights)
			if s == nil {
				continue
			}
			tds := make([]float64, len(idx))
			for j := range tds {
				tds[j] = rng.NormFloat64()
			}
			p.UpdatePriorities(idx, tds)
			_ = w
		}
	}()
	wg.Wait()
	if p.Len() == 0 || p.Len() > 1024 {
		t.Errorf("buffer len %d after concurrent load", p.Len())
	}
}

// SampleInto must not allocate once the caller's buffers are warm.
func TestSampleIntoZeroAlloc(t *testing.T) {
	p, err := NewPrioritized(512, 0.6, 0.4, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 512; i++ {
		p.AddWithPriority(Transition{State: []float64{float64(i)}}, rng.Float64())
	}
	samples := make([]Transition, 0, 32)
	indices := make([]int, 0, 32)
	weights := make([]float64, 0, 32)
	allocs := testing.AllocsPerRun(20, func() {
		s, _, _ := p.SampleInto(rng, 32, samples, indices, weights)
		if len(s) != 32 {
			t.Fatal("short sample")
		}
	})
	if allocs != 0 {
		t.Errorf("SampleInto allocates %v/op, want 0", allocs)
	}
}

// BenchmarkPrioritizedSample measures the learner's sampling hot path
// (allocation-free via SampleInto) at the default batch size.
func BenchmarkPrioritizedSample(b *testing.B) {
	p, err := NewPrioritized(1<<16, 0.6, 0.4, 1e-5)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1<<16; i++ {
		p.AddWithPriority(Transition{Reward: rng.NormFloat64()}, rng.Float64()*2)
	}
	samples := make([]Transition, 0, 32)
	indices := make([]int, 0, 32)
	weights := make([]float64, 0, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.SampleInto(rng, 32, samples, indices, weights)
	}
}
