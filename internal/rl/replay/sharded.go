package replay

import (
	"errors"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
)

// Sharded is the lock-striped prioritized replay buffer behind the
// parallel Ape-X trainer: the single global mutex of Prioritized —
// which every actor and the learner contend on — is split into K
// shards, each with its own sum tree, data ring and RNG stream.
// Ingest takes one shard lock per chunk (AddBatch), sampling is
// stratified across shards proportionally to their priority mass, and
// priority write-back relocks only on shard boundaries
// (UpdatePrioritiesBatch), so no path ever serializes the whole
// buffer.
//
// Sampling is distributionally equivalent to the single-tree buffer —
// each transition is still drawn with probability p^α/Σp^α — but the
// RNG streams differ, so it is used by the non-deterministic parallel
// trainer only; the deterministic round-robin mode keeps Prioritized.
type Sharded struct {
	shards   []shard
	shardCap int
	alpha    float64
	eps      float64
	betaInc  float64

	count  atomic.Int64  // total stored transitions across shards
	ingest atomic.Uint64 // round-robin chunk cursor

	// sampleMu serializes samplers: it owns beta annealing and the
	// per-shard totals snapshot scratch, which keeps SampleInto
	// allocation-free without a per-call make.
	sampleMu sync.Mutex
	beta     float64
	totals   []float64
}

// shard is one lock stripe: a private sum tree, data ring and RNG
// stream. The trailing pad keeps one shard's hot state (mutex, ring
// cursor) from false-sharing a cache line with its neighbor.
type shard struct {
	mu       sync.Mutex
	tree     *sumTree
	data     []Transition
	next     int
	count    int
	maxPrior float64
	rng      *rand.Rand
	_        [64]byte
}

// NewSharded builds a buffer of `capacity` total transitions striped
// over `shards` locks with the standard PER hyperparameters. Seed
// derives the per-shard RNG streams.
func NewSharded(capacity, shards int, alpha, beta, betaInc float64, seed int64) (*Sharded, error) {
	if capacity <= 0 {
		return nil, errors.New("replay: capacity must be positive")
	}
	if shards <= 0 {
		return nil, errors.New("replay: shard count must be positive")
	}
	if alpha < 0 || beta < 0 || beta > 1 {
		return nil, errors.New("replay: need alpha >= 0 and beta in [0,1]")
	}
	if shards > capacity {
		shards = capacity
	}
	shardCap := (capacity + shards - 1) / shards
	capPow := 1
	for capPow < shardCap {
		capPow *= 2
	}
	s := &Sharded{
		shards:   make([]shard, shards),
		shardCap: shardCap,
		alpha:    alpha,
		eps:      1e-4,
		betaInc:  betaInc,
		beta:     beta,
		totals:   make([]float64, shards),
	}
	for k := range s.shards {
		sh := &s.shards[k]
		sh.tree = newSumTree(capPow)
		sh.data = make([]Transition, shardCap)
		sh.maxPrior = 1
		sh.rng = rand.New(rand.NewSource(seed + int64(k)*0x9E37 + 1))
	}
	return s, nil
}

// NumShards reports the stripe count.
func (s *Sharded) NumShards() int { return len(s.shards) }

// Capacity reports total transition capacity across shards.
func (s *Sharded) Capacity() int { return len(s.shards) * s.shardCap }

// Len reports the number of stored transitions (lock-free).
func (s *Sharded) Len() int { return int(s.count.Load()) }

// Beta reports the current importance-sampling exponent.
func (s *Sharded) Beta() float64 {
	s.sampleMu.Lock()
	defer s.sampleMu.Unlock()
	return s.beta
}

// addLocked stores one transition in sh. Caller holds sh.mu. Reports
// whether the shard grew (false when an old transition was evicted).
func (s *Sharded) addLocked(sh *shard, t Transition, priority float64) bool {
	if priority <= 0 || math.IsNaN(priority) {
		priority = s.eps
	}
	if priority > sh.maxPrior {
		sh.maxPrior = priority
	}
	sh.data[sh.next] = t
	sh.tree.set(sh.next, math.Pow(priority+s.eps, s.alpha))
	sh.next = (sh.next + 1) % len(sh.data)
	if sh.count < len(sh.data) {
		sh.count++
		return true
	}
	return false
}

// nextShard advances the round-robin ingest cursor.
func (s *Sharded) nextShard() *shard {
	return &s.shards[int((s.ingest.Add(1)-1)%uint64(len(s.shards)))]
}

// Add stores a transition at the target shard's maximal priority (the
// standard PER bootstrap).
func (s *Sharded) Add(t Transition) {
	sh := s.nextShard()
	sh.mu.Lock()
	grew := s.addLocked(sh, t, sh.maxPrior)
	sh.mu.Unlock()
	if grew {
		s.count.Add(1)
	}
}

// AddWithPriority stores a transition with an explicit priority.
func (s *Sharded) AddWithPriority(t Transition, priority float64) {
	sh := s.nextShard()
	sh.mu.Lock()
	grew := s.addLocked(sh, t, priority)
	sh.mu.Unlock()
	if grew {
		s.count.Add(1)
	}
}

// AddBatch ingests a chunk of transitions under ONE shard lock
// acquire — the flush path for per-actor staging buffers. priorities
// may be nil (maximal priority) or shorter than ts (the tail gets
// maximal priority). Chunks rotate round-robin across shards so load
// stays balanced.
func (s *Sharded) AddBatch(ts []Transition, priorities []float64) {
	if len(ts) == 0 {
		return
	}
	sh := s.nextShard()
	grew := 0
	sh.mu.Lock()
	for i := range ts {
		p := sh.maxPrior
		if i < len(priorities) {
			p = priorities[i]
		}
		if s.addLocked(sh, ts[i], p) {
			grew++
		}
	}
	sh.mu.Unlock()
	if grew > 0 {
		s.count.Add(int64(grew))
	}
}

// SampleInto draws n transitions by priority, stratified across
// shards: the concatenated priority mass is divided into n equal
// strata and each stratum is resolved inside the shard it lands in,
// using that shard's private RNG stream (the rng argument is unused;
// it exists to match Prioritized.SampleInto). Results are appended to
// the provided slices (truncated to length zero first). Returned
// indices are global — shard*shardCap+local — for
// UpdatePrioritiesBatch.
func (s *Sharded) SampleInto(_ *rand.Rand, n int, samples []Transition, indices []int, weights []float64) ([]Transition, []int, []float64) {
	if n <= 0 {
		return nil, nil, nil
	}
	s.sampleMu.Lock()
	defer s.sampleMu.Unlock()

	// Snapshot per-shard priority mass. Concurrent ingest can shift
	// the masses while we sample, but only overwrites and appends
	// happen (never removals), so every index sampled against the
	// snapshot stays valid.
	total := 0.0
	lastPos := -1
	for k := range s.shards {
		sh := &s.shards[k]
		sh.mu.Lock()
		s.totals[k] = sh.tree.total()
		sh.mu.Unlock()
		total += s.totals[k]
		if s.totals[k] > 0 {
			lastPos = k
		}
	}
	N := int(s.count.Load())
	if N == 0 || total <= 0 || lastPos < 0 {
		return nil, nil, nil
	}

	samples, indices, weights = samples[:0], indices[:0], weights[:0]
	segment := total / float64(n)
	beta := s.beta
	maxW := 0.0
	i := 0
	off := 0.0
	// pending carries a draw whose stratum straddles a shard boundary
	// into the shard that actually contains it — the draw stays
	// uniform over its stratum, so boundary leaves are not biased.
	pending := math.NaN()
	for k := 0; k <= lastPos && i < n; k++ {
		tk := s.totals[k]
		if tk <= 0 {
			continue
		}
		hi := off + tk
		final := k == lastPos
		if !final && math.IsNaN(pending) && float64(i)*segment >= hi {
			off = hi
			continue // no stratum touches this shard
		}
		sh := &s.shards[k]
		sh.mu.Lock()
	strata:
		for i < n {
			var v float64
			switch {
			case !math.IsNaN(pending):
				v = pending
				pending = math.NaN()
			case final || float64(i)*segment < hi:
				v = (float64(i) + sh.rng.Float64()) * segment
			default:
				break strata // stratum starts in a later shard
			}
			if v >= hi {
				if !final {
					pending = v // resolves in the shard containing v
					break strata
				}
				v = off + tk*(1-1e-12) // fp edge on the last shard
			}
			if v < off {
				v = off // fp edge at the left boundary
			}
			idx := sh.tree.find(v - off)
			if idx >= sh.count { // unfilled leaf (power-of-two padding)
				idx = sh.count - 1
			}
			prob := sh.tree.get(idx) / total
			if prob <= 0 {
				prob = 1e-12
			}
			w := math.Pow(float64(N)*prob, -beta)
			samples = append(samples, sh.data[idx])
			indices = append(indices, k*s.shardCap+idx)
			weights = append(weights, w)
			if w > maxW {
				maxW = w
			}
			i++
		}
		sh.mu.Unlock()
		off = hi
	}
	if maxW > 0 {
		for j := range weights {
			weights[j] /= maxW
		}
	}
	s.beta = math.Min(1, s.beta+s.betaInc)
	return samples, indices, weights
}

// UpdatePrioritiesBatch reassigns priorities (|TD error|) after a
// learning step. Stratified sampling returns indices grouped by
// shard, so the write-back takes one lock acquire per shard touched:
// the lock is only dropped and retaken when the shard changes.
func (s *Sharded) UpdatePrioritiesBatch(indices []int, tdErrs []float64) {
	limit := len(s.shards) * s.shardCap
	cur := -1
	var sh *shard
	for i, idx := range indices {
		if i >= len(tdErrs) {
			break
		}
		if idx < 0 || idx >= limit {
			continue
		}
		k := idx / s.shardCap
		if k != cur {
			if sh != nil {
				sh.mu.Unlock()
			}
			cur, sh = k, &s.shards[k]
			sh.mu.Lock()
		}
		local := idx - k*s.shardCap
		if local >= sh.count {
			continue
		}
		prio := math.Abs(tdErrs[i])
		if math.IsNaN(prio) {
			prio = s.eps
		}
		if prio > sh.maxPrior {
			sh.maxPrior = prio
		}
		sh.tree.set(local, math.Pow(prio+s.eps, s.alpha))
	}
	if sh != nil {
		sh.mu.Unlock()
	}
}
