package replay

import (
	"math"
	"math/rand"
	"testing"
)

// TestSnapshotRoundTripAtEvictionBoundary drives the ring past
// capacity so eviction has wrapped the cursor, then checks the
// snapshot restores the sum-tree leaves bit-exactly: same stored
// data, same leaf priorities (no recomputed math.Pow), and an
// identical sampling stream from an identical RNG.
func TestSnapshotRoundTripAtEvictionBoundary(t *testing.T) {
	const capacity = 8
	src, err := NewPrioritized(capacity, 0.6, 0.4, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	// 13 adds into 8 slots: 5 evictions, cursor mid-ring.
	for i := 0; i < 13; i++ {
		src.AddWithPriority(tr(float64(i)), 0.25+float64(i))
	}
	if src.Len() != capacity || src.next != 13%capacity {
		t.Fatalf("fixture not at eviction boundary: len %d next %d", src.Len(), src.next)
	}

	st := src.State()
	dst, err := NewPrioritized(capacity, 0.6, 0.4, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.SetState(st); err != nil {
		t.Fatal(err)
	}
	if dst.count != src.count || dst.next != src.next || dst.maxPrior != src.maxPrior || dst.beta != src.beta {
		t.Fatalf("restored cursor state differs: %d/%d/%v vs %d/%d/%v",
			dst.count, dst.next, dst.maxPrior, src.count, src.next, src.maxPrior)
	}
	for i := 0; i < capacity; i++ {
		if got, want := dst.tree.get(i), src.tree.get(i); got != want {
			t.Errorf("leaf %d: restored priority %v, want %v", i, got, want)
		}
		if dst.data[i].Reward != src.data[i].Reward {
			t.Errorf("slot %d: restored reward %v, want %v", i, dst.data[i].Reward, src.data[i].Reward)
		}
	}
	if dst.tree.total() != src.tree.total() {
		t.Errorf("tree total %v, want %v", dst.tree.total(), src.tree.total())
	}

	// Identical RNG streams must sample identical indices and weights.
	r1, r2 := rand.New(rand.NewSource(9)), rand.New(rand.NewSource(9))
	_, idx1, w1 := src.Sample(r1, 32)
	_, idx2, w2 := dst.Sample(r2, 32)
	for i := range idx1 {
		if idx1[i] != idx2[i] || w1[i] != w2[i] {
			t.Fatalf("sample %d diverged: (%d, %v) vs (%d, %v)", i, idx1[i], w1[i], idx2[i], w2[i])
		}
	}

	// The restored ring keeps evicting where the original would.
	wantNext := (src.next + 1) % capacity
	dst.Add(tr(99))
	if dst.next != wantNext {
		t.Errorf("post-restore eviction cursor %d, want %d", dst.next, wantNext)
	}
}

// TestSnapshotRestorePartialBuffer pins the restore preconditions: a
// target that already holds experience is refused, whatever its fill
// level, and the refused target is left untouched.
func TestSnapshotRestorePartialBuffer(t *testing.T) {
	src, _ := NewPrioritized(8, 0.6, 0.4, 0)
	for i := 0; i < 3; i++ {
		src.Add(tr(float64(i)))
	}
	st := src.State()
	if len(st.Data) != 3 || len(st.Leaves) != 3 {
		t.Fatalf("partial snapshot sized %d/%d, want 3/3", len(st.Data), len(st.Leaves))
	}

	// A partially-filled snapshot restores into an empty buffer.
	empty, _ := NewPrioritized(8, 0.6, 0.4, 0)
	if err := empty.SetState(st); err != nil {
		t.Fatalf("partial snapshot rejected by empty buffer: %v", err)
	}
	if empty.Len() != 3 || empty.next != 3 {
		t.Errorf("restored partial fill %d/next %d, want 3/3", empty.Len(), empty.next)
	}

	// Any pre-existing experience refuses the restore.
	dirty, _ := NewPrioritized(8, 0.6, 0.4, 0)
	dirty.Add(tr(42))
	if err := dirty.SetState(st); err == nil {
		t.Fatal("restore into non-empty buffer accepted")
	}
	if dirty.Len() != 1 || dirty.data[0].Reward != 42 {
		t.Error("refused restore mutated the target")
	}
}

// TestSnapshotCapacityMismatch pins the fit checks: snapshots from a
// larger buffer, torn Data/Leaves pairs, and corrupt leaf priorities
// are all refused.
func TestSnapshotCapacityMismatch(t *testing.T) {
	big, _ := NewPrioritized(16, 0.6, 0.4, 0)
	for i := 0; i < 12; i++ {
		big.Add(tr(float64(i)))
	}
	small, _ := NewPrioritized(8, 0.6, 0.4, 0)
	if err := small.SetState(big.State()); err == nil {
		t.Fatal("oversized snapshot accepted")
	}

	// A wrapped cursor beyond the target capacity is refused even when
	// the payload itself would fit.
	st := big.State()
	st.Data, st.Leaves, st.Count = st.Data[:4], st.Leaves[:4], 4
	st.Next = 12
	if err := small.SetState(st); err == nil {
		t.Fatal("out-of-range cursor accepted")
	}

	// Torn snapshots (Data/Leaves disagreeing with Count) are refused.
	torn := big.State()
	torn.Leaves = torn.Leaves[:len(torn.Leaves)-1]
	fresh, _ := NewPrioritized(16, 0.6, 0.4, 0)
	if err := fresh.SetState(torn); err == nil {
		t.Fatal("torn snapshot accepted")
	}

	// Corrupt leaves: NaN or negative priorities are refused.
	for _, bad := range []float64{math.NaN(), -1} {
		corrupt := big.State()
		corrupt.Leaves[2] = bad
		target, _ := NewPrioritized(16, 0.6, 0.4, 0)
		if err := target.SetState(corrupt); err == nil {
			t.Fatalf("corrupt leaf %v accepted", bad)
		}
	}
}

// TestShardedSnapshotRoundTrip covers the sharded analogue: contents
// and leaf priorities restore exactly per shard, restore refuses a
// shard-count mismatch and a non-empty target.
func TestShardedSnapshotRoundTrip(t *testing.T) {
	src, err := NewSharded(16, 4, 0.6, 0.4, 1e-3, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Overfill so at least one shard ring wraps.
	for i := 0; i < 23; i++ {
		src.AddWithPriority(tr(float64(i)), 0.5+float64(i))
	}
	st := src.State()

	dst, err := NewSharded(16, 4, 0.6, 0.4, 1e-3, 99)
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.SetState(st); err != nil {
		t.Fatal(err)
	}
	if dst.Len() != src.Len() {
		t.Fatalf("restored len %d, want %d", dst.Len(), src.Len())
	}
	for k := range src.shards {
		a, b := &src.shards[k], &dst.shards[k]
		if a.count != b.count || a.next != b.next || a.maxPrior != b.maxPrior {
			t.Fatalf("shard %d cursor state differs", k)
		}
		for i := 0; i < a.count; i++ {
			if a.tree.get(i) != b.tree.get(i) {
				t.Errorf("shard %d leaf %d: %v vs %v", k, i, b.tree.get(i), a.tree.get(i))
			}
			if a.data[i].Reward != b.data[i].Reward {
				t.Errorf("shard %d slot %d data differs", k, i)
			}
		}
	}

	// Shard-count mismatch is refused.
	other, _ := NewSharded(16, 2, 0.6, 0.4, 1e-3, 7)
	if err := other.SetState(st); err == nil {
		t.Fatal("shard-count mismatch accepted")
	}
	// Non-empty target is refused.
	dirty, _ := NewSharded(16, 4, 0.6, 0.4, 1e-3, 7)
	dirty.Add(tr(1))
	if err := dirty.SetState(st); err == nil {
		t.Fatal("restore into non-empty sharded buffer accepted")
	}
	// Per-shard capacity mismatch is refused.
	tiny, _ := NewSharded(4, 4, 0.6, 0.4, 1e-3, 7)
	if err := tiny.SetState(st); err == nil {
		t.Fatal("per-shard capacity mismatch accepted")
	}
}
