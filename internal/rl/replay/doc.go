// Package replay provides experience-replay buffers for DDPG: a
// uniform ring buffer and the prioritized buffer (Schaul et al.,
// "Prioritized Experience Replay") that the Ape-X architecture
// (Horgan et al.) extends to distributed actors. Priorities live in
// a sum tree so sampling and updates are O(log n).
//
// # Paper mapping
//
// The shared prioritized replay of §4.3.2/Algorithm 3 — the buffer
// NF-controller actors fill and the central learner samples.
//
// # Concurrency and determinism
//
// All buffers are goroutine-safe. Uniform and Prioritized each use
// one internal mutex (Prioritized's guards the sum tree), and
// AddBatch/UpdatePrioritiesBatch amortize it to one acquire per
// chunk. Sharded is the lock-striped variant the
// parallel/remote Ape-X modes install: K shards, each with its own
// sum tree and RNG stream, round-robin chunk ingest (one shard lock
// per AddBatch chunk), stratified SampleInto with boundary carry
// (unbiased — total-variation distance to the single-tree sampler is
// pinned < 0.03 by a parity test), and an atomic Len. Sampling from
// either prioritized buffer is deterministic given the caller's RNG
// and the insertion history; the deterministic round-robin figure
// path uses the single-tree Prioritized so recorded training curves
// replay exactly. SampleInto variants are the zero-alloc sampling
// path (caller-owned slices).
package replay
