package replay

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

func TestShardedValidation(t *testing.T) {
	if _, err := NewSharded(0, 4, 0.6, 0.4, 0, 1); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := NewSharded(64, 0, 0.6, 0.4, 0, 1); err == nil {
		t.Error("zero shards accepted")
	}
	if _, err := NewSharded(64, 4, -1, 0.4, 0, 1); err == nil {
		t.Error("negative alpha accepted")
	}
	if _, err := NewSharded(64, 4, 0.6, 1.5, 0, 1); err == nil {
		t.Error("beta > 1 accepted")
	}
	// More shards than capacity collapses to one slot per shard.
	s, err := NewSharded(3, 8, 0.6, 0.4, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumShards() != 3 {
		t.Errorf("shards = %d, want clamped to 3", s.NumShards())
	}
}

// TestShardedEvictionPerShard overfills the buffer and checks the
// ring invariants hold in every shard: no shard exceeds its capacity,
// the global count matches, and only live transitions are sampled.
func TestShardedEvictionPerShard(t *testing.T) {
	s, err := NewSharded(16, 4, 0.6, 0.4, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	// 40 single adds round-robin 10 into each 4-slot shard.
	for i := 0; i < 40; i++ {
		s.Add(tr(float64(i)))
	}
	if s.Len() != 16 {
		t.Errorf("len = %d, want 16", s.Len())
	}
	for k := range s.shards {
		sh := &s.shards[k]
		if sh.count != s.shardCap {
			t.Errorf("shard %d count = %d, want %d", k, sh.count, s.shardCap)
		}
		if sh.next < 0 || sh.next >= len(sh.data) {
			t.Errorf("shard %d ring cursor %d out of range", k, sh.next)
		}
	}
	// Round-robin single adds: shard k holds i ≡ k (mod 4), and each
	// 4-slot ring keeps only the last 4 of its 10 — rewards ≥ 24.
	samples, _, _ := s.SampleInto(nil, 200, nil, nil, nil)
	if len(samples) != 200 {
		t.Fatalf("sampled %d, want 200", len(samples))
	}
	for _, x := range samples {
		if x.Reward < 24 {
			t.Fatalf("evicted transition sampled: reward %v", x.Reward)
		}
	}
}

// TestShardedAddBatchChunks verifies batched ingest lands whole
// chunks and the count tracks growth, not evictions.
func TestShardedAddBatchChunks(t *testing.T) {
	s, err := NewSharded(32, 4, 0.6, 0.4, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	chunk := make([]Transition, 8)
	prios := make([]float64, 8)
	for c := 0; c < 10; c++ { // 80 transitions into 32 slots
		for i := range chunk {
			chunk[i] = tr(float64(c*8 + i))
			prios[i] = rand.New(rand.NewSource(int64(c*8+i))).Float64() + 0.1
		}
		s.AddBatch(chunk, prios)
	}
	if s.Len() != 32 {
		t.Errorf("len = %d, want 32", s.Len())
	}
	// nil and short priority slices are accepted.
	s.AddBatch(chunk, nil)
	s.AddBatch(chunk, prios[:3])
	if s.Len() != 32 {
		t.Errorf("len changed on overfull AddBatch: %d", s.Len())
	}
}

// TestShardedSamplingSkew mirrors TestPrioritizedSamplingSkew: one
// high-priority transition must dominate the draw.
func TestShardedSamplingSkew(t *testing.T) {
	s, err := NewSharded(64, 4, 1.0, 0.4, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 63; i++ {
		s.AddWithPriority(tr(0), 0.01)
	}
	s.AddWithPriority(tr(99), 10)
	hits := 0
	const draws = 2000
	samples, _, _ := s.SampleInto(nil, draws, nil, nil, nil)
	for _, x := range samples {
		if x.Reward == 99 {
			hits++
		}
	}
	frac := float64(hits) / draws
	// Priority share = 10 / (10 + 63*0.01) ≈ 0.94.
	if frac < 0.7 {
		t.Errorf("high-priority sampled %.2f of draws, want >> uniform 1/64", frac)
	}
}

// TestShardedStratifiedParity is the distributional-equivalence check
// of the PR: the sharded buffer's stratified sampling must reproduce
// the single-tree buffer's sampling distribution within tolerance.
// Both buffers hold identical transitions and priorities; empirical
// marginals over many draws are compared by total variation distance,
// and both are compared to the exact p^α/Σp^α law.
func TestShardedStratifiedParity(t *testing.T) {
	const n = 128
	const batch = 32
	const rounds = 3000
	alpha := 0.6

	single, err := NewPrioritized(n, alpha, 0.4, 0)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := NewSharded(n, 8, alpha, 0.4, 0, 21)
	if err != nil {
		t.Fatal(err)
	}
	prioRng := rand.New(rand.NewSource(31))
	prios := make([]float64, n)
	for i := 0; i < n; i++ {
		prios[i] = prioRng.Float64()*2 + 0.01
		single.AddWithPriority(tr(float64(i)), prios[i])
		sharded.AddWithPriority(tr(float64(i)), prios[i])
	}

	count := func(draw func() []Transition) []float64 {
		counts := make([]float64, n)
		total := 0.0
		for r := 0; r < rounds; r++ {
			for _, x := range draw() {
				counts[int(x.Reward)]++
				total++
			}
		}
		for i := range counts {
			counts[i] /= total
		}
		return counts
	}
	rng := rand.New(rand.NewSource(77))
	sBuf := make([]Transition, 0, batch)
	iBuf := make([]int, 0, batch)
	wBuf := make([]float64, 0, batch)
	singleFreq := count(func() []Transition {
		s, _, _ := single.SampleInto(rng, batch, sBuf, iBuf, wBuf)
		return s
	})
	shardedFreq := count(func() []Transition {
		s, _, _ := sharded.SampleInto(nil, batch, sBuf, iBuf, wBuf)
		return s
	})

	// Exact proportional-prioritization law.
	theory := make([]float64, n)
	var mass float64
	for i := range theory {
		theory[i] = math.Pow(prios[i]+1e-4, alpha)
		mass += theory[i]
	}
	for i := range theory {
		theory[i] /= mass
	}

	tv := func(a, b []float64) float64 {
		var d float64
		for i := range a {
			d += math.Abs(a[i] - b[i])
		}
		return d / 2
	}
	if d := tv(shardedFreq, theory); d > 0.03 {
		t.Errorf("sharded vs theory: total variation %.4f > 0.03", d)
	}
	if d := tv(singleFreq, theory); d > 0.03 {
		t.Errorf("single-tree vs theory: total variation %.4f > 0.03", d)
	}
	if d := tv(shardedFreq, singleFreq); d > 0.04 {
		t.Errorf("sharded vs single-tree: total variation %.4f > 0.04", d)
	}
}

// TestShardedIndicesRoundTrip checks global indices decode to the
// sampled transition and drive priority write-back at the right slot.
func TestShardedIndicesRoundTrip(t *testing.T) {
	s, err := NewSharded(32, 4, 1.0, 0.4, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		s.AddWithPriority(tr(float64(i)), 1)
	}
	samples, indices, _ := s.SampleInto(nil, 64, nil, nil, nil)
	for j, idx := range indices {
		k := idx / s.shardCap
		local := idx % s.shardCap
		got := s.shards[k].data[local]
		if got.Reward != samples[j].Reward {
			t.Fatalf("index %d decodes to reward %v, sampled %v", idx, got.Reward, samples[j].Reward)
		}
	}

	// Crush every priority except one sampled index; it must dominate.
	target := indices[0]
	tds := make([]float64, 32)
	all := make([]int, 32)
	for k := 0; k < 4; k++ {
		for l := 0; l < s.shardCap; l++ {
			all[k*s.shardCap+l] = k*s.shardCap + l
			tds[k*s.shardCap+l] = 1e-9
		}
	}
	s.UpdatePrioritiesBatch(all, tds)
	s.UpdatePrioritiesBatch([]int{target}, []float64{50})
	samples, _, _ = s.SampleInto(nil, 500, nil, nil, nil)
	hits := 0
	want := s.shards[target/s.shardCap].data[target%s.shardCap].Reward
	for _, x := range samples {
		if x.Reward == want {
			hits++
		}
	}
	if float64(hits)/500 < 0.9 {
		t.Errorf("boosted index sampled only %d/500", hits)
	}
	// Out-of-range updates are ignored, not panics.
	s.UpdatePrioritiesBatch([]int{-1, 9999}, []float64{1, 1})
}

// TestShardedConcurrent hammers the buffer with the Ape-X access
// pattern — concurrent chunked producers, a sampling/updating
// consumer — and exists to run under -race.
func TestShardedConcurrent(t *testing.T) {
	s, err := NewSharded(1024, 8, 0.6, 0.4, 1e-5, 13)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			chunk := make([]Transition, 0, 8)
			prios := make([]float64, 0, 8)
			for i := 0; i < 400; i++ {
				x := Transition{State: []float64{rng.Float64()}, Reward: rng.NormFloat64()}
				switch i % 3 {
				case 0:
					s.Add(x)
				case 1:
					s.AddWithPriority(x, rng.Float64()*3)
				default:
					chunk = append(chunk, x)
					prios = append(prios, rng.Float64()*2)
					if len(chunk) == 8 {
						s.AddBatch(chunk, prios)
						chunk, prios = chunk[:0], prios[:0]
					}
				}
			}
		}(int64(w + 1))
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		samples := make([]Transition, 0, 16)
		indices := make([]int, 0, 16)
		weights := make([]float64, 0, 16)
		rng := rand.New(rand.NewSource(99))
		for i := 0; i < 400; i++ {
			sm, idx, _ := s.SampleInto(nil, 16, samples, indices, weights)
			if sm == nil {
				continue
			}
			tds := make([]float64, len(idx))
			for j := range tds {
				tds[j] = rng.NormFloat64()
			}
			s.UpdatePrioritiesBatch(idx, tds)
		}
	}()
	wg.Wait()
	if s.Len() == 0 || s.Len() > 1024 {
		t.Errorf("buffer len %d after concurrent load", s.Len())
	}
	if got := s.Beta(); got < 0.4 || got > 1 {
		t.Errorf("beta %v outside [0.4, 1]", got)
	}
}

// TestShardedSampleIntoZeroAlloc: the sampler goroutine runs this in
// the learner's steady state; it must not allocate with warm buffers.
func TestShardedSampleIntoZeroAlloc(t *testing.T) {
	s, err := NewSharded(512, 8, 0.6, 0.4, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 512; i++ {
		s.AddWithPriority(Transition{State: []float64{float64(i)}}, rng.Float64())
	}
	samples := make([]Transition, 0, 32)
	indices := make([]int, 0, 32)
	weights := make([]float64, 0, 32)
	allocs := testing.AllocsPerRun(20, func() {
		sm, _, _ := s.SampleInto(nil, 32, samples, indices, weights)
		if len(sm) != 32 {
			t.Fatal("short sample")
		}
	})
	if allocs != 0 {
		t.Errorf("SampleInto allocates %v/op, want 0", allocs)
	}
}

// TestShardedBadPriorities mirrors the single-tree sanitization.
func TestShardedBadPriorities(t *testing.T) {
	s, _ := NewSharded(8, 2, 0.6, 0.4, 0, 1)
	s.AddWithPriority(tr(1), math.NaN())
	s.AddWithPriority(tr(2), -5)
	s.AddWithPriority(tr(3), 0)
	samples, _, weights := s.SampleInto(nil, 10, nil, nil, nil)
	if len(samples) != 10 {
		t.Fatalf("sampling failed with sanitized priorities")
	}
	for _, w := range weights {
		if math.IsNaN(w) {
			t.Fatal("NaN importance weight")
		}
	}
}

// TestShardedEmptySample: an empty buffer returns nil, not junk.
func TestShardedEmptySample(t *testing.T) {
	s, _ := NewSharded(8, 2, 0.6, 0.4, 0, 1)
	if sm, _, _ := s.SampleInto(nil, 5, nil, nil, nil); sm != nil {
		t.Error("sample from empty buffer")
	}
}

// BenchmarkShardedSample measures the stratified sampling hot path at
// the learner's batch size.
func BenchmarkShardedSample(b *testing.B) {
	s, err := NewSharded(1<<16, 8, 0.6, 0.4, 1e-5, 7)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1<<16; i++ {
		s.AddWithPriority(Transition{Reward: rng.NormFloat64()}, rng.Float64()*2)
	}
	samples := make([]Transition, 0, 32)
	indices := make([]int, 0, 32)
	weights := make([]float64, 0, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.SampleInto(nil, 32, samples, indices, weights)
	}
}

// BenchmarkShardedAddBatch measures the chunked ingest path actors
// use (8-transition staging flush).
func BenchmarkShardedAddBatch(b *testing.B) {
	s, err := NewSharded(1<<16, 8, 0.6, 0.4, 0, 7)
	if err != nil {
		b.Fatal(err)
	}
	chunk := make([]Transition, 8)
	prios := make([]float64, 8)
	for i := range chunk {
		chunk[i] = Transition{Reward: float64(i)}
		prios[i] = 0.5
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.AddBatch(chunk, prios)
	}
}
