package replay

import (
	"errors"
	"math"
)

// Checkpoint/restore support for the prioritized buffers. A snapshot
// captures the stored transitions together with the sum-tree leaf
// values (the priorities already raised to the power α) — restoring
// leaves verbatim makes the restored sampling distribution
// bit-identical without recomputing any math.Pow. The single-tree
// Prioritized restores exactly (its RNG stream lives in the caller);
// the lock-striped Sharded restores contents exactly but re-derives
// its per-shard RNG streams from a fresh seed, which is fine because
// only the non-deterministic trainer modes use it.

// PrioritizedState is the serializable form of a Prioritized buffer.
type PrioritizedState struct {
	// Data and Leaves hold the first Count ring slots (the ring wraps
	// only when full, so slots [0, Count) are exactly the live ones).
	Data   []Transition
	Leaves []float64
	// Next and Count are the ring cursor and fill level.
	Next, Count int
	// Beta is the annealed importance-sampling exponent; MaxPrior the
	// running maximal raw priority used for Add bootstraps.
	Beta, MaxPrior float64
}

// State deep-copies the buffer contents for checkpointing. Transition
// slices are aliased, not copied: the snapshot shares float data with
// the live buffer, which is safe because transitions are never
// mutated in place (only overwritten slot-wise on eviction — and gob
// encoding for a checkpoint reads them before any eviction can).
func (p *Prioritized) State() PrioritizedState {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := PrioritizedState{
		Data:   append([]Transition(nil), p.data[:p.count]...),
		Leaves: make([]float64, p.count),
		Next:   p.next, Count: p.count,
		Beta: p.beta, MaxPrior: p.maxPrior,
	}
	for i := 0; i < p.count; i++ {
		st.Leaves[i] = p.tree.get(i)
	}
	return st
}

// SetState restores a snapshot into this buffer, which must have the
// same capacity it was taken from and must still be empty.
func (p *Prioritized) SetState(st PrioritizedState) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.count != 0 {
		return errors.New("replay: restore target already holds experience")
	}
	if st.Count > len(p.data) || st.Next > len(p.data) ||
		len(st.Data) != st.Count || len(st.Leaves) != st.Count {
		return errors.New("replay: snapshot does not fit buffer capacity")
	}
	copy(p.data, st.Data)
	for i := 0; i < st.Count; i++ {
		leaf := st.Leaves[i]
		if math.IsNaN(leaf) || leaf < 0 {
			return errors.New("replay: corrupt snapshot leaf priority")
		}
		p.tree.set(i, leaf)
	}
	p.next, p.count = st.Next, st.Count
	p.beta, p.maxPrior = st.Beta, st.MaxPrior
	return nil
}

// ShardedState is the serializable form of a Sharded buffer: one
// PrioritizedState-shaped record per shard plus the shared sampling
// state. Per-shard RNG streams are not captured; a restored buffer
// samples from fresh streams (the parallel modes are
// non-deterministic by contract).
type ShardedState struct {
	Shards []PrioritizedState
	Beta   float64
	Ingest uint64
}

// State deep-copies the buffer contents for checkpointing, locking
// one shard at a time (concurrent ingest keeps flowing; the snapshot
// is per-shard consistent, which is all a crash-recovery checkpoint
// needs).
func (s *Sharded) State() ShardedState {
	s.sampleMu.Lock()
	st := ShardedState{Beta: s.beta, Ingest: s.ingest.Load()}
	s.sampleMu.Unlock()
	for k := range s.shards {
		sh := &s.shards[k]
		sh.mu.Lock()
		rec := PrioritizedState{
			Data:   append([]Transition(nil), sh.data[:sh.count]...),
			Leaves: make([]float64, sh.count),
			Next:   sh.next, Count: sh.count, MaxPrior: sh.maxPrior,
		}
		for i := 0; i < sh.count; i++ {
			rec.Leaves[i] = sh.tree.get(i)
		}
		sh.mu.Unlock()
		st.Shards = append(st.Shards, rec)
	}
	return st
}

// SetState restores a snapshot into this buffer, which must have the
// same shard count and per-shard capacity and must still be empty.
func (s *Sharded) SetState(st ShardedState) error {
	if len(st.Shards) != len(s.shards) {
		return errors.New("replay: snapshot shard count mismatch")
	}
	if s.count.Load() != 0 {
		return errors.New("replay: restore target already holds experience")
	}
	total := int64(0)
	for k := range s.shards {
		sh := &s.shards[k]
		rec := st.Shards[k]
		sh.mu.Lock()
		if rec.Count > len(sh.data) || rec.Next > len(sh.data) ||
			len(rec.Data) != rec.Count || len(rec.Leaves) != rec.Count {
			sh.mu.Unlock()
			return errors.New("replay: snapshot does not fit shard capacity")
		}
		copy(sh.data, rec.Data)
		for i := 0; i < rec.Count; i++ {
			sh.tree.set(i, rec.Leaves[i])
		}
		sh.next, sh.count, sh.maxPrior = rec.Next, rec.Count, rec.MaxPrior
		sh.mu.Unlock()
		total += int64(rec.Count)
	}
	s.sampleMu.Lock()
	s.beta = st.Beta
	s.sampleMu.Unlock()
	s.ingest.Store(st.Ingest)
	s.count.Store(total)
	return nil
}
