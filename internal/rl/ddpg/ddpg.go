package ddpg

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"greennfv/internal/nn"
	"greennfv/internal/rl/replay"
)

// PrioritizedReplay abstracts the prioritized buffer the agent
// samples from: the single-tree replay.Prioritized (default — its RNG
// stream is what the recorded deterministic figures use) and the
// lock-striped replay.Sharded (the parallel Ape-X trainer) both
// satisfy it.
type PrioritizedReplay interface {
	Len() int
	Add(t replay.Transition)
	AddWithPriority(t replay.Transition, priority float64)
	AddBatch(ts []replay.Transition, priorities []float64)
	SampleInto(rng *rand.Rand, n int, samples []replay.Transition, indices []int, weights []float64) ([]replay.Transition, []int, []float64)
	UpdatePrioritiesBatch(indices []int, tdErrs []float64)
	Beta() float64
}

var (
	_ PrioritizedReplay = (*replay.Prioritized)(nil)
	_ PrioritizedReplay = (*replay.Sharded)(nil)
)

// Config hyper-parameterizes an agent.
type Config struct {
	StateDim  int
	ActionDim int
	// Hidden are the MLP hidden-layer widths for both networks.
	Hidden []int
	// ActorLR and CriticLR are Adam learning rates.
	ActorLR, CriticLR float64
	// Gamma is the discount factor γ.
	Gamma float64
	// Tau is the soft-target update rate τ (Algorithm 2 lines 9–10).
	Tau float64
	// BatchSize is the minibatch size N (Algorithm 2 line 3).
	BatchSize int
	// BufferCap is the replay capacity R.
	BufferCap int
	// Prioritized selects prioritized experience replay (the Ape-X
	// configuration) over uniform sampling.
	Prioritized bool
	// PERAlpha/PERBeta/PERBetaInc are prioritized-replay parameters.
	PERAlpha, PERBeta, PERBetaInc float64
	// OUTheta/OUSigma shape the Ornstein-Uhlenbeck exploration noise
	// N_t added to actions (Algorithm 2 line 1).
	OUTheta, OUSigma float64
	// NoiseDecay multiplies sigma after every Learn call so
	// exploration anneals.
	NoiseDecay float64
	// Seed fixes all randomness.
	Seed int64
}

// DefaultConfig returns hyperparameters tuned for the GreenNFV
// environment (12–15 dimensional states/actions).
func DefaultConfig(stateDim, actionDim int) Config {
	return Config{
		StateDim:  stateDim,
		ActionDim: actionDim,
		Hidden:    []int{48, 48},
		ActorLR:   1e-3, CriticLR: 2e-3,
		Gamma: 0.95, Tau: 0.01,
		BatchSize: 32, BufferCap: 1 << 16,
		Prioritized: true,
		PERAlpha:    0.6, PERBeta: 0.4, PERBetaInc: 1e-5,
		OUTheta: 0.15, OUSigma: 0.35,
		NoiseDecay: 0.99995,
		Seed:       1,
	}
}

// Validate reports whether the configuration is trainable.
func (c Config) Validate() error {
	switch {
	case c.StateDim <= 0 || c.ActionDim <= 0:
		return errors.New("ddpg: state and action dims must be positive")
	case len(c.Hidden) == 0:
		return errors.New("ddpg: need at least one hidden layer")
	case c.ActorLR <= 0 || c.CriticLR <= 0:
		return errors.New("ddpg: learning rates must be positive")
	case c.Gamma < 0 || c.Gamma > 1:
		return errors.New("ddpg: gamma must be in [0,1] (0 = myopic/bandit)")
	case c.Tau <= 0 || c.Tau > 1:
		return errors.New("ddpg: tau must be in (0,1]")
	case c.BatchSize <= 0 || c.BufferCap < c.BatchSize:
		return errors.New("ddpg: need batch <= buffer capacity")
	}
	return nil
}

// OUNoise is an Ornstein-Uhlenbeck process: temporally correlated
// exploration noise suited to physical control problems.
type OUNoise struct {
	theta, sigma float64
	state        []float64
	rng          *rand.Rand
}

// NewOUNoise builds a process over dim dimensions.
func NewOUNoise(dim int, theta, sigma float64, rng *rand.Rand) *OUNoise {
	return &OUNoise{theta: theta, sigma: sigma, state: make([]float64, dim), rng: rng}
}

// Sample advances the process one step and returns the noise vector
// (owned by the process; copy to retain).
func (o *OUNoise) Sample() []float64 {
	for i := range o.state {
		o.state[i] += o.theta*(-o.state[i]) + o.sigma*o.rng.NormFloat64()
	}
	return o.state
}

// SetSigma rescales the diffusion term.
func (o *OUNoise) SetSigma(s float64) { o.sigma = s }

// Sigma reports the current diffusion scale.
func (o *OUNoise) Sigma() float64 { return o.sigma }

// Reset zeroes the process state.
func (o *OUNoise) Reset() {
	for i := range o.state {
		o.state[i] = 0
	}
}

// State copies the process state vector (for checkpoints).
func (o *OUNoise) State() []float64 { return append([]float64(nil), o.state...) }

// SetState restores a checkpointed process state vector.
func (o *OUNoise) SetState(s []float64) error {
	if len(s) != len(o.state) {
		return errors.New("ddpg: OU noise state dimension mismatch")
	}
	copy(o.state, s)
	return nil
}

// countedSource is a rand.Source64 that counts draws, so a checkpoint
// can record the stream position and a restored agent can fast-forward
// a freshly seeded source to the identical point. Wrapping changes
// nothing about the stream itself: rand.Rand derives every value from
// the source's Int63/Uint64 outputs, which pass through untouched —
// the recorded deterministic figures depend on that.
type countedSource struct {
	src   rand.Source64
	seed  int64
	draws uint64
}

// newCountedSource seeds a counted source exactly like
// rand.NewSource(seed).
func newCountedSource(seed int64) *countedSource {
	return &countedSource{src: rand.NewSource(seed).(rand.Source64), seed: seed}
}

func (c *countedSource) Int63() int64 {
	c.draws++
	return c.src.Int63()
}

func (c *countedSource) Uint64() uint64 {
	c.draws++
	return c.src.Uint64()
}

func (c *countedSource) Seed(seed int64) {
	c.src.Seed(seed)
	c.seed, c.draws = seed, 0
}

// skipTo re-seeds and discards draws until the stream sits at the
// recorded position (each Int63/Uint64 advances the underlying
// generator by exactly one step, so discarding via Uint64 is exact).
func (c *countedSource) skipTo(draws uint64) {
	c.src.Seed(c.seed)
	for i := uint64(0); i < draws; i++ {
		c.src.Uint64()
	}
	c.draws = draws
}

// Agent is one DDPG learner-actor pair with target networks and a
// replay buffer.
type Agent struct {
	cfg    Config
	rng    *rand.Rand
	rngSrc *countedSource // rng's source, counted for checkpoint/restore

	Actor        *nn.Network
	Critic       *nn.Network
	actorTarget  *nn.Network
	criticTarget *nn.Network
	actorOpt     *nn.Adam
	criticOpt    *nn.Adam

	noise *OUNoise

	uniform     *replay.Uniform
	prioritized PrioritizedReplay

	learnSteps int
	// scratch buffers to avoid per-step garbage.
	saBuf []float64
	// minibatch scratch, sized on first Learn and reused forever:
	// sample buffers and the row-major matrices fed to the batched
	// network passes.
	batchBuf    []replay.Transition
	idxBuf      []int
	weightBuf   []float64
	bStates     []float64 // BatchSize × StateDim
	bNextStates []float64 // BatchSize × StateDim
	bSA         []float64 // BatchSize × (StateDim+ActionDim)
	bNextSA     []float64 // BatchSize × (StateDim+ActionDim)
	bY          []float64 // BatchSize targets
	bDQ         []float64 // BatchSize dL/dQ
	bDAct       []float64 // BatchSize × ActionDim
	tdErrBuf    []float64 // BatchSize TD errors for priority updates
	// fused-pass scratch (LearnBatch): the regression half and the
	// action-gradient half of the critic pass stacked in one matrix.
	bSA2 []float64 // 2·BatchSize × (StateDim+ActionDim)
	bDQ2 []float64 // 2·BatchSize dL/dQ

	// batched acting scratch (act.go): TDErrorBatch's assembled
	// matrices, grown to the largest flush window seen.
	actNext   []float64 // n × StateDim next states
	actNextSA []float64 // n × (StateDim+ActionDim) target critic input
	actSA     []float64 // n × (StateDim+ActionDim) critic input

	// float32 fast path (learn32.go): enabled by SetFloat32, used by
	// the non-deterministic Parallel/RemoteActors trainer modes.
	f32 bool
	// float32 acting path (act.go): enabled by SetActFloat32 on
	// acting-only agents; routes ActBatch/TDErrorBatch through the f32
	// batch engine.
	actF32      bool
	act32States []float32
	act32NextSA []float32
	act32SA     []float32
	// f32 minibatch scratch, the single-precision mirror of the fused
	// buffers above.
	bStates32     []float32 // BatchSize × StateDim
	bNextStates32 []float32 // BatchSize × StateDim
	bNextSA32     []float32 // BatchSize × (StateDim+ActionDim)
	bY32          []float32 // BatchSize targets
	bDAct32       []float32 // BatchSize × ActionDim
	bSA232        []float32 // 2·BatchSize × (StateDim+ActionDim)
	bDQ232        []float32 // 2·BatchSize dL/dQ
}

// growScratch sizes the minibatch scratch buffers once.
func (a *Agent) growScratch() {
	if a.bStates != nil {
		return
	}
	n, S, A := a.cfg.BatchSize, a.cfg.StateDim, a.cfg.ActionDim
	a.batchBuf = make([]replay.Transition, 0, n)
	if a.prioritized != nil {
		a.idxBuf = make([]int, 0, n)
		a.weightBuf = make([]float64, 0, n)
	}
	a.bStates = make([]float64, n*S)
	a.bNextStates = make([]float64, n*S)
	a.bSA = make([]float64, n*(S+A))
	a.bNextSA = make([]float64, n*(S+A))
	a.bY = make([]float64, n)
	a.bDQ = make([]float64, n)
	a.bDAct = make([]float64, n*A)
	a.tdErrBuf = make([]float64, n)
	a.bSA2 = make([]float64, 2*n*(S+A))
	a.bDQ2 = make([]float64, 2*n)
}

// New builds an agent from a validated configuration.
func New(cfg Config) (*Agent, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	src := newCountedSource(cfg.Seed)
	rng := rand.New(src)
	actorSizes := append([]int{cfg.StateDim}, cfg.Hidden...)
	actorSizes = append(actorSizes, cfg.ActionDim)
	criticSizes := append([]int{cfg.StateDim + cfg.ActionDim}, cfg.Hidden...)
	criticSizes = append(criticSizes, 1)

	actor, err := nn.NewMLP(actorSizes, nn.ReLU, nn.Tanh, rng)
	if err != nil {
		return nil, err
	}
	critic, err := nn.NewMLP(criticSizes, nn.ReLU, nn.Linear, rng)
	if err != nil {
		return nil, err
	}
	a := &Agent{
		cfg:          cfg,
		rng:          rng,
		rngSrc:       src,
		Actor:        actor,
		Critic:       critic,
		actorTarget:  actor.Clone(),
		criticTarget: critic.Clone(),
		actorOpt:     nn.MustAdam(cfg.ActorLR),
		criticOpt:    nn.MustAdam(cfg.CriticLR),
		noise:        NewOUNoise(cfg.ActionDim, cfg.OUTheta, cfg.OUSigma, rng),
		saBuf:        make([]float64, cfg.StateDim+cfg.ActionDim),
	}
	a.criticOpt.ClipNorm = 5
	a.actorOpt.ClipNorm = 5
	if cfg.Prioritized {
		a.prioritized, err = replay.NewPrioritized(cfg.BufferCap, cfg.PERAlpha, cfg.PERBeta, cfg.PERBetaInc)
	} else {
		a.uniform, err = replay.NewUniform(cfg.BufferCap)
	}
	if err != nil {
		return nil, err
	}
	return a, nil
}

// Config returns the agent's configuration.
func (a *Agent) Config() Config { return a.cfg }

// Act computes the policy action for a state; with explore set, OU
// noise is added. The result is clamped to [-1, 1]^ActionDim and is
// freshly allocated.
func (a *Agent) Act(state []float64, explore bool) ([]float64, error) {
	if len(state) != a.cfg.StateDim {
		return nil, fmt.Errorf("ddpg: state dim %d, want %d", len(state), a.cfg.StateDim)
	}
	out := a.Actor.Forward(state)
	action := append([]float64(nil), out...)
	if explore {
		noise := a.noise.Sample()
		for i := range action {
			action[i] += noise[i]
		}
	}
	for i := range action {
		if action[i] < -1 {
			action[i] = -1
		}
		if action[i] > 1 {
			action[i] = 1
		}
	}
	return action, nil
}

// Observe stores a transition in the replay buffer.
func (a *Agent) Observe(t replay.Transition) {
	if a.prioritized != nil {
		a.prioritized.Add(t)
		return
	}
	a.uniform.Add(t)
}

// ObserveWithPriority stores a transition with an Ape-X style
// actor-computed initial priority.
func (a *Agent) ObserveWithPriority(t replay.Transition, priority float64) {
	if a.prioritized != nil {
		a.prioritized.AddWithPriority(t, priority)
		return
	}
	a.uniform.Add(t)
}

// ObserveBatch stores a chunk of transitions with their priorities in
// one replay call — one lock acquire per chunk instead of one per
// transition. priorities may be nil (maximal priority).
func (a *Agent) ObserveBatch(ts []replay.Transition, priorities []float64) {
	if a.prioritized != nil {
		a.prioritized.AddBatch(ts, priorities)
		return
	}
	for i := range ts {
		a.uniform.Add(ts[i])
	}
}

// BufferLen reports stored transitions.
func (a *Agent) BufferLen() int {
	if a.prioritized != nil {
		return a.prioritized.Len()
	}
	return a.uniform.Len()
}

// SetReplay swaps the prioritized replay implementation — the
// parallel Ape-X trainer installs a sharded buffer before any
// experience flows. Only allowed on a prioritized agent whose buffer
// is still empty, so no experience is silently dropped.
func (a *Agent) SetReplay(buf PrioritizedReplay) error {
	if a.prioritized == nil {
		return errors.New("ddpg: agent is not configured for prioritized replay")
	}
	if buf == nil {
		return errors.New("ddpg: nil replay buffer")
	}
	if a.prioritized.Len() > 0 {
		return errors.New("ddpg: replay already holds experience")
	}
	a.prioritized = buf
	return nil
}

// Replay exposes the prioritized replay implementation currently
// installed (nil for uniform agents) — introspection for tests and
// monitoring.
func (a *Agent) Replay() PrioritizedReplay { return a.prioritized }

// SampleReplayInto samples a minibatch from the agent's prioritized
// replay into caller-owned buffers. With a goroutine-safe buffer it
// may run concurrently with LearnBatch — the Ape-X prefetcher's
// sampler goroutine fills the next minibatch while the learner
// consumes the current one.
func (a *Agent) SampleReplayInto(rng *rand.Rand, n int, samples []replay.Transition, indices []int, weights []float64) ([]replay.Transition, []int, []float64) {
	if a.prioritized == nil {
		return nil, nil, nil
	}
	return a.prioritized.SampleInto(rng, n, samples, indices, weights)
}

// TDError computes the temporal-difference error of a single
// transition under the current networks — Ape-X actors use it for
// initial priorities.
func (a *Agent) TDError(t replay.Transition) float64 {
	target := t.Reward
	if !t.Done {
		nextA := a.actorTarget.Forward(t.NextState)
		q := a.criticTarget.Forward(concat(a.saBuf[:0], t.NextState, nextA))
		target += a.cfg.Gamma * q[0]
	}
	q := a.Critic.Forward(concat(a.saBuf[:0], t.State, t.Action))
	return target - q[0]
}

// Learn runs one DDPG update (Algorithm 2): sample a minibatch,
// regress the critic on the bootstrapped target, ascend the actor
// along the critic's action-gradient, and soft-update both targets.
// It returns the mean critic loss, or 0 when the buffer has fewer
// than BatchSize samples.
//
// All three network passes (critic target, critic regression, actor
// ascent) run batched over row-major [BatchSize × dim] matrices with
// agent-owned scratch, so the steady state allocates nothing.
func (a *Agent) Learn() float64 {
	var batch []replay.Transition
	var indices []int
	var weights []float64
	if a.prioritized != nil {
		if a.prioritized.Len() < a.cfg.BatchSize {
			return 0
		}
		a.growScratch()
		batch, indices, weights = a.prioritized.SampleInto(
			a.rng, a.cfg.BatchSize, a.batchBuf, a.idxBuf, a.weightBuf)
		a.batchBuf, a.idxBuf, a.weightBuf = batch, indices, weights
	} else {
		if a.uniform.Len() < a.cfg.BatchSize {
			return 0
		}
		a.growScratch()
		batch = a.uniform.SampleInto(a.rng, a.cfg.BatchSize, a.batchBuf)
		a.batchBuf = batch
	}
	return a.learnMinibatch(batch, indices, weights, false)
}

// LearnBatch runs one update on an externally sampled minibatch — the
// Ape-X prefetcher path, where a sampler goroutine fills the next
// minibatch while this one is consumed. It uses the FUSED critic
// pass: the regression rows and the dQ/da probe rows go through one
// 2n-row forward/backward (nn.BackwardBatchSplit), cutting one full
// ForwardBatch call and one weight transpose per layer per step. The
// fused ordering evaluates dQ/da against the pre-update critic (the
// sequential Learn uses the just-updated critic), which is why the
// deterministic round-robin path keeps the unfused sequence and stays
// byte-identical. Updated priorities are written back through
// UpdatePrioritiesBatch.
func (a *Agent) LearnBatch(batch []replay.Transition, indices []int, weights []float64) float64 {
	if len(batch) > a.cfg.BatchSize {
		batch = batch[:a.cfg.BatchSize] // scratch is sized to BatchSize
	}
	a.growScratch()
	return a.learnMinibatch(batch, indices, weights, true)
}

// learnMinibatch is the shared DDPG update body. The fused flag
// selects the 2n-row critic pass of LearnBatch; the unfused sequence
// is op-for-op the historical Learn and must stay byte-identical.
func (a *Agent) learnMinibatch(batch []replay.Transition, indices []int, weights []float64, fused bool) float64 {
	if len(batch) == 0 {
		return 0
	}
	if a.f32 {
		// Float32 fast path (learn32.go): both Learn and LearnBatch
		// route here while SetFloat32 is active — the fused structure
		// in single precision.
		return a.learnMinibatchF32(batch, indices, weights)
	}

	n := len(batch)
	S, A := a.cfg.StateDim, a.cfg.ActionDim
	SA := S + A

	// Assemble the minibatch matrices: states, next states, (state,
	// action) pairs, and the state columns of the target critic input
	// (its action columns are filled from the target actor below).
	for i, t := range batch {
		copy(a.bStates[i*S:(i+1)*S], t.State)
		copy(a.bNextStates[i*S:(i+1)*S], t.NextState)
		copy(a.bSA[i*SA:], t.State)
		copy(a.bSA[i*SA+S:(i+1)*SA], t.Action)
		copy(a.bNextSA[i*SA:], t.NextState)
	}

	// Bootstrapped targets y_i = r_i + γ Q'(s', μ'(s')).
	nextA := a.actorTarget.ForwardBatch(a.bNextStates, n)
	for i := 0; i < n; i++ {
		copy(a.bNextSA[i*SA+S:(i+1)*SA], nextA[i*A:(i+1)*A])
	}
	qNext := a.criticTarget.ForwardBatch(a.bNextSA, n)
	for i, t := range batch {
		y := t.Reward
		if !t.Done {
			y += a.cfg.Gamma * qNext[i]
		}
		a.bY[i] = y
	}

	if fused {
		return a.finishFused(batch, indices, weights, n)
	}

	// Critic update: minimize Σ w_i (y_i − Q(s_i, a_i))².
	q := a.Critic.ForwardBatch(a.bSA, n)
	var loss float64
	for i := range batch {
		diff := q[i] - a.bY[i]
		a.tdErrBuf[i] = -diff
		w := 1.0
		if weights != nil {
			w = weights[i]
		}
		loss += w * diff * diff
		a.bDQ[i] = w * diff
	}
	a.Critic.ZeroGrad()
	a.Critic.BackwardBatchParams(a.bDQ, n)
	a.Critic.ScaleGrad(1 / float64(n))
	a.criticOpt.Step(a.Critic)
	loss /= float64(n)

	if a.prioritized != nil && indices != nil {
		a.prioritized.UpdatePrioritiesBatch(indices, a.tdErrBuf[:n])
	}

	// Actor update: ascend E[Q(s, μ(s))] — equation 6. Push dQ/da
	// back through the critic and through the actor in one batched
	// pass each; BackwardBatchInput leaves the critic's own gradients
	// untouched, so no ZeroGrad bookkeeping is needed around it.
	actions := a.Actor.ForwardBatch(a.bStates, n)
	for i := 0; i < n; i++ {
		copy(a.bSA[i*SA+S:(i+1)*SA], actions[i*A:(i+1)*A]) // states already in place
	}
	a.Critic.ForwardBatch(a.bSA, n)
	for i := 0; i < n; i++ {
		a.bDQ[i] = -1 // ascend Q
	}
	dInput := a.Critic.BackwardBatchInput(a.bDQ, n)
	for i := 0; i < n; i++ {
		copy(a.bDAct[i*A:(i+1)*A], dInput[i*SA+S:(i+1)*SA])
	}
	a.Actor.ZeroGrad()
	a.Actor.BackwardBatchParams(a.bDAct, n)
	a.Actor.ScaleGrad(1 / float64(n))
	a.actorOpt.Step(a.Actor)

	a.finishTargets()
	return loss
}

// finishFused is the fused critic pass of LearnBatch: one 2n-row
// forward over [regression rows; (s, μ(s)) probe rows] and one
// BackwardBatchSplit that keeps parameter gradients from the first
// half while returning input gradients for the second.
func (a *Agent) finishFused(batch []replay.Transition, indices []int, weights []float64, n int) float64 {
	S, A := a.cfg.StateDim, a.cfg.ActionDim
	SA := S + A

	// Probe actions μ(s) from the online actor; its cached
	// activations feed the actor backward below (the critic passes in
	// between do not disturb them).
	actions := a.Actor.ForwardBatch(a.bStates, n)
	copy(a.bSA2[:n*SA], a.bSA[:n*SA])
	for i := 0; i < n; i++ {
		row := a.bSA2[(n+i)*SA : (n+i+1)*SA]
		copy(row[:S], batch[i].State)
		copy(row[S:], actions[i*A:(i+1)*A])
	}

	q2 := a.Critic.ForwardBatch(a.bSA2, 2*n)
	var loss float64
	for i := 0; i < n; i++ {
		diff := q2[i] - a.bY[i]
		a.tdErrBuf[i] = -diff
		w := 1.0
		if weights != nil {
			w = weights[i]
		}
		loss += w * diff * diff
		a.bDQ2[i] = w * diff
		a.bDQ2[n+i] = -1 // ascend Q along the probe rows
	}
	a.Critic.ZeroGrad()
	dInput := a.Critic.BackwardBatchSplit(a.bDQ2, 2*n, n)
	a.Critic.ScaleGrad(1 / float64(n))
	a.criticOpt.Step(a.Critic)
	loss /= float64(n)

	if a.prioritized != nil && indices != nil {
		a.prioritized.UpdatePrioritiesBatch(indices, a.tdErrBuf[:n])
	}

	for i := 0; i < n; i++ {
		copy(a.bDAct[i*A:(i+1)*A], dInput[(n+i)*SA+S:(n+i+1)*SA])
	}
	a.Actor.ZeroGrad()
	a.Actor.BackwardBatchParams(a.bDAct, n)
	a.Actor.ScaleGrad(1 / float64(n))
	a.actorOpt.Step(a.Actor)

	a.finishTargets()
	return loss
}

// finishTargets applies the soft target updates and per-step
// bookkeeping shared by both learn paths.
func (a *Agent) finishTargets() {
	if err := a.actorTarget.SoftUpdate(a.Actor, a.cfg.Tau); err != nil {
		panic(err) // topologies are construction-matched
	}
	if err := a.criticTarget.SoftUpdate(a.Critic, a.cfg.Tau); err != nil {
		panic(err)
	}

	a.learnSteps++
	if a.cfg.NoiseDecay > 0 && a.cfg.NoiseDecay < 1 {
		a.noise.SetSigma(a.noise.Sigma() * a.cfg.NoiseDecay)
	}
}

// LearnSteps reports completed updates.
func (a *Agent) LearnSteps() int { return a.learnSteps }

// NoiseSigma reports the current exploration scale.
func (a *Agent) NoiseSigma() float64 { return a.noise.Sigma() }

// SyncFrom copies another agent's network parameters (Ape-X actors
// pull learner parameters through this).
func (a *Agent) SyncFrom(src *Agent) error {
	if err := a.Actor.CopyParamsFrom(src.Actor); err != nil {
		return err
	}
	if err := a.Critic.CopyParamsFrom(src.Critic); err != nil {
		return err
	}
	if err := a.actorTarget.CopyParamsFrom(src.actorTarget); err != nil {
		return err
	}
	return a.criticTarget.CopyParamsFrom(src.criticTarget)
}

// ActorBytes serializes the actor network for parameter broadcast.
// On the float32 path the trained mirrors are flushed to the f64
// weights first, so broadcasts always carry the current policy.
func (a *Agent) ActorBytes() ([]byte, error) {
	if a.f32 {
		a.Actor.FlushF32()
	}
	return a.Actor.MarshalBinary()
}

// LoadActorBytes replaces the actor network from a broadcast. While
// the f32 acting path is active the actor's parameter mirrors are
// refreshed from the new weights, so batched acting never runs on a
// stale policy.
func (a *Agent) LoadActorBytes(data []byte) error {
	var net nn.Network
	if err := net.UnmarshalBinary(data); err != nil {
		return err
	}
	if err := a.Actor.CopyParamsFrom(&net); err != nil {
		return err
	}
	if a.actF32 {
		a.Actor.EnableF32()
	}
	return nil
}

// concat appends a and b into dst and returns it.
func concat(dst, a, b []float64) []float64 {
	dst = append(dst, a...)
	dst = append(dst, b...)
	return dst
}

// Greedy evaluates the deterministic policy μ(s) without exploration,
// returning a fresh slice. Unlike Act it never errors: mismatched
// states panic (programming bug).
func (a *Agent) Greedy(state []float64) []float64 {
	if len(state) != a.cfg.StateDim {
		panic("ddpg: state dimension mismatch")
	}
	out := a.Actor.Forward(state)
	action := append([]float64(nil), out...)
	for i := range action {
		action[i] = math.Max(-1, math.Min(1, action[i]))
	}
	return action
}
