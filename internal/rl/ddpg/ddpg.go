// Package ddpg implements Deep Deterministic Policy Gradient
// (Lillicrap et al., ICLR'16) — Algorithm 2 of the GreenNFV paper:
// an actor-critic method for continuous, high-dimensional action
// spaces, which is why the paper selects it over Q-learning and DQN
// for the five-knobs-per-NF resource-control problem.
package ddpg

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"greennfv/internal/nn"
	"greennfv/internal/rl/replay"
)

// Config hyper-parameterizes an agent.
type Config struct {
	StateDim  int
	ActionDim int
	// Hidden are the MLP hidden-layer widths for both networks.
	Hidden []int
	// ActorLR and CriticLR are Adam learning rates.
	ActorLR, CriticLR float64
	// Gamma is the discount factor γ.
	Gamma float64
	// Tau is the soft-target update rate τ (Algorithm 2 lines 9–10).
	Tau float64
	// BatchSize is the minibatch size N (Algorithm 2 line 3).
	BatchSize int
	// BufferCap is the replay capacity R.
	BufferCap int
	// Prioritized selects prioritized experience replay (the Ape-X
	// configuration) over uniform sampling.
	Prioritized bool
	// PERAlpha/PERBeta/PERBetaInc are prioritized-replay parameters.
	PERAlpha, PERBeta, PERBetaInc float64
	// OUTheta/OUSigma shape the Ornstein-Uhlenbeck exploration noise
	// N_t added to actions (Algorithm 2 line 1).
	OUTheta, OUSigma float64
	// NoiseDecay multiplies sigma after every Learn call so
	// exploration anneals.
	NoiseDecay float64
	// Seed fixes all randomness.
	Seed int64
}

// DefaultConfig returns hyperparameters tuned for the GreenNFV
// environment (12–15 dimensional states/actions).
func DefaultConfig(stateDim, actionDim int) Config {
	return Config{
		StateDim:  stateDim,
		ActionDim: actionDim,
		Hidden:    []int{48, 48},
		ActorLR:   1e-3, CriticLR: 2e-3,
		Gamma: 0.95, Tau: 0.01,
		BatchSize: 32, BufferCap: 1 << 16,
		Prioritized: true,
		PERAlpha:    0.6, PERBeta: 0.4, PERBetaInc: 1e-5,
		OUTheta: 0.15, OUSigma: 0.35,
		NoiseDecay: 0.99995,
		Seed:       1,
	}
}

// Validate reports whether the configuration is trainable.
func (c Config) Validate() error {
	switch {
	case c.StateDim <= 0 || c.ActionDim <= 0:
		return errors.New("ddpg: state and action dims must be positive")
	case len(c.Hidden) == 0:
		return errors.New("ddpg: need at least one hidden layer")
	case c.ActorLR <= 0 || c.CriticLR <= 0:
		return errors.New("ddpg: learning rates must be positive")
	case c.Gamma < 0 || c.Gamma > 1:
		return errors.New("ddpg: gamma must be in [0,1] (0 = myopic/bandit)")
	case c.Tau <= 0 || c.Tau > 1:
		return errors.New("ddpg: tau must be in (0,1]")
	case c.BatchSize <= 0 || c.BufferCap < c.BatchSize:
		return errors.New("ddpg: need batch <= buffer capacity")
	}
	return nil
}

// OUNoise is an Ornstein-Uhlenbeck process: temporally correlated
// exploration noise suited to physical control problems.
type OUNoise struct {
	theta, sigma float64
	state        []float64
	rng          *rand.Rand
}

// NewOUNoise builds a process over dim dimensions.
func NewOUNoise(dim int, theta, sigma float64, rng *rand.Rand) *OUNoise {
	return &OUNoise{theta: theta, sigma: sigma, state: make([]float64, dim), rng: rng}
}

// Sample advances the process one step and returns the noise vector
// (owned by the process; copy to retain).
func (o *OUNoise) Sample() []float64 {
	for i := range o.state {
		o.state[i] += o.theta*(-o.state[i]) + o.sigma*o.rng.NormFloat64()
	}
	return o.state
}

// SetSigma rescales the diffusion term.
func (o *OUNoise) SetSigma(s float64) { o.sigma = s }

// Sigma reports the current diffusion scale.
func (o *OUNoise) Sigma() float64 { return o.sigma }

// Reset zeroes the process state.
func (o *OUNoise) Reset() {
	for i := range o.state {
		o.state[i] = 0
	}
}

// Agent is one DDPG learner-actor pair with target networks and a
// replay buffer.
type Agent struct {
	cfg Config
	rng *rand.Rand

	Actor        *nn.Network
	Critic       *nn.Network
	actorTarget  *nn.Network
	criticTarget *nn.Network
	actorOpt     *nn.Adam
	criticOpt    *nn.Adam

	noise *OUNoise

	uniform     *replay.Uniform
	prioritized *replay.Prioritized

	learnSteps int
	// scratch buffers to avoid per-step garbage.
	saBuf []float64
}

// New builds an agent from a validated configuration.
func New(cfg Config) (*Agent, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	actorSizes := append([]int{cfg.StateDim}, cfg.Hidden...)
	actorSizes = append(actorSizes, cfg.ActionDim)
	criticSizes := append([]int{cfg.StateDim + cfg.ActionDim}, cfg.Hidden...)
	criticSizes = append(criticSizes, 1)

	actor, err := nn.NewMLP(actorSizes, nn.ReLU, nn.Tanh, rng)
	if err != nil {
		return nil, err
	}
	critic, err := nn.NewMLP(criticSizes, nn.ReLU, nn.Linear, rng)
	if err != nil {
		return nil, err
	}
	a := &Agent{
		cfg:          cfg,
		rng:          rng,
		Actor:        actor,
		Critic:       critic,
		actorTarget:  actor.Clone(),
		criticTarget: critic.Clone(),
		actorOpt:     nn.MustAdam(cfg.ActorLR),
		criticOpt:    nn.MustAdam(cfg.CriticLR),
		noise:        NewOUNoise(cfg.ActionDim, cfg.OUTheta, cfg.OUSigma, rng),
		saBuf:        make([]float64, cfg.StateDim+cfg.ActionDim),
	}
	a.criticOpt.ClipNorm = 5
	a.actorOpt.ClipNorm = 5
	if cfg.Prioritized {
		a.prioritized, err = replay.NewPrioritized(cfg.BufferCap, cfg.PERAlpha, cfg.PERBeta, cfg.PERBetaInc)
	} else {
		a.uniform, err = replay.NewUniform(cfg.BufferCap)
	}
	if err != nil {
		return nil, err
	}
	return a, nil
}

// Config returns the agent's configuration.
func (a *Agent) Config() Config { return a.cfg }

// Act computes the policy action for a state; with explore set, OU
// noise is added. The result is clamped to [-1, 1]^ActionDim and is
// freshly allocated.
func (a *Agent) Act(state []float64, explore bool) ([]float64, error) {
	if len(state) != a.cfg.StateDim {
		return nil, fmt.Errorf("ddpg: state dim %d, want %d", len(state), a.cfg.StateDim)
	}
	out := a.Actor.Forward(state)
	action := append([]float64(nil), out...)
	if explore {
		noise := a.noise.Sample()
		for i := range action {
			action[i] += noise[i]
		}
	}
	for i := range action {
		if action[i] < -1 {
			action[i] = -1
		}
		if action[i] > 1 {
			action[i] = 1
		}
	}
	return action, nil
}

// Observe stores a transition in the replay buffer.
func (a *Agent) Observe(t replay.Transition) {
	if a.prioritized != nil {
		a.prioritized.Add(t)
		return
	}
	a.uniform.Add(t)
}

// ObserveWithPriority stores a transition with an Ape-X style
// actor-computed initial priority.
func (a *Agent) ObserveWithPriority(t replay.Transition, priority float64) {
	if a.prioritized != nil {
		a.prioritized.AddWithPriority(t, priority)
		return
	}
	a.uniform.Add(t)
}

// BufferLen reports stored transitions.
func (a *Agent) BufferLen() int {
	if a.prioritized != nil {
		return a.prioritized.Len()
	}
	return a.uniform.Len()
}

// TDError computes the temporal-difference error of a single
// transition under the current networks — Ape-X actors use it for
// initial priorities.
func (a *Agent) TDError(t replay.Transition) float64 {
	target := t.Reward
	if !t.Done {
		nextA := a.actorTarget.Forward(t.NextState)
		q := a.criticTarget.Forward(concat(a.saBuf[:0], t.NextState, nextA))
		target += a.cfg.Gamma * q[0]
	}
	q := a.Critic.Forward(concat(a.saBuf[:0], t.State, t.Action))
	return target - q[0]
}

// Learn runs one DDPG update (Algorithm 2): sample a minibatch,
// regress the critic on the bootstrapped target, ascend the actor
// along the critic's action-gradient, and soft-update both targets.
// It returns the mean critic loss, or 0 when the buffer has fewer
// than BatchSize samples.
func (a *Agent) Learn() float64 {
	var batch []replay.Transition
	var indices []int
	var weights []float64
	if a.prioritized != nil {
		if a.prioritized.Len() < a.cfg.BatchSize {
			return 0
		}
		batch, indices, weights = a.prioritized.Sample(a.rng, a.cfg.BatchSize)
	} else {
		if a.uniform.Len() < a.cfg.BatchSize {
			return 0
		}
		batch = a.uniform.Sample(a.rng, a.cfg.BatchSize)
	}
	if len(batch) == 0 {
		return 0
	}

	n := float64(len(batch))
	// Critic update: minimize Σ w_i (y_i − Q(s_i, a_i))².
	a.Critic.ZeroGrad()
	var loss float64
	tdErrs := make([]float64, len(batch))
	for i, t := range batch {
		y := t.Reward
		if !t.Done {
			nextA := a.actorTarget.Forward(t.NextState)
			qNext := a.criticTarget.Forward(concat(a.saBuf[:0], t.NextState, nextA))
			y += a.cfg.Gamma * qNext[0]
		}
		q := a.Critic.Forward(concat(a.saBuf[:0], t.State, t.Action))
		diff := q[0] - y
		tdErrs[i] = -diff
		w := 1.0
		if weights != nil {
			w = weights[i]
		}
		loss += w * diff * diff
		a.Critic.Backward([]float64{w * diff})
	}
	a.Critic.ScaleGrad(1 / n)
	a.criticOpt.Step(a.Critic)
	loss /= n

	if a.prioritized != nil {
		a.prioritized.UpdatePriorities(indices, tdErrs)
	}

	// Actor update: ascend E[Q(s, μ(s))] — equation 6. For each
	// sample, push dQ/da back through the critic (without applying
	// critic gradients) and then through the actor.
	a.Actor.ZeroGrad()
	for _, t := range batch {
		action := a.Actor.Forward(t.State)
		a.Critic.ZeroGrad() // discard critic grads from this pass
		a.Critic.Forward(concat(a.saBuf[:0], t.State, action))
		dInput := a.Critic.Backward([]float64{-1}) // ascend Q
		dAction := dInput[a.cfg.StateDim:]
		a.Actor.Backward(dAction)
	}
	a.Critic.ZeroGrad()
	a.Actor.ScaleGrad(1 / n)
	a.actorOpt.Step(a.Actor)

	// Target network soft updates.
	if err := a.actorTarget.SoftUpdate(a.Actor, a.cfg.Tau); err != nil {
		panic(err) // topologies are construction-matched
	}
	if err := a.criticTarget.SoftUpdate(a.Critic, a.cfg.Tau); err != nil {
		panic(err)
	}

	a.learnSteps++
	if a.cfg.NoiseDecay > 0 && a.cfg.NoiseDecay < 1 {
		a.noise.SetSigma(a.noise.Sigma() * a.cfg.NoiseDecay)
	}
	return loss
}

// LearnSteps reports completed updates.
func (a *Agent) LearnSteps() int { return a.learnSteps }

// NoiseSigma reports the current exploration scale.
func (a *Agent) NoiseSigma() float64 { return a.noise.Sigma() }

// SyncFrom copies another agent's network parameters (Ape-X actors
// pull learner parameters through this).
func (a *Agent) SyncFrom(src *Agent) error {
	if err := a.Actor.CopyParamsFrom(src.Actor); err != nil {
		return err
	}
	if err := a.Critic.CopyParamsFrom(src.Critic); err != nil {
		return err
	}
	if err := a.actorTarget.CopyParamsFrom(src.actorTarget); err != nil {
		return err
	}
	return a.criticTarget.CopyParamsFrom(src.criticTarget)
}

// ActorBytes serializes the actor network for parameter broadcast.
func (a *Agent) ActorBytes() ([]byte, error) { return a.Actor.MarshalBinary() }

// LoadActorBytes replaces the actor network from a broadcast.
func (a *Agent) LoadActorBytes(data []byte) error {
	var net nn.Network
	if err := net.UnmarshalBinary(data); err != nil {
		return err
	}
	return a.Actor.CopyParamsFrom(&net)
}

// concat appends a and b into dst and returns it.
func concat(dst, a, b []float64) []float64 {
	dst = append(dst, a...)
	dst = append(dst, b...)
	return dst
}

// Greedy evaluates the deterministic policy μ(s) without exploration,
// returning a fresh slice. Unlike Act it never errors: mismatched
// states panic (programming bug).
func (a *Agent) Greedy(state []float64) []float64 {
	if len(state) != a.cfg.StateDim {
		panic("ddpg: state dimension mismatch")
	}
	out := a.Actor.Forward(state)
	action := append([]float64(nil), out...)
	for i := range action {
		action[i] = math.Max(-1, math.Min(1, action[i]))
	}
	return action
}
