package ddpg

import (
	"math/rand"
	"testing"

	"greennfv/internal/rl/replay"
)

// BenchmarkAgentLearn measures one batched DDPG update at the
// GreenNFV problem size (12-dim state, 15-dim action, 48×48 hidden,
// batch 32) with a warm replay buffer. The steady state should not
// allocate.
func BenchmarkAgentLearn(b *testing.B) {
	cfg := DefaultConfig(12, 15)
	a, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 4*cfg.BatchSize; i++ {
		s := make([]float64, 12)
		act := make([]float64, 15)
		ns := make([]float64, 12)
		for j := range s {
			s[j] = rng.NormFloat64()
			ns[j] = rng.NormFloat64()
		}
		for j := range act {
			act[j] = 2*rng.Float64() - 1
		}
		a.Observe(replay.Transition{State: s, Action: act, Reward: rng.NormFloat64(), NextState: ns})
	}
	a.Learn() // warm the scratch buffers
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Learn()
	}
}
