package ddpg

import (
	"math/rand"
	"testing"

	"greennfv/internal/rl/replay"
)

// BenchmarkAgentLearn measures one batched DDPG update at the
// GreenNFV problem size (12-dim state, 15-dim action, 48×48 hidden,
// batch 32) with a warm replay buffer. The steady state should not
// allocate.
func BenchmarkAgentLearn(b *testing.B) {
	cfg := DefaultConfig(12, 15)
	a, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 4*cfg.BatchSize; i++ {
		s := make([]float64, 12)
		act := make([]float64, 15)
		ns := make([]float64, 12)
		for j := range s {
			s[j] = rng.NormFloat64()
			ns[j] = rng.NormFloat64()
		}
		for j := range act {
			act[j] = 2*rng.Float64() - 1
		}
		a.Observe(replay.Transition{State: s, Action: act, Reward: rng.NormFloat64(), NextState: ns})
	}
	a.Learn() // warm the scratch buffers
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Learn()
	}
}

// benchActBatch measures one batched acting pass over n parallel
// actors' states at the GreenNFV problem size — the VecActor driver's
// per-step policy cost.
func benchActBatch(b *testing.B, n int, f32 bool) {
	cfg := DefaultConfig(12, 15)
	a, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if f32 {
		a.SetActFloat32(true)
	}
	noises := make([]*OUNoise, n)
	for i := range noises {
		noises[i] = NewOUNoise(cfg.ActionDim, cfg.OUTheta, 0.3*(1+0.5*float64(i)),
			rand.New(rand.NewSource(int64(i)+1)))
	}
	rng := rand.New(rand.NewSource(3))
	states := make([]float64, n*cfg.StateDim)
	for i := range states {
		states[i] = rng.NormFloat64()
	}
	dst := make([]float64, n*cfg.ActionDim)
	if err := a.ActBatch(states, n, noises, dst); err != nil { // warm the scratch
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.ActBatch(states, n, noises, dst); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkActBatch: the f64 row path (bit-identical to scalar acting)
// over the default 4-actor fleet.
func BenchmarkActBatch(b *testing.B) { benchActBatch(b, 4, false) }

// BenchmarkActBatchF32: the same pass through the vectorized f32
// engine (the Parallel-mode acting fast path).
func BenchmarkActBatchF32(b *testing.B) { benchActBatch(b, 4, true) }
