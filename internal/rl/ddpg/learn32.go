package ddpg

import (
	"greennfv/internal/rl/replay"
)

// This file is the float32 fast path of the DDPG update: the fused
// LearnBatch structure computed through the nn package's f32 batch
// engine (8-lane AVX2 kernels, half the memory traffic of f64).
//
// Precision contract: while SetFloat32(true) is active, the f32
// parameter mirrors of all four networks are the authoritative
// weights — forward, backward, Adam and the soft target updates all
// run in single precision — and the f64 weights go stale until
// ActorBytes (parameter broadcast) or SetFloat32(false) flushes the
// mirrors back. The path is used only by the non-deterministic
// Parallel/RemoteActors trainer modes; the deterministic round-robin
// figure path never enables it, so recorded figures stay
// byte-identical. Parity with the f64 update is quantified by
// TestLearnF32ParityWithF64 (max |ΔQ| after a fixed update schedule).

// SetFloat32 switches the agent's learn path between double and
// single precision. Enabling snapshots the f64 weights into f32
// mirrors (allocating them on first use); disabling flushes the
// trained mirrors back into the f64 weights so Greedy, Act,
// MarshalBinary and the scalar TDError see the trained policy.
// Redundant calls in either direction are no-ops — in particular,
// enabling twice must NOT re-snapshot, because the f64 weights go
// stale while the f32 path trains and re-reading them would silently
// revert the mirrors. Toggling off and on mid-training loses nothing
// but the sub-f32 precision of the weights.
func (a *Agent) SetFloat32(enable bool) {
	if enable {
		if a.f32 {
			return
		}
		a.Actor.EnableF32()
		a.Critic.EnableF32()
		a.actorTarget.EnableF32()
		a.criticTarget.EnableF32()
		a.f32 = true
		return
	}
	if !a.f32 {
		return
	}
	a.Actor.FlushF32()
	a.Critic.FlushF32()
	a.actorTarget.FlushF32()
	a.criticTarget.FlushF32()
	a.f32 = false
}

// Float32 reports whether the f32 learn path is active.
func (a *Agent) Float32() bool { return a.f32 }

// growScratch32 sizes the f32 minibatch scratch once.
func (a *Agent) growScratch32() {
	if a.bStates32 != nil {
		return
	}
	n, S, A := a.cfg.BatchSize, a.cfg.StateDim, a.cfg.ActionDim
	a.bStates32 = make([]float32, n*S)
	a.bNextStates32 = make([]float32, n*S)
	a.bNextSA32 = make([]float32, n*(S+A))
	a.bY32 = make([]float32, n)
	a.bDAct32 = make([]float32, n*A)
	a.bSA232 = make([]float32, 2*n*(S+A))
	a.bDQ232 = make([]float32, 2*n)
}

// learnMinibatchF32 is the single-precision DDPG update: the same
// fused sequence as finishFused — bootstrapped critic targets, one
// 2n-row critic pass over [regression rows; (s, μ(s)) probe rows]
// with BackwardBatchSplitF32, actor ascent, soft target updates — all
// through the f32 engine. Zero allocations once warm.
func (a *Agent) learnMinibatchF32(batch []replay.Transition, indices []int, weights []float64) float64 {
	a.growScratch()
	a.growScratch32()
	n := len(batch)
	S, A := a.cfg.StateDim, a.cfg.ActionDim
	SA := S + A
	gamma := float32(a.cfg.Gamma)

	// Assemble the f32 minibatch matrices straight from the f64
	// transitions: states, next states, the regression half of the
	// fused critic input, and the state columns of the target critic
	// input.
	for i := range batch {
		t := &batch[i]
		for j, v := range t.State {
			a.bStates32[i*S+j] = float32(v)
			a.bSA232[i*SA+j] = float32(v)
		}
		for j, v := range t.Action {
			a.bSA232[i*SA+S+j] = float32(v)
		}
		for j, v := range t.NextState {
			a.bNextStates32[i*S+j] = float32(v)
			a.bNextSA32[i*SA+j] = float32(v)
		}
	}

	// Bootstrapped targets y_i = r_i + γ Q'(s', μ'(s')).
	nextA := a.actorTarget.ForwardBatchF32(a.bNextStates32, n)
	for i := 0; i < n; i++ {
		copy(a.bNextSA32[i*SA+S:(i+1)*SA], nextA[i*A:(i+1)*A])
	}
	qNext := a.criticTarget.ForwardBatchF32(a.bNextSA32, n)
	for i := range batch {
		y := float32(batch[i].Reward)
		if !batch[i].Done {
			y += gamma * qNext[i]
		}
		a.bY32[i] = y
	}

	// Probe actions μ(s) fill the second half of the fused input.
	actions := a.Actor.ForwardBatchF32(a.bStates32, n)
	for i := 0; i < n; i++ {
		row := a.bSA232[(n+i)*SA : (n+i+1)*SA]
		copy(row[:S], a.bStates32[i*S:(i+1)*S])
		copy(row[S:], actions[i*A:(i+1)*A])
	}

	q2 := a.Critic.ForwardBatchF32(a.bSA232, 2*n)
	var loss float64
	for i := 0; i < n; i++ {
		diff := q2[i] - a.bY32[i]
		a.tdErrBuf[i] = float64(-diff)
		w := float32(1)
		if weights != nil {
			w = float32(weights[i])
		}
		loss += float64(w * diff * diff)
		a.bDQ232[i] = w * diff
		a.bDQ232[n+i] = -1 // ascend Q along the probe rows
	}
	a.Critic.ZeroGradF32()
	dInput := a.Critic.BackwardBatchSplitF32(a.bDQ232, 2*n, n)
	a.Critic.ScaleGradF32(1 / float32(n))
	a.criticOpt.StepF32(a.Critic)
	loss /= float64(n)

	if a.prioritized != nil && indices != nil {
		a.prioritized.UpdatePrioritiesBatch(indices, a.tdErrBuf[:n])
	}

	for i := 0; i < n; i++ {
		copy(a.bDAct32[i*A:(i+1)*A], dInput[(n+i)*SA+S:(n+i+1)*SA])
	}
	a.Actor.ZeroGradF32()
	a.Actor.BackwardBatchParamsF32(a.bDAct32, n)
	a.Actor.ScaleGradF32(1 / float32(n))
	a.actorOpt.StepF32(a.Actor)

	// Soft target updates and per-step bookkeeping, the f32 analogue
	// of finishTargets.
	tau := float32(a.cfg.Tau)
	if err := a.actorTarget.SoftUpdateF32(a.Actor, tau); err != nil {
		panic(err) // topologies are construction-matched
	}
	if err := a.criticTarget.SoftUpdateF32(a.Critic, tau); err != nil {
		panic(err)
	}
	a.learnSteps++
	if a.cfg.NoiseDecay > 0 && a.cfg.NoiseDecay < 1 {
		a.noise.SetSigma(a.noise.Sigma() * a.cfg.NoiseDecay)
	}
	return loss
}
