package ddpg

import (
	"math"
	"math/rand"
	"testing"

	"greennfv/internal/rl/replay"
)

// actConfig is smallConfig with nontrivial dims for batching tests.
func actConfig() Config {
	cfg := DefaultConfig(5, 3)
	cfg.Hidden = []int{18, 14}
	cfg.BatchSize = 8
	cfg.BufferCap = 1024
	return cfg
}

// ActInto must be bit-identical to Act and consume the noise RNG the
// same way: two identically-seeded agents stepped through the two
// entry points may never diverge.
func TestActIntoMatchesAct(t *testing.T) {
	a, err := New(actConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(actConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	state := make([]float64, 5)
	dst := make([]float64, 3)
	for step := 0; step < 50; step++ {
		for i := range state {
			state[i] = rng.NormFloat64()
		}
		explore := step%3 != 0
		want, err := a.Act(state, explore)
		if err != nil {
			t.Fatal(err)
		}
		if err := b.ActInto(state, explore, dst); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if dst[i] != want[i] {
				t.Fatalf("step %d: ActInto[%d] = %v, Act = %v (not bit-identical)", step, i, dst[i], want[i])
			}
		}
	}
	if err := b.ActInto(state, false, dst[:2]); err == nil {
		t.Error("short dst accepted")
	}
}

// ActBatch on the f64 path must be bit-identical to the scalar
// reference — one Forward per row plus that row's own OU noise plus
// the clamp — at any row count. This is the parity the VecActor driver
// stands on.
func TestActBatchMatchesScalarReference(t *testing.T) {
	cfg := actConfig()
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := New(cfg) // identical weights: same seed
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 3, 4, 7} {
		noises := make([]*OUNoise, n)
		refNoises := make([]*OUNoise, n)
		for i := range noises {
			sigma := 0.2 * (1 + 0.5*float64(i))
			noises[i] = NewOUNoise(cfg.ActionDim, cfg.OUTheta, sigma, rand.New(rand.NewSource(300+int64(i))))
			refNoises[i] = NewOUNoise(cfg.ActionDim, cfg.OUTheta, sigma, rand.New(rand.NewSource(300+int64(i))))
		}
		rng := rand.New(rand.NewSource(900 + int64(n)))
		states := make([]float64, n*cfg.StateDim)
		dst := make([]float64, n*cfg.ActionDim)
		for round := 0; round < 10; round++ {
			for i := range states {
				states[i] = rng.NormFloat64()
			}
			if err := a.ActBatch(states, n, noises, dst); err != nil {
				t.Fatal(err)
			}
			for r := 0; r < n; r++ {
				out := ref.Actor.Forward(states[r*cfg.StateDim : (r+1)*cfg.StateDim])
				noise := refNoises[r].Sample()
				for i := 0; i < cfg.ActionDim; i++ {
					want := out[i] + noise[i]
					if want < -1 {
						want = -1
					}
					if want > 1 {
						want = 1
					}
					if got := dst[r*cfg.ActionDim+i]; got != want {
						t.Fatalf("n=%d round %d row %d: ActBatch[%d] = %v, scalar reference %v (not bit-identical)",
							n, round, r, i, got, want)
					}
				}
			}
		}
	}
}

// The f32 acting path is not bit-comparable, but its actions must stay
// within 1e-3 of the f64 path (greedy, so no RNG divergence).
func TestActBatchFloat32Parity(t *testing.T) {
	cfg := actConfig()
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b.SetActFloat32(true)
	if !b.ActFloat32() {
		t.Fatal("SetActFloat32 did not enable the f32 acting path")
	}
	const n = 6
	rng := rand.New(rand.NewSource(17))
	states := make([]float64, n*cfg.StateDim)
	f64Out := make([]float64, n*cfg.ActionDim)
	f32Out := make([]float64, n*cfg.ActionDim)
	for round := 0; round < 20; round++ {
		for i := range states {
			states[i] = rng.NormFloat64()
		}
		if err := a.ActBatch(states, n, nil, f64Out); err != nil {
			t.Fatal(err)
		}
		if err := b.ActBatch(states, n, nil, f32Out); err != nil {
			t.Fatal(err)
		}
		for i := range f64Out {
			if d := math.Abs(f64Out[i] - f32Out[i]); d > 1e-3 {
				t.Fatalf("round %d: |f32 - f64| = %v at %d, want ≤ 1e-3", round, d, i)
			}
		}
	}
}

// randomTransitions builds transitions with the agent's dims.
func randomTransitions(cfg Config, n int, seed int64) []replay.Transition {
	rng := rand.New(rand.NewSource(seed))
	ts := make([]replay.Transition, n)
	for i := range ts {
		s := make([]float64, cfg.StateDim)
		ns := make([]float64, cfg.StateDim)
		act := make([]float64, cfg.ActionDim)
		for j := range s {
			s[j], ns[j] = rng.NormFloat64(), rng.NormFloat64()
		}
		for j := range act {
			act[j] = rng.Float64()*2 - 1
		}
		ts[i] = replay.Transition{
			State: s, Action: act, NextState: ns,
			Reward: rng.NormFloat64(), Done: i%5 == 4,
		}
	}
	return ts
}

// TDErrorBatch on the f64 path must be bit-identical to the scalar
// TDError per transition — the actors' priority settlement and the
// remote -verifyprio check both demand it.
func TestTDErrorBatchMatchesScalar(t *testing.T) {
	cfg := actConfig()
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var out []float64
	for _, n := range []int{1, 4, 9} {
		ts := randomTransitions(cfg, n, 400+int64(n))
		out = a.TDErrorBatch(ts, out)
		if len(out) != n {
			t.Fatalf("n=%d: got %d errors", n, len(out))
		}
		for i, tr := range ts {
			if want := a.TDError(tr); out[i] != want {
				t.Fatalf("n=%d: TDErrorBatch[%d] = %v, TDError = %v (not bit-identical)", n, i, out[i], want)
			}
		}
	}
}

// The f32 TD errors only feed replay priorities; they must track the
// f64 values closely but need no bit-identity.
func TestTDErrorBatchFloat32Parity(t *testing.T) {
	cfg := actConfig()
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := randomTransitions(cfg, 8, 500)
	a.SetActFloat32(true)
	got := a.TDErrorBatch(ts, nil)
	for i, tr := range ts {
		if d := math.Abs(got[i] - a.TDError(tr)); d > 1e-2 {
			t.Fatalf("f32 TD error %d drifts %v from scalar f64, want ≤ 1e-2", i, d)
		}
	}
}

// The batched acting entry points are per-step hot paths: zero
// allocations once the scratch has grown.
func TestActBatchNoAllocs(t *testing.T) {
	cfg := actConfig()
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const n = 4
	noises := make([]*OUNoise, n)
	for i := range noises {
		noises[i] = NewOUNoise(cfg.ActionDim, cfg.OUTheta, 0.3, rand.New(rand.NewSource(int64(i))))
	}
	states := make([]float64, n*cfg.StateDim)
	dst := make([]float64, n*cfg.ActionDim)
	ts := randomTransitions(cfg, n, 42)
	var td []float64
	a.ActBatch(states, n, noises, dst)
	td = a.TDErrorBatch(ts, td)
	if avg := testing.AllocsPerRun(50, func() { a.ActBatch(states, n, noises, dst) }); avg != 0 {
		t.Errorf("ActBatch allocates %.1f per call, want 0", avg)
	}
	if avg := testing.AllocsPerRun(50, func() { td = a.TDErrorBatch(ts, td) }); avg != 0 {
		t.Errorf("TDErrorBatch allocates %.1f per call, want 0", avg)
	}
}

// SetActFloat32 must refuse to take over the mirrors while the learner
// precision switch owns them.
func TestSetActFloat32NoOpUnderLearnerF32(t *testing.T) {
	a, err := New(actConfig())
	if err != nil {
		t.Fatal(err)
	}
	a.SetFloat32(true)
	a.SetActFloat32(true)
	if a.ActFloat32() {
		t.Error("SetActFloat32 engaged while the learner owns the f32 mirrors")
	}
	a.SetFloat32(false)
}
