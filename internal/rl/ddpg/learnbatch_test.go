package ddpg

import (
	"math"
	"math/rand"
	"testing"

	"greennfv/internal/rl/replay"
)

// fillAgent seeds an agent's replay with random transitions.
func fillAgent(t testing.TB, a *Agent, n int) {
	t.Helper()
	rng := rand.New(rand.NewSource(2))
	cfg := a.Config()
	for i := 0; i < n; i++ {
		s := make([]float64, cfg.StateDim)
		act := make([]float64, cfg.ActionDim)
		ns := make([]float64, cfg.StateDim)
		for j := range s {
			s[j] = rng.NormFloat64()
			ns[j] = rng.NormFloat64()
		}
		for j := range act {
			act[j] = 2*rng.Float64() - 1
		}
		a.Observe(replay.Transition{State: s, Action: act, Reward: rng.NormFloat64(), NextState: ns})
	}
}

// TestLearnBatchLearns drives the fused prefetcher-path update on a
// sharded replay end to end: externally sampled minibatch in,
// finite loss, a bumped learn-step counter and annealed beta out.
func TestLearnBatchLearns(t *testing.T) {
	cfg := DefaultConfig(6, 4)
	cfg.Hidden = []int{16, 16}
	cfg.BatchSize = 8
	cfg.PERBetaInc = 1e-3
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := replay.NewSharded(cfg.BufferCap, 4, cfg.PERAlpha, cfg.PERBeta, cfg.PERBetaInc, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.SetReplay(sharded); err != nil {
		t.Fatal(err)
	}
	fillAgent(t, a, 64)

	rng := rand.New(rand.NewSource(7))
	samples := make([]replay.Transition, 0, cfg.BatchSize)
	indices := make([]int, 0, cfg.BatchSize)
	weights := make([]float64, 0, cfg.BatchSize)
	betaBefore := sharded.Beta()
	for i := 0; i < 20; i++ {
		s, idx, w := a.SampleReplayInto(rng, cfg.BatchSize, samples, indices, weights)
		if len(s) != cfg.BatchSize {
			t.Fatalf("sampled %d, want %d", len(s), cfg.BatchSize)
		}
		loss := a.LearnBatch(s, idx, w)
		if math.IsNaN(loss) || math.IsInf(loss, 0) {
			t.Fatalf("step %d: loss %v", i, loss)
		}
	}
	if got := a.LearnSteps(); got != 20 {
		t.Errorf("learn steps = %d, want 20", got)
	}
	if sharded.Beta() <= betaBefore {
		t.Error("beta did not anneal through the external sampling path")
	}
	// Empty and oversized batches are handled.
	if loss := a.LearnBatch(nil, nil, nil); loss != 0 {
		t.Errorf("empty batch loss = %v", loss)
	}
}

// TestLearnBatchZeroAlloc is the acceptance gate on the prefetcher
// path: with warm scratch and caller-owned sample buffers, one
// sample+learn cycle — exactly what the pipeline's sampler and
// learner goroutines execute — must not allocate.
func TestLearnBatchZeroAlloc(t *testing.T) {
	cfg := DefaultConfig(12, 15)
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := replay.NewSharded(cfg.BufferCap, 8, cfg.PERAlpha, cfg.PERBeta, cfg.PERBetaInc, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.SetReplay(sharded); err != nil {
		t.Fatal(err)
	}
	fillAgent(t, a, 4*cfg.BatchSize)

	rng := rand.New(rand.NewSource(11))
	samples := make([]replay.Transition, 0, cfg.BatchSize)
	indices := make([]int, 0, cfg.BatchSize)
	weights := make([]float64, 0, cfg.BatchSize)
	// Warm the agent scratch and the network layer scratch.
	s, idx, w := a.SampleReplayInto(rng, cfg.BatchSize, samples, indices, weights)
	a.LearnBatch(s, idx, w)

	allocs := testing.AllocsPerRun(20, func() {
		s, idx, w := a.SampleReplayInto(rng, cfg.BatchSize, samples, indices, weights)
		if a.LearnBatch(s, idx, w) < 0 {
			t.Fatal("negative loss")
		}
	})
	if allocs != 0 {
		t.Errorf("prefetcher path allocates %v/op, want 0", allocs)
	}
}

// TestSetReplayGuards: swapping is only allowed on an empty
// prioritized agent.
func TestSetReplayGuards(t *testing.T) {
	cfg := DefaultConfig(4, 3)
	cfg.Hidden = []int{8}
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := replay.NewSharded(cfg.BufferCap, 2, cfg.PERAlpha, cfg.PERBeta, cfg.PERBetaInc, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.SetReplay(nil); err == nil {
		t.Error("nil buffer accepted")
	}
	fillAgent(t, a, 1)
	if err := a.SetReplay(sharded); err == nil {
		t.Error("swap over non-empty buffer accepted")
	}

	cfg.Prioritized = false
	u, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := u.SetReplay(sharded); err == nil {
		t.Error("swap on uniform agent accepted")
	}
}

// BenchmarkAgentLearnBatch measures the fused prefetcher-path update
// (externally sampled minibatch + LearnBatch) at the GreenNFV problem
// size, the per-update cost the parallel learner pays.
func BenchmarkAgentLearnBatch(b *testing.B) {
	cfg := DefaultConfig(12, 15)
	a, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	sharded, err := replay.NewSharded(cfg.BufferCap, 8, cfg.PERAlpha, cfg.PERBeta, cfg.PERBetaInc, cfg.Seed)
	if err != nil {
		b.Fatal(err)
	}
	if err := a.SetReplay(sharded); err != nil {
		b.Fatal(err)
	}
	fillAgent(b, a, 4*cfg.BatchSize)
	rng := rand.New(rand.NewSource(5))
	samples := make([]replay.Transition, 0, cfg.BatchSize)
	indices := make([]int, 0, cfg.BatchSize)
	weights := make([]float64, 0, cfg.BatchSize)
	s, idx, w := a.SampleReplayInto(rng, cfg.BatchSize, samples, indices, weights)
	a.LearnBatch(s, idx, w)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, idx, w := a.SampleReplayInto(rng, cfg.BatchSize, samples, indices, weights)
		a.LearnBatch(s, idx, w)
	}
}
