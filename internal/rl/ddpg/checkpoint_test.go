package ddpg

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"greennfv/internal/rl/replay"
)

// fillReplay observes n random transitions so Learn has experience to
// sample; the transitions are independent of the agent's own RNG so
// the agent stream position is exercised only by Act/Learn.
func fillReplay(a *Agent, cfg Config, n int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		s := make([]float64, cfg.StateDim)
		ns := make([]float64, cfg.StateDim)
		act := make([]float64, cfg.ActionDim)
		for j := range s {
			s[j] = rng.NormFloat64()
			ns[j] = rng.NormFloat64()
		}
		for j := range act {
			act[j] = 2*rng.Float64() - 1
		}
		a.Observe(replay.Transition{State: s, Action: act, Reward: rng.NormFloat64(), NextState: ns})
	}
}

// runCheckpointRoundTrip drives an agent through warmup learning,
// checkpoints it mid-run, restores into a fresh agent and asserts the
// two futures are bit-identical: same ActorBytes immediately after
// restore and after every further update, same losses, same
// exploration actions (noise + RNG stream parity).
func runCheckpointRoundTrip(t *testing.T, f32 bool) {
	t.Helper()
	cfg := DefaultConfig(6, 4)
	cfg.BatchSize = 16
	cfg.BufferCap = 256

	orig, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	orig.SetFloat32(f32)
	fillReplay(orig, cfg, 64, 71)
	state := make([]float64, cfg.StateDim)
	for i := 0; i < 9; i++ {
		if _, err := orig.Act(state, true); err != nil {
			t.Fatal(err)
		}
		if loss := orig.Learn(); math.IsNaN(loss) {
			t.Fatalf("NaN loss at warmup step %d", i)
		}
	}

	blob, err := orig.StateBytes(true)
	if err != nil {
		t.Fatal(err)
	}
	wantActor, err := orig.ActorBytes()
	if err != nil {
		t.Fatal(err)
	}

	restored, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	restored.SetFloat32(f32)
	if err := restored.LoadStateBytes(blob); err != nil {
		t.Fatal(err)
	}
	gotActor, err := restored.ActorBytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantActor, gotActor) {
		t.Fatal("restored ActorBytes differs from checkpoint")
	}
	if restored.LearnSteps() != orig.LearnSteps() {
		t.Fatalf("learn steps: restored %d, want %d", restored.LearnSteps(), orig.LearnSteps())
	}
	if restored.BufferLen() != orig.BufferLen() {
		t.Fatalf("buffer len: restored %d, want %d", restored.BufferLen(), orig.BufferLen())
	}

	// Both agents now walk the same future: exploration actions and
	// updates must track bit-for-bit.
	for i := 0; i < 6; i++ {
		aOrig, err := orig.Act(state, true)
		if err != nil {
			t.Fatal(err)
		}
		aRest, err := restored.Act(state, true)
		if err != nil {
			t.Fatal(err)
		}
		for j := range aOrig {
			if aOrig[j] != aRest[j] {
				t.Fatalf("step %d: explore action diverged: %v vs %v", i, aOrig, aRest)
			}
		}
		lOrig, lRest := orig.Learn(), restored.Learn()
		if lOrig != lRest {
			t.Fatalf("step %d: loss diverged: %v vs %v", i, lOrig, lRest)
		}
		wo, _ := orig.ActorBytes()
		wr, _ := restored.ActorBytes()
		if !bytes.Equal(wo, wr) {
			t.Fatalf("step %d: actor weights diverged after update", i)
		}
	}
}

func TestCheckpointRoundTrip(t *testing.T)    { runCheckpointRoundTrip(t, false) }
func TestCheckpointRoundTripF32(t *testing.T) { runCheckpointRoundTrip(t, true) }

// TestCheckpointConfigMismatch pins that a checkpoint cannot be
// restored into an agent built from a different Config.
func TestCheckpointConfigMismatch(t *testing.T) {
	a, err := New(DefaultConfig(6, 4))
	if err != nil {
		t.Fatal(err)
	}
	blob, err := a.StateBytes(false)
	if err != nil {
		t.Fatal(err)
	}
	other, err := New(DefaultConfig(6, 5))
	if err != nil {
		t.Fatal(err)
	}
	if err := other.LoadStateBytes(blob); err == nil {
		t.Fatal("restore into mismatched config succeeded, want error")
	}
}

// TestCheckpointRejectsDirtyReplay pins that a replay-bearing
// checkpoint refuses to restore over a buffer that already holds
// experience (silently merging would corrupt the sampling tree).
func TestCheckpointRejectsDirtyReplay(t *testing.T) {
	cfg := DefaultConfig(6, 4)
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fillReplay(a, cfg, 8, 3)
	blob, err := a.StateBytes(true)
	if err != nil {
		t.Fatal(err)
	}
	dirty, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fillReplay(dirty, cfg, 1, 4)
	if err := dirty.LoadStateBytes(blob); err == nil {
		t.Fatal("restore over non-empty replay succeeded, want error")
	}
}

// TestLoadAgentFromCheckpointAlone pins the serving-plane entry
// point: LoadAgent reconstructs an agent from the blob alone (the
// embedded Config builds it), skips the replay snapshot instead of
// requiring a matching buffer, and deploys the same policy — greedy
// actions identical to the saved agent's.
func TestLoadAgentFromCheckpointAlone(t *testing.T) {
	cfg := DefaultConfig(6, 4)
	cfg.BatchSize = 16
	cfg.BufferCap = 256
	orig, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fillReplay(orig, cfg, 64, 71)
	state := make([]float64, cfg.StateDim)
	for i := 0; i < 5; i++ {
		if _, err := orig.Act(state, true); err != nil {
			t.Fatal(err)
		}
		orig.Learn()
	}
	// Replay included on purpose: LoadAgent must skip it, not demand a
	// buffer that fits it.
	blob, err := orig.StateBytes(true)
	if err != nil {
		t.Fatal(err)
	}

	served, err := LoadAgentBytes(blob)
	if err != nil {
		t.Fatal(err)
	}
	if served.LearnSteps() != orig.LearnSteps() {
		t.Errorf("learn steps: served %d, want %d", served.LearnSteps(), orig.LearnSteps())
	}
	if served.BufferLen() != 0 {
		t.Errorf("served agent restored %d replay transitions, want 0", served.BufferLen())
	}
	for trial := 0; trial < 3; trial++ {
		for j := range state {
			state[j] = 0.01 * float64(trial*10+j)
		}
		want, err := orig.Act(state, false)
		if err != nil {
			t.Fatal(err)
		}
		got, err := served.Act(state, false)
		if err != nil {
			t.Fatal(err)
		}
		for j := range want {
			if want[j] != got[j] {
				t.Fatalf("trial %d: greedy action diverged: %v vs %v", trial, got, want)
			}
		}
	}

	if _, err := LoadAgentBytes(blob[:len(blob)/2]); err == nil {
		t.Error("LoadAgent accepted a truncated checkpoint")
	}
}
