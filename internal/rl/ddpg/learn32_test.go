package ddpg

import (
	"math"
	"math/rand"
	"testing"

	"greennfv/internal/rl/replay"
)

// fixedMinibatches generates a deterministic schedule of minibatches
// at the agent's problem size, shared verbatim by both precisions so
// the parity test isolates arithmetic differences from sampling
// differences.
func fixedMinibatches(cfg Config, updates int) [][]replay.Transition {
	rng := rand.New(rand.NewSource(331))
	out := make([][]replay.Transition, updates)
	for u := range out {
		batch := make([]replay.Transition, cfg.BatchSize)
		for i := range batch {
			s := make([]float64, cfg.StateDim)
			act := make([]float64, cfg.ActionDim)
			ns := make([]float64, cfg.StateDim)
			for j := range s {
				s[j] = rng.NormFloat64()
				ns[j] = rng.NormFloat64()
			}
			for j := range act {
				act[j] = 2*rng.Float64() - 1
			}
			batch[i] = replay.Transition{
				State: s, Action: act, Reward: rng.NormFloat64(), NextState: ns,
			}
		}
		out[u] = batch
	}
	return out
}

// TestLearnF32ParityWithF64 quantifies the f32 path's drift against
// the f64 fused update: two identically seeded agents consume the
// same fixed minibatch schedule, one in each precision, and the
// critic's Q predictions and the actor's actions must stay within
// 1e-3 after the full schedule. This is the acceptance bound for
// running the Parallel/RemoteActors learner in single precision.
func TestLearnF32ParityWithF64(t *testing.T) {
	cfg := DefaultConfig(12, 15)
	cfg.BatchSize = 16
	const updates = 40

	a64, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a32, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a32.SetFloat32(true)
	if !a32.Float32() {
		t.Fatal("SetFloat32(true) did not enable the f32 path")
	}

	for _, batch := range fixedMinibatches(cfg, updates) {
		l64 := a64.LearnBatch(batch, nil, nil)
		l32 := a32.LearnBatch(batch, nil, nil)
		if math.IsNaN(l64) || math.IsNaN(l32) {
			t.Fatalf("NaN loss: f64 %v f32 %v", l64, l32)
		}
		if math.Abs(l64-l32) > 1e-2*math.Max(1, l64) {
			t.Fatalf("losses diverged: f64 %v f32 %v", l64, l32)
		}
	}
	if a64.LearnSteps() != updates || a32.LearnSteps() != updates {
		t.Fatalf("learn steps: f64 %d f32 %d, want %d", a64.LearnSteps(), a32.LearnSteps(), updates)
	}

	// Flush the f32 mirrors and compare the deployed policies.
	a32.SetFloat32(false)
	if a32.Float32() {
		t.Fatal("SetFloat32(false) left the f32 path enabled")
	}
	probe := rand.New(rand.NewSource(733))
	var maxDQ, maxDA float64
	sa := make([]float64, cfg.StateDim+cfg.ActionDim)
	for p := 0; p < 64; p++ {
		s := make([]float64, cfg.StateDim)
		for j := range s {
			s[j] = probe.NormFloat64()
		}
		act64 := a64.Greedy(s)
		act32 := a32.Greedy(s)
		for j := range act64 {
			if d := math.Abs(act64[j] - act32[j]); d > maxDA {
				maxDA = d
			}
		}
		copy(sa, s)
		copy(sa[cfg.StateDim:], act64)
		q64 := a64.Critic.Forward(sa)[0]
		q32 := a32.Critic.Forward(sa)[0]
		if d := math.Abs(q64 - q32); d > maxDQ {
			maxDQ = d
		}
	}
	t.Logf("after %d updates: max |ΔQ| = %.2e, max |Δaction| = %.2e", updates, maxDQ, maxDA)
	if maxDQ > 1e-3 {
		t.Errorf("max |ΔQ| = %v after %d updates, want < 1e-3", maxDQ, updates)
	}
	if maxDA > 1e-3 {
		t.Errorf("max |Δaction| = %v after %d updates, want < 1e-3", maxDA, updates)
	}
}

// TestSetFloat32RedundantEnableIsNoOp: a second SetFloat32(true)
// mid-training must not re-snapshot the mirrors from the stale f64
// weights (which would silently revert the critic and targets to
// their enable-time state). Two identically seeded agents on the same
// fixed schedule, one with an extra enable halfway through, must end
// bit-identical.
func TestSetFloat32RedundantEnableIsNoOp(t *testing.T) {
	cfg := DefaultConfig(6, 4)
	cfg.Hidden = []int{16, 16}
	cfg.BatchSize = 8
	schedule := fixedMinibatches(cfg, 10)

	run := func(doubleEnable bool) []float64 {
		a, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		a.SetFloat32(true)
		for i, batch := range schedule {
			if doubleEnable && i == 5 {
				a.SetFloat32(true)
			}
			a.LearnBatch(batch, nil, nil)
		}
		a.SetFloat32(false)
		return a.Greedy(make([]float64, cfg.StateDim))
	}
	want := run(false)
	got := run(true)
	for j := range want {
		if got[j] != want[j] {
			t.Fatalf("redundant enable changed the policy at %d: %v vs %v", j, got[j], want[j])
		}
	}
}

// TestLearnF32RoutesBothEntryPoints: with the f32 path enabled, both
// Learn (remote pacing loop) and LearnBatch (parallel prefetcher)
// train through it, update priorities, and count steps.
func TestLearnF32RoutesBothEntryPoints(t *testing.T) {
	cfg := DefaultConfig(6, 4)
	cfg.Hidden = []int{16, 16}
	cfg.BatchSize = 8
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a.SetFloat32(true)
	fillAgent(t, a, 64)

	if loss := a.Learn(); math.IsNaN(loss) || math.IsInf(loss, 0) {
		t.Fatalf("f32 Learn loss %v", loss)
	}
	rng := rand.New(rand.NewSource(17))
	samples := make([]replay.Transition, 0, cfg.BatchSize)
	indices := make([]int, 0, cfg.BatchSize)
	weights := make([]float64, 0, cfg.BatchSize)
	s, idx, w := a.SampleReplayInto(rng, cfg.BatchSize, samples, indices, weights)
	if loss := a.LearnBatch(s, idx, w); math.IsNaN(loss) || math.IsInf(loss, 0) {
		t.Fatalf("f32 LearnBatch loss %v", loss)
	}
	if got := a.LearnSteps(); got != 2 {
		t.Errorf("learn steps = %d, want 2", got)
	}
	// Broadcast serialization must carry the trained f32 weights.
	data, err := a.ActorBytes()
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.LoadActorBytes(data); err != nil {
		t.Fatal(err)
	}
	st := make([]float64, cfg.StateDim)
	got, want := b.Greedy(st), a.Greedy(st)
	for j := range want {
		// a's f64 actor was flushed by ActorBytes, so the loaded copy
		// must reproduce it exactly.
		if got[j] != want[j] {
			t.Fatalf("broadcast policy mismatch at %d: %v vs %v", j, got[j], want[j])
		}
	}
}

// TestLearnBatchF32ZeroAlloc is the f32 analogue of the prefetcher
// path's zero-alloc gate: one sample+learn cycle in single precision
// must not allocate once warm.
func TestLearnBatchF32ZeroAlloc(t *testing.T) {
	cfg := DefaultConfig(12, 15)
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := replay.NewSharded(cfg.BufferCap, 8, cfg.PERAlpha, cfg.PERBeta, cfg.PERBetaInc, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.SetReplay(sharded); err != nil {
		t.Fatal(err)
	}
	a.SetFloat32(true)
	fillAgent(t, a, 4*cfg.BatchSize)

	rng := rand.New(rand.NewSource(11))
	samples := make([]replay.Transition, 0, cfg.BatchSize)
	indices := make([]int, 0, cfg.BatchSize)
	weights := make([]float64, 0, cfg.BatchSize)
	s, idx, w := a.SampleReplayInto(rng, cfg.BatchSize, samples, indices, weights)
	a.LearnBatch(s, idx, w) // warm agent, network and optimizer scratch

	allocs := testing.AllocsPerRun(20, func() {
		s, idx, w := a.SampleReplayInto(rng, cfg.BatchSize, samples, indices, weights)
		if a.LearnBatch(s, idx, w) < 0 {
			t.Fatal("negative loss")
		}
	})
	if allocs != 0 {
		t.Errorf("f32 prefetcher path allocates %v/op, want 0", allocs)
	}
}

// BenchmarkAgentLearnBatchF32 is the f32 counterpart of
// BenchmarkAgentLearnBatch: same problem size, same sharded replay,
// sample+learn per iteration — the per-update cost the parallel
// learner pays with TrainerConfig.Float32 set.
func BenchmarkAgentLearnBatchF32(b *testing.B) {
	cfg := DefaultConfig(12, 15)
	a, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	sharded, err := replay.NewSharded(cfg.BufferCap, 8, cfg.PERAlpha, cfg.PERBeta, cfg.PERBetaInc, cfg.Seed)
	if err != nil {
		b.Fatal(err)
	}
	if err := a.SetReplay(sharded); err != nil {
		b.Fatal(err)
	}
	a.SetFloat32(true)
	fillAgent(b, a, 4*cfg.BatchSize)
	rng := rand.New(rand.NewSource(5))
	samples := make([]replay.Transition, 0, cfg.BatchSize)
	indices := make([]int, 0, cfg.BatchSize)
	weights := make([]float64, 0, cfg.BatchSize)
	s, idx, w := a.SampleReplayInto(rng, cfg.BatchSize, samples, indices, weights)
	a.LearnBatch(s, idx, w)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, idx, w := a.SampleReplayInto(rng, cfg.BatchSize, samples, indices, weights)
		a.LearnBatch(s, idx, w)
	}
}
