package ddpg

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"reflect"

	"greennfv/internal/nn"
	"greennfv/internal/rl/replay"
)

// Full-agent checkpoint/restore. A DDPG agent's training state is more
// than its four networks: the Adam moment estimates (both precisions),
// the OU exploration-noise vector and annealed sigma, the RNG stream
// position, the learn-step counter and (optionally) the replay buffer
// all feed the next update. SaveState captures every piece so that a
// restored agent's next Learn is bit-identical to the update an
// uninterrupted run would have made — the property the checkpoint
// round-trip test pins and the crash-recovery story of the remote
// trainer depends on.
//
// Float32 interplay: saving while SetFloat32 is active first flushes
// the trained mirrors into the f64 weights (like ActorBytes), so the
// blob always carries the current policy in double precision; the f32
// Adam moments ride along. Restoring onto an agent with the f32 path
// active refreshes its mirrors from the restored f64 weights.

// agentState is the gob-serializable form of an Agent.
type agentState struct {
	Cfg Config
	// The four networks, each in nn.Network wire format.
	Actor, Critic, ActorTarget, CriticTarget []byte
	// Optimizer moments (f64 and, when the f32 path ran, f32).
	ActorOpt, CriticOpt nn.AdamState
	// Exploration state.
	NoiseState []float64
	NoiseSigma float64
	// RNGDraws is the agent RNG's stream position (draw count since
	// seeding) — replay sampling and OU noise share this stream.
	RNGDraws   uint64
	LearnSteps int
	// At most one replay snapshot is set, matching the installed
	// buffer implementation; both nil when the caller skipped replay.
	Replay        *replay.PrioritizedState
	ShardedReplay *replay.ShardedState
}

// SaveState serializes the agent's complete training state to w.
// includeReplay additionally snapshots the replay buffer contents
// (required for next-update parity after restore; skippable when only
// the policy and optimizer state matter).
func (a *Agent) SaveState(w io.Writer, includeReplay bool) error {
	if a.f32 {
		// Make the f64 weights current; the mirrors stay authoritative.
		a.Actor.FlushF32()
		a.Critic.FlushF32()
		a.actorTarget.FlushF32()
		a.criticTarget.FlushF32()
	}
	st := agentState{
		Cfg:        a.cfg,
		ActorOpt:   a.actorOpt.State(),
		CriticOpt:  a.criticOpt.State(),
		NoiseState: a.noise.State(),
		NoiseSigma: a.noise.Sigma(),
		RNGDraws:   a.rngSrc.draws,
		LearnSteps: a.learnSteps,
	}
	var err error
	if st.Actor, err = a.Actor.MarshalBinary(); err != nil {
		return fmt.Errorf("ddpg: checkpoint actor: %w", err)
	}
	if st.Critic, err = a.Critic.MarshalBinary(); err != nil {
		return fmt.Errorf("ddpg: checkpoint critic: %w", err)
	}
	if st.ActorTarget, err = a.actorTarget.MarshalBinary(); err != nil {
		return fmt.Errorf("ddpg: checkpoint actor target: %w", err)
	}
	if st.CriticTarget, err = a.criticTarget.MarshalBinary(); err != nil {
		return fmt.Errorf("ddpg: checkpoint critic target: %w", err)
	}
	if includeReplay {
		switch buf := a.prioritized.(type) {
		case *replay.Prioritized:
			snap := buf.State()
			st.Replay = &snap
		case *replay.Sharded:
			snap := buf.State()
			st.ShardedReplay = &snap
		case nil:
			return errors.New("ddpg: replay snapshot requires a prioritized agent")
		default:
			return fmt.Errorf("ddpg: replay snapshot unsupported for %T", buf)
		}
	}
	return gob.NewEncoder(w).Encode(&st)
}

// StateBytes is SaveState into a fresh byte slice.
func (a *Agent) StateBytes(includeReplay bool) ([]byte, error) {
	var buf bytes.Buffer
	if err := a.SaveState(&buf, includeReplay); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// loadNetwork replaces dst's parameters from a checkpoint blob.
func loadNetwork(dst *nn.Network, data []byte, name string) error {
	var net nn.Network
	if err := net.UnmarshalBinary(data); err != nil {
		return fmt.Errorf("ddpg: restore %s: %w", name, err)
	}
	if err := dst.CopyParamsFrom(&net); err != nil {
		return fmt.Errorf("ddpg: restore %s: %w", name, err)
	}
	return nil
}

// LoadState restores a SaveState checkpoint into this agent, which
// must have been built with the identical Config (the construction
// seed included — the restored RNG stream is replayed from it) and,
// when the checkpoint carries a replay snapshot, have a still-empty
// buffer of the matching implementation and capacity installed.
// After a successful restore the agent's weights, optimizer moments,
// noise, RNG position and learn counter are bit-identical to the
// saved agent's.
func (a *Agent) LoadState(r io.Reader) error {
	var st agentState
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return fmt.Errorf("ddpg: decode checkpoint: %w", err)
	}
	if !reflect.DeepEqual(st.Cfg, a.cfg) {
		return fmt.Errorf("ddpg: checkpoint config %+v does not match agent config %+v", st.Cfg, a.cfg)
	}
	return a.applyState(&st, true)
}

// applyState restores a decoded checkpoint into a, whose Config
// already matches st.Cfg. withReplay controls whether a carried
// replay snapshot is restored (inference-only consumers skip it).
func (a *Agent) applyState(st *agentState, withReplay bool) error {
	if err := loadNetwork(a.Actor, st.Actor, "actor"); err != nil {
		return err
	}
	if err := loadNetwork(a.Critic, st.Critic, "critic"); err != nil {
		return err
	}
	if err := loadNetwork(a.actorTarget, st.ActorTarget, "actor target"); err != nil {
		return err
	}
	if err := loadNetwork(a.criticTarget, st.CriticTarget, "critic target"); err != nil {
		return err
	}
	if err := a.actorOpt.SetState(st.ActorOpt, a.Actor); err != nil {
		return fmt.Errorf("ddpg: restore actor optimizer: %w", err)
	}
	if err := a.criticOpt.SetState(st.CriticOpt, a.Critic); err != nil {
		return fmt.Errorf("ddpg: restore critic optimizer: %w", err)
	}
	if err := a.noise.SetState(st.NoiseState); err != nil {
		return err
	}
	a.noise.SetSigma(st.NoiseSigma)
	a.rngSrc.skipTo(st.RNGDraws)
	a.learnSteps = st.LearnSteps
	switch {
	case !withReplay:
	case st.Replay != nil:
		buf, ok := a.prioritized.(*replay.Prioritized)
		if !ok {
			return fmt.Errorf("ddpg: checkpoint carries a single-tree replay snapshot but agent has %T", a.prioritized)
		}
		if err := buf.SetState(*st.Replay); err != nil {
			return err
		}
	case st.ShardedReplay != nil:
		buf, ok := a.prioritized.(*replay.Sharded)
		if !ok {
			return fmt.Errorf("ddpg: checkpoint carries a sharded replay snapshot but agent has %T", a.prioritized)
		}
		if err := buf.SetState(*st.ShardedReplay); err != nil {
			return err
		}
	}
	if a.f32 || a.actF32 {
		// Refresh the f32 mirrors from the restored f64 weights; the
		// restored f32 Adam moments continue where they left off.
		a.Actor.EnableF32()
		a.Critic.EnableF32()
		a.actorTarget.EnableF32()
		a.criticTarget.EnableF32()
	}
	return nil
}

// LoadStateBytes is LoadState from a byte slice.
func (a *Agent) LoadStateBytes(data []byte) error {
	return a.LoadState(bytes.NewReader(data))
}

// LoadAgent builds a fresh agent from a SaveState checkpoint alone:
// the embedded Config constructs the agent, then everything except
// replay contents is restored. This is the serving-plane entry point —
// a controller daemon handed a checkpoint file knows nothing about
// the configuration that trained it, and inference never touches the
// replay buffer, so a carried replay snapshot is skipped rather than
// required to fit.
func LoadAgent(r io.Reader) (*Agent, error) {
	var st agentState
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return nil, fmt.Errorf("ddpg: decode checkpoint: %w", err)
	}
	a, err := New(st.Cfg)
	if err != nil {
		return nil, fmt.Errorf("ddpg: checkpoint config: %w", err)
	}
	if err := a.applyState(&st, false); err != nil {
		return nil, err
	}
	return a, nil
}

// LoadAgentBytes is LoadAgent from a byte slice.
func LoadAgentBytes(data []byte) (*Agent, error) {
	return LoadAgent(bytes.NewReader(data))
}
