// Package ddpg implements Deep Deterministic Policy Gradient
// (Lillicrap et al., ICLR'16) — Algorithm 2 of the GreenNFV paper:
// an actor-critic method for continuous, high-dimensional action
// spaces, which is why the paper selects it over Q-learning and DQN
// for the five-knobs-per-NF resource-control problem.
//
// # Paper mapping
//
// Algorithm 2 end to end: OU exploration noise (line 1), prioritized
// minibatch sampling (line 3), critic regression and actor gradient
// (lines 5–8), soft target updates (lines 9–10). The trained actor
// is the policy deployed in Figures 6–11.
//
// # Concurrency and determinism
//
// An Agent is NOT goroutine-safe; the Ape-X learner serializes
// updates and actors own private Agent copies. Training is
// deterministic given Config.Seed and a fixed replay history (up to
// the CPU-feature caveat documented in internal/nn), which is what
// keeps the round-robin training figures byte-identical.
//
// Learn is organized as sample + learnMinibatch: Learn draws a
// prioritized minibatch and hands it to the shared update step, and
// the Ape-X pipeline calls the same step through LearnBatch with a
// prefetched minibatch instead. Both run three batched network
// passes over reusable scratch (zero allocations per update,
// including sampling, pinned by benchmarks). LearnBatch additionally
// takes the fused path — one 2n-row critic forward over [regression;
// (s,μ(s)) probes] with nn.BackwardBatchSplit, where dQ/da reads the
// pre-update critic — which is bit-unidentical to the unfused order
// and therefore used only by the non-deterministic parallel mode;
// the unfused path is op-identical to the original Learn and stays
// on the figure path. The replay behind Observe/ObserveBatch is
// goroutine-safe (see internal/replay), so experience ingest may run
// concurrently with action selection but not with updates.
//
// # Float32 fast path
//
// SetFloat32(true) routes both Learn and LearnBatch through a
// single-precision mirror of the fused update (learn32.go) built on
// internal/nn's f32 batch engine — roughly 1.3x the f64 update rate
// on AVX2. Precision contract: while enabled, the f32 parameter
// mirrors of all four networks are authoritative and the f64 weights
// go stale; ActorBytes flushes the actor mirror before serializing
// (broadcasts always carry the current policy) and SetFloat32(false)
// flushes everything back, after which Act/Greedy/TDError see the
// trained policy. The path is deterministic given the seed on a fixed
// CPU feature set but NOT bit-comparable to the f64 update; its drift
// is quantified by TestLearnF32ParityWithF64 (max |ΔQ| and |Δaction|
// well under 1e-3 after a fixed 40-update schedule). Only the
// non-deterministic Ape-X Parallel/RemoteActors modes enable it — the
// round-robin figure path never does, keeping recorded figures
// byte-identical. Zero allocations per update once warm, pinned by
// TestLearnBatchF32ZeroAlloc.
//
// # Batched acting
//
// The acting side has its own batched layer, independent of the
// learner paths above:
//
//   - ActInto is Act without the return-value allocation: action
//     selection into a caller-owned slice, bit-identical to Act.
//   - ActBatch selects actions for n actors' states in one call —
//     one nn.ForwardRows pass over the row matrix plus the per-lane
//     OU noise draws and clamps. ForwardRows keeps the scalar
//     per-row summation order, so the f64 batch is BIT-IDENTICAL to
//     n scalar Act calls (pinned by TestActBatchMatchesScalarReference
//     and the apex VecActor parity test); it exists so batching is a
//     pure throughput knob, never a numerics change.
//   - TDErrorBatch computes |δ| priorities for a whole push window in
//     two target-net row passes instead of 3·n scalar forwards, again
//     bit-identical to scalar TDError. It reads only the target nets
//     and the critic — parameters a learner broadcast never touches —
//     which is why the Ape-X actor may defer priority settlement to
//     push time without changing a single priority bit.
//   - SetActFloat32 routes ActBatch/TDErrorBatch through the f32
//     batch engine (~2x on AVX2) WITHOUT touching the learner state:
//     it mirrors only the acting nets, and it is a no-op while
//     SetFloat32 learning is enabled on the same agent — the learner
//     owns the mirrors then, and acting precision must not fight it.
//     Drift vs f64 is bounded by TestActBatchFloat32Parity (≤1e-3).
//
// All batched-acting entry points are zero-allocation in steady state
// (TestActBatchNoAllocs); scratch grows monotonically to the largest
// batch seen.
//
// # Serialization contract
//
// SaveState/LoadState (checkpoint.go) serialize the COMPLETE training
// state, not just the policy: all four networks, both Adam moment
// sets (f64 and, when the f32 paths ran, their f32 twins), the OU
// noise process, the exploration-RNG stream position, the learn-step
// counter and optionally the replay contents. The restore contract is
// bit-exactness: an agent restored from a snapshot produces the same
// actions, losses and parameter bytes on every subsequent step as the
// original would have — pinned per precision mode by
// TestCheckpointRoundTrip/F32. Two consequences shape the API: the
// target Config must match the snapshot exactly (strict equality, no
// silent topology adaption), and LoadState requires an EMPTY replay
// of matching capacity when the snapshot carries one (restoring over
// live experience would splice two histories). The RNG stream
// restores by draw count — the counting source re-seeds and
// fast-forwards — so snapshots stay valid across Go versions only as
// far as math/rand's generator is stable, which is the same
// assumption seeded training already makes. ActorBytes remains the
// separate, policy-only format for broadcasts and deployment; the
// two formats are unrelated on the wire.
package ddpg
