package ddpg

import (
	"math"
	"math/rand"
	"testing"

	"greennfv/internal/rl/replay"
)

func smallConfig() Config {
	cfg := DefaultConfig(3, 2)
	cfg.Hidden = []int{16, 16}
	cfg.BatchSize = 16
	cfg.BufferCap = 4096
	return cfg
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.StateDim = 0 },
		func(c *Config) { c.ActionDim = 0 },
		func(c *Config) { c.Hidden = nil },
		func(c *Config) { c.ActorLR = 0 },
		func(c *Config) { c.Gamma = -0.5 },
		func(c *Config) { c.Gamma = 1.5 },
		func(c *Config) { c.Tau = 0 },
		func(c *Config) { c.BufferCap = 1 },
	}
	for i, mut := range bad {
		cfg := smallConfig()
		mut(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestActBoundsAndDim(t *testing.T) {
	a, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	act, err := a.Act([]float64{0.5, -0.5, 0.1}, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(act) != 2 {
		t.Fatalf("action dim = %d", len(act))
	}
	for _, v := range act {
		if v < -1 || v > 1 || math.IsNaN(v) {
			t.Errorf("action %v outside [-1,1]", v)
		}
	}
	if _, err := a.Act([]float64{1}, false); err == nil {
		t.Error("wrong state dim accepted")
	}
	// Greedy is deterministic.
	g1 := a.Greedy([]float64{0.5, -0.5, 0.1})
	g2 := a.Greedy([]float64{0.5, -0.5, 0.1})
	for i := range g1 {
		if g1[i] != g2[i] {
			t.Error("greedy policy not deterministic")
		}
	}
}

func TestExplorationNoiseVaries(t *testing.T) {
	a, _ := New(smallConfig())
	s := []float64{0.1, 0.2, 0.3}
	a1, _ := a.Act(s, true)
	a2, _ := a.Act(s, true)
	same := true
	for i := range a1 {
		if a1[i] != a2[i] {
			same = false
		}
	}
	if same {
		t.Error("exploration produced identical actions")
	}
}

func TestLearnRequiresBatch(t *testing.T) {
	a, _ := New(smallConfig())
	if loss := a.Learn(); loss != 0 {
		t.Errorf("learn on empty buffer returned %v", loss)
	}
}

// The canonical smoke test: DDPG must solve a trivial continuous
// bandit (reward = -(a0-0.5)^2, independent of state). After
// training, the greedy action should approach 0.5.
func TestLearnsContinuousBandit(t *testing.T) {
	cfg := smallConfig()
	cfg.StateDim = 2
	cfg.ActionDim = 1
	cfg.OUSigma = 0.4
	cfg.NoiseDecay = 0.999
	cfg.Gamma = 0.0 // bandit: no bootstrapping
	cfg.Seed = 3
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	state := []float64{0.3, -0.3}
	for step := 0; step < 3000; step++ {
		act, _ := a.Act(state, true)
		r := -(act[0] - 0.5) * (act[0] - 0.5)
		a.Observe(replay.Transition{
			State:     append([]float64(nil), state...),
			Action:    append([]float64(nil), act...),
			Reward:    r,
			NextState: append([]float64(nil), state...),
			Done:      true,
		})
		a.Learn()
		_ = rng
	}
	got := a.Greedy(state)[0]
	if math.Abs(got-0.5) > 0.15 {
		t.Errorf("greedy action = %v, want ~0.5", got)
	}
}

func TestTDErrorFinite(t *testing.T) {
	a, _ := New(smallConfig())
	tr := replay.Transition{
		State:     []float64{0.1, 0.2, 0.3},
		Action:    []float64{0.5, -0.5},
		Reward:    1.0,
		NextState: []float64{0.2, 0.3, 0.4},
	}
	td := a.TDError(tr)
	if math.IsNaN(td) || math.IsInf(td, 0) {
		t.Errorf("TD error = %v", td)
	}
	// Done transitions drop the bootstrap term.
	tr.Done = true
	td2 := a.TDError(tr)
	if math.IsNaN(td2) {
		t.Error("done TD error NaN")
	}
}

func TestNoiseDecays(t *testing.T) {
	cfg := smallConfig()
	cfg.NoiseDecay = 0.9
	a, _ := New(cfg)
	for i := 0; i < 20; i++ {
		a.Observe(replay.Transition{
			State:     []float64{0, 0, 0},
			Action:    []float64{0, 0},
			Reward:    0,
			NextState: []float64{0, 0, 0},
		})
	}
	before := a.NoiseSigma()
	a.Learn()
	if a.NoiseSigma() >= before {
		t.Errorf("sigma did not decay: %v -> %v", before, a.NoiseSigma())
	}
	if a.LearnSteps() != 1 {
		t.Errorf("learn steps = %d", a.LearnSteps())
	}
}

func TestSyncFrom(t *testing.T) {
	a, _ := New(smallConfig())
	b, _ := New(smallConfig())
	// Make them differ.
	for i := 0; i < 64; i++ {
		a.Observe(replay.Transition{
			State:     []float64{rand.Float64(), 0, 0},
			Action:    []float64{0.1, 0.1},
			Reward:    1,
			NextState: []float64{0, 0, 0},
		})
	}
	a.Learn()
	s := []float64{0.4, 0.4, 0.4}
	if err := b.SyncFrom(a); err != nil {
		t.Fatal(err)
	}
	ga, gb := a.Greedy(s), b.Greedy(s)
	for i := range ga {
		if ga[i] != gb[i] {
			t.Fatal("sync did not equalize policies")
		}
	}
}

func TestActorBytesRoundTrip(t *testing.T) {
	a, _ := New(smallConfig())
	b, _ := New(smallConfig())
	data, err := a.ActorBytes()
	if err != nil {
		t.Fatal(err)
	}
	if err := b.LoadActorBytes(data); err != nil {
		t.Fatal(err)
	}
	s := []float64{0.2, 0.2, 0.2}
	ga, gb := a.Greedy(s), b.Greedy(s)
	for i := range ga {
		if ga[i] != gb[i] {
			t.Fatal("actor broadcast did not reproduce the policy")
		}
	}
	if err := b.LoadActorBytes([]byte("garbage")); err == nil {
		t.Error("garbage actor bytes accepted")
	}
}

func TestUniformReplayVariantLearns(t *testing.T) {
	cfg := smallConfig()
	cfg.Prioritized = false
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		a.Observe(replay.Transition{
			State:     []float64{0.1, 0.1, 0.1},
			Action:    []float64{0, 0},
			Reward:    1,
			NextState: []float64{0.1, 0.1, 0.1},
		})
	}
	if loss := a.Learn(); loss <= 0 {
		t.Errorf("uniform-replay learn loss = %v", loss)
	}
}

func TestOUNoiseStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := NewOUNoise(1, 0.15, 0.2, rng)
	var sum, sumSq float64
	const steps = 20000
	for i := 0; i < steps; i++ {
		v := n.Sample()[0]
		sum += v
		sumSq += v * v
	}
	mean := sum / steps
	if math.Abs(mean) > 0.05 {
		t.Errorf("OU mean = %v, want ~0 (mean-reverting)", mean)
	}
	// Stationary std of OU with these params: sigma/sqrt(2*theta - theta^2) ~ sigma/sqrt(2 theta).
	std := math.Sqrt(sumSq/steps - mean*mean)
	want := 0.2 / math.Sqrt(2*0.15)
	if std < want*0.7 || std > want*1.3 {
		t.Errorf("OU std = %v, want ~%v", std, want)
	}
	n.Reset()
	if n.Sample()[0] == 0 {
		// First post-reset sample includes fresh noise; just ensure
		// the process still runs.
		t.Log("post-reset sample happened to be zero")
	}
}
