package ddpg

import (
	"fmt"

	"greennfv/internal/rl/replay"
)

// This file is the batched acting fast path of the Ape-X actor half:
// one network pass serves every parallel actor's action (ActBatch) and
// one fused pass serves a whole staging buffer's TD-error priorities
// (TDErrorBatch), replacing the per-state scalar forwards the actors
// used to run. Two precision regimes share the entry points:
//
//   - f64 (default): nn.ForwardRows, whose per-row results are
//     bit-identical to the scalar Forward. Batching over rows changes
//     NOTHING numerically — the deterministic round-robin figure path
//     and the remote actors' bit-for-bit priority verification both
//     rely on this.
//   - f32 (SetActFloat32): nn.ForwardBatchF32 over the f32 parameter
//     mirrors — the vectorized 8-lane kernels. Not bit-comparable to
//     f64; the acting parity test bounds |Δaction| ≤ 1e-3. Only the
//     non-deterministic Parallel trainer mode enables it.
//
// All entry points run over agent-owned scratch: zero allocations in
// steady state (buffers grow to the largest batch seen and stick).

// growFloat64 returns buf resized to n, reallocating only when
// capacity is insufficient.
func growFloat64(buf []float64, n int) []float64 {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]float64, n)
}

func growFloat32(buf []float32, n int) []float32 {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]float32, n)
}

// ActInto is Act without the per-call allocation: the clamped policy
// action (plus OU noise when explore is set) is written into dst,
// which must have length ActionDim. The result is bit-identical to Act
// and consumes the agent's noise RNG identically.
func (a *Agent) ActInto(state []float64, explore bool, dst []float64) error {
	if len(state) != a.cfg.StateDim {
		return fmt.Errorf("ddpg: state dim %d, want %d", len(state), a.cfg.StateDim)
	}
	if len(dst) != a.cfg.ActionDim {
		return fmt.Errorf("ddpg: action dst dim %d, want %d", len(dst), a.cfg.ActionDim)
	}
	out := a.Actor.Forward(state)
	copy(dst, out)
	if explore {
		noise := a.noise.Sample()
		for i := range dst {
			dst[i] += noise[i]
		}
	}
	for i := range dst {
		if dst[i] < -1 {
			dst[i] = -1
		}
		if dst[i] > 1 {
			dst[i] = 1
		}
	}
	return nil
}

// ActBatch computes policy actions for n states (row-major
// [n × StateDim]) in ONE actor-network pass, writing the clamped
// actions into dst ([n × ActionDim]). noises[i], when non-nil, supplies
// row i's exploration noise — each parallel actor keeps its own OU
// process so the Ape-X exploration ladder survives batching. noises
// may be nil (greedy batch).
//
// On the f64 path each row is bit-identical to ActInto with the same
// noise process. With SetActFloat32 the pass runs through the f32
// batch engine instead (vectorized, NOT bit-comparable; the parity
// test bounds the drift).
func (a *Agent) ActBatch(states []float64, n int, noises []*OUNoise, dst []float64) error {
	S, A := a.cfg.StateDim, a.cfg.ActionDim
	if len(states) < n*S {
		return fmt.Errorf("ddpg: ActBatch states len %d, want %d", len(states), n*S)
	}
	if len(dst) < n*A {
		return fmt.Errorf("ddpg: ActBatch dst len %d, want %d", len(dst), n*A)
	}
	if noises != nil && len(noises) < n {
		return fmt.Errorf("ddpg: ActBatch has %d noise processes for %d rows", len(noises), n)
	}
	if a.actF32 {
		a.act32States = growFloat32(a.act32States, n*S)
		for i, v := range states[:n*S] {
			a.act32States[i] = float32(v)
		}
		out := a.Actor.ForwardBatchF32(a.act32States, n)
		for i, v := range out[:n*A] {
			dst[i] = float64(v)
		}
	} else {
		out := a.Actor.ForwardRows(states, n)
		copy(dst[:n*A], out)
	}
	for r := 0; r < n; r++ {
		row := dst[r*A : (r+1)*A]
		if noises != nil && noises[r] != nil {
			noise := noises[r].Sample()
			for i := range row {
				row[i] += noise[i]
			}
		}
		for i := range row {
			if row[i] < -1 {
				row[i] = -1
			}
			if row[i] > 1 {
				row[i] = 1
			}
		}
	}
	return nil
}

// TDErrorBatch computes the signed TD errors of a whole transition
// batch in three batched network passes (target actor, target critic,
// critic) instead of 3·n scalar forwards — the Ape-X actors' priority
// computation at Flush granularity. The errors are appended to out
// (truncated to length zero first) and the returned slice is valid
// until the next call.
//
// On the f64 path out[i] is bit-identical to TDError(batch[i]); with
// SetActFloat32 the passes run through the f32 batch engine (priorities
// are sampling weights, not gradients — the f32 drift is harmless and
// the parallel mode that enables it is non-deterministic anyway).
func (a *Agent) TDErrorBatch(batch []replay.Transition, out []float64) []float64 {
	n := len(batch)
	out = growFloat64(out[:0], n)
	if n == 0 {
		return out
	}
	if a.actF32 {
		return a.tdErrorBatch32(batch, out)
	}
	S, A := a.cfg.StateDim, a.cfg.ActionDim
	SA := S + A
	a.actNext = growFloat64(a.actNext, n*S)
	a.actNextSA = growFloat64(a.actNextSA, n*SA)
	a.actSA = growFloat64(a.actSA, n*SA)
	for i := range batch {
		t := &batch[i]
		copy(a.actNext[i*S:(i+1)*S], t.NextState)
		copy(a.actNextSA[i*SA:], t.NextState)
		copy(a.actSA[i*SA:], t.State)
		copy(a.actSA[i*SA+S:(i+1)*SA], t.Action)
	}
	nextA := a.actorTarget.ForwardRows(a.actNext, n)
	for i := 0; i < n; i++ {
		copy(a.actNextSA[i*SA+S:(i+1)*SA], nextA[i*A:(i+1)*A])
	}
	qNext := a.criticTarget.ForwardRows(a.actNextSA, n)
	q := a.Critic.ForwardRows(a.actSA, n)
	for i := range batch {
		target := batch[i].Reward
		if !batch[i].Done {
			target += a.cfg.Gamma * qNext[i]
		}
		out[i] = target - q[i]
	}
	return out
}

// tdErrorBatch32 is TDErrorBatch through the f32 batch engine: same
// three passes over the f32 parameter mirrors, with the final
// target/error arithmetic in f64 over the converted Q values.
func (a *Agent) tdErrorBatch32(batch []replay.Transition, out []float64) []float64 {
	n := len(batch)
	S, A := a.cfg.StateDim, a.cfg.ActionDim
	SA := S + A
	a.act32States = growFloat32(a.act32States, n*S)
	a.act32NextSA = growFloat32(a.act32NextSA, n*SA)
	a.act32SA = growFloat32(a.act32SA, n*SA)
	for i := range batch {
		t := &batch[i]
		for j, v := range t.NextState {
			a.act32States[i*S+j] = float32(v)
			a.act32NextSA[i*SA+j] = float32(v)
		}
		for j, v := range t.State {
			a.act32SA[i*SA+j] = float32(v)
		}
		for j, v := range t.Action {
			a.act32SA[i*SA+S+j] = float32(v)
		}
	}
	nextA := a.actorTarget.ForwardBatchF32(a.act32States, n)
	for i := 0; i < n; i++ {
		copy(a.act32NextSA[i*SA+S:(i+1)*SA], nextA[i*A:(i+1)*A])
	}
	qNext := a.criticTarget.ForwardBatchF32(a.act32NextSA, n)
	q := a.Critic.ForwardBatchF32(a.act32SA, n)
	for i := range batch {
		target := batch[i].Reward
		if !batch[i].Done {
			target += a.cfg.Gamma * float64(qNext[i])
		}
		out[i] = target - float64(q[i])
	}
	return out
}

// SetActFloat32 switches ActBatch/TDErrorBatch between the bit-exact
// f64 row path and the vectorized f32 batch engine. Enabling snapshots
// all four networks' f32 mirrors from the current f64 weights.
//
// The flag is for ACTING agents — Ape-X actors that never Learn and
// whose f64 weights therefore never go stale outside LoadActorBytes
// (which refreshes the actor mirror itself). It is independent of
// SetFloat32, the learner-side precision switch; enabling both on one
// agent is unsupported (the learner trains the f32 mirrors, and a
// re-snapshot from the stale f64 weights would revert them), and
// SetActFloat32 is a no-op while the learn path owns the mirrors.
// Scalar Act/ActInto/TDError always stay on the f64 weights.
func (a *Agent) SetActFloat32(enable bool) {
	if a.f32 {
		return // learn path owns the mirrors
	}
	a.actF32 = enable
	if enable {
		a.Actor.EnableF32()
		a.actorTarget.EnableF32()
		a.Critic.EnableF32()
		a.criticTarget.EnableF32()
	}
}

// ActFloat32 reports whether the f32 acting path is active.
func (a *Agent) ActFloat32() bool { return a.actF32 }
