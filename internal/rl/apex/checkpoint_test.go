package apex

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"greennfv/internal/rl/ddpg"
	"greennfv/internal/sla"
)

// checkpointTrainerConfig builds a small deterministic round-robin
// trainer configuration for checkpoint tests.
func checkpointTrainerConfig(t *testing.T, totalSteps int) TrainerConfig {
	t.Helper()
	cfg := DefaultTrainerConfig(totalSteps)
	cfg.Actors = 2
	cfg.WarmupSteps = 16
	cfg.EnvFactory = envFactory(sla.NewEnergyEfficiency())
	cfg.AgentConfig = ddpg.DefaultConfig(0, 0)
	cfg.AgentConfig.Hidden = []int{12, 12}
	cfg.AgentConfig.BatchSize = 8
	cfg.AgentConfig.Seed = 5
	cfg.CheckpointReplay = true
	return cfg
}

// TestWriteReadCheckpoint pins the checkpoint file format round-trip
// and its corruption detection: bad magic, truncation and bit flips
// must all be rejected before any state is decoded.
func TestWriteReadCheckpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck")
	want := &TrainerCheckpoint{
		Agent: []byte{1, 2, 3, 4, 5}, Version: 7, Updates: 42,
		Pushes: 9, Received: 360, Steps: 100, TotalSteps: 500,
	}
	if err := WriteCheckpoint(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Agent, want.Agent) || got.Version != want.Version ||
		got.Updates != want.Updates || got.Received != want.Received ||
		got.Steps != want.Steps || got.TotalSteps != want.TotalSteps {
		t.Fatalf("round-trip mismatch: %+v != %+v", got, want)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Bit flip inside the payload: CRC must catch it.
	flipped := append([]byte(nil), raw...)
	flipped[len(flipped)-1] ^= 0x01
	bad := filepath.Join(t.TempDir(), "flipped")
	os.WriteFile(bad, flipped, 0o644)
	if _, err := ReadCheckpoint(bad); err == nil {
		t.Error("bit-flipped checkpoint read without error")
	}
	// Truncation.
	os.WriteFile(bad, raw[:len(raw)-3], 0o644)
	if _, err := ReadCheckpoint(bad); err == nil {
		t.Error("truncated checkpoint read without error")
	}
	// Foreign file.
	os.WriteFile(bad, []byte("not a checkpoint at all........"), 0o644)
	if _, err := ReadCheckpoint(bad); err == nil {
		t.Error("bad-magic file read without error")
	}
}

// TestTrainerCheckpointResume is the checkpoint round-trip gate at the
// trainer level: train, checkpoint, restore into a freshly built
// trainer, and require bit-identical weights plus next-update parity
// (both learners step once more and must remain bit-identical — the
// optimizer moments, RNG stream and replay contents all survived).
func TestTrainerCheckpointResume(t *testing.T) {
	const total = 80
	cfg := checkpointTrainerConfig(t, total)
	tr, err := NewTrainer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Run(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trainer.ckpt")
	if err := tr.Checkpoint(path); err != nil {
		t.Fatal(err)
	}
	wantBytes, err := tr.Learner().Agent().ActorBytes()
	if err != nil {
		t.Fatal(err)
	}

	tr2, err := NewTrainer(checkpointTrainerConfig(t, total))
	if err != nil {
		t.Fatal(err)
	}
	if err := tr2.Resume(path); err != nil {
		t.Fatal(err)
	}
	// The checkpoint was taken at steps == TotalSteps, so the resumed
	// run restores state and immediately completes.
	if err := tr2.Run(); err != nil {
		t.Fatal(err)
	}
	if got := tr2.ResumedUpdates(); got != tr.Learner().Agent().LearnSteps() {
		t.Errorf("ResumedUpdates = %d, want %d", got, tr.Learner().Agent().LearnSteps())
	}
	gotBytes, err := tr2.Learner().Agent().ActorBytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantBytes, gotBytes) {
		t.Fatal("restored trainer weights differ from checkpoint")
	}
	if got, want := tr2.Learner().Agent().LearnSteps(), tr.Learner().Agent().LearnSteps(); got != want {
		t.Fatalf("restored learn steps %d, want %d", got, want)
	}

	// Next-update parity: one more update on each learner from the
	// restored replay must produce bit-identical weights.
	tr.Learner().LearnStep(1)
	tr2.Learner().LearnStep(1)
	a, _ := tr.Learner().Agent().ActorBytes()
	b, _ := tr2.Learner().Agent().ActorBytes()
	if !bytes.Equal(a, b) {
		t.Fatal("post-restore update diverged from the original learner")
	}
}

// TestResumeRejectsMissingAndMismatched pins Resume error handling: a
// missing file fails at Resume time, and a checkpoint from a
// different agent configuration fails at restore time.
func TestResumeRejectsMissingAndMismatched(t *testing.T) {
	cfg := checkpointTrainerConfig(t, 40)
	tr, err := NewTrainer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Resume(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Error("Resume with a missing checkpoint did not error")
	}

	if err := tr.Run(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ck")
	if err := tr.Checkpoint(path); err != nil {
		t.Fatal(err)
	}
	other := checkpointTrainerConfig(t, 40)
	other.AgentConfig.Hidden = []int{8} // different topology
	tr2, err := NewTrainer(other)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr2.Resume(path); err != nil {
		t.Fatal(err)
	}
	if err := tr2.Run(); err == nil {
		t.Error("resume into a mismatched agent config did not error")
	}
}
