package apex

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"greennfv/internal/rpcutil"
)

// The RPC transport lets actors run in separate processes or on
// separate machines, matching the paper's six-node deployment where
// NF controllers on the chain-hosting servers feed one central
// learner. Payloads are gob-encoded by net/rpc. The trainer's remote
// mode (remote.go) serves a Learner here and spawns cmd/apexactor
// processes against it; LearnerService adds the connection-lifecycle
// half — actor registration with per-actor epochs, last-push
// heartbeats, push statistics, and the graceful drain signal that
// ends a round.
//
// Fault-tolerance contract: every Push/Pull carries the actor's
// (ID, epoch) pair issued by Register. A call without a live
// registration fails with ErrUnregisteredActor (retryable after
// re-registering — the normal path after a learner restart, whose
// fresh service has no epochs); a call with a superseded epoch fails
// with ErrStaleActorEpoch (fatal — the supervisor already respawned
// this rank, so the zombie must exit rather than corrupt its
// replacement's statistics). Per-call deadlines bound every client
// RPC so a hung connection can never wedge an actor.

// DefaultCallTimeout bounds one RPC round-trip (dial excluded) unless
// the caller overrides it. Pushes and pulls move at most a few
// hundred KB over loopback or a rack link; ten seconds is orders of
// magnitude above healthy latency while still unwedging a dead
// connection quickly.
const DefaultCallTimeout = 10 * time.Second

// Typed RPC failures. net/rpc flattens server-side errors into
// rpc.ServerError strings, so cross-process matching is by message
// prefix: keep these strings stable.
var (
	// ErrUnregisteredActor rejects a Push/Pull whose actor has no live
	// registration on this learner instance. Retryable: register (or
	// re-register, after a learner restart) and repeat the call.
	ErrUnregisteredActor = errors.New("apex: unregistered actor")
	// ErrStaleActorEpoch rejects a Push/Pull carrying an epoch that a
	// newer Register for the same actor ID has superseded. Fatal: the
	// caller is a zombie (its rank was respawned) and must exit.
	ErrStaleActorEpoch = errors.New("apex: stale actor epoch")
)

// IsUnregisteredActor reports whether err is an ErrUnregisteredActor
// rejection, locally or over RPC.
func IsUnregisteredActor(err error) bool { return rpcutil.Matches(err, ErrUnregisteredActor) }

// IsStaleActorEpoch reports whether err is an ErrStaleActorEpoch
// rejection, locally or over RPC.
func IsStaleActorEpoch(err error) bool { return rpcutil.Matches(err, ErrStaleActorEpoch) }

// DeadlineError is the retryable failure of an RPC call that exceeded
// its deadline; the underlying connection has been torn down. It is
// the shared rpcutil.DeadlineError.
type DeadlineError = rpcutil.DeadlineError

// PushArgs is the RPC request for experience submission.
type PushArgs struct {
	Batch []Experience
	// ActorID identifies the pushing actor (its rank) for the
	// learner-side per-actor statistics.
	ActorID int
	// Epoch is the registration epoch Register issued to this actor;
	// pushes from superseded epochs are rejected (ErrStaleActorEpoch).
	Epoch uint64
	// Version is the parameter version the actor is currently acting
	// with, so the learner can observe broadcast propagation.
	Version int
}

// PushReply acknowledges a push.
type PushReply struct {
	Accepted int
	// Drain tells the actor the learner has spent its budget: stop
	// generating experience and exit cleanly. The pushed batch is
	// still accepted.
	Drain bool
}

// RegisterArgs announces an actor to the learner.
type RegisterArgs struct {
	ActorID int
}

// RegisterReply returns the current parameter version so a freshly
// started actor can pull immediately, plus the registration epoch the
// actor must echo in every subsequent call.
type RegisterReply struct {
	Version int
	Epoch   uint64
}

// PullArgs requests parameters newer than HaveVersion, authenticated
// by the caller's registration.
type PullArgs struct {
	HaveVersion int
	// ActorID and Epoch identify the registered caller, with the same
	// rejection semantics as PushArgs.
	ActorID int
	Epoch   uint64
}

// PullReply carries the current version and, when newer, the
// serialized actor network.
type PullReply struct {
	Version    int
	ActorBytes []byte
}

// ActorStats is the learner-side record of one remote actor's
// connection lifecycle: what it pushed and which parameter version it
// last reported acting with.
type ActorStats struct {
	// Registered is true once the actor announced itself.
	Registered bool
	// Pushes and Transitions count experience submissions.
	Pushes, Transitions int
	// LastVersion is the newest parameter version the actor reported
	// (in a Push); it trails the learner's version by at most one
	// SyncEvery interval, which is how tests observe broadcast
	// propagation.
	LastVersion int
	// Restarts counts how many times Register superseded a previous
	// registration of the same actor ID (supervised respawns and
	// learner-restart re-registrations both land here).
	Restarts int
}

// actorRec is the service's internal per-actor record: the public
// stats plus the liveness state the fault-tolerance layer tracks.
type actorRec struct {
	ActorStats
	epoch    uint64
	lastPush time.Time
}

// LearnerService is the net/rpc wrapper around a Learner. Beyond the
// two LearnerAPI methods it tracks per-actor statistics, registration
// epochs and last-push heartbeats, and carries the drain signal that
// ends a remote training round gracefully.
type LearnerService struct {
	learner   *Learner
	drain     atomic.Bool
	mu        sync.Mutex
	actors    map[int]*actorRec
	nextEpoch uint64
}

// NewLearnerService wraps a learner for RPC registration.
func NewLearnerService(learner *Learner) *LearnerService {
	return &LearnerService{learner: learner, actors: make(map[int]*actorRec)}
}

// Register is the RPC method actors call at startup — and again after
// a learner restart or a supervised respawn. Each call issues a fresh
// epoch, implicitly fencing off any zombie still holding the previous
// one.
func (s *LearnerService) Register(args *RegisterArgs, reply *RegisterReply) error {
	s.mu.Lock()
	rec, ok := s.actors[args.ActorID]
	if !ok {
		rec = &actorRec{}
		s.actors[args.ActorID] = rec
	}
	if rec.Registered {
		rec.Restarts++
	}
	rec.Registered = true
	s.nextEpoch++
	rec.epoch = s.nextEpoch
	rec.lastPush = time.Now()
	reply.Epoch = rec.epoch
	s.mu.Unlock()
	v, _, err := s.learner.PullParams(0)
	if err != nil {
		return err
	}
	reply.Version = v
	return nil
}

// checkActor validates a caller's (ID, epoch) pair and returns its
// record. Caller holds mu.
func (s *LearnerService) checkActor(id int, epoch uint64) (*actorRec, error) {
	rec, ok := s.actors[id]
	if !ok || !rec.Registered {
		return nil, fmt.Errorf("%w %d: register first", ErrUnregisteredActor, id)
	}
	if epoch != rec.epoch {
		return nil, fmt.Errorf("%w: actor %d epoch %d superseded by %d",
			ErrStaleActorEpoch, id, epoch, rec.epoch)
	}
	return rec, nil
}

// Push is the RPC method actors call to submit experience. A batch
// pushed while the service is draining is still accepted (the
// experience is real; dropping it would waste actor work), but the
// reply tells the actor to stop. Unregistered or superseded callers
// are rejected before the batch touches the replay.
func (s *LearnerService) Push(args *PushArgs, reply *PushReply) error {
	s.mu.Lock()
	rec, err := s.checkActor(args.ActorID, args.Epoch)
	if err != nil {
		s.mu.Unlock()
		return err
	}
	rec.Pushes++
	rec.Transitions += len(args.Batch)
	if args.Version > rec.LastVersion {
		rec.LastVersion = args.Version
	}
	rec.lastPush = time.Now()
	s.mu.Unlock()
	if err := s.learner.PushExperience(args.Batch); err != nil {
		return err
	}
	reply.Accepted = len(args.Batch)
	reply.Drain = s.drain.Load()
	return nil
}

// Pull is the RPC method actors call to refresh parameters, with the
// same registration check as Push.
func (s *LearnerService) Pull(args *PullArgs, reply *PullReply) error {
	s.mu.Lock()
	_, err := s.checkActor(args.ActorID, args.Epoch)
	s.mu.Unlock()
	if err != nil {
		return err
	}
	v, data, err := s.learner.PullParams(args.HaveVersion)
	if err != nil {
		return err
	}
	reply.Version = v
	reply.ActorBytes = data
	return nil
}

// BeginDrain flips the drain flag: every subsequent Push reply asks
// its actor to stop. Called by the trainer once the update budget is
// spent (or the experience target reached).
func (s *LearnerService) BeginDrain() { s.drain.Store(true) }

// Draining reports whether drain has begun.
func (s *LearnerService) Draining() bool { return s.drain.Load() }

// ActorStats returns a copy of the per-actor records.
func (s *LearnerService) ActorStats() map[int]ActorStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[int]ActorStats, len(s.actors))
	for id, rec := range s.actors {
		out[id] = rec.ActorStats
	}
	return out
}

// LastPush returns the last heartbeat (Register or Push) of one actor
// and whether it has ever registered.
func (s *LearnerService) LastPush(id int) (time.Time, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.actors[id]
	if !ok || !rec.Registered {
		return time.Time{}, false
	}
	return rec.lastPush, true
}

// FleetIdle reports whether no registered actor has pushed within the
// given window — the heartbeat view a draining trainer uses to detect
// a wedged fleet. A fleet with no registered actors is idle.
func (s *LearnerService) FleetIdle(window time.Duration) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	cutoff := time.Now().Add(-window)
	for _, rec := range s.actors {
		if rec.Registered && rec.lastPush.After(cutoff) {
			return false
		}
	}
	return true
}

// Server hosts a Learner over TCP via a rpcutil.Server, which tracks
// its open connections so Close can tear them down instead of waiting
// for every actor to hang up.
type Server struct {
	learner *Learner
	service *LearnerService
	srv     *rpcutil.Server
}

// Serve starts an RPC server for the learner on addr (e.g.
// "127.0.0.1:0" for an ephemeral port). It returns once listening;
// connections are served in the background until Close.
func Serve(learner *Learner, addr string) (*Server, error) {
	if learner == nil {
		return nil, errors.New("apex: nil learner")
	}
	service := NewLearnerService(learner)
	srv, err := rpcutil.Serve("Learner", service, addr)
	if err != nil {
		return nil, err
	}
	return &Server{learner: learner, service: service, srv: srv}, nil
}

// Addr reports the listening address.
func (s *Server) Addr() string { return s.srv.Addr() }

// Service exposes the RPC service for lifecycle control (drain,
// per-actor stats).
func (s *Server) Service() *LearnerService { return s.service }

// Close stops accepting connections, disconnects the remaining
// clients, and waits for in-flight handlers. Actors surviving the
// learner see transport errors (and, if they use RemoteLearner,
// retry until the learner returns or their backoff budget runs out).
func (s *Server) Close() error { return s.srv.Close() }

// Client is a LearnerAPI backed by a single TCP connection to a
// Server (an embedded rpcutil.Conn, whose Timeout field bounds each
// call); once the connection drops its calls fail permanently. Actor
// processes use RemoteLearner, which wraps the same calls with
// redial-and-retry. Push and Pull require a prior RegisterAs — the
// server rejects anonymous callers.
type Client struct {
	*rpcutil.Conn

	mu      sync.Mutex
	actorID int
	epoch   uint64
}

// Dial connects to a learner server. The client starts with the
// DefaultCallTimeout per-call deadline.
func Dial(addr string) (*Client, error) {
	conn, err := rpcutil.Dial(addr, DefaultCallTimeout)
	if err != nil {
		return nil, fmt.Errorf("apex: %w", err)
	}
	return &Client{Conn: conn}, nil
}

// call invokes one RPC with the per-call deadline (rpcutil.Conn.Call).
func (c *Client) call(method string, args, reply any) error {
	return c.Conn.Call(method, args, reply)
}

// RegisterAs announces the client as the given actor, stores the
// issued epoch for subsequent Push/Pull calls, and returns the
// learner's current parameter version.
func (c *Client) RegisterAs(actorID int) (int, error) {
	var reply RegisterReply
	if err := c.call("Learner.Register", &RegisterArgs{ActorID: actorID}, &reply); err != nil {
		return 0, err
	}
	c.mu.Lock()
	c.actorID, c.epoch = actorID, reply.Epoch
	c.mu.Unlock()
	return reply.Version, nil
}

// identity returns the registered (ID, epoch) pair; epoch 0 — never
// registered — is rejected by the server.
func (c *Client) identity() (int, uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.actorID, c.epoch
}

// PushExperience implements LearnerAPI.
func (c *Client) PushExperience(batch []Experience) error {
	id, epoch := c.identity()
	var reply PushReply
	return c.call("Learner.Push", &PushArgs{Batch: batch, ActorID: id, Epoch: epoch}, &reply)
}

// PullParams implements LearnerAPI.
func (c *Client) PullParams(haveVersion int) (int, []byte, error) {
	id, epoch := c.identity()
	var reply PullReply
	if err := c.call("Learner.Pull", &PullArgs{HaveVersion: haveVersion, ActorID: id, Epoch: epoch}, &reply); err != nil {
		return 0, nil, err
	}
	return reply.Version, reply.ActorBytes, nil
}

// RetainsExperience implements LearnerAPI: batches are gob-serialized
// inside the synchronous Call, so nothing references the caller's
// slices once PushExperience returns.
func (c *Client) RetainsExperience() bool { return false }

var _ LearnerAPI = (*Client)(nil)
var _ LearnerAPI = (*Learner)(nil)
