package apex

import (
	"errors"
	"fmt"
	"net"
	"net/rpc"
	"sync"
	"sync/atomic"
)

// The RPC transport lets actors run in separate processes or on
// separate machines, matching the paper's six-node deployment where
// NF controllers on the chain-hosting servers feed one central
// learner. Payloads are gob-encoded by net/rpc. The trainer's remote
// mode (remote.go) serves a Learner here and spawns cmd/apexactor
// processes against it; LearnerService adds the connection-lifecycle
// half — actor registration, per-actor push statistics, and the
// graceful drain signal that ends a round.

// PushArgs is the RPC request for experience submission.
type PushArgs struct {
	Batch []Experience
	// ActorID identifies the pushing actor (its rank) for the
	// learner-side per-actor statistics.
	ActorID int
	// Version is the parameter version the actor is currently acting
	// with, so the learner can observe broadcast propagation.
	Version int
}

// PushReply acknowledges a push.
type PushReply struct {
	Accepted int
	// Drain tells the actor the learner has spent its budget: stop
	// generating experience and exit cleanly. The pushed batch is
	// still accepted.
	Drain bool
}

// RegisterArgs announces an actor to the learner.
type RegisterArgs struct {
	ActorID int
}

// RegisterReply returns the current parameter version so a freshly
// started actor can pull immediately.
type RegisterReply struct {
	Version int
}

// PullArgs requests parameters newer than HaveVersion.
type PullArgs struct {
	HaveVersion int
}

// PullReply carries the current version and, when newer, the
// serialized actor network.
type PullReply struct {
	Version    int
	ActorBytes []byte
}

// ActorStats is the learner-side record of one remote actor's
// connection lifecycle: what it pushed and which parameter version it
// last reported acting with.
type ActorStats struct {
	// Registered is true once the actor announced itself.
	Registered bool
	// Pushes and Transitions count experience submissions.
	Pushes, Transitions int
	// LastVersion is the newest parameter version the actor reported
	// (in a Push); it trails the learner's version by at most one
	// SyncEvery interval, which is how tests observe broadcast
	// propagation.
	LastVersion int
}

// LearnerService is the net/rpc wrapper around a Learner. Beyond the
// two LearnerAPI methods it tracks per-actor statistics and carries
// the drain signal that ends a remote training round gracefully.
type LearnerService struct {
	learner *Learner
	drain   atomic.Bool
	mu      sync.Mutex
	actors  map[int]*ActorStats
}

// NewLearnerService wraps a learner for RPC registration.
func NewLearnerService(learner *Learner) *LearnerService {
	return &LearnerService{learner: learner, actors: make(map[int]*ActorStats)}
}

// Register is the RPC method actors call once at startup.
func (s *LearnerService) Register(args *RegisterArgs, reply *RegisterReply) error {
	s.mu.Lock()
	s.stats(args.ActorID).Registered = true
	s.mu.Unlock()
	v, _, err := s.learner.PullParams(0)
	if err != nil {
		return err
	}
	reply.Version = v
	return nil
}

// stats returns the record for one actor. Caller holds mu.
func (s *LearnerService) stats(id int) *ActorStats {
	st, ok := s.actors[id]
	if !ok {
		st = &ActorStats{}
		s.actors[id] = st
	}
	return st
}

// Push is the RPC method actors call to submit experience. A batch
// pushed while the service is draining is still accepted (the
// experience is real; dropping it would waste actor work), but the
// reply tells the actor to stop.
func (s *LearnerService) Push(args *PushArgs, reply *PushReply) error {
	if err := s.learner.PushExperience(args.Batch); err != nil {
		return err
	}
	s.mu.Lock()
	st := s.stats(args.ActorID)
	st.Pushes++
	st.Transitions += len(args.Batch)
	if args.Version > st.LastVersion {
		st.LastVersion = args.Version
	}
	s.mu.Unlock()
	reply.Accepted = len(args.Batch)
	reply.Drain = s.drain.Load()
	return nil
}

// Pull is the RPC method actors call to refresh parameters.
func (s *LearnerService) Pull(args *PullArgs, reply *PullReply) error {
	v, data, err := s.learner.PullParams(args.HaveVersion)
	if err != nil {
		return err
	}
	reply.Version = v
	reply.ActorBytes = data
	return nil
}

// BeginDrain flips the drain flag: every subsequent Push reply asks
// its actor to stop. Called by the trainer once the update budget is
// spent (or the experience target reached).
func (s *LearnerService) BeginDrain() { s.drain.Store(true) }

// Draining reports whether drain has begun.
func (s *LearnerService) Draining() bool { return s.drain.Load() }

// ActorStats returns a copy of the per-actor records.
func (s *LearnerService) ActorStats() map[int]ActorStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[int]ActorStats, len(s.actors))
	for id, st := range s.actors {
		out[id] = *st
	}
	return out
}

// Server hosts a Learner over TCP. It tracks its open connections so
// Close can tear them down: an rpc.ServeConn handler otherwise blocks
// reading the next request until its *client* hangs up, which would
// make Close wait on actors that never disconnect.
type Server struct {
	learner  *Learner
	service  *LearnerService
	listener net.Listener
	rpcSrv   *rpc.Server
	wg       sync.WaitGroup
	mu       sync.Mutex
	conns    map[net.Conn]struct{}
	closed   bool
}

// Serve starts an RPC server for the learner on addr (e.g.
// "127.0.0.1:0" for an ephemeral port). It returns once listening;
// connections are served in the background until Close.
func Serve(learner *Learner, addr string) (*Server, error) {
	if learner == nil {
		return nil, errors.New("apex: nil learner")
	}
	srv := rpc.NewServer()
	service := NewLearnerService(learner)
	if err := srv.RegisterName("Learner", service); err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		learner: learner, service: service, listener: ln, rpcSrv: srv,
		conns: make(map[net.Conn]struct{}),
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			s.mu.Lock()
			if s.closed {
				s.mu.Unlock()
				conn.Close()
				return
			}
			s.conns[conn] = struct{}{}
			s.mu.Unlock()
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				srv.ServeConn(conn)
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
			}()
		}
	}()
	return s, nil
}

// Addr reports the listening address.
func (s *Server) Addr() string { return s.listener.Addr().String() }

// Service exposes the RPC service for lifecycle control (drain,
// per-actor stats).
func (s *Server) Service() *LearnerService { return s.service }

// Close stops accepting connections, disconnects the remaining
// clients, and waits for in-flight handlers. Actors surviving the
// learner see transport errors (and, if they use RemoteLearner,
// retry until the learner returns or their backoff budget runs out).
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	err := s.listener.Close()
	s.wg.Wait()
	return err
}

// Client is a LearnerAPI backed by a single TCP connection to a
// Server; once the connection drops its calls fail permanently. Actor
// processes use RemoteLearner, which wraps the same calls with
// redial-and-retry.
type Client struct {
	rc *rpc.Client
}

// Dial connects to a learner server.
func Dial(addr string) (*Client, error) {
	rc, err := rpc.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("apex: dial %s: %w", addr, err)
	}
	return &Client{rc: rc}, nil
}

// PushExperience implements LearnerAPI.
func (c *Client) PushExperience(batch []Experience) error {
	var reply PushReply
	return c.rc.Call("Learner.Push", &PushArgs{Batch: batch}, &reply)
}

// PullParams implements LearnerAPI.
func (c *Client) PullParams(haveVersion int) (int, []byte, error) {
	var reply PullReply
	if err := c.rc.Call("Learner.Pull", &PullArgs{HaveVersion: haveVersion}, &reply); err != nil {
		return 0, nil, err
	}
	return reply.Version, reply.ActorBytes, nil
}

// RetainsExperience implements LearnerAPI: batches are gob-serialized
// inside the synchronous Call, so nothing references the caller's
// slices once PushExperience returns.
func (c *Client) RetainsExperience() bool { return false }

// Close releases the connection.
func (c *Client) Close() error { return c.rc.Close() }

var _ LearnerAPI = (*Client)(nil)
var _ LearnerAPI = (*Learner)(nil)
