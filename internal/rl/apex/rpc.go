package apex

import (
	"errors"
	"fmt"
	"net"
	"net/rpc"
	"sync"
)

// The RPC transport lets actors run in separate processes or on
// separate machines, matching the paper's six-node deployment where
// NF controllers on the chain-hosting servers feed one central
// learner. Payloads are gob-encoded by net/rpc.

// PushArgs is the RPC request for experience submission.
type PushArgs struct {
	Batch []Experience
}

// PushReply acknowledges a push.
type PushReply struct {
	Accepted int
}

// PullArgs requests parameters newer than HaveVersion.
type PullArgs struct {
	HaveVersion int
}

// PullReply carries the current version and, when newer, the
// serialized actor network.
type PullReply struct {
	Version    int
	ActorBytes []byte
}

// LearnerService is the net/rpc wrapper around a Learner.
type LearnerService struct {
	learner *Learner
}

// Push is the RPC method actors call to submit experience.
func (s *LearnerService) Push(args *PushArgs, reply *PushReply) error {
	if err := s.learner.PushExperience(args.Batch); err != nil {
		return err
	}
	reply.Accepted = len(args.Batch)
	return nil
}

// Pull is the RPC method actors call to refresh parameters.
func (s *LearnerService) Pull(args *PullArgs, reply *PullReply) error {
	v, data, err := s.learner.PullParams(args.HaveVersion)
	if err != nil {
		return err
	}
	reply.Version = v
	reply.ActorBytes = data
	return nil
}

// Server hosts a Learner over TCP.
type Server struct {
	learner  *Learner
	listener net.Listener
	rpcSrv   *rpc.Server
	wg       sync.WaitGroup
	mu       sync.Mutex
	closed   bool
}

// Serve starts an RPC server for the learner on addr (e.g.
// "127.0.0.1:0" for an ephemeral port). It returns once listening;
// connections are served in the background until Close.
func Serve(learner *Learner, addr string) (*Server, error) {
	if learner == nil {
		return nil, errors.New("apex: nil learner")
	}
	srv := rpc.NewServer()
	if err := srv.RegisterName("Learner", &LearnerService{learner: learner}); err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{learner: learner, listener: ln, rpcSrv: srv}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				srv.ServeConn(conn)
			}()
		}
	}()
	return s, nil
}

// Addr reports the listening address.
func (s *Server) Addr() string { return s.listener.Addr().String() }

// Close stops accepting connections and waits for in-flight handlers.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	err := s.listener.Close()
	s.wg.Wait()
	return err
}

// Client is a LearnerAPI backed by a TCP connection to a Server.
type Client struct {
	rc *rpc.Client
}

// Dial connects to a learner server.
func Dial(addr string) (*Client, error) {
	rc, err := rpc.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("apex: dial %s: %w", addr, err)
	}
	return &Client{rc: rc}, nil
}

// PushExperience implements LearnerAPI.
func (c *Client) PushExperience(batch []Experience) error {
	var reply PushReply
	return c.rc.Call("Learner.Push", &PushArgs{Batch: batch}, &reply)
}

// PullParams implements LearnerAPI.
func (c *Client) PullParams(haveVersion int) (int, []byte, error) {
	var reply PullReply
	if err := c.rc.Call("Learner.Pull", &PullArgs{HaveVersion: haveVersion}, &reply); err != nil {
		return 0, nil, err
	}
	return reply.Version, reply.ActorBytes, nil
}

// Close releases the connection.
func (c *Client) Close() error { return c.rc.Close() }

var _ LearnerAPI = (*Client)(nil)
var _ LearnerAPI = (*Learner)(nil)
