package apex

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"greennfv/internal/env"
	"greennfv/internal/perfmodel"
	"greennfv/internal/rl/ddpg"
	"greennfv/internal/rl/replay"
)

// Experience is one transition plus its actor-side initial priority,
// the unit pushed to the central replay.
type Experience struct {
	State     []float64
	Action    []float64
	Reward    float64
	NextState []float64
	Done      bool
	Priority  float64
}

// LearnerAPI is the surface actors need from the central learner.
// Three implementations satisfy it: the in-process Learner, the plain
// RPC Client, and the reconnecting RemoteLearner that actor processes
// use.
type LearnerAPI interface {
	// PushExperience appends a batch to the central replay.
	PushExperience(batch []Experience) error
	// PullParams returns the current parameter version and the
	// serialized actor network when newer than haveVersion
	// (nil bytes otherwise).
	PullParams(haveVersion int) (version int, actorBytes []byte, err error)
}

// Learner is the central learner process of Algorithm 3. The mutex
// guards only the parameter broadcast (version + cache); experience
// ingest goes straight to the goroutine-safe replay buffer, so actors
// pushing chunks never wait behind a learning step.
type Learner struct {
	mu      sync.Mutex
	agent   *ddpg.Agent
	version int
	// cached broadcast of the current actor network.
	paramCache []byte
	pushes     atomic.Int64
	received   atomic.Int64
}

// NewLearner wraps a DDPG agent (which owns the central prioritized
// replay) as the learner.
func NewLearner(agent *ddpg.Agent) (*Learner, error) {
	if agent == nil {
		return nil, errors.New("apex: nil agent")
	}
	if !agent.Config().Prioritized {
		return nil, errors.New("apex: learner requires prioritized replay")
	}
	l := &Learner{agent: agent, version: 1}
	if err := l.refreshParamCache(); err != nil {
		return nil, err
	}
	return l, nil
}

// Agent exposes the learner's agent (for evaluation after training).
func (l *Learner) Agent() *ddpg.Agent { return l.agent }

// pushScratch recycles the conversion buffers PushExperience uses to
// turn Experience chunks into replay transitions plus priorities, so
// the steady-state ingest path allocates nothing.
type pushScratch struct {
	ts []replay.Transition
	ps []float64
}

var pushPool = sync.Pool{New: func() any { return &pushScratch{} }}

// PushExperience implements LearnerAPI. The whole chunk lands in the
// replay buffer through one batched call — with the sharded buffer of
// the parallel trainer that is a single shard-lock acquire — and the
// learner mutex is never taken, so concurrent pushes neither serialize
// each other nor stall behind a learning step.
func (l *Learner) PushExperience(batch []Experience) error {
	sc := pushPool.Get().(*pushScratch)
	sc.ts, sc.ps = sc.ts[:0], sc.ps[:0]
	for i := range batch {
		e := &batch[i]
		sc.ts = append(sc.ts, replay.Transition{
			State:     e.State,
			Action:    e.Action,
			Reward:    e.Reward,
			NextState: e.NextState,
			Done:      e.Done,
		})
		sc.ps = append(sc.ps, e.Priority)
	}
	l.agent.ObserveBatch(sc.ts, sc.ps)
	pushPool.Put(sc)
	l.pushes.Add(1)
	l.received.Add(int64(len(batch)))
	return nil
}

// PullParams implements LearnerAPI.
func (l *Learner) PullParams(haveVersion int) (int, []byte, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if haveVersion >= l.version {
		return l.version, nil, nil
	}
	return l.version, l.paramCache, nil
}

// LearnStep runs one DDPG update and bumps the parameter version
// every versionEvery completed updates. It returns the critic loss.
// A call that could not update (replay below one batch) leaves the
// version alone, so actors are not rebroadcast identical parameters.
func (l *Learner) LearnStep(versionEvery int) float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	before := l.agent.LearnSteps()
	loss := l.agent.Learn()
	if l.agent.LearnSteps() == before {
		return loss // no-op: not enough experience yet
	}
	if versionEvery <= 0 {
		versionEvery = 1
	}
	if l.agent.LearnSteps()%versionEvery == 0 {
		l.version++
		if err := l.refreshParamCache(); err != nil {
			// Serialization of a healthy network cannot fail; treat
			// it as a programming error.
			panic(fmt.Sprintf("apex: param cache: %v", err))
		}
	}
	return loss
}

// LearnBatchStep runs one update on a prefetched minibatch (the
// parallel pipeline's path). Unlike LearnStep it does not hold the
// learner mutex during the network update: the networks are touched
// only from the learner goroutine, and the parameter broadcast —
// the sole state actors read — is refreshed under the mutex after
// the update completes.
func (l *Learner) LearnBatchStep(samples []replay.Transition, indices []int, weights []float64, versionEvery int) float64 {
	before := l.agent.LearnSteps()
	loss := l.agent.LearnBatch(samples, indices, weights)
	if l.agent.LearnSteps() == before {
		return loss // no-op batch
	}
	if versionEvery <= 0 {
		versionEvery = 1
	}
	if l.agent.LearnSteps()%versionEvery == 0 {
		l.mu.Lock()
		l.version++
		err := l.refreshParamCache()
		l.mu.Unlock()
		if err != nil {
			// Serialization of a healthy network cannot fail; treat
			// it as a programming error.
			panic(fmt.Sprintf("apex: param cache: %v", err))
		}
	}
	return loss
}

// refreshParamCache re-serializes the actor. Caller holds mu (or is
// the constructor).
func (l *Learner) refreshParamCache() error {
	data, err := l.agent.ActorBytes()
	if err != nil {
		return err
	}
	l.paramCache = data
	return nil
}

// Stats reports how much experience the learner has received.
func (l *Learner) Stats() (pushes, transitions int) {
	return int(l.pushes.Load()), int(l.received.Load())
}

// Actor is one NF controller (Algorithm 3's NF_CONTROLLER): it acts
// in its own environment with its own exploration intensity, buffers
// experience locally, and exchanges data with the learner.
type Actor struct {
	ID    int
	env   *env.Env
	agent *ddpg.Agent // local network copy: acting + TD priorities only

	state   []float64
	obsBuf  []float64 // reused next-observation buffer for StepInto
	local   []Experience
	version int

	// Steps between pushes and parameter pulls.
	pushEvery, syncEvery int
	steps                int
}

// ActorConfig builds one actor.
type ActorConfig struct {
	ID int
	// Env is the actor's private environment instance.
	Env *env.Env
	// AgentConfig shapes the local network copy; exploration sigma
	// is typically varied per actor (Ape-X's ε_i ladder).
	AgentConfig ddpg.Config
	// PushEvery is the local-buffer flush interval in steps
	// (Algorithm 3 line 8 "periodically").
	PushEvery int
	// SyncEvery is the parameter-pull interval in steps
	// (Algorithm 3 lines 2 and 9).
	SyncEvery int
}

// NewActor builds an actor.
func NewActor(cfg ActorConfig) (*Actor, error) {
	if cfg.Env == nil {
		return nil, errors.New("apex: actor needs an environment")
	}
	if cfg.PushEvery <= 0 || cfg.SyncEvery <= 0 {
		return nil, errors.New("apex: PushEvery and SyncEvery must be positive")
	}
	agent, err := ddpg.New(cfg.AgentConfig)
	if err != nil {
		return nil, err
	}
	a := &Actor{
		ID:        cfg.ID,
		env:       cfg.Env,
		agent:     agent,
		pushEvery: cfg.PushEvery,
		syncEvery: cfg.SyncEvery,
	}
	a.state = cfg.Env.Reset(cfg.AgentConfig.Seed)
	a.obsBuf = make([]float64, cfg.Env.StateDim())
	return a, nil
}

// Env exposes the actor's environment (for snapshotting knobs).
func (a *Actor) Env() *env.Env { return a.env }

// Step runs one acting step against the learner: act, observe,
// buffer, and periodically push/pull. It returns the step's reward
// and measurement.
func (a *Actor) Step(learner LearnerAPI) (float64, perfmodel.Result, error) {
	action, err := a.agent.Act(a.state, true)
	if err != nil {
		return 0, perfmodel.Result{}, err
	}
	// StepInto reuses the actor's observation buffer; the replay
	// transition still gets its own copies, which the buffer swap
	// below cannot invalidate.
	reward, info, err := a.env.StepInto(action, a.obsBuf)
	if err != nil {
		return 0, perfmodel.Result{}, err
	}
	tr := replay.Transition{
		State:     append([]float64(nil), a.state...),
		Action:    action,
		Reward:    reward,
		NextState: append([]float64(nil), a.obsBuf...),
	}
	prio := math.Abs(a.agent.TDError(tr))
	a.local = append(a.local, Experience{
		State: tr.State, Action: tr.Action, Reward: tr.Reward,
		NextState: tr.NextState, Priority: prio,
	})
	a.state, a.obsBuf = a.obsBuf, a.state
	a.steps++

	if a.steps%a.pushEvery == 0 {
		if err := a.Flush(learner); err != nil {
			return reward, info, err
		}
	}
	if a.steps%a.syncEvery == 0 {
		if err := a.SyncParams(learner); err != nil {
			return reward, info, err
		}
	}
	return reward, info, nil
}

// Flush pushes any locally buffered experience to the learner. Step
// calls it at the PushEvery cadence; remote actors also call it when
// a run ends between boundaries, so no transitions are lost.
func (a *Actor) Flush(learner LearnerAPI) error {
	if len(a.local) == 0 {
		return nil
	}
	if err := learner.PushExperience(a.local); err != nil {
		return fmt.Errorf("apex: push: %w", err)
	}
	a.local = nil
	return nil
}

// SyncParams pulls the learner's parameters when newer than the
// actor's. Step calls it at the SyncEvery cadence; remote actors also
// call it at startup so they act on the broadcast policy instead of
// their own fresh random weights.
func (a *Actor) SyncParams(learner LearnerAPI) error {
	v, data, err := learner.PullParams(a.version)
	if err != nil {
		return fmt.Errorf("apex: pull: %w", err)
	}
	if data != nil {
		if err := a.agent.LoadActorBytes(data); err != nil {
			return fmt.Errorf("apex: load params: %w", err)
		}
	}
	a.version = v
	return nil
}

// Steps reports how many environment steps the actor has taken.
func (a *Actor) Steps() int { return a.steps }
