package apex

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"greennfv/internal/env"
	"greennfv/internal/perfmodel"
	"greennfv/internal/rl/ddpg"
	"greennfv/internal/rl/replay"
)

// Experience is one transition plus its actor-side initial priority,
// the unit pushed to the central replay.
type Experience struct {
	State     []float64
	Action    []float64
	Reward    float64
	NextState []float64
	Done      bool
	Priority  float64
}

// LearnerAPI is the surface actors need from the central learner.
// Three implementations satisfy it: the in-process Learner, the plain
// RPC Client, and the reconnecting RemoteLearner that actor processes
// use.
type LearnerAPI interface {
	// PushExperience appends a batch to the central replay.
	PushExperience(batch []Experience) error
	// PullParams returns the current parameter version and the
	// serialized actor network when newer than haveVersion
	// (nil bytes otherwise).
	PullParams(haveVersion int) (version int, actorBytes []byte, err error)
	// RetainsExperience reports whether pushed batches' float slices
	// stay referenced after PushExperience returns. The in-process
	// Learner aliases them into the replay buffer forever; the RPC
	// implementations serialize them onto the wire and retain nothing.
	// Actors use this to decide whether flushed arena chunks can be
	// recycled (see txnArena).
	RetainsExperience() bool
}

// Learner is the central learner process of Algorithm 3. The mutex
// guards only the parameter broadcast (version + cache); experience
// ingest goes straight to the goroutine-safe replay buffer, so actors
// pushing chunks never wait behind a learning step.
type Learner struct {
	mu      sync.Mutex
	agent   *ddpg.Agent
	version int
	// cached broadcast of the current actor network.
	paramCache []byte
	pushes     atomic.Int64
	received   atomic.Int64
	// ingestCh carries a (coalesced) wake-up per PushExperience so the
	// SamplesPerInsert pacing gate (prefetch.go) can block on ingest
	// instead of polling the received counter.
	ingestCh chan struct{}
}

// NewLearner wraps a DDPG agent (which owns the central prioritized
// replay) as the learner.
func NewLearner(agent *ddpg.Agent) (*Learner, error) {
	if agent == nil {
		return nil, errors.New("apex: nil agent")
	}
	if !agent.Config().Prioritized {
		return nil, errors.New("apex: learner requires prioritized replay")
	}
	l := &Learner{agent: agent, version: 1, ingestCh: make(chan struct{}, 1)}
	if err := l.refreshParamCache(); err != nil {
		return nil, err
	}
	return l, nil
}

// Agent exposes the learner's agent (for evaluation after training).
func (l *Learner) Agent() *ddpg.Agent { return l.agent }

// pushScratch recycles the conversion buffers PushExperience uses to
// turn Experience chunks into replay transitions plus priorities, so
// the steady-state ingest path allocates nothing.
type pushScratch struct {
	ts []replay.Transition
	ps []float64
}

var pushPool = sync.Pool{New: func() any { return &pushScratch{} }}

// PushExperience implements LearnerAPI. The whole chunk lands in the
// replay buffer through one batched call — with the sharded buffer of
// the parallel trainer that is a single shard-lock acquire — and the
// learner mutex is never taken, so concurrent pushes neither serialize
// each other nor stall behind a learning step.
func (l *Learner) PushExperience(batch []Experience) error {
	sc := pushPool.Get().(*pushScratch)
	sc.ts, sc.ps = sc.ts[:0], sc.ps[:0]
	for i := range batch {
		e := &batch[i]
		sc.ts = append(sc.ts, replay.Transition{
			State:     e.State,
			Action:    e.Action,
			Reward:    e.Reward,
			NextState: e.NextState,
			Done:      e.Done,
		})
		sc.ps = append(sc.ps, e.Priority)
	}
	l.agent.ObserveBatch(sc.ts, sc.ps)
	pushPool.Put(sc)
	l.pushes.Add(1)
	l.received.Add(int64(len(batch)))
	select { // coalesced ingest wake-up for the pacing gate
	case l.ingestCh <- struct{}{}:
	default:
	}
	return nil
}

// RetainsExperience implements LearnerAPI: the replay buffer aliases
// pushed slices (replay.Transition stores them without copying), so
// actors must not reuse flushed chunks.
func (l *Learner) RetainsExperience() bool { return true }

// ingestNotify exposes the coalesced push wake-up channel to the
// pacing gate.
func (l *Learner) ingestNotify() <-chan struct{} { return l.ingestCh }

// PullParams implements LearnerAPI.
func (l *Learner) PullParams(haveVersion int) (int, []byte, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if haveVersion >= l.version {
		return l.version, nil, nil
	}
	return l.version, l.paramCache, nil
}

// LearnStep runs one DDPG update and bumps the parameter version
// every versionEvery completed updates. It returns the critic loss.
// A call that could not update (replay below one batch) leaves the
// version alone, so actors are not rebroadcast identical parameters.
func (l *Learner) LearnStep(versionEvery int) float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	before := l.agent.LearnSteps()
	loss := l.agent.Learn()
	if l.agent.LearnSteps() == before {
		return loss // no-op: not enough experience yet
	}
	if versionEvery <= 0 {
		versionEvery = 1
	}
	if l.agent.LearnSteps()%versionEvery == 0 {
		l.version++
		if err := l.refreshParamCache(); err != nil {
			// Serialization of a healthy network cannot fail; treat
			// it as a programming error.
			panic(fmt.Sprintf("apex: param cache: %v", err))
		}
	}
	return loss
}

// LearnBatchStep runs one update on a prefetched minibatch (the
// parallel pipeline's path). Unlike LearnStep it does not hold the
// learner mutex during the network update: the networks are touched
// only from the learner goroutine, and the parameter broadcast —
// the sole state actors read — is refreshed under the mutex after
// the update completes.
func (l *Learner) LearnBatchStep(samples []replay.Transition, indices []int, weights []float64, versionEvery int) float64 {
	before := l.agent.LearnSteps()
	loss := l.agent.LearnBatch(samples, indices, weights)
	if l.agent.LearnSteps() == before {
		return loss // no-op batch
	}
	if versionEvery <= 0 {
		versionEvery = 1
	}
	if l.agent.LearnSteps()%versionEvery == 0 {
		l.mu.Lock()
		l.version++
		err := l.refreshParamCache()
		l.mu.Unlock()
		if err != nil {
			// Serialization of a healthy network cannot fail; treat
			// it as a programming error.
			panic(fmt.Sprintf("apex: param cache: %v", err))
		}
	}
	return loss
}

// refreshParamCache re-serializes the actor. Caller holds mu (or is
// the constructor).
func (l *Learner) refreshParamCache() error {
	data, err := l.agent.ActorBytes()
	if err != nil {
		return err
	}
	l.paramCache = data
	return nil
}

// Stats reports how much experience the learner has received.
func (l *Learner) Stats() (pushes, transitions int) {
	return int(l.pushes.Load()), int(l.received.Load())
}

// Actor is one NF controller (Algorithm 3's NF_CONTROLLER): it acts
// in its own environment with its own exploration intensity, buffers
// experience locally, and exchanges data with the learner.
//
// The acting step is allocation-free: transitions live in a pooled
// arena (arena.go) handed off at Flush granularity, and TD-error
// priorities are settled lazily in one ddpg.TDErrorBatch pass per
// flush window instead of one scalar forward chain per step. The
// deferral is value-exact: the priority networks (target actor, target
// critic, critic) are never touched by parameter syncs — broadcasts
// carry only the policy network — so a TD error computed at Flush is
// bit-identical to one computed at Step time.
type Actor struct {
	ID    int
	env   env.Stepper
	agent *ddpg.Agent // local network copy: acting + TD priorities only

	state   []float64
	obsBuf  []float64 // reused next-observation buffer for StepInto
	local   []Experience
	version int

	// Batched-priority machinery: arena rows back local's slices,
	// pend mirrors local as replay.Transitions for TDErrorBatch,
	// settled is the prefix of local whose priorities are final.
	arena   *txnArena
	pend    []replay.Transition
	tdBuf   []float64
	settled int
	verify  bool

	// Steps between pushes and parameter pulls.
	pushEvery, syncEvery int
	steps                int
}

// ActorConfig builds one actor.
type ActorConfig struct {
	ID int
	// Env is the actor's private environment instance (single-node
	// Env or multi-node ClusterEnv — anything satisfying Stepper).
	Env env.Stepper
	// AgentConfig shapes the local network copy; exploration sigma
	// is typically varied per actor (Ape-X's ε_i ladder).
	AgentConfig ddpg.Config
	// PushEvery is the local-buffer flush interval in steps
	// (Algorithm 3 line 8 "periodically").
	PushEvery int
	// SyncEvery is the parameter-pull interval in steps
	// (Algorithm 3 lines 2 and 9).
	SyncEvery int
	// VerifyPriorities cross-checks every batched TD-error priority
	// against the scalar ddpg.TDError path at settlement time and
	// fails the actor on any bit difference — the self-check the
	// remote e2e test switches on (cmd/apexactor -verifyprio). Only
	// meaningful on the f64 path.
	VerifyPriorities bool
}

// NewActor builds an actor.
func NewActor(cfg ActorConfig) (*Actor, error) {
	if cfg.Env == nil {
		return nil, errors.New("apex: actor needs an environment")
	}
	if cfg.PushEvery <= 0 || cfg.SyncEvery <= 0 {
		return nil, errors.New("apex: PushEvery and SyncEvery must be positive")
	}
	agent, err := ddpg.New(cfg.AgentConfig)
	if err != nil {
		return nil, err
	}
	a := &Actor{
		ID:        cfg.ID,
		env:       cfg.Env,
		agent:     agent,
		arena:     newTxnArena(cfg.Env.StateDim(), cfg.Env.ActionDim(), cfg.PushEvery),
		local:     make([]Experience, 0, cfg.PushEvery),
		pend:      make([]replay.Transition, 0, cfg.PushEvery),
		verify:    cfg.VerifyPriorities,
		pushEvery: cfg.PushEvery,
		syncEvery: cfg.SyncEvery,
	}
	a.state = cfg.Env.Reset(cfg.AgentConfig.Seed)
	a.obsBuf = make([]float64, cfg.Env.StateDim())
	return a, nil
}

// Env exposes the actor's environment (for snapshotting knobs).
func (a *Actor) Env() env.Stepper { return a.env }

// Step runs one acting step against the learner: act, observe,
// buffer, and periodically push/pull. It returns the step's reward
// and measurement.
//
// Steady state allocates nothing: the action is computed straight into
// its arena row (ddpg.ActInto), the state copies land in arena rows,
// and the priority is settled in the flush-window TDErrorBatch.
func (a *Actor) Step(learner LearnerAPI) (float64, perfmodel.Result, error) {
	stateRow, actionRow, nextRow := a.arena.next()
	copy(stateRow, a.state)
	if err := a.agent.ActInto(a.state, true, actionRow); err != nil {
		return 0, perfmodel.Result{}, err
	}
	// StepInto reuses the actor's observation buffer; the transition
	// keeps arena copies, which the buffer swap below cannot
	// invalidate.
	reward, info, err := a.env.StepInto(actionRow, a.obsBuf)
	if err != nil {
		return 0, perfmodel.Result{}, err
	}
	copy(nextRow, a.obsBuf)
	a.local = append(a.local, Experience{
		State: stateRow, Action: actionRow, Reward: reward, NextState: nextRow,
	})
	a.pend = append(a.pend, replay.Transition{
		State: stateRow, Action: actionRow, Reward: reward, NextState: nextRow,
	})
	a.state, a.obsBuf = a.obsBuf, a.state
	a.steps++

	if a.steps%a.pushEvery == 0 {
		if err := a.Flush(learner); err != nil {
			return reward, info, err
		}
	}
	if a.steps%a.syncEvery == 0 {
		if err := a.SyncParams(learner); err != nil {
			return reward, info, err
		}
	}
	return reward, info, nil
}

// settlePriorities computes the TD-error priorities of every
// still-unsettled buffered transition in one batched pass. Because the
// priority networks are frozen between parameter loads (and broadcasts
// never carry them at all), the batched values are bit-identical to
// the per-step scalar computation the actors used to run —
// VerifyPriorities checks exactly that.
func (a *Actor) settlePriorities() error {
	if a.settled == len(a.local) {
		return nil
	}
	fresh := a.pend[a.settled:]
	a.tdBuf = a.agent.TDErrorBatch(fresh, a.tdBuf)
	for i := range fresh {
		prio := math.Abs(a.tdBuf[i])
		if a.verify {
			if want := math.Abs(a.agent.TDError(fresh[i])); prio != want {
				return fmt.Errorf("apex: actor %d: batched priority %v != scalar %v at step %d",
					a.ID, prio, want, a.steps-len(fresh)+i+1)
			}
		}
		a.local[a.settled+i].Priority = prio
	}
	a.settled = len(a.local)
	return nil
}

// Flush settles priorities and pushes any locally buffered experience
// to the learner. Step calls it at the PushEvery cadence; remote
// actors also call it when a run ends between boundaries, so no
// transitions are lost. The staging buffers are reused afterwards;
// arena chunks are recycled only when the learner does not retain
// pushed slices.
func (a *Actor) Flush(learner LearnerAPI) error {
	if len(a.local) == 0 {
		return nil
	}
	if err := a.settlePriorities(); err != nil {
		return err
	}
	if err := learner.PushExperience(a.local); err != nil {
		return fmt.Errorf("apex: push: %w", err)
	}
	a.arena.release(learner.RetainsExperience())
	a.local = a.local[:0]
	a.pend = a.pend[:0]
	a.settled = 0
	return nil
}

// SyncParams pulls the learner's parameters when newer than the
// actor's. Step calls it at the SyncEvery cadence; remote actors also
// call it at startup so they act on the broadcast policy instead of
// their own fresh random weights. Pending priorities are settled
// first, keeping the settle-before-any-parameter-load invariant even
// though today's broadcasts only ever replace the policy network.
func (a *Actor) SyncParams(learner LearnerAPI) error {
	if err := a.settlePriorities(); err != nil {
		return err
	}
	v, data, err := learner.PullParams(a.version)
	if err != nil {
		return fmt.Errorf("apex: pull: %w", err)
	}
	if data != nil {
		if err := a.agent.LoadActorBytes(data); err != nil {
			return fmt.Errorf("apex: load params: %w", err)
		}
	}
	a.version = v
	return nil
}

// Steps reports how many environment steps the actor has taken.
func (a *Actor) Steps() int { return a.steps }
