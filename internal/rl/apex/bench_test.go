package apex

import (
	"testing"

	"greennfv/internal/rl/ddpg"
	"greennfv/internal/sla"
)

// benchActor builds one actor wired to an in-process learner, the
// configuration BenchmarkActorStep measures: a full act → env step →
// buffer+priority → periodic push cycle against the default cadence.
func benchActor(b *testing.B) (*Actor, *Learner) {
	b.Helper()
	e, err := envFactory(sla.NewEnergyEfficiency())(0)
	if err != nil {
		b.Fatal(err)
	}
	acfg := ddpg.DefaultConfig(e.StateDim(), e.ActionDim())
	acfg.Seed = 21
	learnerAgent, err := ddpg.New(acfg)
	if err != nil {
		b.Fatal(err)
	}
	learner, err := NewLearner(learnerAgent)
	if err != nil {
		b.Fatal(err)
	}
	actor, err := NewActor(ActorConfig{
		ID: 0, Env: e, AgentConfig: acfg,
		PushEvery: 8, SyncEvery: 16,
	})
	if err != nil {
		b.Fatal(err)
	}
	return actor, learner
}

// BenchmarkActorStep is one acting step of the Ape-X pipeline: policy
// forward, environment step, TD-error priority and the amortized
// push/flush cycle. The zero-alloc contract of the arena-backed step
// is pinned here (allocs/op must report 0; the only allocation left is
// the one arena chunk per PushEvery window that the in-process replay
// retains).
func BenchmarkActorStep(b *testing.B) {
	actor, learner := benchActor(b)
	// Warm the arena, local buffer and TD scratch.
	for i := 0; i < 64; i++ {
		if _, _, err := actor.Step(learner); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := actor.Step(learner); err != nil {
			b.Fatal(err)
		}
	}
}
