package apex

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// runParallel is the concurrent training mode of Horgan et al.: one
// goroutine per actor steps its private environment and exchanges
// experience/parameters with the learner through the goroutine-safe
// Learner (versioned parameter broadcast), while the learner drains
// its update budget on the shared prioritized replay. Wall-clock
// time approaches max(actor time, learner time) instead of their sum.
//
// The run is NOT deterministic: actor interleaving depends on the
// scheduler. Figure-quality reproducible runs use round-robin mode.
func (t *Trainer) runParallel() error {
	var (
		steps    atomic.Int64 // environment-step tickets issued
		stop     atomic.Bool  // set on first error to halt all workers
		errMu    sync.Mutex
		firstErr error
		snapMu   sync.Mutex
		wg       sync.WaitGroup
	)
	total := int64(t.cfg.TotalSteps)
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		stop.Store(true)
	}

	// Learner: run the same update budget the round-robin mode would
	// (LearnPerStep per post-warmup actor step), pacing itself behind
	// the actors' progress: updates start once warmup has passed AND
	// the replay holds at least one batch, so the budget is spent on
	// real gradient steps, not no-op Learn calls against an
	// under-filled buffer.
	budget := t.cfg.LearnPerStep * (t.cfg.TotalSteps - t.cfg.WarmupSteps)
	batch := t.learner.Agent().Config().BatchSize
	actorsDone := make(chan struct{})
	learnerDone := make(chan struct{})
	go func() {
		defer close(learnerDone)
		done := 0
		for done < budget && !stop.Load() {
			if steps.Load() <= int64(t.cfg.WarmupSteps) ||
				t.learner.Agent().BufferLen() < batch {
				select {
				case <-actorsDone:
					return // actors finished (or died) without enough data
				case <-time.After(100 * time.Microsecond):
				}
				continue
			}
			t.learner.LearnStep(t.cfg.VersionEvery)
			done++
			if done%64 == 0 {
				runtime.Gosched() // let actors at the learner mutex
			}
		}
	}()

	// Actors: claim global step tickets until the budget is spent.
	// Actor 0 also records training snapshots (it owns its env, so
	// reading the knobs is race-free).
	for _, actor := range t.actors {
		wg.Add(1)
		go func(a *Actor) {
			defer wg.Done()
			var lastSnap int64
			for !stop.Load() {
				n := steps.Add(1)
				if n > total {
					steps.Add(-1)
					return
				}
				reward, info, err := a.Step(t.learner)
				if err != nil {
					fail(fmt.Errorf("apex: actor %d: %w", a.ID, err))
					return
				}
				if a.ID == 0 && t.cfg.SnapshotEvery > 0 && n >= lastSnap+int64(t.cfg.SnapshotEvery) {
					lastSnap = n - n%int64(t.cfg.SnapshotEvery)
					snap := SnapshotOf(int(n), a.Env(), info, reward)
					snapMu.Lock()
					t.Snapshots = append(t.Snapshots, snap)
					snapMu.Unlock()
				}
				// Yield so every actor gets tickets even on a single
				// core (otherwise one goroutine can drain the whole
				// budget between preemption points).
				runtime.Gosched()
			}
		}(actor)
	}

	wg.Wait()
	close(actorsDone)
	<-learnerDone
	if n := steps.Load(); n > total {
		t.steps = int(total)
	} else {
		t.steps = int(n)
	}
	return firstErr
}
