package apex

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"greennfv/internal/env"
	"greennfv/internal/rl/ddpg"
	"greennfv/internal/rl/replay"
)

// The concurrent training mode of Horgan et al. is a three-stage
// pipeline over the lock-striped replay buffer:
//
//	driver  ── batched act/step ── staging chunks ── AddBatch
//	sampler ── SampleInto ──▶ ready channel ──▶ learner (LearnBatch)
//
// The acting half lives here and in vecactor.go: ONE driver goroutine
// steps all actors through a VecEnv with a single batched policy pass
// per step, replacing the per-actor goroutines (and their scalar
// forwards, atomic ticket counter and fairness yields) of the earlier
// design. The sampler/learner half is prefetch.go. The learner never
// touches a replay mutex actors contend on.

// defaultReplayShards sizes the lock stripes to the parallelism
// actually available, clamped to keep per-shard capacity useful.
func defaultReplayShards() int {
	shards := runtime.GOMAXPROCS(0)
	if shards < 2 {
		shards = 2
	}
	if shards > 16 {
		shards = 16
	}
	return shards
}

// installShardedReplay swaps the agent's replay for the lock-striped
// buffer while it is still empty, so concurrent ingest and sampling
// contend on shard locks, never on one global mutex. Shared by the
// parallel and remote modes (both take concurrent pushes).
func (t *Trainer) installShardedReplay(agent *ddpg.Agent) error {
	if agent.BufferLen() != 0 {
		return nil
	}
	acfg := agent.Config()
	shards := t.cfg.ReplayShards
	if shards <= 0 {
		shards = defaultReplayShards()
	}
	sharded, err := replay.NewSharded(acfg.BufferCap, shards,
		acfg.PERAlpha, acfg.PERBeta, acfg.PERBetaInc, acfg.Seed)
	if err != nil {
		return fmt.Errorf("apex: sharded replay: %w", err)
	}
	if err := agent.SetReplay(sharded); err != nil {
		return fmt.Errorf("apex: sharded replay: %w", err)
	}
	return nil
}

// runParallel executes the pipeline: the VecActor driver steps every
// actor environment with one batched policy pass per step and
// exchanges experience/parameters with the learner, while the sampler
// prefetches minibatches and the learner drains the same update budget
// the round-robin mode would spend. Wall-clock time approaches
// max(actor time, learner time) instead of their sum.
//
// The run is NOT deterministic: the learner's sampling interleaves
// with acting on the scheduler's terms. Figure-quality reproducible
// runs use round-robin mode.
func (t *Trainer) runParallel() error {
	agent := t.learner.Agent()
	acfg := agent.Config()
	batch := acfg.BatchSize

	if err := t.installShardedReplay(agent); err != nil {
		return err
	}
	if t.cfg.Float32 {
		// Learner updates run in single precision; the flush makes the
		// trained policy visible to the f64 side (GreedyEval,
		// SaveActor) once the run ends. The acting agent below gets its
		// own f32 switch (SetActFloat32) — the two paths never share a
		// network.
		agent.SetFloat32(true)
		defer agent.SetFloat32(false)
	}
	// Restore checkpoint state only after the replay implementation
	// and precision mode match the one that wrote it.
	if err := t.applyResume(); err != nil {
		return err
	}

	// Build the batched driver over the round-robin actors' resources:
	// their environments back the VecEnv, actor 0's agent becomes the
	// shared policy, and each actor's config ladder (rung sigma,
	// private seed) becomes a VecActor noise lane.
	n := len(t.actors)
	envs := make([]*env.Env, n)
	ladder := make([]ddpg.Config, n)
	for i, a := range t.actors {
		se, ok := a.Env().(*env.Env)
		if !ok {
			// VecEnv vectorizes the single-node env's fixed layout;
			// cluster environments train through the deterministic
			// round-robin path instead.
			return fmt.Errorf("apex: Parallel requires single-node environments, actor %d has %T", i, a.Env())
		}
		envs[i] = se
		ladder[i] = a.agent.Config()
	}
	// workers=1: per-env steps are microseconds of arithmetic, so the
	// inline single-worker path beats paying pool dispatch per round —
	// and the spare cores belong to the learner pipeline anyway.
	vec, err := env.NewVecEnv(envs, 1)
	if err != nil {
		return err
	}
	vec.Reset(acfg.Seed)
	vagent := t.actors[0].agent
	if t.cfg.Float32 {
		// Batched f32 actor fast path: acting and TD-error priorities
		// run through the vectorized f32 engine. Independent of the
		// learner's SetFloat32 above (different agent).
		vagent.SetActFloat32(true)
		defer vagent.SetActFloat32(false)
	}
	va := newVecActor(vagent, vec, noiseLadder(acfg.ActionDim, ladder),
		t.cfg.PushEvery, t.cfg.SyncEvery)

	var stop atomic.Bool
	var firstErr error
	total := t.cfg.TotalSteps
	rounds, rem := total/n, total%n

	// warmReady closes once warmup has passed AND the replay holds at
	// least one batch: the gate that lets the sampler spend the update
	// budget on real gradient steps, not no-op draws from an
	// under-filled buffer.
	warmReady := make(chan struct{})
	actorsDone := make(chan struct{})

	driverDone := make(chan struct{})
	go func() {
		defer close(driverDone)
		warmed := false
		lastSnap := 0
		for r := 0; r < rounds && !stop.Load(); r++ {
			reward0, info0, err := va.StepRound(t.learner)
			if err != nil {
				firstErr = fmt.Errorf("apex: vec actor: %w", err)
				stop.Store(true)
				return
			}
			steps := va.Steps()
			if !warmed && steps > t.cfg.WarmupSteps && agent.BufferLen() >= batch {
				warmed = true
				close(warmReady)
			}
			if t.cfg.SnapshotEvery > 0 && steps >= lastSnap+t.cfg.SnapshotEvery {
				lastSnap = steps - steps%t.cfg.SnapshotEvery
				t.Snapshots = append(t.Snapshots, SnapshotOf(steps, vec.Env(0), info0, reward0))
			}
		}
		if rem > 0 && !stop.Load() {
			if err := va.StepRemainder(t.learner, rem); err != nil {
				firstErr = fmt.Errorf("apex: vec actor: %w", err)
				stop.Store(true)
				return
			}
		}
		// Final flush so a tail shorter than PushEvery is not lost.
		if err := va.Flush(t.learner); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("apex: vec actor: %w", err)
			stop.Store(true)
		}
	}()

	learnerDone := t.startLearnerPipeline(agent, batch,
		t.cfg.LearnPerStep*(t.cfg.TotalSteps-t.cfg.WarmupSteps),
		&stop, warmReady, actorsDone)

	<-driverDone
	close(actorsDone)
	<-learnerDone

	// Attribute steps back to the per-actor records: a full round gives
	// every lane one step; the remainder went to the lowest lanes.
	done := va.Steps()
	q, r := done/n, done%n
	for i, a := range t.actors {
		a.steps = q
		if i < r {
			a.steps++
		}
	}
	t.steps = done
	return firstErr
}
