package apex

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"greennfv/internal/rl/ddpg"
	"greennfv/internal/rl/replay"
)

// The concurrent training mode of Horgan et al. is a three-stage
// pipeline over the lock-striped replay buffer:
//
//	actors  ── staging chunks ── AddBatch (one shard lock per chunk)
//	sampler ── SampleInto ──▶ ready channel ──▶ learner (LearnBatch)
//
// Actors live here; the sampler/learner half is prefetch.go. The
// learner never touches a replay mutex actors contend on, so the old
// poll-and-yield handoff between them is gone.

// defaultReplayShards sizes the lock stripes to the parallelism
// actually available, clamped to keep per-shard capacity useful.
func defaultReplayShards() int {
	shards := runtime.GOMAXPROCS(0)
	if shards < 2 {
		shards = 2
	}
	if shards > 16 {
		shards = 16
	}
	return shards
}

// installShardedReplay swaps the agent's replay for the lock-striped
// buffer while it is still empty, so concurrent ingest and sampling
// contend on shard locks, never on one global mutex. Shared by the
// parallel and remote modes (both take concurrent pushes).
func (t *Trainer) installShardedReplay(agent *ddpg.Agent) error {
	if agent.BufferLen() != 0 {
		return nil
	}
	acfg := agent.Config()
	shards := t.cfg.ReplayShards
	if shards <= 0 {
		shards = defaultReplayShards()
	}
	sharded, err := replay.NewSharded(acfg.BufferCap, shards,
		acfg.PERAlpha, acfg.PERBeta, acfg.PERBetaInc, acfg.Seed)
	if err != nil {
		return fmt.Errorf("apex: sharded replay: %w", err)
	}
	if err := agent.SetReplay(sharded); err != nil {
		return fmt.Errorf("apex: sharded replay: %w", err)
	}
	return nil
}

// runParallel executes the pipeline: one goroutine per actor steps
// its private environment and exchanges experience/parameters with
// the learner, the sampler prefetches minibatches, and the learner
// drains the same update budget the round-robin mode would spend.
// Wall-clock time approaches max(actor time, learner time) instead of
// their sum.
//
// The run is NOT deterministic: actor interleaving depends on the
// scheduler. Figure-quality reproducible runs use round-robin mode.
func (t *Trainer) runParallel() error {
	agent := t.learner.Agent()
	acfg := agent.Config()
	batch := acfg.BatchSize

	if err := t.installShardedReplay(agent); err != nil {
		return err
	}
	if t.cfg.Float32 {
		// Learner updates run in single precision; the flush makes the
		// trained policy visible to the f64 side (GreedyEval,
		// SaveActor) once the run ends. Actors are untouched — they
		// act through their own f64 copies either way.
		agent.SetFloat32(true)
		defer agent.SetFloat32(false)
	}

	var (
		steps    atomic.Int64 // environment-step tickets issued
		stop     atomic.Bool  // set on first error to halt all workers
		errMu    sync.Mutex
		firstErr error
		snapMu   sync.Mutex
		wg       sync.WaitGroup
		warmed   atomic.Bool
	)
	total := int64(t.cfg.TotalSteps)
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		stop.Store(true)
	}

	// warmReady closes once warmup has passed AND the replay holds at
	// least one batch: the gate that lets the sampler spend the update
	// budget on real gradient steps, not no-op draws from an
	// under-filled buffer.
	warmReady := make(chan struct{})
	actorsDone := make(chan struct{})

	// Actors: claim global step tickets until the budget is spent.
	// Actor 0 also records training snapshots (it owns its env, so
	// reading the knobs is race-free).
	for _, actor := range t.actors {
		wg.Add(1)
		go func(a *Actor) {
			defer wg.Done()
			var lastSnap int64
			for !stop.Load() {
				n := steps.Add(1)
				if n > total {
					steps.Add(-1)
					return
				}
				reward, info, err := a.Step(t.learner)
				if err != nil {
					fail(fmt.Errorf("apex: actor %d: %w", a.ID, err))
					return
				}
				if !warmed.Load() && n > int64(t.cfg.WarmupSteps) &&
					agent.BufferLen() >= batch &&
					warmed.CompareAndSwap(false, true) {
					close(warmReady)
				}
				if a.ID == 0 && t.cfg.SnapshotEvery > 0 && n >= lastSnap+int64(t.cfg.SnapshotEvery) {
					lastSnap = n - n%int64(t.cfg.SnapshotEvery)
					snap := SnapshotOf(int(n), a.Env(), info, reward)
					snapMu.Lock()
					t.Snapshots = append(t.Snapshots, snap)
					snapMu.Unlock()
				}
				// Cooperative fairness yield, NOT a contention
				// workaround: actors block on nothing, so on fewer
				// cores than goroutines one actor would otherwise
				// burn a whole ~10ms preemption slice claiming
				// hundreds of tickets, collapsing the per-actor
				// exploration ladder into single-actor bursts. The
				// learner pipeline (prefetch.go) blocks on channels
				// and needs no such yield.
				runtime.Gosched()
			}
		}(actor)
	}

	learnerDone := t.startLearnerPipeline(agent, batch,
		t.cfg.LearnPerStep*(t.cfg.TotalSteps-t.cfg.WarmupSteps),
		&stop, warmReady, actorsDone)

	wg.Wait()
	close(actorsDone)
	<-learnerDone
	if n := steps.Load(); n > total {
		t.steps = int(total)
	} else {
		t.steps = int(n)
	}
	return firstErr
}
