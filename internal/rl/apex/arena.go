package apex

// txnArena is the pooled backing store for an actor's staged
// transitions: one flat chunk holds the state/action/next-state rows
// of a whole PushEvery window, replacing the two per-transition
// `append([]float64(nil), …)` copies (and the per-step action
// allocation) the old Actor.Step paid.
//
// Lifecycle is tied to Flush and to whether the learner RETAINS pushed
// slices (LearnerAPI.RetainsExperience):
//
//   - Retaining learner (in-process: the replay buffer aliases pushed
//     slices forever): flushed chunks are handed off and a fresh chunk
//     backs the next window — ONE allocation per PushEvery steps,
//     which amortizes to 0 allocs/op.
//   - Non-retaining learner (RPC: batches are gob-serialized on the
//     wire): flushed chunks return to a free list and the steady state
//     allocates nothing at all.
//
// An arena belongs to one actor goroutine; no synchronization.
type txnArena struct {
	stateDim  int
	actionDim int
	rowLen    int // 2·stateDim + actionDim floats per transition
	rowsCap   int // transitions per chunk (the flush window)
	chunk     []float64
	used      int         // rows consumed in chunk
	overflow  [][]float64 // full chunks of the current window (early-flush slip)
	free      [][]float64 // recycled chunks (non-retaining learners only)
}

func newTxnArena(stateDim, actionDim, rows int) *txnArena {
	if rows < 1 {
		rows = 1
	}
	return &txnArena{
		stateDim:  stateDim,
		actionDim: actionDim,
		rowLen:    2*stateDim + actionDim,
		rowsCap:   rows,
	}
}

// next carves the three rows of one transition out of the current
// chunk: state, next-state, action. The full-capacity slice bounds
// keep an append on one row from bleeding into its neighbors.
func (ar *txnArena) next() (state, action, next []float64) {
	if ar.chunk == nil || ar.used == ar.rowsCap {
		if ar.chunk != nil {
			ar.overflow = append(ar.overflow, ar.chunk)
		}
		if n := len(ar.free); n > 0 {
			ar.chunk = ar.free[n-1]
			ar.free = ar.free[:n-1]
		} else {
			ar.chunk = make([]float64, ar.rowsCap*ar.rowLen)
		}
		ar.used = 0
	}
	base := ar.used * ar.rowLen
	ar.used++
	row := ar.chunk[base : base+ar.rowLen]
	sd := ar.stateDim
	state = row[:sd:sd]
	next = row[sd : 2*sd : 2*sd]
	action = row[2*sd : ar.rowLen : ar.rowLen]
	return state, action, next
}

// release ends a flush window. When the consumer retains the pushed
// slices the chunks are abandoned to it; otherwise they are recycled
// for the next window.
func (ar *txnArena) release(retained bool) {
	if !retained {
		if ar.chunk != nil {
			ar.free = append(ar.free, ar.chunk)
		}
		ar.free = append(ar.free, ar.overflow...)
	}
	ar.chunk = nil
	ar.used = 0
	ar.overflow = ar.overflow[:0]
}
