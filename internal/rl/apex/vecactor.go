package apex

import (
	"fmt"
	"math"
	"math/rand"

	"greennfv/internal/env"
	"greennfv/internal/perfmodel"
	"greennfv/internal/rl/ddpg"
	"greennfv/internal/rl/replay"
)

// VecActor drives every in-process parallel actor through ONE batched
// policy pass per environment step: the N actor goroutines of the old
// parallel mode (each running its own scalar Forward per step) are
// replaced by a single driver stepping a VecEnv, with ddpg.ActBatch
// computing all N actions in one network pass and ddpg.TDErrorBatch
// settling a whole flush window's priorities in three.
//
// The Ape-X exploration ladder survives batching: each lane keeps its
// own OU noise process (rung sigma, private RNG), only the policy
// network is shared. Sharing the network is exactly what the paper's
// actors do between broadcasts anyway — every lane acts on the same
// pulled parameters — and is only valid in the non-deterministic
// Parallel mode: round-robin actors keep their private agents, whose
// per-actor RNG streams the recorded figures depend on.
//
// Steady state allocates nothing: transitions land in pooled arena
// rows (arena.go), the VecEnv owns the state/action matrices, and the
// batch scratch inside the agent grows once and sticks.
type VecActor struct {
	agent  *ddpg.Agent // shared policy + priority networks
	vec    *env.VecEnv
	noises []*ddpg.OUNoise // per-lane exploration ladder
	n      int

	local   []Experience
	pend    []replay.Transition
	tdBuf   []float64
	settled int
	arena   *txnArena
	actFn   func(states []float64, n int, actions []float64) error

	version              int
	pushEvery, syncEvery int // in rounds == per-lane steps
	rounds               int
	steps                int // total environment steps across lanes
}

// newVecActor assembles the batched driver: one shared acting agent,
// the wrapped environments, and one OU process per lane. pushEvery and
// syncEvery are per-lane step cadences, as in ActorConfig — a round
// advances every lane by one step, so they are round cadences here.
func newVecActor(agent *ddpg.Agent, vec *env.VecEnv, noises []*ddpg.OUNoise, pushEvery, syncEvery int) *VecActor {
	n := vec.Len()
	rows := pushEvery * n
	v := &VecActor{
		agent:     agent,
		vec:       vec,
		noises:    noises,
		n:         n,
		local:     make([]Experience, 0, rows),
		pend:      make([]replay.Transition, 0, rows),
		arena:     newTxnArena(vec.StateDim(), vec.ActionDim(), rows),
		pushEvery: pushEvery,
		syncEvery: syncEvery,
	}
	// Preallocated closure: StepBatch's act hook must not capture per
	// round or every step pays an allocation.
	v.actFn = func(states []float64, n int, actions []float64) error {
		return v.agent.ActBatch(states, n, v.noises, actions)
	}
	return v
}

// noiseLadder builds the per-lane OU processes from the same config
// ladder NewTrainer gives round-robin actors: configs[i].OUSigma is
// lane i's rung and configs[i].Seed its private RNG stream.
func noiseLadder(actionDim int, configs []ddpg.Config) []*ddpg.OUNoise {
	noises := make([]*ddpg.OUNoise, len(configs))
	for i, c := range configs {
		rng := rand.New(rand.NewSource(c.Seed))
		noises[i] = ddpg.NewOUNoise(actionDim, c.OUTheta, c.OUSigma, rng)
	}
	return noises
}

// StepRound advances every lane one step through one batched
// act→step→record cycle and runs the push/sync cadences. It returns
// lane 0's reward and measurement (what the trainer snapshots).
func (v *VecActor) StepRound(learner LearnerAPI) (float64, perfmodel.Result, error) {
	prev, actions, obs, rewards, infos, err := v.vec.StepBatch(v.actFn)
	if err != nil {
		return 0, perfmodel.Result{}, err
	}
	sd, ad := v.vec.StateDim(), v.vec.ActionDim()
	for i := 0; i < v.n; i++ {
		stateRow, actionRow, nextRow := v.arena.next()
		copy(stateRow, prev[i*sd:(i+1)*sd])
		copy(actionRow, actions[i*ad:(i+1)*ad])
		copy(nextRow, obs[i*sd:(i+1)*sd])
		v.local = append(v.local, Experience{
			State: stateRow, Action: actionRow, Reward: rewards[i], NextState: nextRow,
		})
		v.pend = append(v.pend, replay.Transition{
			State: stateRow, Action: actionRow, Reward: rewards[i], NextState: nextRow,
		})
	}
	v.rounds++
	v.steps += v.n

	if v.rounds%v.pushEvery == 0 {
		if err := v.Flush(learner); err != nil {
			return rewards[0], infos[0], err
		}
	}
	if v.rounds%v.syncEvery == 0 {
		if err := v.SyncParams(learner); err != nil {
			return rewards[0], infos[0], err
		}
	}
	return rewards[0], infos[0], nil
}

// StepRemainder spends a TotalSteps%N tail smaller than one full
// round: one batched act over the first k lanes, then scalar env
// steps. Runs at most once per training run, so its small action
// scratch allocation is irrelevant.
func (v *VecActor) StepRemainder(learner LearnerAPI, k int) error {
	if k <= 0 {
		return nil
	}
	if k > v.n {
		k = v.n
	}
	sd, ad := v.vec.StateDim(), v.vec.ActionDim()
	states := v.vec.Obs()
	acts := make([]float64, k*ad)
	if err := v.agent.ActBatch(states, k, v.noises[:k], acts); err != nil {
		return err
	}
	for i := 0; i < k; i++ {
		stateRow, actionRow, nextRow := v.arena.next()
		copy(stateRow, states[i*sd:(i+1)*sd])
		copy(actionRow, acts[i*ad:(i+1)*ad])
		reward, _, err := v.vec.Env(i).StepInto(actionRow, nextRow)
		if err != nil {
			return fmt.Errorf("apex: lane %d: %w", i, err)
		}
		copy(states[i*sd:(i+1)*sd], nextRow) // keep vec.Obs coherent
		v.local = append(v.local, Experience{
			State: stateRow, Action: actionRow, Reward: reward, NextState: nextRow,
		})
		v.pend = append(v.pend, replay.Transition{
			State: stateRow, Action: actionRow, Reward: reward, NextState: nextRow,
		})
	}
	v.steps += k
	return nil
}

// settlePriorities batches the TD-error priorities of the unsettled
// suffix, exactly as Actor.settlePriorities does.
func (v *VecActor) settlePriorities() {
	if v.settled == len(v.local) {
		return
	}
	fresh := v.pend[v.settled:]
	v.tdBuf = v.agent.TDErrorBatch(fresh, v.tdBuf)
	for i := range fresh {
		v.local[v.settled+i].Priority = math.Abs(v.tdBuf[i])
	}
	v.settled = len(v.local)
}

// Flush settles priorities and pushes the staged window, recycling
// arena chunks when the learner does not retain pushed slices.
func (v *VecActor) Flush(learner LearnerAPI) error {
	if len(v.local) == 0 {
		return nil
	}
	v.settlePriorities()
	if err := learner.PushExperience(v.local); err != nil {
		return fmt.Errorf("apex: push: %w", err)
	}
	v.arena.release(learner.RetainsExperience())
	v.local = v.local[:0]
	v.pend = v.pend[:0]
	v.settled = 0
	return nil
}

// SyncParams pulls newer policy parameters into the shared agent,
// settling pending priorities first (same invariant as Actor).
func (v *VecActor) SyncParams(learner LearnerAPI) error {
	v.settlePriorities()
	ver, data, err := learner.PullParams(v.version)
	if err != nil {
		return fmt.Errorf("apex: pull: %w", err)
	}
	if data != nil {
		if err := v.agent.LoadActorBytes(data); err != nil {
			return fmt.Errorf("apex: load params: %w", err)
		}
	}
	v.version = ver
	return nil
}

// Steps reports total environment steps taken across all lanes.
func (v *VecActor) Steps() int { return v.steps }
