package apex

import (
	"os"
	"strings"
	"testing"

	"greennfv/internal/rl/ddpg"
	"greennfv/internal/rl/replay"
	"greennfv/internal/sla"
)

// TestParallelInstallsShardedReplay: the parallel pipeline must swap
// the learner onto the lock-striped buffer before experience flows,
// and honor an explicit shard count.
func TestParallelInstallsShardedReplay(t *testing.T) {
	cfg := DefaultTrainerConfig(200)
	cfg.Actors = 2
	cfg.Parallel = true
	cfg.ReplayShards = 4
	cfg.EnvFactory = envFactory(sla.NewEnergyEfficiency())
	cfg.AgentConfig = ddpg.DefaultConfig(0, 0)
	cfg.AgentConfig.Hidden = []int{12}
	cfg.AgentConfig.BatchSize = 8
	cfg.AgentConfig.Seed = 3
	tr, err := NewTrainer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Run(); err != nil {
		t.Fatal(err)
	}
	sharded, ok := tr.Learner().Agent().Replay().(*replay.Sharded)
	if !ok {
		t.Fatalf("parallel learner replay is %T, want *replay.Sharded", tr.Learner().Agent().Replay())
	}
	if sharded.NumShards() != 4 {
		t.Errorf("shards = %d, want 4", sharded.NumShards())
	}
	if sharded.Len() == 0 {
		t.Error("sharded replay received no experience")
	}
}

// TestRoundRobinKeepsSingleTreeReplay: the deterministic mode must
// not change buffers — its sampling stream is what the recorded
// figures depend on.
func TestRoundRobinKeepsSingleTreeReplay(t *testing.T) {
	cfg := DefaultTrainerConfig(100)
	cfg.Actors = 2
	cfg.EnvFactory = envFactory(sla.NewEnergyEfficiency())
	cfg.AgentConfig = ddpg.DefaultConfig(0, 0)
	cfg.AgentConfig.Hidden = []int{12}
	cfg.AgentConfig.BatchSize = 8
	cfg.AgentConfig.Seed = 3
	tr, err := NewTrainer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Run(); err != nil {
		t.Fatal(err)
	}
	if _, ok := tr.Learner().Agent().Replay().(*replay.Prioritized); !ok {
		t.Fatalf("round-robin learner replay is %T, want *replay.Prioritized", tr.Learner().Agent().Replay())
	}
}

// TestNoBusyWaitInParallel pins two hard-won properties of the
// parallel mode. The learner loop once busy-waited on the replay with
// a 100µs poll and a runtime.Gosched handoff ("let actors at the
// learner mutex"); the sampler/learner pipeline (prefetch.go) blocks
// on channels only — including the SamplesPerInsert pacing gate, which
// waits on the ingest notification — and no polling or yield primitive
// may reappear there. And the per-actor goroutines once needed a
// cooperative Gosched so one actor could not monopolize a core; the
// single batched VecActor driver (parallel.go, vecactor.go) has no
// sibling goroutines to starve, so no yield or sleep belongs in the
// acting half either.
func TestNoBusyWaitInParallel(t *testing.T) {
	for _, file := range []string{"prefetch.go", "parallel.go", "vecactor.go"} {
		src, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		for _, banned := range []string{"runtime.Gosched", "time.After", "time.Sleep", "time.Tick"} {
			if strings.Contains(string(src), banned) {
				t.Errorf("%s contains %s — the parallel mode must block on channels, not poll or yield", file, banned)
			}
		}
	}
}
