package apex

import (
	"os"
	"strings"
	"testing"

	"greennfv/internal/rl/ddpg"
	"greennfv/internal/rl/replay"
	"greennfv/internal/sla"
)

// TestParallelInstallsShardedReplay: the parallel pipeline must swap
// the learner onto the lock-striped buffer before experience flows,
// and honor an explicit shard count.
func TestParallelInstallsShardedReplay(t *testing.T) {
	cfg := DefaultTrainerConfig(200)
	cfg.Actors = 2
	cfg.Parallel = true
	cfg.ReplayShards = 4
	cfg.EnvFactory = envFactory(sla.NewEnergyEfficiency())
	cfg.AgentConfig = ddpg.DefaultConfig(0, 0)
	cfg.AgentConfig.Hidden = []int{12}
	cfg.AgentConfig.BatchSize = 8
	cfg.AgentConfig.Seed = 3
	tr, err := NewTrainer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Run(); err != nil {
		t.Fatal(err)
	}
	sharded, ok := tr.Learner().Agent().Replay().(*replay.Sharded)
	if !ok {
		t.Fatalf("parallel learner replay is %T, want *replay.Sharded", tr.Learner().Agent().Replay())
	}
	if sharded.NumShards() != 4 {
		t.Errorf("shards = %d, want 4", sharded.NumShards())
	}
	if sharded.Len() == 0 {
		t.Error("sharded replay received no experience")
	}
}

// TestRoundRobinKeepsSingleTreeReplay: the deterministic mode must
// not change buffers — its sampling stream is what the recorded
// figures depend on.
func TestRoundRobinKeepsSingleTreeReplay(t *testing.T) {
	cfg := DefaultTrainerConfig(100)
	cfg.Actors = 2
	cfg.EnvFactory = envFactory(sla.NewEnergyEfficiency())
	cfg.AgentConfig = ddpg.DefaultConfig(0, 0)
	cfg.AgentConfig.Hidden = []int{12}
	cfg.AgentConfig.BatchSize = 8
	cfg.AgentConfig.Seed = 3
	tr, err := NewTrainer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Run(); err != nil {
		t.Fatal(err)
	}
	if _, ok := tr.Learner().Agent().Replay().(*replay.Prioritized); !ok {
		t.Fatalf("round-robin learner replay is %T, want *replay.Prioritized", tr.Learner().Agent().Replay())
	}
}

// TestNoBusyWaitInParallel pins the satellite fix of the PR: the old
// learner loop busy-waited on the replay with a 100µs poll and a
// runtime.Gosched handoff every 64 updates ("let actors at the
// learner mutex"). The sampler/learner pipeline (prefetch.go) blocks
// on channels only — no polling or yield primitive may reappear
// there — and nothing in the parallel mode may sleep-poll. The
// actors' cooperative fairness yield in parallel.go is the one
// permitted Gosched; it is not a wait.
func TestNoBusyWaitInParallel(t *testing.T) {
	pipeline, err := os.ReadFile("prefetch.go")
	if err != nil {
		t.Fatal(err)
	}
	for _, banned := range []string{"runtime.Gosched", "time.After", "time.Sleep", "time.Tick"} {
		if strings.Contains(string(pipeline), banned) {
			t.Errorf("prefetch.go contains %s — the learner pipeline must block on channels, not busy-wait", banned)
		}
	}
	actors, err := os.ReadFile("parallel.go")
	if err != nil {
		t.Fatal(err)
	}
	for _, banned := range []string{"time.After", "time.Sleep", "time.Tick"} {
		if strings.Contains(string(actors), banned) {
			t.Errorf("parallel.go contains %s — no sleep-polling in the parallel mode", banned)
		}
	}
}
