package apex

import (
	"fmt"
	"math/rand"
	"net/rpc"
	"os"
	"sync"
	"time"
)

// This file is the actor-process side of the multi-process mode: a
// LearnerAPI implementation that survives learner restarts
// (RemoteLearner) and the run loop cmd/apexactor executes
// (RunRemoteActor). The trainer-process side is remote.go.

// RemoteLearner is a LearnerAPI backed by an RPC connection that
// redials with jittered exponential backoff when the transport fails,
// so a learner restart (or a transient network fault) does not kill
// the actor. Application-level errors returned by the learner are not
// retried — with one exception: ErrUnregisteredActor triggers a
// re-registration (the learner restarted and lost this actor's
// epoch) and one more attempt. ErrStaleActorEpoch is always fatal:
// this actor has been superseded by a respawn and must exit.
//
// A RemoteLearner is used by one actor goroutine; it is not
// goroutine-safe beyond the internal reconnect bookkeeping.
type RemoteLearner struct {
	addr    string
	actorID int

	// MaxRetries bounds redial attempts per call (total tries =
	// MaxRetries+1); Backoff is the initial retry delay, doubling per
	// attempt up to MaxBackoff. Without the cap, a user-raised
	// MaxRetries against a flapping learner turns the doubling into
	// multi-minute sleeps that stall the actor long after the learner
	// is back.
	MaxRetries int
	Backoff    time.Duration
	MaxBackoff time.Duration
	// CallTimeout is the per-call deadline applied to every dialed
	// connection (Client.Timeout); zero disables deadlines.
	CallTimeout time.Duration

	mu         sync.Mutex
	client     *Client
	version    int  // newest parameter version pulled, reported in pushes
	drain      bool // learner asked us to stop
	epoch      uint64
	registered bool
	jrng       *rand.Rand // backoff jitter source
}

// NewRemoteLearner builds a lazily-dialing client for the learner at
// addr, identifying itself as actor actorID in pushes. The first RPC
// establishes the connection. The jitter stream is seeded per actor
// ID so a fleet's redial schedules decorrelate deterministically.
func NewRemoteLearner(addr string, actorID int) *RemoteLearner {
	return &RemoteLearner{
		addr:        addr,
		actorID:     actorID,
		MaxRetries:  5,
		Backoff:     50 * time.Millisecond,
		MaxBackoff:  2 * time.Second,
		CallTimeout: DefaultCallTimeout,
		jrng:        rand.New(rand.NewSource(0x6e6676 + int64(actorID)*2654435761)),
	}
}

// backoffFor returns the capped base sleep before retry attempt+1:
// the initial Backoff doubled attempt times, clamped to MaxBackoff
// (the doubling is overflow-safe for any attempt count).
func (r *RemoteLearner) backoffFor(attempt int) time.Duration {
	limit := r.MaxBackoff
	if limit <= 0 {
		limit = 2 * time.Second
	}
	d := r.Backoff
	for ; attempt > 0 && d < limit; attempt-- {
		d *= 2
	}
	if d > limit {
		d = limit
	}
	return d
}

// jitteredBackoff spreads the base backoff uniformly over
// [backoffFor/2, backoffFor], so a fleet of actors that lost the
// learner at the same instant does not redial it in lockstep (the
// thundering-herd failure mode of synchronized retry schedules).
func (r *RemoteLearner) jitteredBackoff(attempt int) time.Duration {
	d := r.backoffFor(attempt)
	half := d / 2
	if half <= 0 {
		return d
	}
	r.mu.Lock()
	j := time.Duration(r.jrng.Int63n(int64(half) + 1))
	r.mu.Unlock()
	return half + j
}

// conn returns the live connection, dialing if needed.
func (r *RemoteLearner) conn() (*Client, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.client == nil {
		c, err := Dial(r.addr)
		if err != nil {
			return nil, err
		}
		c.Timeout = r.CallTimeout
		r.client = c
	}
	return r.client, nil
}

// dropConn discards a connection observed failing, so the next call
// redials. Only drops it if no other call already replaced it.
func (r *RemoteLearner) dropConn(c *Client) {
	r.mu.Lock()
	if r.client == c {
		r.client.Close()
		r.client = nil
	}
	r.mu.Unlock()
}

// retriable reports whether an RPC error is transport-level (worth a
// redial) rather than an application error from the learner itself.
// net/rpc surfaces server-side errors as rpc.ServerError; everything
// else here — deadline expiries included — is a connection fault.
func retriable(err error) bool {
	_, isApp := err.(rpc.ServerError)
	return !isApp
}

// reregister refreshes this actor's registration on c after an
// ErrUnregisteredActor rejection (a restarted learner has no epochs).
func (r *RemoteLearner) reregister(c *Client) error {
	var reply RegisterReply
	if err := c.call("Learner.Register", &RegisterArgs{ActorID: r.actorID}, &reply); err != nil {
		return err
	}
	r.mu.Lock()
	r.epoch = reply.Epoch
	r.registered = true
	if reply.Version > r.version {
		r.version = reply.Version
	}
	r.mu.Unlock()
	return nil
}

// call invokes one RPC method, redialing with capped jittered
// exponential backoff on transport failures. mkArgs builds the
// request per attempt, so retries after a mid-call re-registration
// carry the fresh epoch. Once the learner has signalled drain the
// first transport failure is final: the round is over, so a vanished
// learner means there is nothing left to deliver and retrying would
// only delay the actor's exit.
func (r *RemoteLearner) call(method string, mkArgs func() any, reply any) error {
	var lastErr error
	for attempt := 0; attempt <= r.MaxRetries; attempt++ {
		c, err := r.conn()
		if err == nil {
			if err = c.call(method, mkArgs(), reply); err == nil {
				return nil
			}
			if !retriable(err) {
				if IsUnregisteredActor(err) && method != "Learner.Register" {
					// Learner restarted (fresh service, no epochs):
					// re-register and burn this attempt on a repeat.
					if rerr := r.reregister(c); rerr == nil {
						lastErr = err
						continue
					}
				}
				return err
			}
			r.dropConn(c)
		}
		lastErr = err
		if r.Draining() {
			return fmt.Errorf("apex: %s to %s failed while draining (not retried): %w",
				method, r.addr, lastErr)
		}
		if attempt < r.MaxRetries {
			time.Sleep(r.jitteredBackoff(attempt))
		}
	}
	return fmt.Errorf("apex: %s to %s failed after %d attempts: %w",
		method, r.addr, r.MaxRetries+1, lastErr)
}

// Register announces the actor, stores the issued epoch, and returns
// the learner's current parameter version.
func (r *RemoteLearner) Register() (int, error) {
	var reply RegisterReply
	if err := r.call("Learner.Register", func() any { return &RegisterArgs{ActorID: r.actorID} }, &reply); err != nil {
		return 0, err
	}
	r.mu.Lock()
	r.epoch = reply.Epoch
	r.registered = true
	if reply.Version > r.version {
		r.version = reply.Version
	}
	r.mu.Unlock()
	return reply.Version, nil
}

// PushExperience implements LearnerAPI, tagging the batch with the
// actor's rank, registration epoch and current parameter version and
// latching the learner's drain signal from the reply.
func (r *RemoteLearner) PushExperience(batch []Experience) error {
	var reply PushReply
	err := r.call("Learner.Push", func() any {
		r.mu.Lock()
		defer r.mu.Unlock()
		return &PushArgs{Batch: batch, ActorID: r.actorID, Epoch: r.epoch, Version: r.version}
	}, &reply)
	if err != nil {
		return err
	}
	if reply.Drain {
		r.mu.Lock()
		r.drain = true
		r.mu.Unlock()
	}
	return nil
}

// PullParams implements LearnerAPI.
func (r *RemoteLearner) PullParams(haveVersion int) (int, []byte, error) {
	var reply PullReply
	err := r.call("Learner.Pull", func() any {
		r.mu.Lock()
		defer r.mu.Unlock()
		return &PullArgs{HaveVersion: haveVersion, ActorID: r.actorID, Epoch: r.epoch}
	}, &reply)
	if err != nil {
		return 0, nil, err
	}
	r.mu.Lock()
	if reply.Version > r.version {
		r.version = reply.Version
	}
	r.mu.Unlock()
	return reply.Version, reply.ActorBytes, nil
}

// RetainsExperience implements LearnerAPI: pushes are gob-serialized
// inside the synchronous call (even across redials the batch is fully
// encoded per attempt), so the caller's slices are free for reuse when
// PushExperience returns.
func (r *RemoteLearner) RetainsExperience() bool { return false }

// Draining reports whether the learner has asked this actor to stop.
func (r *RemoteLearner) Draining() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.drain
}

// Close releases the connection.
func (r *RemoteLearner) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.client == nil {
		return nil
	}
	err := r.client.Close()
	r.client = nil
	return err
}

var _ LearnerAPI = (*RemoteLearner)(nil)

// RemoteActorOptions parameterizes one remote actor run.
type RemoteActorOptions struct {
	// Addr is the learner's RPC address.
	Addr string
	// Rank is the actor's position on the exploration ladder (also
	// its ActorID in learner-side stats).
	Rank int
	// Steps overrides the spec's step budget when positive; with both
	// zero the actor runs until the learner signals drain.
	Steps int
	// VerifyPriorities enables the actor's batched-vs-scalar priority
	// self-check (ActorConfig.VerifyPriorities); used by tests to prove
	// the batched TD-error path is bit-identical across processes.
	VerifyPriorities bool
	// CrashAfter, when positive, makes the run fail with an injected
	// error after that many steps — the chaos tests' actor-crash
	// fault. CrashOnceMarker names a file that disarms the fault once
	// it exists; it is created when the crash fires, so a supervised
	// respawn of the same rank runs clean.
	CrashAfter      int
	CrashOnceMarker string
	// Logf, when non-nil, receives progress messages.
	Logf func(format string, args ...any)
}

// shouldInjectCrash decides (and latches, via the marker file) one
// injected actor crash.
func shouldInjectCrash(opt *RemoteActorOptions) bool {
	if opt.CrashOnceMarker != "" {
		if _, err := os.Stat(opt.CrashOnceMarker); err == nil {
			return false // already crashed once; run clean
		}
		os.WriteFile(opt.CrashOnceMarker, []byte("crashed\n"), 0o644)
	}
	return true
}

// RunRemoteActor is the main loop of an actor process: build the
// environment and local network from the spec, register with the
// learner, sync the initial parameters, then step/push/pull until the
// step budget is spent or the learner drains the round. The local
// experience buffer is flushed before returning so no transitions are
// lost. A crashed actor process (or an injected CrashAfter fault)
// loses at most PushEvery-1 unflushed transitions; the supervising
// trainer respawns the rank with its original ladder rung.
func RunRemoteActor(spec ActorSpec, opt RemoteActorOptions) error {
	logf := opt.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	e, err := spec.BuildEnv(opt.Rank)
	if err != nil {
		return fmt.Errorf("apex: actor %d env: %w", opt.Rank, err)
	}
	acfg := spec.agentConfig(e.StateDim(), e.ActionDim(), opt.Rank)
	actor, err := NewActor(ActorConfig{
		ID: opt.Rank, Env: e, AgentConfig: acfg,
		PushEvery: spec.PushEvery, SyncEvery: spec.SyncEvery,
		VerifyPriorities: opt.VerifyPriorities,
	})
	if err != nil {
		return fmt.Errorf("apex: actor %d: %w", opt.Rank, err)
	}

	learner := NewRemoteLearner(opt.Addr, opt.Rank)
	defer learner.Close()
	version, err := learner.Register()
	if err != nil {
		return fmt.Errorf("apex: actor %d register: %w", opt.Rank, err)
	}
	logf("actor %d registered with learner %s (param version %d, sigma %.3f)",
		opt.Rank, opt.Addr, version, acfg.OUSigma)
	// Start on the learner's current policy rather than this
	// process's fresh random weights.
	if err := actor.SyncParams(learner); err != nil {
		return fmt.Errorf("apex: actor %d initial sync: %w", opt.Rank, err)
	}

	steps := opt.Steps
	if steps <= 0 {
		steps = spec.Steps
	}
	for i := 0; steps <= 0 || i < steps; i++ {
		if opt.CrashAfter > 0 && i == opt.CrashAfter && shouldInjectCrash(&opt) {
			return fmt.Errorf("apex: actor %d: injected crash after %d steps", opt.Rank, i)
		}
		if _, _, err := actor.Step(learner); err != nil {
			return fmt.Errorf("apex: actor %d step %d: %w", opt.Rank, i, err)
		}
		if learner.Draining() {
			logf("actor %d draining after %d steps", opt.Rank, actor.Steps())
			break
		}
	}
	if err := actor.Flush(learner); err != nil {
		return fmt.Errorf("apex: actor %d flush: %w", opt.Rank, err)
	}
	logf("actor %d done: %d env steps", opt.Rank, actor.Steps())
	return nil
}
