package apex

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// faultrpc: a seeded-deterministic TCP proxy for injecting transport
// faults between actors and the learner. The chaos tests point
// TrainerConfig.AdvertiseAddr at a FaultProxy so every actor RPC
// crosses it; rules then drop connections (actors see a mid-call
// transport error and must redial), delay them (exercising per-call
// deadlines and backoff), or partition the link entirely. Faults are
// drawn from a seeded RNG, so a failing chaos run replays with the
// same fault schedule.

// FaultRule parameterizes the proxy's per-connection fault draws.
type FaultRule struct {
	// DropProb is the probability that an accepted connection is cut
	// after a short delay instead of proxied — the client's next read
	// or write on it fails mid-call.
	DropProb float64
	// DelayProb is the probability that a connection's setup is held
	// for Delay before any bytes flow.
	DelayProb float64
	Delay     time.Duration
}

// FaultProxyStats counts injected faults.
type FaultProxyStats struct {
	Accepted, Dropped, Delayed, Refused int64
}

// FaultProxy is a TCP proxy in front of a learner Server that injects
// faults per FaultRule. Zero-valued rules proxy transparently.
//
// Teardown contract: a connection is closed exactly once, by whoever
// removes it from the tracking set — so Close (or Partition) racing a
// finishing per-connection goroutine cannot double-close; and the
// injected drop/delay sleeps are interruptible, so Close never waits
// out a fault schedule to return.
type FaultProxy struct {
	target   string
	listener net.Listener
	wg       sync.WaitGroup
	done     chan struct{} // closed by Close; interrupts fault sleeps

	mu          sync.Mutex
	rng         *rand.Rand
	rule        FaultRule
	partitioned bool
	conns       map[net.Conn]struct{}
	closed      bool

	accepted, dropped, delayed, refused atomic.Int64
}

// NewFaultProxy listens on an ephemeral loopback port and forwards
// connections to target, applying fault rules drawn from an RNG
// seeded with seed.
func NewFaultProxy(target string, seed int64) (*FaultProxy, error) {
	if target == "" {
		return nil, errors.New("apex: fault proxy needs a target address")
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("apex: fault proxy listen: %w", err)
	}
	p := &FaultProxy{
		target:   target,
		listener: ln,
		done:     make(chan struct{}),
		rng:      rand.New(rand.NewSource(seed)),
		conns:    make(map[net.Conn]struct{}),
	}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr is the proxy's listen address — what actors should dial.
func (p *FaultProxy) Addr() string { return p.listener.Addr().String() }

// SetRule replaces the fault rule (applies to new connections).
func (p *FaultProxy) SetRule(r FaultRule) {
	p.mu.Lock()
	p.rule = r
	p.mu.Unlock()
}

// Partition, when on, severs every live connection and refuses new
// ones until turned off — a full network partition between the actors
// and the learner.
func (p *FaultProxy) Partition(on bool) {
	p.mu.Lock()
	p.partitioned = on
	var victims []net.Conn
	if on {
		victims = p.takeConnsLocked()
	}
	p.mu.Unlock()
	for _, c := range victims {
		c.Close()
	}
}

// takeConnsLocked empties the tracking set and hands ownership of the
// connections (and their close) to the caller. Caller holds mu.
func (p *FaultProxy) takeConnsLocked() []net.Conn {
	victims := make([]net.Conn, 0, len(p.conns))
	for c := range p.conns {
		victims = append(victims, c)
	}
	p.conns = make(map[net.Conn]struct{})
	return victims
}

// Stats returns the injected-fault counters.
func (p *FaultProxy) Stats() FaultProxyStats {
	return FaultProxyStats{
		Accepted: p.accepted.Load(),
		Dropped:  p.dropped.Load(),
		Delayed:  p.delayed.Load(),
		Refused:  p.refused.Load(),
	}
}

// Close stops the proxy and severs every connection. It interrupts
// in-flight fault sleeps, so it returns promptly even under a long
// Delay rule, and it is safe against dials landing mid-shutdown.
func (p *FaultProxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	close(p.done)
	victims := p.takeConnsLocked()
	p.mu.Unlock()
	for _, c := range victims {
		c.Close()
	}
	err := p.listener.Close()
	p.wg.Wait()
	return err
}

// acceptLoop draws one fault decision per accepted connection.
func (p *FaultProxy) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.listener.Accept()
		if err != nil {
			return // listener closed
		}
		p.accepted.Add(1)
		p.mu.Lock()
		if p.closed || p.partitioned {
			refused := p.partitioned
			p.mu.Unlock()
			conn.Close()
			if refused {
				p.refused.Add(1)
				continue
			}
			return
		}
		rule := p.rule
		drop := rule.DropProb > 0 && p.rng.Float64() < rule.DropProb
		delay := rule.DelayProb > 0 && p.rng.Float64() < rule.DelayProb
		p.conns[conn] = struct{}{}
		p.mu.Unlock()

		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			defer p.forget(conn)
			if drop {
				// Cut after a beat: long enough for the client to have
				// committed a request onto the wire, short enough to
				// fail it mid-call. The deferred forget does the close.
				p.dropped.Add(1)
				p.pause(time.Millisecond)
				return
			}
			if delay {
				p.delayed.Add(1)
				if !p.pause(rule.Delay) {
					return // proxy closing; forget tears the conn down
				}
			}
			p.proxy(conn)
		}()
	}
}

// pause sleeps for d unless the proxy closes first, reporting whether
// the full pause elapsed — so Close is never blocked behind an
// injected fault delay.
func (p *FaultProxy) pause(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-p.done:
		return false
	}
}

// track registers conn for teardown. It reports false — without
// registering — when the proxy is closed or partitioned; the caller
// then owns closing conn.
func (p *FaultProxy) track(conn net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed || p.partitioned {
		return false
	}
	p.conns[conn] = struct{}{}
	return true
}

// forget removes conn from the tracking set and, if it was still
// tracked, closes it. Removal transfers close ownership: if Close or
// Partition already took the connection, they closed it, and forget
// must not close it again.
func (p *FaultProxy) forget(conn net.Conn) {
	p.mu.Lock()
	_, mine := p.conns[conn]
	delete(p.conns, conn)
	p.mu.Unlock()
	if mine {
		conn.Close()
	}
}

// proxy shuttles bytes both ways until either side closes.
func (p *FaultProxy) proxy(client net.Conn) {
	upstream, err := net.Dial("tcp", p.target)
	if err != nil {
		return // learner down: client sees the severed connection
	}
	if !p.track(upstream) {
		upstream.Close()
		return
	}
	defer p.forget(upstream)

	// Either direction finishing severs both conns via forget (which
	// is exactly-once), unblocking the other copy. The copy goroutine
	// is joined before proxy returns, so Close's wg.Wait observes it
	// transitively.
	done := make(chan struct{})
	go func() {
		io.Copy(upstream, client)
		p.forget(upstream)
		p.forget(client)
		close(done)
	}()
	io.Copy(client, upstream)
	p.forget(upstream)
	p.forget(client)
	<-done
}
