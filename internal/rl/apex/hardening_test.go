package apex

import (
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// TestUnregisteredActorRejected pins the registration gate: Push and
// Pull from an actor ID the service has never seen are rejected with
// the typed error and must not allocate a stats entry (the pre-fix
// behavior silently accepted and attributed them).
func TestUnregisteredActorRejected(t *testing.T) {
	learner := rpcLearner(t)
	srv, err := Serve(learner, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	err = client.PushExperience(rpcBatch(2))
	if !IsUnregisteredActor(err) {
		t.Errorf("unregistered push error = %v, want ErrUnregisteredActor", err)
	}
	if _, _, err := client.PullParams(0); !IsUnregisteredActor(err) {
		t.Errorf("unregistered pull error = %v, want ErrUnregisteredActor", err)
	}
	if stats := srv.Service().ActorStats(); len(stats) != 0 {
		t.Errorf("rejected actor left stats behind: %+v", stats)
	}
	if _, transitions := learner.Stats(); transitions != 0 {
		t.Errorf("rejected push still delivered %d transitions", transitions)
	}

	// After registering, the same client is accepted.
	if _, err := client.RegisterAs(0); err != nil {
		t.Fatal(err)
	}
	if err := client.PushExperience(rpcBatch(2)); err != nil {
		t.Errorf("registered push: %v", err)
	}
}

// TestStaleEpochRejected pins zombie fencing: when a respawned actor
// re-registers under the same ID, the service issues a fresh epoch and
// the original connection's calls fail with the fatal stale-epoch
// error instead of corrupting the new incarnation's accounting.
func TestStaleEpochRejected(t *testing.T) {
	learner := rpcLearner(t)
	srv, err := Serve(learner, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	zombie, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer zombie.Close()
	if _, err := zombie.RegisterAs(7); err != nil {
		t.Fatal(err)
	}
	if err := zombie.PushExperience(rpcBatch(1)); err != nil {
		t.Fatal(err)
	}

	respawn, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer respawn.Close()
	if _, err := respawn.RegisterAs(7); err != nil {
		t.Fatal(err)
	}

	err = zombie.PushExperience(rpcBatch(1))
	if !IsStaleActorEpoch(err) {
		t.Errorf("zombie push error = %v, want ErrStaleActorEpoch", err)
	}
	if _, _, err := zombie.PullParams(0); !IsStaleActorEpoch(err) {
		t.Errorf("zombie pull error = %v, want ErrStaleActorEpoch", err)
	}
	if err := respawn.PushExperience(rpcBatch(3)); err != nil {
		t.Errorf("respawned actor push: %v", err)
	}

	st := srv.Service().ActorStats()[7]
	if st.Restarts != 1 {
		t.Errorf("actor 7 restarts = %d, want 1", st.Restarts)
	}
	if st.Pushes != 2 || st.Transitions != 4 {
		t.Errorf("actor 7 stats after fencing: %+v", st)
	}
}

// TestJitteredBackoffBounds pins the reconnect backoff jitter: every
// draw lands in [d/2, d] of the deterministic schedule (which
// TestRetryBackoffCap pins separately), and draws actually vary so a
// crashed fleet does not reconnect in lockstep.
func TestJitteredBackoffBounds(t *testing.T) {
	rl := NewRemoteLearner("127.0.0.1:1", 4)
	defer rl.Close()
	rl.Backoff = 100 * time.Millisecond
	rl.MaxBackoff = 2 * time.Second

	for attempt := 0; attempt < 8; attempt++ {
		base := rl.backoffFor(attempt)
		distinct := map[time.Duration]bool{}
		for i := 0; i < 100; i++ {
			d := rl.jitteredBackoff(attempt)
			if d < base/2 || d > base {
				t.Fatalf("attempt %d: jittered backoff %v outside [%v, %v]", attempt, d, base/2, base)
			}
			distinct[d] = true
		}
		if len(distinct) < 2 {
			t.Errorf("attempt %d: 100 draws produced %d distinct values, want jitter", attempt, len(distinct))
		}
	}
}

// TestCallDeadline pins the per-call deadline: against a server that
// accepts connections but never answers, a call fails with a typed,
// retryable DeadlineError in bounded time instead of hanging forever.
func TestCallDeadline(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go io.Copy(io.Discard, conn) // swallow requests, never reply
		}
	}()

	client, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	client.Timeout = 50 * time.Millisecond

	start := time.Now()
	_, rerr := client.RegisterAs(0)
	elapsed := time.Since(start)
	var de *DeadlineError
	if !errors.As(rerr, &de) {
		t.Fatalf("black-hole call error = %v, want DeadlineError", rerr)
	}
	if de.Method != "Learner.Register" || de.Timeout != client.Timeout {
		t.Errorf("deadline error fields: %+v", de)
	}
	if !retriable(rerr) {
		t.Error("deadline error is not retryable")
	}
	if elapsed > 5*time.Second {
		t.Errorf("deadline call took %v, want ~%v", elapsed, client.Timeout)
	}
}

// TestServerCloseUnderLoad hammers Push/Pull from many goroutines
// while the server shuts down; run under -race this pins that Close
// racing in-flight calls neither panics nor deadlocks, and that every
// in-flight call terminates (with success or a transport error) once
// the server is gone.
func TestServerCloseUnderLoad(t *testing.T) {
	learner := rpcLearner(t)
	srv, err := Serve(learner, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	const workers = 8
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			client, err := Dial(srv.Addr())
			if err != nil {
				return // server may already be closing
			}
			defer client.Close()
			client.Timeout = 2 * time.Second
			if _, err := client.RegisterAs(id); err != nil {
				return
			}
			<-start
			for i := 0; ; i++ {
				if err := client.PushExperience(rpcBatch(1)); err != nil {
					return
				}
				if _, _, err := client.PullParams(0); err != nil {
					return
				}
			}
		}(w)
	}
	close(start)
	time.Sleep(10 * time.Millisecond) // let the load build
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("workers still blocked 30s after server Close")
	}
}
