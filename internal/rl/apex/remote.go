package apex

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"strconv"
	"sync"
	"time"

	"greennfv/internal/rl/ddpg"
)

// This file is the trainer-process side of the multi-process mode:
// the trainer serves its learner over net/rpc (rpc.go), optionally
// spawns and supervises the actor processes itself (SpawnRemote),
// paces learner updates against the experience actually received,
// checkpoints on an interval, and drains the round gracefully once
// the update budget is spent. The actor-process side is
// remoteactor.go.

// remotePollInterval is how often the pacing loop re-checks the
// received-experience counter while waiting for actors. Unlike the
// in-process pipeline (prefetch.go) there is no channel to block on —
// experience arrives via RPC handlers — so a short sleep is the
// honest alternative to busy-spinning.
const remotePollInterval = 500 * time.Microsecond

// normalizeSpec aligns a remote-actor spec with the trainer: the
// agent template is always the learner's full configuration — the
// same template in-process actors copy, so TD priorities, exploration
// and (above all) network shape cannot silently diverge between
// modes — and unset cadence/sigma fields inherit the trainer's.
func normalizeSpec(spec *ActorSpec, cfg TrainerConfig, agentCfg ddpg.Config) {
	spec.Agent = agentCfg
	if spec.BaseSigma == 0 {
		spec.BaseSigma = cfg.BaseSigma
	}
	if spec.PushEvery == 0 {
		spec.PushEvery = cfg.PushEvery
	}
	if spec.SyncEvery == 0 {
		spec.SyncEvery = cfg.SyncEvery
	}
}

// spawnActor execs one actor process with the normalized spec on its
// stdin. Child stderr is passed through so actor logs interleave with
// the trainer's.
func (t *Trainer) spawnActor(addr string, rank, steps int, specJSON []byte) (*exec.Cmd, error) {
	argvPrefix := t.cfg.SpawnRemote
	args := append(append([]string(nil), argvPrefix[1:]...),
		"-learner", addr,
		"-rank", strconv.Itoa(rank),
		"-steps", strconv.Itoa(steps),
		"-spec", "-",
	)
	cmd := exec.Command(argvPrefix[0], args...)
	cmd.Stdin = bytes.NewReader(specJSON)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("apex: spawn actor %d (%s): %w", rank, argvPrefix[0], err)
	}
	return cmd, nil
}

// fleet tracks the spawned actor processes so the supervisors, the
// drain path and the failure path can coordinate: which process
// currently serves each rank, whether the fleet has been stopped, and
// the first fatal error.
type fleet struct {
	mu      sync.Mutex
	cmds    map[int]*exec.Cmd
	stopped bool
	err     error
}

// track records rank's current process; it reports false (and kills
// the process) when the fleet has already been stopped, closing the
// race between a respawn and a concurrent stop.
func (f *fleet) track(rank int, cmd *exec.Cmd) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.stopped {
		cmd.Process.Kill()
		return false
	}
	f.cmds[rank] = cmd
	return true
}

// untrack clears rank's process entry after Wait returns.
func (f *fleet) untrack(rank int) {
	f.mu.Lock()
	delete(f.cmds, rank)
	f.mu.Unlock()
}

// fail records the first fatal fleet error and kills every live actor
// so the round ends instead of limping on with a hole in the ladder.
func (f *fleet) fail(err error) {
	f.mu.Lock()
	if f.err == nil {
		f.err = err
	}
	f.mu.Unlock()
	f.stop()
}

// stop kills every live actor process and blocks respawns.
func (f *fleet) stop() {
	f.mu.Lock()
	f.stopped = true
	for _, cmd := range f.cmds {
		cmd.Process.Kill()
	}
	f.mu.Unlock()
}

// firstErr returns the recorded fatal error, if any.
func (f *fleet) firstErr() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.err
}

// superviseRank keeps one actor rank alive: spawn, wait, and on a
// crash respawn the same rank — identical sigma/seed ladder rung,
// identical step budget — with jittered exponential backoff, up to
// cfg.MaxActorRestarts times. Respawns stop once the round is
// draining (the rank's crash no longer matters) or the fleet has been
// stopped. A rank that exhausts its restart budget fails the fleet.
func (t *Trainer) superviseRank(fl *fleet, service *LearnerService, addr string, rank, steps int, specJSON []byte, jrng *rand.Rand) {
	base := t.cfg.ActorRestartBackoff
	if base <= 0 {
		base = 250 * time.Millisecond
	}
	for restarts := 0; ; restarts++ {
		cmd, err := t.spawnActor(addr, rank, steps, specJSON)
		if err != nil {
			fl.fail(err)
			return
		}
		if !fl.track(rank, cmd) {
			cmd.Wait()
			return
		}
		werr := cmd.Wait()
		fl.untrack(rank)
		if werr == nil {
			return // clean exit
		}
		fl.mu.Lock()
		stopped := fl.stopped
		fl.mu.Unlock()
		if stopped || service.Draining() {
			return
		}
		if restarts >= t.cfg.MaxActorRestarts {
			fl.fail(fmt.Errorf("apex: actor process %d: %w (gave up after %d restarts)",
				rank, werr, restarts))
			return
		}
		// Jittered exponential backoff before the respawn, so several
		// ranks crashed by one fault don't re-register in lockstep.
		d := base << uint(restarts)
		if d > 5*time.Second {
			d = 5 * time.Second
		}
		d = d/2 + time.Duration(jrng.Int63n(int64(d/2)+1))
		fmt.Fprintf(os.Stderr, "apex: actor rank %d crashed (%v); respawn %d/%d in %v\n",
			rank, werr, restarts+1, t.cfg.MaxActorRestarts, d)
		time.Sleep(d)
		if service.Draining() {
			return
		}
	}
}

// maybeCheckpoint writes an interval checkpoint when the trainer is
// configured for them and enough updates have landed since the last.
func (t *Trainer) maybeCheckpoint(updates int, lastCkpt *int) error {
	if t.cfg.CheckpointPath == "" || t.cfg.CheckpointEvery <= 0 {
		return nil
	}
	if updates-*lastCkpt < t.cfg.CheckpointEvery {
		return nil
	}
	if err := t.Checkpoint(t.cfg.CheckpointPath); err != nil {
		return err
	}
	*lastCkpt = updates
	return nil
}

// runRemote executes the multi-process mode: serve the learner over
// RPC, launch (or await) RemoteActors actor processes, pace learner
// updates against received experience, and drain gracefully. Spawned
// fleets are supervised: a crashed rank is respawned on its original
// ladder rung (bounded, jittered backoff), and a wedged fleet is
// killed once drain has outwaited cfg.DrainTimeout of heartbeat
// silence. With CheckpointPath set the trainer checkpoints on an
// update interval and after drain; a trainer that Resume'd picks the
// budget up where the checkpoint left it.
//
// The update budget matches the round-robin mode exactly —
// LearnPerStep updates per post-warmup environment step — but updates
// are paced to the experience actually received (ROADMAP's "adaptive
// learner pacing" in its simplest form): the learner never runs ahead
// of the replay the way a free-running loop would while remote actors
// are still warming up. Updates are counted by the agent's LearnSteps
// delta, so a starved LearnStep (replay below one batch — possible
// right after a resume without a replay snapshot) does not burn
// budget without learning.
func (t *Trainer) runRemote() error {
	// Concurrent RPC pushes and the pacing loop's updates contend on
	// the replay; give them the same lock-striped buffer the parallel
	// mode uses (honoring cfg.ReplayShards).
	if err := t.installShardedReplay(t.learner.Agent()); err != nil {
		return err
	}
	if t.cfg.Float32 {
		// Same single-precision learner as the parallel mode; actor
		// processes always pull f64 broadcasts (ActorBytes flushes the
		// mirrors), so the wire format is unchanged.
		t.learner.Agent().SetFloat32(true)
		defer t.learner.Agent().SetFloat32(false)
	}
	// Restore checkpoint state only after the replay implementation
	// and precision mode match the one that wrote it.
	if err := t.applyResume(); err != nil {
		return err
	}
	spec := t.cfg.RemoteSpec
	addr := t.cfg.ListenAddr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	srv, err := Serve(t.learner, addr)
	if err != nil {
		return fmt.Errorf("apex: remote mode: %w", err)
	}
	defer srv.Close()
	service := srv.Service()

	var specJSON bytes.Buffer
	if err := spec.Encode(&specJSON); err != nil {
		return err
	}

	// Launch the actor fleet, splitting TotalSteps across ranks
	// (earlier ranks absorb the remainder), one supervisor per rank.
	// With no SpawnRemote the actors are external: they connect to
	// ListenAddr on their own and run until drained.
	spawned := len(t.cfg.SpawnRemote) > 0
	childrenDone := make(chan struct{})
	fl := &fleet{cmds: make(map[int]*exec.Cmd)}
	if spawned {
		actorAddr := srv.Addr()
		if t.cfg.AdvertiseAddr != "" {
			actorAddr = t.cfg.AdvertiseAddr
		}
		share := t.cfg.TotalSteps / t.cfg.RemoteActors
		extra := t.cfg.TotalSteps % t.cfg.RemoteActors
		var wg sync.WaitGroup
		for rank := 0; rank < t.cfg.RemoteActors; rank++ {
			steps := share
			if rank < extra {
				steps++
			}
			if steps == 0 {
				continue
			}
			wg.Add(1)
			jrng := rand.New(rand.NewSource(0x5efa11 + int64(rank)))
			go func(rank, steps int) {
				defer wg.Done()
				t.superviseRank(fl, service, actorAddr, rank, steps, specJSON.Bytes(), jrng)
			}(rank, steps)
		}
		go func() {
			wg.Wait()
			close(childrenDone)
		}()
	}

	// Pacing loop: spend the round-robin update budget, but never
	// ahead of the experience received. Updates and RPC pushes run
	// concurrently — PushExperience takes no learner mutex, so actors
	// never stall behind an update.
	budget := t.cfg.LearnPerStep * (t.cfg.TotalSteps - t.cfg.WarmupSteps)
	batchSz := t.learner.Agent().Config().BatchSize
	spi := t.cfg.SamplesPerInsert
	updates := t.learner.Agent().LearnSteps() // nonzero after a resume
	lastCkpt := updates
	done := false
	for updates < budget {
		if spawned && !done {
			select {
			case <-childrenDone:
				done = true
			default:
			}
		}
		_, received := t.learner.Stats()
		allowed := t.cfg.LearnPerStep * (received - t.cfg.WarmupSteps)
		if done || allowed > budget {
			// No more experience is coming (or the target is met):
			// spend the remainder on what the actors left behind.
			allowed = budget
		}
		if spi > 0 {
			// SamplesPerInsert cap, same ratio the in-process pipeline
			// enforces: at most spi replay samples consumed per
			// transition received, each update consuming one batch.
			if lim := int(spi * float64(received) / float64(batchSz)); allowed > lim {
				allowed = lim
			}
		}
		starved := false
		for updates < allowed {
			t.learner.LearnStep(t.cfg.VersionEvery)
			now := t.learner.Agent().LearnSteps()
			if now == updates {
				// Replay below one batch: no update happened, and
				// none will until more experience lands.
				starved = true
				break
			}
			updates = now
			if err := t.maybeCheckpoint(updates, &lastCkpt); err != nil {
				fl.stop()
				return err
			}
		}
		if done && (updates >= allowed || starved) {
			// The fleet is gone; a ratio-capped or starved remainder
			// will never be unlocked by new experience.
			break
		}
		if updates < budget {
			time.Sleep(remotePollInterval)
		}
	}

	// Graceful drain: every subsequent push is still accepted but
	// tells its actor to stop. Spawned fleets are then waited for —
	// bounded, when DrainTimeout is set, by heartbeat silence, after
	// which stragglers are killed so a zombie cannot wedge the round.
	// External fleets are given until pushes quiesce.
	service.BeginDrain()
	if spawned {
		if t.cfg.DrainTimeout > 0 {
			ticker := time.NewTicker(t.cfg.DrainTimeout / 4)
		drainWait:
			for {
				select {
				case <-childrenDone:
					break drainWait
				case <-ticker.C:
					if service.FleetIdle(t.cfg.DrainTimeout) {
						fmt.Fprintf(os.Stderr, "apex: drain: no push heartbeat for %v; killing remaining actors\n",
							t.cfg.DrainTimeout)
						fl.stop()
						<-childrenDone
						break drainWait
					}
				}
			}
			ticker.Stop()
		} else {
			<-childrenDone
		}
	} else {
		quiesce(t.learner)
	}
	t.remoteStats = service.ActorStats()
	_, received := t.learner.Stats()
	if received > t.cfg.TotalSteps {
		received = t.cfg.TotalSteps
	}
	t.steps = received
	// Final checkpoint: capture the drained end-state so a restart
	// after the round (or a resume of an interval checkpoint) sees the
	// completed budget.
	if t.cfg.CheckpointPath != "" {
		if err := t.Checkpoint(t.cfg.CheckpointPath); err != nil {
			return err
		}
	}
	if err := srv.Close(); err != nil {
		return err
	}
	return fl.firstErr()
}

// Note for external (non-spawned) fleets: the pacing loop terminates
// only once TotalSteps transitions have been received — the trainer
// blocks until its actors deliver. Give genuinely remote deployments
// a step budget sized to what the fleet will actually produce.

// quiesce waits until the learner stops receiving experience (two
// consecutive quiet polls) or a bounded timeout, so external actors'
// in-flight pushes land before the server closes.
func quiesce(l *Learner) {
	const poll = 50 * time.Millisecond
	const limit = 3 * time.Second
	_, last := l.Stats()
	quiet := 0
	for waited := time.Duration(0); waited < limit && quiet < 2; waited += poll {
		time.Sleep(poll)
		_, now := l.Stats()
		if now == last {
			quiet++
		} else {
			quiet = 0
		}
		last = now
	}
}
