package apex

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"sync"
	"time"

	"greennfv/internal/rl/ddpg"
)

// This file is the trainer-process side of the multi-process mode:
// the trainer serves its learner over net/rpc (rpc.go), optionally
// spawns the actor processes itself (SpawnRemote), paces learner
// updates against the experience actually received, and drains the
// round gracefully once the update budget is spent. The actor-process
// side is remoteactor.go.

// remotePollInterval is how often the pacing loop re-checks the
// received-experience counter while waiting for actors. Unlike the
// in-process pipeline (prefetch.go) there is no channel to block on —
// experience arrives via RPC handlers — so a short sleep is the
// honest alternative to busy-spinning.
const remotePollInterval = 500 * time.Microsecond

// normalizeSpec aligns a remote-actor spec with the trainer: the
// agent template is always the learner's full configuration — the
// same template in-process actors copy, so TD priorities, exploration
// and (above all) network shape cannot silently diverge between
// modes — and unset cadence/sigma fields inherit the trainer's.
func normalizeSpec(spec *ActorSpec, cfg TrainerConfig, agentCfg ddpg.Config) {
	spec.Agent = agentCfg
	if spec.BaseSigma == 0 {
		spec.BaseSigma = cfg.BaseSigma
	}
	if spec.PushEvery == 0 {
		spec.PushEvery = cfg.PushEvery
	}
	if spec.SyncEvery == 0 {
		spec.SyncEvery = cfg.SyncEvery
	}
}

// spawnActor execs one actor process with the normalized spec on its
// stdin. Child stderr is passed through so actor logs interleave with
// the trainer's.
func (t *Trainer) spawnActor(addr string, rank, steps int, specJSON []byte) (*exec.Cmd, error) {
	argvPrefix := t.cfg.SpawnRemote
	args := append(append([]string(nil), argvPrefix[1:]...),
		"-learner", addr,
		"-rank", strconv.Itoa(rank),
		"-steps", strconv.Itoa(steps),
		"-spec", "-",
	)
	cmd := exec.Command(argvPrefix[0], args...)
	cmd.Stdin = bytes.NewReader(specJSON)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("apex: spawn actor %d (%s): %w", rank, argvPrefix[0], err)
	}
	return cmd, nil
}

// runRemote executes the multi-process mode: serve the learner over
// RPC, launch (or await) RemoteActors actor processes, pace learner
// updates against received experience, and drain gracefully.
//
// The update budget matches the round-robin mode exactly —
// LearnPerStep updates per post-warmup environment step — but updates
// are paced to the experience actually received (ROADMAP's "adaptive
// learner pacing" in its simplest form): the learner never runs ahead
// of the replay the way a free-running loop would while remote actors
// are still warming up.
func (t *Trainer) runRemote() error {
	// Concurrent RPC pushes and the pacing loop's updates contend on
	// the replay; give them the same lock-striped buffer the parallel
	// mode uses (honoring cfg.ReplayShards).
	if err := t.installShardedReplay(t.learner.Agent()); err != nil {
		return err
	}
	if t.cfg.Float32 {
		// Same single-precision learner as the parallel mode; actor
		// processes always pull f64 broadcasts (ActorBytes flushes the
		// mirrors), so the wire format is unchanged.
		t.learner.Agent().SetFloat32(true)
		defer t.learner.Agent().SetFloat32(false)
	}
	spec := t.cfg.RemoteSpec
	addr := t.cfg.ListenAddr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	srv, err := Serve(t.learner, addr)
	if err != nil {
		return fmt.Errorf("apex: remote mode: %w", err)
	}
	defer srv.Close()
	service := srv.Service()

	var specJSON bytes.Buffer
	if err := spec.Encode(&specJSON); err != nil {
		return err
	}

	// Launch the actor fleet, splitting TotalSteps across ranks
	// (earlier ranks absorb the remainder). With no SpawnRemote the
	// actors are external: they connect to ListenAddr on their own
	// and run until drained.
	spawned := len(t.cfg.SpawnRemote) > 0
	childrenDone := make(chan struct{})
	var (
		childMu  sync.Mutex
		childErr error
	)
	if spawned {
		share := t.cfg.TotalSteps / t.cfg.RemoteActors
		extra := t.cfg.TotalSteps % t.cfg.RemoteActors
		var cmds []*exec.Cmd
		var ranks []int
		for rank := 0; rank < t.cfg.RemoteActors; rank++ {
			steps := share
			if rank < extra {
				steps++
			}
			if steps == 0 {
				continue
			}
			cmd, err := t.spawnActor(srv.Addr(), rank, steps, specJSON.Bytes())
			if err != nil {
				// Don't strand already-started actors on a dead round.
				for _, c := range cmds {
					c.Process.Kill()
					c.Wait()
				}
				return err
			}
			cmds = append(cmds, cmd)
			ranks = append(ranks, rank)
		}
		var wg sync.WaitGroup
		for i, cmd := range cmds {
			wg.Add(1)
			go func(rank int, cmd *exec.Cmd) {
				defer wg.Done()
				if err := cmd.Wait(); err != nil {
					childMu.Lock()
					if childErr == nil {
						childErr = fmt.Errorf("apex: actor process %d: %w", rank, err)
					}
					childMu.Unlock()
				}
			}(ranks[i], cmd)
		}
		go func() {
			wg.Wait()
			close(childrenDone)
		}()
	}

	// Pacing loop: spend the round-robin update budget, but never
	// ahead of the experience received. Updates and RPC pushes run
	// concurrently — PushExperience takes no learner mutex, so actors
	// never stall behind an update.
	budget := t.cfg.LearnPerStep * (t.cfg.TotalSteps - t.cfg.WarmupSteps)
	batchSz := t.learner.Agent().Config().BatchSize
	spi := t.cfg.SamplesPerInsert
	updates := 0
	done := false
	for updates < budget {
		if spawned && !done {
			select {
			case <-childrenDone:
				done = true
			default:
			}
		}
		_, received := t.learner.Stats()
		allowed := t.cfg.LearnPerStep * (received - t.cfg.WarmupSteps)
		if done || allowed > budget {
			// No more experience is coming (or the target is met):
			// spend the remainder on what the actors left behind.
			allowed = budget
		}
		if spi > 0 {
			// SamplesPerInsert cap, same ratio the in-process pipeline
			// enforces: at most spi replay samples consumed per
			// transition received, each update consuming one batch.
			if lim := int(spi * float64(received) / float64(batchSz)); allowed > lim {
				allowed = lim
			}
		}
		for updates < allowed {
			t.learner.LearnStep(t.cfg.VersionEvery)
			updates++
		}
		if done && updates >= allowed {
			// The fleet is gone; a ratio-capped remainder will never be
			// unlocked by new experience.
			break
		}
		if updates < budget {
			time.Sleep(remotePollInterval)
		}
	}

	// Graceful drain: every subsequent push is still accepted but
	// tells its actor to stop. Spawned fleets are then simply waited
	// for; external fleets are given until pushes quiesce.
	service.BeginDrain()
	if spawned {
		<-childrenDone
	} else {
		quiesce(t.learner)
	}
	t.remoteStats = service.ActorStats()
	_, received := t.learner.Stats()
	if received > t.cfg.TotalSteps {
		received = t.cfg.TotalSteps
	}
	t.steps = received
	if err := srv.Close(); err != nil {
		return err
	}
	childMu.Lock()
	defer childMu.Unlock()
	return childErr
}

// Note for external (non-spawned) fleets: the pacing loop terminates
// only once TotalSteps transitions have been received — the trainer
// blocks until its actors deliver. Give genuinely remote deployments
// a step budget sized to what the fleet will actually produce.

// quiesce waits until the learner stops receiving experience (two
// consecutive quiet polls) or a bounded timeout, so external actors'
// in-flight pushes land before the server closes.
func quiesce(l *Learner) {
	const poll = 50 * time.Millisecond
	const limit = 3 * time.Second
	_, last := l.Stats()
	quiet := 0
	for waited := time.Duration(0); waited < limit && quiet < 2; waited += poll {
		time.Sleep(poll)
		_, now := l.Stats()
		if now == last {
			quiet++
		} else {
			quiet = 0
		}
		last = now
	}
}
