package apex

import (
	"math/rand"
	"sync/atomic"

	"greennfv/internal/rl/ddpg"
	"greennfv/internal/rl/replay"
)

// This file is the learner half of the parallel pipeline: a sampler
// goroutine prefetches the next minibatch from the sharded replay
// while the learner consumes the current one. Every stage blocks on
// channels — the polling loop and scheduler-yield handoff the
// pre-pipeline learner needed to let actors at the replay mutex are
// gone, and TestNoBusyWaitInParallel keeps them out of this file.

// minibatch is one prefetched sample set. Two rotate through the
// free/ready channels; their slices are reused for the whole run, so
// the steady-state learner loop allocates nothing.
type minibatch struct {
	samples []replay.Transition
	indices []int
	weights []float64
}

// startLearnerPipeline launches the sampler and learner goroutines
// and returns a channel closed when the learner has spent its budget
// (or given up). The sampler waits for warmReady (warmup passed and
// one batch buffered) before drawing; if the actors finish first it
// learns only when they left enough data behind — the update budget
// is otherwise spent exactly, matching the round-robin mode.
//
// With SamplesPerInsert > 0 the sampler additionally paces itself to
// the actors: before drawing minibatch p it requires
// (p+1)·batch ≤ SPI·inserted, blocking on the learner's coalesced
// ingest notification (never polling) until actors catch up. Once the
// actors are done a still-starved sampler gives up the remaining
// budget rather than replaying a stale buffer ad infinitum.
func (t *Trainer) startLearnerPipeline(agent *ddpg.Agent, batch, budget int, stop *atomic.Bool, warmReady, actorsDone <-chan struct{}) <-chan struct{} {
	learnerDone := make(chan struct{})
	if budget <= 0 {
		close(learnerDone)
		return learnerDone
	}
	free := make(chan *minibatch, 2)
	ready := make(chan *minibatch, 2)
	for i := 0; i < 2; i++ {
		free <- &minibatch{
			samples: make([]replay.Transition, 0, batch),
			indices: make([]int, 0, batch),
			weights: make([]float64, 0, batch),
		}
	}
	go func() { // sampler
		defer close(ready)
		rng := rand.New(rand.NewSource(agent.Config().Seed*0x5DEECE66D + 11))
		select {
		case <-warmReady:
		case <-actorsDone:
			// Actors finished (or died) before the warmup gate
			// opened; learn only if they left enough data behind.
			if agent.BufferLen() < batch {
				return
			}
		}
		spi := t.cfg.SamplesPerInsert
		for produced := 0; produced < budget && !stop.Load(); produced++ {
			for spi > 0 && float64((produced+1)*batch) > spi*float64(t.learner.received.Load()) {
				select {
				case <-t.learner.ingestNotify():
					// recheck the ratio with the fresh insert count
				case <-actorsDone:
					if float64((produced+1)*batch) > spi*float64(t.learner.received.Load()) {
						return // actors gone, ratio unreachable
					}
				}
			}
			mb := <-free
			s, idx, w := agent.SampleReplayInto(rng, batch, mb.samples, mb.indices, mb.weights)
			if s == nil {
				return
			}
			mb.samples, mb.indices, mb.weights = s, idx, w
			ready <- mb
		}
	}()
	go func() { // learner
		defer close(learnerDone)
		for mb := range ready {
			t.learner.LearnBatchStep(mb.samples, mb.indices, mb.weights, t.cfg.VersionEvery)
			free <- mb
		}
	}()
	return learnerDone
}
