package apex

import (
	"testing"
	"time"

	"greennfv/internal/rl/ddpg"
)

// rpcLearner builds a small learner for transport tests.
func rpcLearner(t *testing.T) *Learner {
	t.Helper()
	cfg := ddpg.DefaultConfig(4, 3)
	cfg.Hidden = []int{8}
	cfg.BatchSize = 4
	agent, err := ddpg.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	learner, err := NewLearner(agent)
	if err != nil {
		t.Fatal(err)
	}
	return learner
}

func rpcBatch(n int) []Experience {
	batch := make([]Experience, n)
	for i := range batch {
		batch[i] = Experience{
			State: []float64{1, 2, 3, 4}, Action: []float64{0.1, 0.2, 0.3},
			Reward: 0.5, NextState: []float64{4, 3, 2, 1}, Priority: 1,
		}
	}
	return batch
}

// TestPushOnStoppedLearner pins the failure mode of pushing to a
// learner whose server is gone: the plain Client fails immediately,
// and the reconnecting RemoteLearner fails only after exhausting its
// redial budget, with the transport error preserved in the chain.
func TestPushOnStoppedLearner(t *testing.T) {
	learner := rpcLearner(t)
	srv, err := Serve(learner, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	client, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.RegisterAs(0); err != nil {
		t.Fatal(err)
	}
	if err := client.PushExperience(rpcBatch(2)); err != nil {
		t.Fatalf("push to live server: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	if err := client.PushExperience(rpcBatch(2)); err == nil {
		t.Error("push on stopped learner succeeded")
	}
	if _, _, err := client.PullParams(0); err == nil {
		t.Error("pull on stopped learner succeeded")
	}

	rl := NewRemoteLearner(addr, 0)
	rl.MaxRetries = 2
	rl.Backoff = time.Millisecond
	defer rl.Close()
	start := time.Now()
	if err := rl.PushExperience(rpcBatch(2)); err == nil {
		t.Error("remote push on stopped learner succeeded")
	}
	// 2 retries at 1ms + 2ms backoff: well under a second even on a
	// loaded box, and proof the retry loop terminates.
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("retry loop took %v", elapsed)
	}
}

// TestPullStaleVersion pins PullParams semantics over RPC: a stale
// version gets the full parameter payload, the current version gets
// nil bytes.
func TestPullStaleVersion(t *testing.T) {
	learner := rpcLearner(t)
	srv, err := Serve(learner, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.RegisterAs(0); err != nil {
		t.Fatal(err)
	}

	v, data, err := client.PullParams(0) // stale: learner starts at 1
	if err != nil {
		t.Fatal(err)
	}
	if v < 1 || len(data) == 0 {
		t.Errorf("stale pull returned version %d, %d bytes; want params", v, len(data))
	}
	v2, data2, err := client.PullParams(v) // current
	if err != nil {
		t.Fatal(err)
	}
	if v2 != v || data2 != nil {
		t.Errorf("current pull returned version %d, %d bytes; want %d, nil", v2, len(data2), v)
	}
}

// TestClientReconnectAfterRestart restarts the server on the same
// address and checks that a RemoteLearner carries on (redial) while
// the plain Client stays dead — the property that lets a killed
// learner come back without wedging its actor fleet.
func TestClientReconnectAfterRestart(t *testing.T) {
	learner := rpcLearner(t)
	srv, err := Serve(learner, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()

	plain, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	rl := NewRemoteLearner(addr, 3)
	rl.Backoff = time.Millisecond
	defer rl.Close()
	if err := rl.PushExperience(rpcBatch(1)); err != nil {
		t.Fatal(err)
	}

	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	srv2, err := Serve(learner, addr)
	if err != nil {
		t.Fatalf("restart on %s: %v", addr, err)
	}
	defer srv2.Close()

	if err := rl.PushExperience(rpcBatch(1)); err != nil {
		t.Errorf("remote learner did not survive server restart: %v", err)
	}
	if _, _, err := rl.PullParams(0); err != nil {
		t.Errorf("pull after restart: %v", err)
	}
	if err := plain.PushExperience(rpcBatch(1)); err == nil {
		t.Error("plain client survived a server restart without redial support")
	}

	// The restarted service starts with fresh per-actor stats; the
	// push above must be attributed to actor 3.
	stats := srv2.Service().ActorStats()
	if st := stats[3]; st.Pushes != 1 || st.Transitions != 1 {
		t.Errorf("actor 3 stats after reconnect: %+v", st)
	}
}

// TestDrainSignal pins the graceful-drain contract: after BeginDrain
// a push is still accepted (the experience is not wasted) but the
// reply carries the stop signal, which RemoteLearner latches.
func TestDrainSignal(t *testing.T) {
	learner := rpcLearner(t)
	srv, err := Serve(learner, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	rl := NewRemoteLearner(srv.Addr(), 1)
	defer rl.Close()
	if _, err := rl.Register(); err != nil {
		t.Fatal(err)
	}
	if err := rl.PushExperience(rpcBatch(2)); err != nil {
		t.Fatal(err)
	}
	if rl.Draining() {
		t.Fatal("draining before BeginDrain")
	}

	srv.Service().BeginDrain()
	if !srv.Service().Draining() {
		t.Error("service does not report draining")
	}
	if err := rl.PushExperience(rpcBatch(3)); err != nil {
		t.Fatalf("push during drain rejected: %v", err)
	}
	if !rl.Draining() {
		t.Error("actor did not latch the drain signal")
	}
	_, transitions := learner.Stats()
	if transitions != 5 {
		t.Errorf("learner holds %d transitions, want 5 (drain must not drop batches)", transitions)
	}
	st := srv.Service().ActorStats()[1]
	if !st.Registered || st.Pushes != 2 || st.Transitions != 5 {
		t.Errorf("actor 1 stats: %+v", st)
	}
}
