package apex

import (
	"encoding/json"
	"fmt"
	"io"

	"greennfv/internal/env"
	"greennfv/internal/perfmodel"
	"greennfv/internal/rl/ddpg"
	"greennfv/internal/sla"
)

// This file defines the JSON contract between a trainer and its
// remote actor processes: everything an actor needs to rebuild the
// training environment and its local network copy from scratch in a
// fresh OS process. Closures (EnvFactory) cannot cross a process
// boundary, so the remote mode ships this spec instead; the trainer
// normalizes it (normalizeSpec, remote.go) so the actor's agent
// hyperparameters — network shape above all — always match the
// learner's.

// FlowSpec is one offered traffic flow in an ActorSpec.
type FlowSpec struct {
	// PPS is the mean packet rate.
	PPS float64 `json:"pps"`
	// FrameBytes is the Ethernet frame size (64-1518).
	FrameBytes int `json:"frame_bytes"`
	// Burstiness is the index of dispersion (1 = Poisson).
	Burstiness float64 `json:"burstiness"`
}

// ActorSpec describes a remote actor's environment and agent so a
// separate process (cmd/apexactor) can reconstruct both. It is the
// unit the trainer writes, as JSON, to each spawned actor's stdin.
//
// Seeding and exploration follow the in-process trainer exactly:
// actor rank r steps an environment seeded EnvSeed+131r with a local
// network seeded AgentSeed+101r and OU noise sigma
// BaseSigma*(1+r/2) — the Ape-X exploration ladder.
type ActorSpec struct {
	// Chain selects the calibrated service chain: "standard"
	// (default), "heavy", or "light".
	Chain string `json:"chain,omitempty"`
	// Flows is the offered workload; empty selects the paper's
	// five-flow evaluation mix.
	Flows []FlowSpec `json:"flows,omitempty"`
	// LoadJitter is the per-interval relative load noise.
	LoadJitter float64 `json:"load_jitter"`
	// SLA is the reward model (sla.SLA is a plain struct and
	// round-trips through JSON; Kind marshals as its integer value).
	SLA sla.SLA `json:"sla"`
	// EnvSeed is the base environment seed (rank r adds 131r).
	EnvSeed int64 `json:"env_seed"`

	// Agent is the full agent hyperparameter template — the same
	// ddpg.Config the learner runs, so remote actors compute TD
	// priorities and exploration exactly like in-process actors
	// would. The trainer copies its learner's configuration here when
	// spawning (hidden sizes MUST match or parameter loads fail); a
	// zero value (no hidden layers) selects ddpg defaults. State and
	// action dims are filled from the environment, and Seed/OUSigma
	// are overridden per rank (Seed+101r, the BaseSigma ladder).
	Agent ddpg.Config `json:"agent"`
	// BaseSigma is rank 0's OU exploration noise; later ranks explore
	// harder (sigma multiplied by 1+r/2). Zero means greedy actors —
	// the same semantics as TrainerConfig.BaseSigma.
	BaseSigma float64 `json:"base_sigma"`

	// PushEvery is the experience-flush interval in steps.
	PushEvery int `json:"push_every"`
	// SyncEvery is the parameter-pull interval in steps.
	SyncEvery int `json:"sync_every"`
	// Steps is this actor's environment-step budget; 0 means run
	// until the learner signals drain.
	Steps int `json:"steps,omitempty"`
}

// validateEnv checks the environment half of the spec (all BuildEnv
// needs; the trainer probes dimensions before it has normalized the
// exchange cadence).
func (s *ActorSpec) validateEnv() error {
	switch s.Chain {
	case "", "standard", "heavy", "light":
	default:
		return fmt.Errorf("apex: unknown chain %q (want standard, heavy or light)", s.Chain)
	}
	if s.BaseSigma < 0 {
		return fmt.Errorf("apex: negative BaseSigma %v", s.BaseSigma)
	}
	return nil
}

// Validate reports whether the spec can run an actor.
func (s *ActorSpec) Validate() error {
	if err := s.validateEnv(); err != nil {
		return err
	}
	if s.PushEvery <= 0 || s.SyncEvery <= 0 {
		return fmt.Errorf("apex: spec needs positive PushEvery/SyncEvery (got %d/%d)", s.PushEvery, s.SyncEvery)
	}
	return nil
}

// chainSpec resolves the chain preset.
func (s *ActorSpec) chainSpec() perfmodel.ChainSpec {
	switch s.Chain {
	case "heavy":
		return perfmodel.HeavyChain()
	case "light":
		return perfmodel.LightChain()
	default:
		return perfmodel.StandardChain()
	}
}

// BuildEnv constructs the environment for one actor rank.
func (s *ActorSpec) BuildEnv(rank int) (*env.Env, error) {
	if err := s.validateEnv(); err != nil {
		return nil, err
	}
	flows := make([]env.FlowLoad, 0, len(s.Flows))
	for _, f := range s.Flows {
		flows = append(flows, env.FlowLoad{PPS: f.PPS, FrameBytes: f.FrameBytes, Burstiness: f.Burstiness})
	}
	if len(flows) == 0 {
		flows = env.StandardWorkload()
	}
	return env.New(env.Config{
		Model:      perfmodel.Default(),
		Chain:      s.chainSpec(),
		Bounds:     perfmodel.DefaultBounds(),
		SLA:        s.SLA,
		Flows:      flows,
		LoadJitter: s.LoadJitter,
		Seed:       s.EnvSeed + int64(rank)*131,
	})
}

// EnvFactory adapts the spec to the trainer's per-actor factory
// signature (used for the dimension probe in remote mode).
func (s *ActorSpec) EnvFactory() func(actorID int) (*env.Env, error) {
	return func(actorID int) (*env.Env, error) { return s.BuildEnv(actorID) }
}

// agentConfig builds the rank's local-network configuration from the
// spec's agent template, applying the exploration ladder exactly like
// the in-process trainer does (seed +101 per rank, sigma scaled
// unconditionally — BaseSigma 0 means greedy, in both modes).
func (s *ActorSpec) agentConfig(stateDim, actionDim, rank int) ddpg.Config {
	cfg := s.Agent
	if len(cfg.Hidden) == 0 {
		cfg = ddpg.DefaultConfig(0, 0)
	}
	cfg.StateDim, cfg.ActionDim = stateDim, actionDim
	cfg.Seed += int64(rank) * 101
	cfg.OUSigma = s.BaseSigma * (1 + 0.5*float64(rank))
	return cfg
}

// DecodeActorSpec reads one JSON-encoded spec.
func DecodeActorSpec(r io.Reader) (ActorSpec, error) {
	var s ActorSpec
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return ActorSpec{}, fmt.Errorf("apex: decode actor spec: %w", err)
	}
	return s, s.Validate()
}

// Encode writes the spec as one line of JSON.
func (s *ActorSpec) Encode(w io.Writer) error {
	return json.NewEncoder(w).Encode(s)
}
