// Package apex implements the distributed learning architecture of
// Horgan et al. ("Distributed Prioritized Experience Replay") that
// GreenNFV layers on top of DDPG (paper §4.3.2, Algorithm 3):
// NF-controller actors generate experience under the current policy,
// attach locally computed TD priorities, and push batches to a
// central learner; the learner samples the shared prioritized replay,
// updates the networks, and periodically broadcasts fresh parameters
// back to the actors.
//
// # Paper mapping
//
// Algorithm 3 (NF_CONTROLLER actors + central learner) and the
// six-node deployment of the paper's evaluation: NF controllers on
// the chain-hosting servers feed one central learner. The training
// curves of Figures 6–8 come from Trainer runs.
//
// # Training modes
//
// Trainer runs one of three modes:
//
//   - Round-robin (default): actors interleave single-threaded.
//     Deterministic given the seeds — the mode behind every recorded
//     figure; its outputs are byte-diffed across PRs.
//   - Parallel (TrainerConfig.Parallel): ONE VecActor driver
//     goroutine (vecactor.go) steps every actor environment through
//     a VecEnv with a single batched policy pass per round, while a
//     sampler/learner pipeline (prefetch.go) runs batched updates
//     over the lock-striped replay. Fastest in-process mode; NOT
//     deterministic.
//   - Remote (TrainerConfig.RemoteActors): the paper's multi-node
//     split. The trainer serves the learner over net/rpc (rpc.go)
//     and actors run as separate OS processes (cmd/apexactor,
//     spawned via SpawnRemote or started externally against
//     ListenAddr), reconstructing environments from a JSON ActorSpec
//     and exchanging experience/parameters through a reconnecting
//     RemoteLearner client. NOT deterministic.
//
// All three modes spend the same learner-update budget
// (LearnPerStep × post-warmup steps), so they are comparable runs of
// the same algorithm, not different algorithms.
//
// # Concurrency and determinism
//
// The Learner's experience ingest (PushExperience) is lock-free with
// pooled conversion scratch — concurrent pushes neither serialize
// each other nor stall behind a learning step; its mutex guards only
// the parameter broadcast (version + serialized actor cache).
// Actors are single-threaded and own their environments. The
// net/rpc transport (Server/Client/RemoteLearner) is goroutine-safe;
// per-actor connection lifecycle (registration, push stats, drain)
// lives in LearnerService. Only the round-robin mode is
// deterministic; tests and figures rely on it.
//
// # Actor stepping: arena, batched priorities, verification
//
// Actor.Step and the VecActor round are zero-allocation in steady
// state. Each PushEvery window's transitions live in one flat
// txnArena chunk (arena.go) instead of per-step slices; priorities
// are settled lazily at Flush/SyncParams time with one
// ddpg.TDErrorBatch call over the window — bit-identical to eager
// scalar TDError because the priority nets are untouched by
// parameter broadcasts (see internal/rl/ddpg doc). What happens to
// the chunk after PushExperience is the learner's call:
// LearnerAPI.RetainsExperience reports whether the endpoint keeps
// aliases of the pushed slices (the in-process Learner does; Client
// and RemoteLearner gob-serialize inside the call and do not), and
// the arena recycles the chunk through a free list only when it may.
// BenchmarkActorStep and TestActorStepAllocGate pin the 0 allocs/op
// contract.
//
// ActorConfig.VerifyPriorities (cmd/apexactor -verifyprio) makes an
// actor recompute every settled window with scalar TDError and fail
// loudly on any bit mismatch — the cross-process e2e test runs remote
// actors under it, proving batched priorities are bit-for-bit across
// the RPC boundary.
//
// # Learner pacing
//
// TrainerConfig.SamplesPerInsert bounds how far the learner may run
// ahead of experience ingest in the concurrent modes (Reverb-style
// samples-to-inserts ratio). The sampler blocks on the learner's
// ingest signal whenever drawing the next minibatch would exceed
// ratio × transitions received, so a starved learner waits for fresh
// experience instead of replaying a stale buffer; the remote mode
// applies the same cap to its update budget. Zero (the default)
// preserves the fixed LearnPerStep budget of the comparable-runs
// contract above.
//
// # Fault tolerance
//
// The remote mode assumes processes and the network fail, and makes
// every failure either recoverable or loud:
//
//   - Learner crash: with TrainerConfig.CheckpointPath set the
//     trainer atomically writes its full training state (the agent's
//     SaveState blob plus version/progress counters; checkpoint.go)
//     every CheckpointEvery updates and after drain. Trainer.Resume
//     restores it — a SIGKILL'd learner restarts mid-budget with
//     bit-exact weights, and with CheckpointReplay even its next
//     updates are bit-exact. Files are magic-tagged and
//     CRC-checksummed; a torn or corrupt checkpoint is rejected, not
//     half-loaded.
//   - Actor crash: spawned ranks are supervised (remote.go). A
//     crashed rank is respawned on its original sigma/seed ladder
//     rung with jittered exponential backoff, at most
//     MaxActorRestarts times; exhausting the budget fails the round
//     instead of training on with a hole in the exploration ladder.
//   - Zombie actors: Register issues a per-actor epoch, and every
//     Push/Pull carries it. A respawn supersedes the old epoch, so a
//     hung predecessor's late calls fail fatally (ErrStaleActorEpoch)
//     rather than corrupting the new incarnation's accounting; an
//     unregistered ID is rejected outright (ErrUnregisteredActor).
//     Drain is additionally bounded by DrainTimeout of push-heartbeat
//     silence, after which stragglers are killed.
//   - Network faults: every client call has a deadline (Client.
//     Timeout) that tears down the connection rather than wedging a
//     goroutine; RemoteLearner redials with jittered exponential
//     backoff and transparently re-registers (fresh epoch) when the
//     learner restarted — only deliberate rejections are fatal.
//
// FaultProxy (faultrpc.go) injects drops, delays and partitions
// between actors and learner for tests; TestChaosKillResume drives
// the whole story — crash-injected actor, lossy proxy, SIGKILL'd and
// resumed learner — and still demands the full update budget and
// bit-exact restored weights across processes.
package apex
