// Package apex implements the distributed learning architecture of
// Horgan et al. ("Distributed Prioritized Experience Replay") that
// GreenNFV layers on top of DDPG (paper §4.3.2, Algorithm 3):
// NF-controller actors generate experience under the current policy,
// attach locally computed TD priorities, and push batches to a
// central learner; the learner samples the shared prioritized replay,
// updates the networks, and periodically broadcasts fresh parameters
// back to the actors.
//
// # Paper mapping
//
// Algorithm 3 (NF_CONTROLLER actors + central learner) and the
// six-node deployment of the paper's evaluation: NF controllers on
// the chain-hosting servers feed one central learner. The training
// curves of Figures 6–8 come from Trainer runs.
//
// # Training modes
//
// Trainer runs one of three modes:
//
//   - Round-robin (default): actors interleave single-threaded.
//     Deterministic given the seeds — the mode behind every recorded
//     figure; its outputs are byte-diffed across PRs.
//   - Parallel (TrainerConfig.Parallel): actor goroutines step
//     private environments while a sampler/learner pipeline
//     (prefetch.go) runs batched updates over the lock-striped
//     replay. Fastest in-process mode; NOT deterministic.
//   - Remote (TrainerConfig.RemoteActors): the paper's multi-node
//     split. The trainer serves the learner over net/rpc (rpc.go)
//     and actors run as separate OS processes (cmd/apexactor,
//     spawned via SpawnRemote or started externally against
//     ListenAddr), reconstructing environments from a JSON ActorSpec
//     and exchanging experience/parameters through a reconnecting
//     RemoteLearner client. NOT deterministic.
//
// All three modes spend the same learner-update budget
// (LearnPerStep × post-warmup steps), so they are comparable runs of
// the same algorithm, not different algorithms.
//
// # Concurrency and determinism
//
// The Learner's experience ingest (PushExperience) is lock-free with
// pooled conversion scratch — concurrent pushes neither serialize
// each other nor stall behind a learning step; its mutex guards only
// the parameter broadcast (version + serialized actor cache).
// Actors are single-threaded and own their environments. The
// net/rpc transport (Server/Client/RemoteLearner) is goroutine-safe;
// per-actor connection lifecycle (registration, push stats, drain)
// lives in LearnerService. Only the round-robin mode is
// deterministic; tests and figures rely on it.
package apex
