package apex

import (
	"math"
	"testing"

	"greennfv/internal/rl/ddpg"
	"greennfv/internal/sla"
)

// TestParallelTrainerSmoke runs a short concurrent training session
// (meaningful under -race) and checks the basic invariants the
// deterministic mode guarantees: monotone snapshot episodes, finite
// rewards and measurements, and a learner that actually learned.
func TestParallelTrainerSmoke(t *testing.T) {
	cfg := DefaultTrainerConfig(600)
	cfg.Actors = 3
	cfg.Parallel = true
	cfg.EnvFactory = envFactory(sla.NewEnergyEfficiency())
	cfg.AgentConfig = ddpg.DefaultConfig(0, 0)
	cfg.AgentConfig.Hidden = []int{24, 24}
	cfg.AgentConfig.BatchSize = 16
	cfg.AgentConfig.Seed = 11
	tr, err := NewTrainer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Run(); err != nil {
		t.Fatal(err)
	}

	if len(tr.Snapshots) == 0 {
		t.Fatal("parallel run recorded no snapshots")
	}
	prev := 0
	for _, s := range tr.Snapshots {
		if s.Episode <= prev {
			t.Errorf("snapshot episodes not monotone: %d after %d", s.Episode, prev)
		}
		prev = s.Episode
		if math.IsNaN(s.Reward) || math.IsNaN(s.ThroughputGbps) || math.IsNaN(s.EnergyJ) {
			t.Errorf("snapshot %d has NaN fields: %+v", s.Episode, s)
		}
		if s.ThroughputGbps < 0 || s.EnergyJ <= 0 {
			t.Errorf("snapshot %d: tput=%v energy=%v", s.Episode, s.ThroughputGbps, s.EnergyJ)
		}
	}

	total := 0
	for _, a := range tr.Actors() {
		total += a.Steps()
	}
	if total != 600 {
		t.Errorf("actors took %d steps, want exactly 600", total)
	}
	if tr.Learner().Agent().LearnSteps() == 0 {
		t.Error("parallel learner never updated")
	}
	_, transitions := tr.Learner().Stats()
	if transitions < 400 {
		t.Errorf("learner received only %d transitions", transitions)
	}

	// The trained policy must evaluate cleanly.
	e, err := envFactory(sla.NewEnergyEfficiency())(7)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tr.GreedyEval(e, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.ThroughputGbps <= 0 || math.IsNaN(res.ThroughputGbps) {
		t.Errorf("greedy eval after parallel training: %+v", res)
	}
}

// TestParallelFloat32 runs the concurrent mode with the
// single-precision learner (meaningful under -race: actors pull f64
// broadcasts that ActorBytes flushes from the f32 mirrors while the
// learner trains) and checks the run completes with the full update
// budget, the policy lands back in f64 for greedy evaluation, and the
// f32 path is switched off after the run.
func TestParallelFloat32(t *testing.T) {
	cfg := DefaultTrainerConfig(400)
	cfg.Actors = 2
	cfg.Parallel = true
	cfg.Float32 = true
	cfg.EnvFactory = envFactory(sla.NewEnergyEfficiency())
	cfg.AgentConfig = ddpg.DefaultConfig(0, 0)
	cfg.AgentConfig.Hidden = []int{24, 24}
	cfg.AgentConfig.BatchSize = 16
	cfg.AgentConfig.Seed = 13
	tr, err := NewTrainer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Run(); err != nil {
		t.Fatal(err)
	}
	want := cfg.LearnPerStep * (cfg.TotalSteps - cfg.WarmupSteps)
	agent := tr.Learner().Agent()
	if got := agent.LearnSteps(); got != want {
		t.Errorf("f32 learner ran %d updates, want %d", got, want)
	}
	if agent.Float32() {
		t.Error("f32 path still enabled after the run")
	}
	e, err := envFactory(sla.NewEnergyEfficiency())(9)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tr.GreedyEval(e, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.ThroughputGbps <= 0 || math.IsNaN(res.ThroughputGbps) {
		t.Errorf("greedy eval after f32 parallel training: %+v", res)
	}
}

// TestParallelMatchesBudget verifies the learner runs the same update
// budget as the round-robin mode would at the same step count.
func TestParallelMatchesBudget(t *testing.T) {
	s, err := sla.NewMaxThroughput(2000)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultTrainerConfig(300)
	cfg.Actors = 2
	cfg.Parallel = true
	cfg.EnvFactory = envFactory(s)
	cfg.AgentConfig = ddpg.DefaultConfig(0, 0)
	cfg.AgentConfig.Hidden = []int{16, 16}
	cfg.AgentConfig.BatchSize = 8
	cfg.AgentConfig.Seed = 5
	tr, err := NewTrainer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Run(); err != nil {
		t.Fatal(err)
	}
	want := cfg.LearnPerStep * (cfg.TotalSteps - cfg.WarmupSteps)
	if got := tr.Learner().Agent().LearnSteps(); got != want {
		t.Errorf("learner ran %d updates, want %d", got, want)
	}
}
