package apex

import (
	"net"
	"sync"
	"testing"
	"time"
)

// proxyFixture stands a learner server up behind a FaultProxy.
func proxyFixture(t *testing.T, seed int64) (*Learner, *Server, *FaultProxy) {
	t.Helper()
	learner := rpcLearner(t)
	srv, err := Serve(learner, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	proxy, err := NewFaultProxy(srv.Addr(), seed)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { proxy.Close() })
	return learner, srv, proxy
}

// TestFaultProxyTransparent pins that a rule-free proxy is invisible
// to the RPC layer: register, push and pull all work through it.
func TestFaultProxyTransparent(t *testing.T) {
	learner, _, proxy := proxyFixture(t, 1)
	client, err := Dial(proxy.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.RegisterAs(0); err != nil {
		t.Fatal(err)
	}
	if err := client.PushExperience(rpcBatch(3)); err != nil {
		t.Fatal(err)
	}
	if _, data, err := client.PullParams(0); err != nil || len(data) == 0 {
		t.Fatalf("pull through proxy: %d bytes, %v", len(data), err)
	}
	if _, transitions := learner.Stats(); transitions != 3 {
		t.Errorf("learner got %d transitions through proxy, want 3", transitions)
	}
	if st := proxy.Stats(); st.Accepted == 0 {
		t.Errorf("proxy stats show no accepted connections: %+v", st)
	}
}

// TestFaultProxyDropsAndRetry pins the retry story end to end: with
// the proxy killing every new connection, a RemoteLearner exhausts its
// retries and fails; once the fault is lifted the same RemoteLearner
// recovers on the next call.
func TestFaultProxyDropsAndRetry(t *testing.T) {
	learner, _, proxy := proxyFixture(t, 2)
	rl := NewRemoteLearner(proxy.Addr(), 1)
	rl.MaxRetries = 2
	rl.Backoff = time.Millisecond
	defer rl.Close()

	proxy.SetRule(FaultRule{DropProb: 1})
	if err := rl.PushExperience(rpcBatch(1)); err == nil {
		t.Fatal("push through a fully lossy proxy succeeded")
	}
	if st := proxy.Stats(); st.Dropped == 0 {
		t.Errorf("no connections dropped: %+v", st)
	}

	proxy.SetRule(FaultRule{})
	if err := rl.PushExperience(rpcBatch(2)); err != nil {
		t.Fatalf("push after fault lifted: %v", err)
	}
	if _, transitions := learner.Stats(); transitions != 2 {
		t.Errorf("learner got %d transitions, want 2", transitions)
	}
}

// TestFaultProxyDelay pins the delay rule: calls still succeed, just
// slower, and the proxy counts them.
func TestFaultProxyDelay(t *testing.T) {
	_, _, proxy := proxyFixture(t, 3)
	proxy.SetRule(FaultRule{DelayProb: 1, Delay: 20 * time.Millisecond})
	start := time.Now()
	client, err := Dial(proxy.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.RegisterAs(0); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Errorf("delayed connection completed in %v, want >= 20ms", elapsed)
	}
	if st := proxy.Stats(); st.Delayed == 0 {
		t.Errorf("no connections delayed: %+v", st)
	}
}

// TestFaultProxyPartition pins partition semantics: existing
// connections are severed and new ones refused until the partition
// heals, after which a RemoteLearner recovers by redialing.
func TestFaultProxyPartition(t *testing.T) {
	learner, _, proxy := proxyFixture(t, 4)
	rl := NewRemoteLearner(proxy.Addr(), 2)
	rl.MaxRetries = 2
	rl.Backoff = time.Millisecond
	defer rl.Close()
	if err := rl.PushExperience(rpcBatch(1)); err != nil {
		t.Fatal(err)
	}

	proxy.Partition(true)
	if err := rl.PushExperience(rpcBatch(1)); err == nil {
		t.Fatal("push across a partition succeeded")
	}
	if st := proxy.Stats(); st.Refused == 0 {
		t.Errorf("partition refused no connections: %+v", st)
	}

	proxy.Partition(false)
	if err := rl.PushExperience(rpcBatch(1)); err != nil {
		t.Fatalf("push after partition healed: %v", err)
	}
	if _, transitions := learner.Stats(); transitions != 2 {
		t.Errorf("learner got %d transitions, want 2", transitions)
	}
}

// TestFaultProxyCloseUnderChurn hammers the proxy with concurrent
// dials — under a rule that parks every connection in a drop or delay
// sleep — while Close runs. The race detector covers close ordering
// (no double-close, no copy goroutine racing forget); the test itself
// pins that Close returns promptly instead of waiting out the
// injected delay, and that a dial landing mid-shutdown cannot wedge
// the proxy or leak a goroutine past wg.Wait.
func TestFaultProxyCloseUnderChurn(t *testing.T) {
	_, _, proxy := proxyFixture(t, 5)
	proxy.SetRule(FaultRule{DropProb: 0.3, DelayProb: 0.7, Delay: 5 * time.Second})
	addr := proxy.Addr()

	var dialers sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 8; i++ {
		dialers.Add(1)
		go func() {
			defer dialers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				conn, err := net.Dial("tcp", addr)
				if err != nil {
					return // listener closed: shutdown reached us
				}
				conn.Write([]byte("x"))
				conn.Close()
			}
		}()
	}
	// Let connections pile up inside the fault sleeps.
	time.Sleep(10 * time.Millisecond)

	start := time.Now()
	if err := proxy.Close(); err != nil {
		t.Fatalf("close under churn: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("Close took %v — blocked behind the injected 5s delay", elapsed)
	}
	close(stop)
	dialers.Wait()

	if err := proxy.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}
