package apex

import (
	"math"
	"math/rand"
	"testing"

	"greennfv/internal/env"
	"greennfv/internal/rl/ddpg"
	"greennfv/internal/rl/replay"
	"greennfv/internal/sla"
)

// captureLearner is a LearnerAPI double that deep-copies every pushed
// batch (so arena recycling cannot corrupt the record) and never ships
// parameters, keeping the acting networks frozen for parity checks.
type captureLearner struct {
	pushed []Experience
	retain bool
}

func (c *captureLearner) PushExperience(batch []Experience) error {
	for _, e := range batch {
		e.State = append([]float64(nil), e.State...)
		e.Action = append([]float64(nil), e.Action...)
		e.NextState = append([]float64(nil), e.NextState...)
		c.pushed = append(c.pushed, e)
	}
	return nil
}

func (c *captureLearner) PullParams(haveVersion int) (int, []byte, error) { return 1, nil, nil }
func (c *captureLearner) RetainsExperience() bool                         { return c.retain }

// discardLearner drops pushes without copying — the zero-alloc gate's
// non-retaining endpoint.
type discardLearner struct{}

func (discardLearner) PushExperience([]Experience) error   { return nil }
func (discardLearner) PullParams(int) (int, []byte, error) { return 1, nil, nil }
func (discardLearner) RetainsExperience() bool             { return false }

// TestVecActorMatchesScalarStepping is the batched-acting parity
// gate: a VecActor round (ActBatch over a VecEnv) must produce
// bit-identical transitions AND priorities to per-actor scalar
// stepping — same forwards, same per-lane noise draws, same
// environment trajectories — at any actor count. Meaningful under
// -race (the VecEnv steps lanes across the worker pool).
func TestVecActorMatchesScalarStepping(t *testing.T) {
	for _, n := range []int{1, 3, 4} {
		agentCfg := ddpg.DefaultConfig(0, 0)
		agentCfg.Hidden = []int{16, 16}
		agentCfg.Seed = 29
		factory := envFactory(sla.NewEnergyEfficiency())

		// Batched side: shared agent, VecEnv over n fresh environments,
		// per-lane noise ladder.
		envs := make([]*env.Env, n)
		ladder := make([]ddpg.Config, n)
		for i := range envs {
			e, err := factory(i)
			if err != nil {
				t.Fatal(err)
			}
			envs[i] = e
			c := agentCfg
			c.StateDim, c.ActionDim = e.StateDim(), e.ActionDim()
			c.Seed = agentCfg.Seed + int64(i)*101
			c.OUSigma = 0.3 * (1 + 0.5*float64(i))
			ladder[i] = c
		}
		vec, err := env.NewVecEnv(envs, 0)
		if err != nil {
			t.Fatal(err)
		}
		const seedBase = 77
		vec.Reset(seedBase)
		shared, err := ddpg.New(ladder[0])
		if err != nil {
			t.Fatal(err)
		}
		const pushEvery = 4
		va := newVecActor(shared, vec, noiseLadder(vec.ActionDim(), ladder), pushEvery, 8)
		cap := &captureLearner{}
		const rounds = 12
		for r := 0; r < rounds; r++ {
			if _, _, err := va.StepRound(cap); err != nil {
				t.Fatal(err)
			}
		}
		if va.Steps() != rounds*n {
			t.Fatalf("n=%d: VecActor took %d steps, want %d", n, va.Steps(), rounds*n)
		}

		// Scalar reference: same weights, same noise streams, same env
		// seeds, stepped one lane at a time.
		ref, err := ddpg.New(ladder[0])
		if err != nil {
			t.Fatal(err)
		}
		refNoises := make([]*ddpg.OUNoise, n)
		refEnvs := make([]*env.Env, n)
		states := make([][]float64, n)
		for i := range refNoises {
			refNoises[i] = ddpg.NewOUNoise(vec.ActionDim(), ladder[i].OUTheta, ladder[i].OUSigma,
				rand.New(rand.NewSource(ladder[i].Seed)))
			e, err := factory(i)
			if err != nil {
				t.Fatal(err)
			}
			refEnvs[i] = e
			states[i] = append([]float64(nil), e.Reset(seedBase+int64(i)*131)...)
		}
		want := make([]Experience, 0, rounds*n)
		for r := 0; r < rounds; r++ {
			for i := 0; i < n; i++ {
				action := append([]float64(nil), ref.Actor.Forward(states[i])...)
				noise := refNoises[i].Sample()
				for j := range action {
					action[j] += noise[j]
					if action[j] < -1 {
						action[j] = -1
					}
					if action[j] > 1 {
						action[j] = 1
					}
				}
				next := make([]float64, vec.StateDim())
				reward, _, err := refEnvs[i].StepInto(action, next)
				if err != nil {
					t.Fatal(err)
				}
				tr := replay.Transition{State: states[i], Action: action, Reward: reward, NextState: next}
				want = append(want, Experience{
					State: states[i], Action: action, Reward: reward, NextState: next,
					Priority: math.Abs(ref.TDError(tr)),
				})
				states[i] = next
			}
		}

		if len(cap.pushed) != len(want) {
			t.Fatalf("n=%d: pushed %d transitions, want %d", n, len(cap.pushed), len(want))
		}
		for k, got := range cap.pushed {
			w := want[k]
			if got.Reward != w.Reward || got.Priority != w.Priority {
				t.Fatalf("n=%d transition %d: reward/priority %v/%v, want %v/%v (not bit-identical)",
					n, k, got.Reward, got.Priority, w.Reward, w.Priority)
			}
			for j := range w.State {
				if got.State[j] != w.State[j] || got.NextState[j] != w.NextState[j] {
					t.Fatalf("n=%d transition %d: state mismatch at %d", n, k, j)
				}
			}
			for j := range w.Action {
				if got.Action[j] != w.Action[j] {
					t.Fatalf("n=%d transition %d: action[%d] = %v, want %v", n, k, j, got.Action[j], w.Action[j])
				}
			}
		}
	}
}

// TestActorStepAllocGate pins the zero-alloc actor step. With a
// non-retaining learner the arena recycles its chunks and the steady
// state allocates nothing at all; the in-process learner retains
// pushed slices, leaving exactly one chunk handoff per PushEvery
// window — still well under one allocation per step.
func TestActorStepAllocGate(t *testing.T) {
	build := func(t *testing.T) *Actor {
		e, err := envFactory(sla.NewEnergyEfficiency())(0)
		if err != nil {
			t.Fatal(err)
		}
		acfg := ddpg.DefaultConfig(e.StateDim(), e.ActionDim())
		acfg.Seed = 23
		actor, err := NewActor(ActorConfig{
			ID: 0, Env: e, AgentConfig: acfg, PushEvery: 8, SyncEvery: 16,
		})
		if err != nil {
			t.Fatal(err)
		}
		return actor
	}

	t.Run("non-retaining", func(t *testing.T) {
		actor := build(t)
		learner := discardLearner{}
		for i := 0; i < 64; i++ { // warm arena free list and scratch
			if _, _, err := actor.Step(learner); err != nil {
				t.Fatal(err)
			}
		}
		if avg := testing.AllocsPerRun(200, func() {
			if _, _, err := actor.Step(learner); err != nil {
				t.Fatal(err)
			}
		}); avg != 0 {
			t.Errorf("Step allocates %.3f per step with a non-retaining learner, want 0", avg)
		}
	})

	t.Run("retaining", func(t *testing.T) {
		actor := build(t)
		agent, err := ddpg.New(ddpg.DefaultConfig(actor.env.StateDim(), actor.env.ActionDim()))
		if err != nil {
			t.Fatal(err)
		}
		learner, err := NewLearner(agent)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 64; i++ {
			if _, _, err := actor.Step(learner); err != nil {
				t.Fatal(err)
			}
		}
		if avg := testing.AllocsPerRun(200, func() {
			if _, _, err := actor.Step(learner); err != nil {
				t.Fatal(err)
			}
		}); avg >= 1 {
			t.Errorf("Step allocates %.3f per step with the in-process learner, want < 1 (one chunk per %d-step window)",
				avg, actor.pushEvery)
		}
	})
}

// TestSamplesPerInsertPacesLearner pins the adaptive pacing knob under
// actor starvation: with SamplesPerInsert=1 the learner may consume at
// most one replay sample per inserted transition, so a 2-updates-per-
// step budget (4352 samples' worth) collapses to at most
// TotalSteps/BatchSize updates — the learner blocked for experience
// instead of replaying the stale buffer.
func TestSamplesPerInsertPacesLearner(t *testing.T) {
	cfg := DefaultTrainerConfig(200)
	cfg.Actors = 2
	cfg.Parallel = true
	cfg.LearnPerStep = 2
	cfg.SamplesPerInsert = 1
	cfg.EnvFactory = envFactory(sla.NewEnergyEfficiency())
	cfg.AgentConfig = ddpg.DefaultConfig(0, 0)
	cfg.AgentConfig.Hidden = []int{12}
	cfg.AgentConfig.BatchSize = 16
	cfg.AgentConfig.Seed = 19
	tr, err := NewTrainer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Run(); err != nil {
		t.Fatal(err)
	}
	got := tr.Learner().Agent().LearnSteps()
	maxUpdates := int(cfg.SamplesPerInsert * float64(cfg.TotalSteps) / float64(cfg.AgentConfig.BatchSize))
	budget := cfg.LearnPerStep * (cfg.TotalSteps - cfg.WarmupSteps)
	if maxUpdates >= budget {
		t.Fatalf("test misconfigured: ratio cap %d does not bind budget %d", maxUpdates, budget)
	}
	if got == 0 {
		t.Fatal("paced learner never updated")
	}
	if got > maxUpdates {
		t.Errorf("learner ran %d updates, SamplesPerInsert=%v allows at most %d",
			got, cfg.SamplesPerInsert, maxUpdates)
	}
}
