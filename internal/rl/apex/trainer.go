package apex

import (
	"errors"
	"fmt"

	"greennfv/internal/env"
	"greennfv/internal/perfmodel"
	"greennfv/internal/rl/ddpg"
)

// Snapshot is one point of a training-progress curve — the quantities
// the paper plots in Figures 6–8: achieved throughput, energy,
// efficiency, and the knob trajectory (CPU usage, core frequency,
// LLC allocation, DMA buffer size, batch size).
type Snapshot struct {
	Episode        int
	ThroughputGbps float64
	EnergyJ        float64
	Efficiency     float64
	Reward         float64
	CPUPercent     float64
	FreqGHz        float64
	LLCPercent     float64
	DMAMB          float64
	Batch          float64
}

// SnapshotOf summarizes an environment's current knobs and result.
func SnapshotOf(episode int, e *env.Env, res perfmodel.Result, reward float64) Snapshot {
	ks := e.Knobs()
	var freq, llc, dma, batch float64
	for _, k := range ks {
		freq += k.FreqGHz
		llc += k.LLCFraction
		dma += float64(k.DMABytes)
		batch += float64(k.Batch)
	}
	n := float64(len(ks))
	return Snapshot{
		Episode:        episode,
		ThroughputGbps: res.ThroughputGbps,
		EnergyJ:        res.EnergyJoules,
		Efficiency:     res.Efficiency,
		Reward:         reward,
		CPUPercent:     res.CPUPercent,
		FreqGHz:        freq / n,
		LLCPercent:     llc / n * 100,
		DMAMB:          dma / n / (1 << 20),
		Batch:          batch / n,
	}
}

// TrainerConfig sizes a training run.
type TrainerConfig struct {
	// Actors is the worker count (the paper distributes actors over
	// the cluster; in-process they interleave round-robin for
	// determinism).
	Actors int
	// TotalSteps is the total environment steps across all actors
	// (the paper's "episodes").
	TotalSteps int
	// LearnPerStep is how many learner updates run per actor step.
	LearnPerStep int
	// WarmupSteps delays learning until the replay has data.
	WarmupSteps int
	// PushEvery / SyncEvery configure the actors.
	PushEvery, SyncEvery int
	// VersionEvery bumps the broadcast parameter version every N
	// learner updates.
	VersionEvery int
	// SnapshotEvery records a training-progress snapshot every N
	// steps (the paper samples every 2000 episodes).
	SnapshotEvery int
	// BaseSigma is actor 0's OU noise; each additional actor gets
	// progressively more exploration (Ape-X's per-actor epsilon).
	BaseSigma float64
	// Parallel selects truly concurrent training — actor goroutines
	// stepping their own environments while a sampler/learner pipeline
	// runs batched updates over a lock-striped replay, the
	// architecture of Horgan et al. — instead of the deterministic
	// round-robin interleaving. Round-robin remains the default: it is
	// reproducible, which tests and recorded figures rely on.
	Parallel bool
	// ReplayShards sets the lock-stripe count of the parallel mode's
	// sharded replay buffer (0 = GOMAXPROCS, clamped to [2, 16]).
	// Ignored by the deterministic round-robin mode, which keeps the
	// single-tree buffer.
	ReplayShards int
	// EnvFactory builds one environment per actor (distinct seeds).
	EnvFactory func(actorID int) (*env.Env, error)
	// AgentConfig templates the learner and actor networks; state
	// and action dims are filled from the environment.
	AgentConfig ddpg.Config
}

// DefaultTrainerConfig returns a configuration matched to the
// GreenNFV environment: small networks, four actors, snapshot
// cadence proportional to run length.
func DefaultTrainerConfig(totalSteps int) TrainerConfig {
	snap := totalSteps / 40
	if snap < 1 {
		snap = 1
	}
	return TrainerConfig{
		Actors:        4,
		TotalSteps:    totalSteps,
		LearnPerStep:  1,
		WarmupSteps:   64,
		PushEvery:     8,
		SyncEvery:     16,
		VersionEvery:  8,
		SnapshotEvery: snap,
		BaseSigma:     0.3,
	}
}

// Trainer orchestrates an in-process Ape-X run.
type Trainer struct {
	cfg     TrainerConfig
	learner *Learner
	actors  []*Actor
	// Snapshots is the recorded training curve.
	Snapshots []Snapshot
	steps     int
}

// NewTrainer wires the learner and actors.
func NewTrainer(cfg TrainerConfig) (*Trainer, error) {
	if cfg.Actors <= 0 {
		return nil, errors.New("apex: need at least one actor")
	}
	if cfg.TotalSteps <= 0 {
		return nil, errors.New("apex: TotalSteps must be positive")
	}
	if cfg.EnvFactory == nil {
		return nil, errors.New("apex: need an environment factory")
	}
	probe, err := cfg.EnvFactory(0)
	if err != nil {
		return nil, err
	}
	agentCfg := cfg.AgentConfig
	agentCfg.StateDim = probe.StateDim()
	agentCfg.ActionDim = probe.ActionDim()
	agentCfg.Prioritized = true
	learnerAgent, err := ddpg.New(agentCfg)
	if err != nil {
		return nil, err
	}
	learner, err := NewLearner(learnerAgent)
	if err != nil {
		return nil, err
	}
	t := &Trainer{cfg: cfg, learner: learner}
	for i := 0; i < cfg.Actors; i++ {
		e := probe
		if i > 0 {
			e, err = cfg.EnvFactory(i)
			if err != nil {
				return nil, err
			}
		}
		aCfg := agentCfg
		aCfg.Seed = agentCfg.Seed + int64(i)*101
		// Ape-X exploration ladder: later actors explore harder.
		aCfg.OUSigma = cfg.BaseSigma * (1 + 0.5*float64(i))
		aCfg.NoiseDecay = agentCfg.NoiseDecay
		actor, err := NewActor(ActorConfig{
			ID: i, Env: e, AgentConfig: aCfg,
			PushEvery: cfg.PushEvery, SyncEvery: cfg.SyncEvery,
		})
		if err != nil {
			return nil, err
		}
		t.actors = append(t.actors, actor)
	}
	return t, nil
}

// Learner exposes the central learner.
func (t *Trainer) Learner() *Learner { return t.learner }

// Actors exposes the actor pool.
func (t *Trainer) Actors() []*Actor { return t.actors }

// Run executes the configured number of steps, either deterministic
// round-robin (default) or truly concurrent (cfg.Parallel), recording
// snapshots from actor 0.
func (t *Trainer) Run() error {
	if t.cfg.Parallel {
		return t.runParallel()
	}
	return t.runRoundRobin()
}

// runRoundRobin interleaves actors single-threaded — deterministic,
// which suits both tests and the figure harness.
func (t *Trainer) runRoundRobin() error {
	var last0 perfmodel.Result
	var lastR0 float64
	have0 := false
	for t.steps < t.cfg.TotalSteps {
		for _, actor := range t.actors {
			if t.steps >= t.cfg.TotalSteps {
				break
			}
			reward, info, err := actor.Step(t.learner)
			if err != nil {
				return fmt.Errorf("apex: actor %d: %w", actor.ID, err)
			}
			if actor.ID == 0 {
				last0, lastR0, have0 = info, reward, true
			}
			t.steps++
			if t.steps > t.cfg.WarmupSteps {
				for l := 0; l < t.cfg.LearnPerStep; l++ {
					t.learner.LearnStep(t.cfg.VersionEvery)
				}
			}
			if have0 && t.cfg.SnapshotEvery > 0 && t.steps%t.cfg.SnapshotEvery == 0 {
				t.Snapshots = append(t.Snapshots,
					SnapshotOf(t.steps, t.actors[0].Env(), last0, lastR0))
			}
		}
	}
	return nil
}

// GreedyEval runs the learned deterministic policy on a fresh
// environment for a few settling steps and returns the final
// measurement — the paper's periodic "testing" of the trained model.
func (t *Trainer) GreedyEval(e *env.Env, settle int) (perfmodel.Result, error) {
	if settle < 1 {
		settle = 1
	}
	state := e.Reset(9999)
	var last perfmodel.Result
	for i := 0; i < settle; i++ {
		action := t.learner.Agent().Greedy(state)
		next, _, info, err := e.Step(action)
		if err != nil {
			return perfmodel.Result{}, err
		}
		state = next
		last = info
	}
	return last, nil
}
