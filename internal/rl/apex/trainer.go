package apex

import (
	"errors"
	"fmt"
	"time"

	"greennfv/internal/atomicio"
	"greennfv/internal/env"
	"greennfv/internal/perfmodel"
	"greennfv/internal/rl/ddpg"
)

// Snapshot is one point of a training-progress curve — the quantities
// the paper plots in Figures 6–8: achieved throughput, energy,
// efficiency, and the knob trajectory (CPU usage, core frequency,
// LLC allocation, DMA buffer size, batch size).
type Snapshot struct {
	Episode        int
	ThroughputGbps float64
	EnergyJ        float64
	Efficiency     float64
	Reward         float64
	CPUPercent     float64
	FreqGHz        float64
	LLCPercent     float64
	DMAMB          float64
	Batch          float64
}

// SnapshotOf summarizes an environment's current knobs and result.
func SnapshotOf(episode int, e env.Stepper, res perfmodel.Result, reward float64) Snapshot {
	ks := e.Knobs()
	var freq, llc, dma, batch float64
	for _, k := range ks {
		freq += k.FreqGHz
		llc += k.LLCFraction
		dma += float64(k.DMABytes)
		batch += float64(k.Batch)
	}
	n := float64(len(ks))
	return Snapshot{
		Episode:        episode,
		ThroughputGbps: res.ThroughputGbps,
		EnergyJ:        res.EnergyJoules,
		Efficiency:     res.Efficiency,
		Reward:         reward,
		CPUPercent:     res.CPUPercent,
		FreqGHz:        freq / n,
		LLCPercent:     llc / n * 100,
		DMAMB:          dma / n / (1 << 20),
		Batch:          batch / n,
	}
}

// TrainerConfig sizes a training run.
type TrainerConfig struct {
	// Actors is the worker count (the paper distributes actors over
	// the cluster; in-process they interleave round-robin for
	// determinism).
	Actors int
	// TotalSteps is the total environment steps across all actors
	// (the paper's "episodes").
	TotalSteps int
	// LearnPerStep is how many learner updates run per actor step.
	LearnPerStep int
	// WarmupSteps delays learning until the replay has data.
	WarmupSteps int
	// PushEvery / SyncEvery configure the actors.
	PushEvery, SyncEvery int
	// VersionEvery bumps the broadcast parameter version every N
	// learner updates.
	VersionEvery int
	// SnapshotEvery records a training-progress snapshot every N
	// steps (the paper samples every 2000 episodes).
	SnapshotEvery int
	// BaseSigma is actor 0's OU noise; each additional actor gets
	// progressively more exploration (Ape-X's per-actor epsilon).
	BaseSigma float64
	// SamplesPerInsert, when positive, caps how far the learner may run
	// ahead of the actors in the asynchronous modes (Parallel, remote):
	// at most SamplesPerInsert replay samples are consumed per inserted
	// transition, so a fast learner blocks for fresh experience instead
	// of replaying a stale buffer (the ratio knob of Reverb-style
	// samplers). Zero (the default) disables pacing and the update
	// budget is spent exactly; the deterministic round-robin mode
	// ignores it — its learn cadence is fixed by LearnPerStep.
	SamplesPerInsert float64
	// Parallel selects truly concurrent training — actor goroutines
	// stepping their own environments while a sampler/learner pipeline
	// runs batched updates over a lock-striped replay, the
	// architecture of Horgan et al. — instead of the deterministic
	// round-robin interleaving. Round-robin remains the default: it is
	// reproducible, which tests and recorded figures rely on.
	Parallel bool
	// ReplayShards sets the lock-stripe count of the parallel mode's
	// sharded replay buffer (0 = GOMAXPROCS, clamped to [2, 16]).
	// Ignored by the deterministic round-robin mode, which keeps the
	// single-tree buffer.
	ReplayShards int
	// Float32 runs the learner's updates through the single-precision
	// NN fast path (8-lane AVX2 kernels, roughly 1.3x the f64 update
	// rate) in the Parallel and RemoteActors modes. The trained policy
	// is flushed back to float64 when the run ends, and every
	// parameter broadcast carries the current weights. Ignored by the
	// deterministic round-robin mode, whose recorded figures depend on
	// the f64 path staying byte-identical; parity of the f32 update is
	// bounded by the ddpg package's f32-vs-f64 test (max |ΔQ| well
	// under 1e-3 over a fixed schedule).
	Float32 bool
	// RemoteActors selects the multi-process mode (the paper's
	// six-node deployment): the trainer serves the learner over
	// net/rpc and RemoteActors actor processes connect as RPC
	// clients, each with its own environment and exploration
	// intensity. Actors/EnvFactory/Parallel are ignored; RemoteSpec
	// is required. Like Parallel, the run is not deterministic; the
	// figure harness keeps round-robin.
	RemoteActors int
	// SpawnRemote, when non-empty, is the argv prefix the trainer
	// execs to launch each actor process (typically the cmd/apexactor
	// binary). The trainer appends "-learner ADDR -rank R -steps N"
	// and writes the normalized RemoteSpec JSON to the child's stdin.
	// Empty means actors are launched externally (multi-machine
	// deployments) and connect to ListenAddr themselves.
	SpawnRemote []string
	// ListenAddr is the learner's RPC bind address in remote mode
	// ("" = 127.0.0.1 on an ephemeral port, the right choice when
	// SpawnRemote runs actors on this host).
	ListenAddr string
	// RemoteSpec tells remote actor processes how to rebuild the
	// environment and local network; the trainer normalizes cadence,
	// network shape and seeds from this config before serving it.
	RemoteSpec *ActorSpec
	// AdvertiseAddr, when non-empty, is the learner address handed to
	// spawned actor processes instead of the actual listen address —
	// the hook that routes actor traffic through a proxy (the chaos
	// tests put a faultrpc.FaultProxy here). External fleets ignore
	// it; they dial whatever they were configured with.
	AdvertiseAddr string
	// CheckpointPath, when non-empty, makes the remote mode write an
	// atomic training checkpoint (see WriteCheckpoint) every
	// CheckpointEvery learner updates and again after drain, so a
	// killed trainer resumes mid-budget via Resume. CheckpointReplay
	// additionally snapshots the replay buffer into each checkpoint —
	// required for bit-exact update parity after restore, at the cost
	// of checkpoint size.
	CheckpointPath   string
	CheckpointEvery  int
	CheckpointReplay bool
	// MaxActorRestarts bounds how many times the trainer respawns one
	// crashed spawned-actor rank (original sigma/seed ladder rung,
	// jittered exponential backoff). Zero disables supervision: a
	// crashed rank stays down, as before.
	MaxActorRestarts int
	// ActorRestartBackoff is the initial respawn delay, doubling per
	// restart of the same rank (default 250ms when zero).
	ActorRestartBackoff time.Duration
	// DrainTimeout bounds how long drain waits for a spawned fleet
	// after the last push heartbeat before killing the stragglers, so
	// a wedged actor cannot hang the round forever. Zero waits
	// indefinitely (the pre-supervision behavior).
	DrainTimeout time.Duration
	// EnvFactory builds one environment per actor (distinct seeds).
	EnvFactory func(actorID int) (*env.Env, error)
	// StepperFactory is EnvFactory's generalization for environments
	// that are not the single-node *env.Env (the multi-node
	// ClusterEnv). Used only when EnvFactory is nil; remote mode and
	// Parallel require single-node EnvFactory environments, so
	// stepper-built trainers run the deterministic round-robin path.
	StepperFactory func(actorID int) (env.Stepper, error)
	// AgentConfig templates the learner and actor networks; state
	// and action dims are filled from the environment.
	AgentConfig ddpg.Config
}

// DefaultTrainerConfig returns a configuration matched to the
// GreenNFV environment: small networks, four actors, snapshot
// cadence proportional to run length.
func DefaultTrainerConfig(totalSteps int) TrainerConfig {
	snap := totalSteps / 40
	if snap < 1 {
		snap = 1
	}
	return TrainerConfig{
		Actors:        4,
		TotalSteps:    totalSteps,
		LearnPerStep:  1,
		WarmupSteps:   64,
		PushEvery:     8,
		SyncEvery:     16,
		VersionEvery:  8,
		SnapshotEvery: snap,
		BaseSigma:     0.3,
		// Supervision default: a crashed actor rank gets two respawns
		// before the round is declared failed.
		MaxActorRestarts:    2,
		ActorRestartBackoff: 250 * time.Millisecond,
	}
}

// Trainer orchestrates an Ape-X run: in-process actors (round-robin
// or Parallel) or remote actor processes (RemoteActors).
type Trainer struct {
	cfg     TrainerConfig
	learner *Learner
	actors  []*Actor
	// Snapshots is the recorded training curve. Remote mode records
	// none: actor environments live in other processes.
	Snapshots   []Snapshot
	steps       int
	remoteStats map[int]ActorStats
	// Checkpoint/resume state (checkpoint.go).
	resumePath     string
	resumedUpdates int
}

// NewTrainer wires the learner and actors.
func NewTrainer(cfg TrainerConfig) (*Trainer, error) {
	remote := cfg.RemoteActors > 0
	if !remote && cfg.Actors <= 0 {
		return nil, errors.New("apex: need at least one actor")
	}
	if cfg.TotalSteps <= 0 {
		return nil, errors.New("apex: TotalSteps must be positive")
	}
	if remote {
		if cfg.RemoteSpec == nil {
			return nil, errors.New("apex: remote mode needs a RemoteSpec")
		}
		// The spec is the single source of truth in remote mode: the
		// learner's dimension probe must come from the same env
		// construction the actor processes will use, or the learner
		// and actor network shapes could silently diverge. Any
		// caller-supplied EnvFactory is ignored, as documented.
		cfg.EnvFactory = cfg.RemoteSpec.EnvFactory()
	}
	factory := cfg.StepperFactory
	if cfg.EnvFactory != nil {
		ef := cfg.EnvFactory
		factory = func(actorID int) (env.Stepper, error) { return ef(actorID) }
	}
	if factory == nil {
		return nil, errors.New("apex: need an environment factory")
	}
	probe, err := factory(0)
	if err != nil {
		return nil, err
	}
	agentCfg := cfg.AgentConfig
	agentCfg.StateDim = probe.StateDim()
	agentCfg.ActionDim = probe.ActionDim()
	agentCfg.Prioritized = true
	learnerAgent, err := ddpg.New(agentCfg)
	if err != nil {
		return nil, err
	}
	learner, err := NewLearner(learnerAgent)
	if err != nil {
		return nil, err
	}
	t := &Trainer{cfg: cfg, learner: learner, resumedUpdates: -1}
	if remote {
		// Normalize a private copy of the spec so actor processes
		// reconstruct networks and cadence that match this learner.
		spec := *cfg.RemoteSpec
		normalizeSpec(&spec, t.cfg, agentCfg)
		if err := spec.Validate(); err != nil {
			return nil, err
		}
		t.cfg.RemoteSpec = &spec
		return t, nil
	}
	for i := 0; i < cfg.Actors; i++ {
		e := probe
		if i > 0 {
			e, err = factory(i)
			if err != nil {
				return nil, err
			}
		}
		aCfg := agentCfg
		aCfg.Seed = agentCfg.Seed + int64(i)*101
		// Ape-X exploration ladder: later actors explore harder.
		aCfg.OUSigma = cfg.BaseSigma * (1 + 0.5*float64(i))
		aCfg.NoiseDecay = agentCfg.NoiseDecay
		actor, err := NewActor(ActorConfig{
			ID: i, Env: e, AgentConfig: aCfg,
			PushEvery: cfg.PushEvery, SyncEvery: cfg.SyncEvery,
		})
		if err != nil {
			return nil, err
		}
		t.actors = append(t.actors, actor)
	}
	return t, nil
}

// Learner exposes the central learner.
func (t *Trainer) Learner() *Learner { return t.learner }

// Actors exposes the actor pool.
func (t *Trainer) Actors() []*Actor { return t.actors }

// Run executes the configured number of steps: deterministic
// round-robin (default, snapshots from actor 0), truly concurrent
// in-process (cfg.Parallel), or multi-process over net/rpc
// (cfg.RemoteActors).
func (t *Trainer) Run() error {
	if t.cfg.CheckpointPath != "" {
		// A previous run killed mid-write may have left checkpoint temp
		// files behind; the atomic rename protocol makes them garbage by
		// construction, so clear them before producing new ones.
		if _, err := atomicio.Sweep(t.cfg.CheckpointPath); err != nil {
			return fmt.Errorf("apex: sweep checkpoint temps: %w", err)
		}
	}
	if t.cfg.RemoteActors > 0 {
		return t.runRemote()
	}
	if t.cfg.Parallel {
		return t.runParallel()
	}
	return t.runRoundRobin()
}

// RemoteActorStats returns the learner-side per-actor records of the
// last remote run (rank → stats); nil for in-process runs.
func (t *Trainer) RemoteActorStats() map[int]ActorStats { return t.remoteStats }

// runRoundRobin interleaves actors single-threaded — deterministic,
// which suits both tests and the figure harness.
func (t *Trainer) runRoundRobin() error {
	if err := t.applyResume(); err != nil {
		return err
	}
	var last0 perfmodel.Result
	var lastR0 float64
	have0 := false
	for t.steps < t.cfg.TotalSteps {
		for _, actor := range t.actors {
			if t.steps >= t.cfg.TotalSteps {
				break
			}
			reward, info, err := actor.Step(t.learner)
			if err != nil {
				return fmt.Errorf("apex: actor %d: %w", actor.ID, err)
			}
			if actor.ID == 0 {
				last0, lastR0, have0 = info, reward, true
			}
			t.steps++
			if t.steps > t.cfg.WarmupSteps {
				for l := 0; l < t.cfg.LearnPerStep; l++ {
					t.learner.LearnStep(t.cfg.VersionEvery)
				}
			}
			if have0 && t.cfg.SnapshotEvery > 0 && t.steps%t.cfg.SnapshotEvery == 0 {
				t.Snapshots = append(t.Snapshots,
					SnapshotOf(t.steps, t.actors[0].Env(), last0, lastR0))
			}
		}
	}
	return nil
}

// GreedyEval runs the learned deterministic policy on a fresh
// environment for a few settling steps and returns the final
// measurement — the paper's periodic "testing" of the trained model.
func (t *Trainer) GreedyEval(e env.Stepper, settle int) (perfmodel.Result, error) {
	if settle < 1 {
		settle = 1
	}
	state := e.Reset(9999)
	var last perfmodel.Result
	for i := 0; i < settle; i++ {
		action := t.learner.Agent().Greedy(state)
		next, _, info, err := e.Step(action)
		if err != nil {
			return perfmodel.Result{}, err
		}
		state = next
		last = info
	}
	return last, nil
}
