package apex

import (
	"testing"

	"greennfv/internal/env"
	"greennfv/internal/perfmodel"
	"greennfv/internal/rl/ddpg"
	"greennfv/internal/sla"
)

func envFactory(s sla.SLA) func(int) (*env.Env, error) {
	return func(actorID int) (*env.Env, error) {
		return env.New(env.Config{
			Model:      perfmodel.Default(),
			Chain:      perfmodel.StandardChain(),
			Bounds:     perfmodel.DefaultBounds(),
			SLA:        s,
			Flows:      env.StandardWorkload(),
			LoadJitter: 0.05,
			Seed:       int64(1000 + actorID),
		})
	}
}

func smallTrainer(t *testing.T, steps int) *Trainer {
	t.Helper()
	cfg := DefaultTrainerConfig(steps)
	cfg.Actors = 2
	cfg.EnvFactory = envFactory(sla.NewEnergyEfficiency())
	cfg.AgentConfig = ddpg.DefaultConfig(0, 0) // dims filled by trainer
	cfg.AgentConfig.Hidden = []int{24, 24}
	cfg.AgentConfig.BatchSize = 16
	cfg.AgentConfig.Seed = 7
	tr, err := NewTrainer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestTrainerValidation(t *testing.T) {
	cfg := DefaultTrainerConfig(100)
	if _, err := NewTrainer(cfg); err == nil {
		t.Error("missing env factory accepted")
	}
	cfg.EnvFactory = envFactory(sla.NewEnergyEfficiency())
	cfg.AgentConfig = ddpg.DefaultConfig(0, 0)
	cfg.Actors = 0
	if _, err := NewTrainer(cfg); err == nil {
		t.Error("zero actors accepted")
	}
	cfg.Actors = 1
	cfg.TotalSteps = 0
	if _, err := NewTrainer(cfg); err == nil {
		t.Error("zero steps accepted")
	}
}

func TestTrainerRunsAndSnapshots(t *testing.T) {
	tr := smallTrainer(t, 400)
	if err := tr.Run(); err != nil {
		t.Fatal(err)
	}
	if len(tr.Snapshots) == 0 {
		t.Fatal("no snapshots recorded")
	}
	for _, s := range tr.Snapshots {
		if s.ThroughputGbps < 0 || s.EnergyJ <= 0 {
			t.Errorf("snapshot %d: tput=%v energy=%v", s.Episode, s.ThroughputGbps, s.EnergyJ)
		}
		if s.FreqGHz < 1.2 || s.FreqGHz > 2.1 {
			t.Errorf("snapshot %d: freq %v outside ladder", s.Episode, s.FreqGHz)
		}
		if s.Batch < 1 || s.Batch > 256 {
			t.Errorf("snapshot %d: batch %v outside bounds", s.Episode, s.Batch)
		}
	}
	// Learner actually received experience from both actors.
	pushes, transitions := tr.Learner().Stats()
	if pushes == 0 || transitions < 300 {
		t.Errorf("learner got %d pushes / %d transitions", pushes, transitions)
	}
	if tr.Learner().Agent().LearnSteps() == 0 {
		t.Error("learner never updated")
	}
}

func TestGreedyEval(t *testing.T) {
	tr := smallTrainer(t, 200)
	if err := tr.Run(); err != nil {
		t.Fatal(err)
	}
	e, err := envFactory(sla.NewEnergyEfficiency())(99)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tr.GreedyEval(e, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.ThroughputGbps <= 0 || res.EnergyJoules <= 0 {
		t.Errorf("eval result %+v", res)
	}
}

func TestActorParameterSync(t *testing.T) {
	tr := smallTrainer(t, 0+64)
	// Run enough steps for at least one sync cycle.
	if err := tr.Run(); err != nil {
		t.Fatal(err)
	}
	for _, a := range tr.Actors() {
		if a.Steps() == 0 {
			t.Errorf("actor %d took no steps", a.ID)
		}
	}
}

func TestLearnerRejectsUniformAgent(t *testing.T) {
	cfg := ddpg.DefaultConfig(4, 2)
	cfg.Prioritized = false
	agent, err := ddpg.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewLearner(agent); err == nil {
		t.Error("uniform-replay learner accepted")
	}
	if _, err := NewLearner(nil); err == nil {
		t.Error("nil agent accepted")
	}
}

func TestActorValidation(t *testing.T) {
	if _, err := NewActor(ActorConfig{}); err == nil {
		t.Error("actor without env accepted")
	}
	e, _ := envFactory(sla.NewEnergyEfficiency())(0)
	cfg := ddpg.DefaultConfig(e.StateDim(), e.ActionDim())
	if _, err := NewActor(ActorConfig{Env: e, AgentConfig: cfg, PushEvery: 0, SyncEvery: 1}); err == nil {
		t.Error("zero PushEvery accepted")
	}
}

func TestRPCTransport(t *testing.T) {
	// Central learner over TCP; one remote actor trains against it.
	agentCfg := ddpg.DefaultConfig(12, 15)
	agentCfg.Hidden = []int{16, 16}
	agentCfg.BatchSize = 8
	agent, err := ddpg.New(agentCfg)
	if err != nil {
		t.Fatal(err)
	}
	learner, err := NewLearner(agent)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := Serve(learner, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.RegisterAs(0); err != nil {
		t.Fatal(err)
	}

	e, err := envFactory(sla.NewEnergyEfficiency())(0)
	if err != nil {
		t.Fatal(err)
	}
	actorCfg := agentCfg
	actorCfg.Seed = 31
	actor, err := NewActor(ActorConfig{ID: 0, Env: e, AgentConfig: actorCfg, PushEvery: 4, SyncEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if _, _, err := actor.Step(client); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		learner.LearnStep(4)
	}
	_, transitions := learner.Stats()
	if transitions < 30 {
		t.Errorf("rpc learner received only %d transitions", transitions)
	}
	// A second pull with the current version returns no payload.
	v, data, err := client.PullParams(1 << 30)
	if err != nil {
		t.Fatal(err)
	}
	if data != nil {
		t.Errorf("version %d pull returned %d stale bytes", v, len(data))
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	agent, _ := ddpg.New(ddpg.DefaultConfig(2, 2))
	learner, _ := NewLearner(agent)
	srv, err := Serve(learner, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
}
