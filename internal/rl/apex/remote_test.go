package apex

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"greennfv/internal/rl/ddpg"
	"greennfv/internal/sla"
)

// buildActorBinary compiles cmd/apexactor once per test binary run.
// The children are plain (non-race) builds; the race detector checks
// the trainer process, which is where all shared state lives.
func buildActorBinary(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "apexactor")
	cmd := exec.Command("go", "build", "-o", bin, "greennfv/cmd/apexactor")
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Skipf("cannot build apexactor (no toolchain?): %v\n%s", err, out)
	}
	return bin
}

// testSpec is the shared environment description for remote tests.
func testSpec() *ActorSpec {
	return &ActorSpec{
		SLA:        sla.NewEnergyEfficiency(),
		LoadJitter: 0.05,
		EnvSeed:    1000,
	}
}

// TestRemoteTrainingRound runs a real 2-process-actor training round
// end-to-end (meaningful under -race): the trainer serves the learner
// over net/rpc, spawns two apexactor subprocesses, and must see the
// full experience budget arrive over RPC, the parameter version
// propagate to both actors, and a clean shutdown.
func TestRemoteTrainingRound(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	bin := buildActorBinary(t)

	const total = 240
	cfg := DefaultTrainerConfig(total)
	cfg.RemoteActors = 2
	// -verifyprio makes each actor process cross-check every batched
	// TD-error priority against the scalar path and exit nonzero on any
	// bit difference, so this round also proves the batched priority
	// computation is bit-for-bit across processes.
	cfg.SpawnRemote = []string{bin, "-q", "-verifyprio"}
	cfg.RemoteSpec = testSpec()
	// The learner runs single-precision: every invariant below
	// (transition counts, update budget, version propagation) is
	// precision-independent, so this doubles as the end-to-end test of
	// the f32 path over RPC — actors must receive usable f64
	// broadcasts flushed from the f32 mirrors.
	cfg.Float32 = true
	cfg.WarmupSteps = 32
	cfg.VersionEvery = 4
	cfg.AgentConfig = ddpg.DefaultConfig(0, 0)
	cfg.AgentConfig.Hidden = []int{24, 24}
	cfg.AgentConfig.BatchSize = 16
	cfg.AgentConfig.Seed = 11

	tr, err := NewTrainer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- tr.Run() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(120 * time.Second):
		t.Fatal("remote training round did not finish")
	}

	// Experience counts: every environment step of both actors must
	// have arrived over RPC (Flush ships partial chunks).
	pushes, transitions := tr.Learner().Stats()
	if transitions != total {
		t.Errorf("learner received %d transitions over RPC, want %d", transitions, total)
	}
	if pushes == 0 {
		t.Error("no pushes recorded")
	}

	// Both ranks registered, pushed, and saw a broadcast parameter
	// version newer than the initial one.
	stats := tr.RemoteActorStats()
	if len(stats) != 2 {
		t.Fatalf("learner saw %d actors, want 2 (%+v)", len(stats), stats)
	}
	for rank := 0; rank < 2; rank++ {
		st, ok := stats[rank]
		if !ok {
			t.Fatalf("rank %d never registered (%+v)", rank, stats)
		}
		if !st.Registered {
			t.Errorf("rank %d pushed without registering", rank)
		}
		if st.Transitions != total/2 {
			t.Errorf("rank %d pushed %d transitions, want %d", rank, st.Transitions, total/2)
		}
		if st.LastVersion <= 1 {
			t.Errorf("rank %d never reported an updated param version (last %d)", rank, st.LastVersion)
		}
	}

	// The learner spent its full round-robin-equivalent budget.
	wantUpdates := cfg.LearnPerStep * (total - cfg.WarmupSteps)
	if got := tr.Learner().Agent().LearnSteps(); got != wantUpdates {
		t.Errorf("learner ran %d updates, want %d", got, wantUpdates)
	}
	if tr.steps != total {
		t.Errorf("trainer recorded %d steps, want %d", tr.steps, total)
	}
}

// TestRemoteTrainerValidation pins the remote-mode constructor
// contract: a spec is required, and its normalized copy must match
// the learner's network shape and the trainer's cadence.
func TestRemoteTrainerValidation(t *testing.T) {
	cfg := DefaultTrainerConfig(100)
	cfg.RemoteActors = 2
	if _, err := NewTrainer(cfg); err == nil {
		t.Error("remote mode without RemoteSpec did not error")
	}

	cfg.RemoteSpec = testSpec()
	cfg.AgentConfig = ddpg.DefaultConfig(0, 0)
	cfg.AgentConfig.Hidden = []int{24, 24}
	cfg.AgentConfig.Seed = 3
	cfg.AgentConfig.Gamma = 0.99 // non-default: must reach remote actors
	tr, err := NewTrainer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	spec := tr.cfg.RemoteSpec
	if got, want := spec.Agent.Hidden, cfg.AgentConfig.Hidden; len(got) != len(want) || got[0] != want[0] {
		t.Errorf("normalized spec Hidden = %v, want learner's %v", got, want)
	}
	if spec.PushEvery != cfg.PushEvery || spec.SyncEvery != cfg.SyncEvery {
		t.Errorf("normalized cadence %d/%d, want %d/%d",
			spec.PushEvery, spec.SyncEvery, cfg.PushEvery, cfg.SyncEvery)
	}
	if spec.Agent.Seed != cfg.AgentConfig.Seed {
		t.Errorf("normalized agent seed = %d, want %d", spec.Agent.Seed, cfg.AgentConfig.Seed)
	}
	if spec.Agent.Gamma != 0.99 {
		t.Errorf("normalized agent Gamma = %v, want the learner's 0.99 (hyperparameters must not silently reset to defaults)", spec.Agent.Gamma)
	}
	// The caller's spec must not be mutated.
	if cfg.RemoteSpec.PushEvery != 0 {
		t.Error("normalization mutated the caller's spec")
	}
}

// TestRetryBackoffCap pins the fix for the uncapped redial backoff:
// the per-attempt sleep doubles from Backoff but never exceeds
// MaxBackoff (2s default), so a user-raised MaxRetries against a
// flapping learner cannot stall an actor for minutes, and the
// doubling cannot overflow for any attempt count.
func TestRetryBackoffCap(t *testing.T) {
	r := NewRemoteLearner("127.0.0.1:1", 0)
	if r.MaxBackoff != 2*time.Second {
		t.Errorf("default MaxBackoff = %v, want 2s", r.MaxBackoff)
	}
	r.Backoff = 50 * time.Millisecond
	r.MaxBackoff = 400 * time.Millisecond
	want := []time.Duration{
		50 * time.Millisecond, 100 * time.Millisecond, 200 * time.Millisecond,
		400 * time.Millisecond, 400 * time.Millisecond, 400 * time.Millisecond,
	}
	for attempt, w := range want {
		if got := r.backoffFor(attempt); got != w {
			t.Errorf("backoffFor(%d) = %v, want %v", attempt, got, w)
		}
	}
	// A huge attempt count must neither overflow nor exceed the cap
	// (the old doubling would have overflowed past attempt 62).
	if got := r.backoffFor(100); got != r.MaxBackoff {
		t.Errorf("backoffFor(100) = %v, want %v", got, r.MaxBackoff)
	}
	// An unset cap falls back to the 2s default rather than uncapped.
	r.MaxBackoff = 0
	if got := r.backoffFor(100); got != 2*time.Second {
		t.Errorf("backoffFor with zero MaxBackoff = %v, want 2s", got)
	}
}

// TestNoRetryAfterDrain: once the learner has signalled drain, a
// transport failure is final — the actor must not burn its full
// backoff schedule against a learner that has already ended the
// round. Regression test for the drain-then-stall case: the old code
// retried MaxRetries times (seconds of sleep) before letting the
// actor exit.
func TestNoRetryAfterDrain(t *testing.T) {
	srv, err := Serve(rpcLearner(t), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv.Service().BeginDrain()

	r := NewRemoteLearner(srv.Addr(), 3)
	defer r.Close()
	r.MaxRetries = 10
	r.Backoff = 200 * time.Millisecond
	// The drain reply is still delivered with the accepted batch.
	if err := r.PushExperience([]Experience{{Priority: 1}}); err != nil {
		t.Fatal(err)
	}
	if !r.Draining() {
		t.Fatal("drain signal not latched from push reply")
	}

	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err = r.PushExperience([]Experience{{Priority: 1}})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("push to a closed learner succeeded")
	}
	if !strings.Contains(err.Error(), "draining") {
		t.Errorf("error does not mention the drain short-circuit: %v", err)
	}
	// One attempt, no backoff sleeps: far under even a single 200ms
	// retry delay.
	if elapsed >= 150*time.Millisecond {
		t.Errorf("drained call took %v, want an immediate failure (retries not skipped?)", elapsed)
	}
}

// TestActorSpecRoundTrip pins the JSON contract: a spec survives
// encode/decode and builds rank-laddered agents.
func TestActorSpecRoundTrip(t *testing.T) {
	spec := testSpec()
	spec.Chain = "light"
	spec.Agent = ddpg.DefaultConfig(0, 0)
	spec.Agent.Hidden = []int{16}
	spec.Agent.Gamma = 0.9
	spec.BaseSigma = 0.2
	spec.PushEvery, spec.SyncEvery = 4, 8
	spec.Steps = 50

	var buf strings.Builder
	if err := spec.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeActorSpec(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Chain != "light" || got.Steps != 50 || got.SLA.Kind != sla.EnergyEfficiency {
		t.Errorf("round-trip mismatch: %+v", got)
	}

	e, err := got.BuildEnv(1)
	if err != nil {
		t.Fatal(err)
	}
	a0 := got.agentConfig(e.StateDim(), e.ActionDim(), 0)
	a2 := got.agentConfig(e.StateDim(), e.ActionDim(), 2)
	if a0.OUSigma != 0.2 || a2.OUSigma != 0.2*2 {
		t.Errorf("exploration ladder broken: rank0 %v rank2 %v", a0.OUSigma, a2.OUSigma)
	}
	if a2.Seed != a0.Seed+202 {
		t.Errorf("seed ladder broken: rank0 %d rank2 %d", a0.Seed, a2.Seed)
	}
	if a0.Gamma != 0.9 || a2.Gamma != 0.9 {
		t.Errorf("agent template not honored: gammas %v/%v, want 0.9", a0.Gamma, a2.Gamma)
	}

	if _, err := DecodeActorSpec(strings.NewReader(`{"chain":"bogus","push_every":1,"sync_every":1}`)); err == nil {
		t.Error("bogus chain decoded without error")
	}
}
