package apex

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"greennfv/internal/atomicio"
	"greennfv/internal/rl/ddpg"
)

// Chaos end-to-end test: a full multi-process training round survives
// an actor crash (supervised respawn), degraded networking (fault
// proxy in front of the learner's RPC server) and a SIGKILL of the
// learner process mid-budget (checkpoint/Resume). The trainer runs in
// a subprocess — this test binary re-executes itself with
// GREENNFV_CHAOS_ROLE=trainer — so the parent can kill it with no
// opportunity for cleanup, exactly like a real crash.

// Environment variables carrying paths into the trainer subprocess.
const (
	chaosRoleEnv   = "GREENNFV_CHAOS_ROLE"
	chaosBinEnv    = "GREENNFV_CHAOS_BIN"
	chaosCkptEnv   = "GREENNFV_CHAOS_CKPT"
	chaosMarkEnv   = "GREENNFV_CHAOS_MARK"
	chaosStatusEnv = "GREENNFV_CHAOS_STATUS"
	chaosResumeEnv = "GREENNFV_CHAOS_RESUME"
)

// chaosTotalSteps sizes the run so the learner's first interval
// checkpoint lands long before the budget is spent, giving the parent
// a wide window to SIGKILL mid-run.
const chaosTotalSteps = 1200

// chaosConfig is the trainer configuration shared by both phases of
// the chaos run and by the parent's verification restore — all three
// must agree or the checkpoint restore would rightly refuse.
func chaosConfig(bin, ckpt, mark string) TrainerConfig {
	cfg := DefaultTrainerConfig(chaosTotalSteps)
	cfg.RemoteActors = 2
	// Rank 1 crashes once after 10 steps (the marker file disarms the
	// injection for its respawn); -verifyprio keeps the bit-exactness
	// check on batched priorities active throughout the chaos.
	cfg.SpawnRemote = []string{bin, "-q", "-verifyprio",
		"-crashat", "10", "-crashrank", "1", "-crashmark", mark}
	cfg.RemoteSpec = testSpec()
	cfg.WarmupSteps = 32
	cfg.VersionEvery = 4
	cfg.AgentConfig = ddpg.DefaultConfig(0, 0)
	cfg.AgentConfig.Hidden = []int{16, 16}
	cfg.AgentConfig.BatchSize = 16
	cfg.AgentConfig.Seed = 17
	cfg.ReplayShards = 2 // explicit: restores must match across processes
	cfg.CheckpointPath = ckpt
	cfg.CheckpointEvery = 20
	cfg.CheckpointReplay = true
	cfg.MaxActorRestarts = 3
	cfg.ActorRestartBackoff = 50 * time.Millisecond
	cfg.DrainTimeout = 20 * time.Second
	return cfg
}

// chaosStatus is what the (surviving) trainer subprocess reports back
// to the parent via a JSON file.
type chaosStatus struct {
	ResumedUpdates int    // updates carried by the checkpoint it resumed
	Updates        int    // final LearnSteps after the run
	Transitions    int    // experience received over RPC
	RestoredSHA    string // sha256 of ActorBytes right after an independent restore
}

// restoreSHA independently restores a checkpoint file into a freshly
// built trainer and hashes the actor weights — run in both the parent
// and the trainer subprocess, the two hashes prove the checkpoint is
// bit-exact across processes.
func restoreSHA(cfg TrainerConfig, path string) (string, error) {
	tr, err := NewTrainer(cfg)
	if err != nil {
		return "", err
	}
	if err := tr.installShardedReplay(tr.learner.Agent()); err != nil {
		return "", err
	}
	ck, err := ReadCheckpoint(path)
	if err != nil {
		return "", err
	}
	if err := tr.learner.restoreCheckpoint(ck); err != nil {
		return "", err
	}
	blob, err := tr.learner.Agent().ActorBytes()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:]), nil
}

// TestMain diverts re-executed copies of the test binary into the
// chaos trainer role; everything else runs the tests as usual.
func TestMain(m *testing.M) {
	if os.Getenv(chaosRoleEnv) == "trainer" {
		os.Exit(chaosTrainerMain())
	}
	os.Exit(m.Run())
}

// chaosTrainerMain is the trainer subprocess: learner RPC server
// behind a fault proxy, spawned supervised actor fleet, interval
// checkpoints, optional resume. Phase 1 of the test SIGKILLs it;
// phase 2 runs it to completion and reads the status file.
func chaosTrainerMain() int {
	fail := func(err error) int {
		fmt.Fprintln(os.Stderr, "chaos trainer:", err)
		return 1
	}
	cfg := chaosConfig(os.Getenv(chaosBinEnv), os.Getenv(chaosCkptEnv), os.Getenv(chaosMarkEnv))

	// Pre-pick the learner's port so the fault proxy can sit in front
	// of it: actors are pointed at the proxy via AdvertiseAddr.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fail(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	cfg.ListenAddr = addr
	proxy, err := NewFaultProxy(addr, 42)
	if err != nil {
		return fail(err)
	}
	defer proxy.Close()
	proxy.SetRule(FaultRule{DropProb: 0.05, DelayProb: 0.2, Delay: 2 * time.Millisecond})
	cfg.AdvertiseAddr = proxy.Addr()

	tr, err := NewTrainer(cfg)
	if err != nil {
		return fail(err)
	}
	resumePath := os.Getenv(chaosResumeEnv)
	restoredSHA := ""
	if resumePath != "" {
		// Independent verification restore first (hashed and reported),
		// then the real resume through the normal path.
		if restoredSHA, err = restoreSHA(chaosConfig(os.Getenv(chaosBinEnv), os.Getenv(chaosCkptEnv), os.Getenv(chaosMarkEnv)), resumePath); err != nil {
			return fail(err)
		}
		if err := tr.Resume(resumePath); err != nil {
			return fail(err)
		}
	}
	if err := tr.Run(); err != nil {
		return fail(err)
	}

	_, transitions := tr.Learner().Stats()
	st := chaosStatus{
		ResumedUpdates: tr.ResumedUpdates(),
		Updates:        tr.Learner().Agent().LearnSteps(),
		Transitions:    transitions,
		RestoredSHA:    restoredSHA,
	}
	out, err := json.Marshal(st)
	if err != nil {
		return fail(err)
	}
	if err := os.WriteFile(os.Getenv(chaosStatusEnv), out, 0o644); err != nil {
		return fail(err)
	}
	return 0
}

// chaosCmd builds a re-exec of this test binary in the trainer role.
func chaosCmd(t *testing.T, env map[string]string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), chaosRoleEnv+"=trainer")
	for k, v := range env {
		cmd.Env = append(cmd.Env, k+"="+v)
	}
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	return cmd
}

// TestChaosKillResume is the fault-tolerance end-to-end test:
//
//  1. Phase 1 trains with a lossy/laggy proxy between actors and
//     learner while actor rank 1 crashes and is respawned; the parent
//     waits for an interval checkpoint, then SIGKILLs the trainer.
//  2. The parent restores the surviving checkpoint in-process and
//     hashes the weights.
//  3. Phase 2 resumes from that checkpoint and must finish the FULL
//     original update budget, report the same restored weight hash
//     (bit-exact restore across three independent processes), and keep
//     -verifyprio's bit-exact priority check green throughout.
func TestChaosKillResume(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	bin := buildActorBinary(t)
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "trainer.ckpt")
	mark := filepath.Join(dir, "crash.marker")
	status := filepath.Join(dir, "status.json")
	env := map[string]string{
		chaosBinEnv:    bin,
		chaosCkptEnv:   ckpt,
		chaosMarkEnv:   mark,
		chaosStatusEnv: status,
	}
	cfg := chaosConfig(bin, ckpt, mark)
	budget := cfg.LearnPerStep * (cfg.TotalSteps - cfg.WarmupSteps)

	// Phase 1: run until the first checkpoint lands, then SIGKILL.
	phase1 := chaosCmd(t, env)
	if err := phase1.Start(); err != nil {
		t.Fatal(err)
	}
	defer phase1.Process.Kill()
	deadline := time.Now().Add(90 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("phase 1 produced no checkpoint within 90s")
		}
		if ck, err := ReadCheckpoint(ckpt); err == nil && ck.Updates > 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := phase1.Process.Kill(); err != nil { // SIGKILL: no cleanup, no final checkpoint
		t.Fatal(err)
	}
	phase1.Wait()

	// The surviving checkpoint must be valid, mid-budget, and restorable.
	ck, err := ReadCheckpoint(ckpt)
	if err != nil {
		t.Fatalf("checkpoint unreadable after SIGKILL: %v", err)
	}
	if ck.Updates <= 0 || ck.Updates >= budget {
		t.Fatalf("checkpoint carries %d updates; want mid-budget (0, %d)", ck.Updates, budget)
	}
	if _, err := os.Stat(mark); err != nil {
		t.Errorf("crash marker missing: rank 1's injected crash never fired (%v)", err)
	}
	// Copy the checkpoint aside: phase 2 overwrites the live path.
	raw, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	resume := filepath.Join(dir, "resume.ckpt")
	if err := os.WriteFile(resume, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	parentSHA, err := restoreSHA(cfg, resume)
	if err != nil {
		t.Fatalf("parent-side checkpoint restore: %v", err)
	}

	// Phase 2: resume and run the rest of the budget to completion.
	env[chaosResumeEnv] = resume
	phase2 := chaosCmd(t, env)
	if err := phase2.Start(); err != nil {
		t.Fatal(err)
	}
	defer phase2.Process.Kill()
	done := make(chan error, 1)
	go func() { done <- phase2.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("resumed trainer failed: %v", err)
		}
	case <-time.After(180 * time.Second):
		t.Fatal("resumed trainer did not finish within 180s")
	}

	var st chaosStatus
	raw, err = os.ReadFile(status)
	if err != nil {
		t.Fatalf("resumed trainer wrote no status: %v", err)
	}
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	if st.ResumedUpdates != ck.Updates {
		t.Errorf("phase 2 resumed %d updates, parent read %d from the same checkpoint",
			st.ResumedUpdates, ck.Updates)
	}
	if st.Updates != budget {
		t.Errorf("final update count %d, want the full budget %d despite the mid-run kill",
			st.Updates, budget)
	}
	if st.RestoredSHA != parentSHA {
		t.Errorf("restored weight hash differs across processes:\n  child  %s\n  parent %s",
			st.RestoredSHA, parentSHA)
	}
	if st.Transitions == 0 {
		t.Error("resumed trainer received no experience")
	}

	// Temp-file hygiene: the SIGKILL may have torn a checkpoint write,
	// but phase 2's run sweeps leftovers at start and every completed
	// write renames atomically — so the finished suite must leave no
	// stray temps, only the files the test created on purpose.
	if stray, err := atomicio.StrayTemps(ckpt); err != nil || len(stray) != 0 {
		t.Errorf("stray checkpoint temps after suite: %v (err %v)", stray, err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"trainer.ckpt": true, "crash.marker": true, "status.json": true, "resume.ckpt": true}
	for _, e := range entries {
		if !want[e.Name()] {
			t.Errorf("unexpected file left in test dir: %s", e.Name())
		}
	}
}
