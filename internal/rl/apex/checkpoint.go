package apex

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"os"

	"greennfv/internal/atomicio"
)

// Trainer checkpointing: the learner's full training state — the
// serialized ddpg.Agent (networks, optimizer moments, noise/RNG
// stream, learn counter, optionally the replay buffer) plus the
// trainer-level progress counters — written atomically so a SIGKILL'd
// learner process restarts mid-budget with bit-exact weights.
//
// File format: an 8-byte magic ("GNFVCKP1"), the big-endian uint64
// payload length, the IEEE CRC32 of the payload, then the
// gob-encoded TrainerCheckpoint — the internal/atomicio framing,
// which also does the temp+fsync+rename write so a crash mid-write
// leaves the previous checkpoint intact and the CRC rejects the
// torn-read case of a checkpoint copied off a dying machine. A
// trainer that starts a run sweeps any temp file its crashed
// predecessor left next to the checkpoint path.

// checkpointMagic identifies (and versions) the checkpoint format.
const checkpointMagic = "GNFVCKP1"

// TrainerCheckpoint is everything a restarted trainer needs to resume
// a training run where it stopped.
type TrainerCheckpoint struct {
	// Agent is the ddpg.Agent state blob (ddpg.Agent.SaveState).
	Agent []byte
	// Version is the learner's parameter-broadcast version.
	Version int
	// Updates is the learner's completed update count (its agent's
	// LearnSteps at save time).
	Updates int
	// Pushes and Received are the learner's experience counters; the
	// resumed pacing loop needs Received to compute its allowance.
	Pushes, Received int64
	// Steps and TotalSteps record trainer progress against its budget.
	Steps, TotalSteps int
}

// WriteCheckpoint atomically writes ck to path: temp file in the same
// directory, fsync, rename (atomicio.WriteFile).
func WriteCheckpoint(path string, ck *TrainerCheckpoint) error {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(ck); err != nil {
		return fmt.Errorf("apex: encode checkpoint: %w", err)
	}
	if err := atomicio.WriteFile(path, checkpointMagic, payload.Bytes()); err != nil {
		return fmt.Errorf("apex: checkpoint: %w", err)
	}
	return nil
}

// ReadCheckpoint reads and validates a checkpoint file: magic, length
// and CRC must all match before the payload is decoded.
func ReadCheckpoint(path string) (*TrainerCheckpoint, error) {
	payload, err := atomicio.ReadFile(path, checkpointMagic)
	if err != nil {
		return nil, fmt.Errorf("apex: checkpoint: %w", err)
	}
	var ck TrainerCheckpoint
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&ck); err != nil {
		return nil, fmt.Errorf("apex: decode checkpoint: %w", err)
	}
	return &ck, nil
}

// Checkpoint writes the trainer's current training state to path
// (atomically; see WriteCheckpoint). Replay contents are included
// when cfg.CheckpointReplay is set. Call it from the goroutine
// driving learner updates (the remote pacing loop checkpoints between
// updates; a quiesced trainer can checkpoint any time) — concurrent
// RPC pushes are safe, concurrent updates are not.
func (t *Trainer) Checkpoint(path string) error {
	l := t.learner
	// Counter order matters: capture Received before the replay
	// snapshot so the restored pacing allowance never exceeds the
	// experience actually present in the restored buffer.
	pushes, received := l.pushes.Load(), l.received.Load()
	l.mu.Lock()
	version := l.version
	l.mu.Unlock()
	blob, err := l.agent.StateBytes(t.cfg.CheckpointReplay)
	if err != nil {
		return err
	}
	return WriteCheckpoint(path, &TrainerCheckpoint{
		Agent:      blob,
		Version:    version,
		Updates:    l.agent.LearnSteps(),
		Pushes:     pushes,
		Received:   received,
		Steps:      t.steps,
		TotalSteps: t.cfg.TotalSteps,
	})
}

// Resume arranges for the next Run to restore training state from the
// checkpoint at path before stepping: the learner continues mid-budget
// with bit-exact weights, optimizer moments and (if checkpointed)
// replay contents. The trainer must be configured identically to the
// one that wrote the checkpoint — the agent configuration is verified
// strictly on restore. Call before Run.
func (t *Trainer) Resume(path string) error {
	if path == "" {
		return errors.New("apex: empty resume path")
	}
	if _, err := os.Stat(path); err != nil {
		return fmt.Errorf("apex: resume: %w", err)
	}
	t.resumePath = path
	return nil
}

// ResumedUpdates reports how many learner updates the checkpoint
// restored by the last Run carried, or -1 if the run did not resume.
func (t *Trainer) ResumedUpdates() int { return t.resumedUpdates }

// applyResume restores the recorded checkpoint into the learner. The
// run modes call it once their replay implementation is installed
// (the snapshot must restore into a matching buffer).
func (t *Trainer) applyResume() error {
	if t.resumePath == "" {
		return nil
	}
	ck, err := ReadCheckpoint(t.resumePath)
	if err != nil {
		return err
	}
	if err := t.learner.restoreCheckpoint(ck); err != nil {
		return err
	}
	t.steps = ck.Steps
	t.resumedUpdates = ck.Updates
	return nil
}

// restoreCheckpoint loads a checkpoint into the learner: agent state,
// broadcast version (with a fresh parameter cache), and the
// experience counters the pacing loop reads.
func (l *Learner) restoreCheckpoint(ck *TrainerCheckpoint) error {
	if err := l.agent.LoadStateBytes(ck.Agent); err != nil {
		return err
	}
	l.mu.Lock()
	l.version = ck.Version
	err := l.refreshParamCache()
	l.mu.Unlock()
	if err != nil {
		return err
	}
	l.pushes.Store(ck.Pushes)
	l.received.Store(ck.Received)
	return nil
}
