package traffic

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLineRatePPS(t *testing.T) {
	// The canonical numbers every NFV paper quotes for 10 GbE.
	got64 := LineRatePPS(10e9, 64)
	if math.Abs(got64-14880952.38) > 1 {
		t.Errorf("64B line rate = %v pps, want ~14.88M", got64)
	}
	got1518 := LineRatePPS(10e9, 1518)
	if math.Abs(got1518-812743.82) > 1 {
		t.Errorf("1518B line rate = %v pps, want ~812.7K", got1518)
	}
	// Undersized frames clamp to the 64 B minimum.
	if LineRatePPS(10e9, 10) != got64 {
		t.Error("undersized frame did not clamp")
	}
}

func TestThroughputBps(t *testing.T) {
	// 812743 pps of 1518 B frames is ~9.87 Gbps goodput.
	bps := ThroughputBps(LineRatePPS(10e9, 1518), 1518)
	if bps < 9.8e9 || bps > 9.9e9 {
		t.Errorf("1518B goodput = %v, want ~9.87G", bps)
	}
}

func TestBuildParseRoundTrip(t *testing.T) {
	ft := FiveTuple{
		SrcIP: [4]byte{10, 0, 0, 1}, DstIP: [4]byte{10, 1, 0, 1},
		SrcPort: 1234, DstPort: 80, Proto: ProtoUDP,
	}
	for _, size := range []int{64, 128, 512, 1024, 1518} {
		frame, err := BuildFrame(nil, ft, size)
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		if len(frame) != size {
			t.Fatalf("size %d: frame is %d bytes", size, len(frame))
		}
		got, err := ParseFrame(frame)
		if err != nil {
			t.Fatalf("size %d parse: %v", size, err)
		}
		if got != ft {
			t.Errorf("size %d: round trip %v != %v", size, got, ft)
		}
		if !VerifyIPv4Checksum(frame) {
			t.Errorf("size %d: bad IPv4 checksum", size)
		}
	}
}

func TestBuildFrameTCP(t *testing.T) {
	ft := FiveTuple{SrcPort: 5000, DstPort: 443, Proto: ProtoTCP}
	frame, err := BuildFrame(nil, ft, 64)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseFrame(frame)
	if err != nil || got.Proto != ProtoTCP || got.DstPort != 443 {
		t.Errorf("TCP round trip = %v (%v)", got, err)
	}
}

func TestBuildFrameReusesBuffer(t *testing.T) {
	ft := FiveTuple{Proto: ProtoUDP}
	buf := make([]byte, 1518)
	frame, err := BuildFrame(buf, ft, 256)
	if err != nil {
		t.Fatal(err)
	}
	if &frame[0] != &buf[0] {
		t.Error("BuildFrame allocated despite sufficient buffer")
	}
}

func TestBuildFrameRejectsBadSizes(t *testing.T) {
	ft := FiveTuple{Proto: ProtoUDP}
	if _, err := BuildFrame(nil, ft, 63); err == nil {
		t.Error("63B frame accepted")
	}
	if _, err := BuildFrame(nil, ft, 1519); err == nil {
		t.Error("1519B frame accepted")
	}
}

func TestParseFrameErrors(t *testing.T) {
	if _, err := ParseFrame(make([]byte, 10)); err == nil {
		t.Error("short frame accepted")
	}
	junk := make([]byte, 64) // zero ethertype
	if _, err := ParseFrame(junk); err == nil {
		t.Error("non-IPv4 frame accepted")
	}
	if VerifyIPv4Checksum(make([]byte, 8)) {
		t.Error("short frame checksum verified")
	}
}

func TestCBRPacing(t *testing.T) {
	c, err := NewCBR(1000)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Next(nil); got != 0.001 {
		t.Errorf("CBR gap = %v, want 0.001", got)
	}
	if c.MeanPPS() != 1000 {
		t.Errorf("CBR mean = %v", c.MeanPPS())
	}
	if _, err := NewCBR(0); err == nil {
		t.Error("zero-rate CBR accepted")
	}
}

func TestPoissonMeanRate(t *testing.T) {
	p, err := NewPoisson(5000)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	var total float64
	n := 50000
	for i := 0; i < n; i++ {
		total += p.Next(rng)
	}
	rate := float64(n) / total
	if math.Abs(rate-5000)/5000 > 0.03 {
		t.Errorf("Poisson empirical rate = %v, want ~5000", rate)
	}
	if _, err := NewPoisson(-1); err == nil {
		t.Error("negative-rate Poisson accepted")
	}
}

func TestMMPPMeanAndBurstiness(t *testing.T) {
	m, err := NewMMPP(10000, 500, 0.1, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	wantMean := 0.25*10000 + 0.75*500
	if math.Abs(m.MeanPPS()-wantMean) > 1e-9 {
		t.Errorf("MMPP mean = %v, want %v", m.MeanPPS(), wantMean)
	}
	// The rate estimate converges slowly (one effective sample per
	// burst cycle), so use a long run and a loose tolerance.
	rng := rand.New(rand.NewSource(17))
	var total float64
	n := 1000000
	for i := 0; i < n; i++ {
		total += m.Next(rng)
	}
	rate := float64(n) / total
	if math.Abs(rate-wantMean)/wantMean > 0.12 {
		t.Errorf("MMPP empirical rate = %v, want ~%v", rate, wantMean)
	}
	if _, err := NewMMPP(0, 1, 1, 1); err == nil {
		t.Error("bad MMPP accepted")
	}
	if _, err := NewMMPP(1, 1, 0, 1); err == nil {
		t.Error("zero sojourn accepted")
	}
}

func TestOnOffDutyCycle(t *testing.T) {
	o, err := NewOnOff(1000, 1, 3) // 25% duty
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(o.MeanPPS()-250) > 1e-9 {
		t.Errorf("on/off mean = %v, want 250", o.MeanPPS())
	}
	// Advance through a full cycle and verify the empirical rate.
	var total float64
	n := 5000
	for i := 0; i < n; i++ {
		total += o.Next(nil)
	}
	rate := float64(n) / total
	if math.Abs(rate-250)/250 > 0.05 {
		t.Errorf("on/off empirical rate = %v, want ~250", rate)
	}
	if _, err := NewOnOff(0, 1, 1); err == nil {
		t.Error("bad on/off accepted")
	}
}

func TestTraceReplayLoops(t *testing.T) {
	tr, err := NewTrace([]float64{0.1, 0.2, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.1, 0.2, 0.3, 0.1, 0.2}
	for i, w := range want {
		if got := tr.Next(nil); got != w {
			t.Errorf("gap %d = %v, want %v", i, got, w)
		}
	}
	if math.Abs(tr.MeanPPS()-3/0.6) > 1e-9 {
		t.Errorf("trace mean = %v, want 5", tr.MeanPPS())
	}
	if _, err := NewTrace(nil); err == nil {
		t.Error("empty trace accepted")
	}
	if _, err := NewTrace([]float64{0.1, -1}); err == nil {
		t.Error("negative gap accepted")
	}
}

func TestGeneratorTimeOrdered(t *testing.T) {
	f1, _ := SimpleFlow(1, 1000, 64)
	f2, _ := SimpleFlow(2, 333, 1518)
	g, err := NewGenerator(9, f1, f2)
	if err != nil {
		t.Fatal(err)
	}
	last := 0.0
	counts := map[string]int{}
	for i := 0; i < 4000; i++ {
		ev := g.Next()
		if ev.Time < last {
			t.Fatalf("event %d out of order: %v < %v", i, ev.Time, last)
		}
		last = ev.Time
		counts[ev.Flow.Name]++
		if len(ev.Frame) != ev.Flow.FrameBytes {
			t.Fatalf("frame size %d != flow %d", len(ev.Frame), ev.Flow.FrameBytes)
		}
	}
	// Rate ratio should be ~3:1.
	ratio := float64(counts["flow1"]) / float64(counts["flow2"])
	if ratio < 2.7 || ratio > 3.3 {
		t.Errorf("flow ratio = %v, want ~3", ratio)
	}
	if g.TotalOfferedPPS() != 1333 {
		t.Errorf("total offered = %v", g.TotalOfferedPPS())
	}
	if g.Now() != last {
		t.Errorf("Now() = %v, want %v", g.Now(), last)
	}
}

func TestGeneratorValidation(t *testing.T) {
	if _, err := NewGenerator(1); err == nil {
		t.Error("empty generator accepted")
	}
	bad := &Flow{Name: "x", FrameBytes: 64} // no arrival
	if _, err := NewGenerator(1, bad); err == nil {
		t.Error("flow without arrival accepted")
	}
	cbr, _ := NewCBR(1)
	bad2 := &Flow{Name: "y", FrameBytes: 3000, Arrival: cbr}
	if _, err := NewGenerator(1, bad2); err == nil {
		t.Error("oversized frame accepted")
	}
}

func TestSimpleFlowDeterministicTuple(t *testing.T) {
	f, err := SimpleFlow(7, 100, 128)
	if err != nil {
		t.Fatal(err)
	}
	if f.Tuple.SrcPort != 1031 || f.Tuple.SrcIP != [4]byte{10, 0, 0, 7} {
		t.Errorf("tuple = %v", f.Tuple)
	}
	if f.OfferedBps() != 100*128*8 {
		t.Errorf("offered bps = %v", f.OfferedBps())
	}
	if _, err := SimpleFlow(1, -5, 128); err == nil {
		t.Error("negative rate accepted")
	}
}

// Property: all arrival processes produce strictly positive gaps and
// the generator's event clock is monotone for any seed.
func TestArrivalGapsPositive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p, _ := NewPoisson(10000)
		m, _ := NewMMPP(20000, 100, 0.05, 0.2)
		o, _ := NewOnOff(5000, 0.5, 0.5)
		for i := 0; i < 200; i++ {
			if p.Next(rng) < 0 || m.Next(rng) <= 0 || o.Next(rng) <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
