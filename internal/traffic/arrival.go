package traffic

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Arrival produces packet inter-arrival times, abstracting the load
// patterns MoonGen scripts generate. Implementations are not
// goroutine-safe; give each generator goroutine its own instance.
type Arrival interface {
	// Next returns the seconds until the next packet.
	Next(rng *rand.Rand) float64
	// MeanPPS reports the long-run average packet rate.
	MeanPPS() float64
}

// CBR is constant-bit-rate arrival: perfectly paced packets, the
// pattern a hardware rate limiter or MoonGen's timestamping mode
// produces.
type CBR struct{ PPS float64 }

// NewCBR returns a CBR process at the given rate.
func NewCBR(pps float64) (*CBR, error) {
	if pps <= 0 {
		return nil, errors.New("traffic: CBR rate must be positive")
	}
	return &CBR{PPS: pps}, nil
}

// Next implements Arrival.
func (c *CBR) Next(*rand.Rand) float64 { return 1 / c.PPS }

// MeanPPS implements Arrival.
func (c *CBR) MeanPPS() float64 { return c.PPS }

// Poisson is memoryless arrival with exponential inter-arrivals, the
// standard model for aggregated independent sources.
type Poisson struct{ PPS float64 }

// NewPoisson returns a Poisson process at the given mean rate.
func NewPoisson(pps float64) (*Poisson, error) {
	if pps <= 0 {
		return nil, errors.New("traffic: Poisson rate must be positive")
	}
	return &Poisson{PPS: pps}, nil
}

// Next implements Arrival.
func (p *Poisson) Next(rng *rand.Rand) float64 {
	return rng.ExpFloat64() / p.PPS
}

// MeanPPS implements Arrival.
func (p *Poisson) MeanPPS() float64 { return p.PPS }

// MMPP is a two-state Markov-Modulated Poisson Process: a bursty
// source alternating between a high-rate and a low-rate Poisson
// regime with exponentially distributed sojourn times. This is the
// "highly dynamic network flows" pattern §4.2 of the paper argues the
// heuristic cannot track.
type MMPP struct {
	HighPPS, LowPPS float64
	// MeanHighDur and MeanLowDur are mean sojourn seconds per state.
	MeanHighDur, MeanLowDur float64

	inHigh    bool
	stateLeft float64
}

// NewMMPP builds a two-state MMPP starting in the high state.
func NewMMPP(highPPS, lowPPS, meanHighDur, meanLowDur float64) (*MMPP, error) {
	if highPPS <= 0 || lowPPS <= 0 {
		return nil, errors.New("traffic: MMPP rates must be positive")
	}
	if meanHighDur <= 0 || meanLowDur <= 0 {
		return nil, errors.New("traffic: MMPP sojourn times must be positive")
	}
	return &MMPP{
		HighPPS: highPPS, LowPPS: lowPPS,
		MeanHighDur: meanHighDur, MeanLowDur: meanLowDur,
		inHigh: true,
	}, nil
}

// Next implements Arrival.
func (m *MMPP) Next(rng *rand.Rand) float64 {
	var total float64
	for {
		rate := m.LowPPS
		meanDur := m.MeanLowDur
		if m.inHigh {
			rate = m.HighPPS
			meanDur = m.MeanHighDur
		}
		if m.stateLeft <= 0 {
			m.stateLeft = rng.ExpFloat64() * meanDur
		}
		gap := rng.ExpFloat64() / rate
		if gap <= m.stateLeft {
			m.stateLeft -= gap
			return total + gap
		}
		// State expires before the next packet: switch and retry.
		total += m.stateLeft
		m.stateLeft = 0
		m.inHigh = !m.inHigh
	}
}

// MeanPPS implements Arrival.
func (m *MMPP) MeanPPS() float64 {
	wHigh := m.MeanHighDur / (m.MeanHighDur + m.MeanLowDur)
	return wHigh*m.HighPPS + (1-wHigh)*m.LowPPS
}

// OnOff alternates fixed-length bursts at PeakPPS with silences,
// approximating application-level batch transfers.
type OnOff struct {
	PeakPPS          float64
	OnDur, OffDur    float64
	inOn             bool
	stateLeft        float64
	startedFirstTime bool
}

// NewOnOff builds an on/off source starting with a burst.
func NewOnOff(peakPPS, onDur, offDur float64) (*OnOff, error) {
	if peakPPS <= 0 {
		return nil, errors.New("traffic: on/off peak rate must be positive")
	}
	if onDur <= 0 || offDur < 0 {
		return nil, errors.New("traffic: on/off durations invalid")
	}
	return &OnOff{PeakPPS: peakPPS, OnDur: onDur, OffDur: offDur}, nil
}

// Next implements Arrival.
func (o *OnOff) Next(*rand.Rand) float64 {
	if !o.startedFirstTime {
		o.startedFirstTime = true
		o.inOn = true
		o.stateLeft = o.OnDur
	}
	gap := 1 / o.PeakPPS
	var total float64
	for {
		if o.inOn {
			if gap <= o.stateLeft {
				o.stateLeft -= gap
				return total + gap
			}
			total += o.stateLeft
			o.inOn = false
			o.stateLeft = o.OffDur
			continue
		}
		total += o.stateLeft
		o.inOn = true
		o.stateLeft = o.OnDur
	}
}

// MeanPPS implements Arrival.
func (o *OnOff) MeanPPS() float64 {
	cycle := o.OnDur + o.OffDur
	if cycle == 0 {
		return o.PeakPPS
	}
	return o.PeakPPS * o.OnDur / cycle
}

// Trace replays recorded inter-arrival gaps in a loop, the equivalent
// of MoonGen's pcap replay mode for captured production traffic.
type Trace struct {
	Gaps []float64
	idx  int
}

// NewTrace builds a replay source from inter-arrival gaps (seconds).
func NewTrace(gaps []float64) (*Trace, error) {
	if len(gaps) == 0 {
		return nil, errors.New("traffic: trace needs at least one gap")
	}
	var sum float64
	for i, g := range gaps {
		if g <= 0 || math.IsNaN(g) || math.IsInf(g, 0) {
			return nil, fmt.Errorf("traffic: trace gap %d invalid (%v)", i, g)
		}
		sum += g
	}
	cp := make([]float64, len(gaps))
	copy(cp, gaps)
	return &Trace{Gaps: cp}, nil
}

// Next implements Arrival.
func (t *Trace) Next(*rand.Rand) float64 {
	g := t.Gaps[t.idx]
	t.idx = (t.idx + 1) % len(t.Gaps)
	return g
}

// MeanPPS implements Arrival.
func (t *Trace) MeanPPS() float64 {
	var sum float64
	for _, g := range t.Gaps {
		sum += g
	}
	return float64(len(t.Gaps)) / sum
}
