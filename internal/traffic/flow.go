package traffic

import (
	"errors"
	"fmt"
	"math/rand"
)

// Flow is one synthesized traffic stream: a five-tuple, a frame size
// and an arrival process, mirroring a MoonGen flow script.
type Flow struct {
	Name       string
	Tuple      FiveTuple
	FrameBytes int
	Arrival    Arrival
}

// Validate reports whether the flow is fully specified.
func (f *Flow) Validate() error {
	if f.Arrival == nil {
		return fmt.Errorf("traffic: flow %q has no arrival process", f.Name)
	}
	if f.FrameBytes < MinFrame || f.FrameBytes > MaxFrame {
		return fmt.Errorf("traffic: flow %q frame size %d outside [%d,%d]",
			f.Name, f.FrameBytes, MinFrame, MaxFrame)
	}
	return nil
}

// OfferedPPS reports the flow's mean offered packet rate.
func (f *Flow) OfferedPPS() float64 { return f.Arrival.MeanPPS() }

// OfferedBps reports the flow's mean offered goodput in bits/second.
func (f *Flow) OfferedBps() float64 {
	return ThroughputBps(f.OfferedPPS(), f.FrameBytes)
}

// SimpleFlow is a convenience constructor for a CBR UDP flow with a
// deterministic tuple derived from id.
func SimpleFlow(id int, pps float64, frameBytes int) (*Flow, error) {
	arr, err := NewCBR(pps)
	if err != nil {
		return nil, err
	}
	f := &Flow{
		Name: fmt.Sprintf("flow%d", id),
		Tuple: FiveTuple{
			SrcIP:   [4]byte{10, 0, byte(id >> 8), byte(id)},
			DstIP:   [4]byte{10, 1, byte(id >> 8), byte(id)},
			SrcPort: uint16(1024 + id),
			DstPort: 9,
			Proto:   ProtoUDP,
		},
		FrameBytes: frameBytes,
		Arrival:    arr,
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return f, nil
}

// Event is one generated packet: its arrival time and frame bytes.
type Event struct {
	Time  float64
	Flow  *Flow
	Frame []byte
}

// Generator multiplexes several flows into a single time-ordered
// packet event stream, the software stand-in for a MoonGen transmit
// port. It is deterministic for a given seed.
type Generator struct {
	flows []*Flow
	rng   *rand.Rand
	// nextAt[i] is the absolute time of flow i's next packet.
	nextAt []float64
	// scratch per-flow frame buffers, recycled across events.
	frames [][]byte
	now    float64
}

// NewGenerator builds a generator over the flows with a deterministic
// seed. Flows must validate.
func NewGenerator(seed int64, flows ...*Flow) (*Generator, error) {
	if len(flows) == 0 {
		return nil, errors.New("traffic: generator needs at least one flow")
	}
	g := &Generator{
		flows:  flows,
		rng:    rand.New(rand.NewSource(seed)),
		nextAt: make([]float64, len(flows)),
		frames: make([][]byte, len(flows)),
	}
	for i, f := range flows {
		if err := f.Validate(); err != nil {
			return nil, err
		}
		g.nextAt[i] = f.Arrival.Next(g.rng)
		frame, err := BuildFrame(nil, f.Tuple, f.FrameBytes)
		if err != nil {
			return nil, err
		}
		g.frames[i] = frame
	}
	return g, nil
}

// Next returns the next packet event in time order. The returned
// frame buffer is reused on the following call for the same flow;
// copy it if it must outlive the iteration.
func (g *Generator) Next() Event {
	best := 0
	for i := 1; i < len(g.nextAt); i++ {
		if g.nextAt[i] < g.nextAt[best] {
			best = i
		}
	}
	ev := Event{Time: g.nextAt[best], Flow: g.flows[best], Frame: g.frames[best]}
	g.now = g.nextAt[best]
	g.nextAt[best] += g.flows[best].Arrival.Next(g.rng)
	return ev
}

// Now reports the time of the most recently emitted event.
func (g *Generator) Now() float64 { return g.now }

// Flows returns the generator's flow list.
func (g *Generator) Flows() []*Flow { return g.flows }

// TotalOfferedPPS reports the aggregate mean offered rate.
func (g *Generator) TotalOfferedPPS() float64 {
	var sum float64
	for _, f := range g.flows {
		sum += f.OfferedPPS()
	}
	return sum
}
