// Package traffic synthesizes network load the way the paper's
// MoonGen testbed did: UDP and TCP flows at configurable frame sizes
// (64–1518 B) and rates up to 10 GbE line rate, with CBR, Poisson,
// MMPP (bursty) and on/off arrival processes.
//
// Frames carry real Ethernet/IPv4/UDP(TCP) headers built with
// encoding/binary so the NF library (firewall, NAT, router, IDS …)
// parses and rewrites genuine protocol fields rather than opaque
// blobs.
//
// # Paper mapping
//
// The offered-load side of every experiment: the five-flow
// evaluation mix, the frame-size axis of Figure 3, and the arrival
// processes that drive both the DES validation (internal/sim) and
// the packet-level harness (cmd/nfvsim).
//
// # Concurrency and determinism
//
// Arrival processes take the caller's *rand.Rand: given a seeded RNG
// a generated arrival sequence replays exactly, which is what the
// seeded environments and DES runs build on. Generators and flows
// are NOT goroutine-safe — one RNG, one owner; concurrent load
// sources each get their own generator and seed.
package traffic
