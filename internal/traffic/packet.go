package traffic

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Ethernet constants for 10GBASE-T framing math.
const (
	// MinFrame and MaxFrame are the classic Ethernet frame bounds
	// including the 4-byte FCS (the sizes the paper sweeps).
	MinFrame = 64
	MaxFrame = 1518
	// PreambleBytes and InterframeGapBytes are per-frame wire overhead
	// that never reaches the host but consumes line capacity.
	PreambleBytes      = 8
	InterframeGapBytes = 12

	headerEth  = 14
	headerIPv4 = 20
	headerUDP  = 8
	headerTCP  = 20
	fcsBytes   = 4
)

// LineRatePPS reports the maximum packets/second a link of linkBps
// bits/second can carry at the given frame size (wire overhead
// included): 14.88 Mpps for 64 B frames at 10 Gb/s.
func LineRatePPS(linkBps float64, frameBytes int) float64 {
	if frameBytes < MinFrame {
		frameBytes = MinFrame
	}
	wire := float64(frameBytes + PreambleBytes + InterframeGapBytes)
	return linkBps / (wire * 8)
}

// ThroughputBps converts a packet rate at a frame size into goodput
// bits/second as the paper reports it (frame bytes, excluding
// preamble and IFG).
func ThroughputBps(pps float64, frameBytes int) float64 {
	return pps * float64(frameBytes) * 8
}

// Proto selects the L4 protocol of a synthesized flow.
type Proto uint8

// IANA protocol numbers for the supported L4 protocols.
const (
	ProtoUDP Proto = 17
	ProtoTCP Proto = 6
)

// String implements fmt.Stringer.
func (p Proto) String() string {
	switch p {
	case ProtoUDP:
		return "udp"
	case ProtoTCP:
		return "tcp"
	default:
		return fmt.Sprintf("proto(%d)", uint8(p))
	}
}

// FiveTuple identifies a flow.
type FiveTuple struct {
	SrcIP   [4]byte
	DstIP   [4]byte
	SrcPort uint16
	DstPort uint16
	Proto   Proto
}

// String implements fmt.Stringer.
func (ft FiveTuple) String() string {
	return fmt.Sprintf("%d.%d.%d.%d:%d->%d.%d.%d.%d:%d/%v",
		ft.SrcIP[0], ft.SrcIP[1], ft.SrcIP[2], ft.SrcIP[3], ft.SrcPort,
		ft.DstIP[0], ft.DstIP[1], ft.DstIP[2], ft.DstIP[3], ft.DstPort, ft.Proto)
}

// BuildFrame synthesizes a complete Ethernet frame of frameBytes total
// length (FCS included) for the flow, writing into dst and returning
// the slice. If dst is too small a new buffer is allocated; pass a
// recycled buffer to avoid garbage on the generator hot path.
// IPv4 header checksum is computed; payload bytes are zero.
func BuildFrame(dst []byte, ft FiveTuple, frameBytes int) ([]byte, error) {
	if frameBytes < MinFrame || frameBytes > MaxFrame {
		return nil, fmt.Errorf("traffic: frame size %d outside [%d, %d]", frameBytes, MinFrame, MaxFrame)
	}
	l4 := headerUDP
	if ft.Proto == ProtoTCP {
		l4 = headerTCP
	}
	minNeeded := headerEth + headerIPv4 + l4 + fcsBytes
	if frameBytes < minNeeded {
		return nil, fmt.Errorf("traffic: frame size %d below header minimum %d", frameBytes, minNeeded)
	}
	if cap(dst) < frameBytes {
		dst = make([]byte, frameBytes)
	}
	dst = dst[:frameBytes]
	for i := range dst {
		dst[i] = 0
	}

	// Ethernet: synthetic locally-administered MACs, IPv4 ethertype.
	copy(dst[0:6], []byte{0x02, 0x00, 0x00, 0x00, 0x00, 0x02})  // dst MAC
	copy(dst[6:12], []byte{0x02, 0x00, 0x00, 0x00, 0x00, 0x01}) // src MAC
	binary.BigEndian.PutUint16(dst[12:14], 0x0800)

	// IPv4.
	ip := dst[headerEth:]
	ipTotal := frameBytes - headerEth - fcsBytes
	ip[0] = 0x45 // version 4, IHL 5
	binary.BigEndian.PutUint16(ip[2:4], uint16(ipTotal))
	ip[8] = 64 // TTL
	ip[9] = byte(ft.Proto)
	copy(ip[12:16], ft.SrcIP[:])
	copy(ip[16:20], ft.DstIP[:])
	binary.BigEndian.PutUint16(ip[10:12], 0) // zero before checksum
	binary.BigEndian.PutUint16(ip[10:12], ipv4Checksum(ip[:headerIPv4]))

	// L4.
	l4buf := ip[headerIPv4:]
	binary.BigEndian.PutUint16(l4buf[0:2], ft.SrcPort)
	binary.BigEndian.PutUint16(l4buf[2:4], ft.DstPort)
	if ft.Proto == ProtoUDP {
		binary.BigEndian.PutUint16(l4buf[4:6], uint16(ipTotal-headerIPv4))
	} else {
		l4buf[12] = 5 << 4 // data offset
		l4buf[13] = 0x10   // ACK
	}
	return dst, nil
}

// ipv4Checksum computes the RFC 1071 one's-complement checksum over
// an IPv4 header.
func ipv4Checksum(hdr []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(hdr); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(hdr[i : i+2]))
	}
	if len(hdr)%2 == 1 {
		sum += uint32(hdr[len(hdr)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return ^uint16(sum)
}

// ParseFrame extracts the five-tuple from a frame built by BuildFrame
// (or any Ethernet/IPv4/UDP|TCP frame). It returns an error for
// non-IPv4 or truncated frames.
func ParseFrame(frame []byte) (FiveTuple, error) {
	var ft FiveTuple
	if len(frame) < headerEth+headerIPv4+headerUDP {
		return ft, errors.New("traffic: frame too short")
	}
	if binary.BigEndian.Uint16(frame[12:14]) != 0x0800 {
		return ft, errors.New("traffic: not IPv4")
	}
	ip := frame[headerEth:]
	if ip[0]>>4 != 4 {
		return ft, errors.New("traffic: bad IP version")
	}
	ihl := int(ip[0]&0x0f) * 4
	if ihl < headerIPv4 || len(ip) < ihl+4 {
		return ft, errors.New("traffic: truncated IP header")
	}
	copy(ft.SrcIP[:], ip[12:16])
	copy(ft.DstIP[:], ip[16:20])
	ft.Proto = Proto(ip[9])
	l4 := ip[ihl:]
	ft.SrcPort = binary.BigEndian.Uint16(l4[0:2])
	ft.DstPort = binary.BigEndian.Uint16(l4[2:4])
	return ft, nil
}

// VerifyIPv4Checksum reports whether a frame's IPv4 header checksum
// is valid.
func VerifyIPv4Checksum(frame []byte) bool {
	if len(frame) < headerEth+headerIPv4 {
		return false
	}
	ip := frame[headerEth:]
	ihl := int(ip[0]&0x0f) * 4
	if ihl < headerIPv4 || len(ip) < ihl {
		return false
	}
	var sum uint32
	for i := 0; i+1 < ihl; i += 2 {
		sum += uint32(binary.BigEndian.Uint16(ip[i : i+2]))
	}
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return uint16(sum) == 0xffff
}
