package traffic

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// ParseFrame and VerifyIPv4Checksum must never panic or read out of
// bounds on arbitrary bytes — the IDS/DPI path feeds them raw frames.
func TestParseFrameNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		// Must not panic; results are unconstrained.
		_, _ = ParseFrame(data)
		_ = VerifyIPv4Checksum(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Mutating any single byte of a valid header must be caught by the
// checksum unless the mutation hits the payload (past the IP header)
// or produces an equivalent checksum (one's-complement ±0 aliasing,
// which single-byte flips cannot).
func TestChecksumDetectsHeaderCorruption(t *testing.T) {
	ft := FiveTuple{
		SrcIP: [4]byte{10, 0, 0, 1}, DstIP: [4]byte{10, 1, 0, 1},
		SrcPort: 1234, DstPort: 80, Proto: ProtoUDP,
	}
	frame, err := BuildFrame(nil, ft, 128)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	const ipStart, ipEnd = 14, 34
	for trial := 0; trial < 200; trial++ {
		idx := ipStart + rng.Intn(ipEnd-ipStart)
		orig := frame[idx]
		delta := byte(1 + rng.Intn(255))
		frame[idx] = orig ^ delta
		if VerifyIPv4Checksum(frame) && frame[idx] != orig {
			// One's-complement sums have a known aliasing class:
			// 0x00 and 0xff bytes in the same sum position. Exclude
			// exactly that case.
			if !(orig == 0x00 && frame[idx] == 0xff || orig == 0xff && frame[idx] == 0x00) {
				t.Fatalf("corruption at byte %d (%#x->%#x) passed checksum", idx, orig, frame[idx])
			}
		}
		frame[idx] = orig
	}
	if !VerifyIPv4Checksum(frame) {
		t.Fatal("restored frame no longer validates")
	}
}

// Truncating a valid frame anywhere must produce an error, never a
// bogus five-tuple read past the end.
func TestParseFrameTruncation(t *testing.T) {
	ft := FiveTuple{SrcPort: 9, DstPort: 9, Proto: ProtoTCP}
	frame, err := BuildFrame(nil, ft, 256)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < 42; cut++ {
		if _, err := ParseFrame(frame[:cut]); err == nil {
			t.Fatalf("truncated frame of %d bytes parsed", cut)
		}
	}
	if _, err := ParseFrame(frame[:42]); err != nil {
		t.Fatalf("minimal complete frame rejected: %v", err)
	}
}
