package sla

import (
	"errors"
	"fmt"
)

// Kind selects the SLA family.
type Kind int

// SLA kinds.
const (
	// MaxThroughput maximizes throughput under an energy budget.
	MaxThroughput Kind = iota
	// MinEnergy minimizes energy under a throughput floor.
	MinEnergy
	// EnergyEfficiency maximizes throughput per unit energy.
	EnergyEfficiency
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case MaxThroughput:
		return "max-throughput"
	case MinEnergy:
		return "min-energy"
	case EnergyEfficiency:
		return "energy-efficiency"
	default:
		return fmt.Sprintf("sla(%d)", int(k))
	}
}

// SLA is one agreement instance.
type SLA struct {
	Kind Kind
	// EnergyBudgetJ is E_SLA for MaxThroughput (joules per
	// measurement window).
	EnergyBudgetJ float64
	// MinThroughputGbps is T_SLA for MinEnergy.
	MinThroughputGbps float64

	// RefEnergyJ scales MinEnergy rewards: the energy of the
	// untuned baseline, so rewards land in [0, ~1].
	RefEnergyJ float64
	// RefThroughputGbps scales MaxThroughput rewards.
	RefThroughputGbps float64

	// PenaltyWeight selects shaped rewards for the constrained SLAs:
	// when positive, a violating measurement pays
	// −PenaltyWeight×violation instead of the paper's flat zero.
	// The reward-shaping ablation compares the two.
	PenaltyWeight float64
}

// NewMaxThroughput builds the paper's Throughput-maximization SLA
// with an energy budget (the paper's experiments use 2000 J and
// 3300 J budgets).
func NewMaxThroughput(energyBudgetJ float64) (SLA, error) {
	if energyBudgetJ <= 0 {
		return SLA{}, errors.New("sla: energy budget must be positive")
	}
	return SLA{
		Kind:              MaxThroughput,
		EnergyBudgetJ:     energyBudgetJ,
		RefThroughputGbps: 10,
	}, nil
}

// NewMinEnergy builds the paper's Energy-minimization SLA with a
// throughput floor (the paper uses 7.5 Gbps and 7 Gbps floors).
func NewMinEnergy(minGbps float64) (SLA, error) {
	if minGbps <= 0 {
		return SLA{}, errors.New("sla: throughput floor must be positive")
	}
	return SLA{
		Kind:              MinEnergy,
		MinThroughputGbps: minGbps,
		RefEnergyJ:        3300,
	}, nil
}

// NewEnergyEfficiency builds the unconstrained λ = T/E SLA.
func NewEnergyEfficiency() SLA {
	return SLA{Kind: EnergyEfficiency}
}

// Satisfied reports whether the constraint holds for a measurement.
// The unconstrained efficiency SLA is always satisfied.
func (s SLA) Satisfied(tputGbps, energyJ float64) bool {
	switch s.Kind {
	case MaxThroughput:
		return energyJ <= s.EnergyBudgetJ
	case MinEnergy:
		return tputGbps >= s.MinThroughputGbps
	default:
		return true
	}
}

// Violation reports how far outside the constraint a measurement is,
// normalized to the constraint (0 when satisfied).
func (s SLA) Violation(tputGbps, energyJ float64) float64 {
	switch s.Kind {
	case MaxThroughput:
		if energyJ <= s.EnergyBudgetJ {
			return 0
		}
		return (energyJ - s.EnergyBudgetJ) / s.EnergyBudgetJ
	case MinEnergy:
		if tputGbps >= s.MinThroughputGbps {
			return 0
		}
		return (s.MinThroughputGbps - tputGbps) / s.MinThroughputGbps
	default:
		return 0
	}
}

// Reward computes the RL reward for a measurement, following §4.3.1:
// constrained SLAs pay zero outside their constraint; inside it,
// MaxThroughput pays normalized throughput, MinEnergy pays the
// normalized saving against the reference energy, and
// EnergyEfficiency always pays λ = Gbps per kilojoule.
func (s SLA) Reward(tputGbps, energyJ float64) float64 {
	switch s.Kind {
	case MaxThroughput:
		if energyJ > s.EnergyBudgetJ {
			return -s.PenaltyWeight * s.Violation(tputGbps, energyJ)
		}
		ref := s.RefThroughputGbps
		if ref <= 0 {
			ref = 10
		}
		return tputGbps / ref
	case MinEnergy:
		if tputGbps < s.MinThroughputGbps {
			return -s.PenaltyWeight * s.Violation(tputGbps, energyJ)
		}
		ref := s.RefEnergyJ
		if ref <= 0 {
			ref = 3300
		}
		saving := (ref - energyJ) / ref
		if saving < 0 {
			saving = 0
		}
		return saving
	case EnergyEfficiency:
		if energyJ <= 0 {
			return 0
		}
		return tputGbps / (energyJ / 1000)
	default:
		return 0
	}
}

// Describe renders the SLA for reports.
func (s SLA) Describe() string {
	switch s.Kind {
	case MaxThroughput:
		return fmt.Sprintf("MaxThroughput(E<=%.0fJ)", s.EnergyBudgetJ)
	case MinEnergy:
		return fmt.Sprintf("MinEnergy(T>=%.1fGbps)", s.MinThroughputGbps)
	default:
		return "EnergyEfficiency(max T/E)"
	}
}

// Tracker accumulates satisfaction statistics over a run.
type Tracker struct {
	sla        SLA
	steps      int
	violations int
	totalViol  float64
}

// NewTracker builds a tracker for one SLA.
func NewTracker(s SLA) *Tracker { return &Tracker{sla: s} }

// Observe folds in one measurement.
func (t *Tracker) Observe(tputGbps, energyJ float64) {
	t.steps++
	v := t.sla.Violation(tputGbps, energyJ)
	if v > 0 {
		t.violations++
		t.totalViol += v
	}
}

// Steps reports observations seen.
func (t *Tracker) Steps() int { return t.steps }

// ViolationRate reports the fraction of observations violating the
// constraint.
func (t *Tracker) ViolationRate() float64 {
	if t.steps == 0 {
		return 0
	}
	return float64(t.violations) / float64(t.steps)
}

// MeanViolation reports the mean violation magnitude across all
// observations (zero-violation steps included).
func (t *Tracker) MeanViolation() float64 {
	if t.steps == 0 {
		return 0
	}
	return t.totalViol / float64(t.steps)
}
