// Package sla defines the three service-level-agreement optimization
// targets of the paper (§4.1) and their reinforcement-learning reward
// signals (§4.3.1):
//
//   - Maximum Throughput (eq. 1): maximize ΣT subject to E ≤ E_SLA.
//   - Minimum Energy (eq. 2): minimize ΣE subject to T ≥ T_SLA.
//   - Energy Efficiency (eq. 3): maximize λ = T/E, unconstrained.
//
// The reward semantics follow §5 exactly: the constrained SLAs issue
// rewards only while their constraint holds (the agent earns nothing
// for fast-but-over-budget or cheap-but-too-slow configurations).
// PenaltyWeight optionally selects shaped rewards instead of the flat
// zero — the reward-shaping ablation compares the two.
//
// # Concurrency and determinism
//
// SLA is a plain value with pure, deterministic methods
// (Satisfied/Violation/Reward/Describe) — safe to copy and share,
// and serializable (it rides inside apex.ActorSpec to remote actor
// processes as JSON). Tracker accumulates violation statistics and
// is NOT goroutine-safe; each measurement loop owns one.
package sla
