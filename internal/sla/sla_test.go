package sla

import (
	"math"
	"testing"
	"testing/quick"
)

func TestConstructors(t *testing.T) {
	if _, err := NewMaxThroughput(0); err == nil {
		t.Error("zero budget accepted")
	}
	if _, err := NewMinEnergy(-1); err == nil {
		t.Error("negative floor accepted")
	}
	mt, err := NewMaxThroughput(2000)
	if err != nil || mt.Kind != MaxThroughput {
		t.Errorf("MaxThroughput constructor: %v %v", mt, err)
	}
	me, err := NewMinEnergy(7.5)
	if err != nil || me.Kind != MinEnergy {
		t.Errorf("MinEnergy constructor: %v %v", me, err)
	}
	ee := NewEnergyEfficiency()
	if ee.Kind != EnergyEfficiency {
		t.Error("EE constructor")
	}
}

func TestSatisfiedAndViolation(t *testing.T) {
	mt, _ := NewMaxThroughput(2000)
	if !mt.Satisfied(5, 1999) || mt.Satisfied(5, 2001) {
		t.Error("MaxThroughput satisfaction wrong")
	}
	if v := mt.Violation(5, 2500); math.Abs(v-0.25) > 1e-12 {
		t.Errorf("violation = %v, want 0.25", v)
	}
	if mt.Violation(5, 1000) != 0 {
		t.Error("satisfied measurement shows violation")
	}

	me, _ := NewMinEnergy(8)
	if !me.Satisfied(8.1, 99999) || me.Satisfied(7.9, 1) {
		t.Error("MinEnergy satisfaction wrong")
	}
	if v := me.Violation(6, 100); math.Abs(v-0.25) > 1e-12 {
		t.Errorf("violation = %v, want 0.25", v)
	}

	ee := NewEnergyEfficiency()
	if !ee.Satisfied(0, 1e9) || ee.Violation(0, 1e9) != 0 {
		t.Error("EE should be unconstrained")
	}
}

func TestRewardSemantics(t *testing.T) {
	mt, _ := NewMaxThroughput(2000)
	// No reward outside the budget (paper: "issues rewards only when
	// the agent can meet the energy SLA").
	if r := mt.Reward(9, 2500); r != 0 {
		t.Errorf("over-budget reward = %v, want 0", r)
	}
	// Inside the budget, more throughput pays more.
	if mt.Reward(8, 1900) <= mt.Reward(4, 1900) {
		t.Error("MaxThroughput reward not increasing in throughput")
	}

	me, _ := NewMinEnergy(7.5)
	if r := me.Reward(7.0, 500); r != 0 {
		t.Errorf("under-floor reward = %v, want 0", r)
	}
	// Inside the floor, less energy pays more.
	if me.Reward(7.6, 1200) <= me.Reward(7.6, 2500) {
		t.Error("MinEnergy reward not decreasing in energy")
	}
	// Energy above reference clamps at zero rather than going
	// negative.
	if r := me.Reward(8, 99999); r != 0 {
		t.Errorf("clamped reward = %v", r)
	}

	ee := NewEnergyEfficiency()
	if r := ee.Reward(8, 2000); math.Abs(r-4) > 1e-12 {
		t.Errorf("EE reward = %v, want 4 Gbps/kJ", r)
	}
	if ee.Reward(8, 0) != 0 {
		t.Error("zero-energy EE reward should be 0")
	}
}

// Property: rewards are non-negative and violations are non-negative
// for any measurement.
func TestRewardViolationNonNegative(t *testing.T) {
	mt, _ := NewMaxThroughput(2000)
	me, _ := NewMinEnergy(7.5)
	ee := NewEnergyEfficiency()
	f := func(tput, energy float64) bool {
		tp := math.Abs(math.Mod(tput, 12))
		en := math.Abs(math.Mod(energy, 5000))
		if math.IsNaN(tp) || math.IsNaN(en) {
			return true
		}
		for _, s := range []SLA{mt, me, ee} {
			if s.Reward(tp, en) < 0 || s.Violation(tp, en) < 0 {
				return false
			}
			if s.Satisfied(tp, en) != (s.Violation(tp, en) == 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestTracker(t *testing.T) {
	mt, _ := NewMaxThroughput(1000)
	tr := NewTracker(mt)
	tr.Observe(5, 900)  // ok
	tr.Observe(5, 1500) // violation 0.5
	tr.Observe(5, 1250) // violation 0.25
	if tr.Steps() != 3 {
		t.Errorf("steps = %d", tr.Steps())
	}
	if math.Abs(tr.ViolationRate()-2.0/3) > 1e-12 {
		t.Errorf("violation rate = %v", tr.ViolationRate())
	}
	if math.Abs(tr.MeanViolation()-0.25) > 1e-12 {
		t.Errorf("mean violation = %v", tr.MeanViolation())
	}
	empty := NewTracker(mt)
	if empty.ViolationRate() != 0 || empty.MeanViolation() != 0 {
		t.Error("empty tracker non-zero")
	}
}

func TestDescribeAndString(t *testing.T) {
	mt, _ := NewMaxThroughput(2000)
	me, _ := NewMinEnergy(7.5)
	ee := NewEnergyEfficiency()
	if mt.Describe() == "" || me.Describe() == "" || ee.Describe() == "" {
		t.Error("empty description")
	}
	if MaxThroughput.String() != "max-throughput" ||
		MinEnergy.String() != "min-energy" ||
		EnergyEfficiency.String() != "energy-efficiency" {
		t.Error("kind strings")
	}
}
