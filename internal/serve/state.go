package serve

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"os"

	"greennfv/internal/atomicio"
	"greennfv/internal/perfmodel"
)

// stateMagic identifies (and versions) the controller state file.
const stateMagic = "GNFVSRV1"

// ControllerState is what a controller must remember across a crash:
// the policy it is serving (hot reloads included, so a restart does
// not silently revert to the boot checkpoint) and each node's
// last-known-good configuration, the middle rung of the degradation
// ladder.
type ControllerState struct {
	// PolicyBlob is the full ddpg.SaveState blob of the serving
	// policy; PolicyVersion counts swaps (boot = 1).
	PolicyBlob    []byte
	PolicyVersion int
	// LastGood maps node ID to the last guardrail-approved config the
	// controller pushed to it.
	LastGood map[string][]perfmodel.NFKnobs
}

// stateStore is the controller's persistence seam: the file-backed
// StateStore in production, a stub in the persistence-failure tests.
type stateStore interface {
	Save(*ControllerState) error
	Load() (*ControllerState, error)
}

// StateStore persists ControllerState at one path with atomicio
// framing. The controller is the single writer; OpenStateStore sweeps
// temp files a crashed predecessor left behind.
type StateStore struct {
	path string
}

// OpenStateStore prepares a store at path, sweeping stale temp files
// from a crashed writer.
func OpenStateStore(path string) (*StateStore, error) {
	if path == "" {
		return nil, fmt.Errorf("serve: empty state path")
	}
	if _, err := atomicio.Sweep(path); err != nil {
		return nil, err
	}
	return &StateStore{path: path}, nil
}

// Save writes st atomically.
func (s *StateStore) Save(st *ControllerState) error {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(st); err != nil {
		return fmt.Errorf("serve: encode state: %w", err)
	}
	if err := atomicio.WriteFile(s.path, stateMagic, payload.Bytes()); err != nil {
		return fmt.Errorf("serve: state: %w", err)
	}
	return nil
}

// Load reads and validates the state file. A missing file returns
// (nil, nil): a fresh controller with nothing to resume.
func (s *StateStore) Load() (*ControllerState, error) {
	if _, err := os.Stat(s.path); os.IsNotExist(err) {
		return nil, nil
	}
	payload, err := atomicio.ReadFile(s.path, stateMagic)
	if err != nil {
		return nil, fmt.Errorf("serve: state: %w", err)
	}
	var st ControllerState
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&st); err != nil {
		return nil, fmt.Errorf("serve: decode state: %w", err)
	}
	return &st, nil
}
