package serve

// BenchmarkControllerReport measures the report fast path — the
// operation whose cost bounds fleet size. The serial case is the
// single-caller floor; the parallel cases show how lock striping, the
// atomic policy snapshot, and pooled inference scratch let many nodes
// report concurrently. Tracked in BENCH.json by the CI bench lane.

import (
	"fmt"
	"sync/atomic"
	"testing"

	"greennfv/internal/sla"
)

// benchFleet builds a controller with nodes registered nodes plus the
// matching per-node observation/traffic fixtures.
func benchFleet(b *testing.B, nodes int) (*Controller, []*simNode) {
	b.Helper()
	dir := b.TempDir()
	spec := testSpec(sla.NewEnergyEfficiency())
	ctrl, err := NewController(Config{
		Spec:       spec,
		PolicyPath: writePolicy(b, dir, spec, 17),
	})
	if err != nil {
		b.Fatal(err)
	}
	sims := make([]*simNode, nodes)
	for i := range sims {
		sims[i] = newSimNode(b, spec, i)
		if err := sims[i].register(ctrl); err != nil {
			b.Fatal(err)
		}
		// One priming step so every node reports from steady state.
		if _, err := sims[i].step(ctrl); err != nil {
			b.Fatal(err)
		}
		sims[i].env.ObserveInto(sims[i].obs)
	}
	return ctrl, sims
}

// reportOnce drives one Controller.Report for node n without advancing
// the env (pure controller-side work, so the benchmark isolates the
// serving path from the simulated dataplane).
func reportOnce(c *Controller, n *simNode, reply *ReportReply) error {
	*reply = ReportReply{}
	return c.report(&ReportArgs{
		NodeID:  n.id,
		Epoch:   n.epoch,
		Obs:     n.obs,
		Traffic: n.env.LastTraffic(),
	}, reply)
}

func BenchmarkControllerReport(b *testing.B) {
	b.Run("serial/nodes=1", func(b *testing.B) {
		ctrl, sims := benchFleet(b, 1)
		var reply ReportReply
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := reportOnce(ctrl, sims[0], &reply); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, nodes := range []int{8, 32} {
		b.Run(fmt.Sprintf("parallel/nodes=%d", nodes), func(b *testing.B) {
			ctrl, sims := benchFleet(b, nodes)
			var next atomic.Uint64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				n := sims[int(next.Add(1)-1)%nodes]
				var reply ReportReply
				for pb.Next() {
					if err := reportOnce(ctrl, n, &reply); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}
