package serve

import (
	"fmt"

	"greennfv/internal/perfmodel"
	"greennfv/internal/sla"
)

// Guardrail vets proposed knob configurations before they reach a
// node: every knob must lie inside the bounds, and the performance
// model's prediction at the node's current traffic must satisfy the
// SLA. It is the reason a noisy or stale policy cannot push a node
// into violation — rejected proposals fall down the degradation
// ladder instead of onto hardware.
//
// Not goroutine-safe: the prediction scratch is reused per check.
// The controller guards calls with its own lock; each agent owns one.
type Guardrail struct {
	Model   perfmodel.Config
	Chain   perfmodel.ChainSpec
	Bounds  perfmodel.KnobBounds
	SLA     sla.SLA
	Options perfmodel.EvalOptions

	res perfmodel.Result // prediction scratch
}

// Check vets knobs against the bounds and the SLA at traffic tr. On
// success it returns the model's predicted measurement; on failure
// the error says which rule rejected the proposal. The returned
// Result's PerNF aliases guardrail scratch, valid until the next
// Check.
func (g *Guardrail) Check(knobs []perfmodel.NFKnobs, tr perfmodel.Traffic) (perfmodel.Result, error) {
	if len(knobs) != len(g.Chain.NFs) {
		return perfmodel.Result{}, fmt.Errorf("serve: %d knob sets for %d NFs", len(knobs), len(g.Chain.NFs))
	}
	for i, k := range knobs {
		if k != g.Bounds.Clamp(k) {
			return perfmodel.Result{}, fmt.Errorf("serve: NF %d knobs %+v outside bounds", i, k)
		}
	}
	if err := g.Model.EvaluateInto(&g.res, g.Chain, knobs, tr, g.Options); err != nil {
		return perfmodel.Result{}, fmt.Errorf("serve: guardrail predict: %w", err)
	}
	if !g.SLA.Satisfied(g.res.ThroughputGbps, g.res.EnergyJoules) {
		return perfmodel.Result{}, fmt.Errorf(
			"serve: predicted %s violation (%.2f Gbps, %.0f J)",
			g.SLA.Kind, g.res.ThroughputGbps, g.res.EnergyJoules)
	}
	return g.res, nil
}
