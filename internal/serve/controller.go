package serve

import (
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"greennfv/internal/env"
	"greennfv/internal/perfmodel"
	"greennfv/internal/rl/apex"
	"greennfv/internal/rl/ddpg"
	"greennfv/internal/rpcutil"
	"greennfv/internal/stats"
)

// Serving counter names (stats.Counters keys), shared by controller
// and agent ledgers.
const (
	// CounterConfigsPushed counts vetted configurations emitted. It is
	// conserved against the per-source counters:
	// configs_pushed = configs_source_policy + configs_source_last_good.
	CounterConfigsPushed = "configs_pushed"
	// CounterFallbackActivations counts intervals where the node
	// actually left the vetted-config path: controller-side a Hold
	// reply (nothing survived the guardrail), agent-side a descent
	// into the local ladder. A last-known-good recovery is NOT a
	// fallback — the node never left vetted configs.
	CounterFallbackActivations = "fallback_activations"
	// CounterGuardrailRejections counts proposals the guardrail
	// refused, one per rejected proposal (a report whose policy AND
	// last-known-good rungs both fail counts twice).
	CounterGuardrailRejections = "guardrail_rejections"
	// CounterHeartbeatMisses counts lease expiries (controller) or
	// failed report calls (agent).
	CounterHeartbeatMisses = "heartbeat_misses"
	// CounterStatePersistErrors counts failed controller-state writes
	// (serving continues; the next state change retries).
	CounterStatePersistErrors = "state_persist_errors"
	// CounterSourcePolicy, CounterSourceLastGood and CounterSourceHold
	// count report replies by the ladder rung that produced them.
	CounterSourcePolicy   = "configs_source_policy"
	CounterSourceLastGood = "configs_source_last_good"
	CounterSourceHold     = "configs_source_hold"
)

// numShards is the lock-striping factor for per-node state. Node IDs
// hash onto shards, so with fleets well past numShards the expected
// map-lock collision rate stays low; the per-node record mutex (not
// the shard lock) guards the report decision itself, so even
// same-shard nodes only contend for the map lookup.
const numShards = 32

// Config assembles a Controller.
type Config struct {
	// Spec is the node environment contract (chain, workload, SLA) —
	// the same JSON spec the training plane ships to remote actors.
	// The controller uses it to size the policy, decode actions and
	// predict proposals; agents use it to build their local env.
	Spec apex.ActorSpec
	// PolicyPath is the boot policy checkpoint (ddpg.SaveState blob).
	// Ignored when StatePath resumes a persisted policy.
	PolicyPath string
	// StatePath, when set, persists controller state (policy blob +
	// last-known-good configs) crash-safely across restarts.
	StatePath string
	// LeaseWindow is the heartbeat window: a node silent for longer
	// loses its lease and must re-register. Zero defaults to 10s.
	LeaseWindow time.Duration
	// NewLimiter builds each node's rate limiter (nil: DefaultLimiter).
	NewLimiter func() *Limiter
	// Now injects the controller clock used for lease stamps and
	// report-latency measurement (nil: time.Now). Tests drive it so
	// lease expiry is deterministic instead of sleep-based.
	Now func() time.Time
}

// nodeRec is the controller's per-node record: lease, heartbeat,
// limiter baseline. Its own mutex guards the serving decision, so
// reports from different nodes never contend — not even within one
// shard.
type nodeRec struct {
	mu         sync.Mutex
	epoch      uint64
	registered bool
	lastReport time.Time
	limiter    *Limiter
}

// shard is one lock stripe of the fleet: the node-record map and the
// last-known-good store for the node IDs that hash here. shard.mu
// guards only the maps (lookups, membership, lastGood swaps); it is
// never held across a policy decision.
type shard struct {
	mu       sync.Mutex
	nodes    map[string]*nodeRec
	lastGood map[string][]perfmodel.NFKnobs
}

// policySnapshot is the immutable serving policy: reports load it
// with one atomic read, reload/persist swap it on the writer path.
type policySnapshot struct {
	blob    []byte
	version int
}

// reportScratch is one in-flight report's private inference state: a
// read-only actor replica (ddpg.Agent.ActInto shares per-network
// forward scratch, so concurrent reports need distinct replicas), the
// action/knob decode buffers, and a guardrail (whose prediction
// scratch is equally single-owner). Pooled; a replica older than the
// current policy snapshot is rebuilt lazily on checkout.
type reportScratch struct {
	version int
	agent   *ddpg.Agent
	action  []float64
	knobs   []perfmodel.NFKnobs
	guard   Guardrail
}

// Controller is the serving-plane brain: it holds the policy, leases
// the fleet, and turns node observations into vetted knob configs.
// All methods are goroutine-safe. The report path is built for
// many-node fleets: per-node state lives in lock-striped shards, the
// policy behind an atomically-swapped immutable snapshot, and each
// in-flight report runs on pooled private scratch — so concurrent
// reports from different nodes share no locks and no buffers.
type Controller struct {
	cfg      Config
	counters *stats.Counters
	probe    *env.Env // decodes actions, sizes buffers; never stepped

	policy    atomic.Pointer[policySnapshot]
	scratch   sync.Pool // *reportScratch
	shards    [numShards]shard
	nextEpoch atomic.Uint64

	reportLatency *stats.PromHistogram

	// persistMu serializes state writes; reloadMu serializes policy
	// swaps (so concurrent reloads cannot race the version bump).
	// Neither is ever held while a nodeRec mutex is wanted.
	persistMu sync.Mutex
	reloadMu  sync.Mutex
	store     stateStore

	srvMu sync.Mutex
	srv   *rpcutil.Server
}

// NewController builds a controller: policy loaded and validated
// against the node spec, persisted state resumed when present.
func NewController(cfg Config) (*Controller, error) {
	if cfg.LeaseWindow <= 0 {
		cfg.LeaseWindow = 10 * time.Second
	}
	if cfg.NewLimiter == nil {
		cfg.NewLimiter = DefaultLimiter
	}
	probe, err := cfg.Spec.BuildEnv(0)
	if err != nil {
		return nil, fmt.Errorf("serve: node spec: %w", err)
	}
	c := &Controller{
		cfg:           cfg,
		counters:      stats.NewCounters(),
		probe:         probe,
		reportLatency: stats.NewPromHistogram(stats.DefLatencyBuckets),
	}
	for i := range c.shards {
		c.shards[i].nodes = make(map[string]*nodeRec)
		c.shards[i].lastGood = make(map[string][]perfmodel.NFKnobs)
	}

	var resumed *ControllerState
	if cfg.StatePath != "" {
		store, err := OpenStateStore(cfg.StatePath)
		if err != nil {
			return nil, err
		}
		c.store = store
		if resumed, err = store.Load(); err != nil {
			return nil, err
		}
	}
	switch {
	case resumed != nil:
		if _, err := c.validatePolicy(resumed.PolicyBlob); err != nil {
			return nil, fmt.Errorf("serve: persisted policy: %w", err)
		}
		c.policy.Store(&policySnapshot{blob: resumed.PolicyBlob, version: resumed.PolicyVersion})
		for id, ks := range resumed.LastGood {
			sh := c.shardFor(id)
			sh.lastGood[id] = ks
		}
	case cfg.PolicyPath != "":
		blob, err := os.ReadFile(cfg.PolicyPath)
		if err != nil {
			return nil, fmt.Errorf("serve: read policy: %w", err)
		}
		if _, err := c.validatePolicy(blob); err != nil {
			return nil, err
		}
		c.policy.Store(&policySnapshot{blob: blob, version: 1})
	default:
		return nil, errors.New("serve: controller needs a policy (PolicyPath or persisted state)")
	}
	return c, nil
}

// now reads the injected clock (time.Now by default).
func (c *Controller) now() time.Time {
	if c.cfg.Now != nil {
		return c.cfg.Now()
	}
	return time.Now()
}

// shardFor maps a node ID onto its lock stripe (FNV-1a).
func (c *Controller) shardFor(nodeID string) *shard {
	h := fnv.New32a()
	h.Write([]byte(nodeID))
	return &c.shards[h.Sum32()%numShards]
}

// validatePolicy decodes a policy blob and checks its dimensions
// against the node spec — the gate both boot and hot reload pass
// through.
func (c *Controller) validatePolicy(blob []byte) (*ddpg.Agent, error) {
	agent, err := ddpg.LoadAgentBytes(blob)
	if err != nil {
		return nil, fmt.Errorf("serve: load policy: %w", err)
	}
	acfg := agent.Config()
	if acfg.StateDim != c.probe.StateDim() || acfg.ActionDim != c.probe.ActionDim() {
		return nil, fmt.Errorf("serve: policy dims %dx%d do not match node spec %dx%d",
			acfg.StateDim, acfg.ActionDim, c.probe.StateDim(), c.probe.ActionDim())
	}
	return agent, nil
}

// getScratch checks out pooled report scratch whose actor replica
// matches snap, rebuilding the replica only when a reload made it
// stale (the blob was validated when the snapshot was installed).
func (c *Controller) getScratch(snap *policySnapshot) (*reportScratch, error) {
	sc, _ := c.scratch.Get().(*reportScratch)
	if sc == nil {
		sc = &reportScratch{
			action: make([]float64, c.probe.ActionDim()),
			knobs:  make([]perfmodel.NFKnobs, c.probe.NumNFs()),
			guard: Guardrail{
				Model:  perfmodel.Default(),
				Chain:  c.probe.Chain(),
				Bounds: c.probe.Bounds(),
				SLA:    c.probe.SLA(),
			},
		}
	}
	if sc.agent == nil || sc.version != snap.version {
		agent, err := ddpg.LoadAgentBytes(snap.blob)
		if err != nil {
			return nil, fmt.Errorf("serve: policy replica: %w", err)
		}
		sc.agent, sc.version = agent, snap.version
	}
	return sc, nil
}

// Start serves the controller RPC on addr (e.g. "127.0.0.1:7070";
// ":0" for an ephemeral port).
func (c *Controller) Start(addr string) error {
	srv, err := rpcutil.Serve("Controller", &ControllerService{c: c}, addr)
	if err != nil {
		return err
	}
	c.srvMu.Lock()
	c.srv = srv
	c.srvMu.Unlock()
	return nil
}

// Addr reports the RPC listen address (after Start).
func (c *Controller) Addr() string {
	c.srvMu.Lock()
	defer c.srvMu.Unlock()
	if c.srv == nil {
		return ""
	}
	return c.srv.Addr()
}

// Close persists state and stops the RPC server. Agents surviving the
// controller degrade locally and re-register when it returns.
func (c *Controller) Close() error {
	c.srvMu.Lock()
	srv := c.srv
	c.srv = nil
	c.srvMu.Unlock()
	err := c.persist()
	if srv != nil {
		if cerr := srv.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Counters exposes the controller's serving ledger.
func (c *Controller) Counters() *stats.Counters { return c.counters }

// PolicyVersion reports the serving policy version (bumped by every
// successful reload).
func (c *Controller) PolicyVersion() int {
	return c.policy.Load().version
}

// RegisteredNodes counts the nodes currently holding a live lease.
func (c *Controller) RegisteredNodes() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		recs := make([]*nodeRec, 0, len(sh.nodes))
		for _, rec := range sh.nodes {
			recs = append(recs, rec)
		}
		sh.mu.Unlock()
		for _, rec := range recs {
			rec.mu.Lock()
			if rec.registered {
				n++
			}
			rec.mu.Unlock()
		}
	}
	return n
}

// LastGood returns a copy of a node's last-known-good configuration
// (nil if none recorded).
func (c *Controller) LastGood(nodeID string) []perfmodel.NFKnobs {
	sh := c.shardFor(nodeID)
	sh.mu.Lock()
	lg := sh.lastGood[nodeID]
	sh.mu.Unlock()
	if lg == nil {
		return nil
	}
	return append([]perfmodel.NFKnobs(nil), lg...)
}

// RegisterMetrics exposes the controller on a Prometheus registry:
// every serving counter as `greennfv_serve_<name>_total`, the
// registered-node and policy-version gauges, and the report-latency
// histogram.
func (c *Controller) RegisterMetrics(reg *stats.Registry) {
	reg.RegisterCounterSet("greennfv_serve", "Serving control-plane events.", c.counters)
	reg.RegisterGauge("greennfv_serve_registered_nodes",
		"Nodes currently holding a live lease.",
		func() float64 { return float64(c.RegisteredNodes()) })
	reg.RegisterGauge("greennfv_serve_policy_version",
		"Serving policy version (bumped by every hot reload).",
		func() float64 { return float64(c.PolicyVersion()) })
	reg.RegisterGauge("greennfv_serve_open_connections",
		"Open agent RPC connections (0 until Start).",
		func() float64 {
			c.srvMu.Lock()
			defer c.srvMu.Unlock()
			if c.srv == nil {
				return 0
			}
			return float64(c.srv.ConnCount())
		})
	reg.RegisterHistogram("greennfv_serve_report_latency_seconds",
		"Report decision latency (lease check through reply).", c.reportLatency)
}

// ReloadPolicy hot-swaps the serving policy from a checkpoint file:
// the blob is read and fully validated first, then swapped in as a
// new immutable snapshot — in-flight reports finish on the snapshot
// they loaded; later reports see the new one. A corrupt or mismatched
// checkpoint is rejected loudly and the current policy keeps serving
// untouched.
func (c *Controller) ReloadPolicy(path string) error {
	blob, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("serve: reload policy: %w", err)
	}
	if _, err := c.validatePolicy(blob); err != nil {
		return fmt.Errorf("serve: reload rejected: %w", err)
	}
	c.reloadMu.Lock()
	c.policy.Store(&policySnapshot{blob: blob, version: c.policy.Load().version + 1})
	c.reloadMu.Unlock()
	return c.persist()
}

// ExpireLeases revokes the lease of every node that has not reported
// within the lease window, counting each as a heartbeat miss, and
// returns how many were expired. The daemon calls this periodically;
// an expired node's next report fails with ErrUnregisteredNode and it
// re-registers transparently.
func (c *Controller) ExpireLeases(now time.Time) int {
	expired := 0
	cutoff := now.Add(-c.cfg.LeaseWindow)
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		recs := make([]*nodeRec, 0, len(sh.nodes))
		for _, rec := range sh.nodes {
			recs = append(recs, rec)
		}
		sh.mu.Unlock()
		for _, rec := range recs {
			rec.mu.Lock()
			if rec.registered && rec.lastReport.Before(cutoff) {
				rec.registered = false
				rec.limiter.Reset()
				c.counters.Inc(CounterHeartbeatMisses)
				expired++
			}
			rec.mu.Unlock()
		}
	}
	return expired
}

// register implements the Register RPC.
func (c *Controller) register(args *RegisterNodeArgs, reply *RegisterNodeReply) error {
	if args.NodeID == "" {
		return errors.New("serve: empty node ID")
	}
	sh := c.shardFor(args.NodeID)
	sh.mu.Lock()
	rec, ok := sh.nodes[args.NodeID]
	if !ok {
		rec = &nodeRec{limiter: c.cfg.NewLimiter()}
		sh.nodes[args.NodeID] = rec
	}
	sh.mu.Unlock()
	rec.mu.Lock()
	rec.registered = true
	// Allocated under rec.mu so concurrent registrations for the same
	// node leave the record fenced to the LAST registration's epoch.
	rec.epoch = c.nextEpoch.Add(1)
	rec.lastReport = c.now()
	rec.limiter.Reset()
	reply.Epoch = rec.epoch
	rec.mu.Unlock()
	reply.PolicyVersion = c.PolicyVersion()
	return nil
}

// report implements the Report RPC: lease check, policy decision,
// limiter, guardrail, ladder. Reports from different nodes run
// concurrently end to end; reports from the same node serialize on
// its record.
func (c *Controller) report(args *ReportArgs, reply *ReportReply) error {
	start := c.now()
	sh := c.shardFor(args.NodeID)
	sh.mu.Lock()
	rec := sh.nodes[args.NodeID]
	sh.mu.Unlock()
	if rec == nil {
		return fmt.Errorf("%w %q: register first", ErrUnregisteredNode, args.NodeID)
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if !rec.registered {
		return fmt.Errorf("%w %q: register first", ErrUnregisteredNode, args.NodeID)
	}
	if args.Epoch != rec.epoch {
		return fmt.Errorf("%w: node %q epoch %d superseded by %d",
			ErrStaleNodeEpoch, args.NodeID, args.Epoch, rec.epoch)
	}
	rec.lastReport = start
	if len(args.Obs) != c.probe.StateDim() {
		return fmt.Errorf("serve: observation dim %d, want %d", len(args.Obs), c.probe.StateDim())
	}
	if args.Traffic.OfferedPPS <= 0 {
		return fmt.Errorf("serve: report carries no traffic")
	}
	snap := c.policy.Load()
	reply.PolicyVersion = snap.version
	sc, err := c.getScratch(snap)
	if err != nil {
		return err
	}
	defer c.scratch.Put(sc)

	// Rung 1: fresh policy decision, rate-limited then vetted.
	if err := sc.agent.ActInto(args.Obs, false, sc.action); err != nil {
		return fmt.Errorf("serve: policy action: %w", err)
	}
	for i := range sc.knobs {
		sc.knobs[i] = c.probe.DecodeAction(sc.action[i*env.KnobsPerNF : (i+1)*env.KnobsPerNF])
	}
	limited := rec.limiter.Limit(sc.knobs)
	if _, err := sc.guard.Check(limited, args.Traffic); err == nil {
		reply.Config = append([]perfmodel.NFKnobs(nil), limited...)
		reply.Source = SourcePolicy
		rec.limiter.Record(limited)
		c.recordLastGood(args.NodeID, limited)
		c.counters.Inc(CounterConfigsPushed)
		c.counters.Inc(CounterSourcePolicy)
		c.reportLatency.Observe(c.now().Sub(start).Seconds())
		return nil
	}
	c.counters.Inc(CounterGuardrailRejections)

	// Rung 2: last-known-good, re-vetted under the node's current
	// traffic. A recovery here keeps the node on vetted configs, so it
	// is counted as a push, not a fallback.
	sh.mu.Lock()
	lg := sh.lastGood[args.NodeID]
	sh.mu.Unlock()
	if lg != nil {
		if _, err := sc.guard.Check(lg, args.Traffic); err == nil {
			reply.Config = append([]perfmodel.NFKnobs(nil), lg...)
			reply.Source = SourceLastGood
			rec.limiter.Record(lg)
			c.counters.Inc(CounterConfigsPushed)
			c.counters.Inc(CounterSourceLastGood)
			c.reportLatency.Observe(c.now().Sub(start).Seconds())
			return nil
		}
		c.counters.Inc(CounterGuardrailRejections)
	}

	// Nothing approved: the node holds its configuration and walks its
	// own ladder (heuristic rung runs agent-side, on the real env) —
	// the only controller-side outcome that is a fallback.
	reply.Hold = true
	reply.Source = SourceHold
	c.counters.Inc(CounterSourceHold)
	c.counters.Inc(CounterFallbackActivations)
	c.reportLatency.Observe(c.now().Sub(start).Seconds())
	return nil
}

// recordLastGood stores a vetted config as the node's last-known-good
// and persists if it changed. Called with the node's rec.mu held;
// takes only the shard map lock (never another node's record), so the
// persist path cannot deadlock two concurrent reports.
func (c *Controller) recordLastGood(nodeID string, ks []perfmodel.NFKnobs) {
	sh := c.shardFor(nodeID)
	sh.mu.Lock()
	prev := sh.lastGood[nodeID]
	same := len(prev) == len(ks)
	if same {
		for i := range ks {
			if prev[i] != ks[i] {
				same = false
				break
			}
		}
	}
	if !same {
		sh.lastGood[nodeID] = append([]perfmodel.NFKnobs(nil), ks...)
	}
	sh.mu.Unlock()
	if same {
		return
	}
	if err := c.persist(); err != nil {
		// Persistence failure must not take down serving; the ledger
		// records it and the next change retries.
		c.counters.Inc(CounterStatePersistErrors)
	}
}

// persist writes controller state through the store (no-op without
// one). Writers serialize on persistMu; the fleet's last-known-good
// view is collected shard by shard.
func (c *Controller) persist() error {
	if c.store == nil {
		return nil
	}
	c.persistMu.Lock()
	defer c.persistMu.Unlock()
	lg := make(map[string][]perfmodel.NFKnobs)
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for id, ks := range sh.lastGood {
			lg[id] = ks
		}
		sh.mu.Unlock()
	}
	snap := c.policy.Load()
	return c.store.Save(&ControllerState{
		PolicyBlob:    snap.blob,
		PolicyVersion: snap.version,
		LastGood:      lg,
	})
}
