package serve

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"greennfv/internal/env"
	"greennfv/internal/perfmodel"
	"greennfv/internal/rl/apex"
	"greennfv/internal/rl/ddpg"
	"greennfv/internal/rpcutil"
	"greennfv/internal/stats"
)

// Serving counter names (stats.Counters keys), shared by controller
// and agent ledgers.
const (
	// CounterConfigsPushed counts vetted configurations emitted.
	CounterConfigsPushed = "configs_pushed"
	// CounterFallbackActivations counts drops down the degradation
	// ladder (any rung below fresh policy).
	CounterFallbackActivations = "fallback_activations"
	// CounterGuardrailRejections counts proposals the guardrail
	// refused.
	CounterGuardrailRejections = "guardrail_rejections"
	// CounterHeartbeatMisses counts lease expiries (controller) or
	// failed report calls (agent).
	CounterHeartbeatMisses = "heartbeat_misses"
)

// Config assembles a Controller.
type Config struct {
	// Spec is the node environment contract (chain, workload, SLA) —
	// the same JSON spec the training plane ships to remote actors.
	// The controller uses it to size the policy, decode actions and
	// predict proposals; agents use it to build their local env.
	Spec apex.ActorSpec
	// PolicyPath is the boot policy checkpoint (ddpg.SaveState blob).
	// Ignored when StatePath resumes a persisted policy.
	PolicyPath string
	// StatePath, when set, persists controller state (policy blob +
	// last-known-good configs) crash-safely across restarts.
	StatePath string
	// LeaseWindow is the heartbeat window: a node silent for longer
	// loses its lease and must re-register. Zero defaults to 10s.
	LeaseWindow time.Duration
	// NewLimiter builds each node's rate limiter (nil: DefaultLimiter).
	NewLimiter func() *Limiter
}

// nodeRec is the controller's per-node record: lease, heartbeat,
// limiter baseline.
type nodeRec struct {
	epoch      uint64
	registered bool
	lastReport time.Time
	limiter    *Limiter
}

// Controller is the serving-plane brain: it holds the policy, leases
// the fleet, and turns node observations into vetted knob configs.
// All methods are goroutine-safe (RPC handlers, the lease sweeper and
// hot reloads serialize on one mutex).
type Controller struct {
	cfg      Config
	counters *stats.Counters

	mu            sync.Mutex
	agent         *ddpg.Agent
	policyBlob    []byte
	policyVersion int
	probe         *env.Env // decodes actions; never stepped
	guard         Guardrail
	action        []float64
	knobs         []perfmodel.NFKnobs
	nodes         map[string]*nodeRec
	lastGood      map[string][]perfmodel.NFKnobs
	nextEpoch     uint64
	store         *StateStore

	srv *rpcutil.Server
}

// NewController builds a controller: policy loaded and validated
// against the node spec, persisted state resumed when present.
func NewController(cfg Config) (*Controller, error) {
	if cfg.LeaseWindow <= 0 {
		cfg.LeaseWindow = 10 * time.Second
	}
	if cfg.NewLimiter == nil {
		cfg.NewLimiter = DefaultLimiter
	}
	probe, err := cfg.Spec.BuildEnv(0)
	if err != nil {
		return nil, fmt.Errorf("serve: node spec: %w", err)
	}
	c := &Controller{
		cfg:      cfg,
		counters: stats.NewCounters(),
		probe:    probe,
		guard: Guardrail{
			Model:  perfmodel.Default(),
			Chain:  probe.Chain(),
			Bounds: probe.Bounds(),
			SLA:    probe.SLA(),
		},
		action:   make([]float64, probe.ActionDim()),
		knobs:    make([]perfmodel.NFKnobs, probe.NumNFs()),
		nodes:    make(map[string]*nodeRec),
		lastGood: make(map[string][]perfmodel.NFKnobs),
	}

	var resumed *ControllerState
	if cfg.StatePath != "" {
		store, err := OpenStateStore(cfg.StatePath)
		if err != nil {
			return nil, err
		}
		c.store = store
		if resumed, err = store.Load(); err != nil {
			return nil, err
		}
	}
	switch {
	case resumed != nil:
		agent, err := c.validatePolicy(resumed.PolicyBlob)
		if err != nil {
			return nil, fmt.Errorf("serve: persisted policy: %w", err)
		}
		c.agent, c.policyBlob = agent, resumed.PolicyBlob
		c.policyVersion = resumed.PolicyVersion
		for id, ks := range resumed.LastGood {
			c.lastGood[id] = ks
		}
	case cfg.PolicyPath != "":
		blob, err := os.ReadFile(cfg.PolicyPath)
		if err != nil {
			return nil, fmt.Errorf("serve: read policy: %w", err)
		}
		agent, err := c.validatePolicy(blob)
		if err != nil {
			return nil, err
		}
		c.agent, c.policyBlob = agent, blob
		c.policyVersion = 1
	default:
		return nil, errors.New("serve: controller needs a policy (PolicyPath or persisted state)")
	}
	return c, nil
}

// validatePolicy decodes a policy blob and checks its dimensions
// against the node spec — the gate both boot and hot reload pass
// through.
func (c *Controller) validatePolicy(blob []byte) (*ddpg.Agent, error) {
	agent, err := ddpg.LoadAgentBytes(blob)
	if err != nil {
		return nil, fmt.Errorf("serve: load policy: %w", err)
	}
	acfg := agent.Config()
	if acfg.StateDim != c.probe.StateDim() || acfg.ActionDim != c.probe.ActionDim() {
		return nil, fmt.Errorf("serve: policy dims %dx%d do not match node spec %dx%d",
			acfg.StateDim, acfg.ActionDim, c.probe.StateDim(), c.probe.ActionDim())
	}
	return agent, nil
}

// Start serves the controller RPC on addr (e.g. "127.0.0.1:7070";
// ":0" for an ephemeral port).
func (c *Controller) Start(addr string) error {
	srv, err := rpcutil.Serve("Controller", &ControllerService{c: c}, addr)
	if err != nil {
		return err
	}
	c.mu.Lock()
	c.srv = srv
	c.mu.Unlock()
	return nil
}

// Addr reports the RPC listen address (after Start).
func (c *Controller) Addr() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.srv == nil {
		return ""
	}
	return c.srv.Addr()
}

// Close persists state and stops the RPC server. Agents surviving the
// controller degrade locally and re-register when it returns.
func (c *Controller) Close() error {
	c.mu.Lock()
	srv := c.srv
	c.srv = nil
	err := c.persistLocked()
	c.mu.Unlock()
	if srv != nil {
		if cerr := srv.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Counters exposes the controller's serving ledger.
func (c *Controller) Counters() *stats.Counters { return c.counters }

// PolicyVersion reports the serving policy version (bumped by every
// successful reload).
func (c *Controller) PolicyVersion() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.policyVersion
}

// ReloadPolicy hot-swaps the serving policy from a checkpoint file:
// the blob is read and fully validated first, then swapped atomically
// under the serving lock. A corrupt or mismatched checkpoint is
// rejected loudly and the current policy keeps serving untouched.
func (c *Controller) ReloadPolicy(path string) error {
	blob, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("serve: reload policy: %w", err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	agent, err := c.validatePolicy(blob)
	if err != nil {
		return fmt.Errorf("serve: reload rejected: %w", err)
	}
	c.agent, c.policyBlob = agent, blob
	c.policyVersion++
	return c.persistLocked()
}

// ExpireLeases revokes the lease of every node that has not reported
// within the lease window, counting each as a heartbeat miss, and
// returns how many were expired. The daemon calls this periodically;
// an expired node's next report fails with ErrUnregisteredNode and it
// re-registers transparently.
func (c *Controller) ExpireLeases(now time.Time) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	expired := 0
	cutoff := now.Add(-c.cfg.LeaseWindow)
	for _, rec := range c.nodes {
		if rec.registered && rec.lastReport.Before(cutoff) {
			rec.registered = false
			rec.limiter.Reset()
			c.counters.Inc(CounterHeartbeatMisses)
			expired++
		}
	}
	return expired
}

// register implements the Register RPC.
func (c *Controller) register(args *RegisterNodeArgs, reply *RegisterNodeReply) error {
	if args.NodeID == "" {
		return errors.New("serve: empty node ID")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	rec, ok := c.nodes[args.NodeID]
	if !ok {
		rec = &nodeRec{limiter: c.cfg.NewLimiter()}
		c.nodes[args.NodeID] = rec
	}
	rec.registered = true
	c.nextEpoch++
	rec.epoch = c.nextEpoch
	rec.lastReport = time.Now()
	rec.limiter.Reset()
	reply.Epoch = rec.epoch
	reply.PolicyVersion = c.policyVersion
	return nil
}

// report implements the Report RPC: lease check, policy decision,
// limiter, guardrail, ladder.
func (c *Controller) report(args *ReportArgs, reply *ReportReply) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	rec, ok := c.nodes[args.NodeID]
	if !ok || !rec.registered {
		return fmt.Errorf("%w %q: register first", ErrUnregisteredNode, args.NodeID)
	}
	if args.Epoch != rec.epoch {
		return fmt.Errorf("%w: node %q epoch %d superseded by %d",
			ErrStaleNodeEpoch, args.NodeID, args.Epoch, rec.epoch)
	}
	rec.lastReport = time.Now()
	if len(args.Obs) != c.probe.StateDim() {
		return fmt.Errorf("serve: observation dim %d, want %d", len(args.Obs), c.probe.StateDim())
	}
	if args.Traffic.OfferedPPS <= 0 {
		return fmt.Errorf("serve: report carries no traffic")
	}
	reply.PolicyVersion = c.policyVersion

	// Rung 1: fresh policy decision, rate-limited then vetted.
	if err := c.agent.ActInto(args.Obs, false, c.action); err != nil {
		return fmt.Errorf("serve: policy action: %w", err)
	}
	for i := range c.knobs {
		c.knobs[i] = c.probe.DecodeAction(c.action[i*env.KnobsPerNF : (i+1)*env.KnobsPerNF])
	}
	limited := rec.limiter.Limit(c.knobs)
	if _, err := c.guard.Check(limited, args.Traffic); err == nil {
		reply.Config = append([]perfmodel.NFKnobs(nil), limited...)
		reply.Source = SourcePolicy
		rec.limiter.Record(limited)
		c.recordLastGoodLocked(args.NodeID, limited)
		c.counters.Inc(CounterConfigsPushed)
		return nil
	}
	c.counters.Inc(CounterGuardrailRejections)
	c.counters.Inc(CounterFallbackActivations)

	// Rung 2: last-known-good, re-vetted under the node's current
	// traffic.
	if lg := c.lastGood[args.NodeID]; lg != nil {
		if _, err := c.guard.Check(lg, args.Traffic); err == nil {
			reply.Config = append([]perfmodel.NFKnobs(nil), lg...)
			reply.Source = SourceLastGood
			rec.limiter.Record(lg)
			c.counters.Inc(CounterConfigsPushed)
			return nil
		}
	}

	// Nothing approved: the node holds its configuration and walks its
	// own ladder (heuristic rung runs agent-side, on the real env).
	reply.Hold = true
	reply.Source = SourceHold
	return nil
}

// recordLastGoodLocked stores a vetted config as the node's
// last-known-good and persists if it changed. Caller holds mu.
func (c *Controller) recordLastGoodLocked(nodeID string, ks []perfmodel.NFKnobs) {
	prev := c.lastGood[nodeID]
	same := len(prev) == len(ks)
	if same {
		for i := range ks {
			if prev[i] != ks[i] {
				same = false
				break
			}
		}
	}
	if same {
		return
	}
	c.lastGood[nodeID] = append([]perfmodel.NFKnobs(nil), ks...)
	if err := c.persistLocked(); err != nil {
		// Persistence failure must not take down serving; the ledger
		// records it and the next change retries.
		c.counters.Inc("state_persist_errors")
	}
}

// persistLocked writes controller state through the store (no-op
// without one). Caller holds mu.
func (c *Controller) persistLocked() error {
	if c.store == nil {
		return nil
	}
	lg := make(map[string][]perfmodel.NFKnobs, len(c.lastGood))
	for id, ks := range c.lastGood {
		lg[id] = ks
	}
	return c.store.Save(&ControllerState{
		PolicyBlob:    c.policyBlob,
		PolicyVersion: c.policyVersion,
		LastGood:      lg,
	})
}
